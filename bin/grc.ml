(* grc — the guardrail compiler CLI.

   Subcommands:
     grc check   FILE     parse and typecheck
     grc compile FILE     full pipeline; print disassembly + verifier stats
     grc deps    FILE     interference edges and feedback-loop cycles
     grc lint    FILE...  static analysis: abstract interpretation over each
                          rule plus whole-deployment interference checks;
                          exit 0 clean, 1 warnings (with --strict), 2 errors
     grc fmt     FILE     parse and pretty-print canonical form
     grc run     FILE     install against an idle simulated kernel and run;
                          report per-monitor telemetry, optionally export a
                          Chrome trace_event file *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Guardrail source file.")

let with_spec path f =
  let src = read_file path in
  match Guardrails.Parser.parse src with
  | Error (pos, msg) ->
    Format.eprintf "%s: parse error at %a: %s@." path Guardrails.Ast.pp_pos pos msg;
    1
  | Ok spec -> (
    match Guardrails.Typecheck.check_spec spec with
    | Error errs ->
      List.iter (fun e -> Format.eprintf "%s: %a@." path Guardrails.Typecheck.pp_error e) errs;
      1
    | Ok () -> f spec)

let check_cmd =
  let run path =
    with_spec path (fun spec ->
        Format.printf "%s: %d guardrail(s) OK@." path (List.length spec);
        0)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and typecheck a guardrail spec")
    Term.(const run $ file_arg)

let compile_cmd =
  let run path no_opt =
    with_spec path (fun spec ->
        let monitors = Guardrails.Lower.spec spec in
        let monitors =
          if no_opt then monitors else List.map Guardrails.Opt.optimize_monitor monitors
        in
        List.fold_left
          (fun rc m ->
            match Guardrails.Verify.verify m with
            | Error errs ->
              Format.eprintf "monitor %s rejected:@." m.Guardrails.Monitor.name;
              List.iter (fun e -> Format.eprintf "  %s@." e) errs;
              1
            | Ok stats ->
              Format.printf "%a" Guardrails.Monitor.pp m;
              Format.printf
                "  verified: %d rule insts, %d total insts, %d slots, est cost %.0fns/check@.@."
                stats.rule_insts stats.total_insts stats.n_slots stats.est_cost_ns;
              rc)
          0 monitors)
  in
  let no_opt =
    Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the CSE/DCE optimisation passes.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile, verify and disassemble monitors")
    Term.(const run $ file_arg $ no_opt)

let deps_cmd =
  let run path =
    with_spec path (fun spec ->
        let monitors = List.map Guardrails.Opt.optimize_monitor (Guardrails.Lower.spec spec) in
        let edges = Guardrails.Deps.interference monitors in
        if edges = [] then Format.printf "no interference edges@."
        else
          List.iter
            (fun e ->
              Format.printf "%s -> %s (via key %s)@." e.Guardrails.Deps.writer e.reader e.key)
            edges;
        (match Guardrails.Deps.cycles monitors with
        | [] -> Format.printf "no feedback-loop cycles@."
        | cycles ->
          List.iter
            (fun cycle ->
              Format.printf "FEEDBACK LOOP: %s@." (String.concat " -> " (cycle @ [ List.hd cycle ])))
            cycles);
        List.iter
          (fun m ->
            Format.printf "monitor %s reads {%s} writes {%s}@." m.Guardrails.Monitor.name
              (String.concat ", " (Guardrails.Monitor.reads m))
              (String.concat ", " (Guardrails.Monitor.writes m)))
          monitors;
        0)
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Dependency analysis: interference edges and feedback loops")
    Term.(const run $ file_arg)

let lint_cmd =
  let run paths json strict budget =
    let compile_one path =
      let src = read_file path in
      match Guardrails.Parser.parse src with
      | Error (pos, msg) ->
        Error (Format.asprintf "%s: parse error at %a: %s" path Guardrails.Ast.pp_pos pos msg)
      | Ok spec -> (
        match Guardrails.Typecheck.check_spec spec with
        | Error errs ->
          Error
            (String.concat "\n"
               (List.map
                  (fun e -> Format.asprintf "%s: %a" path Guardrails.Typecheck.pp_error e)
                  errs))
        | Ok () ->
          Ok
            (List.map
               (fun m -> (path, Guardrails.Opt.optimize_monitor m))
               (Guardrails.Lower.spec spec)))
    in
    let compiled = List.map compile_one paths in
    let failures = List.filter_map (function Error e -> Some e | Ok _ -> None) compiled in
    if failures <> [] then begin
      List.iter (fun e -> Format.eprintf "%s@." e) failures;
      2
    end
    else begin
      let tagged = List.concat_map (function Ok l -> l | Error _ -> []) compiled in
      let monitors = List.map snd tagged in
      let file_of =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (f, (m : Guardrails.Monitor.t)) ->
            if not (Hashtbl.mem tbl m.name) then Hashtbl.add tbl m.name f)
          tagged;
        fun name -> Hashtbl.find_opt tbl name
      in
      let config = { Guardrails.Analyze.hook_budget_ns = budget } in
      let diags = Guardrails.Analyze.deployment ~config monitors in
      if json then begin
        let with_file (d : Guardrails.Diagnostic.t) =
          let file =
            match d.monitor with
            | Some m -> (
              match file_of m with Some f -> Guardrails.Json.Str f | None -> Guardrails.Json.Null)
            | None -> Guardrails.Json.Null
          in
          match Guardrails.Diagnostic.to_json d with
          | Guardrails.Json.Obj fields -> Guardrails.Json.Obj (("file", file) :: fields)
          | other -> other
        in
        print_endline (Guardrails.Json.to_string (Guardrails.Json.Arr (List.map with_file diags)))
      end
      else
        List.iter
          (fun (d : Guardrails.Diagnostic.t) ->
            let prefix =
              match d.monitor with
              | Some m -> ( match file_of m with Some f -> f ^ ": " | None -> "")
              | None -> ""
            in
            Format.printf "%s%a@." prefix Guardrails.Diagnostic.pp d)
          diags;
      let has sev = List.exists (fun (d : Guardrails.Diagnostic.t) -> d.severity = sev) diags in
      if has Guardrails.Diagnostic.Error then 2
      else if has Guardrails.Diagnostic.Warning && strict then 1
      else 0
    end
  in
  let files =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Guardrail source file(s); linted together as one deployment.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.") in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit 1 when warnings are found (errors always exit 2).")
  in
  let budget =
    Arg.(
      value & opt float 500.
      & info [ "hook-budget-ns" ] ~docv:"NS"
          ~doc:"Per-FUNCTION-hook cumulative static cost budget in nanoseconds (default 500).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: abstract interpretation over each rule and whole-deployment \
          interference checks")
    Term.(const run $ files $ json $ strict $ budget)

let cgen_cmd =
  let run path header =
    if header then begin
      print_string Guardrails.Cgen.runtime_header;
      0
    end
    else
      with_spec path (fun spec ->
          let monitors = List.map Guardrails.Opt.optimize_monitor (Guardrails.Lower.spec spec) in
          let bad =
            List.filter_map
              (fun m ->
                match Guardrails.Verify.verify m with
                | Ok _ -> None
                | Error errs -> Some (m.Guardrails.Monitor.name, errs))
              monitors
          in
          match bad with
          | (name, errs) :: _ ->
            Format.eprintf "monitor %s rejected by the verifier:@." name;
            List.iter (fun e -> Format.eprintf "  %s@." e) errs;
            1
          | [] ->
            print_string (Guardrails.Cgen.spec monitors);
            0)
  in
  let header =
    Arg.(value & flag & info [ "header" ] ~doc:"Print guardrail_rt.h instead of monitor code.")
  in
  Cmd.v
    (Cmd.info "cgen" ~doc:"Emit the C translation of verified monitors (kernel-module target)")
    Term.(const run $ file_arg $ header)

let fmt_cmd =
  let run path =
    with_spec path (fun spec ->
        print_string (Guardrails.Pretty.spec_to_string spec);
        0)
  in
  Cmd.v (Cmd.info "fmt" ~doc:"Pretty-print the canonical form") Term.(const run $ file_arg)

let run_cmd =
  let run path until seed trace_out =
    let src = read_file path in
    let kernel = Guardrails.Kernel.create ~seed in
    let d =
      Guardrails.Deployment.create ~kernel ~tracing:(Option.is_some trace_out) ()
    in
    match Guardrails.Deployment.install_source d src with
    | Error e ->
      Format.eprintf "%s: %a@." path Guardrails.Deployment.pp_error e;
      1
    | Ok handles ->
      Format.printf "%s: installed %d monitor(s), running %gs of idle simulated kernel@." path
        (List.length handles) until;
      Guardrails.Kernel.run_until kernel (Guardrails.Util.Time_ns.of_float_sec until);
      Format.printf "%a@." Guardrails.Engine.pp_report (Guardrails.Deployment.engine d);
      Format.printf "%a" Guardrails.Trace_export.pp_summary (Guardrails.Deployment.tracer d);
      (match trace_out with
      | Some out ->
        Guardrails.Deployment.write_chrome_trace d ~path:out;
        Format.printf "Chrome trace written to %s (open at chrome://tracing)@." out
      | None -> ());
      0
  in
  let until =
    Arg.(
      value & opt float 5.
      & info [ "until" ] ~docv:"SECONDS" ~doc:"Simulated seconds to run (default 5).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Kernel PRNG seed.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json" ~doc:"Write a Chrome trace_event file.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Install monitors against an idle simulated kernel, drive their TIMER triggers, and \
          report per-monitor telemetry")
    Term.(const run $ file_arg $ until $ seed $ trace_out)

let () =
  let info = Cmd.info "grc" ~version:"1.0.0" ~doc:"Guardrail compiler for learned OS policies" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ check_cmd; compile_cmd; deps_cmd; lint_cmd; cgen_cmd; fmt_cmd; run_cmd ]))
