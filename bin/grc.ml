(* grc — the guardrail compiler CLI.

   Subcommands:
     grc check   FILE     parse and typecheck
     grc compile FILE     full pipeline; print disassembly + verifier stats
     grc deps    FILE     interference edges and feedback-loop cycles
     grc lint    FILE...  static analysis: abstract interpretation over each
                          rule plus whole-deployment interference checks;
                          exit 0 clean, 1 warnings (with --strict), 2 errors
     grc verify  FILE...  lint on the inter-rule dataflow fixpoint, plus
                          action-machine model checking (GRL2xx) with
                          executable counterexamples and, under --fleet,
                          GLOBAL-key race analysis (GRL301)
     grc fmt     FILE     parse and pretty-print canonical form
     grc run     FILE     install against an idle simulated kernel and run;
                          report per-monitor telemetry, optionally export a
                          Chrome trace_event file (--trace) and an
                          OpenMetrics text exposition (--metrics)
     grc explain TRACE    reconstruct the causal chain behind a decision
                          from a trace: dispatch -> hook -> check -> actions,
                          with rule disassembly and input provenance *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Spec input convention shared by grc lint / verify / push: the
   filename "-" means standard input. This is the same source text
   the serve daemon's admission controller sees — a CI pipeline can
   pipe the exact bytes it is about to push through `grc verify -`
   first. The returned label replaces the path in diagnostics. *)
let read_spec_input path =
  if path = "-" then ("<stdin>", In_channel.input_all stdin) else (path, read_file path)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Guardrail source file.")

let with_spec path f =
  let src = read_file path in
  match Guardrails.Parser.parse src with
  | Error (pos, msg) ->
    Format.eprintf "%s: parse error at %a: %s@." path Guardrails.Ast.pp_pos pos msg;
    1
  | Ok spec -> (
    match Guardrails.Typecheck.check_spec spec with
    | Error errs ->
      List.iter (fun e -> Format.eprintf "%s: %a@." path Guardrails.Typecheck.pp_error e) errs;
      1
    | Ok () -> f spec)

let check_cmd =
  let run path =
    with_spec path (fun spec ->
        Format.printf "%s: %d guardrail(s) OK@." path (List.length spec);
        0)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and typecheck a guardrail spec")
    Term.(const run $ file_arg)

let compile_cmd =
  let run path no_opt =
    with_spec path (fun spec ->
        let monitors = Guardrails.Lower.spec spec in
        let monitors =
          if no_opt then monitors else List.map Guardrails.Opt.optimize_monitor monitors
        in
        List.fold_left
          (fun rc m ->
            match Guardrails.Verify.verify m with
            | Error errs ->
              Format.eprintf "monitor %s rejected:@." m.Guardrails.Monitor.name;
              List.iter (fun e -> Format.eprintf "  %s@." e) errs;
              1
            | Ok stats ->
              Format.printf "%a" Guardrails.Monitor.pp m;
              Format.printf
                "  verified: %d rule insts, %d total insts, %d slots, est cost %.0fns/check@.@."
                stats.rule_insts stats.total_insts stats.n_slots stats.est_cost_ns;
              rc)
          0 monitors)
  in
  let no_opt =
    Arg.(value & flag & info [ "no-opt" ] ~doc:"Skip the CSE/DCE optimisation passes.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile, verify and disassemble monitors")
    Term.(const run $ file_arg $ no_opt)

let deps_cmd =
  let run path =
    with_spec path (fun spec ->
        let monitors = List.map Guardrails.Opt.optimize_monitor (Guardrails.Lower.spec spec) in
        let edges = Guardrails.Deps.interference monitors in
        if edges = [] then Format.printf "no interference edges@."
        else
          List.iter
            (fun e ->
              Format.printf "%s -> %s (via key %s)@." e.Guardrails.Deps.writer e.reader e.key)
            edges;
        (match Guardrails.Deps.cycles monitors with
        | [] -> Format.printf "no feedback-loop cycles@."
        | cycles ->
          List.iter
            (fun cycle ->
              Format.printf "FEEDBACK LOOP: %s@." (String.concat " -> " (cycle @ [ List.hd cycle ])))
            cycles);
        List.iter
          (fun m ->
            Format.printf "monitor %s reads {%s} writes {%s}@." m.Guardrails.Monitor.name
              (String.concat ", " (Guardrails.Monitor.reads m))
              (String.concat ", " (Guardrails.Monitor.writes m)))
          monitors;
        0)
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Dependency analysis: interference edges and feedback loops")
    Term.(const run $ file_arg)

(* Shared by grc lint / grc verify: one spec file -> optimised
   monitors tagged with their source path, or a printable error. *)
let compile_spec_file path =
  match read_spec_input path with
  | exception Sys_error e -> Error (Printf.sprintf "grc: %s" e)
  | label, src -> (
    match Guardrails.Parser.parse src with
    | Error (pos, msg) ->
      Error (Format.asprintf "%s: parse error at %a: %s" label Guardrails.Ast.pp_pos pos msg)
    | Ok spec -> (
      match Guardrails.Typecheck.check_spec spec with
      | Error errs ->
        Error
          (String.concat "\n"
             (List.map
                (fun e -> Format.asprintf "%s: %a" label Guardrails.Typecheck.pp_error e)
                errs))
      | Ok () ->
        Ok
          (List.map
             (fun m -> (label, Guardrails.Opt.optimize_monitor m))
             (Guardrails.Lower.spec spec))))

let lint_cmd =
  let run paths json strict budget fleet =
    let compiled = List.map compile_spec_file paths in
    let failures = List.filter_map (function Error e -> Some e | Ok _ -> None) compiled in
    if failures <> [] then begin
      List.iter (fun e -> Format.eprintf "%s@." e) failures;
      2
    end
    else begin
      (* --fleet: each FILE is one node's deployment. Node-local keys
         are qualified per file before the interference checks, so
         same-named keys on different nodes stop colliding while
         GLOBAL keys still do. *)
      let tagged =
        List.concat
          (List.mapi
             (fun node_id -> function
               | Error _ -> []
               | Ok l ->
                 if fleet then
                   List.map (fun (f, m) -> (f, Guardrails.Monitor.qualify ~node_id m)) l
                 else l)
             compiled)
      in
      let monitors = List.map snd tagged in
      let file_of =
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (f, (m : Guardrails.Monitor.t)) ->
            if not (Hashtbl.mem tbl m.name) then Hashtbl.add tbl m.name f)
          tagged;
        fun name -> Hashtbl.find_opt tbl name
      in
      let config = { Guardrails.Analyze.hook_budget_ns = budget } in
      let diags = Guardrails.Analyze.deployment ~config monitors in
      if json then begin
        let with_file (d : Guardrails.Diagnostic.t) =
          let file =
            match d.monitor with
            | Some m -> (
              match file_of m with Some f -> Guardrails.Json.Str f | None -> Guardrails.Json.Null)
            | None -> Guardrails.Json.Null
          in
          match Guardrails.Diagnostic.to_json d with
          | Guardrails.Json.Obj fields -> Guardrails.Json.Obj (("file", file) :: fields)
          | other -> other
        in
        print_endline (Guardrails.Json.to_string (Guardrails.Json.Arr (List.map with_file diags)))
      end
      else
        List.iter
          (fun (d : Guardrails.Diagnostic.t) ->
            let prefix =
              match d.monitor with
              | Some m -> ( match file_of m with Some f -> f ^ ": " | None -> "")
              | None -> ""
            in
            Format.printf "%s%a@." prefix Guardrails.Diagnostic.pp d)
          diags;
      let has sev = List.exists (fun (d : Guardrails.Diagnostic.t) -> d.severity = sev) diags in
      if has Guardrails.Diagnostic.Error then 2
      else if has Guardrails.Diagnostic.Warning && strict then 1
      else 0
    end
  in
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Guardrail source file(s); linted together as one deployment. $(b,-) reads a \
             spec from standard input (the same text a serve push would carry).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.") in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit 1 when warnings are found (errors always exit 2).")
  in
  let budget =
    Arg.(
      value & opt float 500.
      & info [ "hook-budget-ns" ] ~docv:"NS"
          ~doc:"Per-FUNCTION-hook cumulative static cost budget in nanoseconds (default 500).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Treat each FILE as one fleet node's deployment: node-local keys are qualified \
             per file, so interference checks (GRL101/GRL102) only fire for genuinely \
             shared state such as GLOBAL keys.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis: abstract interpretation over each rule and whole-deployment \
          interference checks")
    Term.(const run $ files $ json $ strict $ budget $ fleet)

(* grc verify: the whole-deployment static pass family on top of lint.
   Runs the inter-rule dataflow fixpoint (so GRL001-005 see through
   SAVE-defined keys), the action-machine model checker (GRL201-203,
   with executable counterexample schedules), and — under --fleet —
   the GLOBAL-key race analysis (GRL301). Exit codes match grc lint:
   0 clean, 1 warnings with --strict, 2 errors. *)
let verify_cmd =
  let run paths json strict budget fleet max_states canary_strs =
    let parse_canary s =
      let bad () =
        Error (Printf.sprintf "grc verify: --canary expects POLICY=ID[,ID...] (got %S)" s)
      in
      match String.index_opt s '=' with
      | None -> bad ()
      | Some i -> (
        let name = String.sub s 0 i in
        let ids = String.sub s (i + 1) (String.length s - i - 1) in
        if name = "" then bad ()
        else
          match
            List.map
              (fun p -> int_of_string_opt (String.trim p))
              (String.split_on_char ',' ids)
          with
          | parts when List.for_all Option.is_some parts ->
            Ok (name, List.filter_map Fun.id parts)
          | _ -> bad ())
    in
    let canaries_r =
      List.fold_left
        (fun acc s ->
          match (acc, parse_canary s) with
          | Error e, _ -> Error e
          | _, Error e -> Error e
          | Ok l, Ok c -> Ok (l @ [ c ]))
        (Ok []) canary_strs
    in
    match canaries_r with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok canaries -> (
      let compiled = List.map compile_spec_file paths in
      let failures = List.filter_map (function Error e -> Some e | Ok _ -> None) compiled in
      if failures <> [] then begin
        List.iter (fun e -> Format.eprintf "%s@." e) failures;
        2
      end
      else begin
        (* Same --fleet contract as grc lint: each FILE is one node's
           deployment; node-local keys and monitor names are qualified
           per file so only genuinely shared (GLOBAL) state collides.
           The node id also feeds the GRL301 race analysis. *)
        let tagged =
          List.concat
            (List.mapi
               (fun node_id -> function
                 | Error _ -> []
                 | Ok l ->
                   List.map
                     (fun (f, m) ->
                       let m =
                         if fleet then Guardrails.Monitor.qualify ~node_id m else m
                       in
                       (node_id, (f, m)))
                     l)
               compiled)
        in
        let file_of =
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun (_, (f, (m : Guardrails.Monitor.t))) ->
              if not (Hashtbl.mem tbl m.name) then Hashtbl.add tbl m.name f)
            tagged;
          fun name -> Hashtbl.find_opt tbl name
        in
        (* A repro command line only makes sense when there is exactly
           one spec file to hand to grc soak --spec. *)
        let repro =
          match paths with
          | [ spec ] -> Some (fun s -> Gr_fault.Replay.repro_command ~spec s)
          | _ -> None
        in
        let config =
          {
            Guardrails.Audit.lint = { Guardrails.Analyze.hook_budget_ns = budget };
            machine = { Guardrails.Machine.max_states; canaries };
            fleet;
          }
        in
        let audit =
          Guardrails.Audit.run ~config ?repro (List.map (fun (n, (_, m)) -> (n, m)) tagged)
        in
        let diags = audit.Guardrails.Audit.diagnostics in
        let machine = audit.Guardrails.Audit.machine in
        if json then begin
          let with_file (d : Guardrails.Diagnostic.t) =
            let file =
              match d.monitor with
              | Some m -> (
                match file_of m with
                | Some f -> Guardrails.Json.Str f
                | None -> Guardrails.Json.Null)
              | None -> Guardrails.Json.Null
            in
            match Guardrails.Diagnostic.to_json d with
            | Guardrails.Json.Obj fields -> Guardrails.Json.Obj (("file", file) :: fields)
            | other -> other
          in
          print_endline
            (Guardrails.Json.to_string (Guardrails.Json.Arr (List.map with_file diags)))
        end
        else begin
          List.iter
            (fun (d : Guardrails.Diagnostic.t) ->
              let prefix =
                match d.monitor with
                | Some m -> ( match file_of m with Some f -> f ^ ": " | None -> "")
                | None -> ""
              in
              Format.printf "%s%a@." prefix Guardrails.Diagnostic.pp d;
              match d.repro with
              | Some r -> Format.printf "  repro: %s@." r
              | None -> ())
            diags;
          Format.printf "verify: %d diagnostic(s); %d state(s), %d transition(s) explored%s@."
            (List.length diags) machine.Guardrails.Machine.states
            machine.Guardrails.Machine.transitions
            (if machine.Guardrails.Machine.truncated then
               " (truncated: GRL201/202 suppressed, raise --max-states)"
             else "")
        end;
        let has sev =
          List.exists (fun (d : Guardrails.Diagnostic.t) -> d.severity = sev) diags
        in
        if has Guardrails.Diagnostic.Error then 2
        else if has Guardrails.Diagnostic.Warning && strict then 1
        else 0
      end)
  in
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Guardrail source file(s); verified together as one deployment. $(b,-) reads a \
             spec from standard input — pipe the exact bytes you are about to $(b,grc push) \
             through the same static pass the daemon's admission controller runs.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array.") in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Exit 1 when warnings are found (errors always exit 2).")
  in
  let budget =
    Arg.(
      value & opt float 500.
      & info [ "hook-budget-ns" ] ~docv:"NS"
          ~doc:"Per-FUNCTION-hook cumulative static cost budget in nanoseconds (default 500).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Treat each FILE as one fleet node's deployment: node-local keys and monitor \
             names are qualified per file, interference checks only fire for genuinely \
             shared state, and the GRL301 GLOBAL-key race analysis runs across nodes.")
  in
  let max_states =
    Arg.(
      value & opt int 4096
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Action-machine exploration cap (default 4096). When hit, GRL201/GRL202 \
             absence proofs are suppressed; GRL203 cycles found so far still report.")
  in
  let canary =
    Arg.(
      value & opt_all string []
      & info [ "canary" ] ~docv:"POLICY=ID[,ID...]"
          ~doc:
            "Model POLICY's REPLACE as canaried onto the given node subset; repeatable. \
             Enables the GRL202 never-promoting-canary check for that policy.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Whole-deployment verification: inter-rule fixpoint dataflow, action-machine \
          model checking with executable counterexamples, and fleet race analysis")
    Term.(const run $ files $ json $ strict $ budget $ fleet $ max_states $ canary)

let cgen_cmd =
  let run path header =
    if header then begin
      print_string Guardrails.Cgen.runtime_header;
      0
    end
    else
      with_spec path (fun spec ->
          let monitors = List.map Guardrails.Opt.optimize_monitor (Guardrails.Lower.spec spec) in
          let bad =
            List.filter_map
              (fun m ->
                match Guardrails.Verify.verify m with
                | Ok _ -> None
                | Error errs -> Some (m.Guardrails.Monitor.name, errs))
              monitors
          in
          match bad with
          | (name, errs) :: _ ->
            Format.eprintf "monitor %s rejected by the verifier:@." name;
            List.iter (fun e -> Format.eprintf "  %s@." e) errs;
            1
          | [] ->
            print_string (Guardrails.Cgen.spec monitors);
            0)
  in
  let header =
    Arg.(value & flag & info [ "header" ] ~doc:"Print guardrail_rt.h instead of monitor code.")
  in
  Cmd.v
    (Cmd.info "cgen" ~doc:"Emit the C translation of verified monitors (kernel-module target)")
    Term.(const run $ file_arg $ header)

let fmt_cmd =
  let run path =
    with_spec path (fun spec ->
        print_string (Guardrails.Pretty.spec_to_string spec);
        0)
  in
  Cmd.v (Cmd.info "fmt" ~doc:"Pretty-print the canonical form") Term.(const run $ file_arg)

(* grc run / grc soak contract: a missing or unparsable spec file is a
   usage error — one line on stderr, exit 2, never a backtrace. The
   positional argument is a plain string (not Arg.file) so the check
   and exit code are ours. *)
let load_spec_source path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "grc: %s: no such file" path)
  else
    match read_file path with
    | exception Sys_error e -> Error (Printf.sprintf "grc: %s" e)
    | src -> (
      match Guardrails.Parser.parse src with
      | Error (pos, msg) ->
        Error (Format.asprintf "grc: %s: parse error at %a: %s" path Guardrails.Ast.pp_pos pos msg)
      | Ok spec -> (
        match Guardrails.Typecheck.check_spec spec with
        | Error (e :: _) -> Error (Format.asprintf "grc: %s: %a" path Guardrails.Typecheck.pp_error e)
        | Error [] | Ok () -> Ok src))

(* Shared --domains contract (docs/PARALLEL.md): an explicit integer
   must be positive (0/negative is a usage error, exit 2), "auto"
   resolves via the runtime's recommendation clamped to the node
   count and says so once at startup. *)
let resolve_domains ~cmd ~nodes = function
  | None -> Ok 1
  | Some "auto" ->
    let recommended = Domain.recommended_domain_count () in
    let domains = max 1 (min recommended nodes) in
    Printf.printf
      "%s: --domains auto -> %d (Domain.recommended_domain_count () = %d, clamped to %d \
       node(s))\n\
       %!"
      cmd domains recommended nodes;
    Ok domains
  | Some s -> (
    match int_of_string_opt s with
    | Some d when d > 0 -> Ok d
    | Some _ -> Error (Printf.sprintf "%s: --domains must be positive (got %s)" cmd s)
    | None -> Error (Printf.sprintf "%s: --domains expects a positive integer or 'auto'" cmd))

(* Shared --engine contract: selects the monitor execution tier
   (docs/PERFORMANCE.md). Anything but the three tier names is a
   usage error — one line on stderr, exit 2. *)
let resolve_engine ~cmd = function
  | None -> Ok None
  | Some s -> (
    match Guardrails.Vm.tier_of_string s with
    | Some t -> Ok (Some t)
    | None -> Error (Printf.sprintf "%s: --engine expects tree, reg or jit (got %s)" cmd s))

let engine_arg ~cmd =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "engine" ] ~docv:"tree|reg|jit"
        ~doc:
          (Printf.sprintf
             "Monitor execution tier for $(b,%s) (default jit): $(b,tree) is the reference \
              tree-walking interpreter, $(b,reg) the register/superinstruction VM, $(b,jit) \
              the closure template JIT (which falls back to reg per-monitor on cross-shard \
              fleet reads). All tiers are bit-identical in verdicts, cost accounting, store \
              effects and traces — proven by the cross-tier differential fuzzer — so this is \
              a pure performance knob."
             cmd))

let domains_arg ~cmd =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "domains" ] ~docv:"K|auto"
        ~doc:
          (Printf.sprintf
             "OCaml domains for fleet execution (default 1). With K > 1, $(b,%s) runs each \
              node's kernel on its own domain under the deterministic epoch-barrier protocol \
              (see docs/PARALLEL.md): identical REPORTs, actions and merged-store state for \
              every K, only wall-clock changes. $(b,auto) resolves to the runtime's \
              recommended domain count clamped to --nodes. Clamped to the node count; 1 is \
              bit-identical to the historical sequential path."
             cmd))

let run_cmd =
  (* Post-run telemetry plumbing shared by the single-node and fleet
     paths: the OpenMetrics exposition, the dropped-report warning
     and the --strict-drops exit-code contract. *)
  let finish ~tracers ~metrics_out ~strict_drops ok_code =
    (match metrics_out with
    | Some out ->
      Guardrails.Trace_export.write_openmetrics ~path:out tracers;
      Format.printf "OpenMetrics telemetry written to %s@." out
    | None -> ());
    let dropped_reports =
      List.fold_left
        (fun acc tr -> acc + Guardrails.Trace_sink.dropped (Guardrails.Trace.reports tr))
        0 tracers
    in
    if dropped_reports > 0 then
      Printf.eprintf
        "grc run: warning: %d report event(s) dropped by the bounded report sink; raise its \
         capacity or drain it more often\n"
        dropped_reports;
    if strict_drops && dropped_reports > 0 then 1 else ok_code
  in
  let run path until seed trace_out nodes metrics_out strict_drops domains engine_str =
    if nodes < 1 then begin
      prerr_endline "grc run: --nodes must be positive";
      2
    end
    else begin
      match resolve_engine ~cmd:"grc run" engine_str with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok engine -> (
      match resolve_domains ~cmd:"grc run" ~nodes domains with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok domains ->
      let domains = max 1 (min domains nodes) in
      (* Selfcost's accumulators are process-global; node domains
         would race them, so host-cost accounting stays single-domain
         only (the rest of the telemetry is per-tracer and safe). *)
      if Option.is_some metrics_out then begin
        Guardrails.Selfcost.set_enabled (domains = 1);
        if domains > 1 then
          prerr_endline
            "grc run: note: self-cost accounting is disabled under --domains > 1 (its \
             process-global counters are not domain-safe)"
      end;
      match load_spec_source path with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok src when nodes = 1 -> (
        let kernel = Guardrails.Kernel.create ~seed in
        let d =
          Guardrails.Deployment.create ~kernel ~tracing:(Option.is_some trace_out) ?engine ()
        in
        match Guardrails.Deployment.install_source d src with
        | Error e ->
          Format.eprintf "%s: %a@." path Guardrails.Deployment.pp_error e;
          1
        | Ok handles ->
        Format.printf "%s: installed %d monitor(s), running %gs of idle simulated kernel@."
          path (List.length handles) until;
        Guardrails.Kernel.run_until kernel (Guardrails.Util.Time_ns.of_float_sec until);
        Format.printf "%a@." Guardrails.Engine.pp_report (Guardrails.Deployment.engine d);
        Format.printf "%a" Guardrails.Trace_export.pp_summary (Guardrails.Deployment.tracer d);
        (match trace_out with
        | Some out ->
          Guardrails.Deployment.write_chrome_trace d ~path:out;
          Format.printf "Chrome trace written to %s (open at chrome://tracing)@." out
        | None -> ());
        finish
          ~tracers:[ Guardrails.Deployment.tracer d ]
          ~metrics_out ~strict_drops 0)
      | Ok src -> (
        let fleet =
          Guardrails.Fleet.create ~nodes ~seed ~tracing:(Option.is_some trace_out) ~domains
            ?engine ()
        in
        match Guardrails.Fleet.install_source fleet src with
        | Error e ->
          Format.eprintf "%s: %a@." path Guardrails.Deployment.pp_error e;
          1
        | Ok handles ->
          Format.printf
            "%s: installed %d monitor(s) fleet-wide over %d idle node(s), running %gs@." path
            (List.length handles) nodes until;
          Guardrails.Fleet.run_until fleet (Guardrails.Util.Time_ns.of_float_sec until);
          Format.printf "%a@." Guardrails.Engine.pp_report (Guardrails.Fleet.engine fleet);
          Format.printf "%a" Guardrails.Trace_export.pp_summary (Guardrails.Fleet.tracer fleet);
          (match trace_out with
          | Some out ->
            Guardrails.Deployment.write_chrome_trace (Guardrails.Fleet.control fleet)
              ~path:out;
            Format.printf "Chrome trace written to %s (open at chrome://tracing)@." out
          | None -> ());
          let tracers =
            Guardrails.Fleet.tracer fleet
            :: Array.to_list (Array.map Guardrails.Node.tracer (Guardrails.Fleet.nodes fleet))
          in
          finish ~tracers ~metrics_out ~strict_drops 0))
    end
  in
  let until =
    Arg.(
      value & opt float 5.
      & info [ "until" ] ~docv:"SECONDS" ~doc:"Simulated seconds to run (default 5).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Kernel PRNG seed.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json" ~doc:"Write a Chrome trace_event file.")
  in
  let nodes =
    Arg.(
      value & opt int 1
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Number of fleet nodes (default 1). With N > 1 the monitors install fleet-wide: \
             plain keys aggregate the merged view of every node's shard, GLOBAL(key) resolves \
             to the shared tier, and REPLACE/RETRAIN act through the fleet proxies.")
  in
  let path_arg =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Guardrail source file.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"OUT.prom"
          ~doc:
            "Write the post-run telemetry as an OpenMetrics/Prometheus text exposition: \
             per-monitor counters and latency summaries (per-node labels and fleet rollups \
             under --nodes), trace-channel accounting, and the observability plane's own \
             self-overhead counters.")
  in
  let strict_drops =
    Arg.(
      value & flag
      & info [ "strict-drops" ]
          ~doc:
            "Exit 1 when any report event was dropped by the bounded report sink (a warning \
             is printed on stderr either way).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Install monitors against an idle simulated kernel (or fleet of kernels), drive \
          their TIMER triggers, and report per-monitor telemetry")
    Term.(
      const run $ path_arg $ until $ seed $ trace_out $ nodes $ metrics_out $ strict_drops
      $ domains_arg ~cmd:"grc run"
      $ engine_arg ~cmd:"grc run")

(* grc explain: offline decision forensics over a Chrome trace file
   written by `grc run --trace` (or any deployment export). Selects a
   decision — a REPORT by index, actions by name, or everything a
   monitor did — and prints the full causal chain: the sim dispatch
   that rooted it, the hook/check path, the rule disassembly, the
   sibling actions the same decision fired, and the store writes
   (recursively) that produced the values the rule read. *)
let explain_cmd =
  let module P = Guardrails.Provenance in
  let run path report_n action_name monitor_name json depth =
    match P.load path with
    | Error e ->
      Printf.eprintf "grc explain: %s: %s\n" path e;
      2
    | Ok prov -> (
      (match P.orphans prov with
      | [] -> ()
      | orphans ->
        Printf.eprintf
          "grc explain: warning: %d event(s) reference a parent span missing from the trace \
           (bounded sink overflow?); chains through them are truncated\n"
          (List.length orphans));
      let named kind = function
        | [] ->
          Printf.eprintf "grc explain: no %s found in %s\n" kind path;
          None
        | l -> Some l
      in
      let targets =
        match (report_n, action_name, monitor_name) with
        | Some n, None, None -> (
          let reports = P.reports prov in
          match List.nth_opt reports n with
          | Some r -> Some [ r ]
          | None ->
            Printf.eprintf "grc explain: --report %d out of range (%d report(s) in %s)\n" n
              (List.length reports) path;
            None)
        | None, Some name, None -> named (Printf.sprintf "%S actions" name) (P.actions ~name prov)
        | None, None, Some name ->
          named (Printf.sprintf "decisions by monitor %S" name) (P.monitor_decisions prov name)
        | None, None, None -> named "reports" (P.reports prov)
        | _ ->
          prerr_endline "grc explain: --report, --action and --monitor are mutually exclusive";
          None
      in
      match targets with
      | None -> 2
      | Some targets ->
        let explanations = List.map (P.explain ~max_depth:depth prov) targets in
        if json then
          print_endline
            (Guardrails.Json.to_string
               (Guardrails.Json.Arr (List.map P.explanation_to_json explanations)))
        else
          List.iteri
            (fun i e ->
              if i > 0 then print_newline ();
              Format.printf "%a@." P.pp_explanation e)
            explanations;
        0)
  in
  let trace_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"TRACE.json" ~doc:"Chrome trace_event file written by grc run --trace.")
  in
  let report_n =
    Arg.(
      value
      & opt (some int) None
      & info [ "report" ] ~docv:"N" ~doc:"Explain the N-th REPORT event (0-based).")
  in
  let action_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "action" ] ~docv:"NAME"
          ~doc:"Explain every NAME action (REPLACE, RESTORE, SAVE, RETRAIN.scheduled, ...).")
  in
  let monitor_name =
    Arg.(
      value
      & opt (some string) None
      & info [ "monitor" ] ~docv:"NAME" ~doc:"Explain every decision made by monitor NAME.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit explanations as a JSON array.") in
  let depth =
    Arg.(
      value & opt int 4
      & info [ "depth" ] ~docv:"D"
          ~doc:"How many store-write hops to unwind when tracing input data flow (default 4).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Reconstruct the causal chain behind guardrail decisions from a trace: dispatch -> \
          hook -> check -> actions, with rule disassembly and recursive input provenance")
    Term.(const run $ trace_arg $ report_n $ action_name $ monitor_name $ json $ depth)

(* ---- grc serve: the spec lifecycle as a live control plane ----

   A long-running daemon owning a deployment (or a fleet), ingesting
   the simulated workload continuously, and accepting versioned spec
   pushes over a unix-domain socket. One JSON request per connection:
   the client sends a single object and shuts down its write side,
   the server replies with one object and closes.

     {"cmd":"push","who":"alice","spec":"..."}  -> admission decision
     {"cmd":"advance","epochs":N}               -> drive N epoch barriers
     {"cmd":"status"}                           -> lifecycle snapshot
     {"cmd":"quit"}                             -> final report, exit

   Admission, canary, verdict, promotion and rollback all live in
   Guardrails.Lifecycle and happen at epoch barriers; serve is only
   the transport. With --hold the sim advances ONLY on advance
   commands, so a scripted session is fully deterministic (the
   serve-smoke golden audit log relies on this); without it the
   daemon free-runs to --until, polling the socket between epochs,
   then keeps serving until quit. *)

let write_fd_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let read_fd_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ()

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let module J = Guardrails.Json in
  let module L = Guardrails.Lifecycle in
  let module Time_ns = Guardrails.Util.Time_ns in
  let obj_field name = function J.Obj fields -> List.assoc_opt name fields | _ -> None in
  let str_field name j = match obj_field name j with Some (J.Str s) -> Some s | _ -> None in
  let int_field name j =
    match obj_field name j with Some (J.Num n) -> Some (int_of_float n) | _ -> None
  in
  let decision_json = function
    | L.Admitted { version } ->
      J.Obj
        [
          ("ok", J.Bool true);
          ("decision", J.Str "admitted");
          ("version", J.Num (float_of_int version));
        ]
    | L.Rejected { version; reason; diagnostics } ->
      J.Obj
        [
          ("ok", J.Bool false);
          ("decision", J.Str "rejected");
          ("version", J.Num (float_of_int version));
          ("reason", J.Str reason);
          ("diagnostics", J.Arr (List.map Guardrails.Diagnostic.to_json diagnostics));
        ]
  in
  let run path socket_path until seed nodes domains_str engine_str hold audit_path trace_out
      metrics_out canary_nodes canary_barriers max_fire_rate who =
    if nodes < 1 then begin
      prerr_endline "grc serve: --nodes must be positive";
      2
    end
    else begin
      match resolve_engine ~cmd:"grc serve" engine_str with
      | Error msg ->
        prerr_endline msg;
        2
      | Ok engine -> (
        match resolve_domains ~cmd:"grc serve" ~nodes domains_str with
        | Error msg ->
          prerr_endline msg;
          2
        | Ok domains -> (
          let domains = max 1 (min domains nodes) in
          match load_spec_source path with
          | Error msg ->
            prerr_endline msg;
            2
          | Ok src -> (
            let tracing = Option.is_some trace_out in
            let target, kernel_engine, tracer =
              if nodes = 1 then begin
                let kernel = Guardrails.Kernel.create ~seed in
                let d = Guardrails.Deployment.create ~kernel ~tracing ?engine () in
                ( L.Deployment d,
                  kernel.Guardrails.Kernel.engine,
                  Guardrails.Deployment.tracer d )
              end
              else begin
                let fleet =
                  Guardrails.Fleet.create ~nodes ~seed ~tracing ~domains ?engine ()
                in
                (L.Fleet fleet, Guardrails.Fleet.sim fleet, Guardrails.Fleet.tracer fleet)
              end
            in
            let audit_log =
              Option.map (fun p -> Guardrails.Audit_log.create ~path:p) audit_path
            in
            let audit =
              match audit_log with
              | Some log -> fun e -> Guardrails.Audit_log.append log e
              | None -> fun _ -> ()
            in
            let config =
              { L.default_config with canary_nodes; canary_barriers; max_fire_rate }
            in
            let lc = L.create ~config ~audit target in
            match L.boot lc ~who src with
            | Error e ->
              Format.eprintf "%s: %a@." path Guardrails.Deployment.pp_error e;
              Option.iter Guardrails.Audit_log.close audit_log;
              1
            | Ok handles ->
              let epoch =
                match target with
                | L.Fleet f -> Guardrails.Fleet.epoch f
                | L.Deployment _ -> Guardrails.Fleet.default_epoch
              in
              let now () = Guardrails.Sim.now kernel_engine in
              (* One epoch per step: the fleet path fires its
                 registered lifecycle hook inside run_until; the
                 single-deployment path drives the same barrier via
                 run_chunked, whose event stream is byte-identical to
                 an unchunked run. *)
              let advance_epochs n =
                for _ = 1 to n do
                  let limit = Time_ns.add (now ()) epoch in
                  match target with
                  | L.Fleet f -> Guardrails.Fleet.run_until f limit
                  | L.Deployment _ ->
                    Guardrails.Sim.run_chunked kernel_engine ~epoch ~limit
                      ~at_barrier:(L.barrier lc)
                done
              in
              let status_json () =
                J.Obj
                  [
                    ("ok", J.Bool true);
                    ("phase", J.Str (L.phase_name lc));
                    ("now_sec", J.Num (Time_ns.to_float_sec (now ())));
                    ( "active",
                      match L.active lc with
                      | None -> J.Null
                      | Some v ->
                        J.Obj
                          [
                            ("version", J.Num (float_of_int v.L.id));
                            ("digest", J.Str v.L.digest);
                            ("who", J.Str v.L.who);
                          ] );
                    ("versions", J.Num (float_of_int (L.version_count lc)));
                    ("promotions", J.Num (float_of_int (L.promotions lc)));
                    ("rollbacks", J.Num (float_of_int (L.rollbacks lc)));
                  ]
              in
              let stop = ref false in
              let dispatch req =
                match str_field "cmd" req with
                | Some "push" -> (
                  match str_field "spec" req with
                  | None ->
                    J.Obj
                      [ ("ok", J.Bool false); ("error", J.Str "push requires a spec field") ]
                  | Some spec ->
                    let who = Option.value ~default:"anonymous" (str_field "who" req) in
                    decision_json (L.push lc ~who spec))
                | Some "advance" ->
                  advance_epochs (max 0 (Option.value ~default:1 (int_field "epochs" req)));
                  status_json ()
                | Some "status" -> status_json ()
                | Some "quit" ->
                  stop := true;
                  J.Obj [ ("ok", J.Bool true); ("stopping", J.Bool true) ]
                | _ ->
                  J.Obj
                    [
                      ("ok", J.Bool false);
                      ("error", J.Str "unknown cmd (expected push|advance|status|quit)");
                    ]
              in
              let handle_conn fd =
                Fun.protect
                  ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                  (fun () ->
                    let resp =
                      match J.parse (read_fd_all fd) with
                      | Error e ->
                        J.Obj
                          [ ("ok", J.Bool false); ("error", J.Str ("bad request: " ^ e)) ]
                      | Ok req -> dispatch req
                    in
                    write_fd_all fd (J.to_string resp ^ "\n"))
              in
              if Sys.file_exists socket_path then Sys.remove socket_path;
              let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.bind sock (Unix.ADDR_UNIX socket_path);
              Unix.listen sock 16;
              Printf.printf "grc serve: %s: installed %d monitor(s) as v1, listening on %s (%s)\n%!"
                path (List.length handles) socket_path
                (if hold then "hold: sim advances on push/advance commands"
                 else Printf.sprintf "free-running %gs then serving until quit" until);
              let until_ns = Time_ns.of_float_sec until in
              if not hold then
                while (not !stop) && Time_ns.compare (now ()) until_ns < 0 do
                  (match Unix.select [ sock ] [] [] 0. with
                  | [ _ ], _, _ ->
                    let fd, _ = Unix.accept sock in
                    handle_conn fd
                  | _ -> ());
                  advance_epochs 1
                done;
              while not !stop do
                let fd, _ = Unix.accept sock in
                handle_conn fd
              done;
              (try Unix.close sock with Unix.Unix_error _ -> ());
              if Sys.file_exists socket_path then Sys.remove socket_path;
              let report_engine =
                match target with
                | L.Deployment d -> Guardrails.Deployment.engine d
                | L.Fleet f -> Guardrails.Fleet.engine f
              in
              Format.printf "%a@." Guardrails.Engine.pp_report report_engine;
              Format.printf "%a" Guardrails.Trace_export.pp_summary tracer;
              Format.printf "%a@." L.pp_status lc;
              (match trace_out with
              | Some out ->
                (match target with
                | L.Deployment d -> Guardrails.Deployment.write_chrome_trace d ~path:out
                | L.Fleet f ->
                  Guardrails.Deployment.write_chrome_trace (Guardrails.Fleet.control f)
                    ~path:out);
                Format.printf "Chrome trace written to %s (open at chrome://tracing)@." out
              | None -> ());
              (match audit_log with
              | Some log ->
                Guardrails.Audit_log.close log;
                Format.printf "audit log: %d decision event(s) in %s@."
                  (Guardrails.Audit_log.appended log)
                  (Guardrails.Audit_log.path log)
              | None -> ());
              (match metrics_out with
              | Some out ->
                let tracers =
                  match target with
                  | L.Deployment d -> [ Guardrails.Deployment.tracer d ]
                  | L.Fleet f ->
                    Guardrails.Fleet.tracer f
                    :: Array.to_list
                         (Array.map Guardrails.Node.tracer (Guardrails.Fleet.nodes f))
                in
                Guardrails.Trace_export.write_openmetrics ~path:out tracers;
                Format.printf "OpenMetrics telemetry written to %s@." out
              | None -> ());
              0)))
    end
  in
  let until =
    Arg.(
      value & opt float 5.
      & info [ "until" ] ~docv:"SECONDS"
          ~doc:
            "Simulated seconds to free-run before settling into request-driven serving \
             (default 5); ignored under --hold.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Kernel PRNG seed.") in
  let nodes =
    Arg.(
      value & opt int 1
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Fleet size (default 1). With N > 1, admitted pushes canary onto a node subset \
             before fleet-wide promotion; with N = 1 the canary window still gates \
             promotion, judged on the whole deployment.")
  in
  let hold =
    Arg.(
      value & flag
      & info [ "hold" ]
          ~doc:
            "Deterministic mode: simulated time advances only on $(b,advance) commands \
             (and never free-runs). Scripted sessions — e.g. the serve-smoke golden — \
             produce identical audit logs and traces on every host.")
  in
  let audit_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-log" ] ~docv:"OUT.jsonl"
          ~doc:
            "Append every control-plane decision (push, admit/reject, canary, verdict, \
             promote, rollback) as one JSON trace event per line; $(b,grc explain) walks \
             the same file.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json" ~doc:"Write a Chrome trace_event file on exit.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"OUT.prom"
          ~doc:"Write the final telemetry as an OpenMetrics text exposition on exit.")
  in
  let canary_nodes =
    Arg.(
      value & opt int 1
      & info [ "canary-nodes" ] ~docv:"N"
          ~doc:"Nodes an admitted push canaries onto (default 1; clamped below --nodes).")
  in
  let canary_barriers =
    Arg.(
      value & opt int 3
      & info [ "canary-barriers" ] ~docv:"N"
          ~doc:"Consecutive clean epoch-barrier verdicts required to promote (default 3).")
  in
  let max_fire_rate =
    Arg.(
      value & opt float 5.
      & info [ "max-fire-rate" ] ~docv:"PER_SEC"
          ~doc:
            "Rollback guardrail: a canary firing actions faster than this (per simulated \
             second) is rolled back at the next barrier (default 5). Oscillation alerts \
             on the canary always roll back.")
  in
  let who =
    Arg.(
      value & opt string "operator"
      & info [ "who" ] ~docv:"NAME" ~doc:"Identity recorded for the boot spec (default operator).")
  in
  let path_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Boot guardrail spec, installed directly as version 1.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the spec lifecycle as a live control plane: a daemon owning a deployment or \
          fleet, admitting versioned spec pushes over a unix socket through static \
          analysis, canarying them onto a node subset, and auto-promoting or rolling back \
          on epoch-barrier guardrail verdicts — every decision audit-logged")
    Term.(
      const run $ path_arg $ socket_arg $ until $ seed $ nodes
      $ domains_arg ~cmd:"grc serve"
      $ engine_arg ~cmd:"grc serve"
      $ hold $ audit_path $ trace_out $ metrics_out $ canary_nodes $ canary_barriers
      $ max_fire_rate $ who)

(* grc push: the client side of the serve socket. Also carries the
   ctl verbs (advance/status/quit) so a scripted rollout session is
   entirely push invocations. *)
let push_cmd =
  let module J = Guardrails.Json in
  let obj_field name = function J.Obj fields -> List.assoc_opt name fields | _ -> None in
  let run socket_path spec_path who advance status quit json_out =
    let request req =
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
            | exception Unix.Unix_error (e, _, _) ->
              Error (Printf.sprintf "%s: %s" socket_path (Unix.error_message e))
            | () ->
              write_fd_all fd (J.to_string req);
              Unix.shutdown fd Unix.SHUTDOWN_SEND;
              Ok (read_fd_all fd))
    in
    let req_r =
      if quit then Ok (J.Obj [ ("cmd", J.Str "quit") ])
      else if status then Ok (J.Obj [ ("cmd", J.Str "status") ])
      else
        match advance with
        | Some n when n >= 0 ->
          Ok (J.Obj [ ("cmd", J.Str "advance"); ("epochs", J.Num (float_of_int n)) ])
        | Some _ -> Error "grc push: --advance must be non-negative"
        | None -> (
          match spec_path with
          | None ->
            Error "grc push: pass a SPEC file (or -), or one of --advance/--status/--quit"
          | Some path -> (
            match read_spec_input path with
            | exception Sys_error e -> Error (Printf.sprintf "grc push: %s" e)
            | _, src ->
              Ok
                (J.Obj
                   [ ("cmd", J.Str "push"); ("who", J.Str who); ("spec", J.Str src) ])))
    in
    match req_r with
    | Error msg ->
      prerr_endline msg;
      2
    | Ok req -> (
      match request req with
      | Error msg ->
        Printf.eprintf "grc push: %s\n" msg;
        2
      | Ok raw -> (
        match J.parse (String.trim raw) with
        | Error e ->
          Printf.eprintf "grc push: bad response: %s\n" e;
          2
        | Ok resp ->
          if json_out then print_endline (J.to_string resp)
          else begin
            (match (obj_field "decision" resp, obj_field "version" resp) with
            | Some (J.Str d), Some (J.Num v) ->
              Printf.printf "v%d %s\n" (int_of_float v) d
            | _ -> ());
            (match obj_field "reason" resp with
            | Some (J.Str r) -> Printf.printf "reason: %s\n" r
            | _ -> ());
            (match obj_field "diagnostics" resp with
            | Some (J.Arr diags) ->
              List.iter
                (fun d ->
                  match
                    (obj_field "severity" d, obj_field "code" d, obj_field "message" d)
                  with
                  | Some (J.Str sev), Some (J.Str code), Some (J.Str msg) ->
                    Printf.printf "  %s %s: %s\n" sev code msg
                  | _ -> ())
                diags
            | _ -> ());
            (match obj_field "phase" resp with
            | Some (J.Str p) -> Printf.printf "phase: %s\n" p
            | _ -> ());
            (match obj_field "error" resp with
            | Some (J.Str e) -> Printf.printf "error: %s\n" e
            | _ -> ())
          end;
          (* Exit code mirrors the daemon's decision: 0 admitted /
             acknowledged, 1 rejected, 2 transport or usage error. *)
          (match obj_field "ok" resp with
          | Some (J.Bool true) -> 0
          | _ -> 1)))
  in
  let spec =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:"Guardrail spec to push ($(b,-) reads standard input).")
  in
  let who =
    Arg.(
      value & opt string "anonymous"
      & info [ "who" ] ~docv:"NAME" ~doc:"Identity recorded in the audit log for this push.")
  in
  let advance =
    Arg.(
      value
      & opt (some int) None
      & info [ "advance" ] ~docv:"N"
          ~doc:"Instead of pushing, drive N epoch barriers (the rollout decision points).")
  in
  let status =
    Arg.(value & flag & info [ "status" ] ~doc:"Instead of pushing, print the lifecycle snapshot.")
  in
  let quit =
    Arg.(value & flag & info [ "quit" ] ~doc:"Instead of pushing, shut the daemon down.")
  in
  let json_out =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the daemon's raw JSON response.")
  in
  Cmd.v
    (Cmd.info "push"
       ~doc:
         "Push a versioned spec to a running grc serve daemon (or drive/inspect it with \
          --advance, --status, --quit)")
    Term.(const run $ socket_arg $ spec $ who $ advance $ status $ quit $ json_out)

let soak_cmd =
  let module Soak = Gr_fault.Soak in
  let module Fault = Gr_fault.Fault in
  let run scenario seed runs duration plan_str spec_path dump_trace smoke nodes domains_str
      engine_str =
    let fail2 msg =
      prerr_endline ("grc soak: " ^ msg);
      2
    in
    let domains_r = resolve_domains ~cmd:"grc soak" ~nodes domains_str in
    let engine_r = resolve_engine ~cmd:"grc soak" engine_str in
    let scenarios_r =
      if scenario = "all" then Ok Soak.scenario_names
      else if List.mem scenario Soak.scenario_names then Ok [ scenario ]
      else
        Error
          (Printf.sprintf "unknown scenario %S (expected %s or all)" scenario
             (String.concat "|" Soak.scenario_names))
    in
    let plan_r =
      match plan_str with
      | None -> Ok None
      | Some s -> (
        match Fault.plan_of_string s with
        | Ok p -> Ok (Some p)
        | Error e -> Error ("bad --plan: " ^ e))
    in
    let spec_r =
      match spec_path with
      | None -> Ok None
      | Some path -> (
        match load_spec_source path with
        | Ok src -> Ok (Some src)
        | Error msg -> Error msg)
    in
    match (scenarios_r, plan_r, spec_r, domains_r, engine_r) with
    | Error e, _, _, _, _ | _, Error e, _, _, _ -> fail2 e
    | _, _, Error msg, _, _ | _, _, _, Error msg, _ | _, _, _, _, Error msg ->
      (* load_spec_source / resolve_domains / resolve_engine already
         carry the prefix. *)
      prerr_endline msg;
      2
    | Ok scenarios, Ok plan, Ok extra_source, Ok domains, Ok engine -> (
      let duration_ns = Guardrails.Util.Time_ns.of_float_sec duration in
      match plan with
      | Some plan -> (
        match scenarios with
        | [ scenario ] ->
          let r =
            Soak.run_one ?extra_source ~nodes ~domains ?engine ~scenario ~seed
              ~duration:duration_ns ~plan ()
          in
          if dump_trace then
            List.iter (fun e -> Format.printf "%a@." Guardrails.Trace_event.pp e) r.Soak.trace;
          Format.printf
            "%s seed=%d: %d events, %d faults injected (%d skipped), %d checks, %d \
             violations@."
            scenario seed r.Soak.events r.Soak.faults_injected r.Soak.faults_skipped
            r.Soak.checks r.Soak.violations;
          List.iter
            (fun (name, on_fallback, flips) ->
              Format.printf "slot %s: %s (%d transition(s))@." name
                (if on_fallback then "fallback" else "learned")
                flips)
            r.Soak.slots;
          if r.Soak.ok then begin
            print_endline "OK";
            0
          end
          else begin
            List.iter (fun p -> print_endline ("PROBLEM: " ^ p)) r.Soak.problems;
            1
          end
        | _ -> fail2 "--plan replays one run; pass a single --scenario with it")
      | None ->
        let scenarios, seeds, duration_ns =
          if smoke then
            (* Bounded CI preset: 21 seeded runs, well under a minute. *)
            ( Soak.scenario_names,
              List.init 7 (fun i -> i + 1),
              Guardrails.Util.Time_ns.of_float_sec 0.5 )
          else (scenarios, List.init runs (fun i -> seed + i), duration_ns)
        in
        let report =
          Soak.soak ~log:print_endline ?extra_source ~nodes ~domains ?engine ~scenarios ~seeds
            ~duration:duration_ns ()
        in
        Format.printf "%a" Soak.pp_report report;
        if report.Soak.failures = [] then 0 else 1)
  in
  let scenario =
    Arg.(
      value & opt string "all"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Scenario template: blk, sched, store, fleet, serve, or all (default).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"First seed (default 1).")
  in
  let runs =
    Arg.(
      value & opt int 5
      & info [ "runs" ] ~docv:"N" ~doc:"Seeds per scenario, starting at --seed (default 5).")
  in
  let duration =
    Arg.(
      value & opt float 2.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Simulated seconds per run (default 2).")
  in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Replay this exact fault plan (the format a failing run prints) instead of \
             generating one; runs a single (scenario, seed) pair.")
  in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE"
          ~doc:"Install these guardrails into every scenario, next to the built-in ones.")
  in
  let dump_trace =
    Arg.(
      value & flag
      & info [ "dump-trace" ]
          ~doc:"With --plan: print the full trace event stream (determinism debugging).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI preset: every scenario, seeds 1-7, 0.5 simulated seconds per run.")
  in
  let nodes =
    Arg.(
      value & opt int 3
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Fleet size for the fleet and serve scenarios (default 3); other scenarios \
             ignore it.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Chaos soak: run fault-injection scenarios under global invariants; failures shrink \
          to a minimal reproducible (seed, plan) command line")
    Term.(
      const run $ scenario $ seed $ runs $ duration $ plan $ spec $ dump_trace $ smoke $ nodes
      $ domains_arg ~cmd:"grc soak"
      $ engine_arg ~cmd:"grc soak")

let () =
  let info = Cmd.info "grc" ~version:"1.0.0" ~doc:"Guardrail compiler for learned OS policies" in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd;
            compile_cmd;
            deps_cmd;
            lint_cmd;
            verify_cmd;
            cgen_cmd;
            fmt_cmd;
            run_cmd;
            explain_cmd;
            serve_cmd;
            push_cmd;
            soak_cmd;
          ]))
