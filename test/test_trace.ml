(* Tests for gr_trace: ring-buffer sinks, tracer gating, exporter
   round-trips, trace determinism, and the REPORT channel the runtime
   violation log is a view over. *)

open Gr_util
module Event = Gr_trace.Event
module Sink = Gr_trace.Sink
module Tracer = Gr_trace.Tracer
module Metrics = Gr_trace.Metrics
module Export = Gr_trace.Export
module Json = Gr_trace.Json
module Provenance = Gr_trace.Provenance
module Selfcost = Gr_trace.Selfcost

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ev ?(ts = 0) ?dur_ns ?args ?(cat = "test") ?(ph = Event.Instant) name =
  Event.make ~ts ?dur_ns ?args ~cat ~ph name

(* ---------- Sink ---------- *)

let test_sink_drop_newest () =
  let s = Sink.create ~capacity:4 () in
  for i = 1 to 10 do
    Sink.emit s (ev ~ts:i (Printf.sprintf "e%d" i))
  done;
  check_int "bounded at capacity" 4 (Sink.length s);
  check_int "all emits counted" 10 (Sink.emitted s);
  check_int "overflow counted as drops" 6 (Sink.dropped s);
  check_bool "full" true (Sink.is_full s);
  (* eBPF-ringbuf discipline: when full the incoming event is the one
     rejected, so the earliest events survive. *)
  Alcotest.(check (list string))
    "oldest events kept, oldest first" [ "e1"; "e2"; "e3"; "e4" ]
    (List.map (fun (e : Event.t) -> e.name) (Sink.to_list s))

let test_sink_overwrite_oldest () =
  let s = Sink.create ~capacity:4 ~overflow:Sink.Overwrite_oldest () in
  for i = 1 to 10 do
    Sink.emit s (ev ~ts:i (Printf.sprintf "e%d" i))
  done;
  check_int "bounded at capacity" 4 (Sink.length s);
  check_int "evictions counted as drops" 6 (Sink.dropped s);
  Alcotest.(check (list string))
    "most recent window kept" [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun (e : Event.t) -> e.name) (Sink.to_list s))

(* Fleet discipline: node tracers run small Overwrite_oldest rings, so
   a long soak keeps the freshest window per node while the accounting
   still reflects everything that was ever emitted. *)
let test_sink_overwrite_oldest_node_tagged () =
  let tr =
    Tracer.create
      ~clock:(fun () -> 0)
      ~capacity:4 ~overflow:Sink.Overwrite_oldest ~node_id:3 ()
  in
  Tracer.set_enabled tr true;
  for i = 1 to 10 do
    Tracer.instant tr ~cat:"test" (Printf.sprintf "e%d" i)
  done;
  let s = Tracer.events tr in
  check_int "bounded at capacity" 4 (Sink.length s);
  check_int "all emits counted" 10 (Sink.emitted s);
  check_int "evictions counted as drops" 6 (Sink.dropped s);
  let survivors = Sink.to_list s in
  Alcotest.(check (list string))
    "most recent window kept" [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun (e : Event.t) -> e.name) survivors);
  List.iteri
    (fun i (e : Event.t) ->
      check_bool "survivor keeps its node tag" true
        (List.assoc_opt "node" e.args = Some (Event.Int 3));
      (* Span ids are allocated per emission, so the surviving window
         carries the ids of the last four emissions, in order. *)
      check_bool "survivor keeps its original span id" true
        (List.assoc_opt "span" e.args = Some (Event.Int (6 + i))))
    survivors

let test_sink_clear_keeps_accounting () =
  let s = Sink.create ~capacity:2 () in
  for i = 1 to 5 do
    Sink.emit s (ev ~ts:i "e")
  done;
  Sink.clear s;
  check_int "empty after clear" 0 (Sink.length s);
  check_int "emitted preserved" 5 (Sink.emitted s);
  check_int "dropped preserved" 3 (Sink.dropped s);
  Sink.emit s (ev ~ts:6 "f");
  check_int "usable after clear" 1 (Sink.length s)

(* ---------- Tracer gating ---------- *)

let test_tracer_gating () =
  let tr = Tracer.create ~clock:(fun () -> 0) () in
  Tracer.instant tr ~cat:"test" "dropped-while-disabled";
  check_int "disabled tracer emits nothing" 0 (Sink.emitted (Tracer.events tr));
  Tracer.report tr "violation";
  check_int "reports bypass the gate" 1 (Sink.length (Tracer.reports tr));
  Tracer.set_enabled tr true;
  Tracer.instant tr ~cat:"test" "recorded";
  Tracer.with_span tr ~cat:"test" "span" (fun () -> ());
  check_int "enabled tracer records (instant + B + E)" 3 (Sink.length (Tracer.events tr))

let test_tracer_node_tagging () =
  let tr = Tracer.create ~clock:(fun () -> 0) ~node_id:2 () in
  Tracer.set_enabled tr true;
  Tracer.instant tr ~cat:"test" ~args:[ ("x", Event.Float 1.) ] "tagged";
  Tracer.instant tr ~cat:"test" "tagged-bare";
  (match Sink.to_list (Tracer.events tr) with
  | [ a; b ] ->
    check_bool "provenance then node id appended to existing args" true
      (a.Event.args
      = [ ("x", Event.Float 1.); ("span", Event.Int 0); ("node", Event.Int 2) ]);
    check_bool "node id materializes args when absent" true
      (b.Event.args = [ ("span", Event.Int 1); ("node", Event.Int 2) ])
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  (* Metrics inherit the tag and surface it as a leading JSON field;
     an untagged tracer's output shape is unchanged. *)
  (match Metrics.to_json (Tracer.metrics tr) with
  | Json.Obj (("node", Json.Num 2.) :: _) -> ()
  | _ -> Alcotest.fail "metrics json must lead with the node field");
  let untagged = Tracer.create ~clock:(fun () -> 0) () in
  match Metrics.to_json (Tracer.metrics untagged) with
  | Json.Obj [ ("monitors", _) ] -> ()
  | _ -> Alcotest.fail "untagged metrics json shape must be unchanged"

(* ---------- Exporter round-trip ---------- *)

(* Durations are chosen integral-in-microseconds so the ns -> us -> ns
   conversion is exact and Event.equal can require bit-equality. *)
let roundtrip_events =
  [
    ev ~ts:0 ~cat:"sim" "dispatch";
    ev ~ts:1_500 ~cat:"hook" ~ph:Event.Begin ~args:[ ("latency_us", Event.Float 12.5) ] "io";
    ev ~ts:2_500 ~cat:"hook" ~ph:Event.End "io";
    ev ~ts:1_000_000 ~cat:"check" ~ph:Event.Complete ~dur_ns:42_000.
      ~args:
        [
          ("monitor_id", Event.Int 3);
          ("violated", Event.Bool true);
          ("trigger", Event.Str "timer");
        ]
      "low-false-submit";
    ev ~ts:2_000_000 ~cat:"store" ~ph:Event.Counter ~args:[ ("value", Event.Float 0.25) ]
      "store:x";
    ev ~ts:3_000_000 ~cat:"report"
      ~args:[ ("message", Event.Str "rate exceeded 5% \"quoted\"\n\xe2\x86\x92") ]
      "m";
  ]

let test_export_roundtrip () =
  let s = Json.to_string (Export.chrome_of_events roundtrip_events) in
  match Export.events_of_chrome_string s with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok parsed ->
    check_int "same count" (List.length roundtrip_events) (List.length parsed);
    List.iter2
      (fun a b ->
        check_bool (Format.asprintf "event round-trips: %a" Event.pp a) true (Event.equal a b))
      roundtrip_events parsed

let test_export_chrome_shape () =
  let j = Export.chrome_of_events roundtrip_events in
  let evs = Option.value ~default:Json.Null (Json.member "traceEvents" j) in
  check_int "one object per event" (List.length roundtrip_events)
    (List.length (Json.to_list evs));
  let first = List.hd (Json.to_list evs) in
  check_string "ph letter" "i"
    (Option.value ~default:"?" (Option.bind (Json.member "ph" first) Json.string_value));
  (* ts is microseconds in the Chrome format. *)
  let check_ev = List.nth (Json.to_list evs) 3 in
  check_int "ts in us" 1000
    (Option.value ~default:0 (Option.bind (Json.member "ts" check_ev) Json.int_value));
  check_int "dur in us" 42
    (Option.value ~default:0 (Option.bind (Json.member "dur" check_ev) Json.int_value))

(* ---------- Json ---------- *)

let test_json_parser () =
  let rt s = Json.to_string (Json.parse_exn s) in
  check_string "object" {|{"a":1,"b":[true,null,"x"]}|} (rt {|{"a":1,"b":[true,null,"x"]}|});
  check_string "whitespace tolerated" {|{"a":1}|} (rt {| { "a" : 1 } |});
  check_string "escapes" {|"a\"b\\c\nd"|} (rt {|"a\"b\\c\nd"|});
  check_string "unicode escape to UTF-8" "\"\xe2\x86\x92\"" (rt {|"→"|});
  check_string "surrogate pair" "\"\xf0\x9f\x98\x80\"" (rt {|"😀"|});
  check_bool "floats" true (Json.equal (Json.parse_exn "2.5e1") (Json.Num 25.));
  check_bool "negative" true (Json.equal (Json.parse_exn "-3") (Json.Num (-3.)));
  check_bool "trailing garbage rejected" true (Result.is_error (Json.parse "1 2"));
  check_bool "bad token rejected" true (Result.is_error (Json.parse "{a:1}"));
  check_bool "unterminated rejected" true (Result.is_error (Json.parse {|{"a":|}));
  check_bool "non-finite prints as null" true
    (String.equal "[null,null]" (Json.to_string (Json.Arr [ Num nan; Num infinity ])))

(* ---------- Metrics ---------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let mon = Metrics.monitor m "g" in
  check_bool "same record on re-lookup" true (mon == Metrics.monitor m "g");
  check_bool "no checks -> nan quantile" true (Float.is_nan (Metrics.latency_quantile mon 0.5));
  for i = 1 to 100 do
    Metrics.record_check mon ~cost_ns:(float_of_int i) ~insts:3 ~samples:2
      ~violated:(i mod 10 = 0)
  done;
  Metrics.record_fire mon;
  check_int "checks" 100 mon.Metrics.checks;
  check_int "violations" 10 mon.Metrics.violations;
  check_int "fires" 1 mon.Metrics.fires;
  check_int "insts accumulate" 300 mon.Metrics.vm_insts;
  check_bool "p50 in range" true
    (let p = Metrics.latency_quantile mon 0.5 in
     p > 30. && p < 70.);
  check_bool "p99 above p50" true
    (Metrics.latency_quantile mon 0.99 > Metrics.latency_quantile mon 0.5);
  match Metrics.to_json m with
  | Json.Obj [ ("monitors", Json.Arr [ row ]) ] ->
    check_int "json checks" 100
      (Option.value ~default:0 (Option.bind (Json.member "checks" row) Json.int_value))
  | _ -> Alcotest.fail "unexpected to_json shape"

(* ---------- End-to-end: traced deployment ---------- *)

let guardrail_src =
  {|guardrail trace-test { trigger: { TIMER(0, 100ms) } rule: { LOAD(x) <= 0.5 } action: { REPORT("x exceeded", x); SAVE(y, 1) } }|}

(* A tiny deterministic scenario: x starts safe, is driven over the
   threshold at t=450ms, and a 100ms TIMER monitor reports it. *)
let run_traced ?(seed = 5) () =
  let kernel = Guardrails.Kernel.create ~seed in
  let d = Guardrails.Deployment.create ~kernel ~tracing:true () in
  Guardrails.Deployment.save d "x" 0.;
  ignore
    (Guardrails.Deployment.install_source_exn d guardrail_src : Guardrails.Engine.handle list);
  ignore
    (Gr_sim.Engine.schedule_at kernel.engine (Time_ns.ms 450) (fun _ ->
         Guardrails.Deployment.save d "x" 0.9)
      : Gr_sim.Engine.handle);
  Guardrails.Kernel.run_until kernel (Time_ns.sec 1);
  d

let test_trace_determinism () =
  let a = Guardrails.Trace_export.chrome_string (Guardrails.Deployment.tracer (run_traced ()))
  and b = Guardrails.Trace_export.chrome_string (Guardrails.Deployment.tracer (run_traced ())) in
  check_bool "same seed, bit-identical trace" true (String.equal a b);
  check_bool "trace is non-trivial" true (String.length a > 500)

let test_deployment_trace_parses () =
  let d = run_traced () in
  let tr = Guardrails.Deployment.tracer d in
  match Guardrails.Trace_export.events_of_chrome_string (Guardrails.Trace_export.chrome_string tr) with
  | Error e -> Alcotest.failf "chrome parse failed: %s" e
  | Ok evs ->
    check_int "every buffered event exported"
      (Sink.length (Tracer.events tr) + Sink.length (Tracer.reports tr))
      (List.length evs);
    check_bool "contains TIMER check spans" true
      (List.exists
         (fun (e : Event.t) -> e.cat = "check" && e.ph = Event.Complete)
         evs);
    check_bool "contains the SAVE action" true
      (List.exists (fun (e : Event.t) -> e.cat = "action" && e.name = "SAVE") evs)

let test_violations_are_report_view () =
  let d = run_traced () in
  let reports = Sink.to_list (Tracer.reports (Guardrails.Deployment.tracer d)) in
  let violations = Guardrails.Engine.violations (Guardrails.Deployment.engine d) in
  check_bool "monitor reported" true (List.length violations >= 1);
  check_int "one record per report event" (List.length reports) (List.length violations);
  let v = List.hd violations in
  check_string "message" "x exceeded" v.Guardrails.Engine.message;
  check_string "monitor name" "trace-test" v.Guardrails.Engine.monitor;
  check_bool "snapshot carries the named key" true
    (match List.assoc_opt "x" v.Guardrails.Engine.snapshot with
    | Some x -> x > 0.5
    | None -> false);
  check_bool "fires at the first check after the step" true
    (v.Guardrails.Engine.at = Time_ns.ms 500)

(* ---------- Provenance ---------- *)

(* Reconstruct the causal forest of the traced scenario above and walk
   the t=500ms REPORT back to the sim dispatch that caused it. *)
let test_provenance_reconstruction () =
  let d = run_traced () in
  let chrome = Guardrails.Trace_export.chrome_string (Guardrails.Deployment.tracer d) in
  match Gr_trace.Provenance.of_chrome_string chrome with
  | Error e -> Alcotest.failf "provenance parse failed: %s" e
  | Ok prov ->
    check_bool "non-trivial trace" true (Gr_trace.Provenance.size prov > 10);
    check_int "no orphan events" 0 (List.length (Gr_trace.Provenance.orphans prov));
    let reports = Gr_trace.Provenance.reports prov in
    check_bool "at least one report" true (reports <> []);
    let e = Gr_trace.Provenance.explain prov (List.hd reports) in
    (* Chain: sim dispatch roots it, the rule check decides it. *)
    let root = List.hd e.Gr_trace.Provenance.chain in
    check_string "rooted at a sim dispatch" "sim" root.Gr_trace.Provenance.event.Event.cat;
    (match e.Gr_trace.Provenance.decision with
    | Some dn ->
      check_string "decided by the rule check" "check" dn.Gr_trace.Provenance.event.Event.cat;
      check_string "by the installed monitor" "trace-test" dn.Gr_trace.Provenance.event.Event.name
    | None -> Alcotest.fail "report must have a deciding check");
    check_bool "SAVE action is a sibling effect" true
      (List.exists
         (fun n ->
           n.Gr_trace.Provenance.event.Event.cat = "action"
           && n.Gr_trace.Provenance.event.Event.name = "SAVE")
         e.Gr_trace.Provenance.effects);
    (* The snapshot input resolves to the store write that produced
       the value the rule read. *)
    (match e.Gr_trace.Provenance.inputs with
    | { Gr_trace.Provenance.key = "x"; value = Some v; writer = Some w; _ } :: _ ->
      check_bool "input value is the violating one" true (v > 0.5);
      check_string "writer is the store counter" "store:x" w.Gr_trace.Provenance.event.Event.name
    | _ -> Alcotest.fail "expected input x with a resolved writer");
    (* Both renderers accept the explanation. *)
    check_bool "text rendering non-empty" true
      (String.length (Format.asprintf "%a" Gr_trace.Provenance.pp_explanation e) > 100);
    match Gr_trace.Provenance.explanation_to_json e with
    | Json.Obj fields -> check_bool "json has a chain" true (List.mem_assoc "chain" fields)
    | _ -> Alcotest.fail "explanation_to_json must be an object"

let test_provenance_actions_same_decision () =
  let d = run_traced () in
  let chrome = Guardrails.Trace_export.chrome_string (Guardrails.Deployment.tracer d) in
  let prov = Result.get_ok (Gr_trace.Provenance.of_chrome_string chrome) in
  match Gr_trace.Provenance.actions ~name:"SAVE" prov with
  | [] -> Alcotest.fail "expected a SAVE action"
  | save :: _ ->
    let e = Gr_trace.Provenance.explain prov save in
    check_bool "action's decision is a check" true
      (match e.Gr_trace.Provenance.decision with
      | Some n -> n.Gr_trace.Provenance.event.Event.cat = "check"
      | None -> false);
    check_bool "monitor_decisions finds it" true
      (List.memq save (Gr_trace.Provenance.monitor_decisions prov "trace-test"))

(* ---------- OpenMetrics ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_openmetrics_exposition () =
  let d = run_traced () in
  let om = Guardrails.Trace_export.openmetrics (Guardrails.Deployment.tracer d) in
  check_bool "counter family typed" true
    (contains ~needle:"# TYPE guardrail_checks counter" om);
  check_bool "per-monitor labelled row" true
    (contains ~needle:{|guardrail_checks_total{monitor="trace-test"} 11|} om);
  check_bool "latency summary present" true
    (contains ~needle:"# TYPE guardrail_check_latency_ns summary" om);
  check_bool "quantile rows present" true (contains ~needle:{|quantile="0.99"|} om);
  check_bool "sink accounting exported" true
    (contains ~needle:"guardrail_trace_emitted_total" om);
  check_bool "terminated" true
    (String.length om > 5 && String.sub om (String.length om - 6) 6 = "# EOF\n")

let test_openmetrics_fleet_rollup () =
  let make id checks =
    let tr = Tracer.create ~clock:(fun () -> 0) ~node_id:id () in
    let mon = Metrics.monitor (Tracer.metrics tr) "g" in
    for _ = 1 to checks do
      Metrics.record_check mon ~cost_ns:10. ~insts:1 ~samples:1 ~violated:false
    done;
    tr
  in
  let om =
    Guardrails.Trace_export.openmetrics_of_tracers [ make 0 3; make 1 4 ]
  in
  check_bool "node label on per-node rows" true
    (contains ~needle:{|guardrail_checks_total{monitor="g",node="0"} 3|} om);
  check_bool "fleet rollup sums across nodes" true
    (contains ~needle:{|guardrail_checks_total{monitor="g",scope="fleet"} 7|} om);
  check_bool "rollup stays inside its typed family" true
    (contains ~needle:"# TYPE guardrail_checks counter" om)

(* ---------- Selfcost ---------- *)

let test_selfcost_gating () =
  Selfcost.set_enabled false;
  Selfcost.reset ();
  check_bool "off by default" true (not (Selfcost.enabled ()));
  Selfcost.add Selfcost.Check ~ops:1 ~host_ns:10.;
  check_int "add is a no-op when disabled" 0 (Selfcost.ops Selfcost.Check);
  check_int "time charges nothing when disabled" 41 (Selfcost.time Selfcost.Check (fun () -> 41));
  check_int "still zero ops" 0 (Selfcost.ops Selfcost.Check);
  Selfcost.set_enabled true;
  Selfcost.add Selfcost.Provenance ~ops:2 ~host_ns:7.;
  check_int "enabled add counts ops" 2 (Selfcost.ops Selfcost.Provenance);
  check_bool "enabled add counts ns" true (Selfcost.host_ns Selfcost.Provenance = 7.);
  check_int "time returns the thunk's value" 42 (Selfcost.time Selfcost.Check (fun () -> 42));
  check_int "and charges one op" 1 (Selfcost.ops Selfcost.Check);
  Selfcost.reset ();
  check_int "reset zeroes" 0 (Selfcost.ops Selfcost.Provenance);
  check_bool "reset keeps it enabled" true (Selfcost.enabled ());
  Selfcost.set_enabled false

(* ---------- Fleet provenance ---------- *)

let test_fleet_shared_span_ctx () =
  let fleet = Guardrails.Fleet.create ~nodes:2 ~seed:3 ~tracing:true () in
  let control = Guardrails.Fleet.tracer fleet in
  let node0 = Guardrails.Deployment.tracer (Guardrails.Fleet.node fleet 0) in
  let node1 = Guardrails.Deployment.tracer (Guardrails.Fleet.node fleet 1) in
  (* One allocator across tiers: ids interleave instead of colliding. *)
  let a = Tracer.fresh_span control in
  let b = Tracer.fresh_span node0 in
  let c = Tracer.fresh_span node1 in
  check_int "node allocates after control" (a + 1) b;
  check_int "second node continues the sequence" (b + 1) c;
  (* A causal parent set on the control tier is visible to node
     emissions, so cross-tier effects parent back to their cause. *)
  Tracer.set_current control (Some a);
  Tracer.instant node0 ~cat:"test" "cross";
  (match Sink.to_list (Tracer.events node0) with
  | [ e ] ->
    check_bool "node event parents to control span" true
      (List.assoc_opt "parent" e.Event.args = Some (Event.Int a));
    check_bool "node event keeps its node tag" true
      (List.assoc_opt "node" e.Event.args = Some (Event.Int 0))
  | l -> Alcotest.failf "expected 1 node event, got %d" (List.length l));
  Tracer.set_current control None

let suite =
  [
    ( "trace.sink",
      [
        Alcotest.test_case "drop_newest overflow" `Quick test_sink_drop_newest;
        Alcotest.test_case "overwrite_oldest overflow" `Quick test_sink_overwrite_oldest;
        Alcotest.test_case "overwrite_oldest node-tagged accounting" `Quick
          test_sink_overwrite_oldest_node_tagged;
        Alcotest.test_case "clear keeps accounting" `Quick test_sink_clear_keeps_accounting;
      ] );
    ( "trace.tracer",
      [
        Alcotest.test_case "gating" `Quick test_tracer_gating;
        Alcotest.test_case "node tagging" `Quick test_tracer_node_tagging;
        Alcotest.test_case "deterministic under fixed seed" `Quick test_trace_determinism;
      ] );
    ( "trace.export",
      [
        Alcotest.test_case "chrome round-trip" `Quick test_export_roundtrip;
        Alcotest.test_case "chrome shape" `Quick test_export_chrome_shape;
        Alcotest.test_case "deployment trace parses back" `Quick test_deployment_trace_parses;
      ] );
    ("trace.json", [ Alcotest.test_case "parser" `Quick test_json_parser ]);
    ("trace.metrics", [ Alcotest.test_case "registry" `Quick test_metrics_registry ]);
    ( "trace.provenance",
      [
        Alcotest.test_case "report chain reconstruction" `Quick test_provenance_reconstruction;
        Alcotest.test_case "actions share the decision" `Quick
          test_provenance_actions_same_decision;
        Alcotest.test_case "fleet tracers share the span context" `Quick
          test_fleet_shared_span_ctx;
      ] );
    ( "trace.openmetrics",
      [
        Alcotest.test_case "exposition format" `Quick test_openmetrics_exposition;
        Alcotest.test_case "fleet rollup rows" `Quick test_openmetrics_fleet_rollup;
      ] );
    ("trace.selfcost", [ Alcotest.test_case "gating" `Quick test_selfcost_gating ]);
    ( "trace.report",
      [
        Alcotest.test_case "violation log is a report view" `Quick
          test_violations_are_report_view;
      ] );
  ]
