(* Tests for the Guardrails facade: deployment wiring, rollback,
   runtime guardrail replacement, and threshold autotuning. *)

open Gr_util
module Engine = Gr_runtime.Engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_deployment ?(seed = 3) () =
  let kernel = Gr_kernel.Kernel.create ~seed in
  (kernel, Guardrails.Deployment.create ~kernel ())

let rail ?(name = "g") ~rule () =
  Printf.sprintf
    {|guardrail %s { trigger: { TIMER(0, 10ms) } rule: { %s } action: { REPORT("v") } }|} name rule

(* ---------- Deployment ---------- *)

let test_install_rollback_on_error () =
  let _, d = make_deployment () in
  (* Second guardrail fails verification (unbounded window); the
     first must be rolled back. *)
  let src = rail ~name:"ok" ~rule:"LOAD(a) < 1" () ^ "\n" ^ rail ~name:"bad" ~rule:"AVG(x, 3600s) < 1" () in
  (match Guardrails.Deployment.install_source d src with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error _ -> ());
  check_int "nothing left installed" 0 (List.length (Guardrails.Deployment.installed_monitors d))

let test_uninstall_removes_from_inventory () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "a" 0.;
  let handles = Guardrails.Deployment.install_source_exn d (rail ~rule:"LOAD(a) == 0" ()) in
  check_int "installed" 1 (List.length (Guardrails.Deployment.installed_monitors d));
  Guardrails.Deployment.uninstall d (List.hd handles);
  check_int "inventory empty" 0 (List.length (Guardrails.Deployment.installed_monitors d));
  (* And disarmed: no checks accumulate. *)
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 100);
  check_int "no checks after uninstall" 0
    (Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles)).checks

let test_hot_replacement () =
  (* §6: update guardrails at runtime without a reboot. Tighten the
     rule mid-run; the new monitor starts checking, the old stops. *)
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "lat" 50.;
  let loose = List.hd (Guardrails.Deployment.install_source_exn d (rail ~rule:"LOAD(lat) < 100" ())) in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 50);
  check_int "loose rule healthy" 0 (Engine.Stats.get (Guardrails.Deployment.engine d) loose).violations;
  Guardrails.Deployment.uninstall d loose;
  let tight =
    List.hd
      (Guardrails.Deployment.install_source_exn d (rail ~name:"g2" ~rule:"LOAD(lat) < 40" ()))
  in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 100);
  check_bool "tight rule fires" true
    ((Engine.Stats.get (Guardrails.Deployment.engine d) tight).violations > 0);
  check_int "old monitor stayed quiet" 0
    (Engine.Stats.get (Guardrails.Deployment.engine d) loose).violations

let test_forward_hook_arg_custom_key () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"h" ~arg:"x" ~key:"renamed" ();
  Gr_kernel.Hooks.fire kernel.hooks "h" [ ("x", 5.) ];
  Gr_kernel.Hooks.fire kernel.hooks "h" [ ("other", 9.) ];
  Alcotest.(check (float 1e-9)) "forwarded under new key" 5.
    (Guardrails.Store.load (Guardrails.Deployment.store d) "renamed")

let test_derive_window_avg () =
  let kernel, d = make_deployment () in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 10) (fun _ ->
         Guardrails.Deployment.save d "marker" 1.)
      : Gr_sim.Engine.handle);
  Guardrails.Deployment.derive_window_avg d ~src:"marker" ~dst:"marker_rate"
    ~window:(Time_ns.ms 100) ~every:(Time_ns.ms 50);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 300);
  Alcotest.(check (float 1e-9)) "average of 1-valued markers" 1.
    (Guardrails.Store.load (Guardrails.Deployment.store d) "marker_rate")

let test_shipped_specs_compile () =
  (* Every .grd under specs/ must pass the full pipeline. *)
  let dir = "../../../specs" in
  let dir = if Sys.file_exists dir then dir else "specs" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".grd")
  in
  check_bool "found shipped specs" true (List.length files >= 4);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let ic = open_in_bin path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Guardrails.Compile.source src with
      | Ok monitors -> check_bool (f ^ " yields monitors") true (monitors <> [])
      | Error e -> Alcotest.failf "%s: %s" f (Format.asprintf "%a" Guardrails.Compile.pp_error e))
    files

let test_engine_report () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "a" 5.;
  ignore (Guardrails.Deployment.install_source_exn d (rail ~rule:"LOAD(a) < 1" ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 50);
  let report = Format.asprintf "%a" Engine.pp_report (Guardrails.Deployment.engine d) in
  let contains needle =
    let n = String.length needle and h = String.length report in
    let rec scan i = i + n <= h && (String.sub report i n = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "report names the monitor" true (contains "g");
  check_bool "report flags the violation state" true (contains "VIOLATED");
  check_bool "report lists recent violations" true (contains "v")

(* ---------- Tracer ownership ---------- *)

(* Run [f] with a reporter that counts warning-level log lines. *)
let count_warnings f =
  let warns = ref 0 in
  let prev_level = Logs.level () in
  Logs.set_level (Some Logs.Warning);
  Logs.set_reporter
    {
      Logs.report =
        (fun _src level ~over k msgf ->
          if level = Logs.Warning then incr warns;
          msgf (fun ?header:_ ?tags:_ fmt ->
              Format.ikfprintf
                (fun _ ->
                  over ();
                  k ())
                Format.str_formatter fmt));
    };
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter Logs.nop_reporter;
      Logs.set_level prev_level)
    (fun () ->
      let r = f () in
      (r, !warns))

let test_tracer_takeover_and_reattach () =
  let kernel = Gr_kernel.Kernel.create ~seed:3 in
  let d1 = Guardrails.Deployment.create ~kernel ~tracing:true () in
  check_bool "first deployment owns the channels" true (Guardrails.Deployment.owns_tracer d1);
  (* A second deployment on the same kernel takes the channels over —
     loudly, not silently. *)
  let d2, warns =
    count_warnings (fun () -> Guardrails.Deployment.create ~kernel ~tracing:true ())
  in
  check_bool "takeover warned" true (warns > 0);
  check_bool "second owns after takeover" true (Guardrails.Deployment.owns_tracer d2);
  check_bool "first dispossessed" false (Guardrails.Deployment.owns_tracer d1);
  (* Ownership is explicit and reversible: attach the first back. *)
  let (), rewarns = count_warnings (fun () -> Guardrails.Deployment.attach_tracer d1) in
  check_bool "reattach is a takeover too, and warns" true (rewarns > 0);
  check_bool "first owns again" true (Guardrails.Deployment.owns_tracer d1);
  check_bool "second lost ownership" false (Guardrails.Deployment.owns_tracer d2);
  (* Detach only clears channels the detaching deployment owns. *)
  Guardrails.Deployment.detach_tracer d2;
  check_bool "non-owner detach leaves the owner alone" true (Guardrails.Deployment.owns_tracer d1);
  Guardrails.Deployment.detach_tracer d1;
  check_bool "owner detach clears the channels" false (Guardrails.Deployment.owns_tracer d1)

(* ---------- Fleet ---------- *)

let test_fleet_scoped_views () =
  let fleet = Guardrails.Fleet.create ~nodes:3 ~seed:7 () in
  let node_store i = Guardrails.Node.store (Guardrails.Fleet.node fleet i) in
  (* The same key name on different nodes stays distinct per shard... *)
  Array.iteri
    (fun i n -> Guardrails.Store.save (Guardrails.Node.store n) "lat" (float_of_int (10 * (i + 1))))
    (Guardrails.Fleet.nodes fleet);
  let agg st fn = Guardrails.Store.aggregate st ~key:"lat" ~fn ~window_ns:1e9 ~param:0. in
  Alcotest.(check (float 1e-9)) "node 0 sees only its own value" 10.
    (Guardrails.Store.load (node_store 0) "lat");
  Alcotest.(check (float 1e-9)) "node shard holds one sample" 1.
    (agg (node_store 1) Gr_dsl.Ast.Count);
  (* ...while the fleet store presents the merged all-shards view. *)
  let fs = Guardrails.Fleet.store fleet in
  Alcotest.(check (float 1e-9)) "fleet merged count" 3. (agg fs Gr_dsl.Ast.Count);
  Alcotest.(check (float 1e-9)) "fleet merged sum" 60. (agg fs Gr_dsl.Ast.Sum);
  Alcotest.(check (float 1e-9)) "fleet merged max" 30. (agg fs Gr_dsl.Ast.Max);
  (* GLOBAL(key) is one value, visible from every member. *)
  Guardrails.Fleet.save_global fleet "pressure" 7.;
  Alcotest.(check (float 1e-9)) "global readable at the fleet tier" 7.
    (Guardrails.Fleet.load_global fleet "pressure");
  Alcotest.(check (float 1e-9)) "global readable from a node shard" 7.
    (Guardrails.Store.load (node_store 2) (Gr_dsl.Ast.global_key "pressure"))

let test_fleet_global_on_change () =
  let fleet = Guardrails.Fleet.create ~nodes:2 ~seed:7 () in
  let src =
    {|guardrail pressure-watch { trigger: { ON_CHANGE(GLOBAL(pressure)) } rule: { LOAD(GLOBAL(pressure)) < 1 } action: { REPORT("pressure", GLOBAL(pressure)) } }|}
  in
  let node_handles =
    Array.map
      (fun n -> List.hd (Guardrails.Node.install_source_exn n src))
      (Guardrails.Fleet.nodes fleet)
  in
  let fleet_handle = List.hd (Guardrails.Fleet.install_source_exn fleet src) in
  (* One global save wakes the ON_CHANGE monitors on the control
     engine AND on every node engine. *)
  Guardrails.Fleet.save_global fleet "pressure" 5.;
  Array.iteri
    (fun i n ->
      check_bool
        (Printf.sprintf "node %d monitor woke on the global save" i)
        true
        ((Engine.Stats.get (Guardrails.Node.engine n) node_handles.(i)).violations > 0))
    (Guardrails.Fleet.nodes fleet);
  check_bool "fleet monitor fired too" true
    ((Engine.Stats.get (Guardrails.Fleet.engine fleet) fleet_handle).violations > 0)

let test_fleet_canary_replace_and_retrain_once () =
  let fleet = Guardrails.Fleet.create ~nodes:3 ~seed:7 () in
  let replaced = Array.make 3 0 and retrained = Array.make 3 0 in
  Array.iteri
    (fun i n ->
      Gr_kernel.Kernel.register_policy (Guardrails.Node.kernel n) ~name:"p"
        ~replace:(fun () -> replaced.(i) <- replaced.(i) + 1)
        ~restore:(fun () -> ())
        ~retrain:(fun () -> retrained.(i) <- retrained.(i) + 1)
        ())
    (Guardrails.Fleet.nodes fleet);
  Guardrails.Fleet.set_canary fleet ~policy:"p" [ 1 ];
  ignore
    (Guardrails.Fleet.install_source_exn fleet
       {|guardrail g { trigger: { TIMER(0, 10ms, 15ms) } rule: { LOAD(healthy) == 1 } action: { REPLACE("p"); RETRAIN("p") } }|}
      : Engine.handle list);
  Guardrails.Fleet.run_until fleet (Time_ns.ms 30);
  (* TIMER(0, 10ms, 15ms) fires at 0 and 10ms: two canaried REPLACEs,
     delivered to node 1 only. *)
  check_int "canary node replaced twice" 2 replaced.(1);
  check_int "node 0 untouched" 0 replaced.(0);
  check_int "node 2 untouched" 0 replaced.(2);
  check_int "per-node deliveries counted" 2 (Guardrails.Fleet.replaces fleet);
  (* RETRAIN is async (retrain_delay) and global: it trains once, on
     the lowest-id owner, and pushes the model to the other owners. *)
  check_int "no retrain yet" 0 (retrained.(0) + retrained.(1) + retrained.(2));
  Guardrails.Fleet.run_until fleet (Time_ns.ms 100);
  check_int "trainer is node 0" 1 retrained.(0);
  check_int "others get pushes, not retrains" 0 (retrained.(1) + retrained.(2));
  check_int "one global retrain round" 1 (Guardrails.Fleet.retrains fleet);
  check_int "model pushed to the two other owners" 2 (Guardrails.Fleet.model_pushes fleet)

(* ---------- Autotune ---------- *)

let autotune_source ~hi =
  Printf.sprintf
    {|guardrail auto-latency { trigger: { TIMER(0, 50ms) } rule: { QUANTILE(lat, 0.99, 500ms) <= %g } action: { REPORT("tail latency", lat) } }|}
    hi

let feed_latency kernel d ~mean =
  let rng = Rng.fork kernel.Gr_kernel.Kernel.rng in
  ignore
    (Gr_sim.Engine.every kernel.Gr_kernel.Kernel.engine ~interval:(Time_ns.ms 2) (fun _ ->
         Guardrails.Deployment.save d "lat" (Float.max 0. (Rng.gaussian rng ~mu:mean ~sigma:(mean /. 10.))))
      : Gr_sim.Engine.handle)

let test_autotune_calibrates_and_detects () =
  let kernel, d = make_deployment () in
  feed_latency kernel d ~mean:100.;
  let tuner =
    Guardrails.Autotune.deploy d ~key:"lat" ~quantile:0.99 ~slack:2.0 ~warmup:(Time_ns.sec 1)
      ~tighten_every:(Time_ns.sec 1) ~make_source:(fun ~hi -> autotune_source ~hi) ()
  in
  check_bool "not installed during warmup" true (Guardrails.Autotune.handle tuner = None);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 1100);
  (match Guardrails.Autotune.current_bound tuner with
  | Some bound -> check_bool "bound near 2x p99(~120)" true (bound > 150. && bound < 350.)
  | None -> Alcotest.fail "no bound after warmup");
  (* Healthy traffic stays under the calibrated bound... *)
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 3);
  let h = Option.get (Guardrails.Autotune.handle tuner) in
  check_int "no violations on calibration traffic" 0
    (Engine.Stats.get (Guardrails.Deployment.engine d) h).violations;
  (* ...and a 5x latency regression trips it. *)
  feed_latency kernel d ~mean:500.;
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 5);
  let h = Option.get (Guardrails.Autotune.handle tuner) in
  check_bool "regression detected with auto bound" true
    ((Engine.Stats.get (Guardrails.Deployment.engine d) h).violations > 0)

let test_autotune_tightens_but_never_loosens () =
  let kernel, d = make_deployment () in
  feed_latency kernel d ~mean:100.;
  let tuner =
    Guardrails.Autotune.deploy d ~key:"lat" ~warmup:(Time_ns.ms 500)
      ~tighten_every:(Time_ns.ms 500) ~make_source:(fun ~hi -> autotune_source ~hi) ()
  in
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 1);
  let first = Option.get (Guardrails.Autotune.current_bound tuner) in
  (* Faster traffic: the bound should tighten. *)
  feed_latency kernel d ~mean:20.;
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 4);
  let tightened = Option.get (Guardrails.Autotune.current_bound tuner) in
  check_bool "tightened" true (tightened < first);
  check_bool "tightenings counted" true (Guardrails.Autotune.tightenings tuner >= 1);
  (* Slow traffic again: the bound must NOT loosen. *)
  feed_latency kernel d ~mean:100.;
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 7);
  let final = Option.get (Guardrails.Autotune.current_bound tuner) in
  check_bool "never loosens" true (final <= tightened +. 1e-9);
  (* Inventory holds exactly the one live autotuned monitor. *)
  check_int "single live monitor" 1 (List.length (Guardrails.Deployment.installed_monitors d))

let suite =
  [
    ( "core.deployment",
      [
        Alcotest.test_case "install rollback" `Quick test_install_rollback_on_error;
        Alcotest.test_case "uninstall removes from inventory" `Quick
          test_uninstall_removes_from_inventory;
        Alcotest.test_case "hot replacement" `Quick test_hot_replacement;
        Alcotest.test_case "forward_hook_arg custom key" `Quick test_forward_hook_arg_custom_key;
        Alcotest.test_case "derive_window_avg" `Quick test_derive_window_avg;
        Alcotest.test_case "shipped specs compile" `Quick test_shipped_specs_compile;
        Alcotest.test_case "engine report" `Quick test_engine_report;
        Alcotest.test_case "tracer takeover and reattach" `Quick
          test_tracer_takeover_and_reattach;
      ] );
    ( "core.fleet",
      [
        Alcotest.test_case "scoped store views" `Quick test_fleet_scoped_views;
        Alcotest.test_case "global on-change wakes every engine" `Quick
          test_fleet_global_on_change;
        Alcotest.test_case "canaried replace, retrain-once" `Quick
          test_fleet_canary_replace_and_retrain_once;
      ] );
    ( "core.autotune",
      [
        Alcotest.test_case "calibrates and detects" `Quick test_autotune_calibrates_and_detects;
        Alcotest.test_case "tightens, never loosens" `Quick test_autotune_tightens_but_never_loosens;
      ] );
  ]
