(* Tests for gr_dsl: lexer, parser, typechecker, pretty-printer. *)

open Gr_dsl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let parse_ok src =
  match Parser.parse src with
  | Ok spec -> spec
  | Error (pos, msg) -> Alcotest.failf "parse error at %d:%d: %s" pos.line pos.col msg

let parse_err src =
  match Parser.parse src with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error (_, msg) -> msg

let parse_expr_ok src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error (pos, msg) -> Alcotest.failf "parse error at %d:%d: %s" pos.line pos.col msg

(* ---------- Lexer ---------- *)

let test_duration_literals () =
  let num src =
    match Lexer.tokenize src with
    | (Lexer.NUMBER f, _) :: _ -> f
    | _ -> Alcotest.fail "expected a number token"
  in
  check_float "ns" 5. (num "5ns");
  check_float "us" 7e3 (num "7us");
  check_float "ms" 1.5e6 (num "1.5ms");
  check_float "s" 2e9 (num "2s");
  check_float "plain exponent" 1e9 (num "1e9");
  check_float "negative exponent" 0.05 (num "5e-2")

let test_comments_skipped () =
  let toks = Lexer.tokenize "1 // line comment\n /* block \n comment */ 2" in
  check_int "two numbers plus eof" 3 (List.length toks)

let test_lexer_errors () =
  let fails src =
    match Lexer.tokenize src with
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  check_bool "bad char" true (fails "#");
  check_bool "single &" true (fails "a & b");
  check_bool "single =" true (fails "a = b");
  check_bool "unterminated string" true (fails {|"abc|});
  check_bool "unterminated comment" true (fails "/* abc");
  check_bool "unknown suffix" true (fails "5parsecs")

let test_string_escapes () =
  match Lexer.tokenize {|"a\"b\nc"|} with
  | (Lexer.STRING s, _) :: _ -> Alcotest.(check string) "escapes" "a\"b\nc" s
  | _ -> Alcotest.fail "expected string token"

(* ---------- Parser ---------- *)

let listing2 =
  {|
guardrail low-false-submit {
  trigger: {
    TIMER(start_time, 1e9) // Periodically check every 1s.
  },
  rule: {
    LOAD(false_submit_rate) <= 0.05
  },
  action: {
    SAVE(ml_enabled, false)
  }
}
|}

let test_parses_listing2 () =
  match parse_ok listing2 with
  | [ g ] ->
    Alcotest.(check string) "hyphenated name" "low-false-submit" g.Ast.name;
    check_int "one trigger" 1 (List.length g.triggers);
    check_int "one rule" 1 (List.length g.rules);
    check_int "one action" 1 (List.length g.actions);
    (match (List.hd g.triggers).node with
    | Ast.Timer { start; interval; stop } ->
      check_bool "start folds to 0" true (Typecheck.const_value start = Some 0.);
      check_bool "interval is 1s" true (Typecheck.const_value interval = Some 1e9);
      check_bool "no stop" true (stop = None)
    | _ -> Alcotest.fail "expected TIMER")
  | gs -> Alcotest.failf "expected one guardrail, got %d" (List.length gs)

let test_precedence () =
  let e = parse_expr_ok "LOAD(a) + 2 * 3 <= 10 && true" in
  (* Must parse as ((a + (2*3)) <= 10) && true *)
  match e.node with
  | Ast.Binop (Ast.And, lhs, _) -> (
    match lhs.node with
    | Ast.Binop (Ast.Le, sum, _) -> (
      match sum.node with
      | Ast.Binop (Ast.Add, _, product) -> (
        match product.node with
        | Ast.Binop (Ast.Mul, _, _) -> ()
        | _ -> Alcotest.fail "expected * under +")
      | _ -> Alcotest.fail "expected + under <=")
    | _ -> Alcotest.fail "expected <= under &&")
  | _ -> Alcotest.fail "expected && at top"

let test_unary_and_abs () =
  let e = parse_expr_ok "ABS(-LOAD(x)) > 1" in
  match e.node with
  | Ast.Binop (Ast.Gt, { node = Ast.Unop (Ast.Abs, { node = Ast.Unop (Ast.Neg, _); _ }); _ }, _)
    -> ()
  | _ -> Alcotest.fail "expected ABS(Neg(Load))"

let test_quantile_arity () =
  let e = parse_expr_ok "QUANTILE(lat, 0.99, 10s) < 500" in
  (match e.node with
  | Ast.Binop (_, { node = Ast.Agg { fn = Ast.Quantile; param = Some _; _ }; _ }, _) -> ()
  | _ -> Alcotest.fail "expected quantile with param");
  check_bool "AVG with three args rejected" true
    (Result.is_error (Parser.parse_expr "AVG(lat, 0.5, 10s) < 1"))

let test_multiple_sections_merge () =
  let src =
    {|
guardrail multi {
  trigger: { TIMER(0, 1s) }
  trigger: { FUNCTION("hook:x") }
  rule: { LOAD(a) < 1, LOAD(b) < 2 }
  action: { REPORT("r") ; REPLACE("p") }
}
|}
  in
  match parse_ok src with
  | [ g ] ->
    check_int "two triggers" 2 (List.length g.triggers);
    check_int "two rules" 2 (List.length g.rules);
    check_int "two actions" 2 (List.length g.actions)
  | _ -> Alcotest.fail "one guardrail expected"

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_missing_sections_rejected () =
  let msg = parse_err "guardrail g { rule: { true } action: { REPORT(\"m\") } }" in
  check_bool "mentions the missing trigger section" true (contains ~needle:"trigger" msg)

let test_parse_errors_have_positions () =
  match Parser.parse "guardrail g {\n  bogus: { }\n}" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error (pos, _) -> check_int "line 2" 2 pos.line

let test_numeric_name_fragments () =
  let src =
    {|guardrail retry-guard-2 { trigger: { TIMER(0, 1s) } rule: { true } action: { REPORT("m") } }|}
  in
  match parse_ok src with
  | [ g ] -> Alcotest.(check string) "versioned name" "retry-guard-2" g.Ast.name
  | _ -> Alcotest.fail "one guardrail expected"

let test_all_actions_parse () =
  let src =
    {|
guardrail actions {
  trigger: { ON_CHANGE(k) }
  rule: { LOAD(k) < 5 }
  action: {
    REPORT("msg", k, j)
    REPLACE("p")
    RESTORE("p")
    RETRAIN("p")
    DEPRIORITIZE("batch", 64)
    KILL("batch")
    SAVE(out, LOAD(k) * 2)
  }
}
|}
  in
  match parse_ok src with
  | [ g ] -> check_int "seven actions" 7 (List.length g.actions)
  | _ -> Alcotest.fail "one guardrail expected"

(* ---------- Typecheck ---------- *)

let check_spec_err src =
  match Typecheck.check_spec (parse_ok src) with
  | Ok () -> Alcotest.fail "expected type errors"
  | Error errs -> errs

let wrap rule = Printf.sprintf
  {|guardrail g { trigger: { TIMER(0, 1s) } rule: { %s } action: { REPORT("m") } }|} rule

let test_rule_must_be_bool () =
  let errs = check_spec_err (wrap "LOAD(a) + 1") in
  check_bool "flagged" true (List.length errs >= 1)

let test_type_mismatches () =
  check_bool "num && bool" true (List.length (check_spec_err (wrap "LOAD(a) && true")) >= 1);
  check_bool "bool + num" true (List.length (check_spec_err (wrap "(true + 1) < 2")) >= 1);
  check_bool "eq across types" true (List.length (check_spec_err (wrap "LOAD(a) == true")) >= 1);
  check_bool "not of num" true (List.length (check_spec_err (wrap "!LOAD(a)")) >= 1)

let test_timer_constraints () =
  let bad interval =
    Printf.sprintf
      {|guardrail g { trigger: { TIMER(0, %s) } rule: { true } action: { REPORT("m") } }|}
      interval
  in
  check_bool "zero interval" true (List.length (check_spec_err (bad "0")) >= 1);
  check_bool "non-constant interval" true (List.length (check_spec_err (bad "LOAD(x)")) >= 1);
  (match Typecheck.check_spec (parse_ok (bad "2 * 500ms")) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "folded constant interval must typecheck");
  let stop_before_start =
    {|guardrail g { trigger: { TIMER(5s, 1s, 2s) } rule: { true } action: { REPORT("m") } }|}
  in
  check_bool "stop before start" true (List.length (check_spec_err stop_before_start) >= 1)

let test_quantile_range_checked () =
  check_bool "q out of range" true
    (List.length (check_spec_err (wrap "QUANTILE(lat, 1.5, 1s) < 10")) >= 1);
  check_bool "window must be positive" true
    (List.length (check_spec_err (wrap "AVG(lat, 0 - 5) < 10")) >= 1)

let test_duplicate_names_rejected () =
  let src = wrap "true" ^ "\n" ^ wrap "true" in
  check_bool "duplicate guardrail name" true (List.length (check_spec_err src) >= 1)

let test_save_bool_ok () =
  let src =
    {|guardrail g { trigger: { TIMER(0, 1s) } rule: { true } action: { SAVE(k, false) } }|}
  in
  match Typecheck.check_spec (parse_ok src) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "SAVE of a boolean must typecheck"

let test_delta_builtin () =
  let e = parse_expr_ok "DELTA(lat, 5s) <= 200" in
  (match e.node with
  | Ast.Binop (Ast.Le, { node = Ast.Agg { fn = Ast.Delta; param = None; _ }; _ }, _) -> ()
  | _ -> Alcotest.fail "expected DELTA aggregation");
  (* DELTA takes no quantile parameter. *)
  check_bool "DELTA with three args rejected" true
    (Result.is_error (Parser.parse_expr "DELTA(lat, 0.5, 10s) < 1"))

let test_duration_suffix_in_windows () =
  List.iter
    (fun (src, expected_ns) ->
      match (parse_expr_ok src).node with
      | Ast.Binop (_, { node = Ast.Agg { window; _ }; _ }, _) ->
        check_bool src true (Typecheck.const_value window = Some expected_ns)
      | _ -> Alcotest.fail "expected aggregation")
    [
      ("AVG(x, 250ns) < 1", 250.);
      ("AVG(x, 250us) < 1", 250e3);
      ("AVG(x, 250ms) < 1", 250e6);
      ("AVG(x, 2s) < 1", 2e9);
      ("AVG(x, 2 * 500ms) < 1", 1e9);
    ]

let test_string_keys_for_hooks () =
  (* Keys with characters outside the identifier syntax are written
     as strings. *)
  let src =
    {|guardrail g { trigger: { FUNCTION("blk:io_complete") } rule: { LOAD("weird:key") < 1 } action: { SAVE("other:key", 1) } }|}
  in
  match parse_ok src with
  | [ g ] -> (
    match ((List.hd g.rules).node, (List.hd g.actions).node) with
    | Ast.Binop (_, { node = Ast.Load "weird:key"; _ }, _), Ast.Save { key = "other:key"; _ } -> ()
    | _ -> Alcotest.fail "string keys not preserved")
  | _ -> Alcotest.fail "one guardrail expected"

(* ---------- const_fold ---------- *)

let fold_to_value src =
  Typecheck.const_value (parse_expr_ok src)

let test_const_fold_arithmetic () =
  check_bool "3*4+2" true (fold_to_value "3 * 4 + 2" = Some 14.);
  check_bool "neg" true (fold_to_value "-(2 + 3)" = Some (-5.));
  check_bool "abs" true (fold_to_value "ABS(2 - 10)" = Some 8.);
  check_bool "div" true (fold_to_value "10 / 4" = Some 2.5)

let test_const_fold_identities () =
  let folded src = Typecheck.const_fold (parse_expr_ok src) in
  (match (folded "LOAD(a) * 1").node with
  | Ast.Load "a" -> ()
  | _ -> Alcotest.fail "x*1 should fold to x");
  (match (folded "0 + LOAD(a)").node with
  | Ast.Load "a" -> ()
  | _ -> Alcotest.fail "0+x should fold to x");
  (match (folded "true && LOAD(a) < 1").node with
  | Ast.Binop (Ast.Lt, _, _) -> ()
  | _ -> Alcotest.fail "true && e should fold to e");
  (match (folded "false && LOAD(a) < 1").node with
  | Ast.Bool false -> ()
  | _ -> Alcotest.fail "false && e should fold to false");
  match (folded "!!(LOAD(a) < 1)").node with
  | Ast.Binop (Ast.Lt, _, _) -> ()
  | _ -> Alcotest.fail "double negation should cancel"

let test_const_fold_keeps_div_by_zero () =
  match (Typecheck.const_fold (parse_expr_ok "1 / 0")).node with
  | Ast.Binop (Ast.Div, _, _) -> ()
  | _ -> Alcotest.fail "x/0 must not fold"

(* ---------- Pretty / round-trip ---------- *)

let test_listing2_roundtrip () =
  let spec = parse_ok listing2 in
  let printed = Pretty.spec_to_string spec in
  let spec2 = parse_ok printed in
  Alcotest.(check string) "pretty is a fixpoint" printed (Pretty.spec_to_string spec2)

let roundtrip_property =
  QCheck2.Test.make ~name:"print/parse round-trip preserves expression structure" ~count:500
    Gen.expr_gen
    (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.parse_expr printed with
      | Error _ -> false
      | Ok e2 -> Gen.strip e2 = Gen.strip e)

let guardrail_roundtrip_property =
  QCheck2.Test.make ~name:"print/parse round-trip preserves guardrails" ~count:200
    Gen.guardrail_gen
    (fun g ->
      let printed = Pretty.spec_to_string [ g ] in
      match Parser.parse printed with
      | Error _ -> false
      | Ok [ g2 ] -> Gen.strip_guardrail g2 = Gen.strip_guardrail g
      | Ok _ -> false)

let global_guardrail_roundtrip_property =
  QCheck2.Test.make ~name:"print/parse round-trip preserves all-GLOBAL guardrails" ~count:200
    QCheck2.Gen.(map Gen.globalize_guardrail Gen.guardrail_gen)
    (fun g ->
      let printed = Pretty.spec_to_string [ g ] in
      match Parser.parse printed with
      | Error _ -> false
      | Ok [ g2 ] -> Gen.strip_guardrail g2 = Gen.strip_guardrail g
      | Ok _ -> false)

let test_global_key_syntax () =
  let spec =
    parse_ok
      {|guardrail g {
          trigger: { ON_CHANGE(GLOBAL(pressure)) },
          rule: { LOAD(GLOBAL(pressure)) <= AVG(lat, 1s) },
          action: { SAVE(GLOBAL(alarm), 1) REPORT("over", GLOBAL(pressure), lat) }
        }|}
  in
  let g = List.hd spec in
  (match (List.hd g.Ast.triggers).Ast.node with
  | Ast.On_change k ->
    Alcotest.(check bool) "trigger key is global" true (Ast.is_global_key k);
    Alcotest.(check string) "local name survives" "pressure" (Ast.local_name k)
  | _ -> Alcotest.fail "expected ON_CHANGE trigger");
  let printed = Pretty.spec_to_string spec in
  Alcotest.(check bool)
    "pretty restores GLOBAL(...) surface syntax" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains printed "GLOBAL(pressure)" && contains printed "GLOBAL(alarm)");
  Alcotest.(check string) "round-trips" printed
    (Pretty.spec_to_string (parse_ok printed))

let folding_preserves_types =
  QCheck2.Test.make ~name:"const_fold preserves well-typedness" ~count:300 Gen.expr_gen
    (fun e ->
      match Typecheck.infer_expr e with
      | Error _ -> QCheck2.assume_fail ()
      | Ok ty -> Typecheck.infer_expr (Typecheck.const_fold e) = Ok ty)

let suite =
  [
    ( "dsl.lexer",
      [
        Alcotest.test_case "duration literals" `Quick test_duration_literals;
        Alcotest.test_case "comments" `Quick test_comments_skipped;
        Alcotest.test_case "errors" `Quick test_lexer_errors;
        Alcotest.test_case "string escapes" `Quick test_string_escapes;
      ] );
    ( "dsl.parser",
      [
        Alcotest.test_case "parses Listing 2" `Quick test_parses_listing2;
        Alcotest.test_case "precedence" `Quick test_precedence;
        Alcotest.test_case "unary and ABS" `Quick test_unary_and_abs;
        Alcotest.test_case "quantile arity" `Quick test_quantile_arity;
        Alcotest.test_case "repeated sections merge" `Quick test_multiple_sections_merge;
        Alcotest.test_case "missing sections rejected" `Quick test_missing_sections_rejected;
        Alcotest.test_case "errors carry positions" `Quick test_parse_errors_have_positions;
        Alcotest.test_case "all actions parse" `Quick test_all_actions_parse;
        Alcotest.test_case "DELTA builtin" `Quick test_delta_builtin;
        Alcotest.test_case "numeric name fragments" `Quick test_numeric_name_fragments;
        Alcotest.test_case "duration suffixes in windows" `Quick test_duration_suffix_in_windows;
        Alcotest.test_case "string keys" `Quick test_string_keys_for_hooks;
      ] );
    ( "dsl.typecheck",
      [
        Alcotest.test_case "rule must be bool" `Quick test_rule_must_be_bool;
        Alcotest.test_case "type mismatches" `Quick test_type_mismatches;
        Alcotest.test_case "timer constraints" `Quick test_timer_constraints;
        Alcotest.test_case "quantile/window ranges" `Quick test_quantile_range_checked;
        Alcotest.test_case "duplicate names" `Quick test_duplicate_names_rejected;
        Alcotest.test_case "SAVE of bool" `Quick test_save_bool_ok;
      ] );
    ( "dsl.fold",
      [
        Alcotest.test_case "arithmetic" `Quick test_const_fold_arithmetic;
        Alcotest.test_case "identities" `Quick test_const_fold_identities;
        Alcotest.test_case "division by zero preserved" `Quick test_const_fold_keeps_div_by_zero;
        QCheck_alcotest.to_alcotest folding_preserves_types;
      ] );
    ( "dsl.pretty",
      [
        Alcotest.test_case "Listing 2 round-trip" `Quick test_listing2_roundtrip;
        Alcotest.test_case "GLOBAL key syntax" `Quick test_global_key_syntax;
        QCheck_alcotest.to_alcotest roundtrip_property;
        QCheck_alcotest.to_alcotest guardrail_roundtrip_property;
        QCheck_alcotest.to_alcotest global_guardrail_roundtrip_property;
      ] );
  ]
