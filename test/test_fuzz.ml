(* Fuzz-style tests, in two tiers.

   Robustness: the compiler front end must never raise anything
   except its declared error type, no matter the input.

   Differential: random well-typed specs are compiled twice — the
   real pipeline (optimised, streaming aggregates) and a reference
   configuration (unoptimised, naive full-scan aggregates) — and the
   result is compared four ways: the tree-walking VM, the register
   VM (Vm.compile), the closure template JIT (Jit.compile), and an
   independent IR reference interpreter written directly from the
   semantics in vm.mli. The three engine tiers must agree BIT-exactly
   — value, instruction count, scanned samples, estimated cost, and
   store counter effects; the reference comparison allows a rounding
   tolerance. A divergence means a bug in the optimiser, a VM tier,
   or the incremental store, and the failure message carries a
   `grc run --engine` repro line.

   Every case derives from a pinned seed ([0x5EED + i]), so CI runs
   the exact same 500 programs every time and a failure message
   identifies the case by index alone. *)

module Store = Gr_runtime.Feature_store
module Vm = Gr_runtime.Vm
module Jit = Gr_runtime.Jit
module Ir = Gr_compiler.Ir
module Monitor = Gr_compiler.Monitor
module Compile = Gr_compiler.Compile
module Rng = Gr_util.Rng
module Time_ns = Gr_util.Time_ns

let parser_total_on_garbage =
  QCheck2.Test.make ~name:"parser returns Ok/Error on arbitrary bytes, never raises" ~count:1000
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun s ->
      match Gr_dsl.Parser.parse s with Ok _ | Error _ -> true)

let printable_gen =
  (* Biased toward token-shaped fragments so the parser gets past the
     lexer often enough to exercise deeper paths. *)
  QCheck2.Gen.(
    map (String.concat " ")
      (list_size (int_range 0 40)
         (oneofl
            [
              "guardrail"; "trigger"; "rule"; "action"; "{"; "}"; "("; ")"; ","; ";"; ":";
              "TIMER"; "FUNCTION"; "ON_CHANGE"; "LOAD"; "SAVE"; "REPORT"; "REPLACE"; "RETRAIN";
              "AVG"; "QUANTILE"; "&&"; "||"; "!"; "<="; "=="; "+"; "-"; "*"; "/"; "0"; "1e9";
              "50ms"; "true"; "false"; "x"; "y"; "\"s\""; "low-false-submit";
            ])))

let parser_total_on_token_soup =
  QCheck2.Test.make ~name:"parser total on token soup" ~count:1000 printable_gen (fun s ->
      match Gr_dsl.Parser.parse s with Ok _ | Error _ -> true)

let compile_total_on_token_soup =
  QCheck2.Test.make ~name:"full compile pipeline total on token soup" ~count:500 printable_gen
    (fun s ->
      match Gr_compiler.Compile.source s with Ok _ | Error _ -> true)

let compiled_monitors_always_verify =
  (* Everything the pipeline accepts must satisfy the verifier — the
     compiler cannot emit monitors the loader would reject. *)
  QCheck2.Test.make ~name:"pipeline output always passes the verifier" ~count:300
    Gen.guardrail_gen
    (fun g ->
      let src = Gr_dsl.Pretty.spec_to_string [ g ] in
      match Gr_compiler.Compile.source src with
      | Error _ -> true (* rejected inputs are fine *)
      | Ok monitors ->
        List.for_all
          (fun m -> Result.is_ok (Gr_compiler.Verify.verify m))
          monitors)

(* ------------------------------------------------------------------ *)
(* Differential fuzzer: VM vs. a direct IR reference interpreter.     *)
(* ------------------------------------------------------------------ *)

let fuzz_cases = 500

(* Reference interpreter, written against the documented semantics
   (vm.mli): booleans are 0/1, any non-zero value is truthy, division
   by zero yields 0. Deliberately shares no code with Vm.run. *)
let eval_ref ~store ~slots (p : Ir.program) =
  let regs = Array.make (max 1 p.Ir.n_regs) 0. in
  let truthy v = v <> 0. in
  let of_bool b = if b then 1. else 0. in
  Array.iter
    (fun (inst : Ir.inst) ->
      match inst with
      | Ir.Const { dst; value } -> regs.(dst) <- value
      | Ir.Load { dst; slot } -> regs.(dst) <- Store.load store slots.(slot)
      | Ir.Agg { dst; fn; slot; window_ns; param } ->
        regs.(dst) <- Store.aggregate store ~key:slots.(slot) ~fn ~window_ns ~param
      | Ir.Unop { dst; op; src } ->
        let v = regs.(src) in
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Neg -> -.v
          | Gr_dsl.Ast.Abs -> Float.abs v
          | Gr_dsl.Ast.Not -> of_bool (not (truthy v)))
      | Ir.Binop { dst; op; lhs; rhs } ->
        let a = regs.(lhs) and b = regs.(rhs) in
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Add -> a +. b
          | Gr_dsl.Ast.Sub -> a -. b
          | Gr_dsl.Ast.Mul -> a *. b
          | Gr_dsl.Ast.Div -> if b = 0. then 0. else a /. b
          | Gr_dsl.Ast.Lt -> of_bool (a < b)
          | Gr_dsl.Ast.Le -> of_bool (a <= b)
          | Gr_dsl.Ast.Gt -> of_bool (a > b)
          | Gr_dsl.Ast.Ge -> of_bool (a >= b)
          | Gr_dsl.Ast.Eq -> of_bool (a = b)
          | Gr_dsl.Ast.Ne -> of_bool (a <> b)
          | Gr_dsl.Ast.And -> of_bool (truthy a && truthy b)
          | Gr_dsl.Ast.Or -> of_bool (truthy a || truthy b)))
    p.Ir.insts;
  regs.(p.Ir.result)

(* The rule program plus every SAVE value program, labelled. Both
   compiles see the same source, so the lists zip positionally. *)
let labeled_programs (m : Monitor.t) =
  ("rule", m.Monitor.rule)
  :: List.concat_map
       (function
         | Monitor.Save { key; value } -> [ ("save:" ^ key, value) ]
         | _ -> [])
       m.Monitor.actions

(* Register every aggregate shape the monitor will ask for, exactly
   as the runtime does at install time, so the VM side exercises the
   streaming path while the reference side scans naively. *)
let register_demands store (m : Monitor.t) =
  List.iter
    (fun (_, (p : Ir.program)) ->
      Array.iter
        (function
          | Ir.Agg { fn; slot; window_ns; param; _ } ->
            Store.register_demand store ~key:m.Monitor.slots.(slot) ~fn ~window_ns ~param
          | _ -> ())
        p.Ir.insts)
    (labeled_programs m)

(* Samples are small integers, so streaming and naive sums are exact
   and boolean results cannot flip on a rounding knife-edge; the
   tolerance only absorbs the two stddev formulations (running
   sum-of-squares vs. two-pass). Occasional NaNs check that both
   interpreters propagate them identically. *)
let close a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b) <= 1e-9 +. (1e-6 *. (Float.abs a +. Float.abs b))

let fuzz_keys = [| "lat"; "rate"; "depth"; "err"; "load_avg" |]

let run_case i failures =
  let fail fmt =
    Printf.ksprintf (fun msg -> failures := Printf.sprintf "case %d: %s" i msg :: !failures) fmt
  in
  let rand = Random.State.make [| 0x5EED + i |] in
  let g = QCheck2.Gen.generate1 ~rand Gen.guardrail_gen in
  (* The verifier rejects duplicate SAVE keys; keep the first write
     per key so every generated case compiles and gets compared. *)
  let g =
    let seen = Hashtbl.create 4 in
    {
      g with
      Gr_dsl.Ast.actions =
        List.filter
          (fun (a : Gr_dsl.Ast.action Gr_dsl.Ast.located) ->
            match a.Gr_dsl.Ast.node with
            | Gr_dsl.Ast.Save { key; _ } ->
              if Hashtbl.mem seen key then false
              else (
                Hashtbl.add seen key ();
                true)
            | _ -> true)
          g.Gr_dsl.Ast.actions;
    }
  in
  let src = Gr_dsl.Pretty.spec_to_string [ g ] in
  match (Compile.source ~optimize:true src, Compile.source ~optimize:false src) with
  | Error e, _ | _, Error e ->
    fail "generated spec failed to compile: %a@\n%s" (fun () -> Format.asprintf "%a" Compile.pp_error) e src
  | Ok opts, Ok refs when List.length opts <> List.length refs ->
    fail "optimised/unoptimised monitor counts differ (%d vs %d)" (List.length opts)
      (List.length refs)
  | Ok opts, Ok refs ->
    let clock = ref Time_ns.zero in
    let store = Store.create ~clock:(fun () -> !clock) ~capacity_per_key:1024 () in
    List.iter (register_demands store) opts;
    let rng = Rng.create (0xD1FF + i) in
    for _ = 1 to 400 do
      clock := Time_ns.add !clock (Time_ns.us (1 + Rng.int rng 4999));
      let v = if Rng.int rng 50 = 0 then Float.nan else float_of_int (Rng.int rng 17) in
      Store.save store fuzz_keys.(Rng.int rng (Array.length fuzz_keys)) v
    done;
    List.iter2
      (fun (om : Monitor.t) (rm : Monitor.t) ->
        List.iter2
          (fun (label, p_opt) (_, p_ref) ->
            (* The optimiser (CSE + DCE) only removes instructions. *)
            if Array.length p_opt.Ir.insts > Array.length p_ref.Ir.insts then
              fail "%s: optimised program longer than unoptimised (%d > %d)" label
                (Array.length p_opt.Ir.insts)
                (Array.length p_ref.Ir.insts);
            let vm = Vm.run ~store ~slots:om.Monitor.slots p_opt in
            let again = Vm.run ~store ~slots:om.Monitor.slots p_opt in
            if not (close vm.Vm.value again.Vm.value) then
              fail "%s: VM not idempotent at fixed clock (%h vs %h)" label vm.Vm.value
                again.Vm.value;
            (* Cross-tier: the first run above paid any lazy window
               expiry, so from here the store is at a steady state and
               every execution tier must agree bit-for-bit — value,
               accounting AND store counter effects. *)
            let slots = om.Monitor.slots in
            let counters () =
              (Store.load_count store, Store.agg_hit_count store, Store.agg_miss_count store)
            in
            let run_tier tier : Vm.result * (int * int * int) =
              let (l0, h0, m0) = counters () in
              let r =
                match (tier : Vm.tier) with
                | Vm.Tree -> Vm.run ~store ~slots p_opt
                | Vm.Reg -> Vm.run_compiled (Vm.compile ~store ~slots p_opt)
                | Vm.Jit -> (
                  match Jit.compile ~store ~slots p_opt with
                  | Some j -> Jit.run j
                  | None -> Alcotest.failf "case %d: JIT declined an unsharded program" i)
              in
              let (l1, h1, m1) = counters () in
              (r, (l1 - l0, h1 - h0, m1 - m0))
            in
            let (tree, d_tree) = run_tier Vm.Tree in
            List.iter
              (fun tier ->
                let (r, d) = run_tier tier in
                let bits = Int64.bits_of_float in
                if
                  bits r.Vm.value <> bits tree.Vm.value
                  || r.Vm.insts_executed <> tree.Vm.insts_executed
                  || r.Vm.samples_scanned <> tree.Vm.samples_scanned
                  || bits r.Vm.est_cost_ns <> bits tree.Vm.est_cost_ns
                  || d <> d_tree
                then (
                  let (dl, dh, dm) = d and (tl, th, tm) = d_tree in
                  fail
                    "%s: tier %s diverged from tree (value %h/%h insts %d/%d scanned %d/%d cost \
                     %h/%h counters %d,%d,%d/%d,%d,%d)\n\
                     repro: save the spec below as f.grd, then `grc run f.grd --engine %s` \
                     (generator seed 0x%X)\n\
                     %s"
                    label (Vm.tier_to_string tier) r.Vm.value tree.Vm.value r.Vm.insts_executed
                    tree.Vm.insts_executed r.Vm.samples_scanned tree.Vm.samples_scanned
                    r.Vm.est_cost_ns tree.Vm.est_cost_ns dl dh dm tl th tm
                    (Vm.tier_to_string tier) (0x5EED + i) src))
              [ Vm.Reg; Vm.Jit ];
            Store.set_force_naive store true;
            let reference = eval_ref ~store ~slots:rm.Monitor.slots p_ref in
            Store.set_force_naive store false;
            if not (close vm.Vm.value reference) then
              fail "%s: VM=%h reference=%h@\n%s" label vm.Vm.value reference src)
          (labeled_programs om) (labeled_programs rm))
      opts refs

(* Property: cost accounting is tier-invariant. GRL105's budget
   enforcement reads est_cost_ns / samples_scanned; if a faster tier
   reported cheaper checks, budget verdicts would change with the
   --engine flag. *)
let accounting_tier_invariant =
  QCheck2.Test.make ~name:"cost accounting identical across tree/reg/jit" ~count:200
    Gen.guardrail_gen (fun g ->
      let src = Gr_dsl.Pretty.spec_to_string [ g ] in
      match Compile.source src with
      | Error _ -> true
      | Ok monitors ->
        let clock = ref Time_ns.zero in
        let store = Store.create ~clock:(fun () -> !clock) ~capacity_per_key:512 () in
        List.iter (register_demands store) monitors;
        let rng = Rng.create 0xACC7 in
        for _ = 1 to 200 do
          clock := Time_ns.add !clock (Time_ns.us (1 + Rng.int rng 999));
          Store.save store
            fuzz_keys.(Rng.int rng (Array.length fuzz_keys))
            (float_of_int (Rng.int rng 13))
        done;
        List.for_all
          (fun (m : Monitor.t) ->
            List.for_all
              (fun (_, (p : Ir.program)) ->
                let slots = m.Monitor.slots in
                (* the first run settles lazy window expiry *)
                ignore (Vm.run ~store ~slots p : Vm.result);
                let tree = Vm.run ~static_cost_ns:(Vm.static_cost_ns p) ~store ~slots p in
                let reg = Vm.run_compiled (Vm.compile ~store ~slots p) in
                let jit =
                  match Jit.compile ~store ~slots p with Some j -> Jit.run j | None -> tree
                in
                let same (a : Vm.result) (b : Vm.result) =
                  a.Vm.insts_executed = b.Vm.insts_executed
                  && a.Vm.samples_scanned = b.Vm.samples_scanned
                  && Int64.bits_of_float a.Vm.est_cost_ns = Int64.bits_of_float b.Vm.est_cost_ns
                in
                same tree reg && same tree jit)
              (labeled_programs m))
          monitors)

let test_differential () =
  let failures = ref [] in
  for i = 0 to fuzz_cases - 1 do
    run_case i failures
  done;
  match List.rev !failures with
  | [] -> ()
  | fs ->
    let shown = List.filteri (fun i _ -> i < 10) fs in
    Alcotest.failf "%d/%d differential cases diverged (first %d shown):\n%s" (List.length fs)
      fuzz_cases (List.length shown) (String.concat "\n" shown)

(* ------------------------------------------------------------------ *)
(* Fleet differential: sequential vs. parallel epoch-barrier mode.    *)
(* ------------------------------------------------------------------ *)

module Fleet = Guardrails.Fleet
module D = Guardrails.Deployment

let fleet_fuzz_cases = 30

(* Distinct prime feeder cadences (µs). Primes above 5000 cannot land
   on the ms-grained epoch boundaries or monitor timers inside a
   sub-2s horizon, and two distinct primes first coincide at their
   product (>= 25 simulated seconds), so cross-node event order is
   unambiguous and seq/par equality is exact rather than modulo
   tie-breaking (docs/PARALLEL.md explains why ties are the only
   wiggle room the protocol leaves). *)
let fleet_primes =
  [| 5003; 6007; 7919; 8009; 9973; 12007; 15013; 23003; 31013; 41999; 104729; 149993 |]

let run_fleet_case i failures violations_seen =
  let fail fmt =
    Printf.ksprintf
      (fun msg -> failures := Printf.sprintf "fleet case %d: %s" i msg :: !failures)
      fmt
  in
  let rng = Rng.create (0xF1EE7 + i) in
  let nodes = 2 + Rng.int rng 5 in
  let seed = 101 + Rng.int rng 10_000 in
  (* Epoch-compatible workload (docs/PARALLEL.md): control-side TIMER
     periods and the horizon are multiples of the epoch, so every
     control tick lands on a barrier where both modes have dispatched
     exactly the same node events. A tick strictly inside an epoch
     would read the shards' streaming aggregate state as of the
     enclosing boundary — deterministic, but ahead of the sequential
     interleaving by up to one epoch. *)
  let epoch_ms = 10 * (2 + Rng.int rng 9) in
  let epoch = Time_ns.ms epoch_ms in
  let limit = Time_ns.ms (epoch_ms * (8 + Rng.int rng 8)) in
  let beacon_stride = 1 + Rng.int rng 3 in
  (* Random permutation of the cadence table: node n feeds "lat" on
     perm[n], beacon publishers tick on perm[nodes + n]. *)
  let perm = Array.init (Array.length fleet_primes) (fun j -> j) in
  for j = Array.length perm - 1 downto 1 do
    let k = Rng.int rng (j + 1) in
    let tmp = perm.(j) in
    perm.(j) <- perm.(k);
    perm.(k) <- tmp
  done;
  let source =
    Printf.sprintf
      {|guardrail fz_lat { trigger: { TIMER(0, %dms) } rule: { AVG(lat, 1s) <= %d } action: { REPORT("lat high", lat) } }
        guardrail fz_beacon { trigger: { ON_CHANGE(GLOBAL(beacon)) } rule: { COUNT(GLOBAL(beacon), 1s) <= %d } action: { REPORT("beacon burst", GLOBAL(beacon)) } }
        guardrail fz_act { trigger: { TIMER(0, %dms) } rule: { QUANTILE(lat, 0.9, 1s) <= %d } action: { REPORT("tail", lat) REPLACE("dummy_policy") } }|}
      (epoch_ms * (1 + Rng.int rng 3))
      (30 + (10 * Rng.int rng 7))
      (Rng.int rng 6)
      (epoch_ms * (1 + Rng.int rng 5))
      (40 + (10 * Rng.int rng 8))
  in
  let build domains =
    let fleet = Fleet.create ~nodes ~seed ~tracing:true ~domains ~epoch () in
    Array.iteri
      (fun n node ->
        let krng = (D.kernel node).Gr_kernel.Kernel.rng in
        D.derive_periodic node ~key:"lat"
          ~every:(Time_ns.us fleet_primes.(perm.(n)))
          (fun () -> Rng.float krng 100.);
        if n mod beacon_stride = 0 then
          D.derive_periodic node
            ~key:(Gr_dsl.Ast.global_key "beacon")
            ~every:(Time_ns.us fleet_primes.(perm.(nodes + n)))
            (fun () -> Rng.float krng 10.);
        Gr_kernel.Policy_slot.Registry.register
          (D.kernel node).Gr_kernel.Kernel.registry "dummy_policy"
          { replace = (fun () -> ()); restore = (fun () -> ()); retrain = (fun () -> ()) })
      (Fleet.nodes fleet);
    ignore (Fleet.install_source_exn fleet source : Gr_runtime.Engine.handle list);
    Fleet.run_until fleet limit;
    fleet
  in
  let seq = build 1 and par = build 4 in
  if Fleet.domains seq <> 1 then fail "seq side not sequential";
  if Fleet.domains par < 2 then fail "par side did not engage domains";
  let vs, acts_s, aggs_s, gs = Test_par.observables seq in
  let vp, acts_p, aggs_p, gp = Test_par.observables par in
  violations_seen := !violations_seen + List.length vs;
  if List.length vs <> List.length vp then
    fail "violation counts diverged (seq %d vs par %d)" (List.length vs) (List.length vp)
  else
    List.iter2 (fun a b -> if a <> b then fail "violation record diverged: %s vs %s" a b) vs vp;
  if acts_s <> acts_p then fail "fleet action counters diverged";
  if aggs_s <> aggs_p then fail "merged aggregates diverged";
  if not (gs = gp || (Float.is_nan gs && Float.is_nan gp)) then
    fail "global-tier beacon value diverged (%h vs %h)" gs gp;
  List.iter2
    (fun ts tp ->
      let es = Test_par.normalized_events ts and ep = Test_par.normalized_events tp in
      if es <> ep then
        fail "trace channel diverged (%d vs %d observable events)" (List.length es)
          (List.length ep))
    (Test_par.channels seq) (Test_par.channels par)

let test_fleet_differential () =
  let failures = ref [] in
  let violations_seen = ref 0 in
  for i = 0 to fleet_fuzz_cases - 1 do
    run_fleet_case i failures violations_seen
  done;
  if !violations_seen = 0 then
    Alcotest.fail "fleet differential never produced a violation — thresholds too lax to test anything";
  match List.rev !failures with
  | [] -> ()
  | fs ->
    let shown = List.filteri (fun i _ -> i < 10) fs in
    Alcotest.failf "%d/%d fleet differential cases diverged (first %d shown):\n%s"
      (List.length fs) fleet_fuzz_cases (List.length shown) (String.concat "\n" shown)

(* Pin the property tests' seed too: CI replays the same inputs. *)
let pinned t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5EED |]) t

let suite =
  [
    ( "fuzz",
      [
        pinned parser_total_on_garbage;
        pinned parser_total_on_token_soup;
        pinned compile_total_on_token_soup;
        pinned compiled_monitors_always_verify;
        pinned accounting_tier_invariant;
        Alcotest.test_case
          "differential: tree/reg/jit/reference 4-way, 500 pinned seeds" `Quick
          test_differential;
        Alcotest.test_case
          "differential: fleet sequential vs parallel epoch-barrier, 30 pinned seeds" `Quick
          test_fleet_differential;
      ] );
  ]
