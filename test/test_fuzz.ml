(* Fuzz-style robustness tests: the compiler front end must never
   raise anything except its declared error type, no matter the
   input. *)

let parser_total_on_garbage =
  QCheck2.Test.make ~name:"parser returns Ok/Error on arbitrary bytes, never raises" ~count:1000
    QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 200))
    (fun s ->
      match Gr_dsl.Parser.parse s with Ok _ | Error _ -> true)

let printable_gen =
  (* Biased toward token-shaped fragments so the parser gets past the
     lexer often enough to exercise deeper paths. *)
  QCheck2.Gen.(
    map (String.concat " ")
      (list_size (int_range 0 40)
         (oneofl
            [
              "guardrail"; "trigger"; "rule"; "action"; "{"; "}"; "("; ")"; ","; ";"; ":";
              "TIMER"; "FUNCTION"; "ON_CHANGE"; "LOAD"; "SAVE"; "REPORT"; "REPLACE"; "RETRAIN";
              "AVG"; "QUANTILE"; "&&"; "||"; "!"; "<="; "=="; "+"; "-"; "*"; "/"; "0"; "1e9";
              "50ms"; "true"; "false"; "x"; "y"; "\"s\""; "low-false-submit";
            ])))

let parser_total_on_token_soup =
  QCheck2.Test.make ~name:"parser total on token soup" ~count:1000 printable_gen (fun s ->
      match Gr_dsl.Parser.parse s with Ok _ | Error _ -> true)

let compile_total_on_token_soup =
  QCheck2.Test.make ~name:"full compile pipeline total on token soup" ~count:500 printable_gen
    (fun s ->
      match Gr_compiler.Compile.source s with Ok _ | Error _ -> true)

let compiled_monitors_always_verify =
  (* Everything the pipeline accepts must satisfy the verifier — the
     compiler cannot emit monitors the loader would reject. *)
  QCheck2.Test.make ~name:"pipeline output always passes the verifier" ~count:300
    Gen.guardrail_gen
    (fun g ->
      let src = Gr_dsl.Pretty.spec_to_string [ g ] in
      match Gr_compiler.Compile.source src with
      | Error _ -> true (* rejected inputs are fine *)
      | Ok monitors ->
        List.for_all
          (fun m -> Result.is_ok (Gr_compiler.Verify.verify m))
          monitors)

let suite =
  [
    ( "fuzz",
      [
        QCheck_alcotest.to_alcotest parser_total_on_garbage;
        QCheck_alcotest.to_alcotest parser_total_on_token_soup;
        QCheck_alcotest.to_alcotest compile_total_on_token_soup;
        QCheck_alcotest.to_alcotest compiled_monitors_always_verify;
      ] );
  ]
