(* The serve control plane: the versioned spec lifecycle behind
   grc serve (lib/core/lifecycle.ml, docs/SERVE.md).

   The load-bearing assertions:
   - rollback restores the previous version bit-identically — the
     same physical handles keep running, the engine's monitor table
     and the store's demand refcounts return exactly to their
     pre-push state;
   - repeated push/rollback and push/promote cycles leave demand
     refcounts stationary (the exactly-once release regression);
   - concurrent pushes serialize with the loser rejected;
   - epoch-chunked execution (the barrier decision points) is
     trace-byte-identical to a one-shot run, so the control plane's
     version checks cost zero on the steady-state path;
   - the audit log chains every decision parent-resolvably from
     rollback/promote back to the push that caused it. *)

open Gr_util
module L = Guardrails.Lifecycle
module Fleet = Guardrails.Fleet
module D = Guardrails.Deployment
module Kernel = Guardrails.Kernel
module Store = Gr_runtime.Feature_store
module Rt = Gr_runtime.Engine
module Event = Gr_trace.Event
module Sink = Gr_trace.Sink
module Tracer = Gr_trace.Tracer
module P = Gr_trace.Provenance
module Soak = Gr_fault.Soak
module Fault = Gr_fault.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let boot_spec =
  {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 1e9 },
  action: {
    REPORT("p99 degraded", latency_us)
    REPLACE("lat_predictor")
  }
}
|}

(* Same aggregate shapes as boot_spec, different threshold: promoting
   it must leave the store's demand set unchanged. *)
let good_spec =
  {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 5e8 },
  action: {
    REPORT("p99 degraded", latency_us)
    REPLACE("lat_predictor")
  }
}
|}

(* Violates the fire-rate guardrail on an idle deployment: nothing
   feeds serve_heartbeat, so the 10ms timer fires ~100 actions per
   simulated second — far over the default 5/s. *)
let hot_spec =
  {|
guardrail serve-heartbeat {
  trigger: { TIMER(0, 10ms) },
  rule: { COUNT(serve_heartbeat, 1s) >= 1 },
  action: {
    REPORT("no heartbeat", serve_heartbeat)
    REPLACE("lat_predictor")
  }
}
|}

(* Dies at admission: GRL003 (divisor constantly zero). *)
let bad_spec =
  {|
guardrail serve-bad {
  trigger: { TIMER(0, 100ms) },
  rule: { LOAD(latency_us) / 0 <= 1 },
  action: { REPORT("unreachable") }
}
|}

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let advance fleet n =
  for _ = 1 to n do
    Fleet.run_until fleet
      (Time_ns.add (Guardrails.Sim.now (Fleet.sim fleet)) Fleet.default_epoch)
  done

let make ?(nodes = 3) ?config ?audit () =
  let fleet = Fleet.create ~nodes ~seed:7 ~tracing:true () in
  let lc = L.create ?config ?audit (L.Fleet fleet) in
  (match L.boot lc ~who:"test" boot_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "boot rejected: %a" D.pp_error e);
  (fleet, lc)

(* ------------------------------------------------------------------ *)
(* Admission, canary, promotion                                       *)
(* ------------------------------------------------------------------ *)

let test_push_canary_promote () =
  let fleet, lc = make () in
  (match L.push lc ~who:"alice" good_spec with
  | L.Admitted { version } -> check_int "admitted as v2" 2 version
  | L.Rejected { reason; _ } -> Alcotest.failf "rejected: %s" reason);
  check "admitted push is staged for the next barrier" true
    (match L.phase lc with L.Pending _ -> true | _ -> false);
  advance fleet 1;
  check "canarying after the install barrier" true
    (match L.phase lc with L.Rolling _ -> true | _ -> false);
  check "canary routed onto node subset" true
    (Fleet.canary fleet ~policy:"lat_predictor" = Some [ 0 ]);
  advance fleet 3;
  check "steady after three clean verdicts" true (L.phase lc = L.Steady);
  check_int "one promotion" 1 (L.promotions lc);
  check_int "no rollbacks" 0 (L.rollbacks lc);
  (match L.active lc with
  | Some v ->
    check_int "v2 is active" 2 v.L.id;
    check_string "pushed-by identity recorded" "alice" v.L.who
  | None -> Alcotest.fail "no active version");
  (match L.find_version lc 1 with
  | Some v1 ->
    check "v1 superseded" true (v1.L.status = L.Superseded);
    check_int "v1 holds no engine handles" 0 (List.length v1.L.handles)
  | None -> Alcotest.fail "v1 missing from history");
  check "canary cleared after promotion" true
    (Fleet.canary fleet ~policy:"lat_predictor" = None)

let test_admission_reject () =
  let _fleet, lc = make () in
  (match L.push lc ~who:"bob" bad_spec with
  | L.Admitted _ -> Alcotest.fail "GRL003 spec must be rejected"
  | L.Rejected { version; diagnostics; _ } ->
    check_int "rejected push still consumes a version id" 2 version;
    check "diagnostics carry GRL003" true
      (List.exists
         (fun (d : Guardrails.Diagnostic.t) -> d.code = "GRL003")
         diagnostics));
  check "machine stays steady" true (L.phase lc = L.Steady);
  (match L.find_version lc 2 with
  | Some v -> check "version marked rejected" true (v.L.status = L.Rejected)
  | None -> Alcotest.fail "rejected version missing from history");
  (* The registry is not wedged: the next push admits. *)
  match L.push lc ~who:"bob" good_spec with
  | L.Admitted { version } -> check_int "next push admits as v3" 3 version
  | L.Rejected { reason; _ } -> Alcotest.failf "follow-up rejected: %s" reason

let test_concurrent_pushes_serialized () =
  let fleet, lc = make () in
  (match L.push lc ~who:"alice" good_spec with
  | L.Admitted _ -> ()
  | L.Rejected { reason; _ } -> Alcotest.failf "first push rejected: %s" reason);
  (* Second push while the first is staged: loser rejected. *)
  (match L.push lc ~who:"bob" good_spec with
  | L.Admitted _ -> Alcotest.fail "second push must lose the race"
  | L.Rejected { reason; _ } ->
    check "reason names the in-flight rollout" true (contains reason "in progress"));
  advance fleet 1;
  (* And again mid-canary. *)
  (match L.push lc ~who:"carol" good_spec with
  | L.Admitted _ -> Alcotest.fail "mid-canary push must lose the race"
  | L.Rejected _ -> ());
  advance fleet 3;
  check_int "winner promoted" 1 (L.promotions lc);
  (* Both losing pushes are kept in history with version ids of
     their own (3 and 4), so the retry lands as v5. *)
  match L.push lc ~who:"bob" good_spec with
  | L.Admitted { version } -> check_int "loser can retry once steady" 5 version
  | L.Rejected { reason; _ } -> Alcotest.failf "retry rejected: %s" reason

(* ------------------------------------------------------------------ *)
(* Rollback restores the prior version bit-identically                *)
(* ------------------------------------------------------------------ *)

let test_rollback_restores_prior_version () =
  let fleet, lc = make () in
  let engine = Fleet.engine fleet in
  let store = Fleet.store fleet in
  let v1_handles = (Option.get (L.active lc)).L.handles in
  let table0 = Rt.installed_count engine in
  let demand0 = Store.demand_count store in
  (match L.push lc ~who:"mallory" hot_spec with
  | L.Admitted _ -> ()
  | L.Rejected { reason; _ } -> Alcotest.failf "hot spec must admit: %s" reason);
  advance fleet 1;
  (* Canary installed alongside v1: both versions live. *)
  check_int "canary adds to the monitor table" (table0 + 1) (Rt.installed_count engine);
  check_int "canary demands its own shape" (demand0 + 1) (Store.demand_count store);
  check "v1 keeps running through the canary window" true
    (List.for_all Rt.installed v1_handles);
  advance fleet 1;
  (* First verdict: ~100 fires/s >> 5/s, rolled back. *)
  check_int "one rollback" 1 (L.rollbacks lc);
  check "steady again" true (L.phase lc = L.Steady);
  (match L.active lc with
  | Some v -> check_int "v1 restored as active" 1 v.L.id
  | None -> Alcotest.fail "no active version after rollback");
  (* Bit-identical restore: v1 was never uninstalled — the same
     physical handles are still live on the engine. *)
  let v1_after = (Option.get (L.active lc)).L.handles in
  check "same physical handle list" true
    (List.length v1_handles = List.length v1_after
    && List.for_all2 ( == ) v1_handles v1_after);
  check "v1 handles still installed" true (List.for_all Rt.installed v1_after);
  check_int "monitor table back to baseline" table0 (Rt.installed_count engine);
  check_int "demand refcounts back to baseline" demand0 (Store.demand_count store);
  match L.find_version lc 2 with
  | Some v2 ->
    check "hot version marked rolled back" true (v2.L.status = L.Rolled_back);
    check_int "hot version holds no handles" 0 (List.length v2.L.handles)
  | None -> Alcotest.fail "v2 missing from history"

(* The satellite regression: repeated push/rollback and push/promote
   cycles must leave streaming-aggregate demand refcounts and the
   monitor table stationary — a leaked refcount or an un-dropped
   state record shows up as monotone drift here. *)
let test_refcount_stationary_across_cycles () =
  let fleet, lc = make ~config:{ L.default_config with canary_barriers = 1 } () in
  let engine = Fleet.engine fleet in
  let store = Fleet.store fleet in
  let table0 = Rt.installed_count engine in
  let demand0 = Store.demand_count store in
  for cycle = 1 to 10 do
    (match L.push lc ~who:"mallory" hot_spec with
    | L.Admitted _ -> ()
    | L.Rejected { reason; _ } -> Alcotest.failf "cycle %d rejected: %s" cycle reason);
    advance fleet 2;
    check "cycle ends steady" true (L.phase lc = L.Steady);
    check_int
      (Printf.sprintf "demand refcounts stationary after rollback cycle %d" cycle)
      demand0 (Store.demand_count store);
    check_int
      (Printf.sprintf "monitor table stationary after rollback cycle %d" cycle)
      table0 (Rt.installed_count engine)
  done;
  check_int "ten rollbacks recorded" 10 (L.rollbacks lc);
  (* Promote cycles: same shapes, so the demand set is invariant
     across version swaps too. *)
  for cycle = 1 to 5 do
    let spec = if cycle mod 2 = 0 then good_spec else boot_spec in
    (match L.push lc ~who:"alice" spec with
    | L.Admitted _ -> ()
    | L.Rejected { reason; _ } -> Alcotest.failf "promote cycle %d rejected: %s" cycle reason);
    advance fleet 2;
    check "promote cycle ends steady" true (L.phase lc = L.Steady);
    check_int
      (Printf.sprintf "demand refcounts stationary after promote cycle %d" cycle)
      demand0 (Store.demand_count store);
    check_int
      (Printf.sprintf "monitor table stationary after promote cycle %d" cycle)
      table0 (Rt.installed_count engine)
  done;
  check_int "five promotions recorded" 5 (L.promotions lc)

(* ------------------------------------------------------------------ *)
(* Chunked execution is trace-byte-identical (grc serve ≡ grc run)    *)
(* ------------------------------------------------------------------ *)

let test_chunked_run_bit_identical () =
  let build () =
    let kernel = Kernel.create ~seed:11 in
    let d = D.create ~kernel ~tracing:true () in
    (kernel, d)
  in
  (* One-shot, installed the way grc run does. *)
  let kernel_a, d_a = build () in
  (match D.install_source d_a boot_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install failed: %a" D.pp_error e);
  Kernel.run_until kernel_a (Time_ns.sec 1);
  (* Epoch-chunked with the lifecycle barrier as decision point,
     installed the way grc serve boots. *)
  let kernel_b, d_b = build () in
  let lc = L.create (L.Deployment d_b) in
  (match L.boot lc ~who:"test" boot_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "boot failed: %a" D.pp_error e);
  Guardrails.Sim.run_chunked kernel_b.Kernel.engine ~epoch:Fleet.default_epoch
    ~limit:(Time_ns.sec 1) ~at_barrier:(L.barrier lc);
  check_int "barriers fired" 20 (L.barriers_seen lc);
  let events d = Sink.to_list (Tracer.events (D.tracer d)) in
  let ea = events d_a and eb = events d_b in
  check_int "same event count" (List.length ea) (List.length eb);
  List.iteri
    (fun i (a, b) ->
      if not (Event.equal a b) then
        Alcotest.failf "event %d diverged:@.  run:   %a@.  serve: %a" i Event.pp a Event.pp b)
    (List.combine ea eb)

(* A lifecycle over a single deployment still promotes (no canary
   subset to route — the verdict gates on the whole deployment). *)
let test_deployment_target_promotes () =
  let kernel = Kernel.create ~seed:11 in
  let d = D.create ~kernel () in
  let lc = L.create (L.Deployment d) in
  (match L.boot lc ~who:"test" boot_spec with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "boot failed: %a" D.pp_error e);
  (match L.push lc ~who:"alice" good_spec with
  | L.Admitted _ -> ()
  | L.Rejected { reason; _ } -> Alcotest.failf "rejected: %s" reason);
  Guardrails.Sim.run_chunked kernel.Kernel.engine ~epoch:Fleet.default_epoch
    ~limit:(Time_ns.ms 250) ~at_barrier:(L.barrier lc);
  check_int "promoted" 1 (L.promotions lc);
  check_int "v2 active" 2 (Option.get (L.active lc)).L.id

(* ------------------------------------------------------------------ *)
(* Audit log: JSONL round-trip and decision provenance                *)
(* ------------------------------------------------------------------ *)

let test_audit_log_chain () =
  let path = Filename.temp_file "grc-audit" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let log = Guardrails.Audit_log.create ~path in
      let emitted = ref [] in
      let fleet, lc =
        make
          ~audit:(fun e ->
            emitted := e :: !emitted;
            Guardrails.Audit_log.append log e)
          ()
      in
      (match L.push lc ~who:"alice" good_spec with L.Admitted _ -> () | _ -> ());
      advance fleet 4;
      (match L.push lc ~who:"mallory" hot_spec with L.Admitted _ -> () | _ -> ());
      advance fleet 2;
      (match L.push lc ~who:"bob" bad_spec with L.Rejected _ -> () | _ -> ());
      Guardrails.Audit_log.close log;
      (* Round-trip: the file replays to exactly the emitted events. *)
      let read =
        match Guardrails.Audit_log.read path with
        | Ok events -> events
        | Error e -> Alcotest.failf "audit log unreadable: %s" e
      in
      let emitted = List.rev !emitted in
      check_int "every decision event round-trips" (List.length emitted) (List.length read);
      List.iteri
        (fun i (a, b) ->
          if not (Event.equal a b) then Alcotest.failf "audit event %d diverged" i)
        (List.combine emitted read);
      (* Provenance loads the JSONL directly and the chains resolve. *)
      let prov =
        match P.load path with
        | Ok prov -> prov
        | Error e -> Alcotest.failf "Provenance.load: %s" e
      in
      check_int "no orphaned decisions" 0 (List.length (P.orphans prov));
      let names nodes = List.map (fun (n : P.node) -> n.P.event.Event.name) nodes in
      (match P.actions ~name:"rollout.rollback" prov with
      | [ rb ] ->
        check "rollback chains to the push that caused it" true
          (names (P.ancestors prov rb)
          = [ "spec.push"; "spec.admit"; "rollout.canary"; "rollout.verdict" ])
      | l -> Alcotest.failf "expected 1 rollback decision, found %d" (List.length l));
      (match P.actions ~name:"spec.reject" prov with
      | [ rj ] ->
        check "reject chains to its push" true (names (P.ancestors prov rj) = [ "spec.push" ])
      | l -> Alcotest.failf "expected 1 reject decision, found %d" (List.length l));
      check_int "one promote in the log" 1 (List.length (P.actions ~name:"rollout.promote" prov)))

(* ------------------------------------------------------------------ *)
(* Chaos: the rollout path under faults on the canary node            *)
(* ------------------------------------------------------------------ *)

(* Node 0 is both the injector's target and the canary subset, so
   these plans land the fault mid-rollout on the canary itself: a GC
   storm while a push is staged, then device death while the next
   version canaries. The serve scenario's own barrier invariants
   (demand refcounts, registry/table consistency, audit chain) do the
   asserting; problems surface in r.problems. *)
let test_canary_node_dies_mid_rollout () =
  let plan =
    [
      { Fault.at = Time_ns.ms 120; kind = Fault.Gc_storm { device = 0; duration = Time_ns.ms 200 } };
      { Fault.at = Time_ns.ms 210; kind = Fault.Device_death { device = 0; duration = Time_ns.ms 400 } };
    ]
  in
  let r =
    Soak.run_one ~nodes:3 ~scenario:"serve" ~seed:5 ~duration:(Time_ns.sec 1) ~plan ()
  in
  if not r.Soak.ok then
    Alcotest.failf "serve soak under canary-node faults: %s" (String.concat "; " r.Soak.problems);
  check_int "both faults landed" 2 r.Soak.faults_injected

(* ------------------------------------------------------------------ *)
(* CLI: spec on stdin ("-") shares the admission code path            *)
(* ------------------------------------------------------------------ *)

let grc_exe () =
  List.find_opt Sys.file_exists [ "../bin/grc.exe"; "_build/default/bin/grc.exe" ]

let test_cli_stdin_spec () =
  match grc_exe () with
  | None -> Alcotest.fail "grc.exe not found next to the test runner"
  | Some grc ->
    let with_spec src f =
      let path = Filename.temp_file "grc-serve-test" ".grd" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out path in
          output_string oc src;
          close_out oc;
          f path)
    in
    with_spec bad_spec (fun bad ->
        check_int "lint - rejects the admission-rejected spec on stdin" 2
          (Sys.command (Printf.sprintf "%s lint - < %s >/dev/null 2>&1" grc bad)));
    with_spec good_spec (fun good ->
        check_int "verify - passes the admissible spec on stdin" 0
          (Sys.command (Printf.sprintf "%s verify - < %s >/dev/null 2>&1" grc good));
        check_int "lint - --strict passes it too" 0
          (Sys.command (Printf.sprintf "%s lint - --strict < %s >/dev/null 2>&1" grc good)))

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "push admits, canaries onto a node subset, promotes" `Quick
          test_push_canary_promote;
        Alcotest.test_case "admission rejects with structured diagnostics" `Quick
          test_admission_reject;
        Alcotest.test_case "concurrent pushes serialize; loser rejected" `Quick
          test_concurrent_pushes_serialized;
        Alcotest.test_case "rollback restores the prior version bit-identically" `Quick
          test_rollback_restores_prior_version;
        Alcotest.test_case "refcounts stationary across push/rollback/promote cycles" `Quick
          test_refcount_stationary_across_cycles;
        Alcotest.test_case "epoch-chunked serve run is trace-identical to grc run" `Quick
          test_chunked_run_bit_identical;
        Alcotest.test_case "single-deployment target promotes without a canary subset" `Quick
          test_deployment_target_promotes;
        Alcotest.test_case "audit log round-trips and chains every decision" `Quick
          test_audit_log_chain;
        Alcotest.test_case "canary node faults mid-rollout leave invariants intact" `Quick
          test_canary_node_dies_mid_rollout;
        Alcotest.test_case "lint/verify accept the spec on stdin" `Quick test_cli_stdin_spec;
      ] );
  ]
