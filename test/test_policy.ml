(* Tests for gr_policy: each learned policy must (a) genuinely learn
   its task, and (b) exhibit the documented failure mode on demand. *)

open Gr_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Linnos ---------- *)

let make_devices ?(n = 2) ?(seed = 21) profile =
  let rng = Rng.create seed in
  (rng, Array.init n (fun i -> Gr_kernel.Ssd.create ~rng ~profile ~id:i))

let test_linnos_learns_young_regime () =
  let rng, devices = make_devices Gr_kernel.Ssd.young_profile in
  let m = Gr_policy.Linnos.train ~rng ~devices () in
  check_bool "holdout accuracy above 90%" true (Gr_policy.Linnos.holdout_accuracy m > 0.9)

let test_linnos_policy_decisions () =
  let rng, devices = make_devices Gr_kernel.Ssd.young_profile in
  let m = Gr_policy.Linnos.train ~rng ~devices () in
  let policy = Gr_policy.Linnos.policy m in
  (* Calm history, empty queues: must trust the primary. *)
  let calm = [| 0.; 0.; 90.; 95.; 92.; 88. |] in
  check_bool "calm -> trust" true (policy.decide calm = Gr_kernel.Blk.Trust_primary);
  (* GC-storm history: must revoke. *)
  let storm = [| 10.; 0.; 900.; 1100.; 1000.; 950. |] in
  check_bool "storm -> revoke" true (policy.decide storm = Gr_kernel.Blk.Revoke_now)

let test_linnos_disabled_hedges () =
  let rng, devices = make_devices Gr_kernel.Ssd.young_profile in
  let m = Gr_policy.Linnos.train ~rng ~devices () in
  Gr_policy.Linnos.set_enabled m false;
  let policy = Gr_policy.Linnos.policy m in
  (match policy.decide [| 0.; 0.; 900.; 1100.; 1000.; 950. |] with
  | Gr_kernel.Blk.Hedge _ -> ()
  | _ -> Alcotest.fail "disabled model must hedge");
  check_bool "flag readable" false (Gr_policy.Linnos.enabled m)

let test_linnos_retrain_adapts () =
  let rng, devices = make_devices Gr_kernel.Ssd.young_profile in
  let m = Gr_policy.Linnos.train ~rng ~devices () in
  Array.iter (fun dev -> Gr_kernel.Ssd.set_profile dev Gr_kernel.Ssd.aged_profile) devices;
  let stale = Gr_policy.Linnos.holdout_accuracy m in
  Gr_policy.Linnos.retrain m;
  check_int "retrain counted" 1 (Gr_policy.Linnos.retrain_count m);
  let fresh = Gr_policy.Linnos.holdout_accuracy m in
  check_bool "retrained at least as good as stale" true (fresh >= stale -. 0.05);
  check_bool "fresh model accurate on new regime" true (fresh > 0.85)

let test_linnos_training_features_exposed () =
  let rng, devices = make_devices Gr_kernel.Ssd.young_profile in
  let m = Gr_policy.Linnos.train ~rng ~devices () in
  let feats = Gr_policy.Linnos.training_features m in
  check_bool "non-empty" true (Array.length feats > 100);
  check_int "feature dim" 6 (Array.length feats.(0));
  check_bool "inference flops positive" true (Gr_policy.Linnos.inference_flops m > 0)

(* ---------- Tiering ---------- *)

let test_tiering_beats_random_guess () =
  let rng = Rng.create 31 in
  let gen = Gr_workload.Mem_trace.zipfian ~rng ~n_pages:1024 () in
  let trace = Array.init 20_000 (fun _ -> Gr_workload.Mem_trace.next gen) in
  let m = Gr_policy.Tiering.train ~rng ~trace () in
  (* Hot page (high count, short gap): promote. First touch of a
     cold page: don't. *)
  check_bool "hot page promoted" true (Gr_policy.Tiering.predict_promote m [| 100.; 0.3; 1. |]);
  check_bool "cold page not promoted" false
    (Gr_policy.Tiering.predict_promote m [| 1.; 1e9; 1. |])

let test_tiering_disabled_falls_back () =
  let rng = Rng.create 32 in
  let gen = Gr_workload.Mem_trace.zipfian ~rng ~n_pages:256 () in
  let trace = Array.init 5_000 (fun _ -> Gr_workload.Mem_trace.next gen) in
  let m = Gr_policy.Tiering.train ~rng ~trace () in
  Gr_policy.Tiering.set_enabled m false;
  let policy = Gr_policy.Tiering.policy m in
  (* Second-touch fallback promotes on access_count >= 2. *)
  check_bool "fallback second touch" true (policy.promote [| 2.; 5.; 0.1 |]);
  check_bool "fallback first touch" false (policy.promote [| 1.; 1e9; 0.1 |])

(* ---------- Cache policy ---------- *)

let run_cache_workload ~policy ~trace ~hooks =
  let cache = Gr_kernel.Cache.create ~hooks ~capacity:64 in
  (match policy with
  | Some p ->
    Gr_kernel.Policy_slot.install (Gr_kernel.Cache.slot cache)
      ~name:p.Gr_kernel.Cache.policy_name p
  | None -> ());
  Array.iter (fun key -> ignore (Gr_kernel.Cache.access cache ~key : bool)) trace;
  Gr_kernel.Cache.hit_rate cache

let test_cache_learned_beats_random_on_zipf () =
  let rng = Rng.create 41 in
  let hooks = Gr_kernel.Hooks.create () in
  let gen = Gr_workload.Mem_trace.zipfian ~rng ~n_pages:1024 ~s:1.2 () in
  let train_trace = Array.init 20_000 (fun _ -> Gr_workload.Mem_trace.next gen) in
  let live_trace = Array.init 20_000 (fun _ -> Gr_workload.Mem_trace.next gen) in
  let m = Gr_policy.Cache_policy.train ~rng ~hooks ~trace:train_trace () in
  let learned = run_cache_workload ~policy:(Some (Gr_policy.Cache_policy.policy m)) ~trace:live_trace ~hooks in
  let random =
    run_cache_workload
      ~policy:(Some (Gr_kernel.Cache.random (Rng.create 42)))
      ~trace:live_trace ~hooks:(Gr_kernel.Hooks.create ())
  in
  check_bool "learned beats random on training distribution" true (learned > random)

let test_cache_learned_disabled_is_lru () =
  let rng = Rng.create 43 in
  let hooks = Gr_kernel.Hooks.create () in
  let m = Gr_policy.Cache_policy.train ~rng ~hooks ~trace:(Array.init 100 (fun i -> i mod 10)) () in
  Gr_policy.Cache_policy.set_enabled m false;
  let p = Gr_policy.Cache_policy.policy m in
  check_int "disabled picks LRU candidate" 7 (p.choose_victim ~candidates:[| 7; 8; 9 |])

(* ---------- Slice policy ---------- *)

let test_slice_matches_cfs_in_training_range () =
  let rng = Rng.create 51 in
  let m = Gr_policy.Slice_policy.train ~rng () in
  let predicted = Gr_policy.Slice_policy.predicted_slice_ms m ~nr_runnable:2 ~weight:1024 ~received_ms:10. in
  (* CFS gives 12ms at nr=2; the blind model learns the training
     average, so it must be in a plausible single-digit-to-24ms band. *)
  check_bool "plausible slice" true (predicted > 4. && predicted < 24.)

let test_slice_blind_to_runqueue_until_retrained () =
  let rng = Rng.create 52 in
  let m = Gr_policy.Slice_policy.train ~rng () in
  let at nr = Gr_policy.Slice_policy.predicted_slice_ms m ~nr_runnable:nr ~weight:1024 ~received_ms:10. in
  check_bool "same slice at nr=2 and nr=32 (feature omitted)" true
    (Float.abs (at 2 -. at 32) < 0.01);
  Gr_policy.Slice_policy.retrain m ~max_training_runnable:64;
  check_int "retrain counted" 1 (Gr_policy.Slice_policy.retrain_count m);
  check_bool "slices shrink with load after retrain" true (at 32 < at 2 /. 4.)

let test_slice_disabled_is_cfs () =
  let rng = Rng.create 53 in
  let m = Gr_policy.Slice_policy.train ~rng () in
  Gr_policy.Slice_policy.set_enabled m false;
  let p = Gr_policy.Slice_policy.policy m in
  let slice = p.slice ~nr_runnable:24 ~task_weight:1024 ~task_received_ms:0. in
  check_int "cfs 1ms floor at nr=24" (Time_ns.ms 1) slice

(* ---------- Balancer ---------- *)

let test_balancer_imitates_least_loaded () =
  let rng = Rng.create 55 in
  let m = Gr_policy.Balancer_policy.train ~rng ~cpus:4 () in
  check_int "picks the empty queue" 2 (Gr_policy.Balancer_policy.place m ~queue_lens:[| 5; 3; 0; 4 |]);
  check_int "picks the shortest" 1 (Gr_policy.Balancer_policy.place m ~queue_lens:[| 9; 1; 6; 7 |])

let test_balancer_affinity_misplaces_and_retrain_fixes () =
  let rng = Rng.create 56 in
  let m = Gr_policy.Balancer_policy.train ~rng ~cpus:4 () in
  Gr_policy.Balancer_policy.inject_affinity m ~strength:2.0;
  check_int "stale prior funnels to cpu0 despite load" 0
    (Gr_policy.Balancer_policy.place m ~queue_lens:[| 6; 0; 0; 0 |]);
  Gr_policy.Balancer_policy.retrain m;
  check_int "retrain clears the prior" 1
    (Gr_policy.Balancer_policy.place m ~queue_lens:[| 6; 0; 5; 5 |]);
  check_int "retrain counted" 1 (Gr_policy.Balancer_policy.retrain_count m)

let test_balancer_disabled_is_least_loaded () =
  let rng = Rng.create 57 in
  let m = Gr_policy.Balancer_policy.train ~rng ~cpus:4 () in
  Gr_policy.Balancer_policy.inject_affinity m ~strength:5.0;
  Gr_policy.Balancer_policy.set_enabled m false;
  let b = Gr_policy.Balancer_policy.balancer m in
  check_int "fallback ignores the prior" 2 (b.place ~queue_lens:[| 4; 3; 1; 3 |])

(* ---------- Quota advisor ---------- *)

let test_quota_honest_within_bounds () =
  let rng = Rng.create 61 in
  let a = Gr_policy.Quota_advisor.train ~rng ~capacity:200 () in
  for i = 0 to 10 do
    let miss_rate = float_of_int i /. 10. in
    let q = Gr_policy.Quota_advisor.propose a ~miss_rate ~occupancy:0.5 in
    check_bool "within capacity" true (q >= 0 && q <= 210)
  done;
  let low = Gr_policy.Quota_advisor.propose a ~miss_rate:0.05 ~occupancy:0.1 in
  let high = Gr_policy.Quota_advisor.propose a ~miss_rate:0.95 ~occupancy:0.9 in
  check_bool "monotone-ish in miss rate" true (high > low)

let test_quota_drift_goes_out_of_bounds () =
  let rng = Rng.create 62 in
  let a = Gr_policy.Quota_advisor.train ~rng ~capacity:200 () in
  Gr_policy.Quota_advisor.inject_drift a ~scale:4.;
  check_bool "drift recorded" true (Gr_policy.Quota_advisor.drift a = 4.);
  let q = Gr_policy.Quota_advisor.propose a ~miss_rate:0.9 ~occupancy:0.9 in
  check_bool "proposal exceeds capacity" true (q > 200)

(* ---------- CC controller ---------- *)

let test_cc_sane_and_robust () =
  let rng = Rng.create 71 in
  let c = Gr_policy.Cc_controller.train ~rng () in
  let fast = Gr_policy.Cc_controller.rate_multiplier c ~rtt_ms:10. ~loss:0.001 in
  let congested = Gr_policy.Cc_controller.rate_multiplier c ~rtt_ms:110. ~loss:0.12 in
  check_bool "backs off under congestion" true (congested < fast);
  let sens = Gr_policy.Cc_controller.sensitivity_probe c ~rng ~rtt_ms:40. ~loss:0.02 () in
  check_bool "trained model robust" true (sens < 10.)

let test_cc_injection_and_restore () =
  let rng = Rng.create 72 in
  let c = Gr_policy.Cc_controller.train ~rng () in
  Gr_policy.Cc_controller.inject_sensitivity c ~scale:100.;
  let sens = Gr_policy.Cc_controller.sensitivity_probe c ~rng ~rtt_ms:40. ~loss:0.02 () in
  check_bool "injected model fragile" true (sens > 10.);
  Gr_policy.Cc_controller.restore c;
  let healed = Gr_policy.Cc_controller.sensitivity_probe c ~rng ~rtt_ms:40. ~loss:0.02 () in
  check_bool "restore heals" true (healed < 10.)

(* ---------- Inject ---------- *)

let test_inject_flip () =
  let rng = Rng.create 81 in
  let base = { Gr_kernel.Blk.policy_name = "b"; decide = (fun _ -> Gr_kernel.Blk.Trust_primary) } in
  let flipped = Gr_policy.Inject.flip_blk_decisions ~rng ~p:1.0 base in
  check_bool "always flipped" true (flipped.decide [||] = Gr_kernel.Blk.Revoke_now);
  let never = Gr_policy.Inject.flip_blk_decisions ~rng ~p:0.0 base in
  check_bool "never flipped" true (never.decide [||] = Gr_kernel.Blk.Trust_primary)

(* ---------- Workload generators ---------- *)

let test_arrival_rates () =
  let rng = Rng.create 91 in
  let mean_gap arrival =
    let total = ref 0 in
    for _ = 1 to 5_000 do
      total := !total + Gr_workload.Arrival.next_interarrival arrival rng
    done;
    float_of_int !total /. 5_000.
  in
  let poisson = mean_gap (Gr_workload.Arrival.poisson ~rate_per_sec:1000.) in
  check_bool "poisson mean gap ~1ms" true (Float.abs (poisson -. 1e6) /. 1e6 < 0.1);
  let uniform = mean_gap (Gr_workload.Arrival.uniform ~rate_per_sec:1000.) in
  check_bool "uniform exact" true (Float.abs (uniform -. 1e6) < 1.);
  let mmpp =
    mean_gap
      (Gr_workload.Arrival.mmpp ~calm_rate:100. ~burst_rate:10_000. ~mean_calm:(Time_ns.ms 100)
         ~mean_burst:(Time_ns.ms 10))
  in
  check_bool "mmpp between regimes" true (mmpp > 1e5 /. 1e3 && mmpp < 1e7)

let test_mem_trace_shapes () =
  let rng = Rng.create 92 in
  let z = Gr_workload.Mem_trace.zipfian ~rng ~n_pages:100 () in
  for _ = 1 to 1000 do
    let p = Gr_workload.Mem_trace.next z in
    check_bool "in range" true (p >= 0 && p < 100)
  done;
  let s = Gr_workload.Mem_trace.scan ~n_pages:3 in
  (* Sequence explicitly: list-literal evaluation order is unspecified. *)
  let a = Gr_workload.Mem_trace.next s in
  let b = Gr_workload.Mem_trace.next s in
  let c = Gr_workload.Mem_trace.next s in
  let d = Gr_workload.Mem_trace.next s in
  Alcotest.(check (list int)) "scan cycles" [ 0; 1; 2; 0 ] [ a; b; c; d ]

let test_mem_trace_hot_shift () =
  let rng = Rng.create 93 in
  let z = Gr_workload.Mem_trace.zipfian ~rng ~n_pages:1000 ~s:1.5 () in
  let most_common n =
    let counts = Hashtbl.create 64 in
    for _ = 1 to n do
      let p = Gr_workload.Mem_trace.next z in
      Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
    done;
    fst (Hashtbl.fold (fun k v (bk, bv) -> if v > bv then (k, v) else (bk, bv)) counts (-1, 0))
  in
  let before = most_common 5000 in
  Gr_workload.Mem_trace.shift_hot_set z ~offset:500;
  let after = most_common 5000 in
  check_int "hot page moved by offset" ((before + 500) mod 1000) after

let suite =
  [
    ( "policy.linnos",
      [
        Alcotest.test_case "learns young regime" `Slow test_linnos_learns_young_regime;
        Alcotest.test_case "policy decisions" `Slow test_linnos_policy_decisions;
        Alcotest.test_case "disabled hedges" `Slow test_linnos_disabled_hedges;
        Alcotest.test_case "retrain adapts" `Slow test_linnos_retrain_adapts;
        Alcotest.test_case "training features exposed" `Slow test_linnos_training_features_exposed;
      ] );
    ( "policy.tiering",
      [
        Alcotest.test_case "sensible promotions" `Slow test_tiering_beats_random_guess;
        Alcotest.test_case "disabled falls back" `Slow test_tiering_disabled_falls_back;
      ] );
    ( "policy.cache",
      [
        Alcotest.test_case "learned beats random on zipf" `Slow
          test_cache_learned_beats_random_on_zipf;
        Alcotest.test_case "disabled is LRU" `Quick test_cache_learned_disabled_is_lru;
      ] );
    ( "policy.slice",
      [
        Alcotest.test_case "imitates CFS in range" `Quick test_slice_matches_cfs_in_training_range;
        Alcotest.test_case "blind to runqueue until retrained" `Quick
          test_slice_blind_to_runqueue_until_retrained;
        Alcotest.test_case "disabled is CFS" `Quick test_slice_disabled_is_cfs;
      ] );
    ( "policy.balancer",
      [
        Alcotest.test_case "imitates least-loaded" `Quick test_balancer_imitates_least_loaded;
        Alcotest.test_case "affinity misplaces; retrain fixes" `Quick
          test_balancer_affinity_misplaces_and_retrain_fixes;
        Alcotest.test_case "disabled is least-loaded" `Quick test_balancer_disabled_is_least_loaded;
      ] );
    ( "policy.quota",
      [
        Alcotest.test_case "honest within bounds" `Quick test_quota_honest_within_bounds;
        Alcotest.test_case "drift out of bounds" `Quick test_quota_drift_goes_out_of_bounds;
      ] );
    ( "policy.cc",
      [
        Alcotest.test_case "sane and robust" `Quick test_cc_sane_and_robust;
        Alcotest.test_case "injection and restore" `Quick test_cc_injection_and_restore;
      ] );
    ("policy.inject", [ Alcotest.test_case "flip decisions" `Quick test_inject_flip ]);
    ( "workload",
      [
        Alcotest.test_case "arrival rates" `Quick test_arrival_rates;
        Alcotest.test_case "mem trace shapes" `Quick test_mem_trace_shapes;
        Alcotest.test_case "hot set shift" `Quick test_mem_trace_hot_shift;
      ] );
  ]
