(* End-to-end integration: the paper's Figure 2 narrative as
   assertions, so regressions anywhere in the stack (device model,
   classifier, DSL, compiler, runtime, actions) break the build. *)

open Gr_util

let check_bool = Alcotest.(check bool)

let listing2 =
  {|
guardrail low-false-submit {
  trigger: { TIMER(start_time, 1e9) },
  rule: { LOAD(false_submit_rate) <= 0.05 },
  action: {
    REPORT("false submits", false_submit_rate)
    SAVE(ml_enabled, false)
  }
}
|}

type arm = {
  samples : Gr_workload.Io_driver.sample list;
  triggered_at : Time_ns.t option;
  model_enabled : bool;
}

(* A compressed Figure 2: aging at 1s, 4s run. *)
let run_arm ~with_guardrail =
  let kernel = Gr_kernel.Kernel.create ~seed:7 in
  let devices =
    Array.init 4 (fun i ->
        Gr_kernel.Ssd.create ~rng:kernel.rng ~profile:Gr_kernel.Ssd.young_profile ~id:i)
  in
  let blk = Gr_kernel.Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"linnos"
    (Gr_policy.Linnos.policy model);
  let d = Guardrails.Deployment.create ~kernel () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"blk:io_complete" ~arg:"false_submit" ();
  Guardrails.Deployment.derive_window_avg d ~src:"false_submit" ~dst:"false_submit_rate"
    ~window:(Time_ns.sec 1) ~every:(Time_ns.ms 100);
  Guardrails.Deployment.bind_control_key d ~key:"ml_enabled" (fun v ->
      Gr_policy.Linnos.set_enabled model (v <> 0.));
  if with_guardrail then
    ignore (Guardrails.Deployment.install_source_exn d listing2 : Gr_runtime.Engine.handle list);
  let driver =
    Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
      ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:1500.)
      ~n_devices:4 ~zipf_s:0.5 ~until:(Time_ns.sec 4) ()
  in
  ignore
    (Gr_sim.Engine.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         Array.iter
           (fun dev -> Gr_kernel.Ssd.set_profile dev Gr_kernel.Ssd.aged_profile)
           devices)
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 5);
  let triggered_at =
    match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
    | [] -> None
    | v :: _ -> Some v.Guardrails.Engine.at
  in
  {
    samples = Gr_workload.Io_driver.samples driver;
    triggered_at;
    model_enabled = Gr_policy.Linnos.enabled model;
  }

let mean_between ~lo ~hi samples =
  let xs =
    List.filter_map
      (fun (s : Gr_workload.Io_driver.sample) ->
        if s.at >= lo && s.at < hi then Some s.latency_us else None)
      samples
  in
  Stats.mean (Array.of_list xs)

let test_fig2_narrative () =
  let plain = run_arm ~with_guardrail:false in
  let guarded = run_arm ~with_guardrail:true in
  (* 1. The guardrail triggered after the aging event, within a
        couple of check periods. *)
  (match guarded.triggered_at with
  | None -> Alcotest.fail "guardrail never triggered"
  | Some at ->
    check_bool "triggered after aging" true (at >= Time_ns.sec 1);
    check_bool "triggered within 2.5s of aging" true (at <= Time_ns.sec 1 + Time_ns.ms 2500));
  check_bool "mitigation disabled the model" true (not guarded.model_enabled);
  check_bool "unguarded model still enabled" true plain.model_enabled;
  (* 2. Identical behaviour before the trigger (same seed). *)
  let pre_plain = mean_between ~lo:Time_ns.zero ~hi:(Time_ns.sec 1) plain.samples in
  let pre_guard = mean_between ~lo:Time_ns.zero ~hi:(Time_ns.sec 1) guarded.samples in
  check_bool "arms identical pre-drift" true (Float.abs (pre_plain -. pre_guard) < 1e-6);
  (* 3. The stale model degrades latency. *)
  let stale = mean_between ~lo:(Time_ns.sec 1) ~hi:(Time_ns.sec 2) plain.samples in
  check_bool "stale model much worse than healthy" true (stale > 2. *. pre_plain);
  (* 4. After mitigation, the guarded arm beats the unguarded arm —
        the paper's Figure 2 claim. *)
  let post_plain = mean_between ~lo:(Time_ns.sec 3) ~hi:(Time_ns.sec 4) plain.samples in
  let post_guard = mean_between ~lo:(Time_ns.sec 3) ~hi:(Time_ns.sec 4) guarded.samples in
  check_bool
    (Printf.sprintf "guarded (%.0fus) beats unguarded (%.0fus) post-mitigation" post_guard
       post_plain)
    true
    (post_guard < 0.8 *. post_plain);
  (* 5. And recovers to within ~2.5x of the healthy phase's latency
        (the aged devices are intrinsically slower, so parity with
        the young phase is not expected). *)
  check_bool "guarded arm recovers" true (post_guard < 4. *. pre_guard)

let test_fig2_false_submit_reduction () =
  let plain = run_arm ~with_guardrail:false in
  let guarded = run_arm ~with_guardrail:true in
  let count samples =
    List.length (List.filter (fun s -> s.Gr_workload.Io_driver.false_submit) samples)
  in
  check_bool "guardrail cuts false submits by >2x" true
    (count guarded.samples * 2 < count plain.samples)

let suite =
  [
    ( "integration.fig2",
      [
        Alcotest.test_case "figure 2 narrative" `Slow test_fig2_narrative;
        Alcotest.test_case "false submits reduced" `Slow test_fig2_false_submit_reduction;
      ] );
  ]
