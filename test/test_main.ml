let () =
  Alcotest.run "guardrails"
    (Test_util.suite @ Test_sim.suite @ Test_nn.suite @ Test_kernel.suite @ Test_net.suite @ Test_fs.suite
   @ Test_dsl.suite @ Test_compiler.suite @ Test_cgen.suite @ Test_lint.suite @ Test_verify.suite
   @ Test_trace.suite
   @ Test_runtime.suite
   @ Test_core.suite @ Test_tiers.suite @ Test_par.suite @ Test_props.suite @ Test_policy.suite @ Test_invariants.suite @ Test_fuzz.suite @ Test_fault.suite @ Test_serve.suite @ Test_integration.suite)
