(* gr_fault: fault plans, the injector, the chaos-soak harness, and
   end-to-end corrective-action behaviour under injected faults. *)

open Gr_util
module Fault = Gr_fault.Fault
module Injector = Gr_fault.Injector
module Soak = Gr_fault.Soak
module Kernel = Gr_kernel.Kernel
module Ssd = Gr_kernel.Ssd
module Blk = Gr_kernel.Blk
module Sched = Gr_kernel.Sched
module Slot = Gr_kernel.Policy_slot
module Store = Gr_runtime.Feature_store
module Rt = Gr_runtime.Engine
module D = Guardrails.Deployment

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Fault plans                                                        *)
(* ------------------------------------------------------------------ *)

let full_caps =
  {
    Fault.n_devices = 3;
    keys = [ "lat"; "err"; "false_submit_rate" ];
    hooks = [ "blk:io_complete"; "sched:dispatch" ];
    blk_policy = true;
  }

let test_plan_roundtrip () =
  for seed = 0 to 49 do
    let rng = Rng.create seed in
    let plan = Fault.gen ~rng ~caps:full_caps ~n:8 ~horizon:(Time_ns.sec 2) in
    match Fault.plan_of_string (Fault.plan_to_string plan) with
    | Ok plan' ->
      check
        (Printf.sprintf "seed %d: parse(print(plan)) = plan" seed)
        true (plan = plan')
    | Error e -> Alcotest.failf "seed %d: round-trip failed to parse: %s" seed e
  done;
  (* Hook names contain ':', adversarial values contain '-' and 'e'. *)
  let hairy =
    [
      { Fault.at = 1; kind = Fault.Hook_exn { hook = "blk:io_complete"; count = 3 } };
      { Fault.at = 2; kind = Fault.Corrupt_key { key = "lat"; corruption = Fault.Value (-1.32e9) } };
      { Fault.at = 3; kind = Fault.Corrupt_key { key = "err"; corruption = Fault.Nan } };
    ]
  in
  check "hairy plan round-trips" true
    (Fault.plan_of_string (Fault.plan_to_string hairy) = Ok hairy);
  check "empty plan round-trips" true (Fault.plan_of_string "" = Ok [])

let test_plan_parse_errors () =
  let one_line = function
    | Error e -> not (String.contains e '\n')
    | Ok _ -> false
  in
  check "garbage is a one-line error" true (one_line (Fault.plan_of_string "bogus"));
  check "unknown kind is a one-line error" true
    (one_line (Fault.plan_of_string "meteor@5:dev=1"));
  check "bad corruption value is a one-line error" true
    (one_line (Fault.plan_of_string "corrupt@5:key=k,v=zzz"));
  check "missing args is a one-line error" true (one_line (Fault.plan_of_string "gc-storm@5:dev=1"))

let test_gen_deterministic () =
  let plan_of seed =
    Fault.gen ~rng:(Rng.create seed) ~caps:full_caps ~n:6 ~horizon:(Time_ns.sec 1)
  in
  check "same seed, same plan" true (plan_of 7 = plan_of 7);
  check "different seeds differ" true (plan_of 7 <> plan_of 8)

(* ------------------------------------------------------------------ *)
(* Injector and soak harness                                          *)
(* ------------------------------------------------------------------ *)

let test_inapplicable_faults_skipped () =
  (* The store scenario has no devices and no block-policy slot. *)
  let plan =
    [
      { Fault.at = Time_ns.ms 50; kind = Fault.Gc_storm { device = 0; duration = Time_ns.ms 40 } };
      { Fault.at = Time_ns.ms 60; kind = Fault.Policy_chaos { chaos = Fault.Flip } };
    ]
  in
  let r =
    Soak.run_one ~scenario:"store" ~seed:5 ~duration:(Time_ns.of_float_sec 0.2) ~plan ()
  in
  check "run is clean" true r.Soak.ok;
  check_int "both faults skipped" 2 r.Soak.faults_skipped;
  check_int "none applied" 0 r.Soak.faults_injected

let test_run_bit_deterministic () =
  (* NaN-free plan so Event.equal's float comparison is exact. *)
  let plan =
    [
      { Fault.at = Time_ns.ms 50; kind = Fault.Corrupt_key { key = "lat"; corruption = Fault.Huge } };
      { Fault.at = Time_ns.ms 100; kind = Fault.Evict_burst { key = "rate"; burst = 200 } };
      { Fault.at = Time_ns.ms 120; kind = Fault.Hook_exn { hook = "soak:tick"; count = 2 } };
      { Fault.at = Time_ns.ms 150; kind = Fault.Clock_skew { by = Time_ns.ms 20 } };
    ]
  in
  let run () = Soak.run_one ~scenario:"store" ~seed:11 ~duration:(Time_ns.of_float_sec 0.3) ~plan () in
  let a = run () and b = run () in
  check "both runs clean" true (a.Soak.ok && b.Soak.ok);
  check_int "same event count" a.Soak.events b.Soak.events;
  check_int "same check count" a.Soak.checks b.Soak.checks;
  check_int "same trace length" (List.length a.Soak.trace) (List.length b.Soak.trace);
  check "trace streams are identical" true
    (List.equal Gr_trace.Event.equal a.Soak.trace b.Soak.trace)

let test_soak_smoke () =
  let r =
    Soak.soak ~scenarios:[ "store" ] ~seeds:[ 1; 2 ] ~duration:(Time_ns.of_float_sec 0.3) ()
  in
  check_int "two runs" 2 r.Soak.runs;
  check_int "both passed" 2 r.Soak.passed;
  check "faults were injected" true (r.Soak.total_faults > 0)

let test_shrink_minimal () =
  let is_corrupt = function { Fault.kind = Fault.Corrupt_key _; _ } -> true | _ -> false in
  let still_fails plan = List.exists is_corrupt plan in
  let rng = Rng.create 42 in
  let plan =
    Fault.gen ~rng ~caps:full_caps ~n:16 ~horizon:(Time_ns.sec 2)
    @ [
        { Fault.at = Time_ns.ms 10; kind = Fault.Corrupt_key { key = "lat"; corruption = Fault.Nan } };
        { Fault.at = Time_ns.ms 20; kind = Fault.Corrupt_key { key = "err"; corruption = Fault.Huge } };
      ]
  in
  check "full plan satisfies the predicate" true (still_fails plan);
  let shrunk = Soak.shrink ~still_fails plan in
  check_int "shrunk to a single fault" 1 (List.length shrunk);
  check "the survivor is a corruption" true (List.for_all is_corrupt shrunk);
  check "empty plan stays empty" true (Soak.shrink ~still_fails:(fun _ -> true) [] = [])

let test_repro_command_shape () =
  let f =
    {
      Soak.scenario = "store";
      seed = 9;
      duration = Time_ns.of_float_sec 0.5;
      domains = 1;
      plan = [];
      shrunk =
        [ { Fault.at = Time_ns.ms 50; kind = Fault.Corrupt_key { key = "lat"; corruption = Fault.Huge } } ];
      problems = [ "x" ];
    }
  in
  let cmd = Soak.repro_command f in
  let contains_in hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  let contains = contains_in cmd in
  check "names the scenario" true (contains "--scenario store");
  check "names the seed" true (contains "--seed 9");
  check "carries the shrunk plan" true (contains (Fault.plan_to_string f.Soak.shrunk));
  check "sequential repro omits --domains" false (contains "--domains");
  check "parallel repro pins --domains" true
    (contains_in (Soak.repro_command { f with Soak.domains = 4 }) "--domains 4")

(* ------------------------------------------------------------------ *)
(* Corrective actions end-to-end under injected faults                *)
(* ------------------------------------------------------------------ *)

(* Each test: a healthy deployment, one guardrail, one injected fault
   that trips it, and an assertion on the *subsystem* effect — not
   just the engine's counters. *)

let corrupt_err_at ms =
  [ { Fault.at = Time_ns.ms ms; kind = Fault.Corrupt_key { key = "err"; corruption = Fault.Huge } } ]

let test_e2e_report () =
  let kernel = Kernel.create ~seed:101 in
  let d = D.create ~kernel () in
  ignore
    (D.install_source_exn d
       {|
guardrail err-bound {
  trigger: { TIMER(0, 10ms) },
  rule: { LOAD(err) <= 100 },
  action: { REPORT("err out of range", err) }
}|}
      : Rt.handle list);
  Store.save (D.store d) "err" 1.;
  let inj = Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~seed:101 () in
  Injector.arm inj (corrupt_err_at 25);
  Gr_sim.Engine.run_until kernel.engine (Time_ns.ms 100);
  let vs = Rt.violations (D.engine d) in
  check "a violation was reported" true (vs <> []);
  List.iter
    (fun (v : Rt.violation_record) ->
      check "no violation before the fault landed" true (Time_ns.compare v.at (Time_ns.ms 25) >= 0))
    vs;
  check "the report snapshots the corrupted key" true
    (List.exists
       (fun (v : Rt.violation_record) ->
         v.monitor = "err-bound"
         && v.message = "err out of range"
         && List.assoc_opt "err" v.snapshot = Some 1e14)
       vs)

let test_e2e_replace () =
  let kernel = Kernel.create ~seed:102 in
  let devices =
    Array.init 2 (fun i -> Ssd.create ~rng:kernel.rng ~profile:Ssd.young_profile ~id:i)
  in
  let blk = Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  (* A learned primary must be live for REPLACE to have something to
     swap out; use_fallback on a bare slot is a no-op. *)
  Slot.install (Blk.slot blk) ~name:"always-trust" (Gr_policy.Inject.stuck_blk Blk.Trust_primary);
  let d = D.create ~kernel () in
  let replaced = ref 0 in
  Kernel.register_policy kernel ~name:"blk_policy"
    ~replace:(fun () ->
      incr replaced;
      Slot.use_fallback (Blk.slot blk))
    ~restore:(fun () -> Slot.restore (Blk.slot blk))
    ();
  ignore
    (D.install_source_exn d
       {|
guardrail err-replace {
  trigger: { TIMER(0, 10ms) },
  rule: { LOAD(err) <= 100 },
  action: {
    REPORT("err out of range", err)
    REPLACE("blk_policy")
  }
}|}
      : Rt.handle list);
  check "slot starts on its primary" false (Slot.on_fallback (Blk.slot blk));
  let inj =
    Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~devices ~blk ~seed:102 ()
  in
  Injector.arm inj (corrupt_err_at 25);
  Gr_sim.Engine.run_until kernel.engine (Time_ns.ms 100);
  check "REPLACE ran the registered callback" true (!replaced >= 1);
  check "the policy slot actually fell back" true (Slot.on_fallback (Blk.slot blk))

let test_e2e_retrain () =
  let kernel = Kernel.create ~seed:103 in
  let d = D.create ~kernel () in
  let retrained = ref 0 in
  Kernel.register_policy kernel ~name:"p"
    ~retrain:(fun () -> incr retrained)
    ~replace:ignore ~restore:ignore ();
  let handles =
    D.install_source_exn d
      {|
guardrail err-retrain {
  trigger: { TIMER(0, 10ms) },
  rule: { LOAD(err) <= 100 },
  action: { RETRAIN("p") }
}|}
  in
  let inj = Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~seed:103 () in
  Injector.arm inj (corrupt_err_at 25);
  (* Past the default 50ms retrain_delay so the async callback runs. *)
  Gr_sim.Engine.run_until kernel.engine (Time_ns.ms 200);
  check "the retrain callback actually ran" true (!retrained >= 1);
  let st = Rt.Stats.get (D.engine d) (List.hd handles) in
  check "the engine accounted the request" true (st.Rt.Stats.retrains_requested >= 1);
  check "callbacks never exceed requests" true (!retrained <= st.Rt.Stats.retrains_requested)

let test_e2e_deprioritize () =
  let kernel = Kernel.create ~seed:104 in
  let sched = Sched.create ~engine:kernel.engine ~hooks:kernel.hooks ~cpus:2 () in
  let d = D.create ~kernel () in
  D.wire_scheduler d sched;
  for _ = 1 to 4 do
    ignore (Sched.spawn sched ~name:"batch-job" ~cls:"batch" ~demand:(Time_ns.ms 300) () : Sched.task)
  done;
  ignore (Sched.spawn sched ~name:"ui" ~cls:"latency" ~demand:(Time_ns.ms 300) () : Sched.task);
  ignore
    (D.install_source_exn d
       {|
guardrail err-deprioritize {
  trigger: { TIMER(0, 10ms) },
  rule: { LOAD(err) <= 100 },
  action: { DEPRIORITIZE("batch", 64) }
}|}
      : Rt.handle list);
  let inj = Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~seed:104 () in
  Injector.arm inj (corrupt_err_at 25);
  Gr_sim.Engine.run_until kernel.engine (Time_ns.ms 60);
  let live cls =
    List.filter
      (fun (t : Sched.task) ->
        t.cls = cls && match t.state with Sched.Runnable | Sched.Running -> true | _ -> false)
      (Sched.tasks sched)
  in
  let batch = live "batch" and latency = live "latency" in
  check "batch tasks are still live" true (batch <> []);
  check "every live batch task was reweighted" true
    (List.for_all (fun (t : Sched.task) -> t.weight = 64) batch);
  check "other classes keep their weight" true
    (List.for_all (fun (t : Sched.task) -> t.weight = 1024) latency)

(* ------------------------------------------------------------------ *)
(* grc exit codes (regression: no backtraces, exit 2 on bad input)    *)
(* ------------------------------------------------------------------ *)

let grc_exe () =
  List.find_opt Sys.file_exists [ "../bin/grc.exe"; "_build/default/bin/grc.exe" ]

let test_grc_exit_codes () =
  match grc_exe () with
  | None -> Alcotest.fail "grc.exe not found next to the test runner"
  | Some grc ->
    let run args = Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" grc args) in
    check_int "run on a missing file exits 2" 2 (run "run /nonexistent-gr-fault-test.grd");
    let bad = Filename.temp_file "grc-test" ".grd" in
    let oc = open_out bad in
    output_string oc "guardrail broken {";
    close_out oc;
    Fun.protect
      ~finally:(fun () -> Sys.remove bad)
      (fun () -> check_int "run on an unparsable file exits 2" 2 (run ("run " ^ bad)));
    check_int "soak on a missing spec exits 2" 2
      (run "soak --scenario store --seed 1 --duration 0.05 --spec /nonexistent.grd");
    check_int "soak on a bad plan exits 2" 2
      (run "soak --scenario store --seed 1 --duration 0.05 --plan bogus");
    check_int "soak on an unknown scenario exits 2" 2 (run "soak --scenario nope --seed 1");
    check_int "a clean soak run exits 0" 0 (run "soak --scenario store --seed 1 --duration 0.05")

(* ------------------------------------------------------------------ *)
(* Sim engine regression: cancelled tombstones must not leak past     *)
(* run_until's limit                                                  *)
(* ------------------------------------------------------------------ *)

let test_run_until_tombstone () =
  let e = Gr_sim.Engine.create () in
  let fired = ref false in
  let h = Gr_sim.Engine.schedule_at e (Time_ns.ms 10) (fun _ -> ()) in
  Gr_sim.Engine.cancel h;
  ignore (Gr_sim.Engine.schedule_at e (Time_ns.ms 100) (fun _ -> fired := true));
  check "next_event_time skips the tombstone" true
    (Gr_sim.Engine.next_event_time e = Some (Time_ns.ms 100));
  Gr_sim.Engine.run_until e (Time_ns.ms 50);
  check "event past the limit did not fire" false !fired;
  check_int "clock advanced exactly to the limit" (Time_ns.ms 50) (Gr_sim.Engine.now e);
  Gr_sim.Engine.run_until e (Time_ns.ms 100);
  check "event fires once the limit reaches it" true !fired

let suite =
  [
    ( "fault",
      [
        Alcotest.test_case "plan: textual round-trip is exact" `Quick test_plan_roundtrip;
        Alcotest.test_case "plan: parse errors are one-line" `Quick test_plan_parse_errors;
        Alcotest.test_case "plan: generation is deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "injector: inapplicable faults are skipped" `Quick
          test_inapplicable_faults_skipped;
        Alcotest.test_case "soak: same (seed, plan) is bit-deterministic" `Quick
          test_run_bit_deterministic;
        Alcotest.test_case "soak: store scenario passes a small sweep" `Quick test_soak_smoke;
        Alcotest.test_case "soak: shrinker reaches a 1-minimal plan" `Quick test_shrink_minimal;
        Alcotest.test_case "soak: repro command names seed, scenario, plan" `Quick
          test_repro_command_shape;
        Alcotest.test_case "e2e: REPORT snapshots the corrupted key" `Quick test_e2e_report;
        Alcotest.test_case "e2e: REPLACE flips the policy slot to fallback" `Quick
          test_e2e_replace;
        Alcotest.test_case "e2e: RETRAIN runs the registered callback" `Quick test_e2e_retrain;
        Alcotest.test_case "e2e: DEPRIORITIZE reweights live tasks of the class" `Quick
          test_e2e_deprioritize;
        Alcotest.test_case "grc: bad input exits 2 with no backtrace" `Quick test_grc_exit_codes;
        Alcotest.test_case "sim: run_until ignores cancelled tombstones" `Quick
          test_run_until_tombstone;
      ] );
  ]
