(* Tests for gr_compiler: lowering, optimisation, verification,
   dependency analysis — plus a three-way semantics equivalence
   property (reference AST interpreter vs compiled VM, unoptimised vs
   optimised). *)

open Gr_dsl
module Ir = Gr_compiler.Ir
module Lower = Gr_compiler.Lower
module Opt = Gr_compiler.Opt
module Monitor = Gr_compiler.Monitor
module Verify = Gr_compiler.Verify
module Deps = Gr_compiler.Deps
module Compile = Gr_compiler.Compile
module Store = Gr_runtime.Feature_store
module Vm = Gr_runtime.Vm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let parse_expr_ok src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error (pos, msg) -> Alcotest.failf "parse error %d:%d: %s" pos.line pos.col msg

let compile_expr_ok ?(optimize = true) src =
  let table = Hashtbl.create 8 in
  let p = Lower.expr ~slots:table (parse_expr_ok src) in
  let p = if optimize then Opt.optimize p else p in
  let slots = Array.make (Hashtbl.length table) "" in
  Hashtbl.iter (fun k s -> slots.(s) <- k) table;
  (p, slots)

(* A store with a controllable clock, pre-populated with samples for
   the generator's key universe. *)
let make_store () =
  let clock = ref 0 in
  let store = Store.create ~clock:(fun () -> !clock) () in
  let rng = Gr_util.Rng.create 99 in
  List.iter
    (fun key ->
      for i = 1 to 30 do
        clock := i * 50_000_000 (* spread samples over 1.5s *);
        Store.save store key (Gr_util.Rng.float rng 100.)
      done)
    [ "lat"; "rate"; "depth"; "err"; "load_avg" ];
  clock := 1_500_000_000;
  store

(* Reference interpreter: the semantics the compiled pipeline must
   agree with. Booleans are 0/1, x/0 = 0. *)
let rec ref_eval store (e : Ast.expr Ast.located) =
  let of_bool b = if b then 1. else 0. in
  let truthy v = v <> 0. in
  match e.node with
  | Ast.Number f -> f
  | Ast.Bool b -> of_bool b
  | Ast.Load key -> Store.load store key
  | Ast.Unop (Ast.Neg, sub) -> -.ref_eval store sub
  | Ast.Unop (Ast.Abs, sub) -> Float.abs (ref_eval store sub)
  | Ast.Unop (Ast.Not, sub) -> of_bool (not (truthy (ref_eval store sub)))
  | Ast.Binop (op, l, r) -> (
    let a = ref_eval store l and b = ref_eval store r in
    match op with
    | Ast.Add -> a +. b
    | Ast.Sub -> a -. b
    | Ast.Mul -> a *. b
    | Ast.Div -> if b = 0. then 0. else a /. b
    | Ast.Lt -> of_bool (a < b)
    | Ast.Le -> of_bool (a <= b)
    | Ast.Gt -> of_bool (a > b)
    | Ast.Ge -> of_bool (a >= b)
    | Ast.Eq -> of_bool (a = b)
    | Ast.Ne -> of_bool (a <> b)
    | Ast.And -> of_bool (truthy a && truthy b)
    | Ast.Or -> of_bool (truthy a || truthy b))
  | Ast.Agg { fn; key; window; param } ->
    let window_ns = ref_eval store window in
    let param = match param with Some q -> ref_eval store q | None -> 0. in
    Store.aggregate store ~key ~fn ~window_ns ~param

(* ---------- Lowering ---------- *)

let test_lower_shape () =
  let p, slots = compile_expr_ok ~optimize:false "LOAD(a) + 1 < AVG(b, 1s)" in
  check_int "slots" 2 (Array.length slots);
  check_bool "single assignment in order" true
    (Array.to_list p.insts |> List.mapi (fun i inst -> Ir.dst inst = i) |> List.for_all Fun.id);
  check_int "result is last reg" (Array.length p.insts - 1) p.result

let test_lower_shares_slots () =
  let p, slots = compile_expr_ok ~optimize:false "LOAD(x) + LOAD(x) < LOAD(y)" in
  check_int "two distinct keys" 2 (Array.length slots);
  check_int "reads two slots" 2 (List.length (Ir.read_slots p))

let test_lower_rules_conjoined () =
  let monitors =
    Compile.source_exn
      {|guardrail g { trigger: { TIMER(0, 1s) } rule: { LOAD(a) < 1; LOAD(b) < 2 } action: { REPORT("m") } }|}
  in
  match monitors with
  | [ m ] ->
    let store = make_store () in
    Store.save store "a" 0.5;
    Store.save store "b" 5.;
    let r = Vm.run ~store ~slots:m.Monitor.slots m.Monitor.rule in
    check_float "conjunction false when one rule fails" 0. r.value;
    Store.save store "b" 1.;
    let r2 = Vm.run ~store ~slots:m.Monitor.slots m.Monitor.rule in
    check_float "conjunction true when all hold" 1. r2.value
  | _ -> Alcotest.fail "expected one monitor"

(* ---------- Optimisation ---------- *)

let test_cse_dedupes_aggregations () =
  let unopt, _ = compile_expr_ok ~optimize:false "AVG(lat, 1s) > 10 && AVG(lat, 1s) < 100" in
  let opt, _ = compile_expr_ok ~optimize:true "AVG(lat, 1s) > 10 && AVG(lat, 1s) < 100" in
  let count_aggs p =
    Array.to_list p.Ir.insts
    |> List.filter (function Ir.Agg _ -> true | _ -> false)
    |> List.length
  in
  check_int "two scans before CSE" 2 (count_aggs unopt);
  check_int "one scan after CSE" 1 (count_aggs opt)

let test_dce_removes_dead_code () =
  (* const_fold turns (x * 0 + 1 > 0) into true only if it can fold;
     build dead code via CSE instead: duplicate loads collapse and
     DCE drops the orphan. *)
  let unopt, _ = compile_expr_ok ~optimize:false "LOAD(a) + LOAD(a) > 0" in
  let opt, _ = compile_expr_ok ~optimize:true "LOAD(a) + LOAD(a) > 0" in
  check_bool "optimised is shorter" true
    (Array.length opt.Ir.insts < Array.length unopt.Ir.insts)

let test_optimized_passes_verifier () =
  let p, slots = compile_expr_ok "AVG(lat, 1s) > 10 && AVG(lat, 1s) < 100" in
  let m =
    {
      Monitor.name = "m";
      pos = { Ast.line = 0; col = 0 };
      slots;
      triggers = [ Monitor.Timer { start_ns = 0; interval_ns = 1000; stop_ns = None } ];
      rule = p;
      actions = [ Monitor.Report { message = "x"; keys = [] } ];
    }
  in
  match Verify.verify m with
  | Ok stats -> check_bool "cost positive" true (stats.est_cost_ns > 0.)
  | Error errs -> Alcotest.failf "verifier rejected: %s" (String.concat "; " errs)

let equivalence_property =
  QCheck2.Test.make ~name:"reference = VM(lowered) = VM(optimised)" ~count:500 Gen.expr_gen
    (fun e ->
      let store = make_store () in
      let table = Hashtbl.create 8 in
      let p = Lower.expr ~slots:table e in
      let slots = Array.make (Hashtbl.length table) "" in
      Hashtbl.iter (fun k s -> slots.(s) <- k) table;
      let expected = ref_eval store e in
      let got = (Vm.run ~store ~slots p).value in
      let got_opt = (Vm.run ~store ~slots (Opt.optimize p)).value in
      let eq a b =
        (Float.is_nan a && Float.is_nan b) || Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a)
      in
      eq expected got && eq expected got_opt)

let const_fold_property =
  (* const_fold runs the same IEEE operations at compile time that
     the VM would run at check time, so folded and unfolded programs
     must agree bit-for-bit on a shared store. *)
  QCheck2.Test.make ~name:"const_fold is semantics-preserving" ~count:300 Gen.expr_gen
    (fun e ->
      let store = make_store () in
      let run ~fold =
        let table = Hashtbl.create 8 in
        let p = Lower.expr ~fold ~slots:table e in
        let slots = Array.make (Hashtbl.length table) "" in
        Hashtbl.iter (fun k s -> slots.(s) <- k) table;
        (Vm.run ~store ~slots p).value
      in
      let folded = run ~fold:true and raw = run ~fold:false in
      (Float.is_nan folded && Float.is_nan raw) || folded = raw)

let optimize_idempotent_property =
  QCheck2.Test.make ~name:"optimize is idempotent" ~count:300 Gen.expr_gen (fun e ->
      let table = Hashtbl.create 8 in
      let p = Opt.optimize (Lower.expr ~slots:table e) in
      Opt.optimize p = p)

(* ---------- Verifier ---------- *)

let verified_monitor rule_src =
  List.hd
    (Compile.source_exn
       (Printf.sprintf
          {|guardrail g { trigger: { TIMER(0, 1s) } rule: { %s } action: { REPORT("m") } }|}
          rule_src))

let test_verifier_accepts_good () =
  match Verify.verify (verified_monitor "LOAD(a) < 5") with
  | Ok stats ->
    check_int "slots" 1 stats.n_slots;
    check_int "actions" 1 stats.n_actions
  | Error errs -> Alcotest.failf "rejected: %s" (String.concat "; " errs)

let test_verifier_rejects_bad_register_use () =
  let m = verified_monitor "LOAD(a) < 5" in
  let broken =
    {
      m with
      Monitor.rule =
        {
          Ir.insts =
            [| Ir.Load { dst = 0; slot = 0 }; Ir.Binop { dst = 1; op = Ast.Lt; lhs = 0; rhs = 5 } |];
          result = 1;
          n_regs = 2;
          srcmap = [||];
        };
    }
  in
  check_bool "use-before-def rejected" true (Result.is_error (Verify.verify broken))

let test_verifier_rejects_bad_slot () =
  let m = verified_monitor "LOAD(a) < 5" in
  let broken =
    {
      m with
      Monitor.rule =
        {
          Ir.insts = [| Ir.Load { dst = 0; slot = 99 } |];
          result = 0;
          n_regs = 1;
          srcmap = [||];
        };
    }
  in
  check_bool "slot out of table rejected" true (Result.is_error (Verify.verify broken))

let test_verifier_rejects_oversize () =
  let limits = { Verify.default_limits with max_insts = 4 } in
  let m = verified_monitor "LOAD(a) + LOAD(b) + LOAD(c) + LOAD(d) < 5" in
  check_bool "length limit enforced" true (Result.is_error (Verify.verify ~limits m));
  check_bool "default limits accept" true (Result.is_ok (Verify.verify m))

let test_verifier_rejects_huge_window () =
  (* Bypass the compile driver (which would reject already) and lower
     directly, so the verifier itself is exercised. *)
  let spec =
    Parser.parse_exn
      {|guardrail g { trigger: { TIMER(0, 1s) } rule: { AVG(lat, 3600s) < 5 } action: { REPORT("m") } }|}
  in
  let m = List.hd (Gr_compiler.Lower.spec spec) in
  check_bool "window limit enforced" true (Result.is_error (Verify.verify m))

let test_verifier_rejects_empty_triggers_or_actions () =
  let m = verified_monitor "LOAD(a) < 5" in
  check_bool "no triggers" true (Result.is_error (Verify.verify { m with Monitor.triggers = [] }));
  check_bool "no actions" true (Result.is_error (Verify.verify { m with Monitor.actions = [] }))

let test_verifier_checks_actions () =
  let m = verified_monitor "LOAD(a) < 5" in
  let with_action a = { m with Monitor.actions = [ a ] } in
  check_bool "empty policy name" true
    (Result.is_error (Verify.verify (with_action (Monitor.Replace ""))));
  check_bool "weight below 1" true
    (Result.is_error
       (Verify.verify (with_action (Monitor.Deprioritize { cls = "c"; weight = 0 }))));
  check_bool "empty report" true
    (Result.is_error (Verify.verify (with_action (Monitor.Report { message = ""; keys = [] }))))

let test_verifier_rejects_duplicate_save () =
  let spec =
    Parser.parse_exn
      {|guardrail g { trigger: { TIMER(0, 1s) } rule: { LOAD(a) < 5 } action: { SAVE(k, 1) SAVE(k, 2) } }|}
  in
  let m = List.hd (Gr_compiler.Lower.spec spec) in
  match Verify.verify m with
  | Error errs ->
    let mentions needle s =
      let n = String.length needle and h = String.length s in
      let rec scan i = i + n <= h && (String.sub s i n = needle || scan (i + 1)) in
      scan 0
    in
    check_bool "names the duplicate key" true (List.exists (mentions "duplicate SAVE key") errs)
  | Ok _ -> Alcotest.fail "duplicate SAVE keys must be rejected"

let test_verifier_checks_save_programs () =
  let m = verified_monitor "LOAD(a) < 5" in
  let bad_save =
    Monitor.Save
      {
        key = "k";
        value =
          { Ir.insts = [| Ir.Load { dst = 0; slot = 42 } |]; result = 0; n_regs = 1; srcmap = [||] };
      }
  in
  check_bool "SAVE program verified recursively" true
    (Result.is_error (Verify.verify { m with Monitor.actions = [ bad_save ] }))

(* ---------- Compile driver ---------- *)

let test_compile_source_errors () =
  (match Compile.source "guardrail {" with
  | Error (Compile.Parse_error _) -> ()
  | _ -> Alcotest.fail "expected parse error");
  (match Compile.source (Printf.sprintf
      {|guardrail g { trigger: { TIMER(0, 1s) } rule: { LOAD(a) + 1 } action: { REPORT("m") } }|})
  with
  | Error (Compile.Type_errors _) -> ()
  | _ -> Alcotest.fail "expected type errors");
  match Compile.source
      {|guardrail g { trigger: { TIMER(0, 1s) } rule: { AVG(x, 3600s) < 1 } action: { REPORT("m") } }|}
  with
  | Error (Compile.Verify_errors _) -> ()
  | _ -> Alcotest.fail "expected verifier rejection"

let test_compile_multiple_guardrails () =
  let src =
    {|
guardrail one { trigger: { TIMER(0, 1s) } rule: { LOAD(a) < 1 } action: { REPORT("a") } }
guardrail two { trigger: { FUNCTION("h") } rule: { LOAD(b) < 1 } action: { REPLACE("p") } }
|}
  in
  check_int "two monitors" 2 (List.length (Compile.source_exn src))

(* ---------- Deps ---------- *)

let compile_pair () =
  Compile.source_exn
    {|
guardrail writer {
  trigger: { TIMER(0, 1s) }
  rule: { LOAD(a) < 1 }
  action: { SAVE(shared, 1) }
}
guardrail reader {
  trigger: { TIMER(0, 1s) }
  rule: { LOAD(shared) < 1 }
  action: { REPORT("r") }
}
|}

let test_deps_edges () =
  let monitors = compile_pair () in
  let edges = Deps.interference monitors in
  check_int "one edge" 1 (List.length edges);
  let e = List.hd edges in
  Alcotest.(check string) "writer" "writer" e.Deps.writer;
  Alcotest.(check string) "reader" "reader" e.Deps.reader;
  Alcotest.(check string) "key" "shared" e.Deps.key;
  check_bool "no cycle" true (Deps.cycles monitors = [])

let test_deps_cycle_detected () =
  let monitors =
    Compile.source_exn
      {|
guardrail a {
  trigger: { TIMER(0, 1s) }
  rule: { LOAD(kb) < 1 }
  action: { SAVE(ka, 1) }
}
guardrail b {
  trigger: { TIMER(0, 1s) }
  rule: { LOAD(ka) < 1 }
  action: { SAVE(kb, 1) }
}
|}
  in
  match Deps.cycles monitors with
  | [ cycle ] -> Alcotest.(check (list string)) "a<->b cycle" [ "a"; "b" ] cycle
  | cycles -> Alcotest.failf "expected one cycle, got %d" (List.length cycles)

let test_deps_self_loop () =
  let monitors =
    Compile.source_exn
      {|
guardrail self {
  trigger: { TIMER(0, 1s) }
  rule: { LOAD(k) < 1 }
  action: { SAVE(k, 1) }
}
|}
  in
  match Deps.cycles monitors with
  | [ [ "self" ] ] -> ()
  | _ -> Alcotest.fail "self-loop not detected"

let test_auto_triggers () =
  let monitors = compile_pair () in
  let reader = List.nth monitors 1 in
  match Deps.auto_triggers reader with
  | [ Monitor.On_change "shared" ] -> ()
  | _ -> Alcotest.fail "expected ON_CHANGE(shared)"

let test_monitor_reads_writes () =
  let monitors = compile_pair () in
  let writer = List.hd monitors in
  Alcotest.(check (list string)) "reads" [ "a" ] (Monitor.reads writer);
  Alcotest.(check (list string)) "writes" [ "shared" ] (Monitor.writes writer)

let suite =
  [
    ( "compiler.lower",
      [
        Alcotest.test_case "single-assignment shape" `Quick test_lower_shape;
        Alcotest.test_case "slot sharing" `Quick test_lower_shares_slots;
        Alcotest.test_case "rules conjoined" `Quick test_lower_rules_conjoined;
      ] );
    ( "compiler.opt",
      [
        Alcotest.test_case "CSE dedupes window scans" `Quick test_cse_dedupes_aggregations;
        Alcotest.test_case "DCE shrinks programs" `Quick test_dce_removes_dead_code;
        Alcotest.test_case "optimised passes verifier" `Quick test_optimized_passes_verifier;
        QCheck_alcotest.to_alcotest equivalence_property;
        QCheck_alcotest.to_alcotest const_fold_property;
        QCheck_alcotest.to_alcotest optimize_idempotent_property;
      ] );
    ( "compiler.verify",
      [
        Alcotest.test_case "accepts good monitors" `Quick test_verifier_accepts_good;
        Alcotest.test_case "rejects use-before-def" `Quick test_verifier_rejects_bad_register_use;
        Alcotest.test_case "rejects bad slots" `Quick test_verifier_rejects_bad_slot;
        Alcotest.test_case "rejects oversize programs" `Quick test_verifier_rejects_oversize;
        Alcotest.test_case "rejects huge windows" `Quick test_verifier_rejects_huge_window;
        Alcotest.test_case "rejects empty trigger/action lists" `Quick
          test_verifier_rejects_empty_triggers_or_actions;
        Alcotest.test_case "checks action arguments" `Quick test_verifier_checks_actions;
        Alcotest.test_case "rejects duplicate SAVE keys" `Quick test_verifier_rejects_duplicate_save;
        Alcotest.test_case "checks SAVE programs" `Quick test_verifier_checks_save_programs;
      ] );
    ( "compiler.driver",
      [
        Alcotest.test_case "error classification" `Quick test_compile_source_errors;
        Alcotest.test_case "multiple guardrails" `Quick test_compile_multiple_guardrails;
      ] );
    ( "compiler.deps",
      [
        Alcotest.test_case "interference edges" `Quick test_deps_edges;
        Alcotest.test_case "cycle detection" `Quick test_deps_cycle_detected;
        Alcotest.test_case "self-loop" `Quick test_deps_self_loop;
        Alcotest.test_case "auto triggers" `Quick test_auto_triggers;
        Alcotest.test_case "reads/writes" `Quick test_monitor_reads_writes;
      ] );
  ]
