(* Tests for the network-path substrate and the learned congestion
   controller running on it. *)

open Gr_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_net ?(capacity_mbps = 100.) () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let net = Gr_kernel.Net.create ~engine ~hooks ~capacity_mbps () in
  (engine, hooks, net)

let test_aimd_converges_to_capacity () =
  let engine, _, net = make_net () in
  Gr_kernel.Net.start net ~initial_rate_mbps:1.;
  Gr_sim.Engine.run_until engine (Time_ns.sec 30);
  check_bool "high mean utilization" true (Gr_kernel.Net.mean_utilization net > 0.8);
  check_bool "rate near capacity" true
    (Gr_kernel.Net.rate_mbps net > 50. && Gr_kernel.Net.rate_mbps net < 220.)

let test_queue_builds_rtt () =
  let engine, _, net = make_net ~capacity_mbps:10. () in
  (* A controller that never backs off floods the queue. *)
  Gr_kernel.Policy_slot.install (Gr_kernel.Net.slot net) ~name:"flood"
    { Gr_kernel.Net.controller_name = "flood"; adjust = (fun ~rtt_ms:_ ~loss:_ -> 2.0) };
  Gr_kernel.Net.start net ~initial_rate_mbps:100.;
  Gr_sim.Engine.run_until engine (Time_ns.sec 2);
  (* base 20ms + full 50ms buffer. *)
  check_bool "rtt inflated by queueing" true (Gr_kernel.Net.rtt_ms net > 60.);
  check_bool "loss under overload" true (Gr_kernel.Net.loss net > 0.1);
  check_bool "utilization capped at 1" true (Gr_kernel.Net.utilization net <= 1.)

let test_idle_link_no_loss () =
  let engine, _, net = make_net () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Net.slot net) ~name:"fixed"
    { Gr_kernel.Net.controller_name = "fixed"; adjust = (fun ~rtt_ms:_ ~loss:_ -> 1.0) };
  Gr_kernel.Net.start net ~initial_rate_mbps:10.;
  Gr_sim.Engine.run_until engine (Time_ns.sec 2);
  check_bool "no loss below capacity" true (Gr_kernel.Net.loss net = 0.);
  check_bool "rtt stays at base" true (Float.abs (Gr_kernel.Net.rtt_ms net -. 20.) < 0.5);
  check_bool "utilization ~10%" true (Float.abs (Gr_kernel.Net.utilization net -. 0.1) < 0.02)

let test_hook_published () =
  let engine, hooks, net = make_net () in
  let ticks = ref 0 in
  ignore
    (Gr_kernel.Hooks.subscribe hooks "net:tick" (fun args ->
         incr ticks;
         check_bool "args present" true
           (List.mem_assoc "rtt_ms" args && List.mem_assoc "util" args))
      : Gr_kernel.Hooks.subscription);
  Gr_kernel.Net.start net ~initial_rate_mbps:10.;
  Gr_sim.Engine.run_until engine (Time_ns.ms 105);
  check_int "one hook firing per tick" (Gr_kernel.Net.ticks net) !ticks;
  check_int "ten ticks in 105ms" 10 !ticks

let test_learned_controller_drives_link () =
  let engine, _, net = make_net () in
  let rng = Rng.create 9 in
  let cc = Gr_policy.Cc_controller.train ~rng () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Net.slot net) ~name:"learned-cc"
    (Gr_policy.Cc_controller.controller cc);
  Gr_kernel.Net.start net ~initial_rate_mbps:10.;
  Gr_sim.Engine.run_until engine (Time_ns.sec 20);
  check_bool "trained controller sustains utilization" true
    (Gr_kernel.Net.mean_utilization net > 0.8)

let test_unstable_controller_degrades_and_fallback_recovers () =
  let engine, _, net = make_net () in
  let rng = Rng.create 10 in
  let cc = Gr_policy.Cc_controller.train ~rng () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Net.slot net) ~name:"learned-cc"
    (Gr_policy.Cc_controller.controller cc);
  Gr_kernel.Net.start net ~initial_rate_mbps:10.;
  Gr_sim.Engine.run_until engine (Time_ns.sec 10);
  let warm_ticks = Gr_kernel.Net.ticks net in
  let warm_util = Gr_kernel.Net.mean_utilization net in
  Gr_policy.Cc_controller.inject_sensitivity cc ~scale:150.;
  Gr_sim.Engine.run_until engine (Time_ns.sec 20);
  let mid_util =
    (Gr_kernel.Net.mean_utilization net *. float_of_int (Gr_kernel.Net.ticks net))
    -. (warm_util *. float_of_int warm_ticks)
  in
  let mid_util = mid_util /. float_of_int (Gr_kernel.Net.ticks net - warm_ticks) in
  check_bool "unstable controller loses utilization" true (mid_util < warm_util -. 0.05);
  (* Disabling the model falls back to AIMD inside the adapter. *)
  Gr_policy.Cc_controller.set_enabled cc false;
  let before = Gr_kernel.Net.ticks net in
  let before_util = Gr_kernel.Net.mean_utilization net *. float_of_int before in
  Gr_sim.Engine.run_until engine (Time_ns.sec 35);
  let rec_util =
    ((Gr_kernel.Net.mean_utilization net *. float_of_int (Gr_kernel.Net.ticks net)) -. before_util)
    /. float_of_int (Gr_kernel.Net.ticks net - before)
  in
  check_bool "fallback recovers utilization" true (rec_util > mid_util)

let suite =
  [
    ( "kernel.net",
      [
        Alcotest.test_case "AIMD converges" `Quick test_aimd_converges_to_capacity;
        Alcotest.test_case "queue builds RTT and loss" `Quick test_queue_builds_rtt;
        Alcotest.test_case "idle link clean" `Quick test_idle_link_no_loss;
        Alcotest.test_case "hook published" `Quick test_hook_published;
        Alcotest.test_case "learned controller drives link" `Slow
          test_learned_controller_drives_link;
        Alcotest.test_case "instability degrades; fallback recovers" `Slow
          test_unstable_controller_degrades_and_fallback_recovers;
      ] );
  ]
