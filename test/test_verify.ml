(* Tests for grc verify: the inter-rule dataflow fixpoint, the
   action-machine model checker and the fleet race analysis — golden
   diagnostics over the new specs/bad corpus, QCheck properties for
   fixpoint termination and slot-model fidelity, and the
   counterexample-validity contract: every schedule the checker emits
   must, replayed through the real engine via grc soak's plan
   machinery, drive the policy slot to exactly the flagged state. *)

open Gr_dsl
module Lower = Gr_compiler.Lower
module Opt = Gr_compiler.Opt
module Monitor = Gr_compiler.Monitor
module Interval = Gr_analysis.Interval
module Diagnostic = Gr_analysis.Diagnostic
module Analyze = Gr_analysis.Analyze
module Dataflow = Gr_analysis.Dataflow
module Machine = Gr_analysis.Machine
module Audit = Gr_analysis.Audit
module Replay = Gr_fault.Replay
module Soak = Gr_fault.Soak
module Model = Gr_kernel.Policy_slot.Model

let check_bool = Alcotest.(check bool)
let check_strings = Alcotest.(check (list string))

let specs_dir sub =
  let dir = Filename.concat "../../../specs" sub in
  if Sys.file_exists dir then dir else Filename.concat "specs" sub

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compile_src ?(what = "inline spec") src =
  let spec = Parser.parse_exn src in
  (match Typecheck.check_spec spec with
  | Ok () -> ()
  | Error errs ->
    Alcotest.failf "%s: %s" what
      (String.concat "; " (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)));
  List.map Opt.optimize_monitor (Lower.spec spec)

let bad_path name = Filename.concat (specs_dir "bad") name
let compile_file path = compile_src ~what:path (read_file path)

(* Single-file deployments audit as node 0 throughout. *)
let audit_file ?config name =
  Audit.run ?config (List.map (fun m -> (0, m)) (compile_file (bad_path name)))

(* Fleet deployments: one file per node, qualified like the CLI does. *)
let audit_fleet names =
  let tagged =
    List.concat
      (List.mapi
         (fun node_id name ->
           List.map
             (fun m -> (node_id, Monitor.qualify ~node_id m))
             (compile_file (bad_path name)))
         names)
  in
  Audit.run ~config:{ Audit.default_config with fleet = true } tagged

let diag_strings (a : Audit.t) = List.map Diagnostic.to_string a.diagnostics

(* ---------- Interval widening/narrowing primitives ---------- *)

let test_subset_widen () =
  check_bool "{1} subset [0,5]" true (Interval.subset (Interval.const 1.) (Interval.finite 0. 5.));
  check_bool "[0,5] not subset {1}" false
    (Interval.subset (Interval.finite 0. 5.) (Interval.const 1.));
  check_bool "widen jumps a growing upper bound to +oo" true
    (Interval.equal
       (Interval.widen (Interval.finite 0. 1.) (Interval.finite 0. 2.))
       (Interval.finite 0. infinity));
  check_bool "widen jumps a growing lower bound to -oo" true
    (Interval.equal
       (Interval.widen (Interval.finite 0. 1.) (Interval.finite (-1.) 1.))
       (Interval.finite neg_infinity 1.));
  check_bool "widen is stable on contained successors" true
    (Interval.equal
       (Interval.widen (Interval.finite 0. 5.) (Interval.finite 1. 2.))
       (Interval.finite 0. 5.))

(* ---------- The dataflow fixpoint ---------- *)

let test_dataflow_chain_fixpoint () =
  let monitors = compile_file (bad_path "dataflow_chain.grd") in
  let df = Dataflow.fixpoint monitors in
  check_bool "post-fixpoint" true (Dataflow.is_post_fixpoint monitors df);
  (* Halving on every hop from an initial {0}: both pressure keys can
     only ever hold 0, which is what makes the watcher a tautology. *)
  check_bool "pressure_a pinned to {0}" true
    (Interval.equal (Dataflow.lookup df "pressure_a") (Interval.const 0.));
  check_bool "pressure_b pinned to {0}" true
    (Interval.equal (Dataflow.lookup df "pressure_b") (Interval.const 0.));
  check_bool "unwritten keys stay unknown" true
    (Interval.equal (Dataflow.lookup df "load_avg") Interval.unknown)

let test_dataflow_chain_golden () =
  check_strings "dataflow_chain.grd"
    [
      "warning[GRL001] monitor pressure-watch (21:28): rule is always true (value in {1}): \
       the guardrail can never fire";
    ]
    (diag_strings (audit_file "dataflow_chain.grd"))

(* Random SAVE graphs: cyclic, growing, shrinking — the fixpoint must
   terminate within the round budget and land on a post-fixpoint. *)
let gen_save_graph =
  let open QCheck2.Gen in
  let key = map (Printf.sprintf "k%d") (int_bound 3) in
  let expr =
    oneof
      [
        map string_of_int (int_range 0 100);
        map2 (fun k c -> Printf.sprintf "LOAD(%s) / %d" k c) key (int_range 1 4);
        map2 (fun k c -> Printf.sprintf "LOAD(%s) + %d" k c) key (int_range 0 8);
        map2 (fun k c -> Printf.sprintf "LOAD(%s) * %d" k c) key (int_range 0 3);
        map (fun k -> Printf.sprintf "LOAD(%s) - 1" k) key;
      ]
  in
  let monitor i =
    map2
      (fun k e ->
        Printf.sprintf
          "guardrail g%d { trigger: { TIMER(0, 1s) } rule: { AVG(ext, 1s) < 100 } action: { \
           SAVE(%s, %s) } }"
          i k e)
      key expr
  in
  int_range 1 6 >>= fun n ->
  flatten_l (List.init n monitor) >|= String.concat "\n"

let prop_fixpoint_terminates =
  QCheck2.Test.make ~name:"dataflow fixpoint terminates on a post-fixpoint" ~count:60
    ~print:Fun.id gen_save_graph (fun src ->
      let monitors = compile_src src in
      let df = Dataflow.fixpoint monitors in
      df.Dataflow.rounds <= 64 && Dataflow.is_post_fixpoint monitors df)

(* ---------- The action-machine model checker ---------- *)

let test_unreachable_restore_golden () =
  check_strings "unreachable_restore.grd"
    [
      "warning[GRL001] monitor degraded-mode (16:22): rule is always true (value in {1}): \
       the guardrail can never fire";
      "warning[GRL201] monitor recovery (20:1): RESTORE \"io_model\" can never act: policy \
       \"io_model\" is live in every reachable state where monitor recovery fires — no \
       REPLACE can precede it (2 state(s) explored)";
    ]
    (diag_strings (audit_file "unreachable_restore.grd"))

let test_never_promote_canary () =
  check_strings "never_promote.grd plain" [] (diag_strings (audit_file "never_promote.grd"));
  let canaried =
    {
      Audit.default_config with
      machine = { Machine.default_config with canaries = [ ("lat_model", [ 0 ]) ] };
    }
  in
  check_strings "never_promote.grd --canary lat_model=0"
    [
      "warning[GRL202] monitor tail-guard: canaried policy \"lat_model\" (nodes 0) reaches \
       the canary state but no reachable action sequence extends the fallback fleet-wide: \
       the canary can never promote (2 state(s) explored)";
    ]
    (diag_strings (audit_file ~config:canaried "never_promote.grd"))

let test_replace_storm_golden () =
  let audit = audit_file "replace_storm.grd" in
  check_strings "replace_storm.grd"
    [
      "warning[GRL203] monitor breaker (10:1): policy \"svc_policy\" can flap forever: \
       REPLACE by breaker and RESTORE by prober are jointly reachable and re-enable each \
       other";
    ]
    (diag_strings audit);
  match audit.machine.Machine.findings with
  | [ f ] -> check_bool "GRL203 carries a schedule" true (f.Machine.schedule <> None)
  | fs -> Alcotest.failf "expected one machine finding, got %d" (List.length fs)

(* GRL104's pattern heuristic is superseded by the GRL203 proof when
   exploration completes: verify on the old flap corpus must report
   the proof, not the pattern. *)
let test_grl104_superseded () =
  let codes =
    List.map (fun (d : Diagnostic.t) -> d.code) (audit_file "replace_flap.grd").diagnostics
  in
  check_strings "replace_flap.grd under verify" [ "GRL203" ] codes

(* ---------- Counterexample validity ---------- *)

(* The heart of the feature: a GRL203 schedule is a claim about the
   real engine. Replaying it through Soak's plan machinery must leave
   every policy slot in the state the checker predicted, with at
   least the predicted number of transitions. *)
let assert_schedule_replays ~what ~spec_source (s : Machine.schedule) =
  let r = Replay.run ~spec_source s in
  check_bool (what ^ ": replay raises no invariant problems") true r.Soak.ok;
  List.iter
    (fun (policy, expect_fb) ->
      match List.find_opt (fun (n, _, _) -> n = policy) r.Soak.slots with
      | None -> Alcotest.failf "%s: policy %s missing from replay slots" what policy
      | Some (_, on_fb, flips) ->
        check_bool
          (Printf.sprintf "%s: %s ends %s" what policy
             (if expect_fb then "fallback" else "learned"))
          expect_fb on_fb;
        let min_flips = try List.assoc policy s.Machine.min_flips with Not_found -> 0 in
        check_bool
          (Printf.sprintf "%s: %s flips >= %d (got %d)" what policy min_flips flips)
          true (flips >= min_flips))
    s.Machine.expected

let schedule_of name =
  let audit = audit_file name in
  match
    List.find_map (fun (f : Machine.finding) -> f.Machine.schedule) audit.machine.findings
  with
  | Some s -> s
  | None -> Alcotest.failf "%s: no machine finding carries a schedule" name

let test_storm_schedule_replays () =
  List.iter
    (fun name ->
      assert_schedule_replays ~what:name
        ~spec_source:(read_file (bad_path name))
        (schedule_of name))
    [ "replace_storm.grd"; "replace_flap.grd" ]

(* Randomized storm templates: whatever thresholds and grids the spec
   uses, an emitted schedule must replay to the flagged state. *)
let gen_storm =
  let open QCheck2.Gen in
  map3
    (fun threshold probe_min interval_ms ->
      Printf.sprintf
        {|guardrail breaker {
  trigger: { TIMER(0, %dms) }
  rule: { QUANTILE(svc_p95_us, 0.95, %dms) < %d }
  action: { REPLACE("svc_policy") }
}
guardrail prober {
  trigger: { TIMER(%dms, %dms) }
  rule: { LOAD(probe_err) >= %d }
  action: { RESTORE("svc_policy") }
}|}
        interval_ms interval_ms threshold (interval_ms / 2) interval_ms probe_min)
    (int_range 100 5000) (int_range 1 5)
    (oneofl [ 50; 100; 200 ])

let prop_storm_schedules_replay =
  QCheck2.Test.make ~name:"randomized storm schedules replay to the flagged state" ~count:6
    ~print:Fun.id gen_storm (fun src ->
      let monitors = compile_src src in
      let result = Machine.check monitors in
      match
        List.find_map (fun (f : Machine.finding) -> f.Machine.schedule) result.findings
      with
      | None -> false (* this template must both find the storm and render it *)
      | Some s ->
        let r = Replay.run ~spec_source:src s in
        r.Soak.ok
        && List.for_all
             (fun (policy, expect_fb) ->
               match List.find_opt (fun (n, _, _) -> n = policy) r.Soak.slots with
               | None -> false
               | Some (_, on_fb, flips) ->
                 on_fb = expect_fb
                 && flips >= (try List.assoc policy s.Machine.min_flips with Not_found -> 0))
             s.Machine.expected)

(* The checker's per-policy core is the runtime slot's own transition
   table: folding Model.step over any action sequence must agree with
   a real slot driven by the same actions. *)
let prop_model_matches_slot =
  QCheck2.Test.make ~name:"Policy_slot.Model agrees with the real slot" ~count:200
    QCheck2.Gen.(list_size (int_bound 24) bool)
    (fun actions ->
      let slot = Gr_kernel.Policy_slot.create ~name:"p" ~fallback:("fallback", ()) in
      Gr_kernel.Policy_slot.install slot ~name:"learned" ();
      let expected = ref Model.Learned in
      List.for_all
        (fun replace ->
          let input = if replace then Model.Replace else Model.Restore in
          (if replace then Gr_kernel.Policy_slot.use_fallback slot
           else Gr_kernel.Policy_slot.restore slot);
          expected := Model.step !expected input;
          Model.abstract slot = !expected)
        actions
      && List.length Model.table = 4)

(* ---------- Fleet race analysis ---------- *)

let test_race_budget_golden () =
  let audit = audit_fleet [ "race_budget_node0.grd"; "race_budget_node1.grd" ] in
  check_strings "race_budget pair"
    [
      "warning[GRL102] monitor node0::budget-setter: key \"global::io_budget\" is written by \
       multiple monitors (node0::budget-setter, node1::budget-trimmer): last writer wins";
      "warning[GRL301] monitor node0::budget-setter (9:1): GLOBAL key \"global::io_budget\" \
       is written from 2 nodes with checks that can coincide (e.g. t=0ns: \
       node0::budget-setter on node 0 vs node1::budget-trimmer on node 1, values {100} vs \
       {10}): the merged value depends on the (ts, node, order) intent-replay tie-break; \
       order-sensitive reader(s): node0::budget-reader via LOAD";
    ]
    (diag_strings audit)

let test_race_commutative_silent () =
  let audit = audit_fleet [ "race_heartbeat_node0.grd"; "race_heartbeat_node1.grd" ] in
  check_strings "race_heartbeat pair (commutative: GRL102 only)"
    [
      "warning[GRL102] monitor node0::heartbeat: key \"global::epoch_flag\" is written by \
       multiple monitors (node0::heartbeat, node1::heartbeat): last writer wins";
    ]
    (diag_strings audit);
  check_strings "no race findings" []
    (List.map Diagnostic.to_string audit.race)

(* ---------- Deterministic output ---------- *)

(* Two independent trigger cycles, defined in reverse alphabetical
   order: GRL103 must report them sorted, for byte-stable --json. *)
let test_grl103_sorted () =
  let cycle a b ka kb =
    Printf.sprintf
      {|guardrail %s { trigger: { ON_CHANGE(%s) } rule: { LOAD(load_avg) < 8 } action: { SAVE(%s, 1) } }
guardrail %s { trigger: { ON_CHANGE(%s) } rule: { LOAD(load_avg) > 2 } action: { SAVE(%s, 1) } }|}
      a kb ka b ka kb
  in
  let src = cycle "z1" "z2" "zka" "zkb" ^ "\n" ^ cycle "a1" "a2" "aka" "akb" in
  check_strings "two cycles, sorted"
    [
      "error[GRL103] monitor a1: SAVE/ON_CHANGE trigger cycle among monitors a1, a2: each \
       SAVE re-triggers the next";
      "error[GRL103] monitor z1: SAVE/ON_CHANGE trigger cycle among monitors z1, z2: each \
       SAVE re-triggers the next";
    ]
    (List.map Diagnostic.to_string (Analyze.deployment (compile_src src)))

(* Fleet qualification must rename the monitor itself, not just its
   keys — the CLI's file attribution is keyed by monitor name. *)
let test_qualify_names_monitor () =
  let src =
    {|guardrail g { trigger: { TIMER(0, 1s) } rule: { LOAD(pending) <= 10 } action: { SAVE(out, 1) } }|}
  in
  match compile_src src with
  | [ m ] ->
    let q = Monitor.qualify ~node_id:3 m in
    Alcotest.(check string) "monitor name qualified" "node3::g" q.Monitor.name
  | ms -> Alcotest.failf "expected one monitor, got %d" (List.length ms)

(* ---------- Shipped specs verify clean ---------- *)

let test_shipped_specs_verify_clean () =
  let paths =
    Sys.readdir (specs_dir "")
    |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".grd")
    |> List.sort compare
    |> List.map (Filename.concat (specs_dir ""))
  in
  check_bool "found shipped specs" true (List.length paths >= 5);
  List.iter
    (fun path ->
      check_strings path []
        (diag_strings (Audit.run (List.map (fun m -> (0, m)) (compile_file path)))))
    paths

let suite =
  [
    ( "verify.dataflow",
      [
        Alcotest.test_case "subset and widen" `Quick test_subset_widen;
        Alcotest.test_case "dataflow_chain fixpoint" `Quick test_dataflow_chain_fixpoint;
        Alcotest.test_case "GRL001 through the SAVE chain" `Quick test_dataflow_chain_golden;
        QCheck_alcotest.to_alcotest prop_fixpoint_terminates;
      ] );
    ( "verify.machine",
      [
        Alcotest.test_case "GRL201 unreachable RESTORE" `Quick test_unreachable_restore_golden;
        Alcotest.test_case "GRL202 never-promoting canary" `Quick test_never_promote_canary;
        Alcotest.test_case "GRL203 storm with schedule" `Quick test_replace_storm_golden;
        Alcotest.test_case "GRL104 superseded by proof" `Quick test_grl104_superseded;
        QCheck_alcotest.to_alcotest prop_model_matches_slot;
      ] );
    ( "verify.replay",
      [
        Alcotest.test_case "corpus schedules replay" `Quick test_storm_schedule_replays;
        QCheck_alcotest.to_alcotest prop_storm_schedules_replay;
      ] );
    ( "verify.race",
      [
        Alcotest.test_case "GRL301 non-commutative writers" `Quick test_race_budget_golden;
        Alcotest.test_case "commutative writers stay silent" `Quick
          test_race_commutative_silent;
      ] );
    ( "verify.deployment",
      [
        Alcotest.test_case "GRL103 output is sorted" `Quick test_grl103_sorted;
        Alcotest.test_case "qualify renames the monitor" `Quick test_qualify_names_monitor;
        Alcotest.test_case "shipped specs verify clean" `Quick test_shipped_specs_verify_clean;
      ] );
  ]
