(* Tests for gr_sim: the discrete-event engine. *)

open Gr_util
module Engine = Gr_sim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fires_in_time_order () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule_at e (Time_ns.ms 30) (fun _ -> order := 30 :: !order) : Engine.handle);
  ignore (Engine.schedule_at e (Time_ns.ms 10) (fun _ -> order := 10 :: !order) : Engine.handle);
  ignore (Engine.schedule_at e (Time_ns.ms 20) (fun _ -> order := 20 :: !order) : Engine.handle);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !order)

let test_fifo_tie_break () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule_at e (Time_ns.ms 5) (fun _ -> order := i :: !order) : Engine.handle)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO at equal time" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time_ns.zero in
  ignore (Engine.schedule_at e (Time_ns.ms 7) (fun e -> seen := Engine.now e) : Engine.handle);
  Engine.run e;
  check_int "clock at event time" (Time_ns.ms 7) !seen;
  check_int "clock stays" (Time_ns.ms 7) (Engine.now e)

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule_at e (Time_ns.ms 5) (fun _ -> ()) : Engine.handle);
  Engine.run e;
  Alcotest.check_raises "past scheduling"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Engine.schedule_at e (Time_ns.ms 1) (fun _ -> ()) : Engine.handle))

let test_schedule_after () =
  let e = Engine.create () in
  let at = ref Time_ns.zero in
  ignore
    (Engine.schedule_at e (Time_ns.ms 10) (fun e ->
         ignore (Engine.schedule_after e (Time_ns.ms 5) (fun e -> at := Engine.now e) : Engine.handle))
      : Engine.handle);
  Engine.run e;
  check_int "relative delay" (Time_ns.ms 15) !at

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule_at e (Time_ns.ms 10) (fun _ -> fired := true) in
  Engine.cancel h;
  Engine.cancel h (* idempotent *);
  Engine.run e;
  check_bool "cancelled event never fires" false !fired

let test_run_until_stops_and_advances () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.every e ~interval:(Time_ns.ms 10) (fun _ -> incr count) : Engine.handle);
  Engine.run_until e (Time_ns.ms 35);
  check_int "three periodic firings" 3 !count;
  check_int "clock advanced to limit" (Time_ns.ms 35) (Engine.now e);
  Engine.run_until e (Time_ns.ms 40);
  check_int "resumes correctly" 4 !count

let test_every_start_stop () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.every e ~start:(Time_ns.ms 5) ~stop:(Time_ns.ms 26) ~interval:(Time_ns.ms 10)
       (fun e -> times := Engine.now e :: !times)
      : Engine.handle);
  Engine.run e;
  Alcotest.(check (list int)) "start/stop respected"
    [ Time_ns.ms 5; Time_ns.ms 15; Time_ns.ms 25 ]
    (List.rev !times)

let test_every_cancel_mid_stream () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.every e ~interval:(Time_ns.ms 10) (fun _ -> incr count) in
  ignore (Engine.schedule_at e (Time_ns.ms 25) (fun _ -> Engine.cancel h) : Engine.handle);
  Engine.run_until e (Time_ns.ms 100);
  check_int "stopped after cancel" 2 !count

let test_every_invalid_interval () =
  let e = Engine.create () in
  Alcotest.check_raises "non-positive interval"
    (Invalid_argument "Engine.every: interval must be positive") (fun () ->
      ignore (Engine.every e ~interval:0 (fun _ -> ()) : Engine.handle))

let test_events_fired_counter () =
  let e = Engine.create () in
  for i = 1 to 4 do
    ignore (Engine.schedule_at e (Time_ns.ms i) (fun _ -> ()) : Engine.handle)
  done;
  Engine.run e;
  check_int "fired count" 4 (Engine.events_fired e)

let test_nested_scheduling_cascade () =
  let e = Engine.create () in
  let depth = ref 0 in
  let rec go n engine =
    depth := n;
    if n < 10 then
      ignore (Engine.schedule_after engine (Time_ns.us 1) (go (n + 1)) : Engine.handle)
  in
  ignore (Engine.schedule_at e 0 (go 1) : Engine.handle);
  Engine.run e;
  check_int "cascade completes" 10 !depth;
  check_int "time accumulated" (Time_ns.us 9) (Engine.now e)

let suite =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "fires in time order" `Quick test_fires_in_time_order;
        Alcotest.test_case "FIFO tie-break" `Quick test_fifo_tie_break;
        Alcotest.test_case "clock advances" `Quick test_clock_advances;
        Alcotest.test_case "past scheduling rejected" `Quick test_schedule_in_past_rejected;
        Alcotest.test_case "schedule_after" `Quick test_schedule_after;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "run_until" `Quick test_run_until_stops_and_advances;
        Alcotest.test_case "every with start/stop" `Quick test_every_start_stop;
        Alcotest.test_case "cancel periodic mid-stream" `Quick test_every_cancel_mid_stream;
        Alcotest.test_case "invalid interval" `Quick test_every_invalid_interval;
        Alcotest.test_case "events_fired counter" `Quick test_events_fired_counter;
        Alcotest.test_case "nested scheduling cascade" `Quick test_nested_scheduling_cascade;
      ] );
  ]
