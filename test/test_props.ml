(* Tests for gr_props: every property generator must produce source
   that compiles and verifies, and must detect the misbehaviour it
   exists for (and stay quiet when things are healthy). *)

open Gr_util
module Props = Gr_props.Props
module Engine = Gr_runtime.Engine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compiles src =
  match Guardrails.Compile.source src with
  | Ok monitors -> monitors
  | Error e ->
    Alcotest.failf "property source rejected: %s" (Format.asprintf "%a" Guardrails.Compile.pp_error e)

let test_all_sources_compile () =
  let window = Time_ns.sec 1 and check_every = Time_ns.ms 100 in
  let actions = [ {|REPORT("violated")|} ] in
  let sources =
    [
      Props.P1_in_distribution.source ~name:"p1" ~feature_key:"f" ~lo:0. ~hi:10. ~window
        ~check_every ~actions ();
      Props.P2_robustness.source ~name:"p2" ~sensitivity_key:"s" ~bound:5. ~window ~check_every
        ~actions ();
      Props.P3_output_bounds.source ~name:"p3" ~hook:"mm:quota" ~key:"q" ~lo:0. ~hi:100.
        ~actions ();
      Props.P4_decision_quality.source ~name:"p4" ~policy_key:"hit" ~baseline_key:"shadow"
        ~margin:0.05 ~window ~check_every ~actions ();
      Props.P5_overhead.source ~name:"p5" ~cost_key:"cost" ~budget_ns:1000. ~window ~check_every
        ~actions ();
      Props.P6_fairness.source ~name:"p6" ~max_wait_ms:100. ~min_jain:0.5 ~check_every ~actions ();
    ]
  in
  List.iter (fun src -> check_int "one monitor" 1 (List.length (compiles src))) sources

let test_p1_envelope () =
  let values = Array.init 101 (fun i -> float_of_int i) in
  let lo, hi = Props.P1_in_distribution.envelope values () in
  check_bool "median inside" true (lo < 50. && 50. < hi);
  check_bool "tail outside" true (hi < 100.)

let make_deployment () =
  let kernel = Gr_kernel.Kernel.create ~seed:2 in
  (kernel, Guardrails.Deployment.create ~kernel ())

let run_prop_against ~src ~feed kernel d =
  let handles = Guardrails.Deployment.install_source_exn d src in
  feed ();
  Gr_kernel.Kernel.run_until kernel (Time_ns.add (Gr_kernel.Kernel.now kernel) (Time_ns.sec 2));
  Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles)

let test_p1_detects_drift_and_accepts_normal () =
  let in_dist =
    let kernel, d = make_deployment () in
    ignore
      (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 10) (fun _ ->
           Guardrails.Deployment.save d "f" 5.)
        : Gr_sim.Engine.handle);
    run_prop_against
      ~src:
        (Props.P1_in_distribution.source ~name:"p1" ~feature_key:"f" ~lo:0. ~hi:10.
           ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
           ~actions:[ {|REPORT("drift")|} ] ())
      ~feed:(fun () -> ())
      kernel d
  in
  check_int "no violation in distribution" 0 in_dist.violations;
  let drifted =
    let kernel, d = make_deployment () in
    ignore
      (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 10) (fun _ ->
           Guardrails.Deployment.save d "f" 50.)
        : Gr_sim.Engine.handle);
    run_prop_against
      ~src:
        (Props.P1_in_distribution.source ~name:"p1" ~feature_key:"f" ~lo:0. ~hi:10.
           ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
           ~actions:[ {|REPORT("drift")|} ] ())
      ~feed:(fun () -> ())
      kernel d
  in
  check_bool "drift detected" true (drifted.violations > 0)

let test_p1_ks_drift () =
  let kernel, d = make_deployment () in
  let rng = Rng.create 77 in
  let training = Array.init 1000 (fun _ -> Rng.gaussian rng ~mu:100. ~sigma:10.) in
  Props.P1_in_distribution.instrument_ks d ~feature_key:"f" ~training
    ~window:(Time_ns.ms 500) ~every:(Time_ns.ms 100) ~out:"f_ks";
  let src =
    Props.P1_in_distribution.source_ks ~name:"p1-ks" ~ks_key:"f_ks" ~bound:0.3
      ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("distribution shifted", f_ks)|} ]
      ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  let h = List.hd handles in
  let mean = ref 100. in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 5) (fun _ ->
         Guardrails.Deployment.save d "f" (Rng.gaussian rng ~mu:!mean ~sigma:10.))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 1);
  check_int "same distribution, no violations" 0
    (Engine.Stats.get (Guardrails.Deployment.engine d) h).violations;
  (* A modest mean shift (~1.5 sigma) that an extreme-quantile
     envelope could miss moves the whole CDF, so KS sees it. *)
  mean := 115.;
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  check_bool "KS detects the shifted distribution" true
    ((Engine.Stats.get (Guardrails.Deployment.engine d) h).violations > 0)

let test_p1_empty_window_is_healthy () =
  let kernel, d = make_deployment () in
  let stats =
    run_prop_against
      ~src:
        (Props.P1_in_distribution.source ~name:"p1" ~feature_key:"f" ~lo:0. ~hi:10.
           ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
           ~actions:[ {|REPORT("drift")|} ] ())
      ~feed:(fun () -> ())
      kernel d
  in
  check_int "no inputs, no drift" 0 stats.violations

let test_p2_detects_sensitivity () =
  let kernel, d = make_deployment () in
  let controller = Gr_policy.Cc_controller.train ~rng:kernel.rng () in
  Props.P2_robustness.instrument_cc d controller ~rng:kernel.rng ~key:"cc_sens"
    ~every:(Time_ns.ms 50);
  let src =
    Props.P2_robustness.source ~name:"p2" ~sensitivity_key:"cc_sens" ~bound:10.
      ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("sensitive")|} ] ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 1);
  let healthy = (Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles)).violations in
  check_int "trained controller is robust" 0 healthy;
  Gr_policy.Cc_controller.inject_sensitivity controller ~scale:100.;
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 3);
  let after = (Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles)).violations in
  check_bool "injected sensitivity detected" true (after > 0)

let test_p3_catches_out_of_bounds_quota () =
  let kernel, d = make_deployment () in
  let mm = Guardrails.Mm.create ~engine:kernel.engine ~hooks:kernel.hooks ~fast_capacity:100 () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"mm:quota" ~arg:"requested" ~key:"quota_req" ();
  let src =
    Props.P3_output_bounds.source ~name:"p3" ~hook:"mm:quota" ~key:"quota_req" ~lo:0. ~hi:100.
      ~actions:[ {|REPORT("illegal quota", quota_req)|} ] ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  let advisor = Gr_policy.Quota_advisor.train ~rng:kernel.rng ~capacity:100 () in
  let propose () =
    let q = Gr_policy.Quota_advisor.propose advisor ~miss_rate:0.5 ~occupancy:0.5 in
    ignore (Guardrails.Mm.advise_quota mm ~requested:q : [ `Applied of int | `Rejected ])
  in
  propose ();
  let stats () = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_int "honest proposal passes" 0 (stats ()).violations;
  Gr_policy.Quota_advisor.inject_drift advisor ~scale:5.;
  propose ();
  check_bool "out-of-bounds proposal caught" true ((stats ()).violations > 0)

let test_p4_shadow_comparison () =
  let kernel, d = make_deployment () in
  let cache = Guardrails.Cache.create ~hooks:kernel.hooks ~capacity:32 in
  Guardrails.Deployment.forward_hook_arg d ~hook:"cache:access" ~arg:"hit" ~key:"hit" ();
  Props.P4_decision_quality.shadow_cache d ~capacity:32 ~baseline:Guardrails.Cache.lru
    ~hit_key:"shadow";
  (* Give the live cache a pathological MRU policy: it must fall
     below the LRU shadow on a zipfian stream. *)
  Guardrails.Policy_slot.install (Guardrails.Cache.slot cache) ~name:"mru"
    Gr_policy.Inject.mru_eviction;
  let src =
    Props.P4_decision_quality.source ~name:"p4" ~policy_key:"hit" ~baseline_key:"shadow"
      ~margin:0.02 ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("below baseline")|} ] ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  let zipf = Rng.Zipf.create ~n:512 ~s:1.1 in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.us 100) (fun _ ->
         ignore (Guardrails.Cache.access cache ~key:(Rng.Zipf.sample zipf kernel.rng) : bool))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_bool "MRU flagged against LRU shadow" true (stats.violations > 0)

let test_p4_shadow_readahead () =
  let kernel, d = make_deployment () in
  let fs = Gr_kernel.Fs.create ~hooks:kernel.hooks ~cache_pages:64 () in
  (* Live policy: no readahead at all — must lose to the doubling
     heuristic shadow on sequential runs. *)
  Gr_kernel.Policy_slot.install (Gr_kernel.Fs.slot fs) ~name:"none"
    { Gr_kernel.Fs.policy_name = "none"; window = (fun _ -> 0) };
  Guardrails.Deployment.forward_hook_arg d ~hook:"fs:read" ~arg:"hit" ~key:"fs_hit" ();
  Props.P4_decision_quality.shadow_readahead d ~cache_pages:64
    ~baseline:(Gr_kernel.Fs.sequential_doubling ()) ~hit_key:"fs_shadow_hit";
  let src =
    Props.P4_decision_quality.source ~name:"p4-readahead" ~policy_key:"fs_hit"
      ~baseline_key:"fs_shadow_hit" ~margin:0.05 ~window:(Time_ns.ms 400)
      ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("readahead losing to heuristic")|} ] ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  (* Sequential reader. *)
  let offset = ref 0 in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.us 100) (fun _ ->
         incr offset;
         ignore (Gr_kernel.Fs.read fs ~offset:!offset : bool))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_bool "no-readahead flagged against heuristic shadow" true (stats.violations > 0)

let test_p5_overhead_budget () =
  let kernel, d = make_deployment () in
  let src =
    Props.P5_overhead.source ~name:"p5" ~cost_key:"inference_ns" ~budget_ns:1000.
      ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("over budget")|} ] ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  let cheap = { Gr_kernel.Blk.policy_name = "p"; decide = (fun _ -> Gr_kernel.Blk.Trust_primary) } in
  let wrapped = Props.P5_overhead.wrap_blk_policy d ~key:"inference_ns" ~cost_ns:500. cheap in
  for _ = 1 to 10 do
    ignore (wrapped.Gr_kernel.Blk.decide [||] : Gr_kernel.Blk.decision)
  done;
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 300);
  let ok = (Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles)).violations in
  check_int "within budget" 0 ok;
  let costly = Props.P5_overhead.wrap_blk_policy d ~key:"inference_ns" ~cost_ns:5000. cheap in
  for _ = 1 to 10 do
    ignore (costly.Gr_kernel.Blk.decide [||] : Gr_kernel.Blk.decision)
  done;
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 600);
  let over = (Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles)).violations in
  check_bool "over budget detected" true (over > 0)

let test_p6_detects_starvation () =
  let kernel, d = make_deployment () in
  let sched = Gr_kernel.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in
  Guardrails.Deployment.wire_scheduler d sched;
  Guardrails.Policy_slot.install (Gr_kernel.Sched.slot sched) ~name:"wild"
    (Gr_policy.Inject.wild_slices ~rng:kernel.rng ~max_ms:400);
  for i = 1 to 8 do
    ignore
      (Gr_kernel.Sched.spawn sched ~name:(string_of_int i) ~demand:(Time_ns.sec 5) ()
        : Gr_kernel.Sched.task)
  done;
  let src =
    Props.P6_fairness.source ~name:"p6" ~max_wait_ms:100. ~min_jain:0.1
      ~check_every:(Time_ns.ms 50)
      ~actions:[ {|REPORT("starvation", sched_max_wait_ms)|} ] ()
  in
  let handles = Guardrails.Deployment.install_source_exn d src in
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_bool "starvation detected under wild slices" true (stats.violations > 0)

(* ---------- Synthesis ---------- *)

let test_synthesis_emits_expected_set () =
  let rng = Rng.create 70 in
  let training = Array.init 500 (fun _ -> Rng.gaussian rng ~mu:100. ~sigma:10.) in
  let p =
    Gr_props.Synthesis.profile ~policy:"linnos"
      ~inputs:[ Gr_props.Synthesis.input ~key:"io_latency_us" training ]
      ~reward_key:"io_fast" ~baseline_key:"shadow_fast" ~cost_key:"inference_ns" ()
  in
  Alcotest.(check (list string)) "names"
    [ "linnos-input-io_latency_us"; "linnos-quality"; "linnos-overhead" ]
    (Gr_props.Synthesis.synthesized_names p);
  let monitors = compiles (Gr_props.Synthesis.synthesize p) in
  check_int "three monitors" 3 (List.length monitors);
  (* Every synthesized monitor references the policy for its
     corrective action. *)
  List.iter
    (fun m ->
      let refs_policy =
        List.exists
          (function
            | Guardrails.Monitor.Retrain "linnos" | Guardrails.Monitor.Replace "linnos" -> true
            | _ -> false)
          m.Guardrails.Monitor.actions
      in
      check_bool "action targets the policy" true refs_policy)
    monitors

let test_synthesis_partial_profiles () =
  let p = Gr_props.Synthesis.profile ~policy:"p" () in
  check_int "empty profile synthesizes nothing" 0
    (List.length (Gr_props.Synthesis.synthesized_names p));
  let p = Gr_props.Synthesis.profile ~policy:"p" ~cost_key:"c" () in
  check_int "cost only" 1 (List.length (compiles (Gr_props.Synthesis.synthesize p)));
  (* Reward without a baseline cannot produce a quality rail. *)
  let p = Gr_props.Synthesis.profile ~policy:"p" ~reward_key:"r" () in
  check_int "reward alone produces nothing" 0
    (List.length (Gr_props.Synthesis.synthesized_names p))

let test_synthesis_drift_detection_end_to_end () =
  let kernel, d = make_deployment () in
  let rng = Rng.create 71 in
  let training = Array.init 500 (fun _ -> Rng.gaussian rng ~mu:100. ~sigma:10.) in
  let retrains = ref 0 in
  Gr_kernel.Kernel.register_policy kernel ~name:"pol"
    ~replace:(fun () -> ())
    ~restore:(fun () -> ())
    ~retrain:(fun () -> incr retrains)
    ();
  let p =
    Gr_props.Synthesis.profile ~policy:"pol"
      ~inputs:[ Gr_props.Synthesis.input ~key:"f" training ]
      ~window:(Time_ns.ms 300) ~check_every:(Time_ns.ms 100) ()
  in
  let handles = Guardrails.Deployment.install_source_exn d (Gr_props.Synthesis.synthesize p) in
  (* In-distribution, then drifted. *)
  let mean = ref 100. in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 10) (fun _ ->
         Guardrails.Deployment.save d "f" (Rng.gaussian rng ~mu:!mean ~sigma:10.))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 1);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_int "quiet in distribution" 0 stats.violations;
  mean := 400.;
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_bool "drift detected" true (stats.violations > 0);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 3);
  check_bool "retrain action dispatched" true (!retrains >= 1)

let suite =
  [
    ( "props.synthesis",
      [
        Alcotest.test_case "emits the expected set" `Quick test_synthesis_emits_expected_set;
        Alcotest.test_case "partial profiles" `Quick test_synthesis_partial_profiles;
        Alcotest.test_case "drift detection end to end" `Quick
          test_synthesis_drift_detection_end_to_end;
      ] );
    ( "props",
      [
        Alcotest.test_case "all sources compile" `Quick test_all_sources_compile;
        Alcotest.test_case "P1 envelope" `Quick test_p1_envelope;
        Alcotest.test_case "P1 drift detection" `Quick test_p1_detects_drift_and_accepts_normal;
        Alcotest.test_case "P1 empty window healthy" `Quick test_p1_empty_window_is_healthy;
        Alcotest.test_case "P1 KS drift" `Quick test_p1_ks_drift;
        Alcotest.test_case "P2 sensitivity" `Slow test_p2_detects_sensitivity;
        Alcotest.test_case "P3 quota bounds" `Quick test_p3_catches_out_of_bounds_quota;
        Alcotest.test_case "P4 shadow comparison" `Slow test_p4_shadow_comparison;
        Alcotest.test_case "P4 shadow readahead" `Quick test_p4_shadow_readahead;
        Alcotest.test_case "P5 overhead budget" `Quick test_p5_overhead_budget;
        Alcotest.test_case "P6 starvation" `Quick test_p6_detects_starvation;
      ] );
  ]
