(* Tests for gr_nn: the MLP and the feature scaler. *)

open Gr_util
open Gr_nn

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_shapes () =
  let rng = Rng.create 1 in
  let net = Mlp.create ~rng ~layers:[ 3; 5; 2 ] () in
  check_int "input dim" 3 (Mlp.input_dim net);
  check_int "output dim" 2 (Mlp.output_dim net);
  let out = Mlp.forward net [| 0.1; 0.2; 0.3 |] in
  check_int "output length" 2 (Array.length out)

let test_bad_shapes_rejected () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "one layer"
    (Invalid_argument "Mlp.create: need at least input and output sizes") (fun () ->
      ignore (Mlp.create ~rng ~layers:[ 3 ] () : Mlp.t));
  let net = Mlp.create ~rng ~layers:[ 3; 1 ] () in
  Alcotest.check_raises "wrong input size" (Invalid_argument "Mlp.forward: input dimension mismatch")
    (fun () -> ignore (Mlp.forward net [| 1. |] : float array))

let test_deterministic_init () =
  let a = Mlp.create ~rng:(Rng.create 5) ~layers:[ 4; 8; 1 ] () in
  let b = Mlp.create ~rng:(Rng.create 5) ~layers:[ 4; 8; 1 ] () in
  let x = [| 0.5; -0.25; 1.0; 2.0 |] in
  check_float "same seed, same net" (Mlp.forward a x).(0) (Mlp.forward b x).(0)

let test_sigmoid_range () =
  let rng = Rng.create 2 in
  let net = Mlp.create ~rng ~layers:[ 2; 4; 1 ] () in
  for _ = 1 to 100 do
    let x = [| Rng.gaussian rng ~mu:0. ~sigma:5.; Rng.gaussian rng ~mu:0. ~sigma:5. |] in
    let y = (Mlp.forward net x).(0) in
    check_bool "sigmoid output in (0,1)" true (y > 0. && y < 1.)
  done

let test_learns_xor () =
  let rng = Rng.create 3 in
  let net = Mlp.create ~rng ~layers:[ 2; 8; 1 ] ~hidden:Mlp.Tanh () in
  let data =
    [|
      ([| 0.; 0. |], [| 0. |]);
      ([| 0.; 1. |], [| 1. |]);
      ([| 1.; 0. |], [| 1. |]);
      ([| 1.; 1. |], [| 0. |]);
    |]
  in
  let loss = Mlp.train net ~rng ~epochs:2000 ~batch_size:4 ~lr:0.5 data in
  check_bool "XOR loss small" true (loss < 0.05);
  Array.iter
    (fun (x, y) ->
      check_int (Printf.sprintf "xor(%g,%g)" x.(0) x.(1)) (int_of_float y.(0))
        (Mlp.predict_class net x))
    data

let test_learns_linear_regression () =
  let rng = Rng.create 4 in
  let net = Mlp.create ~rng ~layers:[ 1; 6; 1 ] ~output:Mlp.Linear () in
  let data = Array.init 200 (fun i ->
      let x = float_of_int i /. 100. -. 1. in
      ([| x |], [| (2. *. x) +. 0.5 |]))
  in
  ignore (Mlp.train net ~rng ~epochs:300 ~batch_size:16 ~lr:0.05 data : float);
  let y = (Mlp.forward net [| 0.3 |]).(0) in
  check_bool "fits 2x+0.5 at 0.3" true (Float.abs (y -. 1.1) < 0.1)

let test_training_reduces_loss () =
  let rng = Rng.create 6 in
  let net = Mlp.create ~rng ~layers:[ 2; 6; 1 ] () in
  let data =
    Array.init 100 (fun _ ->
        let a = Rng.float rng 1. and b = Rng.float rng 1. in
        ([| a; b |], [| (if a > b then 1. else 0.) |]))
  in
  let first = Mlp.train net ~rng ~epochs:1 ~batch_size:16 ~lr:0.2 data in
  let last = Mlp.train net ~rng ~epochs:50 ~batch_size:16 ~lr:0.2 data in
  check_bool "loss decreased" true (last < first)

let test_forward_count_and_flops () =
  let rng = Rng.create 7 in
  let net = Mlp.create ~rng ~layers:[ 4; 8; 2 ] () in
  check_int "flops" ((8 * 5) + (2 * 9)) (Mlp.flops_per_forward net);
  ignore (Mlp.forward net [| 0.; 0.; 0.; 0. |] : float array);
  ignore (Mlp.forward net [| 0.; 0.; 0.; 0. |] : float array);
  check_int "forward count" 2 (Mlp.forward_count net)

let test_copy_independent () =
  let rng = Rng.create 8 in
  let net = Mlp.create ~rng ~layers:[ 1; 4; 1 ] () in
  let snapshot = Mlp.copy net in
  let x = [| 0.7 |] in
  let before = (Mlp.forward net x).(0) in
  ignore
    (Mlp.train net ~rng ~epochs:50 ~batch_size:4 ~lr:0.5 [| ([| 0.7 |], [| 0.1 |]) |] : float);
  check_float "copy unchanged by training" before (Mlp.forward snapshot x).(0);
  check_bool "original changed" true ((Mlp.forward net x).(0) <> before)

let test_scale_first_layer () =
  let rng = Rng.create 9 in
  let net = Mlp.create ~rng ~layers:[ 1; 4; 1 ] ~hidden:Mlp.Tanh ~output:Mlp.Linear () in
  let slope net =
    let eps = 1e-3 in
    ((Mlp.forward net [| eps |]).(0) -. (Mlp.forward net [| 0. |]).(0)) /. eps
  in
  let base = Float.abs (slope net) in
  Mlp.scale_first_layer net 4.;
  check_bool "local sensitivity amplified" true (Float.abs (slope net) > 1.5 *. base)

let test_scaler_zscores () =
  let rows = [| [| 1.; 10. |]; [| 2.; 20. |]; [| 3.; 30. |] |] in
  let s = Scaler.fit rows in
  check_int "dim" 2 (Scaler.dim s);
  check_float "mean col0" 2. (Scaler.mean s 0);
  let z = Scaler.transform s [| 2.; 20. |] in
  check_float "centered" 0. z.(0);
  check_float "centered col1" 0. z.(1);
  let z2 = Scaler.transform s [| 3.; 30. |] in
  check_bool "unit-ish scale" true (Float.abs (z2.(0) -. (1. /. Scaler.stddev s 0)) < 1e-9 || z2.(0) > 0.)

let test_scaler_constant_column () =
  let rows = [| [| 5.; 1. |]; [| 5.; 2. |] |] in
  let s = Scaler.fit rows in
  let z = Scaler.transform s [| 5.; 1.5 |] in
  check_float "zero-variance column passes through" 5. z.(0)

let test_scaler_envelope () =
  let rows = Array.init 101 (fun i -> [| float_of_int i |]) in
  let s = Scaler.fit rows in
  let env = Scaler.envelope s ~quantiles:[| 0.; 0.5; 1.0 |] 0 in
  Alcotest.(check (array (float 1e-6))) "envelope quantiles" [| 0.; 50.; 100. |] env

let suite =
  [
    ( "nn.mlp",
      [
        Alcotest.test_case "shapes" `Quick test_shapes;
        Alcotest.test_case "bad shapes rejected" `Quick test_bad_shapes_rejected;
        Alcotest.test_case "deterministic init" `Quick test_deterministic_init;
        Alcotest.test_case "sigmoid output range" `Quick test_sigmoid_range;
        Alcotest.test_case "learns XOR" `Slow test_learns_xor;
        Alcotest.test_case "learns linear regression" `Quick test_learns_linear_regression;
        Alcotest.test_case "training reduces loss" `Quick test_training_reduces_loss;
        Alcotest.test_case "forward count and flops" `Quick test_forward_count_and_flops;
        Alcotest.test_case "copy is independent" `Quick test_copy_independent;
        Alcotest.test_case "scale_first_layer amplifies sensitivity" `Quick test_scale_first_layer;
      ] );
    ( "nn.scaler",
      [
        Alcotest.test_case "z-scores" `Quick test_scaler_zscores;
        Alcotest.test_case "constant column" `Quick test_scaler_constant_column;
        Alcotest.test_case "envelope" `Quick test_scaler_envelope;
      ] );
  ]
