(* Tests for gr_analysis: interval-domain unit tests, golden
   diagnostics over the specs/bad corpus (pinning codes, severities,
   positions and message text), clean-deployment checks over the
   shipped specs, and the JSON round-trip of structured output. *)

open Gr_dsl
module Lower = Gr_compiler.Lower
module Opt = Gr_compiler.Opt
module Interval = Gr_analysis.Interval
module Diagnostic = Gr_analysis.Diagnostic
module Analyze = Gr_analysis.Analyze
module Json = Gr_trace.Json

let check_bool = Alcotest.(check bool)
let check_strings = Alcotest.(check (list string))

(* Tests run from _build/default/test; fall back for odd CWDs. *)
let specs_dir sub =
  let dir = Filename.concat "../../../specs" sub in
  if Sys.file_exists dir then dir else Filename.concat "specs" sub

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The lint pipeline: parse -> typecheck -> lower -> optimize. No
   Verify — lint must still run on monitors the verifier rejects
   (e.g. duplicate SAVE keys). *)
let compile_file path =
  let spec = Parser.parse_exn (read_file path) in
  (match Typecheck.check_spec spec with
  | Ok () -> ()
  | Error errs ->
    Alcotest.failf "%s: %s" path
      (String.concat "; " (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)));
  List.map Opt.optimize_monitor (Lower.spec spec)

let lint_bad ?config name =
  Analyze.deployment ?config (compile_file (Filename.concat (specs_dir "bad") name))

let golden name expected () =
  check_strings name expected (List.map Diagnostic.to_string (lint_bad name))

(* ---------- Golden diagnostics, one family per corpus file ---------- *)

let test_always_true =
  golden "always_true.grd"
    [
      "warning[GRL001] monitor count-sanity (5:31): rule is always true (value in {1}): the \
       guardrail can never fire";
    ]

let test_always_false =
  golden "always_false.grd"
    [
      "warning[GRL002] monitor impossible-floor (5:31): rule is always false (value in {0}): \
       the guardrail fires on every check";
    ]

let test_div_by_zero =
  golden "div_by_zero.grd"
    [
      "error[GRL003] monitor backlog-ratio (6:25): divisor is always 0; the VM defines x / 0 = \
       0, so this quotient is constantly 0";
    ]

let test_div_may_zero =
  golden "div_may_zero.grd"
    [
      "warning[GRL003] monitor drops-per-req (5:27): divisor may be 0 (divisor in [0, +oo)); \
       the VM silently yields 0 for x / 0";
    ]

let test_disjoint_compare =
  golden "disjoint_compare.grd"
    [
      "warning[GRL004] monitor watches-toggle (12:28): comparison is always false: left in \
       {0}, right in {2}";
    ]

let test_nan_compare =
  golden "nan_compare.grd"
    [
      "warning[GRL005] monitor overflow-probe (6:39): left operand of < may be NaN; NaN makes \
       every comparison false (except <>)";
    ]

let test_dup_save =
  golden "dup_save.grd"
    [
      "error[GRL101] monitor double-write (3:1): duplicate SAVE key \"io_limit\": only the \
       last write survives a check";
    ]

let test_save_conflict =
  golden "save_conflict.grd"
    [
      "warning[GRL102] monitor throttle-down: key \"io_limit\" is written by multiple \
       monitors (throttle-down, throttle-up): last writer wins";
    ]

let test_cascade_cycle =
  golden "cascade_cycle.grd"
    [
      "error[GRL103] monitor scale-down: SAVE/ON_CHANGE trigger cycle among monitors \
       scale-down, scale-up: each SAVE re-triggers the next";
    ]

let test_replace_flap =
  golden "replace_flap.grd"
    [
      "warning[GRL104] monitor latency-guard: policy \"linnos\" is REPLACEd by latency-guard \
       and RESTOREd by recovery: opposing actions can flap";
    ]

let test_hook_budget =
  golden "hook_budget.grd"
    [
      "error[GRL105] monitor p50-watch: hook \"blk:io_submit\": cumulative static cost 676ns \
       of 4 monitor(s) (p50-watch, p70-watch, p90-watch, p99-watch) exceeds the 500ns budget";
    ]

(* ---------- Fleet scoping (grc lint --fleet) ---------- *)

let compile_src src =
  let spec = Parser.parse_exn src in
  (match Typecheck.check_spec spec with
  | Ok () -> ()
  | Error errs ->
    Alcotest.failf "inline spec: %s"
      (String.concat "; " (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs)));
  List.map Opt.optimize_monitor (Lower.spec spec)

let test_fleet_qualify_unconflates () =
  let node name key =
    Printf.sprintf
      {|guardrail %s { trigger: { TIMER(0, 1s) } rule: { LOAD(pending) <= 10 } action: { SAVE(%s, 1) } }|}
      name key
  in
  (* Two nodes shipping near-identical specs: analysed flat, lint sees
     one "io_limit" cell written by both monitors. *)
  let a = compile_src (node "ga" "io_limit") and b = compile_src (node "gb" "io_limit") in
  check_bool "unscoped same-named keys conflict (GRL102)" true
    (List.exists (fun (d : Diagnostic.t) -> d.code = "GRL102") (Analyze.deployment (a @ b)));
  (* --fleet qualifies node-local keys per file: the writes land on
     distinct per-node cells and the conflict disappears. *)
  let qualify id = List.map (Gr_compiler.Monitor.qualify ~node_id:id) in
  check_strings "node-qualified keys do not collide" []
    (List.map Diagnostic.to_string (Analyze.deployment (qualify 0 a @ qualify 1 b)));
  (* GLOBAL keys name one shared cell, so they must keep conflicting
     even across node-qualified deployments. *)
  let ag = compile_src (node "ga" "GLOBAL(io_limit)")
  and bg = compile_src (node "gb" "GLOBAL(io_limit)") in
  check_bool "global keys still conflict across nodes" true
    (List.exists
       (fun (d : Diagnostic.t) -> d.code = "GRL102")
       (Analyze.deployment (qualify 0 ag @ qualify 1 bg)))

let test_hook_budget_configurable () =
  let diags = lint_bad ~config:{ Analyze.hook_budget_ns = 10_000. } "hook_budget.grd" in
  check_strings "raised budget silences GRL105" [] (List.map Diagnostic.to_string diags)

(* ---------- Shipped specs must stay clean ---------- *)

let shipped_specs () =
  Sys.readdir (specs_dir "")
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".grd")
  |> List.sort compare
  |> List.map (Filename.concat (specs_dir ""))

let test_shipped_specs_clean () =
  let paths = shipped_specs () in
  check_bool "found shipped specs" true (List.length paths >= 5);
  (* Individually... *)
  List.iter
    (fun path ->
      check_strings path []
        (List.map Diagnostic.to_string (Analyze.deployment (compile_file path))))
    paths;
  (* ...and deployed together (interference analysis included). *)
  let all = List.concat_map compile_file paths in
  check_strings "whole shipped deployment" []
    (List.map Diagnostic.to_string (Analyze.deployment all))

(* ---------- JSON round-trip ---------- *)

let bad_corpus =
  [
    "always_true.grd"; "always_false.grd"; "div_by_zero.grd"; "div_may_zero.grd";
    "disjoint_compare.grd"; "nan_compare.grd"; "dup_save.grd"; "save_conflict.grd";
    "cascade_cycle.grd"; "replace_flap.grd"; "hook_budget.grd";
  ]

let test_json_round_trip () =
  let diags = List.concat_map lint_bad bad_corpus in
  check_bool "corpus produces diagnostics" true (List.length diags >= 11);
  List.iter
    (fun d ->
      let j = Diagnostic.to_json d in
      match Json.parse (Json.to_string j) with
      | Ok j' -> check_bool (Diagnostic.to_string d) true (Json.equal j j')
      | Error e -> Alcotest.failf "unparseable JSON for %s: %s" (Diagnostic.to_string d) e)
    diags

let test_json_fields () =
  match lint_bad "div_by_zero.grd" with
  | [ d ] ->
    let j = Diagnostic.to_json d in
    let str k = Option.bind (Json.member k j) Json.string_value in
    let num k = Option.bind (Json.member k j) Json.int_value in
    Alcotest.(check (option string)) "severity" (Some "error") (str "severity");
    Alcotest.(check (option string)) "code" (Some "GRL003") (str "code");
    Alcotest.(check (option string)) "monitor" (Some "backlog-ratio") (str "monitor");
    Alcotest.(check (option int)) "line" (Some 6) (num "line");
    Alcotest.(check (option int)) "col" (Some 25) (num "col")
  | ds -> Alcotest.failf "expected exactly one diagnostic, got %d" (List.length ds)

(* ---------- Interval domain unit tests ---------- *)

let test_interval_arith () =
  let i = Interval.add (Interval.const 1.) (Interval.const 2.) in
  check_bool "1+2 = {3}" true (Interval.equal i (Interval.const 3.));
  let z = Interval.div (Interval.const 1.) (Interval.const 0.) in
  check_bool "VM x/0 = 0" true (Interval.equal z (Interval.const 0.));
  let nan_av = Interval.add (Interval.const infinity) (Interval.const neg_infinity) in
  check_bool "inf + -inf may be NaN" true (Interval.may_nan nan_av);
  let m = Interval.mul (Interval.finite 0. infinity) (Interval.const 0.) in
  check_bool "[0,+oo) * {0} = {0}" true (Interval.must_zero m)

let test_interval_cmp () =
  let nonneg = Interval.finite 0. infinity in
  check_bool "count >= 0 always true" true
    (Interval.always_true (Interval.cmp Ast.Ge nonneg (Interval.const 0.)));
  check_bool "count < 0 always false" true
    (Interval.always_false (Interval.cmp Ast.Lt nonneg (Interval.const 0.)));
  let nan_av = Interval.const nan in
  check_bool "NaN == x always false" true
    (Interval.always_false (Interval.cmp Ast.Eq nan_av Interval.unknown));
  check_bool "NaN <> x always true" true
    (Interval.always_true (Interval.cmp Ast.Ne nan_av Interval.unknown));
  check_bool "unknown comparison undecided" true
    (let v = Interval.cmp Ast.Lt Interval.unknown (Interval.const 5.) in
     Interval.may_true v && Interval.may_false v)

let test_interval_join_truthiness () =
  let j = Interval.join (Interval.const 0.) (Interval.const 1.) in
  check_bool "join {0} {1} may be false" true (Interval.may_false j);
  check_bool "join {0} {1} may be true" true (Interval.may_true j);
  check_bool "infinity is truthy" true (Interval.always_true (Interval.const infinity));
  check_bool "NaN is truthy" true (Interval.always_true (Interval.const nan));
  check_bool "not 0 is true" true (Interval.always_true (Interval.not_ (Interval.const 0.)))

let suite =
  [
    ( "lint.interval",
      [
        Alcotest.test_case "arithmetic" `Quick test_interval_arith;
        Alcotest.test_case "comparisons" `Quick test_interval_cmp;
        Alcotest.test_case "join and truthiness" `Quick test_interval_join_truthiness;
      ] );
    ( "lint.golden",
      [
        Alcotest.test_case "GRL001 always-true rule" `Quick test_always_true;
        Alcotest.test_case "GRL002 always-false rule" `Quick test_always_false;
        Alcotest.test_case "GRL003 certain div-by-zero" `Quick test_div_by_zero;
        Alcotest.test_case "GRL003 possible div-by-zero" `Quick test_div_may_zero;
        Alcotest.test_case "GRL004 constant comparison" `Quick test_disjoint_compare;
        Alcotest.test_case "GRL005 NaN comparison" `Quick test_nan_compare;
        Alcotest.test_case "GRL101 duplicate SAVE" `Quick test_dup_save;
        Alcotest.test_case "GRL102 SAVE conflict" `Quick test_save_conflict;
        Alcotest.test_case "GRL103 trigger cycle" `Quick test_cascade_cycle;
        Alcotest.test_case "GRL104 REPLACE/RESTORE flap" `Quick test_replace_flap;
        Alcotest.test_case "GRL105 hook budget" `Quick test_hook_budget;
        Alcotest.test_case "hook budget is configurable" `Quick test_hook_budget_configurable;
      ] );
    ( "lint.deployment",
      [
        Alcotest.test_case "shipped specs stay clean" `Quick test_shipped_specs_clean;
        Alcotest.test_case "fleet scoping unconflates node keys" `Quick
          test_fleet_qualify_unconflates;
      ] );
    ( "lint.json",
      [
        Alcotest.test_case "diagnostics round-trip" `Quick test_json_round_trip;
        Alcotest.test_case "field layout" `Quick test_json_fields;
      ] );
  ]
