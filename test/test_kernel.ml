(* Tests for gr_kernel: hooks, policy slots, SSD model, block layer,
   scheduler, memory manager, cache. *)

open Gr_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- Hooks ---------- *)

let test_hooks_fire_and_count () =
  let h = Gr_kernel.Hooks.create () in
  let seen = ref [] in
  ignore (Gr_kernel.Hooks.subscribe h "a" (fun args -> seen := args :: !seen)
      : Gr_kernel.Hooks.subscription);
  Gr_kernel.Hooks.fire h "a" [ ("x", 1.) ];
  Gr_kernel.Hooks.fire h "a" [ ("x", 2.) ];
  Gr_kernel.Hooks.fire h "b" [];
  check_int "a fired twice" 2 (Gr_kernel.Hooks.fire_count h "a");
  check_int "b fired once" 1 (Gr_kernel.Hooks.fire_count h "b");
  check_int "unknown hook" 0 (Gr_kernel.Hooks.fire_count h "zzz");
  check_int "listener saw both" 2 (List.length !seen)

let test_hooks_subscription_order () =
  let h = Gr_kernel.Hooks.create () in
  let order = ref [] in
  ignore (Gr_kernel.Hooks.subscribe h "x" (fun _ -> order := 1 :: !order)
      : Gr_kernel.Hooks.subscription);
  ignore (Gr_kernel.Hooks.subscribe h "x" (fun _ -> order := 2 :: !order)
      : Gr_kernel.Hooks.subscription);
  Gr_kernel.Hooks.fire h "x" [];
  Alcotest.(check (list int)) "in subscription order" [ 1; 2 ] (List.rev !order)

let test_hooks_unsubscribe () =
  let h = Gr_kernel.Hooks.create () in
  let count = ref 0 in
  let sub = Gr_kernel.Hooks.subscribe h "x" (fun _ -> incr count) in
  Gr_kernel.Hooks.fire h "x" [];
  Gr_kernel.Hooks.unsubscribe h sub;
  Gr_kernel.Hooks.fire h "x" [];
  check_int "stopped listening" 1 !count

(* ---------- Policy_slot ---------- *)

let test_slot_lifecycle () =
  let slot = Gr_kernel.Policy_slot.create ~name:"s" ~fallback:("safe", 0) in
  check_string "starts on fallback name" "safe" (Gr_kernel.Policy_slot.current_name slot);
  Gr_kernel.Policy_slot.install slot ~name:"learned" 1;
  check_int "learned live" 1 (Gr_kernel.Policy_slot.current slot);
  check_bool "not on fallback" false (Gr_kernel.Policy_slot.on_fallback slot);
  Gr_kernel.Policy_slot.use_fallback slot;
  check_int "fallback live" 0 (Gr_kernel.Policy_slot.current slot);
  check_bool "on fallback" true (Gr_kernel.Policy_slot.on_fallback slot);
  Gr_kernel.Policy_slot.use_fallback slot (* idempotent *);
  check_int "still fallback" 0 (Gr_kernel.Policy_slot.current slot);
  Gr_kernel.Policy_slot.restore slot;
  check_int "restored" 1 (Gr_kernel.Policy_slot.current slot);
  Gr_kernel.Policy_slot.restore slot (* idempotent *);
  check_int "still restored" 1 (Gr_kernel.Policy_slot.current slot);
  Alcotest.(check (list (pair string string)))
    "transitions recorded"
    [ ("safe", "learned"); ("learned", "safe"); ("safe", "learned") ]
    (Gr_kernel.Policy_slot.transitions slot)

let test_registry () =
  let reg = Gr_kernel.Policy_slot.Registry.create () in
  let replaced = ref false in
  Gr_kernel.Policy_slot.Registry.register reg "p"
    {
      replace = (fun () -> replaced := true);
      restore = (fun () -> ());
      retrain = Gr_kernel.Policy_slot.Registry.no_retrain;
    };
  (match Gr_kernel.Policy_slot.Registry.find reg "p" with
  | Some c -> c.replace ()
  | None -> Alcotest.fail "registered policy not found");
  check_bool "replace closure ran" true !replaced;
  check_bool "unknown absent" true (Gr_kernel.Policy_slot.Registry.find reg "q" = None)

(* ---------- Ssd ---------- *)

let test_ssd_latency_positive_and_fastish () =
  let rng = Rng.create 1 in
  let dev = Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.young_profile ~id:0 in
  for i = 0 to 999 do
    let lat = Gr_kernel.Ssd.draw_latency dev ~now:(Time_ns.us (i * 100)) in
    check_bool "positive" true (lat > 0)
  done

let test_ssd_gc_inflates_latency () =
  let rng = Rng.create 2 in
  let dev = Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.aged_profile ~id:0 in
  (* Sample many instants; GC instants must show much higher latency. *)
  let in_gc = ref [] and out_gc = ref [] in
  for i = 0 to 4999 do
    let now = Time_ns.us (i * 37) in
    let lat = float_of_int (Gr_kernel.Ssd.draw_latency dev ~now) in
    if Gr_kernel.Ssd.in_gc dev ~now then in_gc := lat :: !in_gc else out_gc := lat :: !out_gc
  done;
  check_bool "both regimes sampled" true (!in_gc <> [] && !out_gc <> []);
  let mean l = Stats.mean (Array.of_list l) in
  check_bool "GC at least 5x slower" true (mean !in_gc > 5. *. mean !out_gc)

let test_ssd_gc_duty_cycle () =
  let rng = Rng.create 3 in
  let dev = Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.aged_profile ~id:0 in
  let gc = ref 0 and n = 10_000 in
  for i = 0 to n - 1 do
    if Gr_kernel.Ssd.in_gc dev ~now:(Time_ns.us (i * 11)) then incr gc
  done;
  let duty = float_of_int !gc /. float_of_int n in
  (* aged profile: 3ms of every 12ms. *)
  check_bool "duty near 25%" true (Float.abs (duty -. 0.25) < 0.05)

let test_ssd_queue_depth_penalty () =
  let rng = Rng.create 4 in
  let profile = { Gr_kernel.Ssd.young_profile with latency_sigma = 0.0001; gc_period = 0 } in
  let dev = Gr_kernel.Ssd.create ~rng ~profile ~id:0 in
  let base = Gr_kernel.Ssd.draw_latency dev ~now:0 in
  for _ = 1 to 10 do
    Gr_kernel.Ssd.begin_io dev
  done;
  let queued = Gr_kernel.Ssd.draw_latency dev ~now:0 in
  check_bool "queue adds ~60us" true
    (Time_ns.to_float_us queued -. Time_ns.to_float_us base > 50.)

let test_ssd_history () =
  let rng = Rng.create 5 in
  let dev = Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.young_profile ~id:0 in
  Gr_kernel.Ssd.begin_io dev;
  Gr_kernel.Ssd.end_io dev ~latency:(Time_ns.us 100);
  Gr_kernel.Ssd.begin_io dev;
  Gr_kernel.Ssd.end_io dev ~latency:(Time_ns.us 200);
  let recent = Gr_kernel.Ssd.recent_latencies_us dev ~n:4 in
  Alcotest.(check (array (float 0.01))) "zero-padded, newest last" [| 0.; 0.; 100.; 200. |] recent;
  check_int "completed" 2 (Gr_kernel.Ssd.completed dev);
  check_int "queue drained" 0 (Gr_kernel.Ssd.queue_depth dev)

(* ---------- Blk ---------- *)

let make_blk ?(n = 2) ?(seed = 7) () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let rng = Rng.create seed in
  let devices =
    Array.init n (fun i -> Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.young_profile ~id:i)
  in
  let blk = Gr_kernel.Blk.create ~engine ~hooks ~devices () in
  (engine, hooks, devices, blk)

let test_blk_needs_two_devices () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let rng = Rng.create 1 in
  let devices = [| Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.young_profile ~id:0 |] in
  Alcotest.check_raises "one device rejected"
    (Invalid_argument "Blk.create: need at least two devices") (fun () ->
      ignore (Gr_kernel.Blk.create ~engine ~hooks ~devices () : Gr_kernel.Blk.t))

let test_blk_completion_via_engine () =
  let engine, _, _, blk = make_blk () in
  let results = ref [] in
  for i = 0 to 99 do
    Gr_kernel.Blk.submit_read blk ~primary:i ~on_complete:(fun r -> results := r :: !results)
  done;
  check_int "nothing completes before running" 0 (List.length !results);
  Gr_sim.Engine.run engine;
  check_int "all complete" 100 (List.length !results);
  check_int "counter matches" 100 (Gr_kernel.Blk.ios_completed blk);
  List.iter
    (fun (r : Gr_kernel.Blk.io_result) -> check_bool "latency positive" true (r.latency > 0))
    !results

let test_blk_hedge_caps_slow_ios () =
  let engine, _, devices, blk = make_blk ~seed:9 () in
  (* Age the primary so slow I/Os are common; the hedge must bound
     service at timeout + replica latency + overhead. *)
  Array.iter (fun d -> Gr_kernel.Ssd.set_profile d Gr_kernel.Ssd.aged_profile) devices;
  let worst = ref 0. in
  for _ = 0 to 499 do
    Gr_kernel.Blk.submit_read blk ~primary:0 ~on_complete:(fun r ->
        worst := Float.max !worst (Time_ns.to_float_us r.latency))
  done;
  Gr_sim.Engine.run engine;
  check_bool "hedge fired at least once" true (Gr_kernel.Blk.hedge_fires blk > 0);
  (* timeout 300 + aged slow replica (up to ~2.5ms) + overhead; the
     unhedged primary would be the same magnitude, but hedging two
     slow devices back to back stays under ~6ms. *)
  check_bool "worst bounded" true (!worst < 6000.)

let test_blk_trust_primary_counts_false_submits () =
  let engine, _, devices, blk = make_blk ~seed:10 () in
  Array.iter (fun d -> Gr_kernel.Ssd.set_profile d Gr_kernel.Ssd.aged_profile) devices;
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"trusting"
    { Gr_kernel.Blk.policy_name = "trusting"; decide = (fun _ -> Gr_kernel.Blk.Trust_primary) };
  for _ = 0 to 499 do
    Gr_kernel.Blk.submit_read blk ~primary:0 ~on_complete:(fun _ -> ())
  done;
  Gr_sim.Engine.run engine;
  check_bool "false submits counted" true (Gr_kernel.Blk.false_submits blk > 50);
  check_int "no false revokes" 0 (Gr_kernel.Blk.false_revokes blk)

let test_blk_revoke_now_counts_false_revokes () =
  let engine, _, _, blk = make_blk ~seed:11 () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"paranoid"
    { Gr_kernel.Blk.policy_name = "paranoid"; decide = (fun _ -> Gr_kernel.Blk.Revoke_now) };
  for _ = 0 to 199 do
    Gr_kernel.Blk.submit_read blk ~primary:0 ~on_complete:(fun r ->
        check_bool "redirected" true r.redirected)
  done;
  Gr_sim.Engine.run engine;
  (* Young devices are almost always fast, so revoking is almost
     always wasted. *)
  check_bool "false revokes dominate" true (Gr_kernel.Blk.false_revokes blk > 150);
  check_int "all redirected" 200 (Gr_kernel.Blk.redirects blk)

let test_blk_counterfactual_published () =
  let engine, hooks, devices, blk = make_blk ~seed:12 () in
  Array.iter (fun d -> Gr_kernel.Ssd.set_profile d Gr_kernel.Ssd.aged_profile) devices;
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"trusting"
    { Gr_kernel.Blk.policy_name = "trusting"; decide = (fun _ -> Gr_kernel.Blk.Trust_primary) };
  let served = ref [] and counter = ref [] in
  ignore
    (Gr_kernel.Hooks.subscribe hooks "blk:io_complete" (fun args ->
         served := List.assoc "latency_us" args :: !served;
         counter := List.assoc "hedge_counterfactual_us" args :: !counter)
      : Gr_kernel.Hooks.subscription);
  for _ = 0 to 499 do
    Gr_kernel.Blk.submit_read blk ~primary:0 ~on_complete:(fun _ -> ())
  done;
  Gr_sim.Engine.run engine;
  check_int "counterfactual on every completion" 500 (List.length !counter);
  (* On an aged primary, trusting blindly must lose to the hedge
     counterfactual on average — exactly the P4 signal. *)
  let mean l = Stats.mean (Array.of_list l) in
  check_bool "trusting worse than hedge counterfactual" true (mean !served > mean !counter);
  (* The counterfactual is bounded below by fast service and is never
     absurd: timeout + replica + overhead tops out within a few ms. *)
  List.iter (fun c -> check_bool "counterfactual sane" true (c > 0. && c < 10_000.)) !counter

let test_blk_features_shape () =
  let _, _, _, blk = make_blk () in
  let f = Gr_kernel.Blk.features blk ~primary:0 in
  check_int "feature dim" (Gr_kernel.Blk.feature_dim blk) (Array.length f);
  check_int "default dim" 6 (Array.length f)

let test_blk_hooks_published () =
  let engine, hooks, _, blk = make_blk () in
  let completes = ref 0 in
  ignore
    (Gr_kernel.Hooks.subscribe hooks "blk:io_complete" (fun args ->
         incr completes;
         check_bool "latency arg present" true (List.mem_assoc "latency_us" args);
         check_bool "false_submit arg present" true (List.mem_assoc "false_submit" args))
      : Gr_kernel.Hooks.subscription);
  for _ = 0 to 9 do
    Gr_kernel.Blk.submit_read blk ~primary:0 ~on_complete:(fun _ -> ())
  done;
  Gr_sim.Engine.run engine;
  check_int "hook fired per completion" 10 !completes

(* ---------- Sched ---------- *)

let make_sched () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  (engine, hooks, Gr_kernel.Sched.create ~engine ~hooks ())

let test_sched_completes_tasks () =
  let engine, _, sched = make_sched () in
  let t1 = Gr_kernel.Sched.spawn sched ~name:"a" ~demand:(Time_ns.ms 10) () in
  let t2 = Gr_kernel.Sched.spawn sched ~name:"b" ~demand:(Time_ns.ms 10) () in
  Gr_sim.Engine.run_until engine (Time_ns.ms 100);
  check_bool "t1 complete" true (t1.state = Gr_kernel.Sched.Complete);
  check_bool "t2 complete" true (t2.state = Gr_kernel.Sched.Complete);
  check_int "received all demand" (Time_ns.ms 10) t1.received

let test_sched_fair_sharing () =
  let engine, _, sched = make_sched () in
  let a = Gr_kernel.Sched.spawn sched ~name:"a" ~demand:(Time_ns.sec 10) () in
  let b = Gr_kernel.Sched.spawn sched ~name:"b" ~demand:(Time_ns.sec 10) () in
  Gr_sim.Engine.run_until engine (Time_ns.sec 1);
  let ra = Time_ns.to_float_ms a.received and rb = Time_ns.to_float_ms b.received in
  check_bool "equal weights share CPU" true (Float.abs (ra -. rb) /. Float.max ra rb < 0.1)

let test_sched_weighted_sharing () =
  let engine, _, sched = make_sched () in
  let heavy = Gr_kernel.Sched.spawn sched ~name:"h" ~weight:3072 ~demand:(Time_ns.sec 10) () in
  let light = Gr_kernel.Sched.spawn sched ~name:"l" ~weight:1024 ~demand:(Time_ns.sec 10) () in
  Gr_sim.Engine.run_until engine (Time_ns.sec 1);
  let ratio = Time_ns.to_float_ms heavy.received /. Time_ns.to_float_ms light.received in
  check_bool "3x weight gets ~3x CPU" true (ratio > 2.2 && ratio < 3.8)

let test_sched_starvation_accounting () =
  let engine, _, sched = make_sched () in
  (* A policy that hands out 200ms slices regardless of load. *)
  Gr_kernel.Policy_slot.install (Gr_kernel.Sched.slot sched) ~name:"hog"
    {
      Gr_kernel.Sched.policy_name = "hog";
      slice = (fun ~nr_runnable:_ ~task_weight:_ ~task_received_ms:_ -> Time_ns.ms 200);
    };
  for i = 1 to 5 do
    ignore
      (Gr_kernel.Sched.spawn sched ~name:(string_of_int i) ~demand:(Time_ns.sec 2) ()
        : Gr_kernel.Sched.task)
  done;
  Gr_sim.Engine.run_until engine (Time_ns.ms 350);
  (* At t=350ms with 200ms slices, some task has waited >= 300ms. *)
  check_bool "starvation visible" true (Gr_kernel.Sched.max_wait_ms sched >= 300.)

let test_sched_deprioritize_and_kill () =
  let engine, _, sched = make_sched () in
  let batch = Gr_kernel.Sched.spawn sched ~name:"b" ~cls:"batch" ~demand:(Time_ns.sec 10) () in
  let inter =
    Gr_kernel.Sched.spawn sched ~name:"i" ~cls:"interactive" ~demand:(Time_ns.sec 10) ()
  in
  check_int "one task deprioritized" 1
    (Gr_kernel.Sched.deprioritize_class sched ~cls:"batch" ~weight:128);
  check_int "weight applied" 128 batch.weight;
  Gr_sim.Engine.run_until engine (Time_ns.sec 1);
  check_bool "deprioritized gets less CPU" true (batch.received < inter.received);
  let killed = Gr_kernel.Sched.kill_class sched ~cls:"batch" in
  check_bool "batch killed (unless mid-run)" true (killed <= 1);
  check_int "unknown class kills none" 0 (Gr_kernel.Sched.kill_class sched ~cls:"nope")

let test_sched_smp_parallelism () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let sched = Gr_kernel.Sched.create ~engine ~hooks ~cpus:4 () in
  check_int "cpu count" 4 (Gr_kernel.Sched.cpus sched);
  (* Four CPU-bound tasks on four CPUs: all finish in ~demand time. *)
  let ts =
    List.init 4 (fun i ->
        Gr_kernel.Sched.spawn sched ~name:(string_of_int i) ~demand:(Time_ns.ms 100) ())
  in
  Gr_sim.Engine.run_until engine (Time_ns.ms 110);
  List.iter
    (fun (t : Gr_kernel.Sched.task) ->
      check_bool "finished in parallel" true (t.state = Gr_kernel.Sched.Complete))
    ts;
  check_int "placed on distinct cpus" 4
    (List.sort_uniq compare (List.map (fun (t : Gr_kernel.Sched.task) -> t.cpu) ts)
    |> List.length)

let test_sched_wasted_cores_detection_and_rebalance () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let sched = Gr_kernel.Sched.create ~engine ~hooks ~cpus:4 () in
  (* Everything lands on CPU 0. *)
  Gr_kernel.Policy_slot.install
    (Gr_kernel.Sched.balancer_slot sched)
    ~name:"pin0"
    { Gr_kernel.Sched.balancer_name = "pin0"; place = (fun ~queue_lens:_ -> 0) };
  for i = 1 to 6 do
    ignore
      (Gr_kernel.Sched.spawn sched ~name:(string_of_int i) ~demand:(Time_ns.sec 1) ()
        : Gr_kernel.Sched.task)
  done;
  Gr_sim.Engine.run_until engine (Time_ns.ms 50);
  check_int "three cores wasted" 3 (Gr_kernel.Sched.wasted_cores sched);
  let moved = Gr_kernel.Sched.rebalance sched in
  check_bool "rebalance migrates queued tasks" true (moved > 0);
  Gr_sim.Engine.run_until engine (Time_ns.ms 100);
  check_int "no wasted cores after rebalance" 0 (Gr_kernel.Sched.wasted_cores sched)

let test_sched_single_cpu_never_wastes () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let sched = Gr_kernel.Sched.create ~engine ~hooks () in
  for i = 1 to 4 do
    ignore
      (Gr_kernel.Sched.spawn sched ~name:(string_of_int i) ~demand:(Time_ns.ms 100) ()
        : Gr_kernel.Sched.task)
  done;
  Gr_sim.Engine.run_until engine (Time_ns.ms 50);
  check_int "single cpu: zero by definition" 0 (Gr_kernel.Sched.wasted_cores sched)

let test_sched_bogus_balancer_clamped () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  let sched = Gr_kernel.Sched.create ~engine ~hooks ~cpus:2 () in
  Gr_kernel.Policy_slot.install
    (Gr_kernel.Sched.balancer_slot sched)
    ~name:"bogus"
    { Gr_kernel.Sched.balancer_name = "bogus"; place = (fun ~queue_lens:_ -> 99) };
  let t = Gr_kernel.Sched.spawn sched ~name:"x" ~demand:(Time_ns.ms 10) () in
  check_bool "clamped into range" true (t.cpu >= 0 && t.cpu < 2);
  Gr_sim.Engine.run_until engine (Time_ns.ms 50);
  check_bool "still runs" true (t.state = Gr_kernel.Sched.Complete)

let test_sched_received_by_class () =
  let engine, _, sched = make_sched () in
  ignore (Gr_kernel.Sched.spawn sched ~name:"a" ~cls:"x" ~demand:(Time_ns.ms 50) ()
      : Gr_kernel.Sched.task);
  ignore (Gr_kernel.Sched.spawn sched ~name:"b" ~cls:"y" ~demand:(Time_ns.ms 50) ()
      : Gr_kernel.Sched.task);
  Gr_sim.Engine.run_until engine (Time_ns.sec 1);
  let by_class = Gr_kernel.Sched.received_by_class sched in
  check_int "two classes" 2 (List.length by_class);
  List.iter (fun (_, s) -> check_bool "50ms each" true (Float.abs (s -. 0.05) < 1e-6)) by_class

(* ---------- Mm ---------- *)

let make_mm ?(fast_capacity = 4) () =
  let engine = Gr_sim.Engine.create () in
  let hooks = Gr_kernel.Hooks.create () in
  (engine, hooks, Gr_kernel.Mm.create ~engine ~hooks ~fast_capacity ())

let test_mm_second_touch_promotion () =
  let _, _, mm = make_mm () in
  let slow1 = Gr_kernel.Mm.access mm ~page:1 in
  let slow2 = Gr_kernel.Mm.access mm ~page:1 in
  let fast = Gr_kernel.Mm.access mm ~page:1 in
  check_bool "first access slow" true (slow1 >= Time_ns.us 2);
  check_bool "second access promotes (pays promote cost)" true (slow2 > slow1);
  check_bool "third access fast" true (fast < Time_ns.us 1);
  check_int "one promotion" 1 (Gr_kernel.Mm.promotions mm)

let test_mm_lru_eviction_on_capacity () =
  let _, _, mm = make_mm ~fast_capacity:2 () in
  let promote page =
    ignore (Gr_kernel.Mm.access mm ~page : Time_ns.t);
    ignore (Gr_kernel.Mm.access mm ~page : Time_ns.t)
  in
  promote 1;
  promote 2;
  promote 3;
  (* page 1 is the LRU victim *)
  check_int "occupancy capped" 2 (Gr_kernel.Mm.fast_occupancy mm);
  let lat1 = Gr_kernel.Mm.access mm ~page:3 in
  check_bool "page 3 fast" true (lat1 < Time_ns.us 1)

let test_mm_hit_fraction () =
  let _, _, mm = make_mm () in
  ignore (Gr_kernel.Mm.access mm ~page:1 : Time_ns.t);
  ignore (Gr_kernel.Mm.access mm ~page:1 : Time_ns.t);
  ignore (Gr_kernel.Mm.access mm ~page:1 : Time_ns.t);
  ignore (Gr_kernel.Mm.access mm ~page:1 : Time_ns.t);
  check_bool "hit fraction = 2/4" true (Float.abs (Gr_kernel.Mm.hit_fraction mm -. 0.5) < 1e-9)

let test_mm_quota () =
  let _, hooks, mm = make_mm ~fast_capacity:4 () in
  let quota_events = ref [] in
  ignore
    (Gr_kernel.Hooks.subscribe hooks "mm:quota" (fun args -> quota_events := args :: !quota_events)
      : Gr_kernel.Hooks.subscription);
  check_bool "legal quota applied" true (Gr_kernel.Mm.advise_quota mm ~requested:2 = `Applied 2);
  check_bool "oversized rejected" true (Gr_kernel.Mm.advise_quota mm ~requested:10 = `Rejected);
  check_bool "negative rejected" true (Gr_kernel.Mm.advise_quota mm ~requested:(-1) = `Rejected);
  check_int "every request published" 3 (List.length !quota_events)

let test_mm_quota_shrink_evicts () =
  let _, _, mm = make_mm ~fast_capacity:4 () in
  let promote page =
    ignore (Gr_kernel.Mm.access mm ~page : Time_ns.t);
    ignore (Gr_kernel.Mm.access mm ~page : Time_ns.t)
  in
  promote 1;
  promote 2;
  promote 3;
  check_int "three resident" 3 (Gr_kernel.Mm.fast_occupancy mm);
  ignore (Gr_kernel.Mm.advise_quota mm ~requested:1 = `Applied 1 : bool);
  check_int "evicted to quota" 1 (Gr_kernel.Mm.fast_occupancy mm)

(* ---------- Cache ---------- *)

let test_cache_lru () =
  let hooks = Gr_kernel.Hooks.create () in
  let c = Gr_kernel.Cache.create ~hooks ~capacity:2 in
  check_bool "miss 1" false (Gr_kernel.Cache.access c ~key:1);
  check_bool "miss 2" false (Gr_kernel.Cache.access c ~key:2);
  check_bool "hit 1" true (Gr_kernel.Cache.access c ~key:1);
  (* 2 is now LRU; inserting 3 evicts it. *)
  check_bool "miss 3" false (Gr_kernel.Cache.access c ~key:3);
  check_bool "2 evicted" false (Gr_kernel.Cache.contains c ~key:2);
  check_bool "1 kept" true (Gr_kernel.Cache.contains c ~key:1)

let test_cache_hit_rate_and_reset () =
  let hooks = Gr_kernel.Hooks.create () in
  let c = Gr_kernel.Cache.create ~hooks ~capacity:4 in
  ignore (Gr_kernel.Cache.access c ~key:1 : bool);
  ignore (Gr_kernel.Cache.access c ~key:1 : bool);
  check_bool "hit rate 1/2" true (Float.abs (Gr_kernel.Cache.hit_rate c -. 0.5) < 1e-9);
  Gr_kernel.Cache.reset_stats c;
  check_int "stats reset" 0 (Gr_kernel.Cache.accesses c)

let test_cache_bogus_victim_falls_back () =
  let hooks = Gr_kernel.Hooks.create () in
  let c = Gr_kernel.Cache.create ~hooks ~capacity:2 in
  Gr_kernel.Policy_slot.install (Gr_kernel.Cache.slot c) ~name:"bogus"
    { Gr_kernel.Cache.policy_name = "bogus"; choose_victim = (fun ~candidates:_ -> 424242) };
  ignore (Gr_kernel.Cache.access c ~key:1 : bool);
  ignore (Gr_kernel.Cache.access c ~key:2 : bool);
  ignore (Gr_kernel.Cache.access c ~key:3 : bool);
  check_int "size stays at capacity" 2 (Gr_kernel.Cache.size c);
  check_bool "victim was real LRU" false (Gr_kernel.Cache.contains c ~key:1)

let test_cache_policies_ordering_on_zipf () =
  (* LRU must beat random, and random must beat MRU, on a zipfian
     workload — the quality ordering P4 relies on. *)
  let run policy =
    let rng = Rng.create 33 in
    let hooks = Gr_kernel.Hooks.create () in
    let c = Gr_kernel.Cache.create ~hooks ~capacity:64 in
    (match policy with
    | None -> ()
    | Some p ->
      Gr_kernel.Policy_slot.install (Gr_kernel.Cache.slot c) ~name:p.Gr_kernel.Cache.policy_name p);
    let zipf = Rng.Zipf.create ~n:1024 ~s:1.1 in
    for _ = 1 to 20_000 do
      ignore (Gr_kernel.Cache.access c ~key:(Rng.Zipf.sample zipf rng) : bool)
    done;
    Gr_kernel.Cache.hit_rate c
  in
  let lru = run None in
  let rnd = run (Some (Gr_kernel.Cache.random (Rng.create 44))) in
  let mru = run (Some Gr_policy.Inject.mru_eviction) in
  check_bool "lru > random" true (lru > rnd);
  check_bool "random > mru" true (rnd > mru)

let suite =
  [
    ( "kernel.hooks",
      [
        Alcotest.test_case "fire and count" `Quick test_hooks_fire_and_count;
        Alcotest.test_case "subscription order" `Quick test_hooks_subscription_order;
        Alcotest.test_case "unsubscribe" `Quick test_hooks_unsubscribe;
      ] );
    ( "kernel.policy_slot",
      [
        Alcotest.test_case "lifecycle" `Quick test_slot_lifecycle;
        Alcotest.test_case "registry" `Quick test_registry;
      ] );
    ( "kernel.ssd",
      [
        Alcotest.test_case "latency positive" `Quick test_ssd_latency_positive_and_fastish;
        Alcotest.test_case "GC inflates latency" `Quick test_ssd_gc_inflates_latency;
        Alcotest.test_case "GC duty cycle" `Quick test_ssd_gc_duty_cycle;
        Alcotest.test_case "queue depth penalty" `Quick test_ssd_queue_depth_penalty;
        Alcotest.test_case "history features" `Quick test_ssd_history;
      ] );
    ( "kernel.blk",
      [
        Alcotest.test_case "needs two devices" `Quick test_blk_needs_two_devices;
        Alcotest.test_case "completion via engine" `Quick test_blk_completion_via_engine;
        Alcotest.test_case "hedge caps slow I/Os" `Quick test_blk_hedge_caps_slow_ios;
        Alcotest.test_case "trust counts false submits" `Quick
          test_blk_trust_primary_counts_false_submits;
        Alcotest.test_case "revoke counts false revokes" `Quick
          test_blk_revoke_now_counts_false_revokes;
        Alcotest.test_case "counterfactual published" `Quick test_blk_counterfactual_published;
        Alcotest.test_case "feature shape" `Quick test_blk_features_shape;
        Alcotest.test_case "hooks published" `Quick test_blk_hooks_published;
      ] );
    ( "kernel.sched",
      [
        Alcotest.test_case "completes tasks" `Quick test_sched_completes_tasks;
        Alcotest.test_case "fair sharing" `Quick test_sched_fair_sharing;
        Alcotest.test_case "weighted sharing" `Quick test_sched_weighted_sharing;
        Alcotest.test_case "starvation accounting" `Quick test_sched_starvation_accounting;
        Alcotest.test_case "deprioritize and kill" `Quick test_sched_deprioritize_and_kill;
        Alcotest.test_case "received by class" `Quick test_sched_received_by_class;
        Alcotest.test_case "SMP parallelism" `Quick test_sched_smp_parallelism;
        Alcotest.test_case "wasted cores + rebalance" `Quick
          test_sched_wasted_cores_detection_and_rebalance;
        Alcotest.test_case "single CPU never wastes" `Quick test_sched_single_cpu_never_wastes;
        Alcotest.test_case "bogus balancer clamped" `Quick test_sched_bogus_balancer_clamped;
      ] );
    ( "kernel.mm",
      [
        Alcotest.test_case "second-touch promotion" `Quick test_mm_second_touch_promotion;
        Alcotest.test_case "LRU eviction" `Quick test_mm_lru_eviction_on_capacity;
        Alcotest.test_case "hit fraction" `Quick test_mm_hit_fraction;
        Alcotest.test_case "quota bounds" `Quick test_mm_quota;
        Alcotest.test_case "quota shrink evicts" `Quick test_mm_quota_shrink_evicts;
      ] );
    ( "kernel.cache",
      [
        Alcotest.test_case "LRU semantics" `Quick test_cache_lru;
        Alcotest.test_case "hit rate and reset" `Quick test_cache_hit_rate_and_reset;
        Alcotest.test_case "bogus victim falls back" `Quick test_cache_bogus_victim_falls_back;
        Alcotest.test_case "policy quality ordering" `Slow test_cache_policies_ordering_on_zipf;
      ] );
  ]
