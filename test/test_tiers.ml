(* Tier-selection edge cases for the tiered execution engine:

   - the --engine CLI knob rejects garbage with exit 2 and a single
     diagnostic line (no usage dump, no backtrace);
   - Engine.install honors the requested tier, and the JIT declines
     programs whose keys resolve to sharded (fleet-merged) reads —
     falling back to the register tier, never to an error;
   - re-installing a monitor under a different tier keeps the store's
     aggregate demands refcounted correctly: shapes shared across
     installs survive a partial uninstall, and a full uninstall
     releases them. *)

module Store = Gr_runtime.Feature_store
module Vm = Gr_runtime.Vm
module Engine = Gr_runtime.Engine
module D = Guardrails.Deployment
module Fleet = Guardrails.Fleet
module Time_ns = Gr_util.Time_ns

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* CLI: --engine validation                                           *)
(* ------------------------------------------------------------------ *)

let grc_exe () =
  List.find_opt Sys.file_exists [ "../bin/grc.exe"; "_build/default/bin/grc.exe" ]

let with_spec_file body =
  let path = Filename.temp_file "grc-tiers" ".grd" in
  let oc = open_out path in
  output_string oc
    {|guardrail tiers_cli { trigger: { TIMER(0, 100ms) } rule: { LOAD(x) <= 1 } action: { REPORT("hi") } }|};
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let test_engine_flag_garbage () =
  match grc_exe () with
  | None -> Alcotest.fail "grc.exe not found next to the test runner"
  | Some grc ->
    with_spec_file (fun spec ->
        let err = Filename.temp_file "grc-tiers" ".err" in
        Fun.protect
          ~finally:(fun () -> Sys.remove err)
          (fun () ->
            let code =
              Sys.command
                (Printf.sprintf "%s run %s --engine turbo >/dev/null 2>%s" grc spec err)
            in
            check_int "garbage --engine exits 2" 2 code;
            let ic = open_in err in
            let lines = ref [] in
            (try
               while true do
                 lines := input_line ic :: !lines
               done
             with End_of_file -> ());
            close_in ic;
            check_int "diagnostic is a single line" 1 (List.length !lines);
            check_int "soak rejects garbage --engine too" 2
              (Sys.command
                 (Printf.sprintf
                    "%s soak --scenario store --seed 1 --duration 0.05 --engine warp \
                     >/dev/null 2>&1"
                    grc))))

let test_engine_flag_accepted () =
  match grc_exe () with
  | None -> Alcotest.fail "grc.exe not found next to the test runner"
  | Some grc ->
    with_spec_file (fun spec ->
        List.iter
          (fun tier ->
            check_int
              (Printf.sprintf "run --engine %s exits 0" tier)
              0
              (Sys.command
                 (Printf.sprintf "%s run %s --until 0.2 --engine %s >/dev/null 2>&1" grc spec
                    tier)))
          [ "tree"; "reg"; "jit" ])

(* ------------------------------------------------------------------ *)
(* Engine.install: tier selection and the sharded-store fallback      *)
(* ------------------------------------------------------------------ *)

let avg_source =
  {|guardrail tiers_avg { trigger: { TIMER(0, 100ms) } rule: { AVG(lat, 1s) <= 100 } action: { REPORT("slow") } }|}

let compile_one src =
  match Guardrails.Compile.source src with
  | Ok [ m ] -> m
  | Ok _ -> Alcotest.fail "expected one monitor"
  | Error e -> Alcotest.failf "compile: %a" Guardrails.Compile.pp_error e

let test_requested_tier_honored () =
  let kernel = Gr_kernel.Kernel.create ~seed:11 in
  let d = D.create ~kernel () in
  let engine = D.engine d in
  Alcotest.check
    (Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (Vm.tier_to_string t)) ( = ))
    "deployment default is the JIT" Vm.Jit (Engine.default_tier engine);
  List.iter
    (fun tier ->
      match Engine.install ~engine:tier engine (compile_one avg_source) with
      | Error msgs -> Alcotest.failf "install failed: %s" (String.concat "; " msgs)
      | Ok h ->
        if Engine.tier h <> tier then
          Alcotest.failf "requested %s, got %s" (Vm.tier_to_string tier)
            (Vm.tier_to_string (Engine.tier h));
        ignore (Engine.check_now engine h : bool);
        Engine.uninstall engine h)
    [ Vm.Tree; Vm.Reg; Vm.Jit ]

let test_jit_falls_back_on_sharded_store () =
  (* A fleet's control store reads plain keys as the cross-shard
     merged view — no handle fast path, so a JIT request must come
     back as the register tier, not an error. Node stores are
     unsharded: their monitors keep the JIT. *)
  let fleet = Fleet.create ~nodes:2 ~seed:3 () in
  (match Fleet.install_source fleet avg_source with
  | Error e -> Alcotest.failf "fleet install: %a" D.pp_error e
  | Ok [ h ] ->
    if Engine.tier h <> Vm.Reg then
      Alcotest.failf "fleet monitor should fall back to reg, got %s"
        (Vm.tier_to_string (Engine.tier h))
  | Ok _ -> Alcotest.fail "expected one handle");
  match D.install_source (Fleet.node fleet 0) avg_source with
  | Error e -> Alcotest.failf "node install: %a" D.pp_error e
  | Ok [ h ] ->
    if Engine.tier h <> Vm.Jit then
      Alcotest.failf "node monitor should keep the JIT, got %s"
        (Vm.tier_to_string (Engine.tier h))
  | Ok _ -> Alcotest.fail "expected one handle"

(* ------------------------------------------------------------------ *)
(* Re-install across tiers: demand refcounts                          *)
(* ------------------------------------------------------------------ *)

let test_reinstall_preserves_demands () =
  let kernel = Gr_kernel.Kernel.create ~seed:5 in
  let d = D.create ~kernel () in
  let engine = D.engine d and store = D.store d in
  D.save d "lat" 42.;
  check_int "no demands before install" 0 (Store.demand_count store);
  let install tier =
    match Engine.install ~engine:tier engine (compile_one avg_source) with
    | Ok h -> h
    | Error msgs -> Alcotest.failf "install: %s" (String.concat "; " msgs)
  in
  let h_jit = install Vm.Jit in
  check_int "one demand after first install" 1 (Store.demand_count store);
  (* same aggregate shape from a second monitor on another tier:
     refcounted, not duplicated *)
  let h_tree = install Vm.Tree in
  check_int "shared shape still one demand" 1 (Store.demand_count store);
  Engine.uninstall engine h_jit;
  check_int "demand survives partial uninstall" 1 (Store.demand_count store);
  (* the surviving monitor still takes the streaming path *)
  let hits_before = Store.agg_hit_count store in
  ignore (Engine.check_now engine h_tree : bool);
  if Store.agg_hit_count store <= hits_before then
    Alcotest.fail "surviving monitor no longer streams its aggregate";
  Engine.uninstall engine h_tree;
  check_int "full uninstall releases the demand" 0 (Store.demand_count store);
  (* tier switching round-trip: reinstall under each tier in turn;
     the demand comes back and the verdict is tier-invariant *)
  let verdicts =
    List.map
      (fun tier ->
        let h = install tier in
        check_int "reinstall re-registers the demand" 1 (Store.demand_count store);
        let v = Engine.check_now engine h in
        Engine.uninstall engine h;
        check_int "uninstall releases again" 0 (Store.demand_count store);
        v)
      [ Vm.Tree; Vm.Reg; Vm.Jit ]
  in
  match verdicts with
  | [ a; b; c ] ->
    if not (a = b && b = c) then Alcotest.failf "verdicts differ across tiers: %b %b %b" a b c
  | _ -> assert false

let suite =
  [
    ( "tiers",
      [
        Alcotest.test_case "grc --engine rejects garbage with exit 2, one line" `Quick
          test_engine_flag_garbage;
        Alcotest.test_case "grc --engine accepts tree/reg/jit" `Quick test_engine_flag_accepted;
        Alcotest.test_case "install honors the requested tier" `Quick test_requested_tier_honored;
        Alcotest.test_case "JIT falls back to reg on sharded stores" `Quick
          test_jit_falls_back_on_sharded_store;
        Alcotest.test_case "re-install across tiers preserves demand refcounts" `Quick
          test_reinstall_preserves_demands;
      ] );
  ]
