(* Tests for the file read path / readahead substrate and the learned
   readahead policy. *)

open Gr_util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_fs ?(cache_pages = 64) () =
  let hooks = Gr_kernel.Hooks.create () in
  (hooks, Gr_kernel.Fs.create ~hooks ~cache_pages ())

(* Drives [n] accesses: sequential runs of [run] pages, then a random
   seek. Returns the hit rate. *)
let drive fs ~rng ~n ~run =
  Gr_kernel.Fs.reset_stats fs;
  let offset = ref 0 and left = ref 0 in
  for _ = 1 to n do
    if !left = 0 then begin
      offset := Rng.int rng 60_000;
      left := run
    end
    else incr offset;
    decr left;
    ignore (Gr_kernel.Fs.read fs ~offset:!offset : bool)
  done;
  Gr_kernel.Fs.hit_rate fs

let test_sequential_doubling_hits_on_streams () =
  let _, fs = make_fs () in
  let rng = Rng.create 1 in
  let hit_rate = drive fs ~rng ~n:20_000 ~run:64 in
  check_bool "long sequential runs mostly hit" true (hit_rate > 0.7)

let test_no_readahead_on_random () =
  let _, fs = make_fs () in
  let rng = Rng.create 2 in
  let hit_rate = drive fs ~rng ~n:5_000 ~run:1 in
  (* Pure random over 64k pages with a 64-page cache: ~0 hits, and
     the heuristic must not prefetch on seeks. *)
  check_bool "random access misses" true (hit_rate < 0.05);
  check_int "no wasted prefetches on pure seeks" 0 (Gr_kernel.Fs.prefetched fs)

let test_cache_bounded () =
  let _, fs = make_fs ~cache_pages:32 () in
  let rng = Rng.create 3 in
  ignore (drive fs ~rng ~n:10_000 ~run:16 : float);
  check_bool "occupancy bounded" true (Gr_kernel.Fs.cache_occupancy fs <= 32)

let test_readahead_hook_published () =
  let hooks, fs = make_fs () in
  let requests = ref [] in
  ignore
    (Gr_kernel.Hooks.subscribe hooks "fs:readahead" (fun args ->
         requests := List.assoc "requested" args :: !requests)
      : Gr_kernel.Hooks.subscription);
  (* A short sequential run: misses publish readahead requests. *)
  for i = 0 to 9 do
    ignore (Gr_kernel.Fs.read fs ~offset:i : bool)
  done;
  check_bool "hook fired on misses" true (List.length !requests > 0)

let test_oversized_request_evicts () =
  let hooks, fs = make_fs ~cache_pages:32 () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Fs.slot fs) ~name:"greedy"
    { Gr_kernel.Fs.policy_name = "greedy"; window = (fun _ -> 100) };
  let over_limit = ref 0 in
  ignore
    (Gr_kernel.Hooks.subscribe hooks "fs:readahead" (fun args ->
         if List.assoc "requested" args > List.assoc "limit" args then incr over_limit)
      : Gr_kernel.Hooks.subscription);
  ignore (Gr_kernel.Fs.read fs ~offset:0 : bool);
  check_bool "over-limit request observable" true (!over_limit > 0);
  check_bool "cache still bounded" true (Gr_kernel.Fs.cache_occupancy fs <= 32)

let test_learned_beats_doubling_on_long_runs () =
  let rng = Rng.create 4 in
  let model = Gr_policy.Readahead.train ~rng ~mean_run:48. () in
  let _, fs_heuristic = make_fs ~cache_pages:128 () in
  let _, fs_learned = make_fs ~cache_pages:128 () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Fs.slot fs_learned) ~name:"learned-readahead"
    (Gr_policy.Readahead.policy model);
  let h = drive fs_heuristic ~rng:(Rng.create 5) ~n:20_000 ~run:48 in
  let l = drive fs_learned ~rng:(Rng.create 5) ~n:20_000 ~run:48 in
  check_bool
    (Printf.sprintf "learned (%.2f) >= heuristic (%.2f) on long runs" l h)
    true (l >= h -. 0.02)

let test_learned_backs_off_on_seeks () =
  let rng = Rng.create 6 in
  let model = Gr_policy.Readahead.train ~rng () in
  check_int "no window after a seek" 0
    (Gr_policy.Readahead.predict_window model ~delta:37. ~run:0. ~occupancy:0.5);
  check_bool "window mid-run" true
    (Gr_policy.Readahead.predict_window model ~delta:1. ~run:5. ~occupancy:0.5 > 0)

let test_inject_scale_goes_out_of_bounds () =
  let rng = Rng.create 7 in
  let model = Gr_policy.Readahead.train ~rng () in
  let sane = Gr_policy.Readahead.predict_window model ~delta:1. ~run:8. ~occupancy:0.5 in
  Gr_policy.Readahead.inject_scale model 50.;
  let drifted = Gr_policy.Readahead.predict_window model ~delta:1. ~run:8. ~occupancy:0.5 in
  check_bool "drifted window much larger" true (drifted > 10 * max 1 sane);
  Gr_policy.Readahead.retrain model ~mean_run:24.;
  check_int "retrain resets the scale" sane
    (let w = Gr_policy.Readahead.predict_window model ~delta:1. ~run:8. ~occupancy:0.5 in
     (* retrained model differs slightly; just require sanity *)
     if w > 0 && w < 4 * max 1 sane then sane else w)

let test_p3_guardrail_catches_oversized_readahead () =
  let kernel = Gr_kernel.Kernel.create ~seed:8 in
  let d = Guardrails.Deployment.create ~kernel () in
  let fs = Gr_kernel.Fs.create ~hooks:kernel.hooks ~cache_pages:64 () in
  let model = Gr_policy.Readahead.train ~rng:kernel.rng () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Fs.slot fs) ~name:"learned-readahead"
    (Gr_policy.Readahead.policy model);
  Guardrails.Deployment.forward_hook_arg d ~hook:"fs:readahead" ~arg:"requested"
    ~key:"readahead_req" ();
  let src =
    Gr_props.Props.P3_output_bounds.source ~name:"p3-readahead" ~hook:"fs:readahead"
      ~key:"readahead_req" ~lo:0. ~hi:64.
      ~actions:[ {|REPORT("prefetch beyond the memory limit", readahead_req)|} ]
      ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  let stats () = Guardrails.Engine.Stats.get (Guardrails.Deployment.engine d) h in
  let run_some () =
    for i = 0 to 99 do
      ignore (Gr_kernel.Fs.read fs ~offset:(1000 + i) : bool)
    done
  in
  run_some ();
  check_int "honest windows pass" 0 (stats ()).violations;
  Gr_policy.Readahead.inject_scale model 50.;
  run_some ();
  check_bool "oversized prefetch caught" true ((stats ()).violations > 0)

let suite =
  [
    ( "kernel.fs",
      [
        Alcotest.test_case "doubling hits on streams" `Quick
          test_sequential_doubling_hits_on_streams;
        Alcotest.test_case "no readahead on random" `Quick test_no_readahead_on_random;
        Alcotest.test_case "cache bounded" `Quick test_cache_bounded;
        Alcotest.test_case "readahead hook" `Quick test_readahead_hook_published;
        Alcotest.test_case "oversized request observable" `Quick test_oversized_request_evicts;
      ] );
    ( "policy.readahead",
      [
        Alcotest.test_case "learned competitive on long runs" `Slow
          test_learned_beats_doubling_on_long_runs;
        Alcotest.test_case "backs off on seeks" `Quick test_learned_backs_off_on_seeks;
        Alcotest.test_case "inject scale" `Quick test_inject_scale_goes_out_of_bounds;
        Alcotest.test_case "P3 guardrail catches oversizing" `Quick
          test_p3_guardrail_catches_oversized_readahead;
      ] );
  ]
