(* Parallel fleet execution (docs/PARALLEL.md): the epoch-barrier
   protocol's determinism contract, the domain pool, and the
   splittable RNG it is seeded from.

   The load-bearing assertions are the differential ones: a fleet
   under --domains K must produce the same REPORTs, actions and
   merged-store contents as the sequential shared-heap path for every
   K, and identical traces for any two parallel K. The sequential and
   parallel paths schedule internal bookkeeping differently (shared
   vs per-node heaps, shared vs strided span counters), so seq-vs-par
   trace comparison normalizes provenance away; par-vs-par comparison
   is byte-exact. *)

open Gr_util
module Fleet = Guardrails.Fleet
module D = Guardrails.Deployment
module Store = Gr_runtime.Feature_store
module Event = Gr_trace.Event
module Sink = Gr_trace.Sink
module Tracer = Gr_trace.Tracer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Pool ---------- *)

let test_pool_runs_all_tasks () =
  List.iter
    (fun domains ->
      Gr_sim.Pool.with_pool ~domains (fun pool ->
          check_int "size" domains (Gr_sim.Pool.size pool);
          let n = 100 in
          let hits = Array.make n 0 in
          (* Tasks only write their own slot; the barrier publishes. *)
          Gr_sim.Pool.run pool (fun i -> hits.(i) <- hits.(i) + 1) n;
          Array.iteri (fun i h -> check_int (Printf.sprintf "task %d ran once" i) 1 h) hits;
          (* The pool is reusable round after round. *)
          Gr_sim.Pool.run pool (fun i -> hits.(i) <- hits.(i) + 1) n;
          check_int "second round" 2 hits.(0)))
    [ 1; 2; 4 ]

let test_pool_propagates_lowest_error () =
  Gr_sim.Pool.with_pool ~domains:3 (fun pool ->
      match Gr_sim.Pool.run pool (fun i -> if i >= 5 then failwith (string_of_int i)) 32 with
      | () -> Alcotest.fail "expected the round to raise"
      | exception Failure msg -> check_int "lowest failing index surfaces" 5 (int_of_string msg))

(* ---------- Rng.split ---------- *)

let test_rng_split_pure_and_indexed () =
  let parent = Rng.create 42 in
  let a = Rng.split parent 0 in
  let b = Rng.split parent 1 in
  let a' = Rng.split parent 0 in
  (* Pure: deriving any number of streams never perturbs the parent or
     each other; same (state, index) -> same stream. *)
  check_bool "same index, same stream" true (Rng.int64 a = Rng.int64 a');
  check_bool "distinct indices, distinct streams" true (Rng.int64 a <> Rng.int64 b);
  let parent2 = Rng.create 42 in
  ignore (Rng.int64 parent : int64);
  check_bool "split depends on parent state" true
    (Rng.int64 (Rng.split parent 7) <> Rng.int64 (Rng.split parent2 7));
  (* fork (the historical split) still advances the parent. *)
  let p = Rng.create 9 and q = Rng.create 9 in
  ignore (Rng.fork p : Rng.t);
  check_bool "fork advances the parent" true (Rng.int64 p <> Rng.int64 q)

(* ---------- Differential fleet workload ---------- *)

(* Epoch-compatible by construction (docs/PARALLEL.md): node feeders
   run at prime-microsecond cadences so no node event ever ties with a
   control TIMER tick or an epoch boundary, and all monitors live on
   the control engine. *)
let monitors =
  {|guardrail par_lat { trigger: { TIMER(0, 100ms) } rule: { AVG(lat, 1s) <= 55 } action: { REPORT("lat high", lat) } }
    guardrail par_beacon { trigger: { ON_CHANGE(GLOBAL(beacon)) } rule: { COUNT(GLOBAL(beacon), 1s) <= 5 } action: { REPORT("beacon burst", GLOBAL(beacon)) } }
    guardrail par_replace { trigger: { TIMER(0, 500ms) } rule: { AVG(lat, 1s) <= 10 } action: { REPLACE("dummy_policy") } }|}

let build ~nodes ~domains ~seed =
  let fleet = Fleet.create ~nodes ~seed ~tracing:true ~domains ~epoch:(Time_ns.ms 50) () in
  Array.iteri
    (fun i node ->
      let kernel = D.kernel node in
      let rng = kernel.Gr_kernel.Kernel.rng in
      D.derive_periodic node ~key:"lat"
        ~every:(Time_ns.us (7919 + (1009 * i)))
        (fun () -> Rng.float rng 100.);
      (* Every third node also publishes a fleet-global beacon — the
         cross-domain save the intent buffer exists for. *)
      if i mod 3 = 0 then
        D.derive_periodic node
          ~key:(Gr_dsl.Ast.global_key "beacon")
          ~every:(Time_ns.us 149993)
          (fun () -> Rng.float rng 10.);
      Gr_kernel.Policy_slot.Registry.register kernel.Gr_kernel.Kernel.registry "dummy_policy"
        { replace = (fun () -> ()); restore = (fun () -> ()); retrain = (fun () -> ()) })
    (Fleet.nodes fleet);
  ignore (Fleet.install_source_exn fleet monitors : Gr_runtime.Engine.handle list);
  fleet

let run fleet = Fleet.run_until fleet (Time_ns.sec 1)

(* Observable state: violation log rendered to strings, fleet action
   counters, merged aggregates, global-tier loads. *)
let observables fleet =
  let engine = Fleet.engine fleet in
  let violations =
    List.map
      (fun (v : Gr_runtime.Engine.violation_record) ->
        Printf.sprintf "%s@%d:%s[%s]" v.monitor v.at v.message
          (String.concat ";"
             (List.map (fun (k, x) -> Printf.sprintf "%s=%h" k x) v.snapshot)))
      (Gr_runtime.Engine.violations engine)
  in
  let agg fn param =
    Store.aggregate (Fleet.store fleet) ~key:"lat" ~fn ~window_ns:1e9 ~param
  in
  ( violations,
    (Fleet.replaces fleet, Fleet.restores fleet, Fleet.retrains fleet),
    ( agg Gr_dsl.Ast.Avg 0.,
      agg Gr_dsl.Ast.Count 0.,
      agg Gr_dsl.Ast.Max 0.,
      agg Gr_dsl.Ast.Quantile 0.9 ),
    Fleet.load_global fleet "beacon" )

(* Trace normalization for seq-vs-par: drop sim dispatch bookkeeping
   (the two modes dispatch from different heaps) and provenance args
   (span ids are shared-counter vs strided), keep everything
   observable: timestamps, names, categories, payloads. *)
let normalized_events tracer =
  List.filter_map
    (fun (e : Event.t) ->
      if e.cat = "sim" then None
      else
        Some
          ( e.ts,
            e.cat,
            e.name,
            Event.phase_to_string e.ph,
            List.filter (fun (k, _) -> k <> "span" && k <> "parent") e.args ))
    (Sink.to_list (Tracer.events tracer))

let channels fleet =
  Fleet.tracer fleet :: Array.to_list (Array.map D.tracer (Fleet.nodes fleet))

let test_par_matches_sequential () =
  let seq = build ~nodes:4 ~domains:1 ~seed:11 in
  let par = build ~nodes:4 ~domains:4 ~seed:11 in
  check_int "seq mode reports domains=1" 1 (Fleet.domains seq);
  check_int "par mode reports its domain count" 4 (Fleet.domains par);
  run seq;
  run par;
  let vs, acts_s, aggs_s, gs = observables seq in
  let vp, acts_p, aggs_p, gp = observables par in
  check_int "same number of violations" (List.length vs) (List.length vp);
  List.iter2 (fun a b -> Alcotest.(check string) "violation record" a b) vs vp;
  check_bool "same fleet action counts" true (acts_s = acts_p);
  check_bool "same merged aggregates" true (aggs_s = aggs_p);
  check_bool "same global-tier value" true (gs = gp);
  List.iter2
    (fun ts tp ->
      let es = normalized_events ts and ep = normalized_events tp in
      check_int "same observable event count" (List.length es) (List.length ep);
      check_bool "same observable events" true (es = ep))
    (channels seq) (channels par)

let test_par_domain_count_invariant () =
  (* Any two parallel domain counts: byte-identical traces, span ids
     included — the strided channels depend on topology, not K. *)
  let a = build ~nodes:4 ~domains:2 ~seed:23 in
  let b = build ~nodes:4 ~domains:3 ~seed:23 in
  run a;
  run b;
  let oa = observables a and ob = observables b in
  check_bool "identical observables" true (oa = ob);
  List.iter2
    (fun ta tb ->
      Alcotest.(check string)
        "byte-identical trace channel"
        (Gr_trace.Export.chrome_string ta)
        (Gr_trace.Export.chrome_string tb))
    (channels a) (channels b)

let test_par_span_channels_disjoint () =
  let fleet = build ~nodes:3 ~domains:2 ~seed:5 in
  run fleet;
  let stride = 4 in
  List.iteri
    (fun channel tracer ->
      Sink.iter
        (fun (e : Event.t) ->
          match List.assoc_opt "span" e.Event.args with
          | Some (Event.Int id) ->
            check_int
              (Printf.sprintf "span %d on channel %d" id channel)
              channel (id mod stride)
          | _ -> ())
        (Tracer.events tracer))
    (channels fleet)

let test_par_epoch_validation () =
  (match Fleet.create ~nodes:2 ~seed:1 ~domains:2 ~epoch:Time_ns.zero () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "epoch 0 must be rejected");
  (* Domain counts are clamped to the node count. *)
  let fleet = Fleet.create ~nodes:2 ~seed:1 ~domains:16 () in
  check_int "domains clamped to nodes" 2 (Fleet.domains fleet)

let test_run_epochs_barrier_hook () =
  let fleet = build ~nodes:2 ~domains:2 ~seed:3 in
  let boundaries = ref [] in
  Fleet.run_epochs fleet (Time_ns.ms 220) ~on_barrier:(fun b -> boundaries := b :: !boundaries);
  (* 50ms epochs over 220ms: barriers at 50/100/150/200/220. *)
  check_bool "barriers at every epoch boundary" true
    (List.rev !boundaries
    = [ Time_ns.ms 50; Time_ns.ms 100; Time_ns.ms 150; Time_ns.ms 200; Time_ns.ms 220 ]);
  (* The control clock sits exactly at the limit afterwards. *)
  check_bool "clock at limit" true (Gr_sim.Engine.now (Fleet.sim fleet) = Time_ns.ms 220)

(* ---------- QCheck: epoch-buffered GLOBAL saves ---------- *)

(* The protocol's core algebraic claim: deferring a stream of global
   saves to epoch barriers — replayed at their original timestamps in
   (time, node, local-order) order — is indistinguishable, at every
   barrier, from applying the same interleaving immediately. Windows
   and expiry make this non-trivial: replay happens with the clock
   rewound per-intent, then advanced to the boundary. *)
let epoch_buffer_equiv =
  let open QCheck2 in
  let gen =
    Gen.(
      let* n_nodes = 1 -- 4 in
      let* saves =
        list_size (1 -- 60)
          (triple (0 -- 2999) (0 -- (n_nodes - 1)) (float_bound_inclusive 100.))
      in
      return (n_nodes, saves))
  in
  Test.make ~name:"epoch-buffered GLOBAL saves = sequential interleaving" ~count:200 gen
    (fun (_, saves) ->
      (* One global ordered stream, ms timestamps in [0, 3 epochs),
         tie-broken by node then arrival — the drain's merge order. *)
      let saves =
        List.stable_sort (fun (ta, na, _) (tb, nb, _) -> compare (ta, na) (tb, nb)) saves
      in
      let epoch_ms = 1000 in
      let key = Gr_dsl.Ast.global_key "g" in
      let mk () =
        let clock_ms = ref 0 in
        (Store.create ~clock:(fun () -> Time_ns.ms !clock_ms) (), clock_ms)
      in
      let immediate, im_clock = mk () in
      let buffered, buf_clock = mk () in
      let shapes =
        Gr_dsl.Ast.[ (Avg, 0.); (Count, 0.); (Sum, 0.); (Min, 0.); (Max, 0.);
                     (Stddev, 0.); (Rate, 0.); (Delta, 0.); (Quantile, 0.5) ]
      in
      let read store (fn, param) =
        Store.aggregate store ~key ~fn ~window_ns:(float_of_int (epoch_ms * 1_000_000))
          ~param
      in
      let boundaries = [ epoch_ms; 2 * epoch_ms; 3 * epoch_ms ] in
      List.for_all
        (fun boundary ->
          let lo = boundary - epoch_ms in
          let batch =
            List.filter (fun (t, _, _) -> t >= lo && t < boundary) saves
          in
          (* Immediate: clock tracks each save as it happens. *)
          List.iter
            (fun (t, _, v) ->
              im_clock := t;
              Store.save immediate key v)
            batch;
          im_clock := boundary;
          (* Buffered: the same saves arrive only now, replayed with
             the clock rewound to each original timestamp. *)
          List.iter
            (fun (t, _, v) ->
              buf_clock := t;
              Store.save buffered key v)
            batch;
          buf_clock := boundary;
          List.for_all
            (fun shape ->
              let a = read immediate shape and b = read buffered shape in
              (Float.is_nan a && Float.is_nan b) || a = b)
            shapes
          && Store.load immediate key = Store.load buffered key)
        boundaries)

(* ------------------------------------------------------------------ *)
(* grc --domains CLI surface                                          *)
(* ------------------------------------------------------------------ *)

let grc_exe () =
  List.find_opt Sys.file_exists [ "../bin/grc.exe"; "_build/default/bin/grc.exe" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let test_grc_domains_cli () =
  match grc_exe () with
  | None -> Alcotest.fail "grc.exe not found next to the test runner"
  | Some grc ->
    let spec = Filename.temp_file "grc-par" ".grd" in
    let oc = open_out spec in
    output_string oc
      {|guardrail par-cli {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(x, 1s) <= 1e9 },
  action: { REPORT("never", x) }
}
|};
    close_out oc;
    let ta = Filename.temp_file "grc-par-a" ".json" in
    let tb = Filename.temp_file "grc-par-b" ".json" in
    let tc = Filename.temp_file "grc-par-c" ".json" in
    Fun.protect
      ~finally:(fun () -> List.iter Sys.remove [ spec; ta; tb; tc ])
      (fun () ->
        let quiet args = Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" grc args) in
        check_int "--domains 0 exits 2" 2
          (quiet (Printf.sprintf "run %s --nodes 2 --domains 0 --until 0.2" spec));
        check_int "--domains=-3 exits 2" 2
          (quiet (Printf.sprintf "run %s --nodes 2 --domains=-3 --until 0.2" spec));
        check_int "--domains six exits 2" 2
          (quiet (Printf.sprintf "run %s --nodes 2 --domains six --until 0.2" spec));
        check_int "--domains auto exits 0" 0
          (quiet (Printf.sprintf "run %s --nodes 2 --domains auto --until 0.2" spec));
        check_int "soak --domains 0 exits 2" 2
          (quiet "soak --scenario fleet --domains 0 --seed 1 --duration 0.05");
        (* The determinism contract at the CLI: --domains 1 is the
           sequential path, so its trace is byte-identical. *)
        check_int "baseline run exits 0" 0
          (quiet (Printf.sprintf "run %s --nodes 3 --until 1 --trace %s" spec ta));
        check_int "--domains 1 run exits 0" 0
          (quiet (Printf.sprintf "run %s --nodes 3 --until 1 --domains 1 --trace %s" spec tb));
        check_int "--domains 2 run exits 0" 0
          (quiet (Printf.sprintf "run %s --nodes 3 --until 1 --domains 2 --trace %s" spec tc));
        check_bool "--domains 1 trace byte-identical to sequential" true
          (read_file ta = read_file tb))

let suite =
  [
    ( "par.pool",
      [
        Alcotest.test_case "pool runs every task exactly once, reusable" `Quick
          test_pool_runs_all_tasks;
        Alcotest.test_case "pool surfaces the lowest failing task's error" `Quick
          test_pool_propagates_lowest_error;
      ] );
    ( "par.rng",
      [ Alcotest.test_case "split is pure, indexed, independent" `Quick
          test_rng_split_pure_and_indexed ] );
    ( "par.fleet",
      [
        Alcotest.test_case "parallel fleet matches sequential observables + traces" `Quick
          test_par_matches_sequential;
        Alcotest.test_case "domain count never changes the output" `Quick
          test_par_domain_count_invariant;
        Alcotest.test_case "span ids partition into per-channel residues" `Quick
          test_par_span_channels_disjoint;
        Alcotest.test_case "epoch validation and domain clamping" `Quick
          test_par_epoch_validation;
        Alcotest.test_case "run_epochs hits every barrier" `Quick test_run_epochs_barrier_hook;
        QCheck_alcotest.to_alcotest epoch_buffer_equiv;
      ] );
    ( "par.cli",
      [ Alcotest.test_case "grc --domains validation and trace determinism" `Quick
          test_grc_domains_cli ] );
  ]
