(* Tests for gr_runtime: feature store, VM, and the monitor engine. *)

open Gr_util
module Store = Gr_runtime.Feature_store
module Vm = Gr_runtime.Vm
module Engine = Gr_runtime.Engine
module Compile = Gr_compiler.Compile
module Monitor = Gr_compiler.Monitor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------- Feature store ---------- *)

let make_store () =
  let clock = ref 0 in
  let store = Store.create ~clock:(fun () -> !clock) () in
  (clock, store)

let test_store_load_default () =
  let _, store = make_store () in
  check_float "missing key loads 0" 0. (Store.load store "nope");
  check_bool "not mem" false (Store.mem store "nope")

let test_store_latest_value () =
  let clock, store = make_store () in
  Store.save store "k" 1.;
  clock := 10;
  Store.save store "k" 2.;
  check_float "latest wins" 2. (Store.load store "k");
  check_int "save count" 2 (Store.save_count store)

let test_store_window_expiry () =
  let clock, store = make_store () in
  clock := 0;
  Store.save store "k" 10.;
  clock := 1_000_000_000;
  Store.save store "k" 20.;
  clock := 1_500_000_000;
  (* Window of 1s: only the sample at t=1s is inside (t=0 is out). *)
  check_float "avg over window" 20.
    (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0.);
  check_float "count over window" 1.
    (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Count ~window_ns:1e9 ~param:0.);
  check_float "wide window sees both" 15.
    (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Avg ~window_ns:2e9 ~param:0.)

let test_store_aggregates () =
  let clock, store = make_store () in
  List.iteri
    (fun i v ->
      clock := (i + 1) * 1000;
      Store.save store "k" v)
    [ 4.; 1.; 3.; 2. ];
  let agg fn param = Store.aggregate store ~key:"k" ~fn ~window_ns:1e9 ~param in
  check_float "sum" 10. (agg Gr_dsl.Ast.Sum 0.);
  check_float "min" 1. (agg Gr_dsl.Ast.Min 0.);
  check_float "max" 4. (agg Gr_dsl.Ast.Max 0.);
  check_float "count" 4. (agg Gr_dsl.Ast.Count 0.);
  check_float "rate = sum/window_sec" 10. (agg Gr_dsl.Ast.Rate 0.);
  check_float "median" 2.5 (agg Gr_dsl.Ast.Quantile 0.5);
  check_bool "stddev" true (Float.abs (agg Gr_dsl.Ast.Stddev 0. -. Stats.stddev [| 4.; 1.; 3.; 2. |]) < 1e-9)

let test_store_empty_window_zero () =
  let _, store = make_store () in
  List.iter
    (fun fn ->
      check_float "empty aggregate is 0" 0.
        (Store.aggregate store ~key:"nope" ~fn ~window_ns:1e9 ~param:0.5))
    [ Gr_dsl.Ast.Avg; Sum; Count; Rate; Min; Max; Stddev; Quantile; Delta ]

let test_store_capacity_bounded () =
  let clock = ref 0 in
  let store = Store.create ~clock:(fun () -> !clock) ~capacity_per_key:8 () in
  for i = 1 to 100 do
    clock := i;
    Store.save store "k" (float_of_int i)
  done;
  check_float "only last 8 retained" 8.
    (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Count ~window_ns:1e9 ~param:0.)

let test_store_on_save () =
  let _, store = make_store () in
  let seen = ref [] in
  Store.on_save store (fun k v -> seen := (k, v) :: !seen);
  Store.save store "a" 1.;
  Store.save store "b" 2.;
  Alcotest.(check (list (pair string (float 0.)))) "notified in order" [ ("a", 1.); ("b", 2.) ]
    (List.rev !seen)

(* Aggregates must agree with a naive recomputation over the retained
   samples. *)
let store_aggregate_property =
  QCheck2.Test.make ~name:"store aggregates match naive reference" ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 40) (pair (int_range 0 2_000_000_000) (float_bound_inclusive 100.)))
        (oneofl [ Gr_dsl.Ast.Avg; Sum; Count; Min; Max; Stddev; Delta ]))
    (fun (samples, fn) ->
      let samples = List.sort (fun (a, _) (b, _) -> compare a b) samples in
      let clock = ref 0 in
      let store = Store.create ~clock:(fun () -> !clock) () in
      List.iter
        (fun (t, v) ->
          clock := t;
          Store.save store "k" v)
        samples;
      clock := 2_000_000_000;
      let window_ns = 1e9 in
      let inside =
        List.filter_map
          (fun (t, v) -> if float_of_int (2_000_000_000 - t) < window_ns then Some v else None)
          samples
        |> Array.of_list
      in
      let expected =
        match fn with
        | Gr_dsl.Ast.Avg -> if Array.length inside = 0 then 0. else Stats.mean inside
        | Sum -> Array.fold_left ( +. ) 0. inside
        | Count -> float_of_int (Array.length inside)
        | Min -> if Array.length inside = 0 then 0. else Array.fold_left Float.min inside.(0) inside
        | Max -> if Array.length inside = 0 then 0. else Array.fold_left Float.max inside.(0) inside
        | Stddev -> Stats.stddev inside
        | Delta -> (
          match Array.length inside with
          | 0 -> 0.
          | n -> inside.(n - 1) -. inside.(0))
        | Rate | Quantile -> 0.
      in
      let got = Store.aggregate store ~key:"k" ~fn ~window_ns ~param:0. in
      Float.abs (got -. expected) < 1e-6)

(* ---------- Incremental (demand-registered) aggregation ---------- *)

let all_aggs : Gr_dsl.Ast.agg list =
  [ Gr_dsl.Ast.Count; Sum; Rate; Avg; Min; Max; Stddev; Quantile; Delta ]

(* Exact for the order-independent functions; tolerance for the
   running-sum family, whose incremental add/subtract order differs
   from the naive left fold. *)
let agg_close (fn : Gr_dsl.Ast.agg) inc naive =
  match fn with
  | Count | Min | Max | Delta | Quantile -> inc = naive
  | Sum | Rate | Avg -> Float.abs (inc -. naive) <= 1e-6 *. Float.max 1. (Float.abs naive)
  | Stddev -> Float.abs (inc -. naive) <= 1e-4 *. Float.max 1. (Float.abs naive)

(* Randomized interleavings of saves, clock advances and checks: the
   streaming state must agree with the naive full scan (forced via the
   oracle flag on the same store, so both sides see identical samples)
   for every aggregate constructor, including ring-capacity eviction
   (small capacities) and time expiry (advances beyond the window). *)
let incremental_equivalence_property =
  let open QCheck2.Gen in
  let op =
    frequency
      [
        (4, map (fun v -> `Save v) (float_bound_inclusive 100.));
        (3, map (fun dt -> `Advance dt) (int_range 0 700_000_000));
        (2, pure `Check);
      ]
  in
  let gen =
    quad
      (oneofl all_aggs)
      (float_range 0.05 0.95)
      (oneofl [ 4; 16; 4096 ])
      (list_size (int_range 1 120) op)
  in
  QCheck2.Test.make ~name:"incremental aggregates match naive oracle" ~count:400 gen
    (fun (fn, param, capacity, ops) ->
      let param = if fn = Gr_dsl.Ast.Quantile then param else 0. in
      let clock = ref 0 in
      let store = Store.create ~clock:(fun () -> !clock) ~capacity_per_key:capacity () in
      let window_ns = 1e9 in
      Store.register_demand store ~key:"k" ~fn ~window_ns ~param;
      let ok = ref true in
      let check () =
        let inc = Store.aggregate store ~key:"k" ~fn ~window_ns ~param in
        Store.set_force_naive store true;
        let naive = Store.aggregate store ~key:"k" ~fn ~window_ns ~param in
        Store.set_force_naive store false;
        if not (agg_close fn inc naive) then ok := false
      in
      List.iter
        (function
          | `Save v -> Store.save store "k" v
          | `Advance dt -> clock := !clock + dt
          | `Check -> check ())
        ops;
      check ();
      !ok)

let test_incremental_empty_and_single () =
  List.iter
    (fun fn ->
      let clock = ref 0 in
      let store = Store.create ~clock:(fun () -> !clock) () in
      Store.register_demand store ~key:"k" ~fn ~window_ns:1e9 ~param:0.5;
      let agg () = Store.aggregate store ~key:"k" ~fn ~window_ns:1e9 ~param:0.5 in
      check_float "empty window is 0" 0. (agg ());
      Store.save store "k" 7.;
      let single = agg () in
      let expected =
        match fn with
        | Gr_dsl.Ast.Count -> 1.
        | Sum -> 7.
        | Rate -> 7.
        | Avg | Min | Max | Quantile -> 7.
        | Stddev | Delta -> 0.
      in
      check_float "single sample" expected single;
      (* Expire it: back to the empty-window result. *)
      clock := 2_000_000_000;
      check_float "expired back to 0" 0. (agg ()))
    all_aggs

let test_incremental_registration_replays () =
  (* A demand registered after samples exist must agree immediately. *)
  let clock = ref 0 in
  let store = Store.create ~clock:(fun () -> !clock) () in
  List.iteri
    (fun i v ->
      clock := (i + 1) * 1000;
      Store.save store "k" v)
    [ 4.; 1.; 3.; 2. ];
  Store.register_demand store ~key:"k" ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0.;
  Store.register_demand store ~key:"k" ~fn:Gr_dsl.Ast.Min ~window_ns:1e9 ~param:0.;
  check_float "avg replayed" 2.5 (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0.);
  check_float "min replayed" 1. (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Min ~window_ns:1e9 ~param:0.);
  check_int "both were hits" 2 (Store.agg_hit_count store)

let test_incremental_refcounting () =
  let _, store = make_store () in
  let reg () = Store.register_demand store ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0. in
  let rel () = Store.release_demand store ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0. in
  reg ();
  reg ();
  check_int "shared shape takes one slot" 1 (Store.demand_count store);
  rel ();
  check_int "survives first release" 1 (Store.demand_count store);
  ignore (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0. : float);
  check_int "still a hit" 1 (Store.agg_hit_count store);
  rel ();
  check_int "freed on last release" 0 (Store.demand_count store);
  ignore (Store.aggregate store ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0. : float);
  check_int "now a miss" 1 (Store.agg_miss_count store);
  (* Releasing a shape never registered is a no-op. *)
  Store.release_demand store ~key:"zzz" ~fn:Gr_dsl.Ast.Max ~window_ns:1e9 ~param:0.

let test_incremental_amortized_scan_cost () =
  let clock = ref 0 in
  let store = Store.create ~clock:(fun () -> !clock) () in
  Store.register_demand store ~key:"k" ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0.;
  for i = 1 to 100 do
    clock := i * 1000;
    Store.save store "k" (float_of_int i)
  done;
  let agg () = Store.aggregate_result store ~key:"k" ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0. in
  let r = agg () in
  check_bool "incremental" true r.Store.incremental;
  check_int "steady state scans nothing" 0 r.Store.scanned;
  (* Push the whole window out: one check pays the expiry... *)
  clock := 3_000_000_000;
  check_int "expiry charged once" 100 (agg ()).Store.scanned;
  (* ...and the next is O(1) again. *)
  check_int "then O(1) again" 0 (agg ()).Store.scanned

(* ---------- Fleet-tier merged aggregation ---------- *)

let make_fleet_store ~capacity ~shards:n =
  let clock = ref 0 in
  let mk () = Store.create ~clock:(fun () -> !clock) ~capacity_per_key:capacity () in
  let fleet = mk () in
  let shards = Array.init n (fun _ -> mk ()) in
  Store.set_shards fleet shards;
  Array.iter (fun s -> Store.set_global_tier s fleet) shards;
  (clock, fleet, shards)

(* The fleet analogue of [incremental_equivalence_property]: saves land
   on random shards, and every read of the fleet store — which merges
   the shards' exported streaming states — must agree with the naive
   concat-and-scan oracle over the same retained samples. Small
   capacities force ring eviction at shard boundaries; advances beyond
   the window force retirement. *)
let merge_equivalence_property =
  let open QCheck2.Gen in
  let op =
    frequency
      [
        (4, map2 (fun i v -> `Save (i, v)) (int_range 0 3) (float_bound_inclusive 100.));
        (3, map (fun dt -> `Advance dt) (int_range 0 700_000_000));
        (2, pure `Check);
      ]
  in
  let gen =
    pair
      (quad (oneofl all_aggs) (float_range 0.05 0.95) (oneofl [ 4; 16; 4096 ]) (int_range 2 4))
      (list_size (int_range 1 120) op)
  in
  QCheck2.Test.make ~name:"merged shard aggregates match naive concat-and-scan" ~count:300 gen
    (fun ((fn, param, capacity, n), ops) ->
      let param = if fn = Gr_dsl.Ast.Quantile then param else 0. in
      let clock, fleet, shards = make_fleet_store ~capacity ~shards:n in
      let window_ns = 1e9 in
      Store.register_demand fleet ~key:"k" ~fn ~window_ns ~param;
      let ok = ref true in
      let check () =
        let merged = Store.aggregate_result fleet ~key:"k" ~fn ~window_ns ~param in
        if not merged.Store.incremental then ok := false;
        Store.set_force_naive fleet true;
        let naive = Store.aggregate fleet ~key:"k" ~fn ~window_ns ~param in
        Store.set_force_naive fleet false;
        if not (agg_close fn merged.Store.value naive) then ok := false
      in
      List.iter
        (function
          | `Save (i, v) -> Store.save shards.(i mod n) "k" v
          | `Advance dt -> clock := !clock + dt
          | `Check -> check ())
        ops;
      check ();
      !ok)

let test_merge_union_laws () =
  let clock, fleet, shards = make_fleet_store ~capacity:4096 ~shards:3 in
  (* Integer-valued samples at distinct timestamps: float sums are
     exact, so unit and associativity hold structurally, not just up
     to rounding. *)
  let feed i vals =
    List.iteri
      (fun j v ->
        clock := (i * 100) + j + 1;
        Store.save shards.(i) "k" v)
      vals
  in
  feed 0 [ 4.; 9. ];
  feed 1 [ 1. ];
  feed 2 [ 7.; 2.; 5. ];
  clock := 1_000;
  let window_ns = 1e9 in
  List.iter
    (fun fn ->
      let param = if fn = Gr_dsl.Ast.Quantile then 0.5 else 0. in
      let export s = Store.export_state s ~key:"k" ~fn ~window_ns ~param in
      let a = export shards.(0) and b = export shards.(1) and c = export shards.(2) in
      let open Store.Merge in
      check_bool "empty is a left unit" true (union empty a = a);
      check_bool "empty is a right unit" true (union a empty = a);
      check_bool "union associates" true (union (union a b) c = union a (union b c));
      let folded = List.fold_left union empty [ a; b; c ] in
      Store.set_force_naive fleet true;
      let naive = Store.aggregate fleet ~key:"k" ~fn ~window_ns ~param in
      Store.set_force_naive fleet false;
      check_bool "folded value = naive concat-and-scan" true
        (agg_close fn (value ~fn ~window_ns ~param folded) naive))
    all_aggs

let test_merge_shard_boundary_eviction () =
  (* Capacity 2 per key: shard 0's oldest samples are ring-evicted
     while shard 1 keeps sparse old ones — the merged window must
     reflect exactly the union of what each shard actually retains. *)
  let clock, fleet, shards = make_fleet_store ~capacity:2 ~shards:2 in
  Store.register_demand fleet ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0.;
  Store.register_demand fleet ~key:"k" ~fn:Gr_dsl.Ast.Delta ~window_ns:1e9 ~param:0.;
  clock := 10;
  Store.save shards.(1) "k" 100.;
  List.iteri
    (fun i v ->
      clock := 20 + i;
      Store.save shards.(0) "k" v)
    [ 1.; 2.; 3.; 4. ];
  (* Shard 0 retains only [3.; 4.]; shard 1 retains [100.]. *)
  check_float "sum over retained union" 107.
    (Store.aggregate fleet ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0.);
  check_float "delta spans shards (oldest on shard 1)" (-96.)
    (Store.aggregate fleet ~key:"k" ~fn:Gr_dsl.Ast.Delta ~window_ns:1e9 ~param:0.);
  (* Retire shard 1's sample by time: the window head moves to shard 0. *)
  clock := 1_000_000_021;
  check_float "sum after cross-shard retirement" 7.
    (Store.aggregate fleet ~key:"k" ~fn:Gr_dsl.Ast.Sum ~window_ns:1e9 ~param:0.);
  check_float "delta after cross-shard retirement" 1.
    (Store.aggregate fleet ~key:"k" ~fn:Gr_dsl.Ast.Delta ~window_ns:1e9 ~param:0.)

(* ---------- VM ---------- *)

let compile_rule src =
  let m =
    List.hd
      (Compile.source_exn
         (Printf.sprintf
            {|guardrail g { trigger: { TIMER(0, 1s) } rule: { %s } action: { REPORT("m") } }|}
            src))
  in
  (m.Monitor.rule, m.Monitor.slots)

let test_vm_division_by_zero () =
  let _, store = make_store () in
  let rule, slots = compile_rule "LOAD(a) / LOAD(b) == 0" in
  Store.save store "a" 5.;
  Store.save store "b" 0.;
  check_float "x/0 = 0, rule holds" 1. (Vm.run ~store ~slots rule).value

let test_vm_cost_accounting () =
  let clock, store = make_store () in
  let rule, slots = compile_rule "AVG(lat, 1s) < 100" in
  for i = 1 to 10 do
    clock := i * 1000;
    Store.save store "lat" 1.
  done;
  let r = Vm.run ~store ~slots rule in
  check_int "scanned all samples" 10 r.samples_scanned;
  check_bool "cost grows with samples" true (r.est_cost_ns > Vm.static_cost_ns rule);
  check_int "executed every instruction" (Array.length rule.Gr_compiler.Ir.insts) r.insts_executed

let test_vm_static_cost_hoisted () =
  let clock, store = make_store () in
  let rule, slots = compile_rule "AVG(lat, 1s) < 100 && LOAD(lat) >= 0" in
  for i = 1 to 10 do
    clock := i * 1000;
    Store.save store "lat" 1.
  done;
  (* Precomputing the static instruction cost must not change the
     charged total — only who sums it. *)
  let per_run = Vm.run ~store ~slots rule in
  let hoisted = Vm.run ~static_cost_ns:(Vm.static_cost_ns rule) ~store ~slots rule in
  check_float "identical charged cost" per_run.est_cost_ns hoisted.est_cost_ns;
  check_bool "static part positive" true (Vm.static_cost_ns rule > 0.)

(* ---------- Engine ---------- *)

let make_deployment ?config () =
  let kernel = Gr_kernel.Kernel.create ~seed:1 in
  let d = Guardrails.Deployment.create ~kernel ?config () in
  (kernel, d)

let simple_rail ?(name = "g") ?(trigger = "TIMER(0, 10ms)") ?(rule = "LOAD(healthy) == 1")
    ?(actions = [ {|REPORT("violated", healthy)|} ]) () =
  Printf.sprintf "guardrail %s { trigger: { %s } rule: { %s } action: { %s } }" name trigger rule
    (String.concat "; " actions)

let test_engine_registers_and_releases_demands () =
  let _, d = make_deployment () in
  let store = Guardrails.Deployment.store d in
  let rail name = simple_rail ~name ~rule:"AVG(lat, 1s) < 100" () in
  let h1 = List.hd (Guardrails.Deployment.install_source_exn d (rail "g1")) in
  let h2 = List.hd (Guardrails.Deployment.install_source_exn d (rail "g2")) in
  (* Identical rule terms share one streaming slot. *)
  check_int "shared demand" 1 (Guardrails.Store.demand_count store);
  Guardrails.Deployment.uninstall d h1;
  check_int "survives one uninstall" 1 (Guardrails.Store.demand_count store);
  Guardrails.Deployment.uninstall d h2;
  check_int "released with the last monitor" 0 (Guardrails.Store.demand_count store)

let test_engine_checks_hit_incremental_path () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "lat" 1.;
  ignore
    (Guardrails.Deployment.install_source_exn d
       (simple_rail ~rule:"AVG(lat, 1s) < 100" ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 105);
  let store = Guardrails.Deployment.store d in
  check_bool "timer checks served incrementally" true (Guardrails.Store.agg_hit_count store >= 11)

let test_engine_timer_checks () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 1.;
  let handles = Guardrails.Deployment.install_source_exn d (simple_rail ()) in
  let h = List.hd handles in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 105);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) h in
  (* TIMER(0, 10ms): fires at 0, 10, ..., 100 -> 11 checks. *)
  check_int "11 checks in 105ms" 11 stats.checks;
  check_int "no violations" 0 stats.violations;
  check_bool "overhead accounted" true (stats.overhead_ns > 0.)

let test_engine_violation_and_report () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 0.;
  let handles = Guardrails.Deployment.install_source_exn d (simple_rail ()) in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 25);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  (* checks at 0, 10, 20ms. *)
  check_int "violations" 3 stats.violations;
  let viols = Engine.violations (Guardrails.Deployment.engine d) in
  check_int "reported three times" 3 (List.length viols);
  let v = List.hd viols in
  Alcotest.(check string) "message" "violated" v.Engine.message;
  Alcotest.(check (list (pair string (float 0.)))) "snapshot" [ ("healthy", 0.) ] v.Engine.snapshot

let test_engine_function_trigger () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 1.;
  let handles =
    Guardrails.Deployment.install_source_exn d (simple_rail ~trigger:{|FUNCTION("my:hook")|} ())
  in
  Gr_kernel.Hooks.fire kernel.hooks "my:hook" [];
  Gr_kernel.Hooks.fire kernel.hooks "my:hook" [];
  Gr_kernel.Hooks.fire kernel.hooks "other" [];
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_int "checked per hook firing" 2 stats.checks

let test_engine_on_change_trigger () =
  let _, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 1.;
  let handles =
    Guardrails.Deployment.install_source_exn d
      (simple_rail ~trigger:"ON_CHANGE(watched)" ~rule:"LOAD(watched) < 10" ())
  in
  Guardrails.Deployment.save d "watched" 1.;
  Guardrails.Deployment.save d "watched" 2.;
  Guardrails.Deployment.save d "unrelated" 99.;
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_int "checked per save of watched key" 2 stats.checks;
  check_int "no violations" 0 stats.violations

let test_engine_save_action_and_control_key () =
  let kernel, d = make_deployment () in
  let flipped = ref [] in
  Guardrails.Deployment.bind_control_key d ~key:"ml_enabled" (fun v -> flipped := v :: !flipped);
  Guardrails.Deployment.save d "healthy" 0.;
  ignore
    (Guardrails.Deployment.install_source_exn d
       (simple_rail ~actions:[ "SAVE(ml_enabled, false)" ] ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 15);
  check_bool "control key flipped to 0" true (List.mem 0. !flipped);
  check_float "stored" 0. (Guardrails.Store.load (Guardrails.Deployment.store d) "ml_enabled")

let test_engine_replace_restore_retrain () =
  let kernel, d = make_deployment () in
  let replaced = ref 0 and restored = ref 0 and retrained = ref 0 in
  Gr_kernel.Kernel.register_policy kernel ~name:"p"
    ~replace:(fun () -> incr replaced)
    ~restore:(fun () -> incr restored)
    ~retrain:(fun () -> incr retrained)
    ();
  Guardrails.Deployment.save d "healthy" 0.;
  ignore
    (Guardrails.Deployment.install_source_exn d
       (simple_rail ~trigger:"TIMER(0, 10ms, 15ms)" ~actions:[ {|REPLACE("p")|}; {|RETRAIN("p")|} ] ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 30);
  (* TIMER(0, 10ms, 15ms): fires at 0 and 10ms. *)
  check_int "replaced twice" 2 !replaced;
  (* Retrain is async: runs retrain_delay (50ms) after the firing. *)
  check_int "retrain not yet" 0 !retrained;
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 100);
  (* The second RETRAIN (at 10ms) is rate limited away. *)
  check_int "retrained once after delay" 1 !retrained

let test_engine_retrain_rate_limited () =
  let config =
    { Engine.default_config with retrain_delay = Time_ns.ms 1; retrain_min_interval = Time_ns.sec 1 }
  in
  let kernel, d = make_deployment ~config () in
  let retrained = ref 0 in
  Gr_kernel.Kernel.register_policy kernel ~name:"p"
    ~replace:(fun () -> ())
    ~restore:(fun () -> ())
    ~retrain:(fun () -> incr retrained)
    ();
  Guardrails.Deployment.save d "healthy" 0.;
  let handles =
    Guardrails.Deployment.install_source_exn d (simple_rail ~actions:[ {|RETRAIN("p")|} ] ())
  in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 500);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_int "one retrain despite ~50 violations" 1 !retrained;
  check_bool "suppressions counted" true (stats.retrains_suppressed > 40)

let test_engine_cooldown () =
  let config = { Engine.default_config with cooldown = Time_ns.ms 100 } in
  let kernel, d = make_deployment ~config () in
  Guardrails.Deployment.save d "healthy" 0.;
  let handles = Guardrails.Deployment.install_source_exn d (simple_rail ()) in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 205);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_int "21 checks" 21 stats.checks;
  check_int "21 violations" 21 stats.violations;
  (* firings at 0, 100, 200ms; the violations in between are cooled. *)
  check_int "cooldown limits firings" 3 stats.action_firings

let test_engine_deprioritize_kill_handlers () =
  let kernel, d = make_deployment () in
  let sched = Gr_kernel.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in
  Guardrails.Deployment.wire_scheduler d sched;
  let batch = Gr_kernel.Sched.spawn sched ~name:"b" ~cls:"batch" ~demand:(Time_ns.sec 10) () in
  Guardrails.Deployment.save d "healthy" 0.;
  ignore
    (Guardrails.Deployment.install_source_exn d
       (simple_rail ~trigger:"TIMER(0, 10ms, 15ms)"
          ~actions:[ {|DEPRIORITIZE("batch", 64)|} ] ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 20);
  check_int "weight changed via action" 64 batch.weight

let test_engine_uninstall () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 0.;
  let handles = Guardrails.Deployment.install_source_exn d (simple_rail ()) in
  let h = List.hd handles in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 25);
  Engine.uninstall (Guardrails.Deployment.engine d) h;
  let before = (Engine.Stats.get (Guardrails.Deployment.engine d) h).checks in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 100);
  check_int "no checks after uninstall" before
    (Engine.Stats.get (Guardrails.Deployment.engine d) h).checks

let test_engine_cascade_bounded () =
  (* Two ON_CHANGE monitors that keep writing each other's keys: the
     cascade-depth bound must stop the recursion. *)
  let src =
    {|
guardrail ping {
  trigger: { ON_CHANGE(pong_key) }
  rule: { LOAD(pong_key) < 0 }
  action: { SAVE(ping_key, LOAD(ping_key) + 1) }
}
guardrail pong {
  trigger: { ON_CHANGE(ping_key) }
  rule: { LOAD(ping_key) < 0 }
  action: { SAVE(pong_key, LOAD(pong_key) + 1) }
}
|}
  in
  let _, d = make_deployment () in
  let handles = Guardrails.Deployment.install_source_exn d src in
  (* Detected statically, too: each monitor also reads the key it
     writes (inside the SAVE value program), so there are two
     self-loops plus the ping<->pong cycle. *)
  check_int "feedback cycles reported" 3 (List.length (Guardrails.Deployment.feedback_cycles d));
  Guardrails.Deployment.save d "ping_key" 1.;
  let stats h = Engine.Stats.get (Guardrails.Deployment.engine d) h in
  let total_drops =
    List.fold_left (fun acc h -> acc + (stats h).cascade_drops) 0 handles
  in
  check_bool "cascade stopped by depth bound" true (total_drops > 0)

let test_engine_oscillation_detector () =
  let config =
    { Engine.default_config with oscillation_window = Time_ns.sec 10; oscillation_flips = 4 }
  in
  let kernel, d = make_deployment ~config () in
  Guardrails.Deployment.save d "healthy" 1.;
  ignore (Guardrails.Deployment.install_source_exn d (simple_rail ()) : Engine.handle list);
  (* Flip health every 15ms so the monitor keeps changing state. *)
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 15) (fun _ ->
         let current = Guardrails.Store.load (Guardrails.Deployment.store d) "healthy" in
         Guardrails.Deployment.save d "healthy" (1. -. current))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 500);
  Alcotest.(check (list string)) "oscillation flagged" [ "g" ]
    (Engine.oscillating_monitors (Guardrails.Deployment.engine d))

let test_engine_multiple_triggers_one_monitor () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 1.;
  let handles =
    Guardrails.Deployment.install_source_exn d
      (simple_rail ~trigger:{|TIMER(0, 10ms, 35ms) FUNCTION("my:hook") ON_CHANGE(watched)|} ())
  in
  let h = List.hd handles in
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 50);
  (* Timer fires at 0,10,20,30 = 4 checks. *)
  check_int "timer checks" 4 (Engine.Stats.get (Guardrails.Deployment.engine d) h).checks;
  Gr_kernel.Hooks.fire kernel.hooks "my:hook" [];
  Guardrails.Deployment.save d "watched" 1.;
  check_int "hook and store checks add up" 6
    (Engine.Stats.get (Guardrails.Deployment.engine d) h).checks

let test_engine_save_program_reads_store () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 0.;
  Guardrails.Deployment.save d "base" 20.;
  ignore
    (Guardrails.Deployment.install_source_exn d
       (simple_rail ~trigger:"TIMER(0, 10ms, 15ms)"
          ~actions:[ "SAVE(derived, LOAD(base) * 2 + 1)" ] ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 20);
  Alcotest.(check (float 1e-9)) "computed from store" 41.
    (Guardrails.Store.load (Guardrails.Deployment.store d) "derived")

let test_engine_report_snapshot_order () =
  let kernel, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 0.;
  Guardrails.Deployment.save d "k1" 1.;
  Guardrails.Deployment.save d "k2" 2.;
  ignore
    (Guardrails.Deployment.install_source_exn d
       (simple_rail ~trigger:"TIMER(0, 10ms, 15ms)"
          ~actions:[ {|REPORT("multi", k2, k1, healthy)|} ] ())
      : Engine.handle list);
  Gr_kernel.Kernel.run_until kernel (Time_ns.ms 20);
  match Engine.violations (Guardrails.Deployment.engine d) with
  | v :: _ ->
    Alcotest.(check (list (pair string (float 0.))))
      "snapshot preserves key order" [ ("k2", 2.); ("k1", 1.); ("healthy", 0.) ]
      v.Engine.snapshot
  | [] -> Alcotest.fail "no violation recorded"

let test_engine_auto_damp () =
  let config =
    {
      Engine.default_config with
      oscillation_window = Time_ns.sec 10;
      oscillation_flips = 4;
      auto_damp = true;
    }
  in
  let kernel, d = make_deployment ~config () in
  Guardrails.Deployment.save d "healthy" 1.;
  let handles = Guardrails.Deployment.install_source_exn d (simple_rail ()) in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 15) (fun _ ->
         let current = Guardrails.Store.load (Guardrails.Deployment.store d) "healthy" in
         Guardrails.Deployment.save d "healthy" (1. -. current))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  let stats = Engine.Stats.get (Guardrails.Deployment.engine d) (List.hd handles) in
  check_bool "cooldown grew from zero" true (stats.effective_cooldown >= Time_ns.ms 100);
  check_bool "alerts recorded" true (stats.oscillation_alerts >= 1);
  (* Damping must slow action firings well below the violation count. *)
  check_bool "firings damped" true (stats.action_firings * 2 < stats.violations)

let test_engine_check_now () =
  let _, d = make_deployment () in
  Guardrails.Deployment.save d "healthy" 1.;
  let handles = Guardrails.Deployment.install_source_exn d (simple_rail ()) in
  let h = List.hd handles in
  check_bool "healthy" true (Engine.check_now (Guardrails.Deployment.engine d) h);
  Guardrails.Deployment.save d "healthy" 0.;
  check_bool "violated" false (Engine.check_now (Guardrails.Deployment.engine d) h)

let test_engine_rejects_unverifiable () =
  let _, d = make_deployment () in
  match
    Guardrails.Deployment.install_source d
      (simple_rail ~rule:"AVG(k, 3600s) < 1" ())
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected install to fail verification"

let suite =
  [
    ( "runtime.store",
      [
        Alcotest.test_case "load default" `Quick test_store_load_default;
        Alcotest.test_case "latest value" `Quick test_store_latest_value;
        Alcotest.test_case "window expiry" `Quick test_store_window_expiry;
        Alcotest.test_case "aggregates" `Quick test_store_aggregates;
        Alcotest.test_case "empty window is 0" `Quick test_store_empty_window_zero;
        Alcotest.test_case "bounded capacity" `Quick test_store_capacity_bounded;
        Alcotest.test_case "on_save" `Quick test_store_on_save;
        QCheck_alcotest.to_alcotest store_aggregate_property;
      ] );
    ( "runtime.store.incremental",
      [
        QCheck_alcotest.to_alcotest incremental_equivalence_property;
        Alcotest.test_case "empty and single-sample edges" `Quick
          test_incremental_empty_and_single;
        Alcotest.test_case "registration replays history" `Quick
          test_incremental_registration_replays;
        Alcotest.test_case "demand refcounting" `Quick test_incremental_refcounting;
        Alcotest.test_case "amortized scan cost" `Quick test_incremental_amortized_scan_cost;
      ] );
    ( "runtime.store.merge",
      [
        QCheck_alcotest.to_alcotest merge_equivalence_property;
        Alcotest.test_case "union laws" `Quick test_merge_union_laws;
        Alcotest.test_case "shard-boundary eviction" `Quick test_merge_shard_boundary_eviction;
      ] );
    ( "runtime.vm",
      [
        Alcotest.test_case "division by zero" `Quick test_vm_division_by_zero;
        Alcotest.test_case "cost accounting" `Quick test_vm_cost_accounting;
        Alcotest.test_case "static cost hoisted" `Quick test_vm_static_cost_hoisted;
      ] );
    ( "runtime.engine",
      [
        Alcotest.test_case "demand register/release on install" `Quick
          test_engine_registers_and_releases_demands;
        Alcotest.test_case "checks hit incremental path" `Quick
          test_engine_checks_hit_incremental_path;
        Alcotest.test_case "timer checks" `Quick test_engine_timer_checks;
        Alcotest.test_case "violation and report" `Quick test_engine_violation_and_report;
        Alcotest.test_case "function trigger" `Quick test_engine_function_trigger;
        Alcotest.test_case "on-change trigger" `Quick test_engine_on_change_trigger;
        Alcotest.test_case "save action + control key" `Quick
          test_engine_save_action_and_control_key;
        Alcotest.test_case "replace/restore/retrain" `Quick test_engine_replace_restore_retrain;
        Alcotest.test_case "retrain rate limit" `Quick test_engine_retrain_rate_limited;
        Alcotest.test_case "cooldown" `Quick test_engine_cooldown;
        Alcotest.test_case "deprioritize handler" `Quick test_engine_deprioritize_kill_handlers;
        Alcotest.test_case "uninstall" `Quick test_engine_uninstall;
        Alcotest.test_case "cascade bounded" `Quick test_engine_cascade_bounded;
        Alcotest.test_case "oscillation detector" `Quick test_engine_oscillation_detector;
        Alcotest.test_case "auto-damp" `Quick test_engine_auto_damp;
        Alcotest.test_case "multiple triggers, one monitor" `Quick
          test_engine_multiple_triggers_one_monitor;
        Alcotest.test_case "SAVE program reads store" `Quick test_engine_save_program_reads_store;
        Alcotest.test_case "report snapshot order" `Quick test_engine_report_snapshot_order;
        Alcotest.test_case "check_now" `Quick test_engine_check_now;
        Alcotest.test_case "rejects unverifiable" `Quick test_engine_rejects_unverifiable;
      ] );
  ]
