(* Tests for gr_util: PRNG, ring buffer, heap, statistics. *)

open Gr_util

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.int64 a <> Rng.int64 b then differs := true
  done;
  check_bool "streams differ" true !differs

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.fork parent in
  (* Drawing from the child must not influence the parent's stream
     relative to a parent that splits but never uses the child. *)
  let parent2 = Rng.create 7 in
  let _child2 = Rng.fork parent2 in
  for _ = 1 to 5 do
    ignore (Rng.int64 child : int64)
  done;
  Alcotest.(check int64) "parent unaffected by child draws" (Rng.int64 parent2) (Rng.int64 parent)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    check_bool "in [0,2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let w = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add w (Rng.gaussian rng ~mu:3. ~sigma:2.)
  done;
  check_bool "mean near 3" true (Float.abs (Stats.Welford.mean w -. 3.) < 0.1);
  check_bool "stddev near 2" true (Float.abs (Stats.Welford.stddev w -. 2.) < 0.1)

let test_rng_exponential_mean () =
  let rng = Rng.create 6 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~rate:4.
  done;
  check_bool "mean near 1/4" true (Float.abs ((!sum /. float_of_int n) -. 0.25) < 0.02)

let test_zipf_skew () =
  let rng = Rng.create 8 in
  let zipf = Rng.Zipf.create ~n:100 ~s:1.2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let i = Rng.Zipf.sample zipf rng in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "rank 0 most popular" true (counts.(0) > counts.(10));
  check_bool "rank 10 beats rank 90" true (counts.(10) > counts.(90));
  check_int "all mass accounted" 50_000 (Array.fold_left ( + ) 0 counts)

let test_shuffle_permutation () =
  let rng = Rng.create 9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ---------- Time_ns ---------- *)

let test_time_constructors () =
  check_int "us" 5_000 (Gr_util.Time_ns.us 5);
  check_int "ms" 5_000_000 (Gr_util.Time_ns.ms 5);
  check_int "sec" 5_000_000_000 (Gr_util.Time_ns.sec 5);
  check_int "of_float_sec rounds" 1_500_000_000 (Gr_util.Time_ns.of_float_sec 1.5);
  check_float "to_float_ms" 1.5 (Gr_util.Time_ns.to_float_ms 1_500_000)

let test_time_pp_units () =
  let pp t = Format.asprintf "%a" Gr_util.Time_ns.pp t in
  Alcotest.(check string) "ns" "250ns" (pp 250);
  Alcotest.(check string) "us" "20us" (pp (Gr_util.Time_ns.us 20));
  Alcotest.(check string) "ms" "1.5ms" (pp (Gr_util.Time_ns.ms 1 + Gr_util.Time_ns.us 500));
  Alcotest.(check string) "s" "2s" (pp (Gr_util.Time_ns.sec 2))

(* ---------- Ring ---------- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:3 in
  check_bool "empty" true (Ring.is_empty r);
  Ring.push r 1;
  Ring.push r 2;
  check_int "length" 2 (Ring.length r);
  Alcotest.(check (list int)) "contents" [ 1; 2 ] (Ring.to_list r);
  Alcotest.(check (option int)) "oldest" (Some 1) (Ring.oldest r);
  Alcotest.(check (option int)) "newest" (Some 2) (Ring.newest r)

let test_ring_eviction () =
  let r = Ring.create ~capacity:3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  check_int "capped" 3 (Ring.length r);
  Alcotest.(check (list int)) "keeps newest" [ 3; 4; 5 ] (Ring.to_list r)

let test_ring_get_out_of_range () =
  let r = Ring.create ~capacity:2 in
  Ring.push r 1;
  Alcotest.check_raises "get out of range" (Invalid_argument "Ring.get: index out of range")
    (fun () -> ignore (Ring.get r 1 : int))

let test_ring_drop_while () =
  let r = Ring.create ~capacity:8 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  Ring.drop_while_oldest (fun x -> x < 3) r;
  Alcotest.(check (list int)) "dropped prefix" [ 3; 4; 5 ] (Ring.to_list r);
  Ring.drop_while_oldest (fun _ -> true) r;
  check_bool "can drop all" true (Ring.is_empty r)

let test_ring_clear () =
  let r = Ring.create ~capacity:4 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.clear r;
  check_bool "cleared" true (Ring.is_empty r);
  Ring.push r 9;
  Alcotest.(check (list int)) "usable after clear" [ 9 ] (Ring.to_list r)

let test_ring_wraparound_order () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.push r i
  done;
  Alcotest.(check (list int)) "chronological after wrap" [ 7; 8; 9; 10 ] (Ring.to_list r);
  check_int "get newest" 10 (Ring.get r 3)

let test_ring_invalid_capacity () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Ring.create: capacity must be positive")
    (fun () -> ignore (Ring.create ~capacity:0 : int Ring.t))

let test_ring_bsearch_first () =
  let r = Ring.create ~capacity:4 in
  check_int "empty ring" 0 (Ring.bsearch_first (fun _ -> true) r);
  for i = 1 to 10 do
    Ring.push r (i * 10)
  done;
  (* Retained (after wrap): 70, 80, 90, 100. *)
  check_int "all satisfy" 0 (Ring.bsearch_first (fun x -> x > 0) r);
  check_int "none satisfy" 4 (Ring.bsearch_first (fun x -> x > 100) r);
  check_int "first above cutoff" 2 (Ring.bsearch_first (fun x -> x > 80) r);
  check_int "boundary inclusive" 1 (Ring.bsearch_first (fun x -> x >= 80) r)

let ring_bsearch_property =
  QCheck2.Test.make ~name:"ring bsearch_first agrees with linear scan" ~count:300
    QCheck2.Gen.(triple (int_range 1 20) (list (int_range 0 100)) (int_range 0 100))
    (fun (cap, xs, cutoff) ->
      let r = Ring.create ~capacity:cap in
      List.iter (Ring.push r) (List.sort Int.compare xs);
      let pred x = x > cutoff in
      let linear =
        let rec go i = if i >= Ring.length r then i else if pred (Ring.get r i) then i else go (i + 1) in
        go 0
      in
      Ring.bsearch_first pred r = linear)

(* ---------- Vec ---------- *)

let test_vec_push_order_and_growth () =
  let v = Vec.create ~capacity:2 () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 1 to 100 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "first" 1 (Vec.get v 0);
  check_int "last" 100 (Vec.get v 99);
  Alcotest.(check (list int)) "insertion order" (List.init 100 (fun i -> i + 1)) (Vec.to_list v);
  check_int "fold" 5050 (Vec.fold ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 42) v);
  Vec.clear v;
  check_bool "cleared" true (Vec.is_empty v)

let test_vec_get_out_of_range () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get out of range" (Invalid_argument "Vec.get: index out of range")
    (fun () -> ignore (Vec.get v 1 : int))

(* ---------- Deque ---------- *)

let test_deque_both_ends () =
  let d = Deque.create ~capacity:2 () in
  List.iter (Deque.push_back d) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (option int)) "front" (Some 1) (Deque.front d);
  Alcotest.(check (option int)) "back" (Some 5) (Deque.back d);
  Alcotest.(check (option int)) "pop_front" (Some 1) (Deque.pop_front d);
  Alcotest.(check (option int)) "pop_back" (Some 5) (Deque.pop_back d);
  Alcotest.(check (list int)) "remaining" [ 2; 3; 4 ] (Deque.to_list d);
  Deque.drop_front_while (fun x -> x < 4) d;
  Alcotest.(check (list int)) "front dropped" [ 4 ] (Deque.to_list d);
  Deque.drop_back_while (fun _ -> true) d;
  check_bool "drained" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop empty" None (Deque.pop_front d)

let test_deque_wraparound_growth () =
  (* Force head to wrap before growing so the copy must re-linearize. *)
  let d = Deque.create ~capacity:4 () in
  List.iter (Deque.push_back d) [ 1; 2; 3 ];
  ignore (Deque.pop_front d : int option);
  ignore (Deque.pop_front d : int option);
  List.iter (Deque.push_back d) [ 4; 5; 6; 7; 8 ];
  Alcotest.(check (list int)) "linear order preserved" [ 3; 4; 5; 6; 7; 8 ] (Deque.to_list d);
  check_int "indexed get" 5 (Deque.get d 2)

(* A monotonic min-deque driven randomly must always report the true
   minimum of the live window — the exact discipline the feature
   store's streaming MIN/MAX uses. *)
let deque_monotonic_property =
  QCheck2.Test.make ~name:"monotonic deque tracks window minimum" ~count:300
    QCheck2.Gen.(pair (int_range 1 10) (list_size (int_range 1 60) (int_range 0 1000)))
    (fun (window, xs) ->
      let d = Deque.create () in
      let ok = ref true in
      List.iteri
        (fun i x ->
          Deque.drop_back_while (fun (_, v) -> v >= x) d;
          Deque.push_back d (i, x);
          Deque.drop_front_while (fun (j, _) -> j <= i - window) d;
          let live = List.filteri (fun j _ -> j > i - window && j <= i) xs in
          let true_min = List.fold_left min (List.hd (List.rev live)) live in
          match Deque.front d with
          | Some (_, v) when v = true_min -> ()
          | _ -> ok := false)
        xs;
      !ok)

(* ---------- Heap ---------- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.add h 4;
  Heap.add h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  check_int "peek does not remove" 2 (Heap.length h)

let test_heap_duplicates () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.add h) [ 3; 3; 1; 1; 2 ];
  Alcotest.(check (list int)) "duplicates preserved" [ 1; 1; 2; 3; 3 ] (Heap.to_sorted_list h);
  check_int "non-destructive" 5 (Heap.length h)

let heap_property =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.add h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let ring_property =
  QCheck2.Test.make ~name:"ring keeps the most recent [capacity] elements" ~count:200
    QCheck2.Gen.(pair (int_range 1 20) (list int))
    (fun (cap, xs) ->
      let r = Ring.create ~capacity:cap in
      List.iter (Ring.push r) xs;
      let n = List.length xs in
      let expected = List.filteri (fun i _ -> i >= n - cap) xs in
      Ring.to_list r = expected)

(* ---------- Stats ---------- *)

let test_welford_matches_batch () =
  let xs = [| 1.0; 2.5; 3.5; 4.0; 10.0; -3.0 |] in
  let w = Stats.Welford.create () in
  Array.iter (Stats.Welford.add w) xs;
  check_float "mean" (Stats.mean xs) (Stats.Welford.mean w);
  check_bool "variance" true (Float.abs (Stats.variance xs -. Stats.Welford.variance w) < 1e-9);
  check_float "min" (-3.0) (Stats.Welford.min w);
  check_float "max" 10.0 (Stats.Welford.max w)

let test_welford_merge () =
  let xs = Array.init 50 (fun i -> float_of_int i *. 0.7) in
  let ys = Array.init 30 (fun i -> 100. -. float_of_int i) in
  let a = Stats.Welford.create () and b = Stats.Welford.create () in
  Array.iter (Stats.Welford.add a) xs;
  Array.iter (Stats.Welford.add b) ys;
  let merged = Stats.Welford.merge a b in
  let all = Array.append xs ys in
  check_bool "merged mean" true (Float.abs (Stats.mean all -. Stats.Welford.mean merged) < 1e-9);
  check_bool "merged var" true
    (Float.abs (Stats.variance all -. Stats.Welford.variance merged) < 1e-6)

let test_ewma () =
  let e = Stats.Ewma.create ~alpha:0.5 in
  check_bool "uninitialized" false (Stats.Ewma.initialized e);
  Stats.Ewma.add e 10.;
  check_float "first sample" 10. (Stats.Ewma.value e);
  Stats.Ewma.add e 0.;
  check_float "decays" 5. (Stats.Ewma.value e)

let test_p2_median () =
  let rng = Rng.create 11 in
  let p2 = Stats.P2.create ~q:0.5 in
  let values = Array.init 5000 (fun _ -> Rng.gaussian rng ~mu:50. ~sigma:10.) in
  Array.iter (Stats.P2.add p2) values;
  let exact = Stats.quantile values 0.5 in
  check_bool "P2 close to exact median" true (Float.abs (Stats.P2.quantile p2 -. exact) < 1.0)

let test_p2_p99 () =
  let rng = Rng.create 12 in
  let p2 = Stats.P2.create ~q:0.99 in
  let values = Array.init 10_000 (fun _ -> Rng.exponential rng ~rate:0.1) in
  Array.iter (Stats.P2.add p2) values;
  let exact = Stats.quantile values 0.99 in
  check_bool "P2 p99 within 15%" true (Float.abs (Stats.P2.quantile p2 -. exact) /. exact < 0.15)

let test_p2_small_n_exact () =
  let p2 = Stats.P2.create ~q:0.5 in
  List.iter (Stats.P2.add p2) [ 3.; 1.; 2. ];
  check_float "exact median below 5 samples" 2. (Stats.P2.quantile p2)

let test_histogram_quantile () =
  let h = Stats.Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 0 to 999 do
    Stats.Histogram.add h (float_of_int (i mod 100))
  done;
  check_bool "median near 50" true (Float.abs (Stats.Histogram.quantile h 0.5 -. 50.) < 2.);
  check_int "count" 1000 (Stats.Histogram.count h)

let test_histogram_clamps () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Stats.Histogram.add h (-5.);
  Stats.Histogram.add h 50.;
  let counts = Stats.Histogram.bin_counts h in
  check_int "low clamp" 1 counts.(0);
  check_int "high clamp" 1 counts.(9)

(* Empty and single-sample estimators must answer (with nan or the
   sample) rather than raise — the metrics registry queries them on
   monitors that have never checked. *)
let test_stats_empty_and_single () =
  let p2 = Stats.P2.create ~q:0.5 in
  check_bool "empty P2 is nan" true (Float.is_nan (Stats.P2.quantile p2));
  Stats.P2.add p2 42.;
  check_float "single-sample P2" 42. (Stats.P2.quantile p2);
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  check_bool "empty histogram is nan" true (Float.is_nan (Stats.Histogram.quantile h 0.5));
  Stats.Histogram.add h 4.2;
  check_bool "single-sample histogram in its bin" true
    (Float.abs (Stats.Histogram.quantile h 0.5 -. 4.2) <= 1.);
  let w = Stats.Welford.create () in
  check_float "empty Welford mean" 0. (Stats.Welford.mean w)

let test_stats_nan_samples_ignored () =
  (* Before the guard, a NaN sample sent P2's marker search off the
     end of the height array (past warm-up) and silently landed in
     the histogram's bin 0. *)
  let p2 = Stats.P2.create ~q:0.5 in
  List.iter (Stats.P2.add p2) [ 1.; 2.; nan; 3.; 4.; 5. ];
  Stats.P2.add p2 nan;
  check_int "NaN not counted by P2" 5 (Stats.P2.count p2);
  check_float "P2 median unpoisoned" 3. (Stats.P2.quantile p2);
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Stats.Histogram.add h nan;
  check_int "NaN not counted by histogram" 0 (Stats.Histogram.count h);
  check_int "bin 0 untouched" 0 (Stats.Histogram.bin_counts h).(0)

let test_quantile_interpolation () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 4. (Stats.quantile xs 1.);
  check_float "median interpolates" 2.5 (Stats.quantile xs 0.5)

let test_ks_distance () =
  let a = Array.init 500 (fun i -> float_of_int i) in
  check_float "identical samples" 0. (Stats.ks_distance a a);
  let b = Array.map (fun x -> x +. 1000.) a in
  check_float "disjoint samples" 1. (Stats.ks_distance a b);
  check_float "empty sample" 0. (Stats.ks_distance a [||])

let test_jain_index () =
  check_float "perfectly fair" 1. (Stats.jain_index [| 5.; 5.; 5.; 5. |]);
  check_float "one hog of four" 0.25 (Stats.jain_index [| 1.; 0.; 0.; 0. |]);
  check_float "empty is fair" 1. (Stats.jain_index [||])

let test_moving_average () =
  let out = Stats.moving_average ~window:2 [| 1.; 3.; 5.; 7. |] in
  Alcotest.(check (array (float 1e-9))) "trailing MA" [| 1.; 2.; 4.; 6. |] out

let quantile_property =
  QCheck2.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      Stats.quantile arr 0.25 <= Stats.quantile arr 0.75)

let jain_property =
  QCheck2.Test.make ~name:"jain index lies in (0, 1]" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) (float_bound_inclusive 100.))
    (fun xs ->
      let j = Stats.jain_index (Array.of_list xs) in
      j > 0. && j <= 1. +. 1e-9)

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "different seeds differ" `Quick test_rng_different_seeds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      ] );
    ( "util.time",
      [
        Alcotest.test_case "constructors" `Quick test_time_constructors;
        Alcotest.test_case "adaptive pretty-printing" `Quick test_time_pp_units;
      ] );
    ( "util.ring",
      [
        Alcotest.test_case "basic push/read" `Quick test_ring_basic;
        Alcotest.test_case "eviction at capacity" `Quick test_ring_eviction;
        Alcotest.test_case "out-of-range get" `Quick test_ring_get_out_of_range;
        Alcotest.test_case "drop_while_oldest" `Quick test_ring_drop_while;
        Alcotest.test_case "clear" `Quick test_ring_clear;
        Alcotest.test_case "wraparound order" `Quick test_ring_wraparound_order;
        Alcotest.test_case "invalid capacity" `Quick test_ring_invalid_capacity;
        Alcotest.test_case "bsearch_first" `Quick test_ring_bsearch_first;
        QCheck_alcotest.to_alcotest ring_property;
        QCheck_alcotest.to_alcotest ring_bsearch_property;
      ] );
    ( "util.vec",
      [
        Alcotest.test_case "push order and growth" `Quick test_vec_push_order_and_growth;
        Alcotest.test_case "out-of-range get" `Quick test_vec_get_out_of_range;
      ] );
    ( "util.deque",
      [
        Alcotest.test_case "both ends" `Quick test_deque_both_ends;
        Alcotest.test_case "wraparound growth" `Quick test_deque_wraparound_growth;
        QCheck_alcotest.to_alcotest deque_monotonic_property;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "peek" `Quick test_heap_peek;
        Alcotest.test_case "duplicates" `Quick test_heap_duplicates;
        QCheck_alcotest.to_alcotest heap_property;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "welford matches batch" `Quick test_welford_matches_batch;
        Alcotest.test_case "welford merge" `Quick test_welford_merge;
        Alcotest.test_case "ewma" `Quick test_ewma;
        Alcotest.test_case "p2 median" `Quick test_p2_median;
        Alcotest.test_case "p2 p99" `Quick test_p2_p99;
        Alcotest.test_case "p2 exact below 5" `Quick test_p2_small_n_exact;
        Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
        Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
        Alcotest.test_case "empty/single-sample estimators" `Quick test_stats_empty_and_single;
        Alcotest.test_case "nan samples ignored" `Quick test_stats_nan_samples_ignored;
        Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
        Alcotest.test_case "ks distance" `Quick test_ks_distance;
        Alcotest.test_case "jain index" `Quick test_jain_index;
        Alcotest.test_case "moving average" `Quick test_moving_average;
        QCheck_alcotest.to_alcotest quantile_property;
        QCheck_alcotest.to_alcotest jain_property;
      ] );
  ]
