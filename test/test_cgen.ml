(* Tests for the C backend: structural checks on the emitted code, a
   gcc -Wall -Werror compile check, and a differential test that runs
   randomly generated rules through both the OCaml VM and the
   compiled C and compares results bit-for-bit. *)

module Cgen = Gr_compiler.Cgen
module Compile = Gr_compiler.Compile
module Lower = Gr_compiler.Lower
module Opt = Gr_compiler.Opt

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let listing2_monitors () =
  Compile.source_exn
    {|guardrail low-false-submit {
        trigger: { TIMER(0, 1s) }
        rule: { LOAD(false_submit_rate) <= 0.05 }
        action: { SAVE(ml_enabled, false) }
      }|}

let test_c_identifier () =
  check_string "hyphens" "low_false_submit" (Cgen.c_identifier "low-false-submit");
  check_string "leading digit" "_1abc" (Cgen.c_identifier "1abc");
  check_string "empty" "_anon" (Cgen.c_identifier "");
  check_string "plain" "ok_name" (Cgen.c_identifier "ok_name")

let test_structure () =
  let c = Cgen.spec (listing2_monitors ()) in
  List.iter
    (fun needle -> check_bool needle true (contains ~needle c))
    [
      "#include \"guardrail_rt.h\"";
      "static const char *const gr_low_false_submit_slots[]";
      "static double gr_rule_low_false_submit(struct gr_store *store)";
      "gr_timer(ctx, 0ULL, 1000000000ULL, GR_NO_STOP, gr_check_low_false_submit)";
      "gr_save(store, \"ml_enabled\", gr_low_false_submit_save_0(store))";
      "void gr_register_all(struct gr_ctx *ctx)";
    ]

let gcc_available =
  lazy (Sys.command "gcc --version > /dev/null 2>&1" = 0)

let in_temp_dir f =
  let dir = Filename.temp_file "cgen" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let test_compiles_with_gcc () =
  if not (Lazy.force gcc_available) then ()
  else
    in_temp_dir (fun dir ->
        write_file (Filename.concat dir "guardrail_rt.h") Cgen.runtime_header;
        write_file (Filename.concat dir "monitors.c") (Cgen.spec (listing2_monitors ()));
        let cmd =
          Printf.sprintf "gcc -c -Wall -Werror -o %s %s -I %s 2> %s"
            (Filename.quote (Filename.concat dir "monitors.o"))
            (Filename.quote (Filename.concat dir "monitors.c"))
            (Filename.quote dir)
            (Filename.quote (Filename.concat dir "gcc.log"))
        in
        check_bool "gcc -Wall -Werror accepts generated code" true (Sys.command cmd = 0))

(* ---------- Differential semantics: C vs VM ---------- *)

let key_values =
  [ ("lat", 42.5); ("rate", 7.25); ("depth", 3.0); ("err", 0.0); ("load_avg", 19.5) ]

(* The differential harness has no real feature store, so replace
   aggregations by plain loads (aggregate semantics are covered by
   the OCaml-side equivalence tests). *)
let rec agg_free (e : Gr_dsl.Ast.expr Gr_dsl.Ast.located) =
  let open Gr_dsl.Ast in
  let node =
    match e.node with
    | Number _ | Bool _ | Load _ -> e.node
    | Unop (op, sub) -> Unop (op, agg_free sub)
    | Binop (op, l, r) -> Binop (op, agg_free l, agg_free r)
    | Agg { key; _ } -> Load key
  in
  { e with node }

let monitor_of_expr i expr =
  let open Gr_dsl.Ast in
  let pos = { line = 1; col = 1 } in
  Opt.optimize_monitor
    (Lower.guardrail
       {
         name = Printf.sprintf "g%d" i;
         pos;
         triggers =
           [ at pos (Timer { start = at pos (Number 0.); interval = at pos (Number 1e9); stop = None }) ];
         rules = [ expr ];
         actions = [ at pos (Report { message = "x"; keys = [] }) ];
       })

let harness n =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    {|
#include <stdio.h>
#include <string.h>
struct gr_store_impl { int dummy; };
double gr_load(struct gr_store *s, const char *key) {
  (void)s;
|};
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  if (!strcmp(key, %S)) return %.17g;\n" k v))
    key_values;
  Buffer.add_string buf
    {|  return 0.0;
}
double gr_agg(struct gr_store *s, const char *key, enum gr_agg_fn fn, uint64_t w, double p) {
  (void)s; (void)key; (void)fn; (void)w; (void)p; return 0.0;
}
void gr_report(struct gr_ctx *c, const char *m, const char *msg, const char *const *k, int n) { (void)c; (void)m; (void)msg; (void)k; (void)n; }
void gr_replace(struct gr_ctx *c, const char *p) { (void)c; (void)p; }
void gr_restore(struct gr_ctx *c, const char *p) { (void)c; (void)p; }
void gr_retrain(struct gr_ctx *c, const char *p) { (void)c; (void)p; }
void gr_deprioritize(struct gr_ctx *c, const char *cls, int w) { (void)c; (void)cls; (void)w; }
void gr_kill(struct gr_ctx *c, const char *cls) { (void)c; (void)cls; }
void gr_timer(struct gr_ctx *c, uint64_t a, uint64_t b, uint64_t d, gr_check_fn f) { (void)c; (void)a; (void)b; (void)d; (void)f; }
void gr_on_function(struct gr_ctx *c, const char *h, gr_check_fn f) { (void)c; (void)h; (void)f; }
void gr_on_change(struct gr_ctx *c, const char *k, gr_check_fn f) { (void)c; (void)k; (void)f; }
int main(void) {
  struct gr_store *store = 0;
|};
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  printf(\"%%.17g\\n\", gr_rule_g%d(store));\n" i)
  done;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

let test_differential_vs_vm () =
  if not (Lazy.force gcc_available) then ()
  else begin
    (* Deterministically generate a batch of rules. *)
    let exprs =
      QCheck2.Gen.generate ~n:25 ~rand:(Random.State.make [| 2024 |]) Gen.expr_gen
      |> List.map agg_free
    in
    let monitors = List.mapi monitor_of_expr exprs in
    (* VM side: a store holding the fixed key values. *)
    let store = Gr_runtime.Feature_store.create ~clock:(fun () -> 0) () in
    List.iter (fun (k, v) -> Gr_runtime.Feature_store.save store k v) key_values;
    let vm_results =
      List.map
        (fun (m : Gr_compiler.Monitor.t) ->
          (Gr_runtime.Vm.run ~store ~slots:m.slots m.rule).value)
        monitors
    in
    (* C side: compile and run the same rules. *)
    let c_results =
      in_temp_dir (fun dir ->
          write_file (Filename.concat dir "guardrail_rt.h") Cgen.runtime_header;
          write_file
            (Filename.concat dir "monitors.c")
            (Cgen.spec monitors ^ harness (List.length monitors));
          let exe = Filename.concat dir "monitors" in
          let compile =
            Printf.sprintf "gcc -Wall -Wno-unused-function -o %s %s -I %s 2> %s"
              (Filename.quote exe)
              (Filename.quote (Filename.concat dir "monitors.c"))
              (Filename.quote dir)
              (Filename.quote (Filename.concat dir "gcc.log"))
          in
          check_bool "harness compiles" true (Sys.command compile = 0);
          let ic = Unix.open_process_in exe in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          ignore (Unix.close_process_in ic : Unix.process_status);
          List.rev_map float_of_string !lines)
    in
    Alcotest.(check int) "same count" (List.length vm_results) (List.length c_results);
    List.iteri
      (fun i (vm, c) ->
        check_bool (Printf.sprintf "rule %d agrees" i) true (Float.abs (vm -. c) < 1e-9))
      (List.combine vm_results c_results)
  end

(* ---------- specs/ corpus: emitted C vs every OCaml tier ---------- *)

module Vm = Gr_runtime.Vm
module Jit = Gr_runtime.Jit
module Fstore = Gr_runtime.Feature_store
module Monitor = Gr_compiler.Monitor

let agg_enum_name : Gr_dsl.Ast.agg -> string = function
  | Avg -> "GR_AGG_AVG"
  | Rate -> "GR_AGG_RATE"
  | Count -> "GR_AGG_COUNT"
  | Sum -> "GR_AGG_SUM"
  | Min -> "GR_AGG_MIN"
  | Max -> "GR_AGG_MAX"
  | Stddev -> "GR_AGG_STDDEV"
  | Quantile -> "GR_AGG_QUANTILE"
  | Delta -> "GR_AGG_DELTA"

(* cgen's float literal formatting, for matching the param argument
   the generated rule passes to gr_agg. *)
let c_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let specs_dir () =
  List.find_opt Sys.file_exists [ "../../../specs"; "specs" ]

(* The whole shipped corpus, compiled and run under every engine tier
   AND through the C backend, against one pinned store snapshot. The
   OCaml store leaves all demands unregistered, so every tier takes
   the pure naive aggregation path (no streaming state mutates
   between runs); the C harness gets gr_load/gr_agg lookup tables
   whose entries are the OCaml store's own answers printed %.17g
   (shortest round-trippable), so any divergence isolates the rule
   arithmetic itself. Verdicts must agree bit-for-bit, four ways. *)
let test_corpus_c_vs_tiers () =
  if not (Lazy.force gcc_available) then ()
  else
    match specs_dir () with
    | None -> Alcotest.fail "specs/ corpus not found from the test runner"
    | Some dir ->
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".grd")
        |> List.sort compare
      in
      check_bool "corpus found" true (List.length files >= 4);
      let monitors =
        List.concat_map (fun f -> Compile.source_exn (read_file (Filename.concat dir f))) files
      in
      (* Pinned store: deterministic samples for every key any rule
         reads, all inside the widest window the corpus uses. *)
      let clock = ref Gr_util.Time_ns.zero in
      let store = Fstore.create ~clock:(fun () -> !clock) () in
      let keys = Hashtbl.create 16 in
      List.iter
        (fun (m : Monitor.t) -> Array.iter (fun k -> Hashtbl.replace keys k ()) m.Monitor.slots)
        monitors;
      Hashtbl.iter
        (fun key () ->
          for i = 0 to 20 do
            clock := Gr_util.Time_ns.ms (i * 90);
            Fstore.save store key (float_of_int ((i * 7) mod 23) +. 0.5)
          done)
        keys;
      clock := Gr_util.Time_ns.ms 1900;
      (* C lookup tables from the store's own answers. *)
      let load_table =
        Hashtbl.fold (fun key () acc -> (key, Fstore.load store key) :: acc) keys []
        |> List.sort compare
      in
      let agg_table =
        List.concat_map
          (fun (m : Monitor.t) ->
            Array.to_list m.Monitor.rule.Gr_compiler.Ir.insts
            |> List.filter_map (function
                 | Gr_compiler.Ir.Agg { fn; slot; window_ns; param; _ } ->
                   let key = m.Monitor.slots.(slot) in
                   Some
                     ( key,
                       fn,
                       window_ns,
                       param,
                       Fstore.aggregate store ~key ~fn ~window_ns ~param )
                 | _ -> None))
          monitors
      in
      let harness_c =
        let buf = Buffer.create 2048 in
        Buffer.add_string buf
          "#include <stdio.h>\n#include <string.h>\nstruct gr_store_impl { int dummy; };\n";
        Buffer.add_string buf "double gr_load(struct gr_store *s, const char *key) {\n  (void)s;\n";
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf (Printf.sprintf "  if (!strcmp(key, %S)) return %.17g;\n" k v))
          load_table;
        Buffer.add_string buf "  return 0.0;\n}\n";
        Buffer.add_string buf
          "double gr_agg(struct gr_store *s, const char *key, enum gr_agg_fn fn, uint64_t w, \
           double p) {\n\
          \  (void)s;\n";
        List.iter
          (fun (k, fn, w, p, v) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "  if (!strcmp(key, %S) && fn == %s && w == %.0fULL && p == %s) return %.17g;\n"
                 k (agg_enum_name fn) w (c_float p) v))
          agg_table;
        Buffer.add_string buf "  return 0.0;\n}\n";
        Buffer.add_string buf
          {|void gr_save(struct gr_store *s, const char *key, double v) { (void)s; (void)key; (void)v; }
void gr_report(struct gr_ctx *c, const char *m, const char *msg, const char *const *k, int n) { (void)c; (void)m; (void)msg; (void)k; (void)n; }
void gr_replace(struct gr_ctx *c, const char *p) { (void)c; (void)p; }
void gr_restore(struct gr_ctx *c, const char *p) { (void)c; (void)p; }
void gr_retrain(struct gr_ctx *c, const char *p) { (void)c; (void)p; }
void gr_deprioritize(struct gr_ctx *c, const char *cls, int w) { (void)c; (void)cls; (void)w; }
void gr_kill(struct gr_ctx *c, const char *cls) { (void)c; (void)cls; }
void gr_timer(struct gr_ctx *c, uint64_t a, uint64_t b, uint64_t d, gr_check_fn f) { (void)c; (void)a; (void)b; (void)d; (void)f; }
void gr_on_function(struct gr_ctx *c, const char *h, gr_check_fn f) { (void)c; (void)h; (void)f; }
void gr_on_change(struct gr_ctx *c, const char *k, gr_check_fn f) { (void)c; (void)k; (void)f; }
int main(void) {
  struct gr_store *store = 0;
|};
        List.iter
          (fun (m : Monitor.t) ->
            Buffer.add_string buf
              (Printf.sprintf "  printf(\"%%.17g\\n\", gr_rule_%s(store));\n"
                 (Cgen.c_identifier m.Monitor.name)))
          monitors;
        Buffer.add_string buf "  return 0;\n}\n";
        Buffer.contents buf
      in
      let c_results =
        in_temp_dir (fun dir ->
            write_file (Filename.concat dir "guardrail_rt.h") Cgen.runtime_header;
            write_file (Filename.concat dir "monitors.c") (Cgen.spec monitors ^ harness_c);
            let exe = Filename.concat dir "monitors" in
            let compile =
              Printf.sprintf "gcc -Wall -Wno-unused-function -o %s %s -I %s 2> %s"
                (Filename.quote exe)
                (Filename.quote (Filename.concat dir "monitors.c"))
                (Filename.quote dir)
                (Filename.quote (Filename.concat dir "gcc.log"))
            in
            if Sys.command compile <> 0 then
              Alcotest.failf "corpus harness does not compile:\n%s"
                (read_file (Filename.concat dir "gcc.log"));
            let ic = Unix.open_process_in exe in
            let lines = ref [] in
            (try
               while true do
                 lines := input_line ic :: !lines
               done
             with End_of_file -> ());
            ignore (Unix.close_process_in ic : Unix.process_status);
            List.rev_map float_of_string !lines)
      in
      Alcotest.(check int) "one verdict per monitor" (List.length monitors)
        (List.length c_results);
      let same a b =
        Int64.bits_of_float a = Int64.bits_of_float b || (Float.is_nan a && Float.is_nan b)
      in
      List.iter2
        (fun (m : Monitor.t) c ->
          let slots = m.Monitor.slots and p = m.Monitor.rule in
          let tree = (Vm.run ~store ~slots p).Vm.value in
          let reg = (Vm.run_compiled (Vm.compile ~store ~slots p)).Vm.value in
          let jit =
            match Jit.compile ~store ~slots p with
            | Some j -> (Jit.run j).Vm.value
            | None -> Alcotest.failf "%s: JIT declined an unsharded program" m.Monitor.name
          in
          if not (same tree reg) then
            Alcotest.failf "%s: reg diverged from tree (%h vs %h)" m.Monitor.name reg tree;
          if not (same tree jit) then
            Alcotest.failf "%s: jit diverged from tree (%h vs %h)" m.Monitor.name jit tree;
          if not (same tree c) then
            Alcotest.failf "%s: C diverged from the VM tiers (%h vs %h)" m.Monitor.name c tree)
        monitors c_results

let suite =
  [
    ( "compiler.cgen",
      [
        Alcotest.test_case "identifier mangling" `Quick test_c_identifier;
        Alcotest.test_case "emitted structure" `Quick test_structure;
        Alcotest.test_case "gcc -Wall -Werror" `Slow test_compiles_with_gcc;
        Alcotest.test_case "differential C vs VM" `Slow test_differential_vs_vm;
        Alcotest.test_case "specs corpus: C vs tree/reg/jit, bit-exact" `Slow
          test_corpus_c_vs_tiers;
      ] );
  ]
