(* Property-based invariants on the kernel substrates: whatever the
   policies do (including adversarial ones), the substrates' safety
   properties must hold. *)

open Gr_util

(* Cache: size never exceeds capacity, hits+misses = accesses, and a
   just-accessed key is always present. *)
let cache_invariants =
  QCheck2.Test.make ~name:"cache invariants under random access/policy" ~count:100
    QCheck2.Gen.(triple (int_range 1 32) (list_size (int_range 1 300) (int_range 0 64)) bool)
    (fun (capacity, keys, use_mru) ->
      let hooks = Gr_kernel.Hooks.create () in
      let cache = Gr_kernel.Cache.create ~hooks ~capacity in
      if use_mru then
        Gr_kernel.Policy_slot.install (Gr_kernel.Cache.slot cache) ~name:"mru"
          Gr_policy.Inject.mru_eviction;
      List.for_all
        (fun key ->
          ignore (Gr_kernel.Cache.access cache ~key : bool);
          Gr_kernel.Cache.size cache <= capacity && Gr_kernel.Cache.contains cache ~key)
        keys
      && Gr_kernel.Cache.hits cache <= Gr_kernel.Cache.accesses cache)

(* Fs: occupancy bounded even under an adversarial readahead policy
   asking for absurd windows. *)
let fs_invariants =
  QCheck2.Test.make ~name:"fs cache bounded under adversarial readahead" ~count:50
    QCheck2.Gen.(triple (int_range 1 64) (list_size (int_range 1 200) (int_range 0 1000))
                   (int_range 0 100_000))
    (fun (cache_pages, offsets, window) ->
      let hooks = Gr_kernel.Hooks.create () in
      let fs = Gr_kernel.Fs.create ~hooks ~cache_pages () in
      Gr_kernel.Policy_slot.install (Gr_kernel.Fs.slot fs) ~name:"adversarial"
        { Gr_kernel.Fs.policy_name = "adversarial"; window = (fun _ -> window) };
      List.for_all
        (fun offset ->
          ignore (Gr_kernel.Fs.read fs ~offset : bool);
          Gr_kernel.Fs.cache_occupancy fs <= cache_pages)
        offsets)

(* Mm: fast-tier occupancy bounded; hit fraction in [0,1]. *)
let mm_invariants =
  QCheck2.Test.make ~name:"mm fast tier bounded under always-promote" ~count:50
    QCheck2.Gen.(pair (int_range 1 32) (list_size (int_range 1 300) (int_range 0 100)))
    (fun (fast_capacity, pages) ->
      let engine = Gr_sim.Engine.create () in
      let hooks = Gr_kernel.Hooks.create () in
      let mm = Gr_kernel.Mm.create ~engine ~hooks ~fast_capacity () in
      Gr_kernel.Policy_slot.install (Gr_kernel.Mm.slot mm) ~name:"always"
        Gr_policy.Inject.always_promote;
      List.for_all
        (fun page ->
          ignore (Gr_kernel.Mm.access mm ~page : int);
          Gr_kernel.Mm.fast_occupancy mm <= fast_capacity)
        pages
      &&
      let f = Gr_kernel.Mm.hit_fraction mm in
      f >= 0. && f <= 1.)

(* Sched: CPU conservation — total service received never exceeds
   elapsed wall-clock time; nothing runs after being killed. *)
let sched_conservation =
  QCheck2.Test.make ~name:"scheduler conserves CPU time" ~count:50
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_range 1 2000) (int_range 64 2048)))
    (fun tasks ->
      let engine = Gr_sim.Engine.create () in
      let hooks = Gr_kernel.Hooks.create () in
      let sched = Gr_kernel.Sched.create ~engine ~hooks () in
      List.iteri
        (fun i (demand_ms, weight) ->
          ignore
            (Gr_kernel.Sched.spawn sched ~name:(string_of_int i) ~weight
               ~demand:(Time_ns.ms demand_ms) ()
              : Gr_kernel.Sched.task))
        tasks;
      let horizon = Time_ns.sec 1 in
      Gr_sim.Engine.run_until engine horizon;
      let received =
        List.fold_left
          (fun acc (t : Gr_kernel.Sched.task) -> acc + t.received)
          0 (Gr_kernel.Sched.tasks sched)
      in
      (* Tolerance of one slice for the task in flight at the horizon. *)
      received <= horizon + Time_ns.ms 24
      && List.for_all
           (fun (t : Gr_kernel.Sched.task) -> t.received <= t.demand)
           (Gr_kernel.Sched.tasks sched))

(* Blk: counter consistency under a random policy mix. *)
let blk_counters =
  QCheck2.Test.make ~name:"blk counters consistent under random decisions" ~count:30
    QCheck2.Gen.(pair (int_range 0 2) (int_range 50 300))
    (fun (mode, n) ->
      let engine = Gr_sim.Engine.create () in
      let hooks = Gr_kernel.Hooks.create () in
      let rng = Rng.create (mode + n) in
      let devices =
        Array.init 2 (fun i ->
            Gr_kernel.Ssd.create ~rng ~profile:Gr_kernel.Ssd.aged_profile ~id:i)
      in
      let blk = Gr_kernel.Blk.create ~engine ~hooks ~devices () in
      let policy_rng = Rng.fork rng in
      Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"random"
        {
          Gr_kernel.Blk.policy_name = "random";
          decide =
            (fun _ ->
              match Rng.int policy_rng 3 with
              | 0 -> Gr_kernel.Blk.Hedge (Time_ns.us 300)
              | 1 -> Gr_kernel.Blk.Trust_primary
              | _ -> Gr_kernel.Blk.Revoke_now);
        };
      for i = 0 to n - 1 do
        Gr_kernel.Blk.submit_read blk ~primary:i ~on_complete:(fun _ -> ())
      done;
      Gr_sim.Engine.run engine;
      Gr_kernel.Blk.ios_completed blk = n
      && Gr_kernel.Blk.false_submits blk + Gr_kernel.Blk.false_revokes blk <= n
      && Gr_kernel.Blk.redirects blk <= n
      && Gr_kernel.Blk.hedge_fires blk <= Gr_kernel.Blk.redirects blk)

(* Store: LOAD always returns the most recent SAVE. *)
let store_last_write_wins =
  QCheck2.Test.make ~name:"store LOAD returns last SAVE" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (pair (oneofl [ "a"; "b"; "c" ]) (float_bound_inclusive 100.)))
    (fun writes ->
      let clock = ref 0 in
      let store = Gr_runtime.Feature_store.create ~clock:(fun () -> !clock) () in
      let last = Hashtbl.create 4 in
      List.for_all
        (fun (k, v) ->
          incr clock;
          Gr_runtime.Feature_store.save store k v;
          Hashtbl.replace last k v;
          Hashtbl.fold
            (fun k v acc -> acc && Gr_runtime.Feature_store.load store k = v)
            last true)
        writes)

let suite =
  [
    ( "invariants",
      [
        QCheck_alcotest.to_alcotest cache_invariants;
        QCheck_alcotest.to_alcotest fs_invariants;
        QCheck_alcotest.to_alcotest mm_invariants;
        QCheck_alcotest.to_alcotest sched_conservation;
        QCheck_alcotest.to_alcotest blk_counters;
        QCheck_alcotest.to_alcotest store_last_write_wins;
      ] );
  ]
