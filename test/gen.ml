(* QCheck generators for random guardrail ASTs, shared by the DSL
   round-trip tests and the compiler equivalence tests. *)

open Gr_dsl.Ast

let pos = { line = 1; col = 1 }

(* Scoped keys ride along in every generator: GLOBAL(...) parses to
   its canonical [Ast.global_key] encoding, so the round-trip and
   compiler-equivalence properties cover fleet-scoped keys for free. *)
let key_gen =
  QCheck2.Gen.oneofl
    [ "lat"; "rate"; "depth"; "err"; "load_avg"; global_key "lat"; global_key "pressure" ]

let small_float =
  (* Closed set of well-behaved literals: round-trips through the
     printer exactly and avoids NaN/overflow noise in equivalence
     checks. *)
  QCheck2.Gen.oneofl [ 0.; 1.; 2.; 0.5; 10.; 100.; 0.05; 3.25; 42. ]

let agg_gen = QCheck2.Gen.oneofl [ Avg; Rate; Count; Sum; Min; Max; Stddev; Quantile; Delta ]

let agg_leaf =
  let open QCheck2.Gen in
  map3
    (fun fn key window ->
      let param = if fn = Quantile then Some (at pos (Number 0.9)) else None in
      at pos (Agg { fn; key; window = at pos (Number window); param }))
    agg_gen key_gen
    (oneofl [ 1e6; 1e9; 5e8 ])

let num_leaf =
  let open QCheck2.Gen in
  oneof
    [
      map (fun f -> at pos (Number f)) small_float;
      map (fun k -> at pos (Load k)) key_gen;
      agg_leaf;
    ]

let num_gen depth =
  let open QCheck2.Gen in
  fix
    (fun self n ->
      if n = 0 then num_leaf
      else
        oneof
          [
            num_leaf;
            map (fun e -> at pos (Unop (Neg, e))) (self (n - 1));
            map (fun e -> at pos (Unop (Abs, e))) (self (n - 1));
            map3
              (fun op l r -> at pos (Binop (op, l, r)))
              (oneofl [ Add; Sub; Mul; Div ])
              (self (n - 1))
              (self (n - 1));
          ])
    depth

let bool_leaf =
  let open QCheck2.Gen in
  oneof
    [
      map (fun b -> at pos (Bool b)) bool;
      map3
        (fun op l r -> at pos (Binop (op, l, r)))
        (oneofl [ Lt; Le; Gt; Ge; Eq; Ne ])
        (num_gen 2) (num_gen 2);
    ]

let bool_gen depth =
  let open QCheck2.Gen in
  fix
    (fun self n ->
      if n = 0 then bool_leaf
      else
        oneof
          [
            bool_leaf;
            map (fun e -> at pos (Unop (Not, e))) (self (n - 1));
            map3
              (fun op l r -> at pos (Binop (op, l, r)))
              (oneofl [ And; Or ])
              (self (n - 1))
              (self (n - 1));
          ])
    depth

let expr_gen = bool_gen 3

(* Strip positions so structural equality compares shape only. *)
let rec strip (e : expr located) : expr located =
  let node =
    match e.node with
    | Number _ | Bool _ | Load _ -> e.node
    | Unop (op, sub) -> Unop (op, strip sub)
    | Binop (op, l, r) -> Binop (op, strip l, strip r)
    | Agg { fn; key; window; param } ->
      Agg { fn; key; window = strip window; param = Option.map strip param }
  in
  at pos node

let trigger_gen =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map
        (fun interval ->
          at pos
            (Timer
               { start = at pos (Number 0.); interval = at pos (Number interval); stop = None }))
        (QCheck2.Gen.oneofl [ 1e6; 1e9 ]);
      QCheck2.Gen.map (fun h -> at pos (Function h)) (QCheck2.Gen.oneofl [ "hook:a"; "hook:b" ]);
      QCheck2.Gen.map (fun k -> at pos (On_change k)) key_gen;
    ]

let action_gen =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.map (fun k -> at pos (Report { message = "violated"; keys = [ k ] })) key_gen;
      QCheck2.Gen.return (at pos (Replace "policy"));
      QCheck2.Gen.return (at pos (Retrain "policy"));
      QCheck2.Gen.map (fun k -> at pos (Save { key = k; value = at pos (Number 0.) })) key_gen;
      QCheck2.Gen.return (at pos (Deprioritize { cls = "batch"; weight = at pos (Number 64.) }));
    ]

let guardrail_gen =
  let open QCheck2.Gen in
  map3
    (fun triggers rules actions -> { name = "generated"; pos; triggers; rules; actions })
    (list_size (int_range 1 3) trigger_gen)
    (list_size (int_range 1 3) expr_gen)
    (list_size (int_range 1 3) action_gen)

(* Rewrite every key of a guardrail to its GLOBAL form — the
   all-global extreme of the scoped-key round-trip property. *)
let globalize_guardrail g =
  let gk k = if is_global_key k then k else global_key k in
  let rec globalize (e : expr located) =
    at e.pos
      (match e.node with
      | (Number _ | Bool _) as n -> n
      | Load k -> Load (gk k)
      | Unop (op, sub) -> Unop (op, globalize sub)
      | Binop (op, l, r) -> Binop (op, globalize l, globalize r)
      | Agg a -> Agg { a with key = gk a.key })
  in
  {
    g with
    triggers =
      List.map
        (fun (t : trigger located) ->
          at t.pos
            (match t.node with On_change k -> On_change (gk k) | other -> other))
        g.triggers;
    rules = List.map globalize g.rules;
    actions =
      List.map
        (fun (a : action located) ->
          at a.pos
            (match a.node with
            | Report r -> Report { r with keys = List.map gk r.keys }
            | Save s -> Save { s with key = gk s.key }
            | other -> other))
        g.actions;
  }

let strip_guardrail g =
  {
    g with
    triggers =
      List.map
        (fun (t : trigger located) ->
          at pos
            (match t.node with
            | Timer { start; interval; stop } ->
              Timer
                { start = strip start; interval = strip interval; stop = Option.map strip stop }
            | other -> other))
        g.triggers;
    rules = List.map strip g.rules;
    actions =
      List.map
        (fun (a : action located) ->
          at pos
            (match a.node with
            | Save { key; value } -> Save { key; value = strip value }
            | Deprioritize { cls; weight } -> Deprioritize { cls; weight = strip weight }
            | other -> other))
        g.actions;
  }
