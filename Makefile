.PHONY: all build test fmt fmt-check lint bench bench-smoke ci

all: build

build:
	dune build

test:
	dune runtest

# Reformat dune files in place.
fmt:
	dune build @fmt --auto-promote

# Fail on unformatted dune files or lint findings in OCaml sources.
fmt-check:
	dune build @fmt @fmt-check

# Static analysis over the shipped specs (must be clean) and the
# specs/bad negative corpus (each file must produce its pinned
# diagnostic family and exit code). See docs/LINT.md.
lint: build
	sh scripts/lint_corpus.sh

bench:
	dune exec bench/main.exe

# Tiny-N benchmark pass: exercises the aggregation micro-bench and the
# monitor-count sweep end to end in seconds, machine-readable output.
bench-smoke:
	dune exec bench/main.exe -- agg scale --json --smoke

ci: fmt-check
	dune build
	dune runtest
	$(MAKE) lint
	$(MAKE) bench-smoke
