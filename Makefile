.PHONY: all build test fmt fmt-check bench ci

all: build

build:
	dune build

test:
	dune runtest

# Reformat dune files in place.
fmt:
	dune build @fmt --auto-promote

# Fail on unformatted dune files or lint findings in OCaml sources.
fmt-check:
	dune build @fmt @fmt-check

bench:
	dune exec bench/main.exe

ci: fmt-check
	dune build
	dune runtest
