.PHONY: all build test fmt fmt-check lint bench bench-smoke soak-smoke examples-run ci

all: build

build:
	dune build

test:
	dune runtest

# Reformat dune files in place.
fmt:
	dune build @fmt --auto-promote

# Fail on unformatted dune files or lint findings in OCaml sources.
fmt-check:
	dune build @fmt @fmt-check

# Static analysis over the shipped specs (must be clean) and the
# specs/bad negative corpus (each file must produce its pinned
# diagnostic family and exit code). See docs/LINT.md.
lint: build
	sh scripts/lint_corpus.sh

bench:
	dune exec bench/main.exe

# Tiny-N benchmark pass: exercises the aggregation micro-bench and the
# monitor-count sweep end to end in seconds, machine-readable output.
bench-smoke:
	dune exec bench/main.exe -- agg scale --json --smoke

# Bounded chaos soak: every scenario x seeds 1-7 with generated fault
# plans, invariants checked after every sim event (docs/TESTING.md).
# Failures print a `grc soak --plan ...` repro line and exit non-zero.
soak-smoke:
	dune exec bin/grc.exe -- soak --smoke

# Compile and run every file in examples/ end to end.
examples-run:
	dune build @examples-run

ci: fmt-check
	dune build
	dune runtest
	$(MAKE) lint
	$(MAKE) bench-smoke
	$(MAKE) soak-smoke
	$(MAKE) examples-run
