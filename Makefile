.PHONY: all build test fmt fmt-check lint bench bench-smoke soak-smoke fleet-smoke par-smoke jit-smoke tsan-smoke obs-smoke serve-smoke examples-run ci

all: build

build:
	dune build

test:
	dune runtest

# Reformat dune files in place.
fmt:
	dune build @fmt --auto-promote

# Fail on unformatted dune files or lint findings in OCaml sources.
fmt-check:
	dune build @fmt @fmt-check

# Static analysis over the shipped specs (must be clean) and the
# specs/bad negative corpus (each file must produce its pinned
# diagnostic family and exit code). See docs/LINT.md.
lint: build
	sh scripts/lint_corpus.sh

bench:
	dune exec bench/main.exe

# Tiny-N benchmark pass: exercises the aggregation micro-bench and the
# monitor-count sweep end to end in seconds, machine-readable output,
# plus the small sizes of the grc verify pass-cost ablation.
bench-smoke:
	dune exec bench/main.exe -- agg scale --json --smoke
	dune exec bench/main.exe -- verify --smoke

# Bounded chaos soak: every scenario x seeds 1-7 with generated fault
# plans, invariants checked after every sim event (docs/TESTING.md).
# Failures print a `grc soak --plan ...` repro line and exit non-zero.
soak-smoke:
	dune exec bin/grc.exe -- soak --smoke

# 4-node fleet smoke (docs/FLEET.md): the merged-aggregation
# experiment (exits non-zero unless the fleet QUANTILE guardrail
# matches the naive concat-and-scan oracle at every checkpoint and
# the canaried REPLACE stays on its subset), plus a short chaos soak
# of the fleet scenario with faults confined to node 0.
fleet-smoke:
	dune exec bench/main.exe -- fleet
	dune exec bin/grc.exe -- soak --scenario fleet --nodes 4 --runs 3 --duration 0.5

# Parallel-runtime smoke (docs/PARALLEL.md): `--domains 1` must be
# byte-identical to the sequential path (trace + stdout diff), a
# `--domains 2` run must complete clean, and the fleet chaos soak
# must hold its invariants with node event streams on two domains.
par-smoke: build
	sh scripts/par_smoke.sh

# Tiered-execution smoke (docs/PERFORMANCE.md): the fig. 2 guardrail
# run under all three execution tiers (--engine tree/reg/jit) must
# produce byte-identical traces and reports — the tier-invariance
# contract checked end to end through the CLI in seconds.
jit-smoke: build
	sh scripts/jit_smoke.sh

# ThreadSanitizer smoke (docs/PARALLEL.md): on a TSan-enabled
# compiler — OCaml >= 5.2 configured with --enable-tsan, which makes
# `ocamlopt -config` report `tsan: true` — rebuild under the tsan
# dune profile and run the parallel-runtime suites (domain pool,
# epoch barriers, deterministic fleet RNG) with the instrumented
# runtime watching for data races. On any other toolchain (including
# the pinned 5.1.1 build image) it prints a skip line and succeeds,
# so `make ci` stays portable.
tsan-smoke:
	@if ocamlopt -config 2>/dev/null | grep -q '^tsan:.*true'; then \
	  echo "tsan-smoke: ThreadSanitizer-enabled compiler detected; running par suites under --profile tsan"; \
	  dune exec --profile tsan test/test_main.exe -- test par -e; \
	else \
	  echo "tsan-smoke: skipped (ocamlopt -config reports no tsan support; needs OCaml >= 5.2 built with --enable-tsan)"; \
	fi

# Observability smoke (docs/OBSERVABILITY.md): traced quickstart whose
# t=3s REPORT `grc explain` must walk back to its sim dispatch, plus
# golden-diffed OpenMetrics expositions from `grc run --metrics`
# (single-node and 2-node fleet; host-time lines filtered).
obs-smoke: build
	sh scripts/obs_smoke.sh

# Live control-plane smoke (docs/SERVE.md): a scripted `grc serve`
# session over the unix socket — good push canaries and promotes, a
# GRL003 push bounces with diagnostics, a guardrail-violating push
# auto-rolls-back, the session's audit log byte-diffs against its
# golden, and a --nodes 1 serve trace byte-diffs against `grc run`.
serve-smoke: build
	sh scripts/serve_smoke.sh

# Compile and run every file in examples/ end to end.
examples-run:
	dune build @examples-run

ci: fmt-check
	dune build
	dune runtest
	$(MAKE) lint
	$(MAKE) bench-smoke
	$(MAKE) soak-smoke
	$(MAKE) fleet-smoke
	$(MAKE) par-smoke
	$(MAKE) jit-smoke
	$(MAKE) tsan-smoke
	$(MAKE) obs-smoke
	$(MAKE) serve-smoke
	$(MAKE) examples-run
