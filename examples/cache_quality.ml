(* Cache replacement: the P4 decision-quality guardrail and the A2
   REPLACE action.

   A learned eviction policy (predicted reuse distance from recency
   and frequency) comfortably beats random eviction on the zipfian
   workload it was trained on. Mid-run the hot set shifts: the newly
   hot keys look cold to the model (low access counts), so it evicts
   them on sight and clings to the stale hot set. Figure 1's P4
   example sets the quality floor: "decisions of the model must yield
   better hit rates than randomly selecting elements" — a shadow
   cache with random eviction supplies the baseline leg, and when the
   learned policy drops below it the guardrail swaps in the
   fallback.

   Run with: dune exec examples/cache_quality.exe *)

open Gr_util

let n_keys = 2048
let capacity = 128

let () =
  let kernel = Guardrails.Kernel.create ~seed:5 in
  let cache = Guardrails.Cache.create ~hooks:kernel.hooks ~capacity in

  let zipf = Gr_workload.Mem_trace.zipfian ~rng:kernel.rng ~n_pages:n_keys ~s:1.2 () in
  let training_trace = Array.init 30_000 (fun _ -> Gr_workload.Mem_trace.next zipf) in
  let model =
    Gr_policy.Cache_policy.train ~rng:kernel.rng ~hooks:kernel.hooks ~trace:training_trace ()
  in
  Guardrails.Policy_slot.install (Guardrails.Cache.slot cache) ~name:"learned-reuse"
    (Gr_policy.Cache_policy.policy model);
  Guardrails.Kernel.register_policy kernel ~name:"cache-policy"
    ~replace:(fun () -> Guardrails.Policy_slot.use_fallback (Guardrails.Cache.slot cache))
    ~restore:(fun () -> Guardrails.Policy_slot.restore (Guardrails.Cache.slot cache))
    ();

  let d = Guardrails.Deployment.create ~kernel () in
  (* Live hit/miss stream for the policy leg of the rule. *)
  Guardrails.Deployment.forward_hook_arg d ~hook:"cache:access" ~arg:"hit" ~key:"cache_hit" ();
  (* Shadow baseline: same accesses, random eviction. *)
  Gr_props.Props.P4_decision_quality.shadow_cache d ~capacity
    ~baseline:(Guardrails.Cache.random kernel.rng) ~hit_key:"shadow_hit";

  let p4 =
    Gr_props.Props.P4_decision_quality.source ~name:"beats-random" ~policy_key:"cache_hit"
      ~baseline_key:"shadow_hit" ~margin:0.02 ~window:(Time_ns.ms 400)
      ~check_every:(Time_ns.ms 100)
      ~actions:
        [
          {|REPORT("learned eviction fell below the random baseline", cache_hit, shadow_hit)|};
          {|REPLACE("cache-policy")|};
        ]
      ()
  in
  ignore (Guardrails.Deployment.install_source_exn d p4 : Guardrails.Engine.handle list);

  (* Phase 1 (0-1s): the training distribution. Phase 2 (1-2s): the
     hot set shifts wholesale. *)
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.us 50) (fun _ ->
         ignore (Guardrails.Cache.access cache ~key:(Gr_workload.Mem_trace.next zipf) : bool))
      : Guardrails.Sim.handle);
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         print_endline "t=1s: hot set shifts";
         Gr_workload.Mem_trace.shift_hot_set zipf ~offset:(n_keys / 2))
      : Guardrails.Sim.handle);

  (* Sample both hit rates each 250ms window. *)
  let series = ref [] in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.ms 250) (fun e ->
         let avg key =
           Guardrails.Store.aggregate (Guardrails.Deployment.store d) ~key ~fn:Guardrails.Ast.Avg
             ~window_ns:250e6 ~param:0.
         in
         series :=
           (Gr_sim.Engine.now e, avg "cache_hit", avg "shadow_hit",
            Guardrails.Policy_slot.current_name (Guardrails.Cache.slot cache))
           :: !series)
      : Guardrails.Sim.handle);

  Guardrails.Kernel.run_until kernel (Time_ns.sec 2);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "P4 never fired"
  | v :: _ -> Format.printf "P4 fired first at %a@." Time_ns.pp v.Guardrails.Engine.at);
  print_endline "   t      learned  shadow(random)  live policy";
  List.iter
    (fun (at, l, s, policy) ->
      Format.printf "  %a   %5.1f%%       %5.1f%%     %s@." Time_ns.pp at (100. *. l)
        (100. *. s) policy)
    (List.rev !series)
