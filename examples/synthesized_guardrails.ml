(* Automatic guardrail synthesis (§3.3): "the performance metric to
   track can be extracted from the reward function".

   Instead of writing guardrail source by hand, this example builds a
   policy profile for the learned cache-replacement policy — its
   reward metric (hit/miss stream), a shadow baseline, and its
   per-decision inference cost — and lets the framework synthesize
   the standard guardrail set (P4 quality + P5 overhead). The
   synthesized source goes through the same compile/verify pipeline
   as hand-written guardrails.

   The run then degrades the policy (hot-set shift): the synthesized
   quality guardrail catches it and swaps in the LRU fallback.

   Run with: dune exec examples/synthesized_guardrails.exe *)

open Gr_util

let () =
  let kernel = Guardrails.Kernel.create ~seed:17 in
  let cache = Guardrails.Cache.create ~hooks:kernel.hooks ~capacity:128 in
  let zipf = Gr_workload.Mem_trace.zipfian ~rng:kernel.rng ~n_pages:2048 ~s:1.2 () in
  let trace = Array.init 30_000 (fun _ -> Gr_workload.Mem_trace.next zipf) in
  let model = Gr_policy.Cache_policy.train ~rng:kernel.rng ~hooks:kernel.hooks ~trace () in
  Guardrails.Policy_slot.install (Guardrails.Cache.slot cache) ~name:"learned-reuse"
    (Gr_policy.Cache_policy.policy model);
  Guardrails.Kernel.register_policy kernel ~name:"cache-policy"
    ~replace:(fun () -> Guardrails.Policy_slot.use_fallback (Guardrails.Cache.slot cache))
    ~restore:(fun () -> Guardrails.Policy_slot.restore (Guardrails.Cache.slot cache))
    ~retrain:(fun () -> Gr_policy.Cache_policy.retrain model ~trace)
    ();

  let d = Guardrails.Deployment.create ~kernel () in
  (* Instrumentation the profile refers to: reward stream, shadow
     baseline, per-decision cost. *)
  Guardrails.Deployment.forward_hook_arg d ~hook:"cache:access" ~arg:"hit" ~key:"cache_hit" ();
  Gr_props.Props.P4_decision_quality.shadow_cache d ~capacity:128
    ~baseline:(Guardrails.Cache.random kernel.rng) ~hit_key:"shadow_hit";
  ignore
    (Guardrails.Hooks.subscribe kernel.hooks "cache:access" (fun _ ->
         Guardrails.Deployment.save d "cache_decide_ns" 900.)
      : Guardrails.Hooks.subscription);

  (* One profile -> a full guardrail set. *)
  let profile =
    Gr_props.Synthesis.profile ~policy:"cache-policy" ~reward_key:"cache_hit"
      ~baseline_key:"shadow_hit" ~quality_margin:0.02 ~cost_key:"cache_decide_ns"
      ~cost_budget_ns:5000. ~window:(Time_ns.ms 400) ~check_every:(Time_ns.ms 100) ()
  in
  let source = Gr_props.Synthesis.synthesize profile in
  print_endline "synthesized guardrails:";
  print_string source;
  let handles = Guardrails.Deployment.install_source_exn d source in
  Printf.printf "\ninstalled %d synthesized monitor(s): %s\n" (List.length handles)
    (String.concat ", " (Gr_props.Synthesis.synthesized_names profile));

  (* Drive the cache; shift the hot set at t=1s. *)
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.us 50) (fun _ ->
         ignore (Guardrails.Cache.access cache ~key:(Gr_workload.Mem_trace.next zipf) : bool))
      : Guardrails.Sim.handle);
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         print_endline "t=1s: hot set shifts";
         Gr_workload.Mem_trace.shift_hot_set zipf ~offset:1024)
      : Guardrails.Sim.handle);
  Guardrails.Kernel.run_until kernel (Time_ns.sec 2);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "no synthesized guardrail fired"
  | v :: _ ->
    Format.printf "synthesized guardrail %s fired first at %a@." v.Guardrails.Engine.monitor
      Time_ns.pp v.Guardrails.Engine.at);
  Printf.printf "cache policy now: %s\n"
    (Guardrails.Policy_slot.current_name (Guardrails.Cache.slot cache))
