(* Wasted cores: the paper's third motivating failure ("[the OS] may
   idle cores when ready tasks are still available in the runqueue",
   citing the Decade of Wasted Cores study) as a guardrail scenario.

   A 4-CPU scheduler uses per-CPU runqueues with no work stealing. A
   learned placement model carries a stale "CPU 0 is the fast core"
   prior from training on an asymmetric machine; on this symmetric
   box that prior funnels spawns onto CPU 0 while cores 1-3 idle.
   The guardrail watches the sampled wasted-cores signal and reacts
   by replacing the balancer (which also rebalances the backlog).

   Run with: dune exec examples/wasted_cores.exe *)

open Gr_util

let () =
  let kernel = Guardrails.Kernel.create ~seed:37 in
  let sched = Guardrails.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks ~cpus:4 () in
  let model = Gr_policy.Balancer_policy.train ~rng:kernel.rng ~cpus:4 () in
  (* The stale prior from the asymmetric training machine. *)
  Gr_policy.Balancer_policy.inject_affinity model ~strength:2.0;
  Guardrails.Policy_slot.install
    (Guardrails.Sched.balancer_slot sched)
    ~name:"learned-balancer"
    (Gr_policy.Balancer_policy.balancer model);
  Guardrails.Kernel.register_policy kernel ~name:"balancer"
    ~replace:(fun () ->
      Guardrails.Policy_slot.use_fallback (Guardrails.Sched.balancer_slot sched);
      let moved = Guardrails.Sched.rebalance sched in
      Printf.printf "  -> balancer replaced; %d queued tasks redistributed\n" moved)
    ~restore:(fun () -> Guardrails.Policy_slot.restore (Guardrails.Sched.balancer_slot sched))
    ();

  let d = Guardrails.Deployment.create ~kernel () in
  Guardrails.Deployment.wire_scheduler d sched;
  let rail =
    {|
guardrail no-wasted-cores {
  trigger: { TIMER(0, 100ms) }
  rule: { AVG(sched_wasted_cores, 500ms) <= 1.5 }
  action: {
    REPORT("cores idling while tasks queue", sched_wasted_cores)
    REPLACE("balancer")
  }
}
|}
  in
  ignore (Guardrails.Deployment.install_source_exn d rail : Guardrails.Engine.handle list);

  (* Steady stream of medium tasks: total load ~2.4 CPUs of work, so
     a fair 4-CPU placement keeps queues short while the skew drowns
     CPU 0. *)
  Gr_workload.Taskset.run ~engine:kernel.engine ~rng:kernel.rng ~sched
    ~specs:
      [
        {
          Gr_workload.Taskset.cls = "worker";
          weight = 1024;
          demand = Time_ns.ms 40;
          arrival = Gr_workload.Arrival.poisson ~rate_per_sec:60.;
        };
      ]
    ~until:(Time_ns.sec 4);

  let samples = ref [] in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.ms 500) (fun e ->
         samples :=
           ( Gr_sim.Engine.now e,
             Guardrails.Store.aggregate (Guardrails.Deployment.store d)
               ~key:"sched_wasted_cores" ~fn:Guardrails.Ast.Avg ~window_ns:5e8 ~param:0.,
             Guardrails.Sched.max_wait_ms sched )
           :: !samples)
      : Guardrails.Sim.handle);

  Guardrails.Kernel.run_until kernel (Time_ns.sec 4);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "guardrail never fired"
  | v :: _ ->
    Format.printf "guardrail fired at %a (avg wasted cores %.2f)@." Time_ns.pp
      v.Guardrails.Engine.at
      (match v.Guardrails.Engine.snapshot with (_, w) :: _ -> w | [] -> nan));
  Printf.printf "balancer now: %s\n"
    (Guardrails.Policy_slot.current_name (Guardrails.Sched.balancer_slot sched));
  print_endline "   t     avg wasted cores   max wait";
  List.iter
    (fun (at, wasted, wait) -> Format.printf "  %a      %10.2f  %8.1fms@." Time_ns.pp at wasted wait)
    (List.rev !samples);
  let completed =
    List.length
      (List.filter
         (fun (t : Guardrails.Sched.task) -> t.state = Gr_kernel.Sched.Complete)
         (Guardrails.Sched.tasks sched))
  in
  Printf.printf "tasks completed: %d\n" completed
