(* Tiered memory: the P1 in-distribution guardrail and the A3
   RETRAIN action.

   A learned placement policy decides which slow-tier pages to
   promote into a small fast tier, from access-behaviour features
   (access count, inter-access gap, occupancy). At t=1s the workload
   turns scan-heavy — the paper's own cited failure mode for learned
   data placement ("may perform poorly if the workload ... has random
   access pattern"). Scans have inter-access gaps an order of
   magnitude above anything in the zipfian training trace, so the
   model's gap input drifts out of its training envelope; the P1
   guardrail detects it and triggers an asynchronous retrain on the
   recent trace.

   Run with: dune exec examples/memory_tiering.exe *)

open Gr_util

let n_pages = 4096
let access_gap = Time_ns.us 20

let () =
  let kernel = Guardrails.Kernel.create ~seed:23 in
  let mm =
    Guardrails.Mm.create ~engine:kernel.engine ~hooks:kernel.hooks ~fast_capacity:256 ()
  in

  (* Train on a zipfian trace over the initial hot set. *)
  let trace_gen = Gr_workload.Mem_trace.zipfian ~rng:kernel.rng ~n_pages () in
  let training_trace = Array.init 20_000 (fun _ -> Gr_workload.Mem_trace.next trace_gen) in
  (* mean_gap_ms matches the live access cadence (one access per
     20us), so offline and online gap features share a scale. *)
  let model =
    Gr_policy.Tiering.train ~rng:kernel.rng ~trace:training_trace ~mean_gap_ms:0.02 ()
  in

  (* Keep the recent access history so RETRAIN has fresh data. *)
  let recent = Ring.create ~capacity:20_000 in
  let d = Guardrails.Deployment.create ~kernel () in

  Guardrails.Policy_slot.install (Guardrails.Mm.slot mm) ~name:"learned-tiering"
    (Gr_policy.Tiering.policy model);
  (* Instrument the model's gap input over all accesses — the same
     population the training envelope was computed from. *)
  let last_access = Hashtbl.create 4096 in
  let observe_gap page =
    let now_ms = Time_ns.to_float_ms (Guardrails.Kernel.now kernel) in
    (match Hashtbl.find_opt last_access page with
    | Some prev -> Guardrails.Deployment.save d "tier_gap_ms" (now_ms -. prev)
    | None -> ());
    Hashtbl.replace last_access page now_ms
  in
  Guardrails.Kernel.register_policy kernel ~name:"tiering"
    ~replace:(fun () -> Gr_policy.Tiering.set_enabled model false)
    ~restore:(fun () -> Gr_policy.Tiering.set_enabled model true)
    ~retrain:(fun () ->
      let trace = Array.of_list (Ring.to_list recent) in
      if Array.length trace > 1000 then begin
        Gr_policy.Tiering.retrain model ~trace;
        Format.printf "t=%a: model retrained on %d recent accesses@." Time_ns.pp
          (Guardrails.Kernel.now kernel) (Array.length trace)
      end)
    ();

  (* P1: the live median inter-access gap must stay inside the
     training envelope (median +/- 2 IQR of the training gaps). *)
  let gaps =
    Array.of_list
      (List.filter_map
         (fun f -> if f.(1) < 1e8 then Some f.(1) else None)
         (Array.to_list (Gr_policy.Tiering.training_features model)))
  in
  let lo, hi = Gr_props.Props.P1_in_distribution.envelope gaps ~slack:2.0 () in
  Printf.printf "training gap envelope: [%.2f, %.2f] ms\n" (Float.max 0. lo) hi;
  let p1 =
    Gr_props.Props.P1_in_distribution.source ~name:"inputs-in-distribution"
      ~feature_key:"tier_gap_ms" ~lo:(Float.max 0. lo) ~hi ~window:(Time_ns.ms 200)
      ~check_every:(Time_ns.ms 100)
      ~actions:
        [ {|REPORT("placement inputs drifted out of training distribution", tier_gap_ms)|};
          {|RETRAIN("tiering")|} ]
      ()
  in
  ignore (Guardrails.Deployment.install_source_exn d p1 : Guardrails.Engine.handle list);

  (* Drive accesses; the workload turns scan-heavy at t=1s. *)
  let current = ref trace_gen in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:access_gap (fun _ ->
         let page = Gr_workload.Mem_trace.next !current in
         Ring.push recent page;
         observe_gap page;
         ignore (Guardrails.Mm.access mm ~page : Time_ns.t))
      : Guardrails.Sim.handle);
  let window_hits = ref 0 and window_accesses = ref 0 in
  let last_hits = ref 0 and last_accesses = ref 0 in
  let hit_rates = ref [] in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.ms 250) (fun e ->
         let h = Guardrails.Mm.fast_hits mm and a = Guardrails.Mm.accesses mm in
         window_hits := h - !last_hits;
         window_accesses := a - !last_accesses;
         last_hits := h;
         last_accesses := a;
         let rate =
           if !window_accesses = 0 then 0.
           else float_of_int !window_hits /. float_of_int !window_accesses
         in
         hit_rates := (Gr_sim.Engine.now e, rate) :: !hit_rates)
      : Guardrails.Sim.handle);
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         print_endline "t=1s: workload turns scan-heavy (70% cyclic scan)";
         current :=
           Gr_workload.Mem_trace.mixed ~rng:kernel.rng ~scan_fraction:0.7
             trace_gen
             (Gr_workload.Mem_trace.scan ~n_pages))
      : Guardrails.Sim.handle);

  Guardrails.Kernel.run_until kernel (Time_ns.sec 3);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "P1 never fired"
  | v :: _ as all ->
    Format.printf "P1 fired %d time(s), first at %a@." (List.length all) Time_ns.pp
      v.Guardrails.Engine.at);
  Printf.printf "retrains: %d\n" (Gr_policy.Tiering.retrain_count model);
  print_endline "fast-tier hit rate (250ms windows):";
  List.iter
    (fun (at, rate) -> Format.printf "  %a  %5.1f%%@." Time_ns.pp at (100. *. rate))
    (List.rev !hit_rates)
