(* Scheduler fairness: the P6 liveness guardrail and the A4
   DEPRIORITIZE action.

   A learned time-slice policy imitates CFS, but was trained only on
   small runqueues (1-4 runnable tasks). When a burst of batch work
   piles 20+ tasks onto the runqueue, the regressor extrapolates:
   predicted slices no longer shrink with the queue length, and
   latency-sensitive interactive tasks wait hundreds of milliseconds.

   The guardrail checks the paper's P6 example property — "no ready
   task should be starved for more than 100ms" — plus a Jain fairness
   floor, and reacts by deprioritising the batch class and swapping
   the learned policy for CFS.

   Run with: dune exec examples/scheduler_fairness.exe *)

open Gr_util

let () =
  let kernel = Guardrails.Kernel.create ~seed:11 in
  let sched = Guardrails.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in

  (* Learned slice policy, trained only on runqueues of size <= 4. *)
  let learned = Gr_policy.Slice_policy.train ~rng:kernel.rng () in
  Guardrails.Policy_slot.install (Guardrails.Sched.slot sched) ~name:"learned-slice"
    (Gr_policy.Slice_policy.policy learned);
  Guardrails.Kernel.register_policy kernel ~name:"learned-slice"
    ~replace:(fun () -> Guardrails.Policy_slot.use_fallback (Guardrails.Sched.slot sched))
    ~restore:(fun () -> Guardrails.Policy_slot.restore (Guardrails.Sched.slot sched))
    ();

  let d = Guardrails.Deployment.create ~kernel () in
  Guardrails.Deployment.wire_scheduler d sched;

  let p6 =
    Gr_props.Props.P6_fairness.source ~name:"no-starvation" ~max_wait_ms:100. ~min_jain:0.4
      ~check_every:(Time_ns.ms 50)
      ~actions:
        [
          {|REPORT("starvation or unfairness detected", sched_max_wait_ms, sched_jain)|};
          {|DEPRIORITIZE("batch", 64)|};
          {|REPLACE("learned-slice")|};
        ]
      ()
  in
  ignore (Guardrails.Deployment.install_source_exn d p6 : Guardrails.Engine.handle list);

  (* Light interactive load from the start; a batch burst at t=1s
     blows the runqueue far beyond the training distribution. *)
  Gr_workload.Taskset.run ~engine:kernel.engine ~rng:kernel.rng ~sched
    ~specs:[ Gr_workload.Taskset.interactive ~rate_per_sec:40. ]
    ~until:(Time_ns.sec 4);
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         print_endline "t=1s: batch burst arrives (24 long tasks)";
         for i = 1 to 24 do
           ignore
             (Guardrails.Sched.spawn sched
                ~name:(Printf.sprintf "batch-%d" i)
                ~cls:"batch" ~demand:(Time_ns.sec 2) ()
               : Guardrails.Sched.task)
         done)
      : Guardrails.Sim.handle);

  (* Track the worst interactive wait in each second. *)
  let worst = Array.make 4 0. in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.ms 10) (fun e ->
         let second = Gr_sim.Engine.now e / Time_ns.sec 1 in
         if second < 4 then
           worst.(second) <- Float.max worst.(second) (Guardrails.Sched.max_wait_ms sched))
      : Guardrails.Sim.handle);

  Guardrails.Kernel.run_until kernel (Time_ns.sec 4);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "guardrail never fired"
  | v :: _ ->
    Format.printf "guardrail fired first at %a (max_wait=%.0fms)@." Time_ns.pp
      v.Guardrails.Engine.at
      (match List.assoc_opt "sched_max_wait_ms" v.Guardrails.Engine.snapshot with
      | Some w -> w
      | None -> nan));
  Printf.printf "slice policy now: %s\n"
    (Guardrails.Policy_slot.current_name (Guardrails.Sched.slot sched));
  Array.iteri (fun i w -> Printf.printf "worst wait in second %d: %7.1fms\n" i w) worst;
  let interactive_done =
    List.length
      (List.filter
         (fun (t : Guardrails.Sched.task) -> t.cls = "interactive" && t.state = Complete)
         (Guardrails.Sched.tasks sched))
  in
  Printf.printf "interactive tasks completed: %d\n" interactive_done
