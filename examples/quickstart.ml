(* Quickstart: the paper's Listing 2, end to end.

   A LinnOS-style learned I/O latency classifier drives flash-RAID
   failover. Mid-run the SSDs age into a heavier garbage-collection
   regime the model was never trained on, so its false-submit rate
   (I/Os predicted fast that serve slowly) spikes. The guardrail
   below — the paper's example verbatim — detects the spike within a
   second and flips the ml_enabled control key; the policy falls back
   to timeout-based hedging and tail latency recovers.

   Run with: dune exec examples/quickstart.exe *)

open Gr_util

let listing2 =
  {|
guardrail low-false-submit {
  trigger: {
    TIMER(start_time, 1e9) // Periodically check every 1s.
  },
  rule: {
    LOAD(false_submit_rate) <= 0.05
  },
  action: {
    REPORT("false-submit rate exceeded 5%", false_submit_rate)
    SAVE(ml_enabled, false)
  }
}
|}

let () =
  (* 1. A simulated kernel with four flash devices behind a block
        layer with RAID-style failover. *)
  let kernel = Guardrails.Kernel.create ~seed:42 in
  let devices =
    Array.init 4 (fun i ->
        Guardrails.Ssd.create ~rng:kernel.rng ~profile:Guardrails.Ssd.young_profile ~id:i)
  in
  let blk =
    Guardrails.Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices ()
  in

  (* 2. Train the learned policy on the healthy device regime and
        install it in the block layer's policy slot. *)
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
  Guardrails.Policy_slot.install (Guardrails.Blk.slot blk) ~name:"linnos"
    (Gr_policy.Linnos.policy model);

  (* 3. Deploy guardrails: pump the false_submit markers published by
        the block layer into the feature store, derive the windowed
        rate, and let the model watch its ml_enabled control key.
        [~tracing:true] also records every sim dispatch, hook firing,
        rule check and action into a bounded ring buffer. *)
  let d = Guardrails.Deployment.create ~kernel ~tracing:true () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"blk:io_complete" ~arg:"false_submit" ();
  Guardrails.Deployment.derive_window_avg d ~src:"false_submit" ~dst:"false_submit_rate"
    ~window:(Time_ns.sec 2) ~every:(Time_ns.ms 100);
  Guardrails.Deployment.save d "ml_enabled" 1.;
  Guardrails.Deployment.bind_control_key d ~key:"ml_enabled" (fun v ->
      Gr_policy.Linnos.set_enabled model (v <> 0.));
  let handles = Guardrails.Deployment.install_source_exn d listing2 in
  Printf.printf "installed %d guardrail monitor(s)\n" (List.length handles);

  (* 4. Drive a read workload; age the devices at t=2s. *)
  let driver =
    Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
      ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:1500.)
      ~n_devices:4 ~zipf_s:0.5 ~until:(Time_ns.sec 6) ()
  in
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 2) (fun _ ->
         print_endline "t=2s: devices age (GC regime shift; model is now stale)";
         Array.iter
           (fun dev -> Guardrails.Ssd.set_profile dev Guardrails.Ssd.aged_profile)
           devices)
      : Guardrails.Sim.handle);
  Guardrails.Kernel.run_until kernel (Time_ns.sec 7);

  (* 5. Report. *)
  List.iter
    (fun v ->
      Format.printf "guardrail %s fired at %a: %s (rate=%.3f)@." v.Guardrails.Engine.monitor
        Time_ns.pp v.Guardrails.Engine.at v.Guardrails.Engine.message
        (match v.Guardrails.Engine.snapshot with (_, r) :: _ -> r | [] -> nan))
    (Guardrails.Engine.violations (Guardrails.Deployment.engine d));
  Printf.printf "model enabled at end: %b\n" (Gr_policy.Linnos.enabled model);
  let samples = Gr_workload.Io_driver.samples driver in
  let mean lo hi =
    let xs =
      List.filter_map
        (fun s ->
          if s.Gr_workload.Io_driver.at >= Time_ns.sec lo && s.Gr_workload.Io_driver.at < Time_ns.sec hi
          then Some s.Gr_workload.Io_driver.latency_us
          else None)
        samples
    in
    Stats.mean (Array.of_list xs)
  in
  Printf.printf "mean I/O latency: %.0fus (young) -> %.0fus (stale model) -> %.0fus (guardrailed)\n"
    (mean 0 2) (mean 2 3) (mean 4 6);

  (* 6. Observability: per-monitor telemetry and a Chrome trace of the
        whole run — open it at chrome://tracing or ui.perfetto.dev to
        see the TIMER checks and the firing SAVE on the sim timeline. *)
  Format.printf "%a" Guardrails.Metrics.pp (Guardrails.Deployment.metrics d);
  Guardrails.Deployment.write_chrome_trace d ~path:"quickstart_trace.json";
  print_endline "trace written to quickstart_trace.json (open at chrome://tracing)"
