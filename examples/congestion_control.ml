(* Congestion control: the P2 robustness guardrail plus a behavioural
   utilisation floor, on a bottleneck-link substrate.

   The paper's §2 motivates guardrails with exactly this failure: "a
   learned congestion control may lead to a sudden drop in bandwidth
   utilization and fail to recover from it". A trained controller
   drives a 100 Mbps link close to capacity; at t=10s we swap in an
   unstable variant (standing in for a model update gone wrong).
   Two guardrails watch it:

   - P2 (input robustness): a periodic prober perturbs the
     controller's inputs and saves the output swing; the rule bounds
     it.
   - behavioural: the link's 2s mean utilisation must stay above 60%.

   Either firing disables the learned controller; the AIMD fallback
   takes over and utilisation recovers.

   Run with: dune exec examples/congestion_control.exe *)

open Gr_util

(* Counterfactual arm: the same scenario with no guardrails, showing
   the paper's "sudden drop in bandwidth utilization" unmitigated. *)
let unguarded_series () =
  let kernel = Guardrails.Kernel.create ~seed:29 in
  let net =
    Guardrails.Net.create ~engine:kernel.engine ~hooks:kernel.hooks ~capacity_mbps:100. ()
  in
  let cc = Gr_policy.Cc_controller.train ~rng:kernel.rng () in
  Guardrails.Policy_slot.install (Guardrails.Net.slot net) ~name:"learned-cc"
    (Gr_policy.Cc_controller.controller cc);
  Guardrails.Net.start net ~initial_rate_mbps:10.;
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 10) (fun _ ->
         Gr_policy.Cc_controller.inject_sensitivity cc ~scale:150.)
      : Guardrails.Sim.handle);
  let series = ref [] in
  let last_sum = ref 0. and last_ticks = ref 0 in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.sec 1) (fun _ ->
         let total = Guardrails.Net.mean_utilization net *. float_of_int (Guardrails.Net.ticks net) in
         let window = total -. !last_sum and n = Guardrails.Net.ticks net - !last_ticks in
         last_sum := total;
         last_ticks := Guardrails.Net.ticks net;
         series := (if n = 0 then 0. else window /. float_of_int n) :: !series)
      : Guardrails.Sim.handle);
  Guardrails.Kernel.run_until kernel (Time_ns.sec 20);
  List.rev !series

let () =
  let unguarded = unguarded_series () in
  let kernel = Guardrails.Kernel.create ~seed:29 in
  let net =
    Guardrails.Net.create ~engine:kernel.engine ~hooks:kernel.hooks ~capacity_mbps:100. ()
  in
  let cc = Gr_policy.Cc_controller.train ~rng:kernel.rng () in
  Guardrails.Policy_slot.install (Guardrails.Net.slot net) ~name:"learned-cc"
    (Gr_policy.Cc_controller.controller cc);
  Guardrails.Kernel.register_policy kernel ~name:"cc"
    ~replace:(fun () -> Gr_policy.Cc_controller.set_enabled cc false)
    ~restore:(fun () -> Gr_policy.Cc_controller.set_enabled cc true)
    ();

  let d = Guardrails.Deployment.create ~kernel () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"net:tick" ~arg:"util" ~key:"net_util" ();
  Gr_props.Props.P2_robustness.instrument_cc d cc ~rng:kernel.rng ~key:"cc_sensitivity"
    ~every:(Time_ns.ms 100);
  let guardrails =
    Gr_props.Props.P2_robustness.source ~name:"cc-robustness" ~sensitivity_key:"cc_sensitivity"
      ~bound:10. ~window:(Time_ns.sec 1) ~check_every:(Time_ns.ms 200)
      ~actions:
        [ {|REPORT("controller is noise-sensitive", cc_sensitivity)|}; {|REPLACE("cc")|} ]
      ()
    ^ {|
guardrail utilization-floor {
  trigger: { TIMER(0, 500ms) }
  rule: { COUNT(net_util, 2s) == 0 || AVG(net_util, 2s) >= 0.6 }
  action: { REPORT("bandwidth utilization collapsed", net_util); REPLACE("cc") }
}
|}
  in
  ignore (Guardrails.Deployment.install_source_exn d guardrails : Guardrails.Engine.handle list);

  Guardrails.Net.start net ~initial_rate_mbps:10.;
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 10) (fun _ ->
         print_endline "t=10s: model update makes the controller unstable";
         Gr_policy.Cc_controller.inject_sensitivity cc ~scale:150.)
      : Guardrails.Sim.handle);

  (* Sample utilisation per second. *)
  let series = ref [] in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.sec 1) (fun e ->
         series :=
           (Gr_sim.Engine.now e, Guardrails.Store.aggregate (Guardrails.Deployment.store d)
              ~key:"net_util" ~fn:Guardrails.Ast.Avg ~window_ns:1e9 ~param:0.)
           :: !series)
      : Guardrails.Sim.handle);

  Guardrails.Kernel.run_until kernel (Time_ns.sec 20);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "no guardrail fired"
  | v :: _ as all ->
    Format.printf "%d violation(s); first: %s at %a@." (List.length all)
      v.Guardrails.Engine.monitor Time_ns.pp v.Guardrails.Engine.at);
  Printf.printf "controller enabled at end: %b (fallback: AIMD)\n"
    (Gr_policy.Cc_controller.enabled cc);
  print_endline "link utilisation (1s windows):   unguarded   guardrailed";
  List.iter2
    (fun (at, util) unguarded ->
      Format.printf "  %a  %24.1f%%  %10.1f%%@." Time_ns.pp at (100. *. unguarded)
        (100. *. util))
    (List.rev !series) unguarded
