(* File readahead: the P3 out-of-bounds guardrail on the paper's own
   illustration — a learned prefetcher "prefetching chunks from a
   file beyond the memory limit for a process".

   A learned readahead policy predicts the remaining sequential run
   and prefetches it, beating the doubling heuristic on long streams.
   At t=1s a bad model update multiplies its window predictions; the
   oversized prefetches blow the process's page budget and evict the
   pages the application is about to read. A FUNCTION-triggered P3
   guardrail inspects every readahead decision against the memory
   limit and replaces the policy with the heuristic on the first
   illegal request.

   Run with: dune exec examples/readahead.exe *)

open Gr_util

let cache_pages = 128

let () =
  let kernel = Guardrails.Kernel.create ~seed:31 in
  let fs = Guardrails.Fs.create ~hooks:kernel.hooks ~cache_pages () in
  let model = Gr_policy.Readahead.train ~rng:kernel.rng ~mean_run:48. () in
  Guardrails.Policy_slot.install (Guardrails.Fs.slot fs) ~name:"learned-readahead"
    (Gr_policy.Readahead.policy model);
  Guardrails.Kernel.register_policy kernel ~name:"readahead"
    ~replace:(fun () -> Guardrails.Policy_slot.use_fallback (Guardrails.Fs.slot fs))
    ~restore:(fun () -> Guardrails.Policy_slot.restore (Guardrails.Fs.slot fs))
    ~retrain:(fun () -> Gr_policy.Readahead.retrain model ~mean_run:48.)
    ();

  let d = Guardrails.Deployment.create ~kernel () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"fs:readahead" ~arg:"requested"
    ~key:"readahead_req" ();
  let p3 =
    Gr_props.Props.P3_output_bounds.source ~name:"readahead-within-memory-limit"
      ~hook:"fs:readahead" ~key:"readahead_req" ~lo:0.
      ~hi:(float_of_int cache_pages)
      ~actions:
        [
          {|REPORT("prefetch beyond the process memory limit", readahead_req)|};
          {|REPLACE("readahead")|};
        ]
      ()
  in
  ignore (Guardrails.Deployment.install_source_exn d p3 : Guardrails.Engine.handle list);

  (* Streaming reader: 48-page sequential runs separated by seeks. *)
  let rng = Rng.fork kernel.rng in
  let offset = ref 0 and left = ref 0 in
  let hit_series = ref [] in
  let last_reads = ref 0 and last_hits = ref 0 in
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.us 20) (fun _ ->
         if !left = 0 then begin
           offset := Rng.int rng 60_000;
           left := 48
         end
         else incr offset;
         decr left;
         ignore (Guardrails.Fs.read fs ~offset:!offset : bool))
      : Guardrails.Sim.handle);
  ignore
    (Guardrails.Sim.every kernel.engine ~interval:(Time_ns.ms 250) (fun e ->
         let reads = Guardrails.Fs.reads fs and hits = Guardrails.Fs.hits fs in
         let rate =
           if reads = !last_reads then 0.
           else float_of_int (hits - !last_hits) /. float_of_int (reads - !last_reads)
         in
         last_reads := reads;
         last_hits := hits;
         hit_series := (Gr_sim.Engine.now e, rate) :: !hit_series)
      : Guardrails.Sim.handle);
  ignore
    (Guardrails.Sim.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         print_endline "t=1s: bad model update (windows x50)";
         Gr_policy.Readahead.inject_scale model 50.)
      : Guardrails.Sim.handle);

  Guardrails.Kernel.run_until kernel (Time_ns.sec 2);

  (match Guardrails.Engine.violations (Guardrails.Deployment.engine d) with
  | [] -> print_endline "P3 never fired"
  | v :: _ ->
    Format.printf "P3 fired at %a (requested %.0f pages against a %d-page limit)@." Time_ns.pp
      v.Guardrails.Engine.at
      (match v.Guardrails.Engine.snapshot with (_, r) :: _ -> r | [] -> nan)
      cache_pages);
  Printf.printf "readahead policy now: %s\n"
    (Guardrails.Policy_slot.current_name (Guardrails.Fs.slot fs));
  Printf.printf "wasted prefetches: %d\n" (Guardrails.Fs.prefetch_wasted fs);
  print_endline "page-cache hit rate (250ms windows):";
  List.iter
    (fun (at, rate) -> Format.printf "  %a  %5.1f%%@." Time_ns.pp at (100. *. rate))
    (List.rev !hit_series)
