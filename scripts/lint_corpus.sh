#!/bin/sh
# Runs `grc lint --strict` over the negative corpus in specs/bad and
# pins two things per file: the exit code (1 = warnings only, 2 =
# errors) and the GRLxxx code of the expected diagnostic family. The
# shipped specs in specs/ are checked to lint clean as one deployment.
# A second section does the same for `grc verify` (the GRL2xx/GRL3xx
# families plus the fixpoint-powered GRL001 cases; docs/LINT.md).
# Run from the repo root (the Makefile's `lint` target does).
set -u

GRC="dune exec --no-build grc --"
fail=0

expect() {
    file="specs/bad/$1"
    want_rc=$2
    want_code=$3
    out=$($GRC lint --strict "$file" 2>&1)
    rc=$?
    if [ "$rc" -ne "$want_rc" ]; then
        echo "FAIL $file: exit $rc, expected $want_rc" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    elif ! echo "$out" | grep -q "\[$want_code\]"; then
        echo "FAIL $file: expected a $want_code diagnostic, got:" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    else
        echo "ok   $file ($want_code, exit $rc)"
    fi
}

# Shipped specs must be clean, linted together as one deployment.
if $GRC lint --strict specs/*.grd; then
    echo "ok   specs/*.grd (clean deployment)"
else
    echo "FAIL specs/*.grd: shipped specs must lint clean" >&2
    fail=1
fi

expect always_true.grd      1 GRL001
expect always_false.grd     1 GRL002
expect div_by_zero.grd      2 GRL003
expect div_may_zero.grd     1 GRL003
expect disjoint_compare.grd 1 GRL004
expect nan_compare.grd      1 GRL005
expect dup_save.grd         2 GRL101
expect save_conflict.grd    1 GRL102
expect cascade_cycle.grd    2 GRL103
expect replace_flap.grd     1 GRL104
expect hook_budget.grd      2 GRL105

# --- grc verify ---------------------------------------------------------
# vexpect LABEL WANT_RC WANT_CODE ARGS...: run `grc verify --strict
# ARGS...`, pin the exit code and require a WANT_CODE diagnostic.
vexpect() {
    label=$1
    want_rc=$2
    want_code=$3
    shift 3
    out=$($GRC verify --strict "$@" 2>&1)
    rc=$?
    if [ "$rc" -ne "$want_rc" ]; then
        echo "FAIL verify $label: exit $rc, expected $want_rc" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    elif ! echo "$out" | grep -q "\[$want_code\]"; then
        echo "FAIL verify $label: expected a $want_code diagnostic, got:" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    else
        echo "ok   verify $label ($want_code, exit $rc)"
    fi
}

# Shipped specs must also verify clean, as one deployment.
if $GRC verify --strict specs/*.grd; then
    echo "ok   verify specs/*.grd (clean deployment)"
else
    echo "FAIL verify specs/*.grd: shipped specs must verify clean" >&2
    fail=1
fi

vexpect dataflow_chain.grd       1 GRL001 specs/bad/dataflow_chain.grd
vexpect unreachable_restore.grd  1 GRL201 specs/bad/unreachable_restore.grd
vexpect replace_storm.grd        1 GRL203 specs/bad/replace_storm.grd
vexpect "never_promote.grd --canary" 1 GRL202 --canary lat_model=0 specs/bad/never_promote.grd
vexpect "race_budget (fleet)"    1 GRL301 --fleet \
    specs/bad/race_budget_node0.grd specs/bad/race_budget_node1.grd

# The canary finding is a property of the rollout configuration:
# without --canary the same spec must verify clean.
if $GRC verify --strict specs/bad/never_promote.grd; then
    echo "ok   verify never_promote.grd (clean without --canary)"
else
    echo "FAIL verify never_promote.grd: must be clean without --canary" >&2
    fail=1
fi

# Commutative GLOBAL double-writer: the plain write-write conflict
# (GRL102) must fire, the race analysis (GRL301) must stay silent.
out=$($GRC verify --strict --fleet \
    specs/bad/race_heartbeat_node0.grd specs/bad/race_heartbeat_node1.grd 2>&1)
rc=$?
if [ "$rc" -ne 1 ] || ! echo "$out" | grep -q '\[GRL102\]' \
    || echo "$out" | grep -q '\[GRL301\]'; then
    echo "FAIL verify race_heartbeat: want exit 1 with GRL102 and no GRL301, got exit $rc:" >&2
    echo "$out" | sed 's/^/    /' >&2
    fail=1
else
    echo "ok   verify race_heartbeat (GRL102 only, commutative writes)"
fi

# The GRL203 counterexample must replay: run the schedule the checker
# prints through grc soak and require a clean pass whose slot line
# shows the policy back on its learned implementation after >= 2
# transitions (the flagged REPLACE -> RESTORE cycle, driven for real).
repro=$($GRC verify specs/bad/replace_storm.grd 2>&1 | sed -n 's/^  repro: grc //p')
if [ -z "$repro" ]; then
    echo "FAIL verify replace_storm.grd: no repro line emitted" >&2
    fail=1
else
    out=$(eval "$GRC $repro" 2>&1)
    if [ $? -eq 0 ] && echo "$out" | grep -q '^slot svc_policy: learned' \
        && ! echo "$out" | grep -q '(0 transition(s))\|(1 transition(s))'; then
        echo "ok   verify replace_storm.grd counterexample replays (slot learned, >=2 flips)"
    else
        echo "FAIL verify replace_storm.grd: counterexample did not replay:" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    fi
fi

exit $fail
