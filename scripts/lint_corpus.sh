#!/bin/sh
# Runs `grc lint --strict` over the negative corpus in specs/bad and
# pins two things per file: the exit code (1 = warnings only, 2 =
# errors) and the GRLxxx code of the expected diagnostic family. The
# shipped specs in specs/ are checked to lint clean as one deployment.
# Run from the repo root (the Makefile's `lint` target does).
set -u

GRC="dune exec --no-build grc --"
fail=0

expect() {
    file="specs/bad/$1"
    want_rc=$2
    want_code=$3
    out=$($GRC lint --strict "$file" 2>&1)
    rc=$?
    if [ "$rc" -ne "$want_rc" ]; then
        echo "FAIL $file: exit $rc, expected $want_rc" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    elif ! echo "$out" | grep -q "\[$want_code\]"; then
        echo "FAIL $file: expected a $want_code diagnostic, got:" >&2
        echo "$out" | sed 's/^/    /' >&2
        fail=1
    else
        echo "ok   $file ($want_code, exit $rc)"
    fi
}

# Shipped specs must be clean, linted together as one deployment.
if $GRC lint --strict specs/*.grd; then
    echo "ok   specs/*.grd (clean deployment)"
else
    echo "FAIL specs/*.grd: shipped specs must lint clean" >&2
    fail=1
fi

expect always_true.grd      1 GRL001
expect always_false.grd     1 GRL002
expect div_by_zero.grd      2 GRL003
expect div_may_zero.grd     1 GRL003
expect disjoint_compare.grd 1 GRL004
expect nan_compare.grd      1 GRL005
expect dup_save.grd         2 GRL101
expect save_conflict.grd    1 GRL102
expect cascade_cycle.grd    2 GRL103
expect replace_flap.grd     1 GRL104
expect hook_budget.grd      2 GRL105

exit $fail
