#!/bin/sh
# Observability smoke (make obs-smoke).
#
# End-to-end check of the decision-provenance plane:
#   1. the traced quickstart (Listing 2 against the Figure 2 workload)
#      produces a trace whose t=3s REPORT `grc explain` can walk back
#      to the sim dispatch that caused it, with the rule disassembly,
#      the SAVE effect and the recursive input data flow all present;
#   2. `grc run --metrics` emits the expected OpenMetrics exposition,
#      single-node and 2-node fleet, golden-diffed after filtering the
#      selfcost host-time lines (the only host-dependent series —
#      everything else is sim-deterministic).
set -eu

ROOT=$(pwd)
GRC="$ROOT/_build/default/bin/grc.exe"
QUICKSTART="$ROOT/_build/default/examples/quickstart.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
    echo "obs-smoke: $1" >&2
    exit 1
}

# 1. Traced quickstart, then explain its first (t=3s) REPORT.
(cd "$TMP" && "$QUICKSTART" > quickstart.out) \
    || fail "quickstart run failed"
[ -s "$TMP/quickstart_trace.json" ] || fail "quickstart wrote no trace"
"$GRC" explain "$TMP/quickstart_trace.json" --report 0 > "$TMP/explain.txt" \
    || fail "grc explain failed"
for needle in \
    "sim dispatch" \
    "check low-false-submit" \
    "report low-false-submit" \
    "action SAVE" \
    "inputs read:" \
    "false_submit_rate" \
    "hook blk:io_complete"
do
    grep -q "$needle" "$TMP/explain.txt" \
        || fail "explanation is missing '$needle' (see $TMP/explain.txt)"
done

# 2. OpenMetrics goldens: grc run with telemetry, single-node and fleet.
"$GRC" run specs/listing2.grd --until 4 --trace "$TMP/l2_trace.json" \
    --metrics "$TMP/single.prom" > /dev/null \
    || fail "grc run --metrics failed"
grep -v selfcost_host_ns "$TMP/single.prom" > "$TMP/single.filtered"
diff -u scripts/obs_golden_single.prom "$TMP/single.filtered" \
    || fail "single-node OpenMetrics exposition diverged from golden"

"$GRC" run specs/listing2.grd --until 4 --nodes 2 \
    --metrics "$TMP/fleet.prom" > /dev/null \
    || fail "grc run --nodes 2 --metrics failed"
grep -v selfcost_host_ns "$TMP/fleet.prom" > "$TMP/fleet.filtered"
diff -u scripts/obs_golden_fleet.prom "$TMP/fleet.filtered" \
    || fail "fleet OpenMetrics exposition diverged from golden"

echo "obs-smoke: OK (explained report 0, both OpenMetrics goldens match)"
