#!/bin/sh
# Parallel-runtime smoke (make par-smoke), docs/PARALLEL.md.
#
# End-to-end check of the epoch-barrier runtime through the CLI:
#   1. `grc run --domains 1` produces a trace and report
#      byte-identical to the default sequential run (the determinism
#      contract at its strictest);
#   2. `grc run --domains 2` on the same fleet spec completes clean;
#   3. the fleet chaos soak passes with nodes on two domains —
#      invariants (merged-aggregate oracle, REPLACE bookkeeping, hook
#      exception accounting) checked at every epoch barrier while
#      faults land on node 0.
# Budget: well under 30s.
set -eu

ROOT=$(pwd)
GRC="$ROOT/_build/default/bin/grc.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
    echo "par-smoke: $1" >&2
    exit 1
}

# 1. Sequential vs --domains 1: byte-identical trace and stdout.
"$GRC" run specs/fleet_tail_latency.grd --nodes 3 --until 2 \
    --trace "$TMP/seq.json" > "$TMP/seq.out" \
    || fail "sequential run failed"
"$GRC" run specs/fleet_tail_latency.grd --nodes 3 --until 2 --domains 1 \
    --trace "$TMP/d1.json" > "$TMP/d1.out" \
    || fail "--domains 1 run failed"
cmp -s "$TMP/seq.json" "$TMP/d1.json" \
    || fail "--domains 1 trace diverged from the sequential run"
# The report text only differs in the trace filename it echoes.
sed "s/d1\.json/seq.json/" "$TMP/d1.out" | diff -u "$TMP/seq.out" - \
    || fail "--domains 1 stdout diverged from the sequential run"

# 2. The same spec on the parallel runtime proper.
"$GRC" run specs/fleet_tail_latency.grd --nodes 3 --until 2 --domains 2 \
    > /dev/null \
    || fail "--domains 2 run failed"

# 3. Fleet chaos soak with node event streams on two domains.
"$GRC" soak --scenario fleet --nodes 4 --domains 2 --runs 3 --duration 0.5 \
    > "$TMP/soak.out" \
    || { cat "$TMP/soak.out" >&2; fail "fleet soak under --domains 2 failed"; }

echo "par-smoke: OK (--domains 1 byte-identical; --domains 2 run + soak clean)"
