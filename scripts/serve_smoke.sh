#!/bin/sh
# Live control-plane smoke (make serve-smoke), docs/SERVE.md.
#
# Drives one scripted `grc serve` session end to end over the unix
# socket:
#   1. daemon boots a fleet from a spec and listens (--hold: the sim
#      advances only on `advance` commands, so every timestamp and
#      span id below is deterministic);
#   2. a good push admits, canaries onto node 0 and promotes after
#      three clean epoch-barrier verdicts;
#   3. a lint-rejected push (GRL003 division by zero) bounces with
#      structured diagnostics and a non-zero client exit;
#   4. a guardrail-violating push admits, then auto-rolls-back at the
#      first verdict (fire rate over --max-fire-rate), restoring the
#      promoted version;
#   5. the audit log of the whole session byte-diffs against the
#      checked-in golden;
#   6. a --nodes 1 serve session's trace byte-diffs against the same
#      spec under plain `grc run` (the control plane costs zero trace
#      events on the steady path).
# Budget: well under 30s.
set -eu

ROOT=$(pwd)
GRC="$ROOT/_build/default/bin/grc.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

SOCK="$TMP/grc.sock"

fail() {
    echo "serve-smoke: $1" >&2
    [ -f "$TMP/serve.log" ] && sed 's/^/serve-smoke:   daemon: /' "$TMP/serve.log" >&2
    exit 1
}

# Pushed specs. Contents are part of the golden audit log (digests),
# so they are fixed here rather than generated.
cat > "$TMP/good.grd" <<'EOF'
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 5e8 },
  action: {
    REPORT("p99 degraded", latency_us)
    REPLACE("lat_predictor")
  }
}
EOF
cat > "$TMP/hot.grd" <<'EOF'
guardrail serve-heartbeat {
  trigger: { TIMER(0, 10ms) },
  rule: { COUNT(serve_heartbeat, 1s) >= 1 },
  action: {
    REPORT("no heartbeat", serve_heartbeat)
    REPLACE("lat_predictor")
  }
}
EOF

# 1. Boot the daemon: 3-node fleet, held clock, audited.
"$GRC" serve specs/latency_trend.grd --nodes 3 --hold --seed 42 \
    --socket "$SOCK" --audit-log "$TMP/audit.jsonl" --who boot \
    > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon never opened its socket"
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
done

# 2. Good push: admitted, canaried, promoted after 4 barriers
#    (install + 3 clean verdicts).
"$GRC" push --socket "$SOCK" --who alice "$TMP/good.grd" > "$TMP/good.out" \
    || fail "good push rejected"
grep -q "^v2 admitted" "$TMP/good.out" || fail "good push not admitted as v2"
"$GRC" push --socket "$SOCK" --advance 4 > /dev/null || fail "advance failed"
"$GRC" push --socket "$SOCK" --status --json > "$TMP/status1.out" || fail "status failed"
grep -q '"phase":"steady"' "$TMP/status1.out" || fail "not steady after promotion"
grep -q '"promotions":1' "$TMP/status1.out" || fail "good push did not promote"

# 3. Lint-rejected push: structured diagnostics, client exits 1.
if "$GRC" push --socket "$SOCK" --who mallory specs/bad/div_by_zero.grd \
    > "$TMP/bad.out" 2>&1; then
    fail "GRL003 spec was accepted"
fi
grep -q "GRL003" "$TMP/bad.out" || fail "rejection lost its GRL003 diagnostic"

# 4. Guardrail-violating push: admits, then the first verdict rolls
#    it back and restores v2.
"$GRC" push --socket "$SOCK" --who mallory "$TMP/hot.grd" > "$TMP/hot.out" \
    || fail "hot push should admit (it only fails at runtime)"
"$GRC" push --socket "$SOCK" --advance 2 > /dev/null || fail "advance failed"
"$GRC" push --socket "$SOCK" --status --json > "$TMP/status2.out" || fail "status failed"
grep -q '"rollbacks":1' "$TMP/status2.out" || fail "hot push did not roll back"
grep -q '"version":2' "$TMP/status2.out" || fail "rollback did not restore v2"

"$GRC" push --socket "$SOCK" --quit > /dev/null || fail "quit failed"
wait "$SERVE_PID" || fail "daemon exited non-zero"

# 5. The session's decision history, byte for byte.
cmp -s scripts/serve_golden_audit.jsonl "$TMP/audit.jsonl" || {
    diff -u scripts/serve_golden_audit.jsonl "$TMP/audit.jsonl" >&2 || true
    fail "audit log diverged from golden"
}

# 6. serve --nodes 1 vs grc run: byte-identical trace.
"$GRC" serve specs/latency_trend.grd --nodes 1 --hold --seed 42 \
    --socket "$SOCK" --trace "$TMP/serve_trace.json" > /dev/null 2>&1 &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "single-node daemon never opened its socket"
    sleep 0.1
done
"$GRC" push --socket "$SOCK" --advance 40 > /dev/null || fail "advance failed"
"$GRC" push --socket "$SOCK" --quit > /dev/null || fail "quit failed"
wait "$SERVE_PID" || fail "single-node daemon exited non-zero"
"$GRC" run specs/latency_trend.grd --seed 42 --until 2 \
    --trace "$TMP/run_trace.json" > /dev/null || fail "grc run failed"
cmp -s "$TMP/serve_trace.json" "$TMP/run_trace.json" \
    || fail "serve --nodes 1 trace diverged from grc run"

echo "serve-smoke: OK (push/promote, reject, auto-rollback, golden audit log, run-identical trace)"
