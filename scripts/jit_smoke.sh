#!/bin/sh
# Tiered-execution smoke (make jit-smoke), docs/PERFORMANCE.md.
#
# The tier-invariance contract through the CLI: the fig. 2
# false-submit guardrail run under all three execution tiers —
# tree-walking reference, register VM, template JIT — must produce
# byte-identical traces and reports. Any divergence in verdicts,
# cost accounting, or event ordering shows up as a byte diff.
# Budget: well under 10s.
set -eu

ROOT=$(pwd)
GRC="$ROOT/_build/default/bin/grc.exe"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
    echo "jit-smoke: $1" >&2
    exit 1
}

for tier in tree reg jit; do
    "$GRC" run specs/listing2.grd --until 3 --engine "$tier" \
        --trace "$TMP/$tier.json" > "$TMP/$tier.out" \
        || fail "--engine $tier run failed"
done

for tier in reg jit; do
    cmp -s "$TMP/tree.json" "$TMP/$tier.json" \
        || fail "--engine $tier trace diverged from the tree reference"
    # The report text only differs in the trace filename it echoes.
    sed "s/$tier\.json/tree.json/" "$TMP/$tier.out" | diff -u "$TMP/tree.out" - \
        || fail "--engine $tier stdout diverged from the tree reference"
done

echo "jit-smoke: OK (tree/reg/jit traces and reports byte-identical)"
