(** Inter-rule SAVE dataflow: a whole-deployment abstract store.

    Monitors communicate through the feature store — one rule's SAVE
    is another rule's LOAD. This module closes that loop for the
    static analyses: it builds the SAVE dataflow graph over a
    deployment and propagates {!Interval} abstractions through
    SAVE-defined keys to a widening/narrowing fixpoint, so the
    per-program verdicts (GRL001–005 in {!Analyze}) and the
    action-machine checker ({!Machine}) see sound value ranges for
    keys whose contents are {e other rules' outputs}, not just
    external telemetry.

    Iteration starts from every SAVE-written key at [{0}] (the
    store's initial value) and ascends by chaotic iteration; after a
    few warmup rounds, still-growing keys are widened (finite bounds
    jump to ±∞) so cyclic SAVE chains terminate. A bounded narrowing
    pass then re-applies the exact transfer, keeping refinements only
    while the environment remains a post-fixpoint. Keys never written
    by any SAVE stay {!Interval.unknown} (external, finite).

    Also home to the abstract evaluation primitives for straight-line
    {!Gr_compiler.Ir} programs, shared by {!Analyze} and
    {!Machine}. *)

type t = {
  env : (string, Interval.t) Hashtbl.t;
  keys : string list;  (** SAVE-written keys, sorted *)
  rounds : int;  (** ascending rounds until stabilization *)
  widenings : int;  (** widening steps taken *)
}

val fixpoint : Gr_compiler.Monitor.t list -> t
(** The least post-fixpoint the widening/narrowing schedule reaches
    for the deployment's SAVE graph. Deterministic: iteration order
    is first-written key order. *)

val lookup : t -> string -> Interval.t
(** Abstract store contents under the fixpoint;
    {!Interval.unknown} for keys no SAVE writes. *)

val is_post_fixpoint : Gr_compiler.Monitor.t list -> t -> bool
(** Soundness check: [F(env) ⊑ env] pointwise on every SAVE-written
    key — exposed for the QCheck termination property. *)

(** {2 Abstract evaluation primitives} *)

val eval_unop : Gr_dsl.Ast.unop -> Interval.t -> Interval.t
val eval_binop : Gr_dsl.Ast.binop -> Interval.t -> Interval.t -> Interval.t

val eval_agg : Gr_dsl.Ast.agg -> Interval.t -> Interval.t
(** Range of a windowed aggregate given the key's sample range;
    always includes 0, the empty-window result. *)

val eval_program :
  lookup:(string -> Interval.t) -> slots:string array -> Gr_compiler.Ir.program -> Interval.t array
(** Per-register abstract values of a straight-line program (single
    assignment makes the final register file a complete record of
    every intermediate). *)

val result_value :
  lookup:(string -> Interval.t) -> slots:string array -> Gr_compiler.Ir.program -> Interval.t
(** The program's result register; {!Interval.unknown} for the empty
    program. *)

val saves : Gr_compiler.Monitor.t -> (string * Gr_compiler.Ir.program) list
(** A monitor's SAVE actions as [(key, value program)] pairs. *)
