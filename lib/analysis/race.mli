(** Fleet race analysis — the GRL3xx pass of [grc verify --fleet].

    The parallel fleet runtime (docs/PARALLEL.md) buffers cross-node
    GLOBAL saves as intents and replays them at each epoch barrier in
    [(ts, node, order)] order. That makes execution deterministic —
    but a spec whose nodes write the {e same} GLOBAL key with
    {e different} values at the {e same} instant is deterministic
    only by accident of that tie-break: swap two node ids and the
    merged value changes.

    [GRL301] (warning) fires when, for some GLOBAL key:
    - at least two distinct nodes SAVE it,
    - the writes are not provably commutative (all writers the same
      single constant under the {!Dataflow} fixpoint),
    - two writers' check instants can coincide — two timer grids
      share an instant iff [(s2 − s1) mod gcd(i1, i2) = 0] (the
      earliest one is reported); ON_CHANGE and FUNCTION triggers can
      coincide with anything — and
    - some monitor reads the key order-sensitively: LOAD (last write
      wins) or DELTA (first vs last of the window). The multiset
      aggregates are insensitive to same-timestamp ordering and
      don't count. *)

val check : (int * Gr_compiler.Monitor.t) list -> Diagnostic.t list
(** [check tagged] over [(node id, monitor)] pairs — the fleet
    deployment after {!Gr_compiler.Monitor.qualify}. Diagnostics in
    first-written-key order, deterministic. *)
