module Ast = Gr_dsl.Ast
module Ir = Gr_compiler.Ir
module Monitor = Gr_compiler.Monitor

(* One node's write into a GLOBAL key. *)
type writer = {
  w_node : int;
  w_monitor : Monitor.t;
  w_value : Interval.t;  (* SAVE value under the dataflow fixpoint *)
}

(* All GLOBAL-key writers, grouped by key, in deployment order. *)
let global_writers df (tagged : (int * Monitor.t) list) =
  let tbl = Hashtbl.create 8 and order = ref [] in
  List.iter
    (fun (node, m) ->
      List.iter
        (fun (key, value) ->
          if Ast.is_global_key key then begin
            if not (Hashtbl.mem tbl key) then order := key :: !order;
            let w =
              {
                w_node = node;
                w_monitor = m;
                w_value =
                  Dataflow.result_value ~lookup:(Dataflow.lookup df) ~slots:m.Monitor.slots
                    value;
              }
            in
            Hashtbl.replace tbl key (Option.value ~default:[] (Hashtbl.find_opt tbl key) @ [ w ])
          end)
        (Dataflow.saves m))
    tagged;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order |> List.rev

(* Two periodic check grids share an instant iff
   (s2 − s1) mod gcd(i1, i2) = 0; ON_CHANGE and FUNCTION triggers can
   coincide with anything. *)
let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let timers m =
  List.filter_map
    (function
      | Monitor.Timer { start_ns; interval_ns; stop_ns } -> Some (start_ns, interval_ns, stop_ns)
      | _ -> None)
    m.Monitor.triggers

let only_timer_triggered m =
  m.Monitor.triggers <> []
  && List.for_all (function Monitor.Timer _ -> true | _ -> false) m.Monitor.triggers

(* The earliest shared instant of two timer grids, if any. *)
let tie_instant (s1, i1, stop1) (s2, i2, stop2) =
  if i1 <= 0 || i2 <= 0 then None
  else begin
    let (sl, il, stl), (sh, ih, sth) =
      if s1 <= s2 then ((s1, i1, stop1), (s2, i2, stop2))
      else ((s2, i2, stop2), (s1, i1, stop1))
    in
    if (sh - sl) mod gcd il ih <> 0 then None
    else begin
      (* Walk the later-starting grid; the gcd test guarantees a hit
         within lcm/ih steps, bounded here far beyond any real
         spec. *)
      let ok t =
        (match stl with None -> true | Some s -> t < s)
        && match sth with None -> true | Some s -> t < s
      in
      let rec walk t k =
        if k > 1_000_000 then None
        else if t >= sl && (t - sl) mod il = 0 then if ok t then Some t else None
        else walk (t + ih) (k + 1)
      in
      walk sh 0
    end
  end

let coincide a b =
  if only_timer_triggered a.w_monitor && only_timer_triggered b.w_monitor then begin
    let rec first = function
      | [] -> None
      | ta :: rest -> (
        match List.find_map (fun tb -> tie_instant ta tb) (timers b.w_monitor) with
        | Some t -> Some t
        | None -> first rest)
    in
    first (timers a.w_monitor)
  end
  else Some 0 (* ON_CHANGE / FUNCTION triggers can always coincide *)

(* Writers whose merged value cannot depend on order: every SAVE is
   provably the same single constant. *)
let commutative writers =
  let single w =
    let v = w.w_value in
    if
      Interval.has_finite v && v.Interval.lo = v.Interval.hi
      && (not v.Interval.pinf) && (not v.Interval.ninf) && not v.Interval.nan
    then Some v.Interval.lo
    else None
  in
  match writers with
  | [] -> true
  | w0 :: rest -> (
    match single w0 with
    | None -> false
    | Some c -> List.for_all (fun w -> single w = Some c) rest)

(* Readers for which the merged key's replay order is observable:
   LOAD sees the last write, DELTA the first-vs-last of the window.
   The multiset aggregates (COUNT/SUM/AVG/.../RATE) are insensitive
   to same-timestamp ordering. *)
let sensitive_reads key (m : Monitor.t) =
  let progs = m.Monitor.rule :: List.map snd (Dataflow.saves m) in
  let kinds = ref [] in
  List.iter
    (fun (p : Ir.program) ->
      Array.iter
        (fun inst ->
          match inst with
          | Ir.Load { slot; _ } when m.Monitor.slots.(slot) = key ->
            kinds := "LOAD" :: !kinds
          | Ir.Agg { fn = Ast.Delta; slot; _ } when m.Monitor.slots.(slot) = key ->
            kinds := "DELTA" :: !kinds
          | _ -> ())
        p.Ir.insts)
    progs;
  List.sort_uniq compare !kinds

let check (tagged : (int * Monitor.t) list) =
  let df = Dataflow.fixpoint (List.map snd tagged) in
  let out = ref [] in
  List.iter
    (fun (key, writers) ->
      let nodes = List.map (fun w -> w.w_node) writers |> List.sort_uniq compare in
      if List.length nodes >= 2 && not (commutative writers) then begin
        (* A pair of writers on different nodes whose checks can land
           on the same instant: the merge tie-breaks on
           (ts, node, order). *)
        let pair =
          List.find_map
            (fun a ->
              List.find_map
                (fun b ->
                  if a.w_node <> b.w_node then
                    Option.map (fun t -> (a, b, t)) (coincide a b)
                  else None)
                writers)
            writers
        in
        match pair with
        | None -> ()
        | Some (a, b, t) ->
          let readers =
            List.filter_map
              (fun (_, m) ->
                match sensitive_reads key m with
                | [] -> None
                | ks -> Some (Printf.sprintf "%s via %s" m.Monitor.name (String.concat "+" ks)))
              tagged
            |> List.sort_uniq compare
          in
          if readers <> [] then
            out :=
              Diagnostic.warning ~monitor:a.w_monitor.Monitor.name
                ~pos:a.w_monitor.Monitor.pos ~code:"GRL301"
                (Printf.sprintf
                   "GLOBAL key %S is written from %d nodes with checks that can coincide (e.g. \
                    t=%dns: %s on node %d vs %s on node %d, values %s vs %s): the merged value \
                    depends on the (ts, node, order) intent-replay tie-break; order-sensitive \
                    reader(s): %s"
                   key (List.length nodes) t a.w_monitor.Monitor.name a.w_node
                   b.w_monitor.Monitor.name b.w_node
                   (Interval.to_string a.w_value) (Interval.to_string b.w_value)
                   (String.concat ", " readers))
              :: !out
      end)
    (global_writers df tagged);
  List.rev !out
