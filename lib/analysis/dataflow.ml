module Ast = Gr_dsl.Ast
module Ir = Gr_compiler.Ir
module Monitor = Gr_compiler.Monitor

(* ---------- Abstract evaluation of straight-line programs ---------- *)

let eval_unop op v =
  match op with
  | Ast.Neg -> Interval.neg v
  | Ast.Abs -> Interval.abs v
  | Ast.Not -> Interval.not_ v

let eval_binop op a b =
  match op with
  | Ast.Add -> Interval.add a b
  | Ast.Sub -> Interval.sub a b
  | Ast.Mul -> Interval.mul a b
  | Ast.Div -> Interval.div a b
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> Interval.cmp op a b
  | Ast.And -> Interval.and_ a b
  | Ast.Or -> Interval.or_ a b

(* Range of a windowed aggregate given the key's sample range. An
   empty window yields 0 in the feature store, so 0 is always
   included. *)
let eval_agg (fn : Ast.agg) key_av =
  match fn with
  | Ast.Count | Ast.Rate | Ast.Stddev -> Interval.finite 0. infinity
  | Ast.Avg | Ast.Min | Ast.Max | Ast.Quantile -> Interval.join (Interval.const 0.) key_av
  | Ast.Sum ->
    (* Magnitude scales with the (unbounded) sample count. *)
    let h = Interval.join (Interval.const 0.) key_av in
    {
      h with
      Interval.lo = (if Interval.may_neg h then neg_infinity else h.Interval.lo);
      hi = (if Interval.may_pos h then infinity else h.Interval.hi);
    }
  | Ast.Delta ->
    (* last − first: the self-difference of the sample range. *)
    Interval.join (Interval.const 0.) (Interval.sub key_av key_av)

(* Evaluates a straight-line program, returning the per-register
   abstract values (single assignment makes the final register file a
   complete record of every intermediate). *)
let eval_program ~lookup ~(slots : string array) (p : Ir.program) =
  let regs = Array.make (max 1 p.Ir.n_regs) Interval.bot in
  Array.iter
    (fun inst ->
      let v =
        match inst with
        | Ir.Const { value; _ } -> Interval.const value
        | Ir.Load { slot; _ } -> lookup slots.(slot)
        | Ir.Agg { fn; slot; _ } -> eval_agg fn (lookup slots.(slot))
        | Ir.Unop { op; src; _ } -> eval_unop op regs.(src)
        | Ir.Binop { op; lhs; rhs; _ } -> eval_binop op regs.(lhs) regs.(rhs)
      in
      regs.(Ir.dst inst) <- v)
    p.Ir.insts;
  regs

let result_value ~lookup ~slots (p : Ir.program) =
  if Array.length p.Ir.insts = 0 then Interval.unknown
  else (eval_program ~lookup ~slots p).(p.Ir.result)

let saves m =
  List.filter_map
    (function Monitor.Save { key; value } -> Some (key, value) | _ -> None)
    m.Monitor.actions

(* ---------- The SAVE dataflow fixpoint ---------- *)

type t = {
  env : (string, Interval.t) Hashtbl.t;
  keys : string list;  (** SAVE-written keys, sorted *)
  rounds : int;
  widenings : int;
}

let warmup_rounds = 3
let max_rounds = 64
let narrow_rounds = 2

(* SAVE-written keys in first-written order, plus each key's writer
   programs in deployment order. *)
let writers monitors =
  let tbl = Hashtbl.create 16 and order = ref [] in
  List.iter
    (fun m ->
      List.iter
        (fun (key, value) ->
          let prev =
            match Hashtbl.find_opt tbl key with
            | Some ws -> ws
            | None ->
              order := key :: !order;
              []
          in
          Hashtbl.replace tbl key (prev @ [ (m.Monitor.slots, value) ]))
        (saves m))
    monitors;
  (List.rev !order, tbl)

(* F(env)(key): join over the key's SAVE programs under [env], plus 0
   — the store's initial value, which every key holds before its
   first write. *)
let transfer ~lookup wtbl key =
  List.fold_left
    (fun acc (slots, value) -> Interval.join acc (result_value ~lookup ~slots value))
    (Interval.const 0.) (Hashtbl.find wtbl key)

let lookup t key =
  match Hashtbl.find_opt t.env key with Some v -> v | None -> Interval.unknown

let env_lookup env key =
  match Hashtbl.find_opt env key with Some v -> v | None -> Interval.unknown

let fixpoint monitors =
  let order, wtbl = writers monitors in
  let env = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace env k (Interval.const 0.)) order;
  let lookup = env_lookup env in
  let rounds = ref 0 and widenings = ref 0 in
  (* Ascending chaotic iteration from the all-initial environment,
     switching from plain join to widening after a few warmup rounds
     so converging chains keep exact bounds while genuinely growing
     ones jump to ±∞ and stabilize. *)
  let changed = ref true in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    List.iter
      (fun k ->
        let cur = Hashtbl.find env k in
        let nxt = transfer ~lookup wtbl k in
        if not (Interval.subset nxt cur) then begin
          let nxt =
            if !rounds > warmup_rounds then begin
              incr widenings;
              Interval.widen cur nxt
            end
            else Interval.join cur nxt
          in
          Hashtbl.replace env k nxt;
          changed := true
        end)
      order
  done;
  (* Bounded narrowing: re-apply the exact transfer a few times into a
     copy, keeping a key's refinement only when it shrinks, and adopt
     the copy only if it is still a post-fixpoint — widened bounds
     that were overshoot come back, genuine ones stay at ±∞. *)
  let narrowed = Hashtbl.copy env in
  let nlookup = env_lookup narrowed in
  for _ = 1 to narrow_rounds do
    List.iter
      (fun k ->
        let cur = Hashtbl.find narrowed k in
        let nxt = transfer ~lookup:nlookup wtbl k in
        if Interval.subset nxt cur then Hashtbl.replace narrowed k nxt)
      order
  done;
  let still_post =
    List.for_all
      (fun k -> Interval.subset (transfer ~lookup:nlookup wtbl k) (nlookup k))
      order
  in
  let env = if still_post then narrowed else env in
  { env; keys = List.sort compare order; rounds = !rounds; widenings = !widenings }

let is_post_fixpoint monitors t =
  let order, wtbl = writers monitors in
  List.for_all (fun k -> Interval.subset (transfer ~lookup:(lookup t) wtbl k) (lookup t k)) order
