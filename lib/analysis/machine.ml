module Ast = Gr_dsl.Ast
module Ir = Gr_compiler.Ir
module Monitor = Gr_compiler.Monitor
module Model = Gr_kernel.Policy_slot.Model

type config = {
  max_states : int;
  canaries : (string * int list) list;
}

let default_config = { max_states = 4096; canaries = [] }

type slot_state = Live | Canaried | Fallback

type step = { at_ns : int; step_key : string; step_value : float }

type schedule = {
  steps : step list;
  horizon_ns : int;
  expected : (string * bool) list;
  min_flips : (string * int) list;
}

type finding = {
  diag : Diagnostic.t;
  path : string list;
  schedule : schedule option;
}

type result = {
  findings : finding list;
  states : int;
  transitions : int;
  truncated : bool;
}

(* ---------- Deployment digest ---------- *)

type deploy = {
  monitors : Monitor.t array;
  policies : string array;  (* sorted *)
  policy_idx : (string, int) Hashtbl.t;
  classes : string array;  (* sorted *)
  class_idx : (string, int) Hashtbl.t;
  n_savers : int;
  saver_of : int array;  (* monitor index -> saver bit, or -1 *)
  actors : int list;  (* monitors with state-affecting actions *)
  save_writers : (string, (int * Interval.t) list) Hashtbl.t;
      (* key -> (saver bit, SAVE value under the full fixpoint) *)
  canary : string -> int list option;
}

let state_affecting = function
  | Monitor.Replace _ | Monitor.Restore _ | Monitor.Save _ | Monitor.Deprioritize _ -> true
  | Monitor.Report _ | Monitor.Retrain _ | Monitor.Kill _ -> false

let digest config (monitors : Monitor.t list) =
  let marr = Array.of_list monitors in
  let pols = ref [] and clss = ref [] in
  Array.iter
    (fun m ->
      List.iter
        (function
          | Monitor.Replace p | Monitor.Restore p -> pols := p :: !pols
          | Monitor.Deprioritize { cls; _ } -> clss := cls :: !clss
          | _ -> ())
        m.Monitor.actions)
    marr;
  let policies = Array.of_list (List.sort_uniq compare !pols) in
  let classes = Array.of_list (List.sort_uniq compare !clss) in
  let index arr =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i x -> Hashtbl.replace tbl x i) arr;
    tbl
  in
  let saver_of = Array.make (Array.length marr) (-1) in
  let n_savers = ref 0 in
  Array.iteri
    (fun i m ->
      if Dataflow.saves m <> [] then begin
        saver_of.(i) <- !n_savers;
        incr n_savers
      end)
    marr;
  let actors =
    List.init (Array.length marr) Fun.id
    |> List.filter (fun i -> List.exists state_affecting marr.(i).Monitor.actions)
  in
  let df = Dataflow.fixpoint monitors in
  let save_writers = Hashtbl.create 16 in
  Array.iteri
    (fun i m ->
      List.iter
        (fun (key, value) ->
          let v =
            Dataflow.result_value ~lookup:(Dataflow.lookup df) ~slots:m.Monitor.slots value
          in
          let prev = Option.value ~default:[] (Hashtbl.find_opt save_writers key) in
          Hashtbl.replace save_writers key (prev @ [ (saver_of.(i), v) ]))
        (Dataflow.saves m))
    marr;
  {
    monitors = marr;
    policies;
    policy_idx = index policies;
    classes;
    class_idx = index classes;
    n_savers = !n_savers;
    saver_of;
    actors;
    save_writers;
    canary = (fun p -> List.assoc_opt p config.canaries);
  }

(* ---------- Abstract states and transitions ---------- *)

type state = {
  slots : slot_state array;  (* indexed like [policies] *)
  fired : bool array;  (* indexed by saver bit *)
  depri : bool array;  (* indexed like [classes] *)
}

let initial d =
  {
    slots = Array.make (Array.length d.policies) Live;
    fired = Array.make d.n_savers false;
    depri = Array.make (Array.length d.classes) false;
  }

let encode st =
  let b = Buffer.create 16 in
  Array.iter
    (fun s -> Buffer.add_char b (match s with Live -> 'L' | Canaried -> 'C' | Fallback -> 'F'))
    st.slots;
  Buffer.add_char b '|';
  Array.iter (fun f -> Buffer.add_char b (if f then '1' else '0')) st.fired;
  Buffer.add_char b '|';
  Array.iter (fun f -> Buffer.add_char b (if f then '1' else '0')) st.depri;
  Buffer.contents b

(* Abstract store under a set of already-fired savers: a SAVE-written
   key is 0 (its initial value) joined with the values of the savers
   that may have run, taken under the full dataflow fixpoint — an
   over-approximation of any firing prefix, so "the rule cannot be
   false here" is a proof that the monitor cannot fire. *)
let env_of d (st : state) key =
  match Hashtbl.find_opt d.save_writers key with
  | None -> Interval.unknown
  | Some ws ->
    List.fold_left
      (fun acc (bit, v) -> if bit >= 0 && st.fired.(bit) then Interval.join acc v else acc)
      (Interval.const 0.) ws

let may_fire d st mi =
  let m = d.monitors.(mi) in
  Interval.may_false
    (Dataflow.result_value ~lookup:(env_of d st) ~slots:m.Monitor.slots m.Monitor.rule)

let of_model = function Model.Learned -> Live | Model.Fallback -> Fallback
let to_model = function Live | Canaried -> Model.Learned | Fallback -> Model.Fallback

let apply d st mi =
  let slots = Array.copy st.slots
  and fired = Array.copy st.fired
  and depri = Array.copy st.depri in
  List.iter
    (function
      | Monitor.Replace p ->
        let pi = Hashtbl.find d.policy_idx p in
        slots.(pi) <-
          (match d.canary p with
          | Some _ ->
            (* A canaried REPLACE lands on the canary node subset
               only; the rest of the fleet keeps the learned
               policy. *)
            (match slots.(pi) with Fallback -> Fallback | Live | Canaried -> Canaried)
          | None -> of_model (Model.step (to_model slots.(pi)) Model.Replace))
      | Monitor.Restore p ->
        let pi = Hashtbl.find d.policy_idx p in
        slots.(pi) <- of_model (Model.step (to_model slots.(pi)) Model.Restore)
      | Monitor.Save _ -> if d.saver_of.(mi) >= 0 then fired.(d.saver_of.(mi)) <- true
      | Monitor.Deprioritize { cls; _ } -> depri.(Hashtbl.find d.class_idx cls) <- true
      | Monitor.Report _ | Monitor.Retrain _ | Monitor.Kill _ -> ())
    d.monitors.(mi).Monitor.actions;
  { slots; fired; depri }

(* ---------- Reachability ---------- *)

type graph = {
  d : deploy;
  states : state array;  (* state id -> state, BFS order *)
  pred : (int * int) option array;  (* state id -> (predecessor, firing monitor) *)
  edges : (int * int * int) list;  (* (src, monitor, dst), exploration order *)
  truncated : bool;
}

let explore config d =
  let cap = max 1 config.max_states in
  let init = initial d in
  let states = Array.make cap init and pred = Array.make cap None in
  let ids = Hashtbl.create 64 in
  let n = ref 0 and truncated = ref false and edges = ref [] in
  let q = Queue.create () in
  let add st p =
    let key = encode st in
    match Hashtbl.find_opt ids key with
    | Some id -> Some id
    | None ->
      if !n >= cap then begin
        truncated := true;
        None
      end
      else begin
        let id = !n in
        incr n;
        Hashtbl.replace ids key id;
        states.(id) <- st;
        pred.(id) <- p;
        Queue.push id q;
        Some id
      end
  in
  ignore (add init None : int option);
  while not (Queue.is_empty q) do
    let sid = Queue.pop q in
    let st = states.(sid) in
    List.iter
      (fun mi ->
        if may_fire d st mi then begin
          match add (apply d st mi) (Some (sid, mi)) with
          | Some did -> edges := (sid, mi, did) :: !edges
          | None -> ()
        end)
      d.actors
  done;
  {
    d;
    states = Array.sub states 0 !n;
    pred = Array.sub pred 0 !n;
    edges = List.rev !edges;
    truncated = !truncated;
  }

(* Monitor firing sequence from the initial state to [sid]. *)
let path_to g sid =
  let rec go acc sid =
    match g.pred.(sid) with None -> acc | Some (p, mi) -> go (mi :: acc) p
  in
  go [] sid

(* Shortest firing sequence from [src] to [dst] along explored
   edges. *)
let path_between g src dst =
  if src = dst then Some []
  else begin
    let succs = Hashtbl.create 64 in
    List.iter (fun (s, mi, t) -> Hashtbl.add succs s (mi, t)) g.edges;
    let seen = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.replace seen src [];
    Queue.push src q;
    let res = ref None in
    while !res = None && not (Queue.is_empty q) do
      let s = Queue.pop q in
      let acc = Hashtbl.find seen s in
      List.iter
        (fun (mi, t) ->
          if !res = None && not (Hashtbl.mem seen t) then begin
            let acc' = acc @ [ mi ] in
            if t = dst then res := Some acc'
            else begin
              Hashtbl.replace seen t acc';
              Queue.push t q
            end
          end)
        (List.rev (Hashtbl.find_all succs s))
    done;
    !res
  end

(* Strongly connected components of the explored graph (Tarjan);
   returns each state's component id. *)
let components g =
  let n = Array.length g.states in
  let succs = Array.make n [] in
  List.iter (fun (s, _, t) -> succs.(s) <- t :: succs.(s)) g.edges;
  let index = Array.make n (-1) and lowlink = Array.make n 0 and on_stack = Array.make n false in
  let comp_of = Array.make n (-1) in
  let stack = ref [] and counter = ref 0 and ncomps = ref 0 in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      succs.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp_of.(w) <- !ncomps;
          if w <> v then pop ()
        | [] -> ()
      in
      pop ();
      incr ncomps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  comp_of

(* Per policy: a REPLACE edge and a RESTORE edge inside one strongly
   connected component — each re-enables the other forever. *)
let storms g =
  let d = g.d in
  let comp_of = components g in
  let has_action mi pred = List.exists pred d.monitors.(mi).Monitor.actions in
  let internal = List.filter (fun (s, _, t) -> comp_of.(s) = comp_of.(t)) g.edges in
  Array.to_list d.policies
  |> List.filter_map (fun p ->
      let reps =
        List.filter
          (fun (_, mi, _) ->
            has_action mi (function Monitor.Replace q -> q = p | _ -> false))
          internal
      and rsts =
        List.filter
          (fun (_, mi, _) ->
            has_action mi (function Monitor.Restore q -> q = p | _ -> false))
          internal
      in
      List.find_map
        (fun ((s1, _, _) as e1) ->
          match List.find_opt (fun (s2, _, _) -> comp_of.(s2) = comp_of.(s1)) rsts with
          | Some e2 -> Some (p, e1, e2)
          | None -> None)
        reps)

(* ---------- Concrete witness evaluation ---------- *)

(* Single-sample concrete semantics: within every window each key
   holds at most one recent sample. Mirrors the feature store exactly
   for that case — empty window is 0 for every aggregate; a single
   sample v gives COUNT 1, SUM/AVG/MIN/MAX/QUANTILE v, STDDEV 0
   (count < 2), DELTA 0, RATE v/(window in s). *)
let concrete_eval ~(value_of : string -> float option) ~slots (p : Ir.program) =
  let regs = Array.make (max 1 p.Ir.n_regs) 0. in
  Array.iter
    (fun inst ->
      let v =
        match inst with
        | Ir.Const { value; _ } -> value
        | Ir.Load { slot; _ } -> Option.value ~default:0. (value_of slots.(slot))
        | Ir.Agg { fn; slot; window_ns; _ } -> (
          match value_of slots.(slot) with
          | None -> 0.
          | Some v -> (
            match fn with
            | Ast.Count -> 1.
            | Ast.Sum | Ast.Avg | Ast.Min | Ast.Max | Ast.Quantile -> v
            | Ast.Stddev | Ast.Delta -> 0.
            | Ast.Rate -> v /. (window_ns /. 1e9)))
        | Ir.Unop { op; src; _ } -> (
          match op with
          | Ast.Neg -> -.regs.(src)
          | Ast.Abs -> Float.abs regs.(src)
          | Ast.Not -> if regs.(src) <> 0. then 0. else 1.)
        | Ir.Binop { op; lhs; rhs; _ } ->
          let a = regs.(lhs) and b = regs.(rhs) in
          let bool c = if c then 1. else 0. in
          (match op with
          | Ast.Add -> a +. b
          | Ast.Sub -> a -. b
          | Ast.Mul -> a *. b
          | Ast.Div -> if b = 0. then 0. else a /. b
          | Ast.Lt -> bool (a < b)
          | Ast.Le -> bool (a <= b)
          | Ast.Gt -> bool (a > b)
          | Ast.Ge -> bool (a >= b)
          | Ast.Eq -> bool (a = b)
          | Ast.Ne -> bool (a <> b)
          | Ast.And -> bool (a <> 0. && b <> 0.)
          | Ast.Or -> bool (a <> 0. || b <> 0.))
      in
      regs.(Ir.dst inst) <- v)
    p.Ir.insts;
  if Array.length p.Ir.insts = 0 then 1. else regs.(p.Ir.result)

(* Candidate witness values: the program's own constants and simple
   derivations (around thresholds, scaled by windows for RATE). *)
let candidates (p : Ir.program) =
  let consts = ref [ 0.; 1.; 2. ] and windows = ref [] in
  Array.iter
    (function
      | Ir.Const { value; _ } when Float.is_finite value -> consts := value :: !consts
      | Ir.Agg { window_ns; _ } -> windows := (window_ns /. 1e9) :: !windows
      | _ -> ())
    p.Ir.insts;
  let base = List.concat_map (fun c -> [ c; c +. 1.; c -. 1.; c *. 2.; c /. 2. ]) !consts in
  let scaled = List.concat_map (fun w -> List.map (fun c -> c *. w) base) !windows in
  List.filter Float.is_finite (base @ scaled) |> List.sort_uniq compare

exception Found of (string * float) list

(* Exhaustive search over candidate assignments to [keys] for a
   store state under which the rule is concretely truthy (or falsy),
   in single-sample semantics. Bounded; None on exhaustion. *)
let find_assignment ~slots ~keys ~truthy (p : Ir.program) =
  let cands = candidates p in
  let budget = ref 20_000 in
  let rec go acc = function
    | [] ->
      if !budget > 0 then begin
        decr budget;
        let v = concrete_eval ~value_of:(fun k -> List.assoc_opt k acc) ~slots p in
        if (if truthy then v <> 0. else v = 0.) then raise (Found (List.rev acc))
      end
    | k :: rest -> List.iter (fun c -> if !budget > 0 then go ((k, c) :: acc) rest) cands
  in
  try
    go [] keys;
    None
  with Found a -> Some a

(* ---------- Counterexample schedules ---------- *)

exception Give_up

let synthesize d fire_seq =
  try
    let rule_of mi = d.monitors.(mi).Monitor.rule in
    let slots_of mi = d.monitors.(mi).Monitor.slots in
    let rule_keys mi =
      Ir.read_slots (rule_of mi)
      |> List.map (fun s -> (slots_of mi).(s))
      |> List.sort_uniq compare
    in
    let window_span mi =
      let m = d.monitors.(mi) in
      List.fold_left
        (fun acc p ->
          Array.fold_left
            (fun acc inst ->
              match inst with Ir.Agg { window_ns; _ } -> Float.max acc window_ns | _ -> acc)
            acc p.Ir.insts)
        0.
        (m.Monitor.rule :: List.map snd (Dataflow.saves m))
    in
    let wmax =
      List.fold_left (fun acc mi -> Float.max acc (window_span mi)) 0. d.actors |> int_of_float
    in
    (* Witnesses land [eps] before a check so they sit inside every
       window; heals land [eps] after. *)
    let eps = if wmax = 0 then 1_000_000 else min 1_000_000 (max 1 (wmax / 2)) in
    let stagger = min 1_000 (max 1 (eps / 8)) in
    let gap = wmax + (2 * eps) in
    let assignment ~truthy mi =
      let keys = rule_keys mi in
      if List.length keys > 4 then raise Give_up;
      match find_assignment ~slots:(slots_of mi) ~keys ~truthy (rule_of mi) with
      | Some a -> a
      | None -> raise Give_up
    in
    let steps = ref [] in
    let push at key v = steps := { at_ns = at; step_key = key; step_value = v } :: !steps in
    let cursor = ref eps in
    (* Prologue: heal every state-affecting monitor whose rule is
       concretely falsy over the initial empty store, so nothing
       keeps firing outside its slot in the sequence. *)
    List.iter
      (fun mi ->
        if concrete_eval ~value_of:(fun _ -> None) ~slots:(slots_of mi) (rule_of mi) = 0. then
          List.iter
            (fun (k, v) ->
              push !cursor k v;
              cursor := !cursor + stagger)
            (assignment ~truthy:true mi))
      d.actors;
    cursor := !cursor + gap;
    (* One firing per sequence element: witness just before the
       monitor's next check, heal just after, then let the windows
       drain before the next element. *)
    List.iter
      (fun mi ->
        let m = d.monitors.(mi) in
        let witness = assignment ~truthy:false mi in
        let heal = assignment ~truthy:true mi in
        let timer =
          List.find_map
            (function
              | Monitor.Timer { start_ns; interval_ns; stop_ns } ->
                Some (start_ns, interval_ns, stop_ns)
              | _ -> None)
            m.Monitor.triggers
        and on_change =
          List.find_map (function Monitor.On_change k -> Some k | _ -> None) m.Monitor.triggers
        in
        let inject at pairs =
          List.iteri (fun j (k, v) -> push (at + (j * stagger)) k v) pairs
        in
        match (timer, on_change) with
        | Some (start_ns, interval_ns, stop_ns), _ ->
          let c =
            if !cursor + eps <= start_ns then start_ns
            else
              start_ns
              + ((!cursor + eps - start_ns + interval_ns - 1) / interval_ns * interval_ns)
          in
          (match stop_ns with Some stop when c >= stop -> raise Give_up | _ -> ());
          inject (c - eps) witness;
          inject (c + eps) heal;
          cursor := c + eps + gap
        | None, Some key ->
          let c = !cursor + eps in
          let witness =
            if List.mem_assoc key witness then witness else witness @ [ (key, 0.) ]
          in
          (* The watched key's write goes last: it is the one that
             triggers the check. *)
          inject (c - eps) (List.filter (fun (k, _) -> k <> key) witness);
          push c key (List.assoc key witness);
          inject (c + eps) (List.filter (fun (k, _) -> k <> key) heal);
          (match List.assoc_opt key heal with
          | Some v -> push (c + eps + (4 * stagger)) key v
          | None -> ());
          cursor := c + eps + gap
        | None, None -> raise Give_up)
      fire_seq;
    (* Expected end state and minimum flip counts, from the abstract
       fold along the firing sequence. *)
    let touched =
      List.concat_map
        (fun mi ->
          List.filter_map
            (function Monitor.Replace p | Monitor.Restore p -> Some p | _ -> None)
            d.monitors.(mi).Monitor.actions)
        fire_seq
      |> List.sort_uniq compare
    in
    let flips = Hashtbl.create 4 in
    let final =
      List.fold_left
        (fun st mi ->
          let st' = apply d st mi in
          Array.iteri
            (fun pi s ->
              if s <> st.slots.(pi) then begin
                let p = d.policies.(pi) in
                Hashtbl.replace flips p (1 + Option.value ~default:0 (Hashtbl.find_opt flips p))
              end)
            st'.slots;
          st')
        (initial d) fire_seq
    in
    Some
      {
        steps = List.rev !steps;
        horizon_ns = !cursor + gap;
        expected =
          List.map
            (fun p -> (p, final.slots.(Hashtbl.find d.policy_idx p) = Fallback))
            touched;
        min_flips =
          List.map
            (fun p -> (p, Option.value ~default:0 (Hashtbl.find_opt flips p)))
            touched;
      }
  with Give_up -> None

(* ---------- Findings ---------- *)

let check ?(config = default_config) (monitors : Monitor.t list) =
  let d = digest config monitors in
  let g = explore config d in
  let nstates = Array.length g.states in
  let name mi = d.monitors.(mi).Monitor.name in
  let names path = List.map name path in
  let grl201 =
    (* Sound only on the full graph: a RESTORE might fire or act in a
       state the truncated exploration never reached. *)
    if g.truncated then []
    else
      List.concat
        (List.mapi
           (fun mi (m : Monitor.t) ->
             List.filter_map
               (function
                 | Monitor.Restore p ->
                   let pi = Hashtbl.find d.policy_idx p in
                   let fires = List.filter (fun (_, emi, _) -> emi = mi) g.edges in
                   if fires = [] && List.mem mi d.actors then
                     Some
                       {
                         diag =
                           Diagnostic.warning ~monitor:m.Monitor.name ~pos:m.Monitor.pos
                             ~code:"GRL201"
                             (Printf.sprintf
                                "RESTORE %S is dead code: monitor %s can never fire in any \
                                 reachable state (%d state(s) explored)"
                                p m.Monitor.name nstates);
                         path = [];
                         schedule = None;
                       }
                   else if
                     fires <> []
                     && List.for_all (fun (s, _, _) -> g.states.(s).slots.(pi) = Live) fires
                   then begin
                     let s0, _, _ = List.hd fires in
                     Some
                       {
                         diag =
                           Diagnostic.warning ~monitor:m.Monitor.name ~pos:m.Monitor.pos
                             ~code:"GRL201"
                             (Printf.sprintf
                                "RESTORE %S can never act: policy %S is live in every reachable \
                                 state where monitor %s fires — no REPLACE can precede it (%d \
                                 state(s) explored)"
                                p p m.Monitor.name nstates);
                         path = names (path_to g s0);
                         schedule = None;
                       }
                   end
                   else None
                 | _ -> None)
               m.Monitor.actions)
           monitors)
  in
  let grl202 =
    if g.truncated then []
    else
      Array.to_list d.policies
      |> List.filter_map (fun p ->
          match d.canary p with
          | None -> None
          | Some nodes ->
            let pi = Hashtbl.find d.policy_idx p in
            let first_with s =
              let found = ref None in
              Array.iteri
                (fun sid st -> if !found = None && st.slots.(pi) = s then found := Some sid)
                g.states;
              !found
            in
            (match (first_with Canaried, first_with Fallback) with
            | Some sid, None ->
              let replacer =
                match path_to g sid with [] -> "?" | seq -> name (List.hd (List.rev seq))
              in
              Some
                {
                  diag =
                    Diagnostic.warning ~monitor:replacer ~code:"GRL202"
                      (Printf.sprintf
                         "canaried policy %S (nodes %s) reaches the canary state but no \
                          reachable action sequence extends the fallback fleet-wide: the canary \
                          can never promote (%d state(s) explored)"
                         p
                         (String.concat "," (List.map string_of_int nodes))
                         nstates);
                  path = names (path_to g sid);
                  schedule = None;
                }
            | _ -> None))
  in
  let grl203 =
    storms g
    |> List.filter_map (fun (p, (s1, m1, t1), (s2, m2, _)) ->
        match path_between g t1 s2 with
        | None -> None
        | Some mid ->
          let fire_seq = path_to g s1 @ [ m1 ] @ mid @ [ m2 ] in
          Some
            {
              diag =
                Diagnostic.warning ~monitor:(name m1)
                  ~pos:d.monitors.(m1).Monitor.pos ~code:"GRL203"
                  (Printf.sprintf
                     "policy %S can flap forever: REPLACE by %s and RESTORE by %s are jointly \
                      reachable and re-enable each other"
                     p (name m1) (name m2));
              path = names fire_seq;
              schedule = synthesize d fire_seq;
            })
  in
  {
    findings = grl201 @ grl202 @ grl203;
    states = nstates;
    transitions = List.length g.edges;
    truncated = g.truncated;
  }
