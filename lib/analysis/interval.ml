module Ast = Gr_dsl.Ast

type t = {
  lo : float;
  hi : float;
  pinf : bool;
  ninf : bool;
  nan : bool;
}

let bot = { lo = infinity; hi = neg_infinity; pinf = false; ninf = false; nan = false }
let unknown = { bot with lo = neg_infinity; hi = infinity }
let top = { unknown with pinf = true; ninf = true; nan = true }

let const v =
  if Float.is_nan v then { bot with nan = true }
  else if v = infinity then { bot with pinf = true }
  else if v = neg_infinity then { bot with ninf = true }
  else { bot with lo = v; hi = v }

let finite lo hi = { bot with lo; hi }

let has_finite t = t.lo <= t.hi
let is_bot t = (not (has_finite t)) && (not t.pinf) && (not t.ninf) && not t.nan
let is_unconstrained t = has_finite t && t.lo = neg_infinity && t.hi = infinity

let equal a b =
  (* Bounds compare as bit-classes so empty = empty regardless of rep. *)
  (if has_finite a then has_finite b && a.lo = b.lo && a.hi = b.hi else not (has_finite b))
  && a.pinf = b.pinf && a.ninf = b.ninf && a.nan = b.nan

let join a b =
  let lo, hi =
    if has_finite a && has_finite b then (Float.min a.lo b.lo, Float.max a.hi b.hi)
    else if has_finite a then (a.lo, a.hi)
    else (b.lo, b.hi)
  in
  { lo; hi; pinf = a.pinf || b.pinf; ninf = a.ninf || b.ninf; nan = a.nan || b.nan }

let subset a b = equal (join a b) b

(* Classic interval widening, flag-aware: join, then jump any finite
   bound that moved past [prev]'s to its infinity. Each abstract value
   can widen only a bounded number of times (two bound jumps plus
   three flag flips), so ascending chains stabilize. A finite part
   appearing where [prev] had none counts as the join step, not a
   jump — the next movement widens. *)
let widen prev next =
  if is_bot prev then next
  else if is_bot next then prev
  else begin
    let j = join prev next in
    if not (has_finite j && has_finite prev) then j
    else
      {
        j with
        lo = (if j.lo < prev.lo then neg_infinity else j.lo);
        hi = (if j.hi > prev.hi then infinity else j.hi);
      }
  end

let may_zero t = has_finite t && t.lo <= 0. && 0. <= t.hi
let must_zero t = has_finite t && t.lo = 0. && t.hi = 0. && (not t.pinf) && (not t.ninf) && not t.nan
let may_pos t = t.pinf || (has_finite t && t.hi > 0.)
let may_neg t = t.ninf || (has_finite t && t.lo < 0.)
let may_nan t = t.nan

(* The VM's truth test is [v <> 0.]: NaN and the infinities are truthy. *)
let may_true t = t.pinf || t.ninf || t.nan || may_pos t || may_neg t
let may_false t = may_zero t
let always_true t = (not (is_bot t)) && not (may_false t)
let always_false t = (not (is_bot t)) && not (may_true t)

(* Arithmetic on finite-part bounds is done in IEEE itself; when a
   resulting bound degenerates ({∞,∞} singleton, or NaN from mixing
   opposite unbounded ends) the information is moved into flags. *)
let norm t =
  if Float.is_nan t.lo || Float.is_nan t.hi then { t with lo = neg_infinity; hi = infinity }
  else if t.lo = infinity && t.hi = infinity then { t with lo = infinity; hi = neg_infinity; pinf = true }
  else if t.lo = neg_infinity && t.hi = neg_infinity then
    { t with lo = infinity; hi = neg_infinity; ninf = true }
  else t

let neg t = { lo = -.t.hi; hi = -.t.lo; pinf = t.ninf; ninf = t.pinf; nan = t.nan }

let abs t =
  let lo, hi =
    if not (has_finite t) then (t.lo, t.hi)
    else if t.lo >= 0. then (t.lo, t.hi)
    else if t.hi <= 0. then (-.t.hi, -.t.lo)
    else (0., Float.max (-.t.lo) t.hi)
  in
  { lo; hi; pinf = t.pinf || t.ninf; ninf = false; nan = t.nan }

let of_cond ~may_t ~may_f =
  match (may_t, may_f) with
  | true, true -> finite 0. 1.
  | true, false -> const 1.
  | false, true -> const 0.
  | false, false -> bot

let not_ t = if is_bot t then bot else of_cond ~may_t:(may_false t) ~may_f:(may_true t)

let and_ a b =
  if is_bot a || is_bot b then bot
  else of_cond ~may_t:(may_true a && may_true b) ~may_f:(may_false a || may_false b)

let or_ a b =
  if is_bot a || is_bot b then bot
  else of_cond ~may_t:(may_true a || may_true b) ~may_f:(may_false a && may_false b)

let add a b =
  if is_bot a || is_bot b then bot
  else begin
    let fin = has_finite a && has_finite b in
    let lo = if fin then a.lo +. b.lo else infinity
    and hi = if fin then a.hi +. b.hi else neg_infinity in
    norm
      {
        lo;
        hi;
        pinf =
          (a.pinf && (has_finite b || b.pinf))
          || (b.pinf && (has_finite a || a.pinf))
          || (fin && hi = infinity);
        ninf =
          (a.ninf && (has_finite b || b.ninf))
          || (b.ninf && (has_finite a || a.ninf))
          || (fin && lo = neg_infinity);
        nan = a.nan || b.nan || (a.pinf && b.ninf) || (a.ninf && b.pinf);
      }
  end

let sub a b = add a (neg b)

(* Within finite parts an infinite bound means "arbitrarily large but
   finite", so 0 × unbounded is 0, not the IEEE 0 × ∞ = NaN. *)
let mul_bound x y = if x = 0. || y = 0. then 0. else x *. y

let mul a b =
  if is_bot a || is_bot b then bot
  else begin
    let fin = has_finite a && has_finite b in
    let lo, hi =
      if fin then begin
        let ps =
          [ mul_bound a.lo b.lo; mul_bound a.lo b.hi; mul_bound a.hi b.lo; mul_bound a.hi b.hi ]
        in
        (List.fold_left Float.min infinity ps, List.fold_left Float.max neg_infinity ps)
      end
      else (infinity, neg_infinity)
    in
    let inf_pos =
      (a.pinf && may_pos b) || (b.pinf && may_pos a) || (a.ninf && may_neg b)
      || (b.ninf && may_neg a)
    and inf_neg =
      (a.pinf && may_neg b) || (b.pinf && may_neg a) || (a.ninf && may_pos b)
      || (b.ninf && may_pos a)
    and inf_zero = ((a.pinf || a.ninf) && may_zero b) || ((b.pinf || b.ninf) && may_zero a) in
    norm
      {
        lo;
        hi;
        pinf = inf_pos || (fin && hi = infinity);
        ninf = inf_neg || (fin && lo = neg_infinity);
        nan = a.nan || b.nan || inf_zero;
      }
  end

let div a b =
  if is_bot a || is_bot b then bot
  else begin
    let acc = ref bot in
    let part p = acc := join !acc p in
    (* The VM defines x / 0 = 0, and finite / ±∞ is (signed) zero. *)
    if may_zero b then part (const 0.);
    if (b.pinf || b.ninf) && has_finite a then part (const 0.);
    if has_finite a && has_finite b && (b.lo < 0. || b.hi > 0.) then
      part
        (if b.lo > 0. || b.hi < 0. then begin
           (* Sign-definite divisor: corner quotients bound the range.
              A NaN corner is ±∞/±∞ — both ends unbounded, no info. *)
           let qs = [ a.lo /. b.lo; a.lo /. b.hi; a.hi /. b.lo; a.hi /. b.hi ] in
           if List.exists Float.is_nan qs then unknown
           else finite (List.fold_left Float.min infinity qs) (List.fold_left Float.max neg_infinity qs)
         end
         else unknown (* divisor straddles 0: quotient magnitude unbounded *));
    let r = !acc in
    let a_inf = (a.pinf || a.ninf) && (may_pos b || may_neg b) in
    norm
      {
        r with
        pinf = r.pinf || a_inf || (has_finite r && r.hi = infinity);
        ninf = r.ninf || a_inf || (has_finite r && r.lo = neg_infinity);
        nan = r.nan || a.nan || b.nan || ((a.pinf || a.ninf) && (b.pinf || b.ninf));
      }
  end

(* ---------- Comparisons ---------- *)

type cls = Fin of float * float | Pinf | Ninf | Nan

let classes t =
  (if has_finite t then [ Fin (t.lo, t.hi) ] else [])
  @ (if t.pinf then [ Pinf ] else [])
  @ (if t.ninf then [ Ninf ] else [])
  @ if t.nan then [ Nan ] else []

let range = function
  | Fin (lo, hi) -> (lo, hi)
  | Pinf -> (infinity, infinity)
  | Ninf -> (neg_infinity, neg_infinity)
  | Nan -> (nan, nan)

(* (may be true, may be false) of [x op y] for x, y drawn from the two
   classes. Unbounded finite bounds are treated as attained, which
   over-approximates both components — exactly what the
   always-true/always-false diagnostics need to stay sound. *)
let cmp_pair op ca cb =
  match (ca, cb) with
  | Nan, _ | _, Nan -> ( match op with Ast.Ne -> (true, false) | _ -> (false, true))
  | _ ->
    let xlo, xhi = range ca and ylo, yhi = range cb in
    let lt = xlo < yhi and gt = xhi > ylo in
    let eq = xlo <= yhi && ylo <= xhi in
    (match op with
    | Ast.Lt -> (lt, gt || eq)
    | Ast.Le -> (lt || eq, gt)
    | Ast.Gt -> (gt, lt || eq)
    | Ast.Ge -> (gt || eq, lt)
    | Ast.Eq -> (eq, lt || gt)
    | Ast.Ne -> (lt || gt, eq)
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.And | Ast.Or ->
      invalid_arg "Interval.cmp: not a comparison")

let cmp op a b =
  let mt = ref false and mf = ref false in
  List.iter
    (fun ca ->
      List.iter
        (fun cb ->
          let t, f = cmp_pair op ca cb in
          mt := !mt || t;
          mf := !mf || f)
        (classes b))
    (classes a);
  of_cond ~may_t:!mt ~may_f:!mf

(* ---------- Rendering ---------- *)

let to_string t =
  if is_bot t then "empty"
  else begin
    let parts = ref [] in
    if t.nan then parts := "NaN" :: !parts;
    if t.pinf then parts := "+inf" :: !parts;
    if t.ninf then parts := "-inf" :: !parts;
    if has_finite t then begin
      let b v = Printf.sprintf "%g" v in
      let s =
        if t.lo = t.hi then Printf.sprintf "{%s}" (b t.lo)
        else
          let l = if t.lo = neg_infinity then "(-oo" else Printf.sprintf "[%s" (b t.lo) in
          let r = if t.hi = infinity then "+oo)" else Printf.sprintf "%s]" (b t.hi) in
          l ^ ", " ^ r
      in
      parts := s :: !parts
    end;
    String.concat " or " !parts
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
