(** Static analysis over compiled monitors — the engine behind
    [grc lint].

    Two passes over a whole deployment (every monitor that will be
    installed together):

    {b Pass 1 — abstract interpretation.} Each rule and SAVE value
    program is evaluated over the {!Interval} domain. Slot values are
    seeded from deployment metadata: a key written by some monitor's
    SAVE is modelled as the join of the abstract values of every SAVE
    program targeting it (plus 0, the store's initial value), so a
    key only ever assigned [true]/[false] is known to be in
    [{0} ∪ {1}]; a key never written by a monitor is external
    telemetry, assumed finite but otherwise unknown. Aggregates seed
    from their function (COUNT/RATE/STDDEV are nonnegative; the rest
    are bounded by the key's sample range joined with 0, the
    empty-window result). Findings:
    - [GRL001]/[GRL002] (warning) — rule always true (the guardrail
      can never fire) / always false (fires on every check).
    - [GRL003] — division whose divisor is always 0 (error: the VM
      silently yields 0) or may be 0 (warning, suppressed when
      nothing is known about the divisor).
    - [GRL004] (warning) — comparison with a statically constant
      outcome, e.g. disjoint operand intervals.
    - [GRL005] (warning) — comparison an operand of which may be NaN
      (NaN comparisons are false, except [<>]).

    {b Pass 2 — interference analysis.} Deployment-wide findings:
    - [GRL101] (error) — duplicate SAVE key within one monitor.
    - [GRL102] (warning) — two monitors SAVE the same key.
    - [GRL103] (error) — SAVE ⇄ ON_CHANGE trigger cycle (including
      self-loops): monitors that re-trigger each other forever.
    - [GRL104] (warning) — a policy both REPLACEd and RESTOREd:
      opposing actions can flap the policy slot.
    - [GRL105] (error) — cumulative static cost of the monitors on
      one FUNCTION hook exceeds the per-hook budget. *)

type config = { hook_budget_ns : float }

val default_config : config
(** [{ hook_budget_ns = 500. }] — half a microsecond of straight-line
    monitor work per hook crossing. *)

val deployment : ?config:config -> Gr_compiler.Monitor.t list -> Diagnostic.t list
(** All findings for the given deployment, deterministically ordered:
    pass-1 findings in monitor order (rule first, then SAVE value
    programs, in instruction order), then pass-2 findings in code
    order. *)

val rule_value : Gr_compiler.Monitor.t list -> Gr_compiler.Monitor.t -> Interval.t
(** The abstract value of [m]'s rule when deployed among
    [monitors] — exposed for tests and tooling. *)
