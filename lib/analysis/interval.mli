(** Interval abstract domain over IEEE floats.

    Abstract values for the lint analysis ({!Analyze}): a finite
    interval plus independent "may be +∞ / −∞ / NaN" flags. The
    split matters because the VM's semantics treat the special values
    specially — NaN comparisons are constantly false (except [<>]),
    [x / 0 = 0] — and the diagnostics need to know {e whether} a
    special value can reach an instruction, not just that the range
    is wide.

    Finite bounds of [±infinity] mean {e unbounded but finite}: the
    value can be arbitrarily large yet is not the IEEE infinity
    (which is tracked by the flags). Arithmetic that can overflow to
    a real infinity sets both — the bound and the flag. *)

type t = {
  lo : float;  (** finite-part bounds; [lo > hi] means no finite value *)
  hi : float;
  pinf : bool;  (** may be +∞ *)
  ninf : bool;  (** may be −∞ *)
  nan : bool;  (** may be NaN *)
}

val bot : t
(** No value (unreachable). *)

val unknown : t
(** Any finite float — the abstraction of an external telemetry key. *)

val top : t
(** Any float including ±∞ and NaN. *)

val const : float -> t
val finite : float -> float -> t
(** [finite lo hi]: the finite interval [\[lo, hi\]], no flags. *)

val join : t -> t -> t
val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b]: every value [a] admits is admitted by [b]
    ([join a b = b]). *)

val widen : t -> t -> t
(** [widen prev next]: over-approximation of [join prev next] under
    which ascending chains stabilize in a bounded number of steps —
    any finite bound that moved past [prev]'s jumps straight to its
    infinity. Used by {!Dataflow} for the inter-rule fixpoint. *)

val is_bot : t -> bool
val has_finite : t -> bool
val is_unconstrained : t -> bool
(** Finite part unbounded in both directions — nothing is known, so
    diagnostics that would fire on "may be zero" stay quiet. *)

val may_zero : t -> bool
val must_zero : t -> bool
(** The only possible value is [0.] (no special-value flags). *)

val may_nan : t -> bool
val may_pos : t -> bool
val may_neg : t -> bool

val may_true : t -> bool
(** Some value is truthy under the VM's [v <> 0.] test — note NaN
    and ±∞ are truthy. *)

val may_false : t -> bool
val always_true : t -> bool
val always_false : t -> bool
(** [always_*] are [false] on {!bot}. *)

(** Transfer functions mirroring {!Gr_runtime.Vm} semantics. *)

val neg : t -> t
val abs : t -> t
val not_ : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** VM semantics: [x / 0 = 0]; a divisor that may be zero
    contributes [0] to the quotient. *)

val and_ : t -> t -> t
val or_ : t -> t -> t

val cmp : Gr_dsl.Ast.binop -> t -> t -> t
(** Comparison result as a sub-interval of [{0, 1}]. NaN operands
    make every comparison false except [Ne], per IEEE. Only defined
    on the six comparison operators. *)

val to_string : t -> string
(** Deterministic rendering for diagnostics, e.g. ["[0, +oo)"],
    ["{42}"], ["(-oo, 5] or NaN"]. *)

val pp : Format.formatter -> t -> unit
