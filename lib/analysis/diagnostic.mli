(** Structured lint diagnostics.

    Every finding of the {!Analyze} passes is one of these: a
    machine-readable code ([GRLxxx]), a severity, the monitor it
    concerns (or [None] for deployment-wide findings), an optional
    source position, and a human-readable message.

    Code families:
    - [GRL0xx] — per-program abstract-interpretation findings
      (constant rules, division by zero, NaN comparisons).
    - [GRL1xx] — whole-deployment interference findings (SAVE
      conflicts, trigger cycles, action flap, hook cost budgets). *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** e.g. ["GRL003"] *)
  monitor : string option;  (** [None] for deployment-wide findings *)
  pos : Gr_dsl.Ast.pos option;
  message : string;
}

val error : ?monitor:string -> ?pos:Gr_dsl.Ast.pos -> code:string -> string -> t
val warning : ?monitor:string -> ?pos:Gr_dsl.Ast.pos -> code:string -> string -> t

val severity_name : severity -> string
(** ["error"] / ["warning"]. *)

val pp : Format.formatter -> t -> unit
(** One line:
    [warning[GRL002] monitor m (3:11): rule is always false ...] —
    the format pinned by the golden lint tests. *)

val to_string : t -> string

val to_json : t -> Gr_trace.Json.t
(** Object with fields [severity], [code], [monitor], [line], [col],
    [message]; absent monitor/position become [null]. *)
