(** Structured lint diagnostics.

    Every finding of the {!Analyze} passes is one of these: a
    machine-readable code ([GRLxxx]), a severity, the monitor it
    concerns (or [None] for deployment-wide findings), an optional
    source position, and a human-readable message.

    Code families:
    - [GRL0xx] — per-program abstract-interpretation findings
      (constant rules, division by zero, NaN comparisons).
    - [GRL1xx] — whole-deployment interference findings (SAVE
      conflicts, trigger cycles, action flap, hook cost budgets).
    - [GRL2xx] — action-machine reachability proofs ({!Machine}):
      dead RESTOREs, never-promoting canaries, REPLACE storms.
    - [GRL3xx] — fleet determinism findings ({!Race}): GLOBAL-key
      write-write races resolved only by the intent-replay
      tie-break. *)

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;  (** e.g. ["GRL003"] *)
  monitor : string option;  (** [None] for deployment-wide findings *)
  pos : Gr_dsl.Ast.pos option;
  message : string;
  repro : string option;
      (** executable repro command for findings that ship one — the
          [grc soak --plan] replay of a model-checker counterexample
          ({!Machine}); not printed by {!pp} (goldens pin the one-line
          format), surfaced by [grc verify] and [to_json]. *)
}

val error : ?monitor:string -> ?pos:Gr_dsl.Ast.pos -> ?repro:string -> code:string -> string -> t
val warning : ?monitor:string -> ?pos:Gr_dsl.Ast.pos -> ?repro:string -> code:string -> string -> t

val severity_name : severity -> string
(** ["error"] / ["warning"]. *)

val pp : Format.formatter -> t -> unit
(** One line:
    [warning[GRL002] monitor m (3:11): rule is always false ...] —
    the format pinned by the golden lint tests. *)

val to_string : t -> string

val to_json : t -> Gr_trace.Json.t
(** Object with fields [severity], [code], [monitor], [line], [col],
    [message], [repro]; absent fields become [null]. *)
