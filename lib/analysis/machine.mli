(** Action-machine model checking — the GRL2xx pass of [grc verify].

    A deployment's guardrails drive a small machine: each policy's
    slot is [Live], [Canaried] (a canaried REPLACE landed on its node
    subset) or [Fallback]; each SAVE-carrying monitor has a
    "has fired at least once" bit; each DEPRIORITIZE class a
    "deprioritized" bit. The per-policy core is exactly
    {!Gr_kernel.Policy_slot.Model} — the runtime slot's transition
    table exposed as data, so the checker cannot drift from the
    implementation.

    {!check} explores every reachable state by BFS. A monitor can
    fire in a state iff its rule {e may} evaluate falsy under the
    abstract store induced by the already-fired savers (values taken
    under the {!Dataflow} fixpoint — an over-approximation of any
    firing prefix, making "cannot fire" verdicts proofs). Findings:

    - [GRL201] (warning) — a RESTORE that is dead code: its monitor
      can never fire, or the policy is live in every reachable state
      where it fires (no REPLACE can precede it).
    - [GRL202] (warning) — a canaried policy (see {!config}) that
      reaches the canary state but can never extend its fallback
      fleet-wide: the canary never promotes.
    - [GRL203] (warning) — a REPLACE/RESTORE storm, the proof-grade
      generalization of GRL104's pattern match: both edges live in
      one strongly connected component of the reachable graph, so
      each re-enables the other forever.

    GRL201/202 are suppressed when exploration truncates at
    [max_states]; GRL203 cycles are real wherever found.

    Each GRL203 finding carries, when synthesis succeeds, a concrete
    {!schedule} of store writes that drives the {e real} engine along
    the flagged firing sequence — replayable via
    [grc soak --scenario store --plan] (see {!Gr_fault.Replay}), with
    the expected final slot states and minimum transition counts
    recorded for the test harness to assert. *)

type config = {
  max_states : int;  (** exploration cap; default 4096 *)
  canaries : (string * int list) list;
      (** policies whose REPLACE is canaried onto a node subset *)
}

val default_config : config

type slot_state = Live | Canaried | Fallback

type step = { at_ns : int; step_key : string; step_value : float }
(** One synthetic store write of the counterexample schedule. *)

type schedule = {
  steps : step list;  (** chronological *)
  horizon_ns : int;  (** run the sim at least this long *)
  expected : (string * bool) list;  (** policy -> on_fallback at the end *)
  min_flips : (string * int) list;
      (** policy -> minimum slot transitions the replay must observe *)
}

type finding = {
  diag : Diagnostic.t;
  path : string list;  (** firing monitor names, initial state onward *)
  schedule : schedule option;
}

type result = {
  findings : finding list;
  states : int;  (** reachable states explored *)
  transitions : int;
  truncated : bool;  (** hit [max_states]; GRL201/202 suppressed *)
}

val check : ?config:config -> Gr_compiler.Monitor.t list -> result
