module Ast = Gr_dsl.Ast
module Ir = Gr_compiler.Ir
module Monitor = Gr_compiler.Monitor

type config = { hook_budget_ns : float }

let default_config = { hook_budget_ns = 500. }

(* ---------- Abstract evaluation ---------- *)

(* The straight-line abstract evaluator and the whole-deployment SAVE
   fixpoint both live in {!Dataflow}; keys written by some monitor's
   SAVE carry the fixpoint value range, everything else is external
   telemetry — finite but unknown. *)
let eval_program = Dataflow.eval_program
let result_value = Dataflow.result_value
let saves = Dataflow.saves
let key_env monitors = Dataflow.lookup (Dataflow.fixpoint monitors)

(* ---------- Pass 1: per-program diagnostics ---------- *)

let is_comparison = function
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
  | _ -> false

let check_program ~diag ~monitor ~lookup ~is_rule (m : Monitor.t) (p : Ir.program) =
  let slots = m.Monitor.slots in
  let regs = eval_program ~lookup ~slots p in
  Array.iteri
    (fun i inst ->
      let pos = Ir.pos_of p i in
      match inst with
      | Ir.Binop { op = Ast.Div; rhs; dst; _ } ->
        let dv = regs.(rhs) in
        if Interval.must_zero dv then
          diag
            (Diagnostic.error ~monitor ?pos ~code:"GRL003"
               "divisor is always 0; the VM defines x / 0 = 0, so this quotient is constantly 0")
        else if Interval.may_zero dv && not (Interval.is_unconstrained dv) then
          diag
            (Diagnostic.warning ~monitor ?pos ~code:"GRL003"
               (Printf.sprintf
                  "divisor may be 0 (divisor in %s); the VM silently yields 0 for x / 0"
                  (Interval.to_string dv)));
        ignore dst
      | Ir.Binop { op; lhs; rhs; dst } when is_comparison op ->
        let lv = regs.(lhs) and rv = regs.(rhs) in
        if Interval.may_nan lv || Interval.may_nan rv then
          diag
            (Diagnostic.warning ~monitor ?pos ~code:"GRL005"
               (Printf.sprintf
                  "%s operand of %s may be NaN; NaN makes every comparison false (except <>)"
                  (if Interval.may_nan lv then "left" else "right")
                  (Ast.binop_symbol op)))
        else begin
          let v = regs.(dst) in
          let constant =
            if Interval.always_true v then Some "true"
            else if Interval.always_false v then Some "false"
            else None
          in
          match constant with
          | Some outcome when (not is_rule) || dst <> p.Ir.result ->
            (* The rule's root comparison is reported as GRL001/002. *)
            diag
              (Diagnostic.warning ~monitor ?pos ~code:"GRL004"
                 (Printf.sprintf "comparison is always %s: left in %s, right in %s" outcome
                    (Interval.to_string lv) (Interval.to_string rv)))
          | _ -> ()
        end
      | _ -> ())
    p.Ir.insts;
  if Array.length p.Ir.insts = 0 then Interval.unknown else regs.(p.Ir.result)

let check_monitor ~diag ~lookup (m : Monitor.t) =
  let monitor = m.Monitor.name in
  let rule_pos =
    match Ir.pos_of m.Monitor.rule m.Monitor.rule.Ir.result with
    | Some p -> Some p
    | None -> Some m.Monitor.pos
  in
  let rv = check_program ~diag ~monitor ~lookup ~is_rule:true m m.Monitor.rule in
  if Interval.always_true rv then
    diag
      (Diagnostic.warning ~monitor ?pos:rule_pos ~code:"GRL001"
         (Printf.sprintf "rule is always true (value in %s): the guardrail can never fire"
            (Interval.to_string rv)))
  else if Interval.always_false rv then
    diag
      (Diagnostic.warning ~monitor ?pos:rule_pos ~code:"GRL002"
         (Printf.sprintf "rule is always false (value in %s): the guardrail fires on every check"
            (Interval.to_string rv)));
  List.iter
    (fun (_, value) ->
      ignore (check_program ~diag ~monitor ~lookup ~is_rule:false m value : Interval.t))
    (saves m)

(* ---------- Pass 2: interference ---------- *)

let names_of idxs monitors =
  List.map (fun i -> (List.nth monitors i).Monitor.name) idxs |> List.sort compare

(* Tarjan's SCC over the SAVE -> ON_CHANGE trigger graph. *)
let trigger_sccs (monitors : Monitor.t list) =
  let n = List.length monitors in
  let marr = Array.of_list monitors in
  let watchers = Hashtbl.create 16 in
  Array.iteri
    (fun i m ->
      List.iter
        (function
          | Monitor.On_change key -> Hashtbl.add watchers key i
          | Monitor.Timer _ | Monitor.Function _ -> ())
        m.Monitor.triggers)
    marr;
  let succs i =
    List.concat_map (fun (key, _) -> Hashtbl.find_all watchers key) (saves marr.(i))
    |> List.sort_uniq compare
  in
  let index = Array.make n (-1) and lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] and counter = ref 0 and sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (* Cyclic components: more than one monitor, or a self-loop. *)
  List.filter
    (fun comp ->
      match comp with
      | [ v ] -> List.mem v (succs v)
      | _ :: _ :: _ -> true
      | [] -> false)
    (List.rev !sccs)

let check_deployment ~config ~diag (monitors : Monitor.t list) =
  (* GRL101: duplicate SAVE key within one monitor. *)
  List.iter
    (fun m ->
      let seen = Hashtbl.create 4 in
      List.iter
        (fun (key, _) ->
          if Hashtbl.mem seen key then
            diag
              (Diagnostic.error ~monitor:m.Monitor.name ~pos:m.Monitor.pos ~code:"GRL101"
                 (Printf.sprintf "duplicate SAVE key %S: only the last write survives a check" key))
          else Hashtbl.add seen key ())
        (saves m))
    monitors;
  (* GRL102: write-write conflicts across monitors. *)
  let writers = Hashtbl.create 16 in
  List.iter
    (fun m -> List.iter (fun key -> Hashtbl.add writers key m.Monitor.name) (Monitor.writes m))
    monitors;
  Hashtbl.fold (fun key _ acc -> key :: acc) writers []
  |> List.sort_uniq compare
  |> List.iter (fun key ->
         let ws = Hashtbl.find_all writers key |> List.sort_uniq compare in
         match ws with
         | first :: _ :: _ ->
           diag
             (Diagnostic.warning ~monitor:first ~code:"GRL102"
                (Printf.sprintf "key %S is written by multiple monitors (%s): last writer wins"
                   key (String.concat ", " ws)))
         | _ -> ());
  (* GRL103: SAVE <-> ON_CHANGE trigger cycles, in sorted member
     order so the emission sequence is independent of Tarjan's
     traversal order. *)
  trigger_sccs monitors
  |> List.map (fun comp -> names_of comp monitors)
  |> List.sort compare
  |> List.iter (fun names ->
      match names with
      | [ only ] ->
        diag
          (Diagnostic.error ~monitor:only ~code:"GRL103"
             (Printf.sprintf
                "monitor %s re-triggers itself: it SAVEs a key it watches via ON_CHANGE" only))
      | first :: _ ->
        diag
          (Diagnostic.error ~monitor:first ~code:"GRL103"
             (Printf.sprintf
                "SAVE/ON_CHANGE trigger cycle among monitors %s: each SAVE re-triggers the next"
                (String.concat ", " names)))
      | [] -> ());
  (* GRL104: REPLACE/RESTORE flap on a shared policy. *)
  let replacers = Hashtbl.create 4 and restorers = Hashtbl.create 4 in
  List.iter
    (fun m ->
      List.iter
        (function
          | Monitor.Replace p -> Hashtbl.add replacers p m.Monitor.name
          | Monitor.Restore p -> Hashtbl.add restorers p m.Monitor.name
          | _ -> ())
        m.Monitor.actions)
    monitors;
  Hashtbl.fold (fun p _ acc -> p :: acc) replacers []
  |> List.sort_uniq compare
  |> List.iter (fun policy ->
         match Hashtbl.find_all restorers policy |> List.sort_uniq compare with
         | [] -> ()
         | restores ->
           let replaces = Hashtbl.find_all replacers policy |> List.sort_uniq compare in
           diag
             (Diagnostic.warning ~monitor:(List.hd replaces) ~code:"GRL104"
                (Printf.sprintf
                   "policy %S is REPLACEd by %s and RESTOREd by %s: opposing actions can flap"
                   policy (String.concat ", " replaces) (String.concat ", " restores))));
  (* GRL105: per-hook cumulative cost budget. *)
  let hooks = Hashtbl.create 4 in
  List.iter
    (fun m ->
      List.iter
        (function
          | Monitor.Function hook -> Hashtbl.add hooks hook m
          | Monitor.Timer _ | Monitor.On_change _ -> ())
        m.Monitor.triggers)
    monitors;
  Hashtbl.fold (fun h _ acc -> h :: acc) hooks []
  |> List.sort_uniq compare
  |> List.iter (fun hook ->
         let ms = Hashtbl.find_all hooks hook in
         let total = List.fold_left (fun acc m -> acc +. Monitor.static_cost_ns m) 0. ms in
         if total > config.hook_budget_ns then begin
           let names =
             List.map (fun m -> m.Monitor.name) ms |> List.sort_uniq compare
           in
           diag
             (Diagnostic.error ~monitor:(List.hd names) ~code:"GRL105"
                (Printf.sprintf
                   "hook %S: cumulative static cost %.0fns of %d monitor(s) (%s) exceeds the \
                    %.0fns budget"
                   hook total (List.length ms) (String.concat ", " names) config.hook_budget_ns))
         end)

(* ---------- Entry points ---------- *)

let deployment ?(config = default_config) monitors =
  let out = ref [] in
  let diag d = out := d :: !out in
  let lookup = key_env monitors in
  List.iter (check_monitor ~diag ~lookup) monitors;
  check_deployment ~config ~diag monitors;
  List.rev !out

let rule_value monitors (m : Monitor.t) =
  let lookup = key_env monitors in
  result_value ~lookup ~slots:m.Monitor.slots m.Monitor.rule
