(** The [grc verify] driver: every static pass over one deployment.

    Composes, in order:
    - the {!Analyze} lint passes (GRL001–005, GRL101–105) — running
      on top of the {!Dataflow} fixpoint, so per-rule verdicts see
      through SAVE-defined keys;
    - the {!Machine} action-machine model checker (GRL201–203), whose
      schedule-bearing findings get an executable repro attached via
      the [repro] callback (the CLI passes
      {!Gr_fault.Replay.repro_command});
    - the {!Race} fleet analysis (GRL301) when [fleet] is set.

    GRL104 (the REPLACE/RESTORE flap {e pattern}) is dropped when the
    model checker ran to completion: a real storm comes back as a
    GRL203 {e proof} with a counterexample, and a pattern that can
    never actually interleave comes back as silence. *)

type config = {
  lint : Analyze.config;
  machine : Machine.config;
  fleet : bool;  (** run {!Race.check}; default false *)
}

val default_config : config

type t = {
  diagnostics : Diagnostic.t list;
      (** lint (minus superseded GRL104), then machine, then race *)
  machine : Machine.result;
  race : Diagnostic.t list;
}

val run :
  ?config:config ->
  ?repro:(Machine.schedule -> string) ->
  (int * Gr_compiler.Monitor.t) list ->
  t
(** [run tagged] over [(node id, monitor)] pairs. Single-file
    deployments pass node id 0 for every monitor. *)

(** {1 Admission control}

    The PDP decision for one pushed spec (the serving daemon's gate,
    also behind [grc lint -] / [grc verify -] on stdin). *)

type admission = {
  admitted : bool;
  monitors : Gr_compiler.Monitor.t list;  (** empty when compilation failed *)
  diagnostics : Diagnostic.t list;  (** static findings (admitted or not) *)
  reason : string option;
      (** rendered compile error, or a findings summary, when rejected *)
}

val admit : ?config:config -> ?repro:(Machine.schedule -> string) -> string -> admission
(** Compile the source and run the full static pass family ({!run})
    under the strict contract: any error {e or warning} rejects, as
    [grc lint --strict] would. Admitted pushes return the compiled
    monitors ready to install. *)
