module Monitor = Gr_compiler.Monitor

type config = {
  lint : Analyze.config;
  machine : Machine.config;
  fleet : bool;
}

let default_config =
  { lint = Analyze.default_config; machine = Machine.default_config; fleet = false }

type t = {
  diagnostics : Diagnostic.t list;
  machine : Machine.result;
  race : Diagnostic.t list;
}

let run ?(config = default_config) ?repro (tagged : (int * Monitor.t) list) =
  let monitors = List.map snd tagged in
  let lint = Analyze.deployment ~config:config.lint monitors in
  let machine = Machine.check ~config:config.machine monitors in
  (* The model checker subsumes GRL104: where the pattern is a real
     storm it returns a GRL203 proof (with a replayable schedule),
     where the opposing actions can never interleave it stays silent
     — which is the point. The pattern heuristic survives only when
     exploration truncated. *)
  let lint =
    if machine.Machine.truncated then lint
    else List.filter (fun d -> d.Diagnostic.code <> "GRL104") lint
  in
  let machine_diags =
    List.map
      (fun (f : Machine.finding) ->
        match (f.Machine.schedule, repro) with
        | Some s, Some render -> { f.Machine.diag with Diagnostic.repro = Some (render s) }
        | _ -> f.Machine.diag)
      machine.Machine.findings
  in
  let race = if config.fleet then Race.check tagged else [] in
  { diagnostics = lint @ machine_diags @ race; machine; race }
