module Monitor = Gr_compiler.Monitor

type config = {
  lint : Analyze.config;
  machine : Machine.config;
  fleet : bool;
}

let default_config =
  { lint = Analyze.default_config; machine = Machine.default_config; fleet = false }

type t = {
  diagnostics : Diagnostic.t list;
  machine : Machine.result;
  race : Diagnostic.t list;
}

let run ?(config = default_config) ?repro (tagged : (int * Monitor.t) list) =
  let monitors = List.map snd tagged in
  let lint = Analyze.deployment ~config:config.lint monitors in
  let machine = Machine.check ~config:config.machine monitors in
  (* The model checker subsumes GRL104: where the pattern is a real
     storm it returns a GRL203 proof (with a replayable schedule),
     where the opposing actions can never interleave it stays silent
     — which is the point. The pattern heuristic survives only when
     exploration truncated. *)
  let lint =
    if machine.Machine.truncated then lint
    else List.filter (fun d -> d.Diagnostic.code <> "GRL104") lint
  in
  let machine_diags =
    List.map
      (fun (f : Machine.finding) ->
        match (f.Machine.schedule, repro) with
        | Some s, Some render -> { f.Machine.diag with Diagnostic.repro = Some (render s) }
        | _ -> f.Machine.diag)
      machine.Machine.findings
  in
  let race = if config.fleet then Race.check tagged else [] in
  { diagnostics = lint @ machine_diags @ race; machine; race }

(* Admission control: the PDP decision for one pushed spec.

   A push is admitted only when it compiles (parse, typecheck, lower,
   optimize, per-monitor verify) AND the full static pass family comes
   back clean under the strict contract of `grc lint --strict` /
   `grc verify --strict`: errors and warnings both reject. The
   serving daemon calls this with exactly the config the CLI builds,
   so a spec that lints clean in a shell pipeline is a spec the
   control plane will admit — one code path, two front doors. *)

type admission = {
  admitted : bool;
  monitors : Monitor.t list;  (** empty when compilation failed *)
  diagnostics : Diagnostic.t list;  (** static findings (admitted or not) *)
  reason : string option;  (** rendered compile error, or a findings summary *)
}

let admit ?(config = default_config) ?repro source =
  match Gr_compiler.Compile.source source with
  | Error e ->
    {
      admitted = false;
      monitors = [];
      diagnostics = [];
      reason = Some (Format.asprintf "%a" Gr_compiler.Compile.pp_error e);
    }
  | Ok monitors ->
    let audit = run ~config ?repro (List.map (fun m -> (0, m)) monitors) in
    let diags = audit.diagnostics in
    let errors =
      List.length (List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags)
    in
    let warnings = List.length diags - errors in
    if diags = [] then { admitted = true; monitors; diagnostics = []; reason = None }
    else
      {
        admitted = false;
        monitors;
        diagnostics = diags;
        reason =
          Some
            (Printf.sprintf "%d error(s), %d warning(s) from static analysis" errors
               warnings);
      }
