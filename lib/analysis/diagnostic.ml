module Json = Gr_trace.Json

type severity = Error | Warning

type t = {
  severity : severity;
  code : string;
  monitor : string option;
  pos : Gr_dsl.Ast.pos option;
  message : string;
  repro : string option;
}

let make severity ?monitor ?pos ?repro ~code message =
  { severity; code; monitor; pos; message; repro }
let error = make Error
let warning = make Warning

let severity_name = function Error -> "error" | Warning -> "warning"

let pp fmt d =
  Format.fprintf fmt "%s[%s]" (severity_name d.severity) d.code;
  (match d.monitor with
  | Some m -> Format.fprintf fmt " monitor %s" m
  | None -> Format.fprintf fmt " deployment");
  (match d.pos with
  | Some p -> Format.fprintf fmt " (%d:%d)" p.Gr_dsl.Ast.line p.Gr_dsl.Ast.col
  | None -> ());
  Format.fprintf fmt ": %s" d.message

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  Json.Obj
    [
      ("severity", Json.Str (severity_name d.severity));
      ("code", Json.Str d.code);
      ("monitor", match d.monitor with Some m -> Json.Str m | None -> Json.Null);
      ("line", match d.pos with Some p -> Json.Num (float_of_int p.Gr_dsl.Ast.line) | None -> Json.Null);
      ("col", match d.pos with Some p -> Json.Num (float_of_int p.Gr_dsl.Ast.col) | None -> Json.Null);
      ("message", Json.Str d.message);
      ("repro", match d.repro with Some r -> Json.Str r | None -> Json.Null);
    ]
