(** Streaming and batch statistics.

    The guardrail properties of the paper are all statistical: drift in
    input distributions (P1), output variance vs input variance (P2),
    rolling decision quality (P4), latency budgets (P5), fairness and
    starvation (P6). This module provides the estimators they are
    built from. All streaming estimators use O(1) or small-constant
    state so they are cheap enough to run on every sample, matching the
    in-kernel-budget constraint the paper emphasises. *)

module Welford : sig
  (** Numerically stable streaming mean / variance (Welford's
      algorithm), plus min/max. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val variance : t -> float
  (** Population variance; 0. with fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val reset : t -> unit
  val merge : t -> t -> t
  (** Combines two summaries (Chan's parallel formula). *)
end

module Ewma : sig
  (** Exponentially weighted moving average. *)

  type t

  val create : alpha:float -> t
  (** Requires [0. < alpha <= 1.]; larger alpha weights recent samples
      more. *)

  val add : t -> float -> unit
  val value : t -> float
  (** 0. when no sample has been added. *)

  val initialized : t -> bool
  val reset : t -> unit
end

module P2 : sig
  (** P² streaming quantile estimator (Jain & Chlamtac 1985): tracks a
      single quantile with five markers and no sample storage. *)

  type t

  val create : q:float -> t
  (** Requires [0. < q < 1.]. *)

  val add : t -> float -> unit
  (** NaN samples are ignored. *)

  val quantile : t -> float
  (** Current estimate; exact while fewer than five samples. [nan]
      when empty. *)

  val count : t -> int
end

module Histogram : sig
  (** Fixed-width binned histogram over a closed range; out-of-range
      samples are clamped to the edge bins. *)

  type t

  val create : lo:float -> hi:float -> bins:int -> t

  val add : t -> float -> unit
  (** NaN samples are ignored. *)

  val count : t -> int
  val bin_counts : t -> int array
  val bin_center : t -> int -> float
  val quantile : t -> float -> float
  (** Linear-interpolated quantile from bin counts. [nan] when empty. *)

  val reset : t -> unit
end

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val quantile_sorted : float array -> float -> float
(** [quantile_sorted xs q] with [xs] sorted ascending; linear
    interpolation between order statistics. [nan] on empty input. *)

val quantile : float array -> float -> float
(** Sorts a copy; [nan] on empty input. *)

val quantile_envelope : float array -> float array -> float array
(** [quantile_envelope xs qs] evaluates [quantile xs] at each point of
    [qs]; the P1 drift detector stores this envelope at training time. *)

val ks_distance : float array -> float array -> float
(** Two-sample Kolmogorov-Smirnov statistic: max distance between the
    empirical CDFs. Drives the P1 in-distribution property. 0. when
    either sample is empty. *)

val jain_index : float array -> float
(** Jain's fairness index in (0,1]; 1. is perfectly fair. Drives the
    P6 fairness property. 1. on empty or all-zero input. *)

val moving_average : window:int -> float array -> float array
(** Trailing moving average used when printing Figure 2 style series. *)
