(** Binary min-heap.

    Backbone of the discrete-event queue: O(log n) insert and
    extract-min over (timestamp, event) pairs. Parameterised by an
    explicit comparison so callers control the ordering (and can build
    a max-heap by flipping it). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive; ascending order. O(n log n). *)
