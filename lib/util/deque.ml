type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let create ?(capacity = 8) () =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  { data = Array.make capacity None; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.len <- 0

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) None in
  for i = 0 to t.len - 1 do
    data.(i) <- t.data.((t.head + i) mod cap)
  done;
  t.data <- data;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.data then grow t;
  t.data.((t.head + t.len) mod Array.length t.data) <- Some x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Deque.get: index out of range";
  match t.data.((t.head + i) mod Array.length t.data) with
  | Some x -> x
  | None -> assert false

let front t = if t.len = 0 then None else Some (get t 0)
let back t = if t.len = 0 then None else Some (get t (t.len - 1))

let pop_front t =
  if t.len = 0 then None
  else begin
    let x = get t 0 in
    t.data.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.data;
    t.len <- t.len - 1;
    Some x
  end

let pop_back t =
  if t.len = 0 then None
  else begin
    let x = get t (t.len - 1) in
    t.data.((t.head + t.len - 1) mod Array.length t.data) <- None;
    t.len <- t.len - 1;
    Some x
  end

let drop_front_while pred t =
  let continue = ref true in
  while !continue && t.len > 0 do
    match front t with
    | Some x when pred x -> ignore (pop_front t : 'a option)
    | _ -> continue := false
  done

let drop_back_while pred t =
  let continue = ref true in
  while !continue && t.len > 0 do
    match back t with
    | Some x when pred x -> ignore (pop_back t : 'a option)
    | _ -> continue := false
  done

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc
