type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_float_sec s = int_of_float (Float.round (s *. 1e9))
let to_float_sec t = float_of_int t /. 1e9
let to_float_us t = float_of_int t /. 1e3
let to_float_ms t = float_of_int t /. 1e6
let add = ( + )
let diff = ( - )
let compare = Int.compare
let min = Stdlib.min
let max = Stdlib.max

let pp fmt t =
  let a = abs t in
  if a >= 1_000_000_000 then Format.fprintf fmt "%.3gs" (to_float_sec t)
  else if a >= 1_000_000 then Format.fprintf fmt "%.3gms" (to_float_ms t)
  else if a >= 1_000 then Format.fprintf fmt "%.3gus" (to_float_us t)
  else Format.fprintf fmt "%dns" t
