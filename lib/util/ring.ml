type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.data
let length t = t.len
let is_empty t = t.len = 0

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.head <- 0;
  t.len <- 0

let push t x =
  let cap = capacity t in
  if t.len = cap then begin
    (* Full: overwrite oldest, advance head. *)
    t.data.(t.head) <- Some x;
    t.head <- (t.head + 1) mod cap
  end
  else begin
    t.data.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring.get: index out of range";
  match t.data.((t.head + i) mod capacity t) with
  | Some x -> x
  | None -> assert false

let newest t = if t.len = 0 then None else Some (get t (t.len - 1))
let oldest t = if t.len = 0 then None else Some (get t 0)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)

let bsearch_first pred t =
  (* Invariant: every index < lo fails [pred]; every index >= hi
     satisfies it. *)
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if pred (get t mid) then hi := mid else lo := mid + 1
  done;
  !lo

let drop_while_oldest pred t =
  let continue = ref true in
  while !continue && t.len > 0 do
    match oldest t with
    | Some x when pred x ->
      t.data.(t.head) <- None;
      t.head <- (t.head + 1) mod capacity t;
      t.len <- t.len - 1
    | _ -> continue := false
  done
