(** Growable double-ended queue on a circular buffer.

    Built for the feature store's streaming MIN/MAX aggregates, which
    keep a {e monotonic deque}: push new samples at the back popping
    every dominated predecessor ({!drop_back_while}), expire old
    samples from the front ({!drop_front_while}), and read the current
    extremum at the front — O(1) amortized per sample. The structure
    itself is generic. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is the initial backing-array size (default 8); the
    deque grows by doubling. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val push_back : 'a t -> 'a -> unit
(** O(1) amortized. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th element from the front.
    @raise Invalid_argument if out of range. *)

val front : 'a t -> 'a option
val back : 'a t -> 'a option
val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option

val drop_front_while : ('a -> bool) -> 'a t -> unit
(** Pops front elements while the predicate holds. *)

val drop_back_while : ('a -> bool) -> 'a t -> unit
(** Pops back elements while the predicate holds. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
(** Front to back. *)
