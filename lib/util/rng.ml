type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finaliser (Steele et al., "Fast splittable pseudorandom
   number generators"). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let fork t = { state = mix (int64 t) }

let split t i =
  (* Pure indexed derivation: hash the parent state with a
     golden-gamma-spaced function of [i] so distinct indices land in
     well-separated regions of the splitmix64 state space. Does not
     advance [t], so per-node seeding is independent of how many other
     streams were derived before it. *)
  let salt = mix (Int64.add (Int64.mul (Int64.of_int i) golden_gamma) 0x1F123BB5159A55E5L) in
  { state = mix (Int64.logxor t.state salt) }

let int t bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for
     bounds far below 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (u /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  (* Box-Muller; guard against log 0. *)
  let rec u1 () =
    let u = float t 1.0 in
    if u > 0. then u else u1 ()
  in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log (u1 ())) *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.);
  let rec u () =
    let v = float t 1.0 in
    if v > 0. then v else u ()
  in
  -.log (u ()) /. rate

let pareto t ~scale ~shape =
  assert (shape > 0.);
  let rec u () =
    let v = float t 1.0 in
    if v > 0. then v else u ()
  in
  scale /. Float.pow (u ()) (1.0 /. shape)

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~s =
    assert (n > 0);
    let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    let cdf =
      Array.map
        (fun x ->
          acc := !acc +. (x /. total);
          !acc)
        w
    in
    cdf.(n - 1) <- 1.0;
    { cdf }

  let sample t rng =
    let u = float rng 1.0 in
    (* First index whose cdf >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
end
