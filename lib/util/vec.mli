(** Growable vector with O(1) amortized append.

    Registration-heavy call sites (monitor installation, store
    subscriptions) previously appended with [xs @ [x]] — quadratic
    across a fleet install. A vector keeps registration O(1) while
    preserving insertion order for iteration, which matters wherever
    dispatch or reporting order is observable. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] is the initial backing-array size (default 8); the
    vector grows by doubling. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Appends at the end; O(1) amortized. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th pushed element (insertion order).
    @raise Invalid_argument if out of range. *)

val iter : ('a -> unit) -> 'a t -> unit
(** In insertion order. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** In insertion order. *)

val to_list : 'a t -> 'a list
(** In insertion order. *)

val exists : ('a -> bool) -> 'a t -> bool
val clear : 'a t -> unit

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only the elements satisfying the predicate, preserving
    insertion order; O(n), no allocation beyond the existing backing
    array. Long-lived registries (a serving engine's monitor table)
    use this so uninstalled entries don't accumulate forever. *)
