module Welford = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int t.n
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.min <- infinity;
    t.max <- neg_infinity

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let delta = b.mean -. a.mean in
      let nf = float_of_int n in
      let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
      let m2 =
        a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
      in
      { n; mean; m2; min = Stdlib.min a.min b.min; max = Stdlib.max a.max b.max }
    end
end

module Ewma = struct
  type t = { alpha : float; mutable value : float; mutable initialized : bool }

  let create ~alpha =
    if not (alpha > 0. && alpha <= 1.) then invalid_arg "Ewma.create: alpha not in (0,1]";
    { alpha; value = 0.; initialized = false }

  let add t x =
    if t.initialized then t.value <- (t.alpha *. x) +. ((1. -. t.alpha) *. t.value)
    else begin
      t.value <- x;
      t.initialized <- true
    end

  let value t = t.value
  let initialized t = t.initialized

  let reset t =
    t.value <- 0.;
    t.initialized <- false
end

module P2 = struct
  type t = {
    q : float;
    heights : float array; (* 5 marker heights *)
    pos : float array; (* marker positions (1-based, stored as float) *)
    desired : float array;
    incr : float array;
    mutable n : int;
  }

  let create ~q =
    if not (q > 0. && q < 1.) then invalid_arg "P2.create: q not in (0,1)";
    {
      q;
      heights = Array.make 5 0.;
      pos = [| 1.; 2.; 3.; 4.; 5. |];
      desired = [| 1.; 1. +. (2. *. q); 1. +. (4. *. q); 3. +. (2. *. q); 5. |];
      incr = [| 0.; q /. 2.; q; (1. +. q) /. 2.; 1. |];
      n = 0;
    }

  (* Parabolic prediction formula from the P2 paper. *)
  let parabolic t i d =
    let h = t.heights and p = t.pos in
    h.(i)
    +. d
       /. (p.(i + 1) -. p.(i - 1))
       *. (((p.(i) -. p.(i - 1) +. d) *. (h.(i + 1) -. h.(i)) /. (p.(i + 1) -. p.(i)))
          +. ((p.(i + 1) -. p.(i) -. d) *. (h.(i) -. h.(i - 1)) /. (p.(i) -. p.(i - 1))))

  let linear t i d =
    let h = t.heights and p = t.pos in
    let j = i + int_of_float d in
    h.(i) +. (d *. (h.(j) -. h.(i)) /. (p.(j) -. p.(i)))

  let add t x =
    (* A NaN sample satisfies no cell comparison: the marker search
       below would run off the end of [heights], and during warm-up it
       would poison the sorted marker array. Skip it. *)
    if Float.is_nan x then ()
    else if t.n < 5 then begin
      t.heights.(t.n) <- x;
      t.n <- t.n + 1;
      if t.n = 5 then Array.sort Float.compare t.heights
    end
    else begin
      let h = t.heights and p = t.pos in
      (* Find cell k containing x, adjusting extreme markers. *)
      let k =
        if x < h.(0) then begin
          h.(0) <- x;
          0
        end
        else if x >= h.(4) then begin
          h.(4) <- x;
          3
        end
        else begin
          let rec find i = if x < h.(i + 1) then i else find (i + 1) in
          find 0
        end
      in
      for i = k + 1 to 4 do
        p.(i) <- p.(i) +. 1.
      done;
      for i = 0 to 4 do
        t.desired.(i) <- t.desired.(i) +. t.incr.(i)
      done;
      (* Adjust interior markers toward their desired positions. *)
      for i = 1 to 3 do
        let d = t.desired.(i) -. p.(i) in
        if
          (d >= 1. && p.(i + 1) -. p.(i) > 1.)
          || (d <= -1. && p.(i - 1) -. p.(i) < -1.)
        then begin
          let d = if d >= 0. then 1. else -1. in
          let candidate = parabolic t i d in
          let nh =
            if h.(i - 1) < candidate && candidate < h.(i + 1) then candidate
            else linear t i d
          in
          h.(i) <- nh;
          p.(i) <- p.(i) +. d
        end
      done;
      t.n <- t.n + 1
    end

  let quantile t =
    if t.n = 0 then nan
    else if t.n < 5 then begin
      let sorted = Array.sub t.heights 0 t.n in
      Array.sort Float.compare sorted;
      let rank = t.q *. float_of_int (t.n - 1) in
      let lo = int_of_float (floor rank) in
      let hi = Stdlib.min (lo + 1) (t.n - 1) in
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    end
    else t.heights.(2)

  let count t = t.n
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
    if not (hi > lo) then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let bins t = Array.length t.counts

  let bin_of t x =
    let b =
      int_of_float (float_of_int (bins t) *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    Stdlib.max 0 (Stdlib.min (bins t - 1) b)

  let add t x =
    (* NaN fails every bound comparison and would clamp to bin 0,
       silently skewing low quantiles. Skip it. *)
    if Float.is_nan x then ()
    else begin
      t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
      t.total <- t.total + 1
    end

  let count t = t.total
  let bin_counts t = Array.copy t.counts

  let bin_center t i =
    let w = (t.hi -. t.lo) /. float_of_int (bins t) in
    t.lo +. ((float_of_int i +. 0.5) *. w)

  let quantile t q =
    if t.total = 0 then nan
    else begin
      let target = q *. float_of_int t.total in
      let rec scan i acc =
        if i >= bins t then t.hi
        else begin
          let acc' = acc +. float_of_int t.counts.(i) in
          if acc' >= target then begin
            let w = (t.hi -. t.lo) /. float_of_int (bins t) in
            let within =
              if t.counts.(i) = 0 then 0.
              else (target -. acc) /. float_of_int t.counts.(i)
            in
            t.lo +. (w *. (float_of_int i +. within))
          end
          else scan (i + 1) acc'
        end
      in
      scan 0 0.
    end

  let reset t =
    Array.fill t.counts 0 (bins t) 0;
    t.total <- 0
end

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let quantile_sorted xs q =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = Stdlib.max 0 (Stdlib.min (n - 1) (int_of_float (floor rank))) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    xs.(lo) +. (frac *. (xs.(hi) -. xs.(lo)))
  end

let quantile xs q =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  quantile_sorted copy q

let quantile_envelope xs qs =
  let copy = Array.copy xs in
  Array.sort Float.compare copy;
  Array.map (quantile_sorted copy) qs

let ks_distance a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then 0.
  else begin
    let sa = Array.copy a and sb = Array.copy b in
    Array.sort Float.compare sa;
    Array.sort Float.compare sb;
    let fa = float_of_int na and fb = float_of_int nb in
    (* Advance both pointers past a shared value in one step so ties
       (and duplicates of ties) contribute a single CDF comparison. *)
    let rec skip_eq (s : float array) n i v = if i < n && s.(i) = v then skip_eq s n (i + 1) v else i in
    let rec walk i j best =
      if i >= na || j >= nb then best
      else begin
        let v = Float.min sa.(i) sb.(j) in
        let i' = skip_eq sa na i v and j' = skip_eq sb nb j v in
        let d = Float.abs ((float_of_int i' /. fa) -. (float_of_int j' /. fb)) in
        walk i' j' (Float.max best d)
      end
    in
    walk 0 0 0.
  end

let jain_index xs =
  let n = Array.length xs in
  if n = 0 then 1.
  else begin
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. xs in
    if s2 = 0. then 1. else s *. s /. (float_of_int n *. s2)
  end

let moving_average ~window xs =
  if window <= 0 then invalid_arg "moving_average: window must be positive";
  let n = Array.length xs in
  let out = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. xs.(i);
    if i >= window then acc := !acc -. xs.(i - window);
    let len = Stdlib.min (i + 1) window in
    out.(i) <- !acc /. float_of_int len
  done;
  out
