(** Deterministic pseudo-random number generation.

    Every stochastic component in the simulator (device latency models,
    workload generators, neural-network initialisation) draws from an
    explicit [Rng.t] so that experiments are reproducible bit-for-bit
    from a seed. The generator is splitmix64, which is fast, has a
    one-word state, and supports cheap splitting into independent
    streams.

    Domain-safety: a generator is single-owner mutable state. Every
    operation below mutates [t] in place with no internal locking, so a
    [t] must only ever be used from the domain that owns it. For
    parallel fleets, derive one independent stream per node with
    {!split} (pure, indexed) before spawning and hand each domain its
    own generator; never share one [t] across domains. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Generators created from
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently afterwards. *)

val fork : t -> t
(** [fork t] derives a new independent generator from [t], advancing
    [t]. Use one forked stream per subsystem so that adding draws in
    one subsystem does not perturb another. *)

val split : t -> int -> t
(** [split t i] derives a new independent generator from [t] and the
    stream index [i] {e without} advancing [t]: it is a pure function
    of [t]'s current state and [i], so [split t i] is the same stream
    no matter how many other indices were split before it. This is the
    per-node seeding primitive for parallel fleets — node [i]'s stream
    depends only on the fleet seed and [i], never on construction
    order. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]).
    Requires [rate > 0.]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto deviate: heavy-tailed latencies. Requires [shape > 0.]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate, [exp (gaussian mu sigma)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

module Zipf : sig
  type rng := t

  type t
  (** Sampler for a Zipf(s) distribution over [{0, .., n-1}], used for
      skewed address/page popularity. Construction is O(n); sampling is
      O(log n) by inverse-CDF binary search. *)

  val create : n:int -> s:float -> t
  val sample : t -> rng -> int
end
