(** Deterministic pseudo-random number generation.

    Every stochastic component in the simulator (device latency models,
    workload generators, neural-network initialisation) draws from an
    explicit [Rng.t] so that experiments are reproducible bit-for-bit
    from a seed. The generator is splitmix64, which is fast, has a
    one-word state, and supports cheap splitting into independent
    streams. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Generators created from
    the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently afterwards. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing
    [t]. Use one split stream per subsystem so that adding draws in one
    subsystem does not perturb another. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (mean [1/rate]).
    Requires [rate > 0.]. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto deviate: heavy-tailed latencies. Requires [shape > 0.]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate, [exp (gaussian mu sigma)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

module Zipf : sig
  type rng := t

  type t
  (** Sampler for a Zipf(s) distribution over [{0, .., n-1}], used for
      skewed address/page popularity. Construction is O(n); sampling is
      O(log n) by inverse-CDF binary search. *)

  val create : n:int -> s:float -> t
  val sample : t -> rng -> int
end
