(** Simulated time in integer nanoseconds.

    All clocks, timers, latencies and windows in the simulator and the
    guardrail runtime are expressed in this type. Using a plain [int]
    gives 63 bits of range (about 292 years of nanoseconds), which is
    ample for any simulated run, while keeping arithmetic unboxed. *)

type t = int
(** A point in time, or a span, in nanoseconds since simulation start. *)

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_float_sec : float -> t
(** [of_float_sec s] converts a duration in seconds (e.g. parsed from a
    guardrail spec) to nanoseconds, rounding to nearest. *)

val to_float_sec : t -> float
val to_float_us : t -> float
val to_float_ms : t -> float

val add : t -> t -> t
val diff : t -> t -> t
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Pretty-prints with an adaptive unit, e.g. ["1.5ms"], ["20us"]. *)
