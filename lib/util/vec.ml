type 'a t = { mutable data : 'a option array; mutable len : int }

let create ?(capacity = 8) () =
  if capacity <= 0 then invalid_arg "Vec.create: capacity must be positive";
  { data = Array.make capacity None; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let data = Array.make (2 * Array.length t.data) None in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- Some x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of range";
  match t.data.(i) with Some x -> x | None -> assert false

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun x -> acc := f !acc x) t;
  !acc

let to_list t = List.rev (fold (fun acc x -> x :: acc) [] t)
let exists p t = fold (fun acc x -> acc || p x) false t

let clear t =
  Array.fill t.data 0 t.len None;
  t.len <- 0

let filter_in_place p t =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let x = get t i in
    if p x then begin
      if !kept <> i then t.data.(!kept) <- Some x;
      incr kept
    end
  done;
  Array.fill t.data !kept (t.len - !kept) None;
  t.len <- !kept
