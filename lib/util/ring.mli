(** Fixed-capacity ring buffer.

    Used for bounded histories everywhere state must not grow without
    bound (feature-store sample windows, recent-latency features,
    violation logs). Pushing into a full ring evicts the oldest
    element. *)

type 'a t

val create : capacity:int -> 'a t
(** Requires [capacity > 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val push : 'a t -> 'a -> unit
(** Appends newest element, evicting the oldest if full. *)

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th oldest element, [0 <= i < length t].
    @raise Invalid_argument if out of range. *)

val newest : 'a t -> 'a option
val oldest : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest to newest. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Oldest to newest. *)

val to_list : 'a t -> 'a list
(** Oldest to newest. *)

val bsearch_first : ('a -> bool) -> 'a t -> int
(** [bsearch_first pred t] is the smallest index [i] with
    [pred (get t i)], or [length t] if no element satisfies it.
    Requires [pred] to be monotone over the ring order (false…false
    true…true) — e.g. a time-window cutoff over timestamped samples
    pushed in clock order. O(log length). *)

val drop_while_oldest : ('a -> bool) -> 'a t -> unit
(** Evicts oldest elements while the predicate holds; used to expire
    samples that fell out of a time window. *)
