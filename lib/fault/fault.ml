open Gr_util

type corruption = Nan | Huge | Neg_huge | Value of float
type chaos = Stuck_trust | Stuck_revoke | Flip

type kind =
  | Gc_storm of { device : int; duration : Time_ns.t }
  | Device_death of { device : int; duration : Time_ns.t }
  | Hook_exn of { hook : string; count : int }
  | Evict_burst of { key : string; burst : int }
  | Corrupt_key of { key : string; corruption : corruption }
  | Policy_chaos of { chaos : chaos }
  | Clock_skew of { by : Time_ns.t }

type fault = { at : Time_ns.t; kind : kind }
type plan = fault list

(* The textual form is the repro interface: integer nanoseconds and
   %.17g floats so parsing a printed plan reconstructs it exactly. *)

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let corruption_to_string = function
  | Nan -> "nan"
  | Huge -> "huge"
  | Neg_huge -> "neghuge"
  | Value f -> float_lit f

let chaos_to_string = function
  | Stuck_trust -> "trust"
  | Stuck_revoke -> "revoke"
  | Flip -> "flip"

let fault_to_string { at; kind } =
  match kind with
  | Gc_storm { device; duration } -> Printf.sprintf "gc-storm@%d:dev=%d,dur=%d" at device duration
  | Device_death { device; duration } ->
    Printf.sprintf "dev-death@%d:dev=%d,dur=%d" at device duration
  | Hook_exn { hook; count } -> Printf.sprintf "hook-exn@%d:hook=%s,n=%d" at hook count
  | Evict_burst { key; burst } -> Printf.sprintf "evict@%d:key=%s,n=%d" at key burst
  | Corrupt_key { key; corruption } ->
    Printf.sprintf "corrupt@%d:key=%s,v=%s" at key (corruption_to_string corruption)
  | Policy_chaos { chaos } -> Printf.sprintf "policy-chaos@%d:mode=%s" at (chaos_to_string chaos)
  | Clock_skew { by } -> Printf.sprintf "skew@%d:by=%d" at by

let plan_to_string plan = String.concat ";" (List.map fault_to_string plan)

let pp_fault fmt f = Format.pp_print_string fmt (fault_to_string f)

let pp_plan fmt plan =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
    pp_fault fmt plan

(* Parsing. Each fault is [kind@NS:k=v,...]; the args part splits on
   ',' and each binding on its first '=', so values may contain ':'
   (hook names like "blk:io_complete"). *)

let ( let* ) = Result.bind

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_int ~what s =
  match int_of_string_opt s with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_args s =
  let bindings = String.split_on_char ',' s in
  List.fold_left
    (fun acc binding ->
      let* acc = acc in
      match split_once ~on:'=' binding with
      | Some (k, v) when k <> "" -> Ok ((k, v) :: acc)
      | _ -> Error (Printf.sprintf "malformed argument %S (expected key=value)" binding))
    (Ok []) bindings

let lookup ~what args k =
  match List.assoc_opt k args with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing argument %S" what k)

let parse_corruption = function
  | "nan" -> Ok Nan
  | "huge" -> Ok Huge
  | "neghuge" -> Ok Neg_huge
  | s -> (
    match float_of_string_opt s with
    | Some f -> Ok (Value f)
    | None -> Error (Printf.sprintf "corrupt: bad value %S" s))

let parse_chaos = function
  | "trust" -> Ok Stuck_trust
  | "revoke" -> Ok Stuck_revoke
  | "flip" -> Ok Flip
  | s -> Error (Printf.sprintf "policy-chaos: unknown mode %S" s)

let fault_of_string s =
  let* name, rest =
    match split_once ~on:'@' s with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "fault %S: missing '@time'" s)
  in
  let* at_str, args_str =
    match split_once ~on:':' rest with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "fault %S: missing ':args'" s)
  in
  let* at = parse_int ~what:name at_str in
  let* args = parse_args args_str in
  let* kind =
    match name with
    | "gc-storm" ->
      let* dev = lookup ~what:name args "dev" in
      let* dur = lookup ~what:name args "dur" in
      let* device = parse_int ~what:name dev in
      let* duration = parse_int ~what:name dur in
      Ok (Gc_storm { device; duration })
    | "dev-death" ->
      let* dev = lookup ~what:name args "dev" in
      let* dur = lookup ~what:name args "dur" in
      let* device = parse_int ~what:name dev in
      let* duration = parse_int ~what:name dur in
      Ok (Device_death { device; duration })
    | "hook-exn" ->
      let* hook = lookup ~what:name args "hook" in
      let* n = lookup ~what:name args "n" in
      let* count = parse_int ~what:name n in
      Ok (Hook_exn { hook; count })
    | "evict" ->
      let* key = lookup ~what:name args "key" in
      let* n = lookup ~what:name args "n" in
      let* burst = parse_int ~what:name n in
      Ok (Evict_burst { key; burst })
    | "corrupt" ->
      let* key = lookup ~what:name args "key" in
      let* v = lookup ~what:name args "v" in
      let* corruption = parse_corruption v in
      Ok (Corrupt_key { key; corruption })
    | "policy-chaos" ->
      let* mode = lookup ~what:name args "mode" in
      let* chaos = parse_chaos mode in
      Ok (Policy_chaos { chaos })
    | "skew" ->
      let* by_str = lookup ~what:name args "by" in
      let* by = parse_int ~what:name by_str in
      Ok (Clock_skew { by })
    | _ -> Error (Printf.sprintf "unknown fault kind %S" name)
  in
  Ok { at; kind }

let plan_of_string s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    List.fold_left
      (fun acc frag ->
        let* acc = acc in
        let* f = fault_of_string (String.trim frag) in
        Ok (f :: acc))
      (Ok [])
      (String.split_on_char ';' s)
    |> Result.map List.rev

(* Generation: only fault kinds the scenario can absorb, times away
   from the run's edges so faults land while the workload is hot and
   their aftermath is still observed. *)

type caps = { n_devices : int; keys : string list; hooks : string list; blk_policy : bool }

let gen ~rng ~caps ~n ~horizon =
  let pick l = List.nth l (Rng.int rng (List.length l)) in
  let dur lo hi = Time_ns.ms (lo + Rng.int rng (hi - lo)) in
  let generators =
    List.concat
      [
        (if caps.n_devices > 0 then
           [
             (fun () ->
               Gc_storm { device = Rng.int rng caps.n_devices; duration = dur 20 150 });
             (fun () ->
               Device_death { device = Rng.int rng caps.n_devices; duration = dur 30 300 });
           ]
         else []);
        (if caps.hooks <> [] then
           [ (fun () -> Hook_exn { hook = pick caps.hooks; count = 1 + Rng.int rng 6 }) ]
         else []);
        (if caps.keys <> [] then
           [
             (fun () -> Evict_burst { key = pick caps.keys; burst = 64 + Rng.int rng 448 });
             (fun () ->
               let corruption =
                 match Rng.int rng 4 with
                 | 0 -> Nan
                 | 1 -> Huge
                 | 2 -> Neg_huge
                 | _ -> Value (Rng.gaussian rng ~mu:0. ~sigma:1e9)
               in
               Corrupt_key { key = pick caps.keys; corruption });
           ]
         else []);
        (if caps.blk_policy then
           [
             (fun () ->
               let chaos =
                 match Rng.int rng 3 with 0 -> Stuck_trust | 1 -> Stuck_revoke | _ -> Flip
               in
               Policy_chaos { chaos });
           ]
         else []);
        [ (fun () -> Clock_skew { by = dur 1 300 }) ];
      ]
  in
  let lo = horizon / 20 and hi = horizon * 4 / 5 in
  let faults =
    List.init n (fun _ ->
        let at = lo + Rng.int rng (max 1 (hi - lo)) in
        let kind = (pick generators) () in
        { at; kind })
  in
  List.stable_sort (fun a b -> Time_ns.compare a.at b.at) faults
