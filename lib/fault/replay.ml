module Machine = Gr_analysis.Machine

let plan_of_schedule (s : Machine.schedule) : Fault.plan =
  List.map
    (fun (st : Machine.step) ->
      {
        Fault.at = st.Machine.at_ns;
        kind = Fault.Corrupt_key { key = st.Machine.step_key; corruption = Fault.Value st.Machine.step_value };
      })
    s.Machine.steps

(* Round the horizon up to a whole millisecond so the rendered
   command stays short and still covers every step. *)
let duration_sec (s : Machine.schedule) =
  Float.ceil (float_of_int s.Machine.horizon_ns /. 1e6) /. 1e3

let repro_command ~spec (s : Machine.schedule) =
  Printf.sprintf "grc soak --scenario store --seed 1 --duration %g --spec %s --plan '%s'"
    (duration_sec s) spec
    (Fault.plan_to_string (plan_of_schedule s))

let run ~spec_source (s : Machine.schedule) =
  Soak.run_one ~extra_source:spec_source ~scenario:"store" ~seed:1
    ~duration:(int_of_float (duration_sec s *. 1e9))
    ~plan:(plan_of_schedule s) ()
