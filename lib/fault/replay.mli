(** Executable counterexamples: [grc verify] schedules as fault plans.

    The action-machine model checker
    ({!Gr_analysis.Machine}) renders each GRL203 storm as a
    {!Gr_analysis.Machine.schedule} — a timed list of store writes
    plus the slot states the firing sequence must end in. This module
    turns that neutral schedule into a {!Fault.plan} of
    [Corrupt_key/Value] faults the {!Injector} already knows how to
    deliver, making every static finding replayable on the real
    engine:

    {[ grc soak --scenario store --seed 1 --duration .. --spec f.grd --plan '..' ]}

    The [store] scenario is the neutral host — its own workload only
    touches [lat/rate/err] keys, so the schedule's writes are the
    only traffic on the spec's keys, and {!Soak.run_one}
    auto-registers a policy slot for every policy the spec acts on
    (reported in {!Soak.run_result}[.slots]). *)

val plan_of_schedule : Gr_analysis.Machine.schedule -> Fault.plan
(** Each schedule step as a [Corrupt_key { key; Value v }] fault at
    its timestamp. *)

val duration_sec : Gr_analysis.Machine.schedule -> float
(** The schedule's horizon, rounded up to a whole millisecond. *)

val repro_command : spec:string -> Gr_analysis.Machine.schedule -> string
(** The [grc soak] command line that replays the schedule against
    [spec] (a path). *)

val run : spec_source:string -> Gr_analysis.Machine.schedule -> Soak.run_result
(** Replays the schedule via {!Soak.run_one} on the [store] scenario
    with the spec source installed — what the counterexample-validity
    tests assert against. *)
