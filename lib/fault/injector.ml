open Gr_util
module Tracer = Gr_trace.Tracer
module Event = Gr_trace.Event

exception Injected_hook_fault of string

type t = {
  kernel : Gr_kernel.Kernel.t;
  tracer : Tracer.t;
  store : Gr_runtime.Feature_store.t;
  devices : Gr_kernel.Ssd.t array;
  base_profiles : Gr_kernel.Ssd.profile array;
  blk : Gr_kernel.Blk.t option;
  rng : Rng.t;
  mutable on_policy_install : string -> unit;
  mutable armed : int;
  mutable injected : int;
  mutable skipped : int;
  mutable hook_raises : int;
}

let create ~kernel ~tracer ~store ?(devices = [||]) ?blk ~seed () =
  {
    kernel;
    tracer;
    store;
    devices;
    base_profiles = Array.map Gr_kernel.Ssd.profile devices;
    blk;
    rng = Rng.create (seed lxor 0x0fa517);
    on_policy_install = ignore;
    armed = 0;
    injected = 0;
    skipped = 0;
    hook_raises = 0;
  }

let set_on_policy_install t fn = t.on_policy_install <- fn
let armed t = t.armed
let injected t = t.injected
let skipped t = t.skipped
let hook_raises t = t.hook_raises

let trace t fault ~applied =
  Tracer.instant t.tracer ~cat:"fault"
    ~args:[ ("fault", Event.Str (Fault.fault_to_string fault)); ("applied", Event.Bool applied) ]
    "fault.inject"

(* A storm is the device's own GC process cranked up: episodes nearly
   back-to-back at a high multiplier, the tail-latency regime LinnOS
   models go stale against. *)
let storm_profile (p : Gr_kernel.Ssd.profile) =
  {
    p with
    Gr_kernel.Ssd.gc_period = Time_ns.ms 4;
    gc_duration = Time_ns.ms 3;
    gc_multiplier = Float.max p.gc_multiplier 40.;
  }

let schedule_after t delay fn =
  ignore (Gr_sim.Engine.schedule_after t.kernel.engine delay fn : Gr_sim.Engine.handle)

let apply t ({ Fault.at = _; kind } as fault) =
  let applied =
    match kind with
    | Fault.Gc_storm { device; duration } ->
      if Array.length t.devices = 0 then false
      else begin
        let idx = device mod Array.length t.devices in
        let dev = t.devices.(idx) in
        Gr_kernel.Ssd.set_profile dev (storm_profile (Gr_kernel.Ssd.profile dev));
        schedule_after t duration (fun _ ->
            Gr_kernel.Ssd.set_profile dev t.base_profiles.(idx));
        true
      end
    | Fault.Device_death { device; duration } ->
      if Array.length t.devices = 0 then false
      else begin
        let dev = t.devices.(device mod Array.length t.devices) in
        Gr_kernel.Ssd.kill dev;
        schedule_after t duration (fun _ -> Gr_kernel.Ssd.revive dev);
        true
      end
    | Fault.Hook_exn { hook; count } ->
      let remaining = ref count in
      ignore
        (Gr_kernel.Hooks.subscribe t.kernel.hooks hook (fun _ ->
             if !remaining > 0 then begin
               decr remaining;
               t.hook_raises <- t.hook_raises + 1;
               raise (Injected_hook_fault hook)
             end)
          : Gr_kernel.Hooks.subscription);
      true
    | Fault.Evict_burst { key; burst } ->
      for _ = 1 to burst do
        Gr_runtime.Feature_store.save t.store key (Rng.float t.rng 100.)
      done;
      true
    | Fault.Corrupt_key { key; corruption } ->
      let value =
        match corruption with
        | Fault.Nan -> Float.nan
        | Fault.Huge -> 1e14
        | Fault.Neg_huge -> -1e14
        | Fault.Value v -> v
      in
      Gr_runtime.Feature_store.save t.store key value;
      true
    | Fault.Policy_chaos { chaos } -> (
      match t.blk with
      | None -> false
      | Some blk ->
        let slot = Gr_kernel.Blk.slot blk in
        let policy =
          match chaos with
          | Fault.Stuck_trust -> Gr_policy.Inject.stuck_blk Gr_kernel.Blk.Trust_primary
          | Fault.Stuck_revoke -> Gr_policy.Inject.stuck_blk Gr_kernel.Blk.Revoke_now
          | Fault.Flip ->
            Gr_policy.Inject.flip_blk_decisions ~rng:t.rng ~p:0.5
              (Gr_kernel.Policy_slot.current slot)
        in
        let name = policy.Gr_kernel.Blk.policy_name in
        Gr_kernel.Policy_slot.install slot ~name policy;
        t.on_policy_install name;
        true)
    | Fault.Clock_skew { by } ->
      Gr_kernel.Kernel.advance_clock_skew t.kernel ~by;
      true
  in
  if applied then t.injected <- t.injected + 1 else t.skipped <- t.skipped + 1;
  trace t fault ~applied

let arm t plan =
  List.iter
    (fun (fault : Fault.fault) ->
      t.armed <- t.armed + 1;
      let at = Time_ns.max fault.at (Gr_sim.Engine.now t.kernel.engine) in
      ignore
        (Gr_sim.Engine.schedule_at t.kernel.engine at (fun _ -> apply t fault)
          : Gr_sim.Engine.handle))
    plan
