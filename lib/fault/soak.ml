open Gr_util
module Ssd = Gr_kernel.Ssd
module Blk = Gr_kernel.Blk
module Sched = Gr_kernel.Sched
module Slot = Gr_kernel.Policy_slot
module Hooks = Gr_kernel.Hooks
module Kernel = Gr_kernel.Kernel
module Store = Gr_runtime.Feature_store
module Rt = Gr_runtime.Engine
module Sink = Gr_trace.Sink
module Tracer = Gr_trace.Tracer
module D = Guardrails.Deployment

let scenario_names = [ "blk"; "sched"; "store"; "fleet"; "serve" ]

let caps_of = function
  | "blk" ->
    {
      Fault.n_devices = 4;
      keys = [ "false_submit"; "latency_us"; "false_submit_rate" ];
      hooks = [ "blk:io_complete"; "blk:io_submit" ];
      blk_policy = true;
    }
  | "sched" ->
    {
      Fault.n_devices = 0;
      keys = [ "sched_max_wait_ms"; "sched_jain" ];
      hooks = [ "sched:dispatch"; "sched:task_complete" ];
      blk_policy = false;
    }
  | "store" ->
    {
      Fault.n_devices = 0;
      keys = [ "lat"; "rate"; "err" ];
      hooks = [ "soak:tick" ];
      blk_policy = false;
    }
  | "fleet" ->
    (* Faults land on node 0 only: its device dies, its shard's keys
       get corrupted, its hooks raise — the invariant checks then
       assert that the fleet-merged aggregates and the survivors'
       guardrails stay consistent with the naive oracle. *)
    {
      Fault.n_devices = 2;
      keys = [ "latency_us"; "false_submit" ];
      hooks = [ "blk:io_complete"; "blk:io_submit" ];
      blk_policy = false;
    }
  | "serve" ->
    (* Same node-0 fault surface as fleet — and node 0 is exactly the
       node canaried rollouts target, so device death or a GC storm
       there lands mid-rollout on the canary. *)
    {
      Fault.n_devices = 2;
      keys = [ "latency_us"; "false_submit" ];
      hooks = [ "blk:io_complete"; "blk:io_submit" ];
      blk_policy = false;
    }
  | s -> invalid_arg ("Soak: unknown scenario " ^ s)

let gen_plan ~scenario ~seed ~duration =
  let caps = caps_of scenario in
  let rng = Rng.create ((seed * 0x9e3779b9) lxor Hashtbl.hash scenario) in
  let n = 3 + Rng.int rng 5 in
  Fault.gen ~rng ~caps ~n ~horizon:duration

(* Scenario templates. Each builds a full deployment around a seeded
   kernel; everything stochastic draws from kernel.rng or a split of
   it, so a (scenario, seed) pair is one reproducible universe. *)

type built = {
  b_kernel : Kernel.t;
  b_d : D.t;
  b_handles : Rt.handle list;
  b_inj : Injector.t;
  b_fallback : (bool ref * (unit -> bool)) option;
      (** REPLACE/RESTORE bookkeeping vs. the slot's actual state *)
  b_retrain_runs : int ref;
  b_anomalies : string list ref;
  b_fleet : Guardrails.Fleet.t option;
      (** parallel fleets drive via {!Guardrails.Fleet.run_epochs}
          instead of stepping one shared engine *)
  b_lifecycle : Guardrails.Lifecycle.t option;
      (** the serve scenario's rollout state machine; its targets also
          drive via run_epochs so barrier hooks (the promotion
          decision points) fire *)
}

let blk_spec =
  {|
guardrail soak-false-submit {
  trigger: { TIMER(0, 100ms) },
  rule: { LOAD(false_submit_rate) <= 0.05 },
  action: {
    REPORT("false submit rate above bound", false_submit_rate)
    REPLACE("blk_policy")
  }
}

guardrail soak-tail-latency {
  trigger: { TIMER(0, 200ms) },
  rule: { COUNT(latency_us, 1s) == 0 || AVG(latency_us, 1s) <= 5000 },
  action: {
    REPORT("average I/O latency degraded", latency_us)
    RETRAIN("blk_policy")
  }
}
|}

let build_blk ~engine ~seed ~duration =
  let kernel = Kernel.create ~seed in
  let devices =
    Array.init 4 (fun i -> Ssd.create ~rng:kernel.rng ~profile:Ssd.young_profile ~id:i)
  in
  let blk = Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
  Slot.install (Blk.slot blk) ~name:"linnos" (Gr_policy.Linnos.policy model);
  let d = D.create ~kernel ~tracing:true ~store_capacity:1024 ?engine () in
  D.forward_hook_arg d ~hook:"blk:io_complete" ~arg:"false_submit" ();
  D.forward_hook_arg d ~hook:"blk:io_complete" ~arg:"latency_us" ();
  D.derive_window_avg d ~src:"false_submit" ~dst:"false_submit_rate" ~window:(Time_ns.sec 1)
    ~every:(Time_ns.ms 100);
  let expected_fallback = ref (Slot.on_fallback (Blk.slot blk)) in
  let retrain_runs = ref 0 in
  Kernel.register_policy kernel ~name:"blk_policy"
    ~retrain:(fun () -> incr retrain_runs)
    ~replace:(fun () ->
      Slot.use_fallback (Blk.slot blk);
      expected_fallback := true)
    ~restore:(fun () ->
      Slot.restore (Blk.slot blk);
      expected_fallback := false)
    ();
  let handles = D.install_source_exn d blk_spec in
  ignore
    (Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
       ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:1200.)
       ~n_devices:4 ~zipf_s:0.5 ~until:duration ()
      : Gr_workload.Io_driver.t);
  let inj =
    Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~devices ~blk ~seed ()
  in
  (* Policy_chaos installs a new live policy, so the slot is no longer
     on its fallback regardless of what REPLACE did earlier. *)
  Injector.set_on_policy_install inj (fun _ -> expected_fallback := false);
  {
    b_kernel = kernel;
    b_d = d;
    b_handles = handles;
    b_inj = inj;
    b_fallback = Some (expected_fallback, fun () -> Slot.on_fallback (Blk.slot blk));
    b_retrain_runs = retrain_runs;
    b_anomalies = ref [];
    b_fleet = None;
    b_lifecycle = None;
  }

let sched_spec =
  {|
guardrail soak-starvation {
  trigger: { TIMER(0, 50ms) },
  rule: { LOAD(sched_max_wait_ms) <= 150 },
  action: {
    REPORT("task starvation", sched_max_wait_ms)
    DEPRIORITIZE("batch", 64)
  }
}

guardrail soak-fairness {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(sched_jain, 1s) == 0 || MIN(sched_jain, 1s) >= 0.2 },
  action: {
    REPORT("unfair CPU shares", sched_jain)
    REPLACE("sched_policy")
  }
}
|}

let build_sched ~engine ~seed ~duration =
  let kernel = Kernel.create ~seed in
  let sched = Sched.create ~engine:kernel.engine ~hooks:kernel.hooks ~cpus:2 () in
  Slot.install (Sched.slot sched) ~name:"wild-slices"
    (Gr_policy.Inject.wild_slices ~rng:kernel.rng ~max_ms:120);
  let d = D.create ~kernel ~tracing:true ?engine () in
  D.wire_scheduler d sched;
  let anomalies = ref [] in
  (* Re-route DEPRIORITIZE through a handler that performs the action
     and then verifies its observable effect immediately: every live
     task of the class must carry the new weight. *)
  Rt.set_deprioritize_handler (D.engine d) (fun ~cls ~weight ->
      ignore (Sched.deprioritize_class sched ~cls ~weight : int);
      List.iter
        (fun (task : Sched.task) ->
          match task.state with
          | Sched.Runnable | Sched.Running ->
            if task.cls = cls && task.weight <> weight then
              anomalies :=
                Printf.sprintf "DEPRIORITIZE(%s, %d) left live task %d at weight %d" cls
                  weight task.tid task.weight
                :: !anomalies
          | Sched.Complete | Sched.Killed -> ())
        (Sched.tasks sched));
  let expected_fallback = ref (Slot.on_fallback (Sched.slot sched)) in
  Kernel.register_policy kernel ~name:"sched_policy"
    ~replace:(fun () ->
      Slot.use_fallback (Sched.slot sched);
      expected_fallback := true)
    ~restore:(fun () ->
      Slot.restore (Sched.slot sched);
      expected_fallback := false)
    ();
  let handles = D.install_source_exn d sched_spec in
  let spawn_rng = Rng.fork kernel.rng in
  ignore
    (Gr_sim.Engine.every kernel.engine ~stop:duration ~interval:(Time_ns.ms 4) (fun _ ->
         let cls = if Rng.int spawn_rng 3 = 0 then "latency" else "batch" in
         ignore
           (Sched.spawn sched ~name:"soak" ~cls
              ~demand:(Time_ns.us (500 + Rng.int spawn_rng 9500))
              ()
             : Sched.task))
      : Gr_sim.Engine.handle);
  let inj = Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~seed () in
  {
    b_kernel = kernel;
    b_d = d;
    b_handles = handles;
    b_inj = inj;
    b_fallback = Some (expected_fallback, fun () -> Slot.on_fallback (Sched.slot sched));
    b_retrain_runs = ref 0;
    b_anomalies = anomalies;
    b_fleet = None;
    b_lifecycle = None;
  }

let store_spec =
  {|
guardrail soak-bounds {
  trigger: { TIMER(0, 50ms) },
  rule: { COUNT(lat, 500ms) == 0 || MIN(lat, 500ms) <= MAX(lat, 500ms) },
  action: { REPORT("window min above max", lat) }
}

guardrail soak-stats {
  trigger: { TIMER(0, 100ms) },
  rule: { STDDEV(lat, 1s) >= 0 && SUM(rate, 1s) >= 0 },
  action: { REPORT("negative second moment", lat, rate) }
}

guardrail soak-tail {
  trigger: { ON_CHANGE(err) },
  rule: { COUNT(lat, 1s) == 0 || QUANTILE(lat, 0.9, 1s) >= MIN(lat, 1s) },
  action: { REPORT("tail inversion", lat, err) }
}

guardrail soak-trend {
  trigger: { TIMER(0, 200ms) },
  rule: { ABS(DELTA(lat, 2s)) <= 1e13 && AVG(lat, 2s) <= 1e13 },
  action: { REPORT("signal blowup", lat) }
}
|}

let build_store ~engine ~seed ~duration =
  let kernel = Kernel.create ~seed in
  (* A small per-key ring keeps capacity eviction constantly active
     under the 1ms save cadence. *)
  let d = D.create ~kernel ~tracing:true ~store_capacity:256 ?engine () in
  D.forward_hook_arg d ~hook:"soak:tick" ~arg:"v" ~key:"err" ();
  let handles = D.install_source_exn d store_spec in
  let wl_rng = Rng.fork kernel.rng in
  ignore
    (Gr_sim.Engine.every kernel.engine ~stop:duration ~interval:(Time_ns.ms 1) (fun _ ->
         let store = D.store d in
         Store.save store "lat" (Rng.lognormal wl_rng ~mu:5.3 ~sigma:0.5);
         Store.save store "rate" (if Rng.bool wl_rng then 1. else 0.))
      : Gr_sim.Engine.handle);
  ignore
    (Gr_sim.Engine.every kernel.engine ~stop:duration ~interval:(Time_ns.ms 5) (fun _ ->
         Hooks.fire kernel.hooks "soak:tick" [ ("v", Rng.float wl_rng 10.) ])
      : Gr_sim.Engine.handle);
  let inj = Injector.create ~kernel ~tracer:(D.tracer d) ~store:(D.store d) ~seed () in
  {
    b_kernel = kernel;
    b_d = d;
    b_handles = handles;
    b_inj = inj;
    b_fallback = None;
    b_retrain_runs = ref 0;
    b_anomalies = ref [];
    b_fleet = None;
    b_lifecycle = None;
  }

let fleet_spec =
  {|
guardrail fleet-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 1e9 },
  action: {
    REPORT("fleet p99 latency degraded", latency_us)
    REPLACE("blk_policy")
  }
}

guardrail fleet-spread {
  trigger: { TIMER(0, 200ms) },
  rule: { COUNT(latency_us, 1s) == 0 || STDDEV(latency_us, 1s) >= 0 },
  action: { REPORT("fleet latency spread negative", latency_us) }
}

guardrail fleet-pressure {
  trigger: { ON_CHANGE(GLOBAL(pressure)) },
  rule: { LOAD(GLOBAL(pressure)) <= 1e9 },
  action: { REPORT("global pressure blowup") }
}
|}

(* Three single-device nodes on one shared clock; fleet guardrails
   aggregate the merged latency stream and act through the broadcast
   REPLACE proxy. The injector targets node 0 exclusively (see
   [caps_of]), so surviving shards keep feeding the merged view while
   one member is dead or lying. *)
let build_fleet ~engine ~nodes ~domains ~seed ~duration =
  let fleet =
    Guardrails.Fleet.create ~nodes ~seed ~store_capacity:1024 ~tracing:true ~domains ?engine ()
  in
  let n = Guardrails.Fleet.node_count fleet in
  (* The broadcast REPLACE proxy flips every node's slot in one action
     execution, so "all slots on fallback" tracks the fleet action
     exactly; checks only run between sim events. *)
  let expected_fallback = ref false in
  let slots = ref [] in
  let node_devices = ref [||] and node_blk = ref None in
  for id = 0 to n - 1 do
    let node = Guardrails.Fleet.node fleet id in
    let kernel = D.kernel node in
    let devices =
      Array.init 2 (fun i -> Ssd.create ~rng:kernel.rng ~profile:Ssd.young_profile ~id:i)
    in
    let blk = Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
    let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
    Slot.install (Blk.slot blk) ~name:"linnos" (Gr_policy.Linnos.policy model);
    slots := Blk.slot blk :: !slots;
    Kernel.register_policy kernel ~name:"blk_policy"
      ~replace:(fun () ->
        Slot.use_fallback (Blk.slot blk);
        expected_fallback := true)
      ~restore:(fun () ->
        Slot.restore (Blk.slot blk);
        expected_fallback := false)
      ();
    D.forward_hook_arg node ~hook:"blk:io_complete" ~arg:"latency_us" ();
    D.forward_hook_arg node ~hook:"blk:io_complete" ~arg:"false_submit" ();
    ignore
      (Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
         ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:400.)
         ~n_devices:2 ~zipf_s:0.5 ~until:duration ()
        : Gr_workload.Io_driver.t);
    if id = 0 then begin
      node_devices := devices;
      node_blk := Some blk
    end
  done;
  let slots = List.rev !slots in
  let control = Guardrails.Fleet.control fleet in
  let handles = Guardrails.Fleet.install_source_exn fleet fleet_spec in
  ignore
    (Gr_sim.Engine.every (Guardrails.Fleet.sim fleet) ~stop:duration
       ~interval:(Time_ns.ms 50) (fun _ ->
         let avg =
           Store.aggregate (D.store control) ~key:"latency_us" ~fn:Gr_dsl.Ast.Avg
             ~window_ns:(float_of_int (Time_ns.sec 1))
             ~param:0.
         in
         Guardrails.Fleet.save_global fleet "pressure"
           (if Float.is_nan avg then 0. else avg /. 1000.))
      : Gr_sim.Engine.handle);
  let node0 = Guardrails.Fleet.node fleet 0 in
  (* The injector runs inside node 0's event stream. In parallel mode
     that stream executes on node 0's own domain, so fault trace events
     must go to node 0's tracer — writing the control tracer from
     another domain would race with the control engine's own events. *)
  let inj_tracer =
    if Guardrails.Fleet.domains fleet > 1 then D.tracer node0 else D.tracer control
  in
  let inj =
    Injector.create ~kernel:(D.kernel node0) ~tracer:inj_tracer ~store:(D.store node0)
      ~devices:!node_devices ?blk:!node_blk ~seed ()
  in
  {
    b_kernel = D.kernel node0;
    b_d = control;
    b_handles = handles;
    b_inj = inj;
    b_fallback =
      Some (expected_fallback, fun () -> List.for_all Slot.on_fallback slots);
    b_retrain_runs = ref 0;
    b_anomalies = ref [];
    b_fleet = Some fleet;
    b_lifecycle = None;
  }

(* The serve scenario: the canaried rollout path under chaos. A fleet
   like build_fleet's (workload per node, injector on node 0 — which
   is also the canary node, so device death and GC storms land
   mid-rollout on the canary), plus a spec lifecycle pushing a
   rotation of specs every 150ms while faults fly:

     - two promotable variants of the boot guardrail (same aggregate
       shapes, different thresholds — so whenever the machine is
       Steady the store's demand set must equal the boot baseline,
       whichever version won; a refcount leaked by any push/rollback/
       promote cycle moves that count and fails the run);
     - a hot spec whose fire rate violates the rollout guardrail and
       must be rolled back;
     - a spec that must die at admission (GRL003).

   Lifecycle invariants ride the fleet's own barrier hook, registered
   after the lifecycle's so they see post-decision state: demand
   refcounts at Steady, at most one Active version, dead versions
   hold no handles, engine monitor table consistent with live
   handles, and the audit event chain parent-resolvable with
   promote/rollback counts matching the machine's. *)

let serve_boot_spec =
  {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 1e9 },
  action: {
    REPORT("fleet p99 latency degraded", latency_us)
    REPLACE("blk_policy")
  }
}
|}

let serve_push_specs =
  [|
    (* Promotable: boot shapes, tighter threshold. *)
    {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 5e8 },
  action: {
    REPORT("fleet p99 latency degraded", latency_us)
    REPLACE("blk_policy")
  }
}
|};
    (* Rolls back: a 10ms timer on a key nothing feeds fires ~100/s on
       the canary, far over the 5/s rollout guardrail. *)
    {|
guardrail serve-heartbeat {
  trigger: { TIMER(0, 10ms) },
  rule: { COUNT(serve_heartbeat, 1s) >= 1 },
  action: {
    REPORT("no model heartbeat", serve_heartbeat)
    REPLACE("blk_policy")
  }
}
|};
    (* Promotable: boot shapes again, threshold back up. *)
    {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 2e9 },
  action: {
    REPORT("fleet p99 latency degraded", latency_us)
    REPLACE("blk_policy")
  }
}
|};
    (* Dies at admission: GRL003, divisor constantly zero. *)
    {|
guardrail serve-bad {
  trigger: { TIMER(0, 100ms) },
  rule: { LOAD(latency_us) / 0 <= 1 },
  action: { REPORT("unreachable") }
}
|};
  |]

let build_serve ~engine ~nodes ~domains ~seed ~duration =
  let fleet =
    Guardrails.Fleet.create ~nodes ~seed ~store_capacity:1024 ~tracing:true ~domains ?engine ()
  in
  let n = Guardrails.Fleet.node_count fleet in
  let node_devices = ref [||] and node_blk = ref None in
  for id = 0 to n - 1 do
    let node = Guardrails.Fleet.node fleet id in
    let kernel = D.kernel node in
    let devices =
      Array.init 2 (fun i -> Ssd.create ~rng:kernel.rng ~profile:Ssd.young_profile ~id:i)
    in
    let blk = Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
    let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
    Slot.install (Blk.slot blk) ~name:"linnos" (Gr_policy.Linnos.policy model);
    Kernel.register_policy kernel ~name:"blk_policy"
      ~replace:(fun () -> Slot.use_fallback (Blk.slot blk))
      ~restore:(fun () -> Slot.restore (Blk.slot blk))
      ();
    D.forward_hook_arg node ~hook:"blk:io_complete" ~arg:"latency_us" ();
    D.forward_hook_arg node ~hook:"blk:io_complete" ~arg:"false_submit" ();
    ignore
      (Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
         ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:400.)
         ~n_devices:2 ~zipf_s:0.5 ~until:duration ()
        : Gr_workload.Io_driver.t);
    if id = 0 then begin
      node_devices := devices;
      node_blk := Some blk
    end
  done;
  let anomalies = ref [] in
  let push_anomaly msg =
    if not (List.mem msg !anomalies) then anomalies := msg :: !anomalies
  in
  let audit_events = ref [] in
  let lc =
    Guardrails.Lifecycle.create
      ~config:
        { Guardrails.Lifecycle.default_config with canary_barriers = 2 }
      ~audit:(fun e -> audit_events := e :: !audit_events)
      (Guardrails.Lifecycle.Fleet fleet)
  in
  let handles =
    match Guardrails.Lifecycle.boot lc ~who:"soak" serve_boot_spec with
    | Ok handles -> handles
    | Error e -> failwith (Format.asprintf "serve boot spec rejected: %a" D.pp_error e)
  in
  let control = Guardrails.Fleet.control fleet in
  let store = D.store control in
  let demand_baseline = Store.demand_count store in
  (* Pushes arrive as shared-engine events — inside the fault storm,
     possibly while a previous rollout is still in flight (those must
     be rejected busy, never wedge the machine). *)
  let push_n = ref 0 in
  ignore
    (Gr_sim.Engine.every (Guardrails.Fleet.sim fleet) ~stop:duration
       ~interval:(Time_ns.ms 150) (fun _ ->
         let spec = serve_push_specs.(!push_n mod Array.length serve_push_specs) in
         incr push_n;
         ignore
           (Guardrails.Lifecycle.push lc ~who:(Printf.sprintf "push-%d" !push_n) spec
             : Guardrails.Lifecycle.decision))
      : Gr_sim.Engine.handle);
  (* Invariant hook: registered after the lifecycle's, so it sees the
     post-decision state of every barrier. *)
  Guardrails.Fleet.add_barrier_hook fleet (fun _ ->
      let module L = Guardrails.Lifecycle in
      (match L.phase lc with
      | L.Steady ->
        let demands = Store.demand_count store in
        if demands <> demand_baseline then
          push_anomaly
            (Printf.sprintf
               "demand refcounts drifted: %d at a Steady barrier, boot baseline %d — an \
                install/uninstall cycle leaked or double-released"
               demands demand_baseline)
      | L.Pending _ | L.Rolling _ -> ());
      let history = L.history lc in
      let active = List.filter (fun (v : L.version) -> v.L.status = L.Active) history in
      if List.length active <> 1 then
        push_anomaly
          (Printf.sprintf "%d Active version(s) in the registry (exactly 1 expected)"
             (List.length active));
      List.iter
        (fun (v : L.version) ->
          match v.L.status with
          | L.Superseded | L.Rolled_back | L.Rejected ->
            if v.L.handles <> [] then
              push_anomaly
                (Printf.sprintf "version v%d is %s but still holds %d engine handle(s)"
                   v.L.id (L.status_name v.L.status)
                   (List.length v.L.handles))
          | L.Staged | L.Canarying | L.Active -> ())
        history;
      let live =
        List.fold_left (fun acc (v : L.version) -> acc + List.length v.L.handles) 0 history
      in
      if Rt.installed_count (D.engine control) <> live then
        push_anomaly
          (Printf.sprintf
             "engine monitor table holds %d entries but the registry accounts for %d live \
              handle(s)"
             (Rt.installed_count (D.engine control))
             live);
      let audit = Gr_trace.Provenance.of_events (List.rev !audit_events) in
      (match Gr_trace.Provenance.orphans audit with
      | [] -> ()
      | orphans ->
        push_anomaly
          (Printf.sprintf "%d audit event(s) reference a missing parent span"
             (List.length orphans)));
      let count name =
        List.length
          (List.filter (fun (e : Gr_trace.Event.t) -> e.name = name) !audit_events)
      in
      if count "rollout.promote" <> L.promotions lc then
        push_anomaly "audit log promote events diverge from the machine's promotion count";
      if count "rollout.rollback" <> L.rollbacks lc then
        push_anomaly "audit log rollback events diverge from the machine's rollback count");
  let node0 = Guardrails.Fleet.node fleet 0 in
  let inj_tracer =
    if Guardrails.Fleet.domains fleet > 1 then D.tracer node0 else D.tracer control
  in
  let inj =
    Injector.create ~kernel:(D.kernel node0) ~tracer:inj_tracer ~store:(D.store node0)
      ~devices:!node_devices ?blk:!node_blk ~seed ()
  in
  {
    b_kernel = D.kernel node0;
    b_d = control;
    b_handles = handles;
    b_inj = inj;
    b_fallback = None;
    b_retrain_runs = ref 0;
    b_anomalies = anomalies;
    b_fleet = Some fleet;
    b_lifecycle = Some lc;
  }

let build ?(nodes = 3) ?(domains = 1) ?engine ~scenario ~seed ~duration () =
  match scenario with
  | "blk" -> build_blk ~engine ~seed ~duration
  | "sched" -> build_sched ~engine ~seed ~duration
  | "store" -> build_store ~engine ~seed ~duration
  | "fleet" -> build_fleet ~engine ~nodes ~domains ~seed ~duration
  | "serve" -> build_serve ~engine ~nodes ~domains ~seed ~duration
  | s -> invalid_arg ("Soak: unknown scenario " ^ s)

(* Oracle comparison. Exact aggregates (COUNT, MIN, MAX, QUANTILE,
   DELTA) must match bit-for-bit (or be NaN on both sides); running
   sums are allowed the float error a streaming path legitimately
   accumulates, scaled by the window's magnitude [m] because injected
   1e14 corruptions make both paths ill-conditioned — e.g. the naive
   scan folds newest-first while the streaming sum admits oldest-first,
   so a window holding +1e14 and -1e14 differs by O(eps * 1e14) even
   when both are correct. STDDEV's sum-of-squares form additionally
   cancels catastrophically while an extreme value is in-window. *)
let agg_name = function
  | Gr_dsl.Ast.Avg -> "AVG"
  | Rate -> "RATE"
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Stddev -> "STDDEV"
  | Quantile -> "QUANTILE"
  | Delta -> "DELTA"

let agg_close ~fn ~m ~n a b =
  if Float.is_nan a || Float.is_nan b then Float.is_nan a && Float.is_nan b
  else if a = b then true
  else
    let diff = Float.abs (a -. b) in
    match (fn : Gr_dsl.Ast.agg) with
    | Count | Min | Max | Quantile | Delta -> false
    | Sum | Rate | Avg ->
      diff <= 1e-9 +. (1e-6 *. (Float.abs a +. Float.abs b)) +. (1e-9 *. m *. float_of_int (n + 1))
    | Stddev -> diff <= 1e-9 +. (1e-4 *. (Float.abs a +. Float.abs b)) +. (1e-7 *. m)

type run_result = {
  ok : bool;
  problems : string list;
  events : int;
  faults_injected : int;
  faults_skipped : int;
  checks : int;
  violations : int;
  trace : Gr_trace.Event.t list;
  slots : (string * bool * int) list;
}

let run_one ?extra_source ?nodes ?domains ?engine ~scenario ~seed ~duration ~plan () =
  let b = build ?nodes ?domains ?engine ~scenario ~seed ~duration () in
  let seen = Hashtbl.create 16 in
  let problems = ref [] in
  let push msg =
    if not (Hashtbl.mem seen msg) then begin
      Hashtbl.add seen msg ();
      problems := msg :: !problems
    end
  in
  let auto_slots = ref ([] : (string * unit Slot.t * int) list) in
  (match extra_source with
  | None -> ()
  | Some src -> (
    match D.install_source b.b_d src with
    | Ok _ -> (
      (* Register a plain unit slot for each policy the extra spec
         acts on that the scenario didn't already register, so
         model-checker counterexample schedules (grc verify ->
         grc soak --plan) replay against a real policy slot whose
         final state and transition count the caller can assert. *)
      match Guardrails.Compile.source src with
      | Error _ -> ()
      | Ok ms ->
        let registered = Slot.Registry.names b.b_kernel.registry in
        List.concat_map
          (fun (m : Guardrails.Monitor.t) ->
            List.filter_map
              (function
                | Guardrails.Monitor.Replace p
                | Guardrails.Monitor.Restore p
                | Guardrails.Monitor.Retrain p -> Some p
                | _ -> None)
              m.Guardrails.Monitor.actions)
          ms
        |> List.sort_uniq compare
        |> List.iter (fun name ->
               if not (List.mem name registered) then begin
                 let slot = Slot.create ~name ~fallback:("fallback", ()) in
                 Slot.install slot ~name:"learned" ();
                 let baseline = List.length (Slot.transitions slot) in
                 Kernel.register_policy b.b_kernel ~name
                   ~replace:(fun () -> Slot.use_fallback slot)
                   ~restore:(fun () -> Slot.restore slot)
                   ();
                 auto_slots := (name, slot, baseline) :: !auto_slots
               end))
    | Error e -> push (Format.asprintf "extra spec rejected: %a" D.pp_error e)));
  Injector.arm b.b_inj plan;
  let store = D.store b.b_d in
  let check_cheap () =
    (match b.b_fallback with
    | Some (expected, actual) ->
      if actual () <> !expected then
        push "policy slot fallback state diverged from REPLACE/RESTORE bookkeeping"
    | None -> ());
    let raised = Injector.hook_raises b.b_inj in
    let contained = Hooks.contained_exn_count b.b_kernel.hooks in
    if contained <> raised then
      push
        (Printf.sprintf
           "hook exception accounting: kernel contained %d, injector raised %d — a real \
            listener bug"
           contained raised)
  in
  let check_oracle () =
    List.iter
      (fun (key, fn, window_ns, param) ->
        let inc = Store.aggregate_result store ~key ~fn ~window_ns ~param in
        Store.set_force_naive store true;
        let naive = Store.aggregate store ~key ~fn ~window_ns ~param in
        Store.set_force_naive store false;
        let samples = Store.window_samples store ~key ~window_ns in
        let n = Array.length samples in
        let m =
          Array.fold_left
            (fun acc v -> if Float.is_finite v then Float.max acc (Float.abs v) else acc)
            0. samples
        in
        if not (agg_close ~fn ~m ~n naive inc.Store.value) then
          push
            (Printf.sprintf
               "streaming aggregate diverged from naive oracle: %s(%s, %gns) streaming=%h \
                naive=%h"
               (agg_name fn) key window_ns inc.Store.value naive))
      (Store.demand_shapes store)
  in
  let events = ref 0 in
  (try
     match b.b_fleet with
     | Some fleet when Guardrails.Fleet.domains fleet > 1 || Option.is_some b.b_lifecycle ->
       (* Parallel fleet: the per-event stepping loop has no meaning
          across domains, so invariants are checked at every epoch
          barrier instead — the only points where node state is
          quiescent and safe to read from here. Lifecycle targets
          also drive through run_epochs (at any domain count): the
          epoch barriers are their promotion decision points, and
          the scenario's own invariant hook rides the same barrier. *)
       Guardrails.Fleet.run_epochs fleet duration ~on_barrier:(fun _ ->
           check_cheap ();
           check_oracle ());
       events := Guardrails.Fleet.events_fired fleet
     | Some _ | None ->
       let engine = b.b_kernel.engine in
       let continue = ref true in
       while !continue do
         match Gr_sim.Engine.next_event_time engine with
         | Some t when Time_ns.compare t duration <= 0 ->
           ignore (Gr_sim.Engine.step engine : bool);
           incr events;
           check_cheap ();
           if !events mod 64 = 0 then check_oracle ()
         | Some _ | None -> continue := false
       done
   with exn ->
     push (Printf.sprintf "engine raised %s — corrective machinery must never throw"
             (Printexc.to_string exn)));
  check_cheap ();
  check_oracle ();
  let tracer = D.tracer b.b_d in
  let sink_check label s =
    if Sink.emitted s <> Sink.length s + Sink.dropped s then
      push
        (Printf.sprintf "%s sink accounting broken: emitted %d <> length %d + dropped %d"
           label (Sink.emitted s) (Sink.length s) (Sink.dropped s));
    if Sink.length s > Sink.capacity s then
      push (Printf.sprintf "%s sink exceeded its capacity" label)
  in
  sink_check "trace" (Tracer.events tracer);
  sink_check "report" (Tracer.reports tracer);
  let eng = D.engine b.b_d in
  let checks, violations, retrains_requested =
    List.fold_left
      (fun (c, v, r) h ->
        let st = Rt.Stats.get eng h in
        let name = Rt.monitor_name h in
        if st.Rt.Stats.violations > st.Rt.Stats.checks then
          push (Printf.sprintf "monitor %s: more violations than checks" name);
        if st.Rt.Stats.action_firings > st.Rt.Stats.violations then
          push (Printf.sprintf "monitor %s: more action firings than violations" name);
        if st.Rt.Stats.retrains_requested + st.Rt.Stats.retrains_suppressed
           > st.Rt.Stats.action_firings then
          push
            (Printf.sprintf "monitor %s: retrain bookkeeping (%d requested + %d suppressed) \
                             exceeds %d action firings"
               name st.Rt.Stats.retrains_requested st.Rt.Stats.retrains_suppressed
               st.Rt.Stats.action_firings);
        ( c + st.Rt.Stats.checks,
          v + st.Rt.Stats.violations,
          r + st.Rt.Stats.retrains_requested ))
      (0, 0, 0) b.b_handles
  in
  if !(b.b_retrain_runs) > retrains_requested then
    push
      (Printf.sprintf "retrain bookkeeping: %d callbacks ran but only %d were requested"
         !(b.b_retrain_runs) retrains_requested);
  List.iter push !(b.b_anomalies);
  let problems = List.rev !problems in
  {
    ok = problems = [];
    problems;
    events = !events;
    faults_injected = Injector.injected b.b_inj;
    faults_skipped = Injector.skipped b.b_inj;
    checks;
    violations;
    trace = Sink.to_list (Tracer.events tracer);
    slots =
      List.rev_map
        (fun (name, slot, baseline) ->
          (name, Slot.on_fallback slot, List.length (Slot.transitions slot) - baseline))
        !auto_slots
      |> List.sort compare;
  }

(* Shrinking: greedy ddmin on single faults. Re-running the predicate
   is sound because runs are deterministic in (scenario, seed, plan). *)
let shrink ~still_fails plan =
  let rec fixpoint plan =
    let n = List.length plan in
    let rec try_drop i =
      if i >= n then plan
      else
        let candidate = List.filteri (fun j _ -> j <> i) plan in
        if still_fails candidate then fixpoint candidate else try_drop (i + 1)
    in
    if n = 0 then plan else try_drop 0
  in
  fixpoint plan

type failure = {
  scenario : string;
  seed : int;
  duration : Time_ns.t;
  domains : int;
  plan : Fault.plan;
  shrunk : Fault.plan;
  problems : string list;
}

type report = {
  runs : int;
  passed : int;
  failures : failure list;
  total_events : int;
  total_faults : int;
}

let repro_command f =
  Printf.sprintf "grc soak --scenario %s --seed %d --duration %g%s --plan '%s'" f.scenario
    f.seed (Time_ns.to_float_sec f.duration)
    (if f.domains > 1 then Printf.sprintf " --domains %d" f.domains else "")
    (Fault.plan_to_string f.shrunk)

let soak ?(log = ignore) ?extra_source ?nodes ?(domains = 1) ?engine ~scenarios ~seeds ~duration
    () =
  let runs = ref 0 and passed = ref 0 and total_events = ref 0 and total_faults = ref 0 in
  let failures = ref [] in
  List.iter
    (fun scenario ->
      List.iter
        (fun seed ->
          incr runs;
          let plan = gen_plan ~scenario ~seed ~duration in
          let r = run_one ?extra_source ?nodes ~domains ?engine ~scenario ~seed ~duration ~plan () in
          total_events := !total_events + r.events;
          total_faults := !total_faults + r.faults_injected;
          if r.ok then begin
            incr passed;
            log
              (Printf.sprintf "PASS %-5s seed=%-3d %6d events, %d faults" scenario seed
                 r.events r.faults_injected)
          end
          else begin
            log
              (Printf.sprintf "FAIL %-5s seed=%-3d %s" scenario seed
                 (String.concat "; " r.problems));
            let still_fails p =
              not
                (run_one ?extra_source ?nodes ~domains ?engine ~scenario ~seed ~duration ~plan:p ())
                  .ok
            in
            let shrunk = shrink ~still_fails plan in
            failures :=
              { scenario; seed; duration; domains; plan; shrunk; problems = r.problems }
              :: !failures
          end)
        seeds)
    scenarios;
  {
    runs = !runs;
    passed = !passed;
    failures = List.rev !failures;
    total_events = !total_events;
    total_faults = !total_faults;
  }

let pp_report fmt r =
  Format.fprintf fmt "soak: %d run(s), %d passed, %d failed; %d sim events, %d faults injected@."
    r.runs r.passed
    (List.length r.failures)
    r.total_events r.total_faults;
  List.iter
    (fun f ->
      Format.fprintf fmt "FAIL %s seed=%d (%d-fault plan shrunk to %d):@." f.scenario f.seed
        (List.length f.plan) (List.length f.shrunk);
      List.iter (fun p -> Format.fprintf fmt "  - %s@." p) f.problems;
      Format.fprintf fmt "  repro: %s@." (repro_command f))
    r.failures
