(** Chaos-soak harness: randomized deployments x fault plans, with
    global invariants checked after every sim event.

    Each run builds one of three scenario templates around a seeded
    kernel, arms a generated (or supplied) {!Fault.plan}, then drives
    the sim engine {e one event at a time}, checking cheap invariants
    between events and expensive ones (the streaming-vs-naive
    aggregate oracle) on a stride:

    - the engine never raises — injected hook exceptions are contained
      by the kernel, everything else is a bug;
    - the kernel's contained-exception count equals the number of
      exceptions the injector raised (an unexplained containment is a
      real listener bug);
    - REPLACE/RESTORE bookkeeping matches the policy slot's actual
      fallback state;
    - every registered streaming aggregate agrees with the naive
      full-scan oracle, NaN- and magnitude-aware;
    - trace and report sinks satisfy [emitted = length + dropped];
    - per-monitor stats are sane (violations <= checks, firings <=
      violations, retrain callbacks run <= retrains requested);
    - DEPRIORITIZE observably reweights every live task of its class
      (checked in the action handler itself).

    A failing (seed, plan) shrinks by greedy delta debugging to a
    minimal plan that still fails, and {!repro_command} renders it as
    a [grc soak] command line. Same seed, same plan: bit-identical
    trace event streams — {!run_one} exposes the stream so tests can
    assert that. *)

val scenario_names : string list
(** ["blk"; "sched"; "store"; "fleet"]: LinnOS-style block stack
    under I/O load; multi-CPU scheduler with a wild slice policy;
    feature-store aggregation under a synthetic save workload; a
    multi-node fleet whose faults all land on node 0 (its device
    dies, its shard's keys get corrupted, its hooks raise) while the
    invariants assert that the fleet-merged aggregates and the
    surviving nodes' guardrails stay consistent. *)

val caps_of : string -> Fault.caps
(** What each scenario exposes for faulting.
    @raise Invalid_argument on an unknown scenario name. *)

val gen_plan : scenario:string -> seed:int -> duration:Gr_util.Time_ns.t -> Fault.plan
(** The plan a soak run of this (scenario, seed) would use. *)

type run_result = {
  ok : bool;
  problems : string list;  (** deduplicated invariant failures *)
  events : int;  (** sim events dispatched *)
  faults_injected : int;
  faults_skipped : int;
  checks : int;  (** guardrail rule evaluations across monitors *)
  violations : int;
  trace : Gr_trace.Event.t list;  (** full trace-event stream *)
  slots : (string * bool * int) list;
      (** [(policy, on_fallback, transitions)] for each policy slot
          auto-registered for the extra spec (see {!run_one}), sorted
          by name; transitions counted from after the initial learned
          install. *)
}

val run_one :
  ?extra_source:string ->
  ?nodes:int ->
  ?domains:int ->
  ?engine:Gr_runtime.Vm.tier ->
  scenario:string ->
  seed:int ->
  duration:Gr_util.Time_ns.t ->
  plan:Fault.plan ->
  unit ->
  run_result
(** One deterministic run. [extra_source] installs additional
    guardrails (the [grc soak --spec] path) into the scenario's
    deployment; an install failure is reported as a problem. Each
    policy the extra spec REPLACEs/RESTOREs/RETRAINs that the
    scenario didn't register gets a plain unit slot (fallback
    ["fallback"], learned ["learned"]) registered on the kernel, and
    its end state is reported in [slots] — this is what makes
    [grc verify] counterexample schedules executable end to end.
    [nodes] (default 3) sizes the ["fleet"] scenario and is ignored
    by the single-node scenarios. [domains] (default 1) runs the
    ["fleet"] scenario in parallel epoch-barrier mode
    (docs/PARALLEL.md); the invariant checks then run at every epoch
    barrier — the only quiescent points — instead of after every sim
    event, and the injector's fault traces land on node 0's tracer
    channel. Ignored by the single-node scenarios. [engine]
    selects the monitor execution tier for every deployment the
    scenario builds (default: the JIT tier) — tiers are bit-identical,
    so a soak failure reproduces under any of them unless the tier
    machinery itself is the bug. *)

type failure = {
  scenario : string;
  seed : int;
  duration : Gr_util.Time_ns.t;
  domains : int;  (** execution mode the failure reproduced under *)
  plan : Fault.plan;  (** as generated *)
  shrunk : Fault.plan;  (** minimal still-failing subset *)
  problems : string list;
}

type report = {
  runs : int;
  passed : int;
  failures : failure list;
  total_events : int;
  total_faults : int;
}

val shrink : still_fails:(Fault.plan -> bool) -> Fault.plan -> Fault.plan
(** Greedy delta debugging: repeatedly drops any single fault whose
    removal preserves failure, to a 1-minimal plan. The predicate is
    a parameter so the shrinker itself is unit-testable. *)

val soak :
  ?log:(string -> unit) ->
  ?extra_source:string ->
  ?nodes:int ->
  ?domains:int ->
  ?engine:Gr_runtime.Vm.tier ->
  scenarios:string list ->
  seeds:int list ->
  duration:Gr_util.Time_ns.t ->
  unit ->
  report
(** Runs every scenario x seed with generated plans, shrinking each
    failure. [log] receives one progress line per run. [domains]
    (default 1) is forwarded to {!run_one} for fleet runs and
    recorded in each failure's repro command. *)

val repro_command : failure -> string
(** The [grc soak --scenario .. --seed .. --duration .. --plan '..']
    line that reproduces the shrunk failure. *)

val pp_report : Format.formatter -> report -> unit
