(** Typed fault plans for deterministic chaos testing.

    A fault plan is a timestamped list of injected failures — the
    misbehaviours the guardrail stack exists to survive: device GC
    storms and deaths (the LinnOS regime shifts), listener exceptions
    at hook points (buggy instrumentation), feature-store eviction
    pressure and key corruption (NaN / adversarial magnitudes reaching
    the aggregation path), adversarial policy outputs (the
    {!Gr_policy.Inject} wrappers, generalised) and clock skew.

    Plans are plain data with an exact textual round-trip
    ({!plan_to_string} / {!plan_of_string}), so a failing soak run can
    print its minimal shrunk plan as a [grc soak --plan '...'] command
    line and the repro is the plan, not the process that found it.
    Generation ({!gen}) draws from an explicit {!Gr_util.Rng.t}: the
    same seed always yields the same plan. *)

type corruption =
  | Nan  (** poison with [Float.nan] *)
  | Huge  (** [1e14]: finite but far outside any legitimate signal *)
  | Neg_huge  (** [-1e14] *)
  | Value of float  (** a specific adversarial value *)

type chaos =
  | Stuck_trust  (** block policy that always trusts the primary *)
  | Stuck_revoke  (** block policy that always revokes *)
  | Flip  (** wrap the live policy, flipping half its decisions *)

type kind =
  | Gc_storm of { device : int; duration : Gr_util.Time_ns.t }
      (** Put the device in a near-continuous GC regime for
          [duration], then restore its original profile. *)
  | Device_death of { device : int; duration : Gr_util.Time_ns.t }
      (** Kill the device (2s command-timeout latencies) for
          [duration], then revive it. *)
  | Hook_exn of { hook : string; count : int }
      (** Subscribe a listener to [hook] that raises on its next
          [count] firings — exercising the kernel's listener
          containment and quarantine. *)
  | Evict_burst of { key : string; burst : int }
      (** Save [burst] samples to [key] back-to-back, forcing
          capacity eviction of the key's older samples out from under
          any registered streaming aggregates. *)
  | Corrupt_key of { key : string; corruption : corruption }
      (** Save one adversarial sample to [key]. *)
  | Policy_chaos of { chaos : chaos }
      (** Install an adversarial policy in the block layer's slot. *)
  | Clock_skew of { by : Gr_util.Time_ns.t }
      (** Jump the kernel-observed clock forward by [by] (an NTP
          step / VM migration pause); the event queue is unaffected. *)

type fault = { at : Gr_util.Time_ns.t; kind : kind }
type plan = fault list

val fault_to_string : fault -> string
(** E.g. ["gc-storm@150000000:dev=1,dur=50000000"]. Timestamps and
    durations are integer nanoseconds, so the round-trip is exact. *)

val plan_to_string : plan -> string
(** Faults joined with [';']. *)

val plan_of_string : string -> (plan, string) result
(** Inverse of {!plan_to_string}; the error is a one-line message
    naming the offending fragment. *)

val pp_fault : Format.formatter -> fault -> unit
val pp_plan : Format.formatter -> plan -> unit

(** {1 Generation} *)

type caps = {
  n_devices : int;  (** 0 disables storage faults *)
  keys : string list;  (** store keys eligible for eviction/corruption *)
  hooks : string list;  (** hook points eligible for listener faults *)
  blk_policy : bool;  (** whether a block-policy slot exists *)
}
(** What a scenario exposes for faulting; {!gen} only draws fault
    kinds the scenario can absorb. *)

val gen : rng:Gr_util.Rng.t -> caps:caps -> n:int -> horizon:Gr_util.Time_ns.t -> plan
(** [n] faults at times within [(horizon/20, 4*horizon/5)], sorted by
    time. Deterministic in the rng state. *)
