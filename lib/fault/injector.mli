(** Arms a {!Fault.plan} against a live deployment.

    Each fault is scheduled as an ordinary sim-engine event at its
    plan time, so injection is subject to the same deterministic
    clock and FIFO tie-breaking as everything else: a (seed, plan)
    pair replays bit-for-bit. Every application (and every skip, when
    the scenario lacks the faulted subsystem) is traced as an instant
    event of category ["fault"], putting the injected failures on the
    same timeline as the guardrail checks that react to them. *)

exception Injected_hook_fault of string
(** What injected hook listeners raise; distinguishable from real
    listener bugs when reconciling
    {!Gr_kernel.Hooks.contained_exn_count}. *)

type t

val create :
  kernel:Gr_kernel.Kernel.t ->
  tracer:Gr_trace.Tracer.t ->
  store:Gr_runtime.Feature_store.t ->
  ?devices:Gr_kernel.Ssd.t array ->
  ?blk:Gr_kernel.Blk.t ->
  seed:int ->
  unit ->
  t
(** Device profiles are snapshotted here; a GC storm always restores
    the profile the device had at injector creation. *)

val set_on_policy_install : t -> (string -> unit) -> unit
(** Called with the policy name whenever a [Policy_chaos] fault
    installs into the block slot — the soak uses this to reset its
    REPLACE/RESTORE bookkeeping, since {!Gr_kernel.Policy_slot.install}
    makes the new policy live. *)

val arm : t -> Fault.plan -> unit
(** Schedules every fault; faults timed in the past fire at the next
    clock tick. May be called before or during a run. *)

val armed : t -> int
val injected : t -> int
(** Faults whose effect was applied. *)

val skipped : t -> int
(** Faults dropped because the scenario lacks the target (no devices,
    no block slot). *)

val hook_raises : t -> int
(** Exceptions actually raised by injected hook listeners so far —
    the number the kernel's contained-exception counter must equal,
    or a {e real} listener bug slipped in. *)
