open Gr_util
open Gr_nn

type t = {
  model : Mlp.t;
  mutable wobble : float; (* amplitude of the injected instability *)
  mutable enabled : bool;
}

(* Ground truth the model imitates: back off as RTT and loss grow. *)
let target ~rtt_ms ~loss =
  let backoff = Float.min 1.8 (Float.max 0.2 (1.6 -. (rtt_ms /. 100.) -. (6. *. loss))) in
  backoff /. 2. (* map into (0,1) for the sigmoid output *)

let train ~rng ?(samples = 800) ?(epochs = 50) () =
  let rng = Rng.fork rng in
  let data =
    Array.init samples (fun _ ->
        let rtt_ms = Rng.float rng 120. and loss = Rng.float rng 0.15 in
        ([| rtt_ms /. 120.; loss /. 0.15 |], [| target ~rtt_ms ~loss |]))
  in
  let model = Mlp.create ~rng:(Rng.fork rng) ~layers:[ 2; 10; 1 ] ~hidden:Gr_nn.Mlp.Tanh () in
  ignore (Mlp.train model ~rng ~epochs ~batch_size:16 ~lr:0.15 data : float);
  { model; wobble = 0.; enabled = true }

let rate_multiplier t ~rtt_ms ~loss =
  let rtt_n = rtt_ms /. 120. and loss_n = loss /. 0.15 in
  let base = 2. *. (Mlp.forward t.model [| rtt_n; loss_n |]).(0) in
  (* The wobble term models an unstable/overfit policy: a
     high-frequency component whose output swings violently under
     tiny measurement noise. Zero for the trained model. *)
  let noisy = base +. (t.wobble *. sin (500. *. (rtt_n +. loss_n))) in
  Float.max 0. noisy

let sensitivity_probe t ~rng ~rtt_ms ~loss ?(epsilon = 0.01) () =
  let base = rate_multiplier t ~rtt_ms ~loss in
  let worst = ref 0. in
  for _ = 1 to 6 do
    let d_rtt = Rng.gaussian rng ~mu:0. ~sigma:(epsilon *. 120.) in
    let d_loss = Rng.gaussian rng ~mu:0. ~sigma:(epsilon *. 0.15) in
    let perturbed = rate_multiplier t ~rtt_ms:(rtt_ms +. d_rtt) ~loss:(loss +. d_loss) in
    worst := Float.max !worst (Float.abs (perturbed -. base) /. epsilon)
  done;
  !worst

let inject_sensitivity t ~scale = t.wobble <- Float.max 0. ((scale -. 1.) *. 0.015)
let restore t = t.wobble <- 0.
let set_enabled t v = t.enabled <- v
let enabled t = t.enabled

let controller t =
  {
    Gr_kernel.Net.controller_name = "learned-cc";
    adjust =
      (fun ~rtt_ms ~loss ->
        if t.enabled then rate_multiplier t ~rtt_ms ~loss
        else Gr_kernel.Net.aimd.adjust ~rtt_ms ~loss);
  }
