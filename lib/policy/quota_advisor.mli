(** Learned fast-tier quota advisor — the P3 out-of-bounds subject.

    Figure 1's P3 example is "memory allocation: ensure allocation by
    the model is within available memory". This regressor proposes a
    fast-tier page reservation from the observed miss rate and
    occupancy. Under {!inject_drift} (standing in for a stale or
    corrupted model) its proposals scale beyond the tier's capacity —
    illegal outputs that {!Gr_kernel.Mm.advise_quota} refuses and the
    P3 guardrail detects on the ["mm:quota"] hook. *)

type t

val train : rng:Gr_util.Rng.t -> capacity:int -> ?samples:int -> ?epochs:int -> unit -> t
(** Learns the (sane) mapping: higher miss rate -> larger share of
    [capacity], saturating at capacity. *)

val propose : t -> miss_rate:float -> occupancy:float -> int
(** Proposed quota in pages; honest model outputs lie in
    [0, capacity]. *)

val inject_drift : t -> scale:float -> unit
(** Multiplies proposals by [scale]; > 1 produces out-of-bounds
    requests. [1.] restores honesty. *)

val drift : t -> float
