open Gr_util
open Gr_nn

type t = {
  rng : Rng.t;
  samples : int;
  epochs : int;
  mutable model : Mlp.t;
  mutable enabled : bool;
  mutable scale : float;
  mutable retrains : int;
}

(* Synthetic training stream: sequential runs with geometric lengths
   separated by random seeks. Each example is (delta, run-so-far,
   occupancy) -> pages remaining in the run, the quantity an ideal
   prefetcher would fetch. Targets are log-compressed. *)
let dataset ~rng ~mean_run ~samples =
  let data = ref [] in
  let remaining = ref 0 and run = ref 0 in
  for _ = 1 to samples do
    if !remaining = 0 then begin
      (* A seek starts a new run. *)
      remaining := 1 + int_of_float (Rng.exponential rng ~rate:(1. /. mean_run));
      run := 0;
      let occupancy = Rng.float rng 1.0 in
      data := ([| 37.; 0.; occupancy |], [| 0. |]) :: !data
    end
    else begin
      incr run;
      decr remaining;
      let occupancy = Rng.float rng 1.0 in
      data :=
        ([| 1.; float_of_int !run; occupancy |], [| log1p (float_of_int !remaining) |]) :: !data
    end
  done;
  Array.of_list !data

let shape features = [| (if features.(0) = 1. then 1. else 0.); log1p features.(1); features.(2) |]

let fit t ~mean_run =
  let raw = dataset ~rng:t.rng ~mean_run ~samples:t.samples in
  let data = Array.map (fun (x, y) -> (shape x, y)) raw in
  let model =
    Mlp.create ~rng:(Rng.fork t.rng) ~layers:[ 3; 10; 1 ] ~hidden:Gr_nn.Mlp.Tanh
      ~output:Gr_nn.Mlp.Linear ()
  in
  ignore (Mlp.train model ~rng:t.rng ~epochs:t.epochs ~batch_size:32 ~lr:0.05 data : float);
  t.model <- model

let train ~rng ?(mean_run = 24.) ?(samples = 4000) ?(epochs = 20) () =
  let rng = Rng.fork rng in
  let t =
    {
      rng;
      samples;
      epochs;
      model = Mlp.create ~rng:(Rng.copy rng) ~layers:[ 3; 1 ] ~output:Gr_nn.Mlp.Linear ();
      enabled = true;
      scale = 1.;
      retrains = 0;
    }
  in
  fit t ~mean_run;
  t

let predict_window t ~delta ~run ~occupancy =
  let y = (Mlp.forward t.model (shape [| delta; run; occupancy |])).(0) in
  let pages = expm1 (Float.max 0. y) in
  int_of_float (Float.round (pages *. t.scale))

let policy t =
  let fallback = Gr_kernel.Fs.sequential_doubling () in
  {
    Gr_kernel.Fs.policy_name = "learned-readahead";
    window =
      (fun features ->
        if not t.enabled then fallback.window features
        else predict_window t ~delta:features.(0) ~run:features.(1) ~occupancy:features.(2));
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled
let inject_scale t scale = t.scale <- scale

let retrain t ~mean_run =
  t.retrains <- t.retrains + 1;
  t.scale <- 1.;
  fit t ~mean_run

let retrain_count t = t.retrains
