(** Fault injection combinators for policies.

    Guardrails exist because learned policies misbehave; the test
    suite and the Figure 1 matrix need misbehaviour on demand. These
    wrappers degrade a working policy from the outside, so every
    experiment can state precisely which failure it injects. *)

val flip_blk_decisions :
  rng:Gr_util.Rng.t -> p:float -> Gr_kernel.Blk.policy -> Gr_kernel.Blk.policy
(** With probability [p] per I/O, replaces the policy's decision with
    the opposite extreme (Trust_primary <-> Revoke_now; Hedge flips
    to Trust_primary). Models random mispredictions. *)

val stuck_blk : Gr_kernel.Blk.decision -> Gr_kernel.Blk.policy
(** Ignores its features entirely and always emits the given
    decision — the degenerate learned policy (a saturated network, a
    constant-output regression) that fault plans install to prove
    REPLACE recovers from it. [Trust_primary] never hedges (false
    submits under a slow device); [Revoke_now] wastes every I/O. *)

val always_promote : Gr_kernel.Mm.policy
(** Degenerate placement policy: promotes every slow access —
    thrashes the fast tier. *)

val never_promote : Gr_kernel.Mm.policy

val wild_slices : rng:Gr_util.Rng.t -> max_ms:int -> Gr_kernel.Sched.policy
(** Slice policy drawing uniformly random slices up to [max_ms] —
    starves under load. *)

val mru_eviction : Gr_kernel.Cache.policy
(** Evicts the most recently used key: pathological for zipfian
    workloads, the quality floor below random. *)

val skewed_balancer : rng:Gr_util.Rng.t -> hot_fraction:float -> Gr_kernel.Sched.balancer
(** Places a [hot_fraction] of spawns on CPU 0 regardless of load
    (the rest go to a random queue) — the wasted-cores bug class:
    other CPUs idle while CPU 0's runqueue backs up. *)
