(** Learned file readahead.

    Predicts how much of the current sequential run is still ahead —
    from the last offset delta, the run length so far, and cache
    occupancy — and prefetches that many pages. Trained on access
    streams with a characteristic run-length distribution, it beats
    the doubling heuristic on workloads with long runs (it jumps
    straight to a large window) and backs off instantly on random
    access.

    {!inject_scale} multiplies the predicted window, modelling the
    P3 failure from the paper's property table: a prefetcher
    requesting "chunks from a file beyond the memory limit for a
    process". *)

type t

val train :
  rng:Gr_util.Rng.t ->
  ?mean_run:float ->
  ?samples:int ->
  ?epochs:int ->
  unit ->
  t
(** Trains on a synthetic stream of sequential runs (geometric, mean
    [mean_run], default 24 pages) separated by random seeks. *)

val policy : t -> Gr_kernel.Fs.policy
val predict_window : t -> delta:float -> run:float -> occupancy:float -> int

val set_enabled : t -> bool -> unit
(** Disabled, it behaves as the sequential-doubling fallback. *)

val enabled : t -> bool

val inject_scale : t -> float -> unit
(** Multiplies requested windows; [1.] restores honesty. *)

val retrain : t -> mean_run:float -> unit
val retrain_count : t -> int
