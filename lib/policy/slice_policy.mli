(** Learned scheduler time-slice policy.

    An MLP regressor trained to imitate the CFS slice rule. The
    failure mode demonstrated for the P6 liveness guardrail is
    training-serving skew by feature omission: the initial model was
    fitted on traces where the runqueue was always short, and the
    developer dropped the "uninformative" runqueue-length column. The
    model learns the average training slice and cannot scale slices
    down under load, so when a burst piles tasks onto the runqueue,
    latency-sensitive tasks starve. DEPRIORITIZE (A4) and REPLACE
    (A2) mitigate; {!retrain} (A3) repairs the feature set.

    The raw (unclamped) predicted slice is published by the scheduler
    on the ["sched:dispatch"] hook, so the P3 out-of-bounds guardrail
    can also watch it. *)

type t

val train :
  rng:Gr_util.Rng.t ->
  ?max_training_runnable:int ->
  ?samples:int ->
  ?epochs:int ->
  unit ->
  t
(** Builds imitation data for runqueue sizes in
    [1, max_training_runnable] (default 4) and fits the regressor. *)

val policy : t -> Gr_kernel.Sched.policy
(** Disabled, it computes the CFS slice directly. *)

val predicted_slice_ms : t -> nr_runnable:int -> weight:int -> received_ms:float -> float

val set_enabled : t -> bool -> unit
val enabled : t -> bool
val retrain : t -> max_training_runnable:int -> unit
(** Refits with the runqueue-length feature restored and coverage up
    to the given runqueue size. *)

val retrain_count : t -> int
