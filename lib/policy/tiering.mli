(** Learned tiered-memory placement (Kleio/IDT-style).

    An MLP predicts, from a slow-tier page's access features (access
    count, time since previous access, fast-tier occupancy), whether
    the page will be reused soon enough to be worth promoting. The
    model is trained on an access trace; the paper's cited failure
    mode — "a learning-based data placement engine may perform poorly
    if the workload ... has random access pattern" — reproduces here
    when the live workload shifts from the zipfian training regime to
    scans, which is what the P1 drift guardrail catches and the A3
    RETRAIN action repairs. *)

type t

val train :
  rng:Gr_util.Rng.t ->
  trace:int array ->
  ?reuse_horizon:int ->
  ?mean_gap_ms:float ->
  ?epochs:int ->
  unit ->
  t
(** [train ~rng ~trace ()] builds the model from a page-access
    sequence: a training example is (features at access i, reused
    within [reuse_horizon] subsequent accesses?). [mean_gap_ms]
    scales access-index distance to simulated milliseconds (the
    offline proxy for the online gap feature; default 0.05ms). *)

val policy : t -> Gr_kernel.Mm.policy
(** Promotes iff [enabled] and predicted reuse probability >= 0.5;
    when disabled it behaves as the second-touch fallback. *)

val predict_promote : t -> float array -> bool

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val retrain : t -> trace:int array -> unit
(** Refits on a fresh trace (the A3 action gives it the recent one). *)

val retrain_count : t -> int
val training_features : t -> float array array
(** Reference feature distribution for the P1 drift guardrail. *)
