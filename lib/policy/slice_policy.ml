open Gr_util
open Gr_nn

type t = {
  rng : Rng.t;
  samples : int;
  epochs : int;
  mutable model : Mlp.t;
  mutable enabled : bool;
  mutable retrains : int;
  mutable sees_runqueue : bool;
}

let cfs_slice_ms ~nr_runnable = Float.max 1. (24. /. float_of_int (max 1 nr_runnable))

(* Imitation dataset. The crucial (mis)design: the feature vector is
   [nr_runnable or 1; weight; received], and an un-retrained model was
   fitted with [sees_runqueue = false] — it never observed the
   runqueue length, because during data collection the queue was
   always short and the developer dropped the "uninformative" column.
   The model therefore learns the *average* slice over the training
   mix and cannot scale slices down under load. *)
let dataset ~rng ~max_training_runnable ~samples ~sees_runqueue =
  Array.init samples (fun _ ->
      let nr = 1 + Rng.int rng max_training_runnable in
      let weight = float_of_int (256 + Rng.int rng 2048) in
      let received = Rng.float rng 100. in
      let nr_feature = if sees_runqueue then float_of_int nr /. 8. else 1. in
      ( [| nr_feature; weight /. 1024.; received /. 100. |],
        [| cfs_slice_ms ~nr_runnable:nr /. 24. |] ))

let fit t ~max_training_runnable =
  let data =
    dataset ~rng:t.rng ~max_training_runnable ~samples:t.samples
      ~sees_runqueue:t.sees_runqueue
  in
  let model = Mlp.create ~rng:(Rng.fork t.rng) ~layers:[ 3; 8; 1 ] ~hidden:Gr_nn.Mlp.Tanh () in
  ignore (Mlp.train model ~rng:t.rng ~epochs:t.epochs ~batch_size:16 ~lr:0.2 data : float);
  t.model <- model

let train ~rng ?(max_training_runnable = 4) ?(samples = 800) ?(epochs = 40) () =
  let rng = Rng.fork rng in
  let t =
    {
      rng;
      samples;
      epochs;
      model = Mlp.create ~rng:(Rng.copy rng) ~layers:[ 3; 1 ] ();
      enabled = true;
      retrains = 0;
      sees_runqueue = false;
    }
  in
  fit t ~max_training_runnable;
  t

let predicted_slice_ms t ~nr_runnable ~weight ~received_ms =
  let nr_feature = if t.sees_runqueue then float_of_int nr_runnable /. 8. else 1. in
  let x = [| nr_feature; float_of_int weight /. 1024.; received_ms /. 100. |] in
  24. *. (Mlp.forward t.model x).(0)

let policy t =
  {
    Gr_kernel.Sched.policy_name = "learned-slice";
    slice =
      (fun ~nr_runnable ~task_weight ~task_received_ms ->
        let ms =
          if t.enabled then
            predicted_slice_ms t ~nr_runnable ~weight:task_weight
              ~received_ms:task_received_ms
          else cfs_slice_ms ~nr_runnable
        in
        let ms = if Float.is_nan ms then 0. else ms in
        int_of_float (ms *. 1e6));
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled

(* Retraining fixes the feature omission: the fresh dataset includes
   the runqueue length, and coverage extends to the given size. *)
let retrain t ~max_training_runnable =
  t.retrains <- t.retrains + 1;
  t.sees_runqueue <- true;
  fit t ~max_training_runnable

let retrain_count t = t.retrains
