open Gr_util

let flip_blk_decisions ~rng ~p policy =
  let rng = Rng.fork rng in
  {
    Gr_kernel.Blk.policy_name = policy.Gr_kernel.Blk.policy_name ^ "+flip";
    decide =
      (fun features ->
        let decision = policy.Gr_kernel.Blk.decide features in
        if Rng.float rng 1.0 >= p then decision
        else
          match decision with
          | Gr_kernel.Blk.Trust_primary -> Gr_kernel.Blk.Revoke_now
          | Gr_kernel.Blk.Revoke_now | Gr_kernel.Blk.Hedge _ -> Gr_kernel.Blk.Trust_primary);
  }

let stuck_blk decision =
  let suffix =
    match decision with
    | Gr_kernel.Blk.Trust_primary -> "trust"
    | Gr_kernel.Blk.Revoke_now -> "revoke"
    | Gr_kernel.Blk.Hedge _ -> "hedge"
  in
  { Gr_kernel.Blk.policy_name = "stuck-" ^ suffix; decide = (fun _ -> decision) }

let always_promote =
  { Gr_kernel.Mm.policy_name = "always-promote"; promote = (fun _ -> true) }

let never_promote =
  { Gr_kernel.Mm.policy_name = "never-promote"; promote = (fun _ -> false) }

let wild_slices ~rng ~max_ms =
  let rng = Rng.fork rng in
  {
    Gr_kernel.Sched.policy_name = "wild-slices";
    slice =
      (fun ~nr_runnable:_ ~task_weight:_ ~task_received_ms:_ ->
        Gr_util.Time_ns.ms (1 + Rng.int rng (max 1 max_ms)));
  }

let mru_eviction =
  {
    Gr_kernel.Cache.policy_name = "mru";
    choose_victim = (fun ~candidates -> candidates.(Array.length candidates - 1));
  }

let skewed_balancer ~rng ~hot_fraction =
  let rng = Rng.fork rng in
  {
    Gr_kernel.Sched.balancer_name = "skewed";
    place =
      (fun ~queue_lens ->
        if Rng.float rng 1.0 < hot_fraction then 0
        else Rng.int rng (Array.length queue_lens));
  }
