open Gr_util
open Gr_nn

type key_state = { mutable last_access : int; mutable count : int }

type t = {
  rng : Rng.t;
  epochs : int;
  mutable model : Mlp.t;
  mutable scaler : Scaler.t;
  mutable enabled : bool;
  mutable retrains : int;
  mutable tick : int; (* logical access clock *)
  table : (int, key_state) Hashtbl.t;
}

let features_of t key =
  match Hashtbl.find_opt t.table key with
  | None -> [| 1e6; 0. |]
  | Some st -> [| float_of_int (t.tick - st.last_access); float_of_int st.count |]

(* Training examples: at each access, (recency, frequency) of the key
   versus the distance to its next use. Output is log1p(distance) so
   the regression target stays in a small range. *)
let dataset trace =
  let n = Array.length trace in
  let next_use = Array.make n (2 * n) in
  let next_seen = Hashtbl.create 256 in
  for i = n - 1 downto 0 do
    (match Hashtbl.find_opt next_seen trace.(i) with Some j -> next_use.(i) <- j | None -> ());
    Hashtbl.replace next_seen trace.(i) i
  done;
  let state = Hashtbl.create 256 in
  let samples = ref [] in
  Array.iteri
    (fun i key ->
      let recency, count =
        match Hashtbl.find_opt state key with
        | Some (last, c) -> (float_of_int (i - last), float_of_int c)
        | None -> (1e6, 0.)
      in
      Hashtbl.replace state key
        (i, match Hashtbl.find_opt state key with Some (_, c) -> c + 1 | None -> 1);
      let distance = float_of_int (next_use.(i) - i) in
      samples := ([| recency; count |], [| log1p distance |]) :: !samples)
    trace;
  Array.of_list (List.rev !samples)

let fit t trace =
  let raw = dataset trace in
  let scaler = Scaler.fit (Array.map fst raw) in
  let data = Array.map (fun (x, y) -> (Scaler.transform scaler x, y)) raw in
  let model =
    Mlp.create ~rng:(Rng.fork t.rng) ~layers:[ 2; 10; 1 ] ~output:Gr_nn.Mlp.Linear ()
  in
  ignore (Mlp.train model ~rng:t.rng ~epochs:t.epochs ~batch_size:32 ~lr:0.02 data : float);
  t.model <- model;
  t.scaler <- scaler

let train ~rng ~hooks ~trace ?(epochs = 10) () =
  let rng = Rng.fork rng in
  let t =
    {
      rng;
      epochs;
      model = Mlp.create ~rng:(Rng.copy rng) ~layers:[ 2; 1 ] ~output:Gr_nn.Mlp.Linear ();
      scaler = Scaler.fit [| [| 0.; 0. |] |];
      enabled = true;
      retrains = 0;
      tick = 0;
      table = Hashtbl.create 1024;
    }
  in
  fit t trace;
  ignore
    (Gr_kernel.Hooks.subscribe hooks "cache:access" (fun args ->
         match List.assoc_opt "key" args with
         | None -> ()
         | Some key ->
           let key = int_of_float key in
           t.tick <- t.tick + 1;
           (match Hashtbl.find_opt t.table key with
           | Some st ->
             st.last_access <- t.tick;
             st.count <- st.count + 1
           | None -> Hashtbl.add t.table key { last_access = t.tick; count = 1 }))
      : Gr_kernel.Hooks.subscription);
  t

let predicted_reuse_distance t key =
  (Mlp.forward t.model (Scaler.transform t.scaler (features_of t key))).(0)

let policy t =
  {
    Gr_kernel.Cache.policy_name = "learned-reuse";
    choose_victim =
      (fun ~candidates ->
        if (not t.enabled) || Array.length candidates = 0 then candidates.(0)
        else begin
          let best = ref candidates.(0) and best_score = ref neg_infinity in
          Array.iter
            (fun key ->
              let score = predicted_reuse_distance t key in
              if score > !best_score then begin
                best := key;
                best_score := score
              end)
            candidates;
          !best
        end);
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled

let retrain t ~trace =
  t.retrains <- t.retrains + 1;
  fit t trace

let retrain_count t = t.retrains
