(** Learned task placement (load balancing).

    A small network scores each runqueue from its relative length and
    places new tasks on the best-scoring queue. Trained against the
    least-loaded expert it reproduces sensible placement; its failure
    knob is {!inject_affinity} — a stale "CPU 0 is the fast core"
    prior baked in by training on an asymmetric machine, which after
    a hardware change (all cores equal) turns into the wasted-cores
    pathology of the paper's introduction. *)

type t

val train : rng:Gr_util.Rng.t -> cpus:int -> ?samples:int -> ?epochs:int -> unit -> t

val balancer : t -> Gr_kernel.Sched.balancer
val place : t -> queue_lens:int array -> int

val set_enabled : t -> bool -> unit
(** Disabled, it behaves as the least-loaded fallback. *)

val enabled : t -> bool

val inject_affinity : t -> strength:float -> unit
(** Adds a bias toward CPU 0 of the given strength (in units of
    queue-length score); [0.] restores the trained model. *)

val retrain : t -> unit
(** Refits against the least-loaded expert and clears the affinity. *)

val retrain_count : t -> int
