(** Learned congestion-control rate adjuster — the P2 robustness
    subject.

    Figure 1's P2 example: "Congestion control. Check if the model is
    sensitive to noisy measurements." The controller maps smoothed
    network observations (RTT, loss rate) to a sending-rate
    multiplier, Orca-style (a learned model adjusting a classical
    controller at coarse timescales). A healthy model is Lipschitz in
    its inputs; {!inject_sensitivity} amplifies the first-layer
    weights, standing in for an overfit/unstable model whose outputs
    swing wildly under measurement noise.

    {!sensitivity_probe} is the instrumentation the P2 guardrail
    consumes: it perturbs the current inputs by a small epsilon and
    reports the output-to-input variation ratio. *)

type t

val train : rng:Gr_util.Rng.t -> ?samples:int -> ?epochs:int -> unit -> t

val rate_multiplier : t -> rtt_ms:float -> loss:float -> float
(** In (0, 2): < 1 backs off, > 1 speeds up. *)

val sensitivity_probe :
  t -> rng:Gr_util.Rng.t -> rtt_ms:float -> loss:float -> ?epsilon:float -> unit -> float
(** Max |delta output| / epsilon over a handful of perturbed inputs —
    an empirical local Lipschitz estimate. *)

val inject_sensitivity : t -> scale:float -> unit
(** Sets the instability amplitude; [scale <= 1.] restores the
    trained model's behaviour. *)

val restore : t -> unit
(** Undoes {!inject_sensitivity} (the REPLACE/RESTORE hook for this
    policy). *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val controller : t -> Gr_kernel.Net.controller
(** Adapter for the {!Gr_kernel.Net} congestion slot; when disabled
    it behaves as the AIMD fallback. *)
