(** Learned cache replacement.

    Predicts each cached key's time-to-reuse from recency/frequency
    features and evicts the key predicted to be reused furthest in
    the future (an approximation of Belady's MIN). Bookkeeping is fed
    by the ["cache:access"] hook, so the policy composes with any
    {!Gr_kernel.Cache.t} without changing the cache.

    Trained on a zipfian trace it comfortably beats LRU and random;
    under a scan-heavy workload its predictions collapse below the
    random baseline — the exact P4 quality floor of Figure 1 ("must
    yield better hit rates than randomly selecting elements"). *)

type t

val train :
  rng:Gr_util.Rng.t ->
  hooks:Gr_kernel.Hooks.t ->
  trace:int array ->
  ?epochs:int ->
  unit ->
  t
(** Fits the reuse-distance model on the trace and subscribes to
    ["cache:access"] for online bookkeeping. *)

val policy : t -> Gr_kernel.Cache.policy

val set_enabled : t -> bool -> unit
(** Disabled, the chooser degrades to LRU (candidates-first). *)

val enabled : t -> bool
val retrain : t -> trace:int array -> unit
val retrain_count : t -> int
