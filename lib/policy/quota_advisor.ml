open Gr_util
open Gr_nn

type t = {
  capacity : int;
  mutable model : Mlp.t;
  mutable drift : float;
}

(* Ground-truth advisory rule the model imitates: reserve a share of
   the fast tier that grows with the miss rate, never exceeding
   capacity. *)
let target ~capacity ~miss_rate ~occupancy =
  let share = Float.min 1. (0.2 +. (0.8 *. miss_rate) +. (0.1 *. occupancy)) in
  share *. float_of_int capacity

let train ~rng ~capacity ?(samples = 600) ?(epochs = 40) () =
  let rng = Rng.fork rng in
  let data =
    Array.init samples (fun _ ->
        let miss_rate = Rng.float rng 1.0 and occupancy = Rng.float rng 1.0 in
        ( [| miss_rate; occupancy |],
          [| target ~capacity ~miss_rate ~occupancy /. float_of_int capacity |] ))
  in
  let model = Mlp.create ~rng:(Rng.fork rng) ~layers:[ 2; 8; 1 ] () in
  ignore (Mlp.train model ~rng ~epochs ~batch_size:16 ~lr:0.2 data : float);
  { capacity; model; drift = 1. }

let propose t ~miss_rate ~occupancy =
  let share = (Mlp.forward t.model [| miss_rate; occupancy |]).(0) in
  int_of_float (Float.round (share *. t.drift *. float_of_int t.capacity))

let inject_drift t ~scale = t.drift <- scale
let drift t = t.drift
