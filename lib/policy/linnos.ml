open Gr_util
open Gr_nn

type t = {
  rng : Rng.t;
  devices : Gr_kernel.Ssd.t array;
  history : int;
  slow_threshold_us : float;
  samples_per_device : int;
  epochs : int;
  mutable model : Mlp.t;
  mutable scaler : Scaler.t;
  mutable enabled : bool;
  mutable retrains : int;
  mutable features : float array array;
}

(* Draws a labelled calibration set by probing a synthetic twin of
   each device (same profile, private RNG), so calibration never
   perturbs the live devices' random streams. The probe walks virtual
   time in small exponential steps so consecutive samples fall inside
   or outside the same GC episode, which is the temporal correlation
   the classifier must learn. *)
let probe_dataset ~rng ~devices ~history ~slow_threshold_us ~samples_per_device =
  let samples = ref [] in
  Array.iteri
    (fun i dev ->
      let profile = Gr_kernel.Ssd.profile dev in
      let probe = Gr_kernel.Ssd.create ~rng:(Rng.fork rng) ~profile ~id:(1000 + i) in
      let window = Ring.create ~capacity:history in
      for _ = 1 to history do
        Ring.push window 0.
      done;
      let t = ref 0 in
      for _ = 1 to samples_per_device do
        t := Time_ns.add !t (Time_ns.of_float_sec (Rng.exponential rng ~rate:2500.));
        let qdepth_p = Rng.int rng 13 and qdepth_r = Rng.int rng 13 in
        let base = Gr_kernel.Ssd.draw_latency probe ~now:!t in
        let lat_us =
          Time_ns.to_float_us base +. (float_of_int qdepth_p *. profile.queue_service_us)
        in
        let feature =
          Array.append
            [| float_of_int qdepth_p; float_of_int qdepth_r |]
            (Array.of_list (Ring.to_list window))
        in
        let label = if lat_us > slow_threshold_us then 1. else 0. in
        samples := (feature, [| label |]) :: !samples;
        Ring.push window lat_us
      done)
    devices;
  Array.of_list !samples

(* Slow I/Os are rare in a healthy regime; oversample them so the MSE
   objective cannot win by always answering "fast". *)
let balance ~rng data =
  let slow = Array.of_list (List.filter (fun (_, y) -> y.(0) > 0.5) (Array.to_list data)) in
  let n_slow = Array.length slow and n = Array.length data in
  if n_slow = 0 || n_slow * 2 >= n then data
  else begin
    let deficit = (n - (2 * n_slow)) / 2 in
    let extra = Array.init deficit (fun _ -> slow.(Rng.int rng n_slow)) in
    Array.append data extra
  end

let fit t =
  let raw = probe_dataset ~rng:t.rng ~devices:t.devices ~history:t.history
      ~slow_threshold_us:t.slow_threshold_us ~samples_per_device:t.samples_per_device
  in
  t.features <- Array.map fst raw;
  let scaler = Scaler.fit t.features in
  let data =
    balance ~rng:t.rng (Array.map (fun (x, y) -> (Scaler.transform scaler x, y)) raw)
  in
  let model =
    Mlp.create ~rng:(Rng.fork t.rng) ~layers:[ 2 + t.history; 16; 16; 1 ] ()
  in
  ignore (Mlp.train model ~rng:t.rng ~epochs:t.epochs ~batch_size:32 ~lr:0.08 data : float);
  t.model <- model;
  t.scaler <- scaler

let train ~rng ~devices ?(history = 4) ?(slow_threshold_us = 300.)
    ?(samples_per_device = 1500) ?(epochs = 25) () =
  let rng = Rng.fork rng in
  let t =
    {
      rng;
      devices;
      history;
      slow_threshold_us;
      samples_per_device;
      epochs;
      model = Mlp.create ~rng:(Rng.copy rng) ~layers:[ 2 + history; 1 ] ();
      scaler = Scaler.fit [| Array.make (2 + history) 0. |];
      enabled = true;
      retrains = 0;
      features = [||];
    }
  in
  fit t;
  t

let predict_score t features =
  (Mlp.forward t.model (Scaler.transform t.scaler features)).(0)

let predict_slow t features = predict_score t features >= 0.5

let policy t =
  let hedge = Time_ns.of_float_sec (t.slow_threshold_us *. 1e-6) in
  {
    Gr_kernel.Blk.policy_name = "linnos";
    decide =
      (fun features ->
        if not t.enabled then Gr_kernel.Blk.Hedge hedge
        else if predict_slow t features then Gr_kernel.Blk.Revoke_now
        else Gr_kernel.Blk.Trust_primary);
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled

let retrain t =
  t.retrains <- t.retrains + 1;
  fit t

let retrain_count t = t.retrains

let holdout_accuracy t =
  let holdout =
    probe_dataset ~rng:t.rng ~devices:t.devices ~history:t.history
      ~slow_threshold_us:t.slow_threshold_us
      ~samples_per_device:(max 100 (t.samples_per_device / 4))
  in
  let correct =
    Array.fold_left
      (fun acc (x, y) ->
        let p = if predict_slow t x then 1. else 0. in
        if Float.abs (p -. y.(0)) < 0.5 then acc + 1 else acc)
      0 holdout
  in
  float_of_int correct /. float_of_int (Array.length holdout)

let inference_flops t = Mlp.flops_per_forward t.model
let training_features t = t.features
