(** LinnOS-style learned I/O latency classifier.

    A small MLP (paper: "a light neural network") predicts whether a
    read issued to a device will be slow, from the device's queue
    depths and its recent service latencies. The block layer consults
    it through {!policy} and revokes predicted-slow I/Os to a replica.

    Training is offline calibration: the model probes the devices'
    latency processes {e as configured right now} and fits to that
    regime. When a device's regime later shifts (aging, heavier GC),
    the model is stale — precisely the failure Figure 2's guardrail
    catches. {!retrain} recalibrates against the current regime and is
    what the A3 RETRAIN action invokes.

    The [enabled] flag implements the paper's Listing 2 action
    [SAVE(ml_enabled, false)]: a disabled model never revokes, which
    is behaviourally the never-revoke fallback without a slot swap. *)

type t

val train :
  rng:Gr_util.Rng.t ->
  devices:Gr_kernel.Ssd.t array ->
  ?history:int ->
  ?slow_threshold_us:float ->
  ?samples_per_device:int ->
  ?epochs:int ->
  unit ->
  t
(** Calibrates against the devices' current profiles. [history] must
    match the block layer's [feature_history] (default 4). *)

val policy : t -> Gr_kernel.Blk.policy
(** Revoke iff [enabled] and the model predicts slow. *)

val predict_slow : t -> float array -> bool
val predict_score : t -> float array -> float
(** Raw sigmoid output in [0,1]. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val retrain : t -> unit
(** Offline recalibration against the devices' current profiles; the
    model is swapped in atomically afterwards. *)

val retrain_count : t -> int

val holdout_accuracy : t -> float
(** Accuracy on a freshly drawn holdout set from the current device
    regime; used by tests and by the P4 quality probes. *)

val inference_flops : t -> int
val training_features : t -> float array array
(** The calibration feature matrix (post-split, pre-normalisation) —
    the reference distribution for the P1 drift guardrail. *)
