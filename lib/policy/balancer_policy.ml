open Gr_util
open Gr_nn

type t = {
  rng : Rng.t;
  cpus : int;
  samples : int;
  epochs : int;
  mutable model : Mlp.t;
  mutable enabled : bool;
  mutable affinity : float;
  mutable retrains : int;
}

(* The scorer sees one queue at a time: [relative length; is_cpu0].
   Lower score = better placement target. Training imitates the
   least-loaded expert: score = queue length, no CPU preference. *)
let fit t =
  let data =
    Array.init t.samples (fun _ ->
        let len = float_of_int (Rng.int t.rng 16) in
        let is0 = if Rng.bool t.rng then 1. else 0. in
        ([| len /. 16.; is0 |], [| len /. 16. |]))
  in
  let model =
    Mlp.create ~rng:(Rng.fork t.rng) ~layers:[ 2; 6; 1 ] ~hidden:Gr_nn.Mlp.Tanh
      ~output:Gr_nn.Mlp.Linear ()
  in
  ignore (Mlp.train model ~rng:t.rng ~epochs:t.epochs ~batch_size:16 ~lr:0.1 data : float);
  t.model <- model

let train ~rng ~cpus ?(samples = 800) ?(epochs = 30) () =
  let rng = Rng.fork rng in
  let t =
    {
      rng;
      cpus;
      samples;
      epochs;
      model = Mlp.create ~rng:(Rng.copy rng) ~layers:[ 2; 1 ] ~output:Gr_nn.Mlp.Linear ();
      enabled = true;
      affinity = 0.;
      retrains = 0;
    }
  in
  fit t;
  t

let score t ~len ~cpu =
  let is0 = if cpu = 0 then 1. else 0. in
  let base = (Mlp.forward t.model [| float_of_int len /. 16.; is0 |]).(0) in
  base -. (t.affinity *. is0)

let place t ~queue_lens =
  let best = ref 0 and best_score = ref infinity in
  Array.iteri
    (fun cpu len ->
      let s = score t ~len ~cpu in
      if s < !best_score then begin
        best := cpu;
        best_score := s
      end)
    queue_lens;
  !best

let balancer t =
  {
    Gr_kernel.Sched.balancer_name = "learned-balancer";
    place =
      (fun ~queue_lens ->
        if t.enabled then place t ~queue_lens
        else Gr_kernel.Sched.least_loaded.place ~queue_lens);
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled
let inject_affinity t ~strength = t.affinity <- strength

let retrain t =
  t.retrains <- t.retrains + 1;
  t.affinity <- 0.;
  fit t

let retrain_count t = t.retrains
