open Gr_util
open Gr_nn

type t = {
  rng : Rng.t;
  reuse_horizon : int;
  mean_gap_ms : float;
  epochs : int;
  mutable model : Mlp.t;
  mutable scaler : Scaler.t;
  mutable enabled : bool;
  mutable retrains : int;
  mutable features : float array array;
}

(* Builds (features, reused-soon) examples by replaying the trace and
   tracking per-page access counts and last-access indices. The
   occupancy feature is approximated by the fraction of distinct pages
   seen so far, capped at 1 — offline we have no real fast tier. *)
let dataset ~reuse_horizon ~mean_gap_ms trace =
  let n = Array.length trace in
  let last_seen = Hashtbl.create 256 and counts = Hashtbl.create 256 in
  let next_use = Array.make n max_int in
  let next_seen = Hashtbl.create 256 in
  for i = n - 1 downto 0 do
    (match Hashtbl.find_opt next_seen trace.(i) with
    | Some j -> next_use.(i) <- j
    | None -> ());
    Hashtbl.replace next_seen trace.(i) i
  done;
  let distinct = ref 0 in
  let samples = ref [] in
  Array.iteri
    (fun i page ->
      let count =
        match Hashtbl.find_opt counts page with
        | Some c -> c + 1
        | None ->
          incr distinct;
          1
      in
      Hashtbl.replace counts page count;
      let gap_ms =
        match Hashtbl.find_opt last_seen page with
        | Some j -> float_of_int (i - j) *. mean_gap_ms
        | None -> 1e9
      in
      Hashtbl.replace last_seen page i;
      (* Offline proxy for fast-tier occupancy: saturates once the
         distinct-page count passes a typical tier size, matching the
         online signal (which is ~1 whenever the tier is warm). An
         unsaturated proxy would leak trace position into training. *)
      let occupancy = Float.min 1. (float_of_int !distinct /. 256.) in
      let feature = [| float_of_int count; gap_ms; occupancy |] in
      let label = if next_use.(i) - i <= reuse_horizon then 1. else 0. in
      samples := (feature, [| label |]) :: !samples)
    trace;
  Array.of_list (List.rev !samples)

(* Access counts and gaps span many orders of magnitude (a first
   touch has an effectively infinite gap); log-compress them so the
   scaler and the network see well-conditioned inputs. *)
let shape features =
  [| log1p features.(0); log1p features.(1); features.(2) |]

let fit t trace =
  let raw = dataset ~reuse_horizon:t.reuse_horizon ~mean_gap_ms:t.mean_gap_ms trace in
  t.features <- Array.map fst raw;
  let shaped = Array.map (fun (x, y) -> (shape x, y)) raw in
  let scaler = Scaler.fit (Array.map fst shaped) in
  let data = Array.map (fun (x, y) -> (Scaler.transform scaler x, y)) shaped in
  let model = Mlp.create ~rng:(Rng.fork t.rng) ~layers:[ 3; 12; 1 ] () in
  ignore (Mlp.train model ~rng:t.rng ~epochs:t.epochs ~batch_size:32 ~lr:0.1 data : float);
  t.model <- model;
  t.scaler <- scaler

let train ~rng ~trace ?(reuse_horizon = 64) ?(mean_gap_ms = 0.05) ?(epochs = 15) () =
  let rng = Rng.fork rng in
  let t =
    {
      rng;
      reuse_horizon;
      mean_gap_ms;
      epochs;
      model = Mlp.create ~rng:(Rng.copy rng) ~layers:[ 3; 1 ] ();
      scaler = Scaler.fit [| [| 0.; 0.; 0. |] |];
      enabled = true;
      retrains = 0;
      features = [||];
    }
  in
  fit t trace;
  t

let predict_promote t features =
  (Mlp.forward t.model (Scaler.transform t.scaler (shape features))).(0) >= 0.5

let policy t =
  {
    Gr_kernel.Mm.policy_name = "learned-tiering";
    promote =
      (fun features ->
        if t.enabled then predict_promote t features
        else Gr_kernel.Mm.promote_on_second_touch.promote features);
  }

let set_enabled t v = t.enabled <- v
let enabled t = t.enabled

let retrain t ~trace =
  t.retrains <- t.retrains + 1;
  fit t trace

let retrain_count t = t.retrains
let training_features t = t.features
