(** Versioned spec lifecycle: gated, canaried rollout for a live
    deployment — the state machine behind [grc serve].

    A spec stops being process configuration (compiled once at boot)
    and becomes a versioned object moving through a lifecycle:

    {v
    push --admit--> staged --barrier--> canarying --N clean--> active
           \                               \
            reject                          rollback
    v}

    {2 The pipeline}

    - {b Push} ({!push}): any source text, from anyone, at any time.
      Stamped with a fresh version id and a content digest
      ({!Gr_compiler.Compile.digest}).
    - {b Admission}: the static-analysis audit ({!Gr_analysis.Audit.admit})
      is the policy decision point — lint, action-machine model
      checking, fleet race analysis. Errors {e and} warnings reject
      (the [grc lint --strict] contract); the caller gets structured
      {!Gr_analysis.Diagnostic.t}s to send back to whoever pushed.
    - {b Canary}: at the next epoch barrier the admitted version is
      installed {e alongside} the active one and its policies are
      canaried onto a node subset ({!Fleet.set_canary}); the rest of
      the fleet keeps running the old version.
    - {b Verdict}: at each subsequent barrier the canary's own
      monitor stats are judged against guardrails (oscillation
      alerts, action fire rate). [canary_barriers] consecutive clean
      verdicts promote; one bad verdict rolls back.
    - {b Promote / rollback}: promotion uninstalls the old version
      {e after} the new one is already running (install-before-
      uninstall handoff: streaming-aggregate demand refcounts shared
      between versions never hit zero, so window state survives the
      swap). Rollback uninstalls only the canary's handles — the old
      version never stopped, so restoration is bit-identical by
      construction.

    Decisions happen only at epoch barriers — registered
    automatically via {!Fleet.add_barrier_hook} for fleet targets,
    or driven by {!Gr_sim.Engine.run_chunked} (or manually via
    {!barrier}) for single-deployment targets. At a barrier node
    domains are parked and the control engine is quiescent, so
    installs never race checks.

    Concurrent pushes are serialized: while a version is staged or
    canarying, further pushes are rejected with the in-flight
    version named in the reason.

    Every transition emits a [cat:"audit"] trace event into the
    audit sink (e.g. {!Gr_trace.Audit_log.append}), chained by
    span/parent so {!Gr_trace.Provenance} — and therefore
    [grc explain] — can replay the decision:
    [spec.push <- spec.admit <- rollout.canary <- rollout.verdict
    <- rollout.promote | rollout.rollback]. *)

type target = Deployment of Deployment.t | Fleet of Fleet.t

type config = {
  canary_nodes : int;  (** nodes the canary targets (clamped to n-1); default 1 *)
  canary_barriers : int;  (** consecutive clean verdicts to promote; default 3 *)
  max_fire_rate : float;  (** guardrail: canary action firings per second; default 5. *)
  admission : Gr_analysis.Audit.config;
}

val default_config : config

type status = Staged | Canarying | Active | Superseded | Rolled_back | Rejected

val status_name : status -> string

type version = {
  id : int;
  who : string;
  digest : string;  (** {!Gr_compiler.Compile.digest} of [source] *)
  source : string;
  pushed_at : Gr_util.Time_ns.t;
  mutable status : status;
  mutable handles : Gr_runtime.Engine.handle list;
      (** installed monitors; [[]] once off the engine *)
  mutable admit_span : int;  (** audit-chain anchor for rollout events *)
}

type rollout = {
  v : version;
  monitors : Gr_compiler.Monitor.t list;
  canary_ids : int list;  (** node subset; [[]] = whole target (single node) *)
  policies : string list;  (** policies the version acts on *)
  mutable started : Gr_util.Time_ns.t;
  mutable canary_span : int;
  mutable last_verdict_span : int;
  mutable clean_barriers : int;
  mutable fires_seen : int;
}

type phase =
  | Steady
  | Pending of rollout  (** admitted, installs at the next barrier *)
  | Rolling of rollout  (** canarying, judged at each barrier *)

type decision =
  | Admitted of { version : int }
  | Rejected of {
      version : int;
      reason : string;
      diagnostics : Gr_analysis.Diagnostic.t list;
    }

type t

val create :
  ?config:config -> ?audit:(Gr_trace.Event.t -> unit) -> target -> t
(** [audit] receives every control-plane decision event (default:
    dropped). For a [Fleet] target the barrier hook is registered
    here; single-deployment callers drive {!barrier} themselves
    (normally via {!Gr_sim.Engine.run_chunked}'s [at_barrier]). *)

val boot : t -> who:string -> string -> (Gr_runtime.Engine.handle list, Deployment.error) result
(** Install version 1 directly, no canary window — there is nothing
    to fall back to yet. Admission gates {e pushes}; the boot spec is
    the operator's own file, vetted like any [grc run] spec. *)

val push : t -> who:string -> string -> decision
(** Admission-check [source] now; on admit, stage it for install at
    the next barrier. Rejected when another rollout is in flight. *)

val barrier : t -> Gr_util.Time_ns.t -> unit
(** The promotion decision point. Installs staged versions, judges
    canarying ones. Fleet targets call this automatically from their
    epoch barrier; exposed for single-deployment targets and tests. *)

(** {2 Introspection} *)

val active : t -> version option
val phase : t -> phase
val phase_name : t -> string
val history : t -> version list
(** All versions ever pushed, oldest first. *)

val find_version : t -> int -> version option
val version_count : t -> int
val promotions : t -> int
val rollbacks : t -> int
val barriers_seen : t -> int
val pp_status : Format.formatter -> t -> unit
