open Gr_util

let src = Logs.Src.create "guardrails.fleet" ~doc:"Guardrail fleet deployment"

module Log = (val Logs.src_log src : Logs.LOG)

module Store = Gr_runtime.Feature_store

type stats = { mutable replaces : int; mutable restores : int; mutable retrains : int;
               mutable pushes : int }

(* A cross-node effect captured on a node domain mid-epoch and applied
   by the control deployment at the next barrier (docs/PARALLEL.md).
   [its] is the node's (skew-adjusted) clock at capture. *)
type intent_kind =
  | Global_save of { key : string; value : float }
  | Hook_fire of { hook : string; args : (string * float) list }

type intent = { its : Time_ns.t; kind : intent_kind }

(* Sequential: one shared event heap drives control and every node —
   today's bit-exact path. Parallel: each node kernel owns its engine
   and advances on a pool of OCaml domains in lock-step epochs; the
   per-node intent buffers are each written only by their node's
   domain mid-epoch and drained only at the barrier. *)
type runtime =
  | Sequential
  | Parallel of { domains : int; epoch : Time_ns.t; intents : intent Vec.t array }

type t = {
  sim : Gr_sim.Engine.t;  (* the fleet clock: shared heap, or the control engine *)
  control : Deployment.t;  (* fleet-level kernel/store/engine; store = global tier *)
  nodes : Node.t array;
  runtime : runtime;
  canaries : (string, int list) Hashtbl.t;  (* policy -> node ids REPLACE targets *)
  forwarded_hooks : (string, unit) Hashtbl.t;
  proxied_policies : (string, unit) Hashtbl.t;
  stats : stats;
  barrier_hooks : (Time_ns.t -> unit) Vec.t;
      (* persistent per-epoch-boundary callbacks (the spec lifecycle's
         promotion decision point); registration order *)
}

let default_epoch = Time_ns.ms 50

let create_sequential ~nodes:n ~seed ?config ?store_capacity ~tracing ?engine () =
  let sim = Gr_sim.Engine.create () in
  let control_kernel = Gr_kernel.Kernel.create_on ~engine:sim ~seed in
  (* The control deployment claims the sim trace channel (the clock is
     fleet property); nodes attach hooks-only. *)
  let control =
    Deployment.create ~kernel:control_kernel ?config ?store_capacity ~tracing ?engine ()
  in
  let nodes =
    Array.init n (fun id ->
        let kernel = Gr_kernel.Kernel.create_on ~engine:sim ~seed:(seed + id + 1) in
        Node.create ~kernel ?config ?store_capacity ~tracing ~attach_sim:false ~node_id:id
          ?engine ())
  in
  (* One span context for the whole fleet: node tracers allocate ids
     from the control tracer's counter, so a cross-node cascade
     (global save -> node ON_CHANGE check -> fleet action) is a single
     causal tree no matter which tracer recorded each edge. *)
  Array.iter
    (fun node ->
      Gr_trace.Tracer.share_ctx ~src:(Deployment.tracer control) (Node.tracer node))
    nodes;
  (sim, control, nodes, Sequential)

let create_parallel ~nodes:n ~seed ~domains ~epoch ?config ?store_capacity ~tracing ?engine
    () =
  (* Every kernel owns its engine: node i's seed is the same
     [seed + id + 1] the sequential path uses, so each node replays
     the identical event stream either way — that is what makes the
     two modes comparable at all. Span ids can't come from a shared
     counter across domains, so each tracer gets a disjoint arithmetic
     channel instead: control allocates ids = 0 mod (n+1), node i ids
     = i+1 mod (n+1), all reproducible with no coordination. *)
  let control_kernel = Gr_kernel.Kernel.create ~seed in
  let control =
    Deployment.create ~kernel:control_kernel ?config ?store_capacity ~tracing ?engine ()
  in
  let stride = n + 1 in
  Gr_trace.Tracer.set_span_channel (Deployment.tracer control) ~offset:0 ~stride;
  let intents = Array.init n (fun _ -> Vec.create ()) in
  let nodes =
    Array.init n (fun id ->
        let kernel = Gr_kernel.Kernel.create ~seed:(seed + id + 1) in
        let node = Node.create ~kernel ?config ?store_capacity ~tracing ~node_id:id ?engine () in
        Gr_trace.Tracer.set_span_channel (Node.tracer node) ~offset:(id + 1) ~stride;
        node)
  in
  (* A node's GLOBAL save would write the control store from the
     node's domain mid-epoch; intercept it into the node's intent
     buffer instead, stamped with the node clock so the barrier can
     replay it at its original time. *)
  Array.iteri
    (fun id node ->
      let kernel = Node.kernel node in
      Store.set_global_publish (Node.store node)
        (Some
           (fun key value ->
             Vec.push intents.(id)
               { its = Gr_kernel.Kernel.now kernel; kind = Global_save { key; value } })))
    nodes;
  ((Deployment.kernel control).Gr_kernel.Kernel.engine, control, nodes,
   Parallel { domains; epoch; intents })

let create ~nodes:n ~seed ?config ?store_capacity ?(tracing = false) ?(domains = 1)
    ?(epoch = default_epoch) ?engine () =
  if n < 1 then invalid_arg "Fleet.create: a fleet has at least one node";
  if Time_ns.compare epoch Time_ns.zero <= 0 then
    invalid_arg "Fleet.create: epoch must be positive";
  (* More domains than nodes buys nothing: one task per node per
     epoch. One (or fewer) means no parallelism at all, which is
     exactly the sequential path — keep it bit-identical by taking
     that path verbatim. *)
  let domains = max 1 (min domains n) in
  let sim, control, nodes, runtime =
    if domains = 1 then
      create_sequential ~nodes:n ~seed ?config ?store_capacity ~tracing ?engine ()
    else create_parallel ~nodes:n ~seed ~domains ~epoch ?config ?store_capacity ~tracing ?engine ()
  in
  let global = Deployment.store control in
  Store.set_shards global (Array.map Node.store nodes);
  Array.iter (fun node -> Store.set_global_tier (Node.store node) global) nodes;
  (* Replay global-tier writes into every node engine so a node's
     ON_CHANGE(GLOBAL(key)) fires no matter which member saved the
     key. The control engine already subscribes to its own store. In
     parallel mode this subscriber only ever runs in the barrier's
     control phase (node global saves arrive as intents), when the
     node domains are parked. *)
  Store.on_save global (fun key _value ->
      if Gr_dsl.Ast.is_global_key key then
        Array.iter
          (fun node -> Gr_runtime.Engine.dispatch_on_change (Node.engine node) key)
          nodes);
  {
    sim;
    control;
    nodes;
    runtime;
    canaries = Hashtbl.create 8;
    forwarded_hooks = Hashtbl.create 8;
    proxied_policies = Hashtbl.create 8;
    stats = { replaces = 0; restores = 0; retrains = 0; pushes = 0 };
    barrier_hooks = Vec.create ();
  }

let sim t = t.sim
let control t = t.control
let store t = Deployment.store t.control
let engine t = Deployment.engine t.control
let tracer t = Deployment.tracer t.control
let nodes t = Array.copy t.nodes
let node_count t = Array.length t.nodes
let domains t = match t.runtime with Sequential -> 1 | Parallel p -> p.domains
let epoch t = match t.runtime with Sequential -> default_epoch | Parallel p -> p.epoch

let node t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Fleet.node: no such node";
  t.nodes.(id)

let set_canary t ~policy ids =
  List.iter
    (fun id ->
      if id < 0 || id >= Array.length t.nodes then
        invalid_arg "Fleet.set_canary: no such node")
    ids;
  Hashtbl.replace t.canaries policy ids

let clear_canary t ~policy = Hashtbl.remove t.canaries policy
let canary t ~policy = Hashtbl.find_opt t.canaries policy

let save_global t key value =
  Store.save (store t) (Gr_dsl.Ast.global_key key) value

let load_global t key = Store.load (store t) (Gr_dsl.Ast.global_key key)

(* Barrier drain: buffered intents are merged across nodes into
   (timestamp, node id, node-local order) order — node-local order is
   the node's span-allocation order, so the sort key is effectively
   (time, span, node) — and re-scheduled onto the control engine at
   their original timestamps. The control engine then runs to the
   boundary, interleaving replayed intents with its own timers in
   plain (time, seq) order, which is what makes the result independent
   of both the domain count and the pool's scheduling. *)
let drain_intents t intents =
  let batch = ref [] in
  Array.iteri
    (fun node vec ->
      let idx = ref 0 in
      Vec.iter
        (fun it ->
          batch := (it.its, node, !idx, it.kind) :: !batch;
          incr idx)
        vec;
      Vec.clear vec)
    intents;
  let batch =
    List.sort
      (fun (ta, na, ia, _) (tb, nb, ib, _) -> compare (ta, na, ia) (tb, nb, ib))
      !batch
  in
  let control_hooks = (Deployment.kernel t.control).Gr_kernel.Kernel.hooks in
  let global = Deployment.store t.control in
  List.iter
    (fun (its, node_id, _, kind) ->
      (* A skewed node clock can stamp an intent ahead of the epoch —
         it just stays queued for a later barrier. Behind the control
         clock is impossible mid-run, but clamp instead of raising so
         a pathological injector can't abort the fleet. *)
      let at = Time_ns.max its (Gr_sim.Engine.now t.sim) in
      ignore
        (Gr_sim.Engine.schedule_at t.sim at (fun _ ->
             match kind with
             | Global_save { key; value } -> Store.save global key value
             | Hook_fire { hook; args } ->
               Gr_kernel.Hooks.fire control_hooks hook
                 (("node", float_of_int node_id) :: args))
          : Gr_sim.Engine.handle))
    batch

let add_barrier_hook t hook = Vec.push t.barrier_hooks hook
let fire_barrier_hooks t boundary = Vec.iter (fun hook -> hook boundary) t.barrier_hooks

let run_epochs ?(on_barrier = fun (_ : Time_ns.t) -> ()) t limit =
  match t.runtime with
  | Sequential when Vec.is_empty t.barrier_hooks ->
    Gr_sim.Engine.run_until t.sim limit;
    on_barrier limit
  | Sequential ->
    (* Barrier hooks need boundaries to fire at, so a sequential fleet
       steps in epoch-sized chunks. run_until fires every event <= the
       boundary before clamping the clock, so the event stream — and
       its trace — is byte-identical to the historical one-shot path;
       the hooks are pure decision points between events. *)
    Gr_sim.Engine.run_chunked t.sim ~epoch:default_epoch ~limit
      ~at_barrier:(fire_barrier_hooks t);
    on_barrier limit
  | Parallel { domains; epoch; intents } ->
    let node_engines =
      Array.map (fun node -> (Deployment.kernel node).Gr_kernel.Kernel.engine) t.nodes
    in
    (* Control events stamped exactly at the start time — typically
       TIMER(0) ticks armed at installation — precede every node event
       of the first epoch in the sequential order, so run them before
       the first node phase; each later boundary's control phase
       already runs boundary-stamped events after that epoch's node
       phase, which is the sequential order for them too. *)
    Gr_sim.Engine.run_until t.sim (Gr_sim.Engine.now t.sim);
    Gr_sim.Pool.with_pool ~domains (fun pool ->
        Gr_sim.Engine.run_epochs ~pool ~epoch ~limit
          ~at_barrier:(fun boundary ->
            drain_intents t intents;
            Gr_sim.Engine.run_until t.sim boundary;
            (* Hooks (lifecycle decisions) run before on_barrier
               (invariant checks) so checkers observe post-decision
               state at the same boundary. *)
            fire_barrier_hooks t boundary;
            on_barrier boundary)
          node_engines)

let run_until t limit = run_epochs t limit

let replaces t = t.stats.replaces
let restores t = t.stats.restores
let retrains t = t.stats.retrains
let model_pushes t = t.stats.pushes

(* Fleet action proxies.

   A fleet monitor's REPLACE/RESTORE/RETRAIN names a policy that lives
   in the node kernels' registries, not the control kernel's. Install
   registers a proxy under the control kernel that fans out:
   - REPLACE broadcasts to every node, or only to the policy's canary
     subset when one is set;
   - RESTORE always broadcasts (healing is never canaried);
   - RETRAIN runs once, on the lowest-id node that owns the policy,
     and the refreshed model is then pushed to every other owner —
     the paper's train-once/deploy-everywhere fleet shape.

   Proxies always execute on the control engine (monitor actions run
   there), so in parallel mode they mutate node policy state only
   while the node domains are parked at a barrier. *)

let node_controls node name =
  Gr_kernel.Policy_slot.Registry.find (Node.kernel node).Gr_kernel.Kernel.registry name

let fleet_event t name args =
  Gr_trace.Tracer.instant (tracer t) ~cat:"fleet" ~args name

let on_policy_nodes t name targets f =
  Array.iteri
    (fun id node ->
      let keep = match targets with None -> true | Some ids -> List.mem id ids in
      if keep then
        match node_controls node name with
        | Some controls -> f id controls
        | None ->
          Log.warn (fun m ->
              m "fleet action for policy %s: node %d has no such policy" name id))
    t.nodes

let proxy_replace t name () =
  let targets = Hashtbl.find_opt t.canaries name in
  (match targets with
  | Some ids ->
    Log.info (fun m ->
        m "fleet REPLACE %s canaried to nodes [%s]" name
          (String.concat ";" (List.map string_of_int ids)))
  | None -> ());
  on_policy_nodes t name targets (fun id controls ->
      t.stats.replaces <- t.stats.replaces + 1;
      fleet_event t "fleet.replace"
        [ ("policy", Gr_trace.Event.Str name); ("target", Int id) ];
      controls.Gr_kernel.Policy_slot.Registry.replace ())

let proxy_restore t name () =
  on_policy_nodes t name None (fun id controls ->
      t.stats.restores <- t.stats.restores + 1;
      fleet_event t "fleet.restore"
        [ ("policy", Gr_trace.Event.Str name); ("target", Int id) ];
      controls.Gr_kernel.Policy_slot.Registry.restore ())

let proxy_retrain t name () =
  let owners =
    List.filter_map
      (fun id ->
        Option.map (fun c -> (id, c)) (node_controls t.nodes.(id) name))
      (List.init (Array.length t.nodes) Fun.id)
  in
  match owners with
  | [] -> Log.warn (fun m -> m "fleet RETRAIN %s: no node owns this policy" name)
  | (trainer, controls) :: others ->
    t.stats.retrains <- t.stats.retrains + 1;
    fleet_event t "fleet.retrain"
      [ ("policy", Gr_trace.Event.Str name); ("trainer", Int trainer) ];
    controls.Gr_kernel.Policy_slot.Registry.retrain ();
    List.iter
      (fun (id, _) ->
        t.stats.pushes <- t.stats.pushes + 1;
        fleet_event t "fleet.model_push"
          [ ("policy", Gr_trace.Event.Str name); ("target", Int id) ])
      others

let proxy_policy t name =
  if not (Hashtbl.mem t.proxied_policies name) then begin
    Hashtbl.replace t.proxied_policies name ();
    Gr_kernel.Policy_slot.Registry.register
      (Deployment.kernel t.control).Gr_kernel.Kernel.registry name
      {
        replace = proxy_replace t name;
        restore = proxy_restore t name;
        retrain = proxy_retrain t name;
      }
  end

(* A fleet monitor's FUNCTION trigger listens on the control kernel's
   hook table; forward each node's firings of that hook (tagging the
   origin) so one fleet monitor observes every member's call sites.
   Sequentially that forward is immediate; in parallel mode a node's
   firing happens on its own domain mid-epoch, so it is buffered as an
   intent and replayed at the barrier instead. *)
let forward_hook t hook =
  if not (Hashtbl.mem t.forwarded_hooks hook) then begin
    Hashtbl.replace t.forwarded_hooks hook ();
    match t.runtime with
    | Sequential ->
      let control_hooks = (Deployment.kernel t.control).Gr_kernel.Kernel.hooks in
      Array.iteri
        (fun id node ->
          let id = float_of_int id in
          ignore
            (Gr_kernel.Hooks.subscribe (Node.kernel node).Gr_kernel.Kernel.hooks hook
               (fun args -> Gr_kernel.Hooks.fire control_hooks hook (("node", id) :: args))
              : Gr_kernel.Hooks.subscription))
        t.nodes
    | Parallel { intents; _ } ->
      Array.iteri
        (fun id node ->
          let kernel = Node.kernel node in
          ignore
            (Gr_kernel.Hooks.subscribe kernel.Gr_kernel.Kernel.hooks hook (fun args ->
                 Vec.push intents.(id)
                   { its = Gr_kernel.Kernel.now kernel; kind = Hook_fire { hook; args } })
              : Gr_kernel.Hooks.subscription))
        t.nodes
  end

let wire_monitor t (monitor : Gr_compiler.Monitor.t) =
  List.iter
    (function
      | Gr_compiler.Monitor.Function hook -> forward_hook t hook
      | Timer _ | On_change _ -> ())
    monitor.triggers;
  List.iter
    (function
      | Gr_compiler.Monitor.Replace name
      | Restore name
      | Retrain name ->
        proxy_policy t name
      | Report _ | Deprioritize _ | Kill _ | Save _ -> ())
    monitor.actions

let install_monitor t monitor =
  wire_monitor t monitor;
  Deployment.install_monitor t.control monitor

let install_monitors ?version t monitors =
  (* Wire before installing so triggers are live the moment the engine
     arms them; wiring is idempotent so rollback on a failed install
     leaves only inert forwarders. *)
  List.iter (wire_monitor t) monitors;
  Deployment.install_monitors ?version t.control monitors

let uninstall t handle = Deployment.uninstall t.control handle

let install_source t src =
  match Gr_compiler.Compile.source src with
  | Error e -> Error (Deployment.Compile e)
  | Ok monitors ->
    (* Wire before installing so triggers are live the moment the
       engine arms them; wiring is idempotent so rollback on a failed
       install leaves only inert forwarders. *)
    List.iter (wire_monitor t) monitors;
    let rec go installed = function
      | [] -> Ok (List.rev installed)
      | m :: rest -> (
        match Deployment.install_monitor t.control m with
        | Ok handle -> go (handle :: installed) rest
        | Error e ->
          List.iter (Deployment.uninstall t.control) installed;
          Error e)
    in
    go [] monitors

let install_source_exn t src =
  match install_source t src with
  | Ok handles -> handles
  | Error e -> failwith (Format.asprintf "%a" Deployment.pp_error e)

let violations t = Gr_runtime.Engine.violations (Deployment.engine t.control)

let events_fired t =
  match t.runtime with
  | Sequential -> Gr_sim.Engine.events_fired t.sim
  | Parallel _ ->
    Array.fold_left
      (fun acc node ->
        acc + Gr_sim.Engine.events_fired (Deployment.kernel node).Gr_kernel.Kernel.engine)
      (Gr_sim.Engine.events_fired t.sim)
      t.nodes
