let src = Logs.Src.create "guardrails.fleet" ~doc:"Guardrail fleet deployment"

module Log = (val Logs.src_log src : Logs.LOG)

module Store = Gr_runtime.Feature_store

type stats = { mutable replaces : int; mutable restores : int; mutable retrains : int;
               mutable pushes : int }

type t = {
  sim : Gr_sim.Engine.t;
  control : Deployment.t;  (* fleet-level kernel/store/engine; store = global tier *)
  nodes : Node.t array;
  canaries : (string, int list) Hashtbl.t;  (* policy -> node ids REPLACE targets *)
  forwarded_hooks : (string, unit) Hashtbl.t;
  proxied_policies : (string, unit) Hashtbl.t;
  stats : stats;
}

let create ~nodes:n ~seed ?config ?store_capacity ?(tracing = false) () =
  if n < 1 then invalid_arg "Fleet.create: a fleet has at least one node";
  let sim = Gr_sim.Engine.create () in
  let control_kernel = Gr_kernel.Kernel.create_on ~engine:sim ~seed in
  (* The control deployment claims the sim trace channel (the clock is
     fleet property); nodes attach hooks-only. *)
  let control = Deployment.create ~kernel:control_kernel ?config ?store_capacity ~tracing () in
  let nodes =
    Array.init n (fun id ->
        let kernel = Gr_kernel.Kernel.create_on ~engine:sim ~seed:(seed + id + 1) in
        Node.create ~kernel ?config ?store_capacity ~tracing ~attach_sim:false ~node_id:id ())
  in
  (* One span context for the whole fleet: node tracers allocate ids
     from the control tracer's counter, so a cross-node cascade
     (global save -> node ON_CHANGE check -> fleet action) is a single
     causal tree no matter which tracer recorded each edge. *)
  Array.iter
    (fun node ->
      Gr_trace.Tracer.share_ctx ~src:(Deployment.tracer control) (Node.tracer node))
    nodes;
  let global = Deployment.store control in
  Store.set_shards global (Array.map Node.store nodes);
  Array.iter (fun node -> Store.set_global_tier (Node.store node) global) nodes;
  (* Replay global-tier writes into every node engine so a node's
     ON_CHANGE(GLOBAL(key)) fires no matter which member saved the
     key. The control engine already subscribes to its own store. *)
  Store.on_save global (fun key _value ->
      if Gr_dsl.Ast.is_global_key key then
        Array.iter
          (fun node -> Gr_runtime.Engine.dispatch_on_change (Node.engine node) key)
          nodes);
  {
    sim;
    control;
    nodes;
    canaries = Hashtbl.create 8;
    forwarded_hooks = Hashtbl.create 8;
    proxied_policies = Hashtbl.create 8;
    stats = { replaces = 0; restores = 0; retrains = 0; pushes = 0 };
  }

let sim t = t.sim
let control t = t.control
let store t = Deployment.store t.control
let engine t = Deployment.engine t.control
let tracer t = Deployment.tracer t.control
let nodes t = Array.copy t.nodes
let node_count t = Array.length t.nodes

let node t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Fleet.node: no such node";
  t.nodes.(id)

let set_canary t ~policy ids =
  List.iter
    (fun id ->
      if id < 0 || id >= Array.length t.nodes then
        invalid_arg "Fleet.set_canary: no such node")
    ids;
  Hashtbl.replace t.canaries policy ids

let clear_canary t ~policy = Hashtbl.remove t.canaries policy
let canary t ~policy = Hashtbl.find_opt t.canaries policy

let save_global t key value =
  Store.save (store t) (Gr_dsl.Ast.global_key key) value

let load_global t key = Store.load (store t) (Gr_dsl.Ast.global_key key)
let run_until t limit = Gr_sim.Engine.run_until t.sim limit

let replaces t = t.stats.replaces
let restores t = t.stats.restores
let retrains t = t.stats.retrains
let model_pushes t = t.stats.pushes

(* Fleet action proxies.

   A fleet monitor's REPLACE/RESTORE/RETRAIN names a policy that lives
   in the node kernels' registries, not the control kernel's. Install
   registers a proxy under the control kernel that fans out:
   - REPLACE broadcasts to every node, or only to the policy's canary
     subset when one is set;
   - RESTORE always broadcasts (healing is never canaried);
   - RETRAIN runs once, on the lowest-id node that owns the policy,
     and the refreshed model is then pushed to every other owner —
     the paper's train-once/deploy-everywhere fleet shape. *)

let node_controls node name =
  Gr_kernel.Policy_slot.Registry.find (Node.kernel node).Gr_kernel.Kernel.registry name

let fleet_event t name args =
  Gr_trace.Tracer.instant (tracer t) ~cat:"fleet" ~args name

let on_policy_nodes t name targets f =
  Array.iteri
    (fun id node ->
      let keep = match targets with None -> true | Some ids -> List.mem id ids in
      if keep then
        match node_controls node name with
        | Some controls -> f id controls
        | None ->
          Log.warn (fun m ->
              m "fleet action for policy %s: node %d has no such policy" name id))
    t.nodes

let proxy_replace t name () =
  let targets = Hashtbl.find_opt t.canaries name in
  (match targets with
  | Some ids ->
    Log.info (fun m ->
        m "fleet REPLACE %s canaried to nodes [%s]" name
          (String.concat ";" (List.map string_of_int ids)))
  | None -> ());
  on_policy_nodes t name targets (fun id controls ->
      t.stats.replaces <- t.stats.replaces + 1;
      fleet_event t "fleet.replace"
        [ ("policy", Gr_trace.Event.Str name); ("target", Int id) ];
      controls.Gr_kernel.Policy_slot.Registry.replace ())

let proxy_restore t name () =
  on_policy_nodes t name None (fun id controls ->
      t.stats.restores <- t.stats.restores + 1;
      fleet_event t "fleet.restore"
        [ ("policy", Gr_trace.Event.Str name); ("target", Int id) ];
      controls.Gr_kernel.Policy_slot.Registry.restore ())

let proxy_retrain t name () =
  let owners =
    List.filter_map
      (fun id ->
        Option.map (fun c -> (id, c)) (node_controls t.nodes.(id) name))
      (List.init (Array.length t.nodes) Fun.id)
  in
  match owners with
  | [] -> Log.warn (fun m -> m "fleet RETRAIN %s: no node owns this policy" name)
  | (trainer, controls) :: others ->
    t.stats.retrains <- t.stats.retrains + 1;
    fleet_event t "fleet.retrain"
      [ ("policy", Gr_trace.Event.Str name); ("trainer", Int trainer) ];
    controls.Gr_kernel.Policy_slot.Registry.retrain ();
    List.iter
      (fun (id, _) ->
        t.stats.pushes <- t.stats.pushes + 1;
        fleet_event t "fleet.model_push"
          [ ("policy", Gr_trace.Event.Str name); ("target", Int id) ])
      others

let proxy_policy t name =
  if not (Hashtbl.mem t.proxied_policies name) then begin
    Hashtbl.replace t.proxied_policies name ();
    Gr_kernel.Policy_slot.Registry.register
      (Deployment.kernel t.control).Gr_kernel.Kernel.registry name
      {
        replace = proxy_replace t name;
        restore = proxy_restore t name;
        retrain = proxy_retrain t name;
      }
  end

(* A fleet monitor's FUNCTION trigger listens on the control kernel's
   hook table; forward each node's firings of that hook (tagging the
   origin) so one fleet monitor observes every member's call sites. *)
let forward_hook t hook =
  if not (Hashtbl.mem t.forwarded_hooks hook) then begin
    Hashtbl.replace t.forwarded_hooks hook ();
    let control_hooks = (Deployment.kernel t.control).Gr_kernel.Kernel.hooks in
    Array.iteri
      (fun id node ->
        let id = float_of_int id in
        ignore
          (Gr_kernel.Hooks.subscribe (Node.kernel node).Gr_kernel.Kernel.hooks hook
             (fun args -> Gr_kernel.Hooks.fire control_hooks hook (("node", id) :: args))
            : Gr_kernel.Hooks.subscription))
      t.nodes
  end

let wire_monitor t (monitor : Gr_compiler.Monitor.t) =
  List.iter
    (function
      | Gr_compiler.Monitor.Function hook -> forward_hook t hook
      | Timer _ | On_change _ -> ())
    monitor.triggers;
  List.iter
    (function
      | Gr_compiler.Monitor.Replace name
      | Restore name
      | Retrain name ->
        proxy_policy t name
      | Report _ | Deprioritize _ | Kill _ | Save _ -> ())
    monitor.actions

let install_monitor t monitor =
  wire_monitor t monitor;
  Deployment.install_monitor t.control monitor

let install_source t src =
  match Gr_compiler.Compile.source src with
  | Error e -> Error (Deployment.Compile e)
  | Ok monitors ->
    (* Wire before installing so triggers are live the moment the
       engine arms them; wiring is idempotent so rollback on a failed
       install leaves only inert forwarders. *)
    List.iter (wire_monitor t) monitors;
    let rec go installed = function
      | [] -> Ok (List.rev installed)
      | m :: rest -> (
        match Deployment.install_monitor t.control m with
        | Ok handle -> go (handle :: installed) rest
        | Error e ->
          List.iter (Deployment.uninstall t.control) installed;
          Error e)
    in
    go [] monitors

let install_source_exn t src =
  match install_source t src with
  | Ok handles -> handles
  | Error e -> failwith (Format.asprintf "%a" Deployment.pp_error e)

let violations t = Gr_runtime.Engine.violations (Deployment.engine t.control)
