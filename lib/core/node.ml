(* One fleet member: exactly the single-machine deployment record.
   The split is nominal — [Node] is the per-machine half of what used
   to be the only deployment shape, and [Deployment] remains as the
   standalone (fleet-of-one) alias — so existing single-node code and
   fleet code share every code path. *)
include Deployment
