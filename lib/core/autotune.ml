open Gr_util

type t = {
  deployment : Deployment.t;
  key : string;
  quantile : float;
  slack : float;
  make_source : hi:float -> string;
  mutable bound : float option;
  mutable installed : Gr_runtime.Engine.handle option;
  mutable tightenings : int;
}

let observed_bound t ~window_ns =
  let store = Deployment.store t.deployment in
  let n = Gr_runtime.Feature_store.samples_in_window store ~key:t.key ~window_ns in
  if n < 10 then None
  else begin
    let q =
      Gr_runtime.Feature_store.aggregate store ~key:t.key ~fn:Gr_dsl.Ast.Quantile ~window_ns
        ~param:t.quantile
    in
    Some (t.slack *. q)
  end

let install_with_bound t hi =
  match Deployment.install_source t.deployment (t.make_source ~hi) with
  | Ok handles ->
    (* Swap atomically: arm the new monitor, then retire the old. *)
    let old = t.installed in
    t.installed <- (match handles with h :: _ -> Some h | [] -> None);
    (match old with Some h -> Deployment.uninstall t.deployment h | None -> ());
    t.bound <- Some hi;
    true
  | Error _ -> false

let recalibrate t ~window_ns =
  match observed_bound t ~window_ns with
  | None -> ()
  | Some candidate -> (
    match t.bound with
    | None -> ignore (install_with_bound t candidate : bool)
    | Some current when candidate < current ->
      (* Only ever tighten: a degraded phase must not relax the
         property it is supposed to be caught by. *)
      if install_with_bound t candidate then t.tightenings <- t.tightenings + 1
    | Some _ -> ())

let deploy deployment ~key ?(quantile = 0.99) ?(slack = 2.0) ?(warmup = Time_ns.sec 1)
    ?(tighten_every = Time_ns.sec 2) ~make_source () =
  let t =
    {
      deployment;
      key;
      quantile;
      slack;
      make_source;
      bound = None;
      installed = None;
      tightenings = 0;
    }
  in
  let kernel = Deployment.kernel deployment in
  ignore
    (Gr_sim.Engine.schedule_after kernel.engine warmup (fun _ ->
         recalibrate t ~window_ns:(float_of_int warmup))
      : Gr_sim.Engine.handle);
  ignore
    (Gr_sim.Engine.every kernel.engine
       ~start:(Time_ns.add (Gr_sim.Engine.now kernel.engine) (Time_ns.add warmup tighten_every))
       ~interval:tighten_every
       (fun _ -> recalibrate t ~window_ns:(float_of_int tighten_every))
      : Gr_sim.Engine.handle);
  t

let current_bound t = t.bound
let tightenings t = t.tightenings
let handle t = t.installed
