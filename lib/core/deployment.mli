(** A guardrail deployment: one kernel, one feature store, one runtime
    engine, plus the instrumentation glue that connects them.

    This is the high-level entry point a kernel developer uses:

    {[
      let kernel = Gr_kernel.Kernel.create ~seed:42 in
      let d = Deployment.create ~kernel () in
      Deployment.forward_hook_arg d ~hook:"blk:io_complete"
        ~arg:"false_submit" ~key:"false_submit";
      Deployment.derive_window_avg d ~src:"false_submit"
        ~dst:"false_submit_rate" ~window:(Time_ns.sec 10)
        ~every:(Time_ns.ms 100);
      let handles = Deployment.install_source_exn d listing2 in
      ...
    ]}

    Guardrails are installed incrementally (§3.3): each
    [install_source] call adds monitors next to whatever is already
    running, and the deployment re-runs feedback-loop detection over
    the full installed set after each addition. *)

type t

val create :
  kernel:Gr_kernel.Kernel.t ->
  ?config:Gr_runtime.Engine.config ->
  ?store_capacity:int ->
  ?tracing:bool ->
  ?trace_capacity:int ->
  ?attach_sim:bool ->
  ?node_id:int ->
  ?engine:Gr_runtime.Vm.tier ->
  unit ->
  t
(** [tracing] (default [false]) turns the deployment's trace-event
    channel on: sim-event dispatch, hook entry/exit, rule checks,
    action firings and store traffic all land in a bounded
    ring-buffer sink of [trace_capacity] events (default 65536).
    Metrics and the REPORT channel run regardless.

    Creation attaches the deployment's tracer to the kernel's hook
    table, and — when [attach_sim] is [true], the default — to the
    sim engine's dispatch channel. Attaching over a tracer that
    belongs to another deployment logs a takeover warning instead of
    rewiring silently; use {!detach_tracer} on the old deployment
    first to hand over cleanly, and {!attach_tracer} to take the
    channels back later. Fleet nodes pass [~attach_sim:false] because
    the sim engine (the shared fleet clock) is not theirs to claim.

    [node_id] tags every trace event, report and metrics export this
    deployment produces with the owning fleet node's id; single-node
    deployments omit it and emit exactly what they always did.

    [engine] picks the default execution tier monitors are
    specialized onto at install (default: the closure template JIT;
    all tiers produce bit-identical results — see {!Gr_runtime.Vm}). *)

val attach_tracer : t -> unit
(** (Re)claim the kernel's hook — and, unless the deployment was
    created with [~attach_sim:false], sim — trace channels for this
    deployment's tracer. Logs a warning per channel that currently
    carries a different deployment's tracer. Idempotent. *)

val detach_tracer : t -> unit
(** Release any kernel trace channel currently carrying {e this}
    deployment's tracer; channels owned by other tracers are left
    untouched. Idempotent. *)

val owns_tracer : t -> bool
(** [true] iff every channel this deployment attaches to (hooks, plus
    the sim engine unless created with [~attach_sim:false]) currently
    carries this deployment's tracer — i.e. its trace output is not
    being stolen by a later deployment on the same kernel. *)

val kernel : t -> Gr_kernel.Kernel.t
val store : t -> Gr_runtime.Feature_store.t
val engine : t -> Gr_runtime.Engine.t

val node_id : t -> int option
(** The fleet node id this deployment was created with, if any. *)

val tracer : t -> Gr_trace.Tracer.t
val metrics : t -> Gr_trace.Metrics.t
(** Per-monitor telemetry (check counts, latency quantiles,
    cumulative VM cost). *)

val set_tracing : t -> bool -> unit
(** Enable/disable trace-event emission mid-run. *)

val write_chrome_trace : t -> path:string -> unit
(** Export everything traced so far (events + reports) as a Chrome
    [trace_event] JSON file; open at [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

type error =
  | Compile of Gr_compiler.Compile.error
  | Install of string * string list  (** monitor name, verifier findings *)

val pp_error : Format.formatter -> error -> unit

val install_source : t -> string -> (Gr_runtime.Engine.handle list, error) result
(** Compiles and installs every guardrail in the source text. On
    error nothing from this source stays installed. *)

val install_source_exn : t -> string -> Gr_runtime.Engine.handle list

val install_monitor :
  ?version:int -> t -> Gr_compiler.Monitor.t -> (Gr_runtime.Engine.handle, error) result
(** [version] stamps the monitor with the spec version it came from
    (see {!Gr_runtime.Engine.install}). *)

val install_monitors :
  ?version:int ->
  t ->
  Gr_compiler.Monitor.t list ->
  (Gr_runtime.Engine.handle list, error) result
(** Installs an already-compiled monitor set atomically: on any
    failure everything from this set is uninstalled again (demand
    refcounts released) before the error returns. The versioned
    lifecycle installs each spec version through this, next to
    whatever other versions are still running. *)

val installed_monitors : t -> Gr_compiler.Monitor.t list

val uninstall : t -> Gr_runtime.Engine.handle -> unit
(** Disarms the monitor and removes it from {!installed_monitors};
    paired with {!install_source} this is runtime guardrail
    replacement without a reboot (§6). *)

val feedback_cycles : t -> string list list
(** Feedback-loop (SAVE/LOAD) cycles across everything installed —
    re-checked after each install; §6's oscillation hazard, statically. *)

(** {1 Instrumentation glue}

    Monitors only see the feature store; these helpers pump kernel
    signals into it. *)

val save : t -> string -> float -> unit

val forward_hook_arg : t -> hook:string -> arg:string -> ?key:string -> unit -> unit
(** Every time [hook] fires, saves its [arg] scalar under [key]
    (default: the arg name). Missing args are ignored. *)

val derive_window_avg :
  t ->
  src:string ->
  dst:string ->
  window:Gr_util.Time_ns.t ->
  every:Gr_util.Time_ns.t ->
  unit
(** Periodically saves the windowed average of [src] as [dst] — e.g.
    deriving [false_submit_rate] from per-I/O [false_submit] markers,
    the paper's Listing 2 setup. *)

val derive_periodic : t -> key:string -> every:Gr_util.Time_ns.t -> (unit -> float) -> unit
(** Periodically samples an arbitrary kernel metric into the store
    (e.g. the scheduler's max runnable wait). *)

val bind_control_key : t -> key:string -> (float -> unit) -> unit
(** Invokes the callback whenever [key] is saved — how a policy
    watches a control key like [ml_enabled] that a SAVE action
    flips. The callback also runs immediately if the key already has
    a value. *)

val wire_scheduler : t -> Gr_kernel.Sched.t -> unit
(** Routes DEPRIORITIZE/KILL actions to the scheduler and samples
    starvation/fairness/utilisation metrics ([sched_max_wait_ms],
    [sched_jain], [sched_wasted_cores]) every 10ms. *)
