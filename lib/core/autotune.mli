(** Automatic threshold calibration and tightening (§3.3).

    "OS practitioners may find it better to deploy guardrails with
    relaxed properties and automatically tighten the properties based
    on system behavior."

    [deploy] watches a feature-store key during a warmup window,
    computes thresholds from the observed distribution (a quantile
    stretched by a slack factor), instantiates the guardrail from a
    caller-supplied source template, installs it, and then keeps
    re-calibrating: every [tighten_every], if the recent distribution
    supports a tighter bound, the installed monitor is atomically
    replaced (uninstall + install — the §6 "update guardrails at
    runtime without requiring a kernel reboot" mechanic). Thresholds
    only ever tighten; a misbehaving phase cannot loosen them. *)

type t

val deploy :
  Deployment.t ->
  key:string ->
  ?quantile:float ->
  ?slack:float ->
  ?warmup:Gr_util.Time_ns.t ->
  ?tighten_every:Gr_util.Time_ns.t ->
  make_source:(hi:float -> string) ->
  unit ->
  t
(** [deploy d ~key ~make_source ()] starts calibration. The upper
    bound is [slack * quantile(observed key samples)]; defaults:
    [quantile] 0.99, [slack] 2.0, [warmup] 1s, [tighten_every] 2s.
    [make_source ~hi] must return guardrail source parameterised by
    the bound (the autotuner re-invokes it at each tightening). The
    guardrail is installed when the warmup expires (if any samples
    arrived; otherwise calibration retries each [tighten_every]). *)

val current_bound : t -> float option
(** [None] until the first calibration completes. *)

val tightenings : t -> int
(** Times the bound was tightened after initial installation. *)

val handle : t -> Gr_runtime.Engine.handle option
(** The live monitor handle, once installed. *)
