open Gr_util

let src = Logs.Src.create "guardrails.deployment" ~doc:"Guardrail deployment"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  kernel : Gr_kernel.Kernel.t;
  store : Gr_runtime.Feature_store.t;
  engine : Gr_runtime.Engine.t;
  tracer : Gr_trace.Tracer.t;
  attach_sim : bool;
  (* Newest first; O(1) install. Accessors present install order. *)
  mutable monitors_rev : (Gr_runtime.Engine.handle * Gr_compiler.Monitor.t) list;
}

(* The hook table and sim engine belong to the kernel, so they carry
   one tracer at a time. Attaching over a different deployment's
   tracer silently rewired that deployment's channel — the historical
   wart — so takeovers are now explicit and logged. *)
let warn_takeover ~channel =
  Log.warn (fun m ->
      m
        "deployment tracer takeover: the kernel's %s channel was attached to another \
         deployment's tracer; detach_tracer on the old deployment first to hand over \
         cleanly"
        channel)

let attach_tracer t =
  (match Gr_kernel.Hooks.tracer t.kernel.hooks with
  | Some prev when prev != t.tracer -> warn_takeover ~channel:"hook"
  | _ -> ());
  Gr_kernel.Hooks.set_tracer t.kernel.hooks t.tracer;
  if t.attach_sim then begin
    (match Gr_sim.Engine.tracer t.kernel.engine with
    | Some prev when prev != t.tracer -> warn_takeover ~channel:"sim"
    | _ -> ());
    Gr_sim.Engine.set_tracer t.kernel.engine t.tracer
  end

let detach_tracer t =
  (match Gr_kernel.Hooks.tracer t.kernel.hooks with
  | Some prev when prev == t.tracer -> Gr_kernel.Hooks.clear_tracer t.kernel.hooks
  | _ -> ());
  match Gr_sim.Engine.tracer t.kernel.engine with
  | Some prev when prev == t.tracer -> Gr_sim.Engine.clear_tracer t.kernel.engine
  | _ -> ()

let owns_tracer t =
  (match Gr_kernel.Hooks.tracer t.kernel.hooks with
  | Some prev -> prev == t.tracer
  | None -> false)
  && ((not t.attach_sim)
     ||
     match Gr_sim.Engine.tracer t.kernel.engine with
     | Some prev -> prev == t.tracer
     | None -> false)

let create ~kernel ?config ?(store_capacity = 4096) ?(tracing = false)
    ?(trace_capacity = 65536) ?(attach_sim = true) ?node_id ?engine () =
  let tracer =
    Gr_trace.Tracer.create
      ~clock:(fun () -> Gr_kernel.Kernel.now kernel)
      ~capacity:trace_capacity ~enabled:tracing ?node_id ()
  in
  let store =
    Gr_runtime.Feature_store.create
      ~clock:(fun () -> Gr_kernel.Kernel.now kernel)
      ~capacity_per_key:store_capacity ()
  in
  Gr_runtime.Feature_store.set_tracer store tracer;
  Option.iter (Gr_runtime.Feature_store.set_node_id store) node_id;
  let engine = Gr_runtime.Engine.create ~kernel ~store ?config ~tracer ?engine () in
  let t = { kernel; store; engine; tracer; attach_sim; monitors_rev = [] } in
  attach_tracer t;
  t

let kernel t = t.kernel
let node_id t = Gr_trace.Tracer.node_id t.tracer
let store t = t.store
let engine t = t.engine
let tracer t = t.tracer
let metrics t = Gr_trace.Tracer.metrics t.tracer
let set_tracing t on = Gr_trace.Tracer.set_enabled t.tracer on
let write_chrome_trace t ~path = Gr_trace.Export.write_chrome ~path t.tracer

type error =
  | Compile of Gr_compiler.Compile.error
  | Install of string * string list

let pp_error fmt = function
  | Compile e -> Gr_compiler.Compile.pp_error fmt e
  | Install (name, errs) ->
    Format.fprintf fmt "installing monitor %s failed:" name;
    List.iter (fun e -> Format.fprintf fmt "@\n  %s" e) errs

let install_monitor ?version t monitor =
  match Gr_runtime.Engine.install ?version t.engine monitor with
  | Ok handle ->
    t.monitors_rev <- (handle, monitor) :: t.monitors_rev;
    Ok handle
  | Error errs -> Error (Install (monitor.Gr_compiler.Monitor.name, errs))

let uninstall t handle =
  Gr_runtime.Engine.uninstall t.engine handle;
  t.monitors_rev <- List.filter (fun (h, _) -> h != handle) t.monitors_rev

(* Shared by install_source and the versioned lifecycle: install a
   compiled monitor set atomically — on any failure everything from
   this set is rolled back (demand refcounts released) before the
   error returns. *)
let install_monitors ?version t monitors =
  let rec go installed = function
    | [] -> Ok (List.rev installed)
    | m :: rest -> (
      match install_monitor ?version t m with
      | Ok handle -> go (handle :: installed) rest
      | Error e ->
        List.iter (uninstall t) installed;
        Error e)
  in
  go [] monitors

let install_source t src =
  match Gr_compiler.Compile.source src with
  | Error e -> Error (Compile e)
  | Ok monitors -> install_monitors t monitors

let install_source_exn t src =
  match install_source t src with
  | Ok handles -> handles
  | Error e -> failwith (Format.asprintf "%a" pp_error e)

let installed_monitors t = List.rev_map snd t.monitors_rev
let feedback_cycles t = Gr_compiler.Deps.cycles (installed_monitors t)

let save t key value = Gr_runtime.Feature_store.save t.store key value

let forward_hook_arg t ~hook ~arg ?key () =
  let key = Option.value ~default:arg key in
  ignore
    (Gr_kernel.Hooks.subscribe t.kernel.hooks hook (fun args ->
         match List.assoc_opt arg args with
         | Some v -> save t key v
         | None -> ())
      : Gr_kernel.Hooks.subscription)

let derive_window_avg t ~src ~dst ~window ~every =
  (* The derivation asks for this exact aggregate forever; register it
     so every periodic read is a streaming O(1) hit, not a scan. *)
  Gr_runtime.Feature_store.register_demand t.store ~key:src ~fn:Gr_dsl.Ast.Avg
    ~window_ns:(float_of_int window) ~param:0.;
  ignore
    (Gr_sim.Engine.every t.kernel.engine ~interval:every (fun _ ->
         let avg =
           Gr_runtime.Feature_store.aggregate t.store ~key:src ~fn:Gr_dsl.Ast.Avg
             ~window_ns:(float_of_int window) ~param:0.
         in
         save t dst avg)
      : Gr_sim.Engine.handle)

let derive_periodic t ~key ~every sample =
  ignore
    (Gr_sim.Engine.every t.kernel.engine ~interval:every (fun _ -> save t key (sample ()))
      : Gr_sim.Engine.handle)

let bind_control_key t ~key callback =
  Gr_runtime.Feature_store.on_save t.store (fun k v -> if k = key then callback v);
  if Gr_runtime.Feature_store.mem t.store key then
    callback (Gr_runtime.Feature_store.load t.store key)

let wire_scheduler t sched =
  Gr_runtime.Engine.set_deprioritize_handler t.engine (fun ~cls ~weight ->
      ignore (Gr_kernel.Sched.deprioritize_class sched ~cls ~weight : int));
  Gr_runtime.Engine.set_kill_handler t.engine (fun ~cls ->
      ignore (Gr_kernel.Sched.kill_class sched ~cls : int));
  let max_wait () = Gr_kernel.Sched.max_wait_ms sched in
  let jain () =
    let received = List.map snd (Gr_kernel.Sched.received_by_class sched) in
    Stats.jain_index (Array.of_list received)
  in
  (* Seed both keys so guardrails checking before the first periodic
     sample see healthy values, not LOAD's 0-default. *)
  save t "sched_max_wait_ms" (max_wait ());
  save t "sched_jain" (jain ());
  derive_periodic t ~key:"sched_max_wait_ms" ~every:(Time_ns.ms 10) max_wait;
  derive_periodic t ~key:"sched_jain" ~every:(Time_ns.ms 10) jain;
  save t "sched_wasted_cores" 0.;
  derive_periodic t ~key:"sched_wasted_cores" ~every:(Time_ns.ms 10) (fun () ->
      float_of_int (Gr_kernel.Sched.wasted_cores sched))
