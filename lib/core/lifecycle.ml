(* The versioned spec lifecycle: a hot-swappable registry with gated,
   canaried rollout — the state machine under grc serve.

   Until now a spec was process configuration: compiled once at
   startup, installed, never revisited. This module turns it into a
   versioned object with a lifecycle:

     push --admit--> staged --barrier--> canarying --N clean--> active
            \                                \
             reject                           rollback (old version
                                              untouched, new handles
                                              uninstalled)

   Decisions happen only at epoch barriers (Fleet.add_barrier_hook /
   Gr_sim.Engine.run_chunked), when node domains are parked and the
   control engine is quiescent between events — so an install or
   uninstall never races a check, and a sequential run stays
   bit-identical to the unchunked one.

   Invariants the machine maintains:
   - At most one rollout in flight: a push while another version is
     staged or canarying is rejected ("serialized, loser rejected").
   - The previous active version keeps running untouched through the
     whole canary window. Rollback just uninstalls the canary's
     handles — the old version never stopped, so restoration is
     bit-identical by construction.
   - Demand-refcount handoff: the new version installs BEFORE the old
     uninstalls (promote), so streaming-aggregate shapes shared
     between versions never drop to refcount 0 and lose their window
     state. The engine's exactly-once release does the rest.
   - Every transition is recorded in the audit sink as a cat:"audit"
     trace event whose span/parent args chain push -> admit ->
     canary -> verdict -> promote/rollback, so Provenance (grc
     explain) replays the decision. *)

open Gr_util
module Engine = Gr_runtime.Engine
module Store = Gr_runtime.Feature_store
module Monitor = Gr_compiler.Monitor
module Event = Gr_trace.Event

type target = Deployment of Deployment.t | Fleet of Fleet.t

type config = {
  canary_nodes : int;
  canary_barriers : int;
  max_fire_rate : float;
  admission : Gr_analysis.Audit.config;
}

let default_config =
  {
    canary_nodes = 1;
    canary_barriers = 3;
    max_fire_rate = 5.;
    admission = Gr_analysis.Audit.default_config;
  }

type status = Staged | Canarying | Active | Superseded | Rolled_back | Rejected

let status_name = function
  | Staged -> "staged"
  | Canarying -> "canarying"
  | Active -> "active"
  | Superseded -> "superseded"
  | Rolled_back -> "rolled-back"
  | Rejected -> "rejected"

type version = {
  id : int;
  who : string;
  digest : string;
  source : string;
  pushed_at : Time_ns.t;
  mutable status : status;
  mutable handles : Engine.handle list;  (** installed monitors; [] once off the engine *)
  mutable admit_span : int;  (** audit-chain anchor for rollout events *)
}

type rollout = {
  v : version;
  monitors : Monitor.t list;
  canary_ids : int list;  (** node subset the canary REPLACEs target; [] = whole target *)
  policies : string list;  (** policies the version acts on (canaried during rollout) *)
  mutable started : Time_ns.t;
  mutable canary_span : int;
  mutable last_verdict_span : int;
  mutable clean_barriers : int;
  mutable fires_seen : int;  (** firings already judged at earlier barriers *)
}

type phase = Steady | Pending of rollout | Rolling of rollout

type decision =
  | Admitted of { version : int }
  | Rejected of {
      version : int;
      reason : string;
      diagnostics : Gr_analysis.Diagnostic.t list;
    }

type t = {
  target : target;
  config : config;
  audit : Event.t -> unit;
  mutable next_version : int;
  mutable next_span : int;
  mutable active : version option;
  mutable phase : phase;
  mutable history_rev : version list;
  mutable promotions : int;
  mutable rollbacks : int;
  mutable barriers : int;
}

let rec create ?(config = default_config) ?(audit = fun (_ : Event.t) -> ()) target =
  let t =
    {
      target;
      config;
      audit;
      next_version = 1;
      next_span = 1;
      active = None;
      phase = Steady;
      history_rev = [];
      promotions = 0;
      rollbacks = 0;
      barriers = 0;
    }
  in
  (match target with
  | Fleet fleet -> Fleet.add_barrier_hook fleet (fun ts -> barrier t ts)
  | Deployment _ -> ());
  t

and now t =
  match t.target with
  | Deployment d -> Gr_kernel.Kernel.now (Deployment.kernel d)
  | Fleet f -> Gr_sim.Engine.now (Fleet.sim f)

(* Audit events: cat "audit", Instant, own span-id space (the log is
   a separate file; ids only need to be unique and deterministic
   within it). Returns the event's span so follow-ups can chain. *)
and emit t ?parent name args =
  let span = t.next_span in
  t.next_span <- span + 1;
  let args =
    args
    @ [ ("span", Event.Int span) ]
    @ match parent with None -> [] | Some p -> [ ("parent", Event.Int p) ]
  in
  t.audit (Event.make ~ts:(now t) ~args ~cat:"audit" ~ph:Event.Instant name);
  span

and engine t =
  match t.target with Deployment d -> Deployment.engine d | Fleet f -> Fleet.engine f

and store t =
  match t.target with Deployment d -> Deployment.store d | Fleet f -> Fleet.store f

and fresh_version t ~who ~source =
  let id = t.next_version in
  t.next_version <- id + 1;
  let v =
    {
      id;
      who;
      digest = Gr_compiler.Compile.digest source;
      source;
      pushed_at = now t;
      status = Staged;
      handles = [];
      admit_span = 0;
    }
  in
  t.history_rev <- v :: t.history_rev;
  v

and policies_of monitors =
  List.sort_uniq compare
    (List.concat_map
       (fun (m : Monitor.t) ->
         List.filter_map
           (function
             | Monitor.Replace name | Monitor.Restore name | Monitor.Retrain name ->
               Some name
             | Monitor.Report _ | Monitor.Deprioritize _ | Monitor.Kill _ | Monitor.Save _
               ->
               None)
           m.actions)
       monitors)

and install_version t v monitors =
  match t.target with
  | Deployment d -> Deployment.install_monitors ~version:v.id d monitors
  | Fleet f -> Fleet.install_monitors ~version:v.id f monitors

and uninstall_handles t handles =
  List.iter
    (fun h ->
      match t.target with
      | Deployment d -> Deployment.uninstall d h
      | Fleet f -> Fleet.uninstall f h)
    handles

(* ---- boot: version 1, installed directly (no canary window: there
   is nothing to fall back to yet). The boot spec is the operator's
   own file, vetted like any grc run spec; admission gates *pushes*,
   where a live system is at stake. *)

and boot t ~who source =
  match Gr_compiler.Compile.source source with
  | Error e -> Error (Deployment.Compile e)
  | Ok monitors -> (
    let v = fresh_version t ~who ~source in
    match install_version t v monitors with
    | Error e ->
      v.status <- Rejected;
      Error e
    | Ok handles ->
      v.handles <- handles;
      v.status <- Active;
      t.active <- Some v;
      v.admit_span <-
        emit t "spec.boot"
          [
            ("version", Event.Int v.id);
            ("who", Event.Str who);
            ("digest", Event.Str v.digest);
            ("monitors", Event.Int (List.length monitors));
          ];
      Ok handles)

(* ---- push: admission now, install at the next barrier. *)

and push t ~who source =
  let v = fresh_version t ~who ~source in
  let push_span =
    emit t "spec.push"
      [
        ("version", Event.Int v.id);
        ("who", Event.Str who);
        ("digest", Event.Str v.digest);
        ("bytes", Event.Int (String.length source));
      ]
  in
  let reject reason diagnostics =
    v.status <- Rejected;
    ignore
      (emit t ~parent:push_span "spec.reject"
         [
           ("version", Event.Int v.id);
           ("reason", Event.Str reason);
           ("diagnostics", Event.Int (List.length diagnostics));
           ( "codes",
             Event.Str
               (String.concat ";"
                  (List.map (fun d -> d.Gr_analysis.Diagnostic.code) diagnostics)) );
         ]
        : int);
    Rejected { version = v.id; reason; diagnostics }
  in
  match t.phase with
  | Pending r | Rolling r ->
    (* Serialization point: one rollout in flight, the loser loses. *)
    reject
      (Printf.sprintf "rollout of v%d (%s) in progress" r.v.id (status_name r.v.status))
      []
  | Steady -> (
    let adm = Gr_analysis.Audit.admit ~config:t.config.admission source in
    match adm with
    | { admitted = false; reason; diagnostics; _ } ->
      reject (Option.value ~default:"rejected by static analysis" reason) diagnostics
    | { monitors; _ } ->
      v.admit_span <-
        emit t ~parent:push_span "spec.admit"
          [ ("version", Event.Int v.id); ("monitors", Event.Int (List.length monitors)) ];
      let canary_ids =
        match t.target with
        | Deployment _ -> []
        | Fleet f ->
          let n = Fleet.node_count f in
          if n <= 1 then []
          else List.init (min (max 1 t.config.canary_nodes) (n - 1)) Fun.id
      in
      t.phase <-
        Pending
          {
            v;
            monitors;
            canary_ids;
            policies = policies_of monitors;
            started = now t;
            canary_span = 0;
            last_verdict_span = 0;
            clean_barriers = 0;
            fires_seen = 0;
          };
      Admitted { version = v.id })

(* ---- the barrier: install staged versions, judge canaries. *)

and set_canaries t r =
  match (t.target, r.canary_ids) with
  | Deployment _, _ | _, [] -> ()
  | Fleet f, ids -> List.iter (fun p -> Fleet.set_canary f ~policy:p ids) r.policies

and clear_canaries t r =
  match t.target with
  | Deployment _ -> ()
  | Fleet f -> List.iter (fun p -> Fleet.clear_canary f ~policy:p) r.policies

and install_staged t r =
  match install_version t r.v r.monitors with
  | Error e ->
    (* The verifier is stricter than static analysis only in
       pathological cases, but the engine is the trust boundary:
       an install-time rejection is a reject like any other. *)
    r.v.status <- Rejected;
    t.phase <- Steady;
    ignore
      (emit t ~parent:r.v.admit_span "spec.reject"
         [
           ("version", Event.Int r.v.id);
           ("reason", Event.Str (Format.asprintf "install failed: %a" Deployment.pp_error e));
           ("diagnostics", Event.Int 0);
           ("codes", Event.Str "");
         ]
        : int)
  | Ok handles ->
    r.v.handles <- handles;
    r.v.status <- Canarying;
    r.started <- now t;
    set_canaries t r;
    r.canary_span <-
      emit t ~parent:r.v.admit_span "rollout.canary"
        [
          ("version", Event.Int r.v.id);
          ( "nodes",
            Event.Str
              (match r.canary_ids with
              | [] -> "all"
              | ids -> String.concat ";" (List.map string_of_int ids)) );
          ("policies", Event.Str (String.concat ";" r.policies));
          ("monitors", Event.Int (List.length handles));
        ];
    t.phase <- Rolling r

and judge t r ts =
  let stats = List.map (fun h -> Engine.Stats.get (engine t) h) r.v.handles in
  let fires =
    List.fold_left (fun acc (s : Engine.Stats.s) -> acc + s.action_firings) 0 stats
  in
  let oscillations =
    List.fold_left (fun acc (s : Engine.Stats.s) -> acc + s.oscillation_alerts) 0 stats
  in
  let elapsed = Time_ns.to_float_sec ts -. Time_ns.to_float_sec r.started in
  let rate = if elapsed > 0. then float_of_int fires /. elapsed else 0. in
  let why =
    if oscillations > 0 then
      Some (Printf.sprintf "oscillation alert on canary (%d alert(s))" oscillations)
    else if rate > t.config.max_fire_rate then
      Some
        (Printf.sprintf "canary fire rate %.1f/s exceeds guardrail %.1f/s" rate
           t.config.max_fire_rate)
    else None
  in
  r.last_verdict_span <-
    emit t ~parent:r.canary_span "rollout.verdict"
      [
        ("version", Event.Int r.v.id);
        ("clean", Event.Bool (why = None));
        ("fires", Event.Int fires);
        ("rate", Event.Float rate);
        ("oscillations", Event.Int oscillations);
        ("demands", Event.Int (Store.demand_count (store t)));
      ];
  r.fires_seen <- fires;
  match why with
  | Some reason ->
    (* Rollback: the canary comes off the engine, the previous active
       version — which never stopped running — simply continues.
       Uninstall releases the canary's demand refcounts exactly once;
       shapes shared with the active version keep streaming. *)
    uninstall_handles t r.v.handles;
    r.v.handles <- [];
    r.v.status <- Rolled_back;
    clear_canaries t r;
    t.phase <- Steady;
    t.rollbacks <- t.rollbacks + 1;
    ignore
      (emit t ~parent:r.last_verdict_span "rollout.rollback"
         [
           ("version", Event.Int r.v.id);
           ("reason", Event.Str reason);
           ( "restored",
             Event.Int (match t.active with Some v -> v.id | None -> 0) );
           ("demands", Event.Int (Store.demand_count (store t)));
         ]
        : int)
  | None ->
    r.clean_barriers <- r.clean_barriers + 1;
    if r.clean_barriers >= t.config.canary_barriers then begin
      (* Promote: handoff order is install-new (already done at canary
         start) then uninstall-old — shared streaming aggregates never
         hit refcount 0, so their window state survives the swap. *)
      let old = t.active in
      (match old with
      | Some o ->
        uninstall_handles t o.handles;
        o.handles <- [];
        o.status <- Superseded
      | None -> ());
      clear_canaries t r;
      r.v.status <- Active;
      t.active <- Some r.v;
      t.phase <- Steady;
      t.promotions <- t.promotions + 1;
      ignore
        (emit t ~parent:r.canary_span "rollout.promote"
           [
             ("version", Event.Int r.v.id);
             ("supersedes", Event.Int (match old with Some o -> o.id | None -> 0));
             ("clean_barriers", Event.Int r.clean_barriers);
             ("demands", Event.Int (Store.demand_count (store t)));
           ]
          : int)
    end

and barrier t ts =
  t.barriers <- t.barriers + 1;
  match t.phase with
  | Steady -> ()
  | Pending r -> install_staged t r
  | Rolling r -> judge t r ts

(* ---- introspection *)

let active t = t.active
let phase t = t.phase
let history t = List.rev t.history_rev
let promotions t = t.promotions
let rollbacks t = t.rollbacks
let barriers_seen t = t.barriers
let version_count t = List.length t.history_rev

let find_version t id = List.find_opt (fun v -> v.id = id) t.history_rev

let phase_name t =
  match t.phase with
  | Steady -> "steady"
  | Pending r -> Printf.sprintf "staged:v%d" r.v.id
  | Rolling r -> Printf.sprintf "canarying:v%d(%d/%d)" r.v.id r.clean_barriers
                   t.config.canary_barriers

let pp_status fmt t =
  Format.fprintf fmt "phase %s; %d version(s), %d promotion(s), %d rollback(s)"
    (phase_name t) (version_count t) t.promotions t.rollbacks;
  match t.active with
  | Some v -> Format.fprintf fmt "; active v%d (%s, by %s)" v.id v.digest v.who
  | None -> Format.fprintf fmt "; no active version"
