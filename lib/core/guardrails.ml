(** Guardrails for the OS — public API.

    Reproduction of "How I learned to stop worrying and love learned
    OS policies" (HotOS '25). The framework lets kernel developers
    declaratively specify system-level properties over learned
    policies and corrective actions for violations; specifications
    compile into verified monitors that run inside the (simulated)
    kernel.

    Layering, bottom to top:
    - {!Util}, {!Sim}: deterministic PRNG/statistics and the
      discrete-event engine.
    - {!Kernel} and friends: the simulated kernel — hooks, policy
      slots, SSD/block/scheduler/memory/cache subsystems.
    - {!Nn}, policies ({!Gr_policy}): the learned policies under
      guardrail and their hand-coded fallbacks.
    - {!Ast} .. {!Compile}: the guardrail language and compiler.
    - {!Store}, {!Vm}, {!Engine}: the in-kernel runtime.
    - {!Deployment}: one-stop wiring of all of the above. *)

(* Language *)
module Ast = Gr_dsl.Ast
module Lexer = Gr_dsl.Lexer
module Parser = Gr_dsl.Parser
module Typecheck = Gr_dsl.Typecheck
module Pretty = Gr_dsl.Pretty

(* Compiler *)
module Ir = Gr_compiler.Ir
module Lower = Gr_compiler.Lower
module Opt = Gr_compiler.Opt
module Monitor = Gr_compiler.Monitor
module Verify = Gr_compiler.Verify
module Deps = Gr_compiler.Deps
module Compile = Gr_compiler.Compile
module Cgen = Gr_compiler.Cgen

(* Static analysis (grc lint / grc verify) *)
module Interval = Gr_analysis.Interval
module Diagnostic = Gr_analysis.Diagnostic
module Analyze = Gr_analysis.Analyze
module Dataflow = Gr_analysis.Dataflow
module Machine = Gr_analysis.Machine
module Race = Gr_analysis.Race
module Audit = Gr_analysis.Audit

(* Runtime *)
module Store = Gr_runtime.Feature_store
module Vm = Gr_runtime.Vm
module Jit = Gr_runtime.Jit
module Engine = Gr_runtime.Engine

(* Observability *)
module Trace = Gr_trace.Tracer
module Trace_event = Gr_trace.Event
module Trace_sink = Gr_trace.Sink
module Trace_export = Gr_trace.Export
module Metrics = Gr_trace.Metrics
module Provenance = Gr_trace.Provenance
module Audit_log = Gr_trace.Audit_log
module Selfcost = Gr_trace.Selfcost
module Json = Gr_trace.Json

(* Substrate *)
module Util = Gr_util
module Sim = Gr_sim.Engine
module Nn = Gr_nn.Mlp
module Scaler = Gr_nn.Scaler
module Kernel = Gr_kernel.Kernel
module Hooks = Gr_kernel.Hooks
module Policy_slot = Gr_kernel.Policy_slot
module Ssd = Gr_kernel.Ssd
module Blk = Gr_kernel.Blk
module Sched = Gr_kernel.Sched
module Mm = Gr_kernel.Mm
module Cache = Gr_kernel.Cache
module Net = Gr_kernel.Net
module Fs = Gr_kernel.Fs

(* Facade *)
module Deployment = Deployment
module Node = Node
module Fleet = Fleet
module Lifecycle = Lifecycle
module Autotune = Autotune

let compile = Gr_compiler.Compile.source
let compile_exn = Gr_compiler.Compile.source_exn
