(** A fleet deployment: N node kernels advancing on one simulated
    clock, plus a fleet-level control deployment that owns the global
    feature-store tier and runs fleet-wide guardrails.

    {[
      let fleet = Fleet.create ~nodes:4 ~seed:7 () in
      Array.iter build_devices (Fleet.nodes fleet);
      Fleet.install_source_exn fleet
        {|GUARDRAIL fleet_tail
          ON TIMER(100ms)
          CHECK QUANTILE(io_lat_us, 10s, 0.99) < 500.0
          ON VIOLATION REPLACE latency_predictor|};
      Fleet.run_until fleet (Time_ns.sec 10)
    ]}

    {2 Scoping}

    Every node's store is a shard; the control deployment's store is
    the global tier. A plain key read by a {e fleet} monitor sees the
    merged view of all shards (aggregates merge incrementally via
    {!Gr_runtime.Feature_store.Merge}); the same key read by a {e
    node} monitor sees only that node's shard. [GLOBAL(key)] resolves
    to the global tier from everywhere, and a global save wakes
    ON_CHANGE monitors on the control engine {e and} every node
    engine.

    {2 Fleet actions}

    Policies live in node kernels. Installing a fleet monitor
    registers proxies on the control kernel: REPLACE broadcasts to
    every node or, when {!set_canary} was called for the policy, only
    to the canary subset; RESTORE always broadcasts; RETRAIN runs
    once on the lowest-id node owning the policy and pushes the
    refreshed model to the other owners (trace events
    [fleet.replace]/[fleet.restore]/[fleet.retrain]/[fleet.model_push],
    category ["fleet"]). FUNCTION triggers of fleet monitors are
    forwarded from every node's hook table with a ["node"] argument
    tagging the origin.

    {2 Execution modes}

    With [~domains:1] (the default) every member kernel shares one
    event heap and one thread — the historical, bit-exact sequential
    path. With [~domains:K] (K > 1) each node kernel owns its engine
    and the fleet advances in lock-step sim-time epochs on K OCaml
    domains under the epoch-barrier protocol of docs/PARALLEL.md:
    nodes drain only node-local events mid-epoch, cross-node effects
    (GLOBAL saves, forwarded FUNCTION hook firings) are buffered as
    intents and replayed by the control deployment at each barrier in
    (timestamp, node id, node-local order) order, and
    REPLACE/RESTORE/RETRAIN broadcasts run in the control phase while
    node domains are parked. REPORTs, actions and merged-store
    contents are identical for every K on epoch-aligned workloads;
    only host wall-clock changes. *)

type t

val create :
  nodes:int ->
  seed:int ->
  ?config:Gr_runtime.Engine.config ->
  ?store_capacity:int ->
  ?tracing:bool ->
  ?domains:int ->
  ?epoch:Gr_util.Time_ns.t ->
  ?engine:Gr_runtime.Vm.tier ->
  unit ->
  t
(** Builds a control kernel seeded with [seed] and [nodes] node
    deployments (ids [0..nodes-1], seeds [seed + id + 1]) wired as
    store shards of the control store. [nodes] must be positive;
    [nodes:1] is a fleet-of-one whose node behaves exactly like a
    standalone {!Deployment}.

    [domains] (default 1) selects the execution mode; it is clamped to
    [nodes] (more domains than nodes buys nothing) and any value <= 1
    takes the sequential shared-heap path verbatim. [epoch] (default
    50ms) is the parallel mode's barrier interval; it must be
    positive. Shorter epochs tighten cross-node latency (a node sees a
    peer's GLOBAL save at the next barrier), longer epochs amortize
    barrier cost. @raise Invalid_argument on bad [nodes] or
    [epoch].

    [engine] is the default execution tier for every member engine
    and the control engine (see {!Deployment.create}); monitors over
    GLOBAL keys fall back from the JIT to the register tier because
    cross-shard merged reads have no handle fast path. *)

val sim : t -> Gr_sim.Engine.t
(** The fleet's virtual clock: the shared engine in sequential mode,
    the control deployment's own engine in parallel mode. Events
    scheduled here run in the control phase in both modes. *)

val domains : t -> int
(** The effective domain count (1 = sequential shared-heap mode). *)

val epoch : t -> Gr_util.Time_ns.t
(** The epoch-barrier interval parallel runs advance by. *)

val default_epoch : Gr_util.Time_ns.t
(** The default epoch interval (50ms). Single-deployment spec-serving
    paths reuse it so [grc serve --nodes 1] barriers land where a
    fleet's would. *)

val control : t -> Deployment.t
(** The fleet-level deployment: its store is the global tier, its
    engine runs the fleet-wide monitors, its tracer owns the sim
    dispatch channel. *)

val store : t -> Gr_runtime.Feature_store.t
(** The global store tier ([= Deployment.store (control t)]). Plain
    keys read through it present the merged all-shards view. *)

val engine : t -> Gr_runtime.Engine.t
val tracer : t -> Gr_trace.Tracer.t

val nodes : t -> Node.t array
(** Copy of the member array, index = node id. *)

val node : t -> int -> Node.t
(** Raises [Invalid_argument] for an unknown id. *)

val node_count : t -> int

(** {1 Fleet-wide guardrails} *)

val install_source : t -> string -> (Gr_runtime.Engine.handle list, Deployment.error) result
(** Compiles the source and installs every monitor into the control
    engine, after wiring FUNCTION-trigger forwarding from all nodes
    and REPLACE/RESTORE/RETRAIN proxies for every policy the monitors
    act on. On error nothing from this source stays installed. *)

val install_source_exn : t -> string -> Gr_runtime.Engine.handle list

val install_monitor :
  t -> Gr_compiler.Monitor.t -> (Gr_runtime.Engine.handle, Deployment.error) result

val install_monitors :
  ?version:int ->
  t ->
  Gr_compiler.Monitor.t list ->
  (Gr_runtime.Engine.handle list, Deployment.error) result
(** Wires and installs an already-compiled monitor set atomically on
    the control engine, stamped with [version] when given (the
    versioned lifecycle's install path — see
    {!Gr_runtime.Engine.install}). On error nothing from this set
    stays installed. *)

val uninstall : t -> Gr_runtime.Engine.handle -> unit
(** Uninstall a fleet-wide monitor from the control engine (demand
    refcounts released exactly once; policy proxies and hook
    forwarders stay, inert, for future installs). *)

val violations : t -> Gr_runtime.Engine.violation_record list
(** The control engine's violation log (fleet-wide monitors only;
    per-node logs live on each node's engine). *)

(** {1 Canarying} *)

val set_canary : t -> policy:string -> int list -> unit
(** Restrict the named policy's fleet REPLACE to these node ids.
    Raises [Invalid_argument] on an unknown id. *)

val clear_canary : t -> policy:string -> unit
(** Subsequent REPLACEs broadcast again. *)

val canary : t -> policy:string -> int list option

(** {1 Global store and clock} *)

val save_global : t -> string -> float -> unit
(** [save_global t key v] writes [GLOBAL(key)] — visible to every
    member and waking ON_CHANGE(GLOBAL(key)) monitors fleet-wide. *)

val load_global : t -> string -> float

val run_until : t -> Gr_util.Time_ns.t -> unit
(** Advances the fleet clock; all nodes and the control engine make
    progress in one deterministic event order. In parallel mode this
    spawns the domain pool for the duration of the call and runs the
    epoch-barrier loop ([= run_epochs] without a callback). *)

val run_epochs : ?on_barrier:(Gr_util.Time_ns.t -> unit) -> t -> Gr_util.Time_ns.t -> unit
(** Like {!run_until}, with [on_barrier] called sequentially after
    every epoch's control phase (and once at [limit] in sequential
    mode, where the whole run is one epoch) — the fault-injection
    soak's window for checking cross-shard invariants while node
    domains are parked. *)

val add_barrier_hook : t -> (Gr_util.Time_ns.t -> unit) -> unit
(** Register a persistent callback invoked at every epoch boundary of
    every subsequent {!run_until}/{!run_epochs} — before any
    [on_barrier] callback, so invariant checkers observe
    post-decision state. This is the promotion decision point for
    canaried spec rollouts ({!Lifecycle}). A sequential fleet with
    hooks registered steps in {!epoch}-sized chunks; since the shared
    heap fires every event up to each boundary either way, the event
    stream and its trace stay byte-identical to the hook-free path. *)

val events_fired : t -> int
(** Total sim events dispatched across every member engine — one
    shared heap's count in sequential mode, the sum over control and
    node engines in parallel mode. *)

(** {1 Fleet action counters} *)

val replaces : t -> int
(** Per-node REPLACE deliveries (a broadcast to 4 nodes counts 4). *)

val restores : t -> int
val retrains : t -> int
(** Global retrain rounds (train-once). *)

val model_pushes : t -> int
(** Models pushed to non-trainer owners after a retrain. *)
