(** A fleet node: one machine's kernel, feature-store shard and
    runtime engine.

    This is {!Deployment} under its fleet name — the types are equal
    and every operation behaves identically. {!Fleet.create} builds
    one node per member with [~attach_sim:false] (the shared sim
    clock belongs to the fleet, not to any node) and a distinct
    [~node_id] so traces, reports and metrics stay attributable. *)

include module type of struct
  include Deployment
end
