open Gr_util

let json_of_arg : Event.arg -> Json.t = function
  | Event.Float x -> Num x
  | Event.Int i -> Num (float_of_int i)
  | Event.Str s -> Str s
  | Event.Bool b -> Bool b

(* Ints and floats both serialize as JSON numbers; integral numbers
   decode as Int. Event.equal treats Int/Float as numerically
   equivalent, so round-trips compare equal. *)
let arg_of_json (j : Json.t) : (Event.arg, string) result =
  match j with
  | Num x when Float.is_integer x && Float.abs x < 1e15 -> Ok (Event.Int (int_of_float x))
  | Num x -> Ok (Event.Float x)
  | Str s -> Ok (Event.Str s)
  | Bool b -> Ok (Event.Bool b)
  | Obj [ ("f", Num x) ] -> Ok (Event.Float x)
  | _ -> Error "unsupported arg value"

let json_of_event (ev : Event.t) : Json.t =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ("ph", Json.Str (Event.phase_to_string ev.ph));
      ("ts", Json.Num (Time_ns.to_float_us ev.ts));
      ("pid", Json.Num 1.);
      ("tid", Json.Num 1.);
    ]
  in
  let dur = if ev.ph = Event.Complete then [ ("dur", Json.Num (ev.dur_ns /. 1e3)) ] else [] in
  let args =
    match ev.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ]
  in
  Json.Obj (base @ dur @ args)

let chrome_of_events events : Json.t =
  Obj
    [
      ("traceEvents", Arr (List.map json_of_event events));
      ("displayTimeUnit", Str "ns");
    ]

let merged_events tracer =
  List.stable_sort
    (fun (a : Event.t) (b : Event.t) -> Time_ns.compare a.ts b.ts)
    (Sink.to_list (Tracer.events tracer) @ Sink.to_list (Tracer.reports tracer))

let chrome tracer = chrome_of_events (merged_events tracer)
let chrome_string tracer = Json.to_string (chrome tracer)

let write_chrome ~path tracer =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (chrome_string tracer);
      output_char oc '\n')

let ( let* ) = Result.bind

let event_of_json (j : Json.t) : (Event.t, string) result =
  let field name =
    match Json.member name j with Some v -> Ok v | None -> Error ("missing " ^ name)
  in
  let* name = field "name" in
  let* name = Option.to_result ~none:"name not a string" (Json.string_value name) in
  let* cat = field "cat" in
  let* cat = Option.to_result ~none:"cat not a string" (Json.string_value cat) in
  let* ph = field "ph" in
  let* ph = Option.to_result ~none:"ph not a string" (Json.string_value ph) in
  let* ph = Option.to_result ~none:"unknown phase" (Event.phase_of_string ph) in
  let* ts = field "ts" in
  let* ts_us = Option.to_result ~none:"ts not a number" (Json.float_value ts) in
  let ts = Time_ns.ns (int_of_float (Float.round (ts_us *. 1e3))) in
  let dur_ns =
    match Json.member "dur" j with
    | Some d -> ( match Json.float_value d with Some us -> us *. 1e3 | None -> 0.)
    | None -> 0.
  in
  let* args =
    match Json.member "args" j with
    | None -> Ok []
    | Some (Obj kvs) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* a = arg_of_json v in
          Ok ((k, a) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | Some _ -> Error "args not an object"
  in
  Ok (Event.make ~ts ~dur_ns ~args ~cat ~ph name)

let events_of_chrome (j : Json.t) : (Event.t list, string) result =
  match Json.member "traceEvents" j with
  | Some (Arr evs) ->
    List.fold_left
      (fun acc ev ->
        let* acc = acc in
        let* e = event_of_json ev in
        Ok (e :: acc))
      (Ok []) evs
    |> Result.map List.rev
  | Some _ -> Error "traceEvents not an array"
  | None -> Error "missing traceEvents"

let events_of_chrome_string s =
  let* j = Json.parse s in
  events_of_chrome j

(* JSONL: one Chrome trace object per line — the append-only audit
   log's format (Audit_log). Blank lines are tolerated so a reader
   can cope with a trailing newline or a log truncated mid-append. *)
let events_of_jsonl_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go acc (n + 1) rest
      else (
        match Json.parse line with
        | Error e -> Error (Printf.sprintf "line %d: %s" n e)
        | Ok j -> (
          match event_of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
          | Ok ev -> go (ev :: acc) (n + 1) rest))
  in
  go [] 1 lines

let events_of_any_string s =
  match events_of_chrome_string s with
  | Ok evs -> Ok evs
  | Error chrome_err -> (
    match events_of_jsonl_string s with
    | Ok evs -> Ok evs
    | Error jsonl_err ->
      Error
        (Printf.sprintf "neither a Chrome trace (%s) nor JSONL events (%s)" chrome_err
           jsonl_err))

let pp_events fmt events =
  List.iter (fun ev -> Format.fprintf fmt "%a@\n" Event.pp ev) events

let pp_sink fmt name sink =
  Format.fprintf fmt "%-8s %8d buffered / %8d emitted / %8d dropped (capacity %d)@\n" name
    (Sink.length sink) (Sink.emitted sink) (Sink.dropped sink) (Sink.capacity sink)

let pp_summary fmt tracer =
  pp_sink fmt "events" (Tracer.events tracer);
  pp_sink fmt "reports" (Tracer.reports tracer);
  Metrics.pp fmt (Tracer.metrics tracer)

(* ---- OpenMetrics exposition over whole tracers ----

   Monitor families (from the registries) plus the observability
   plane's own accounting: sink throughput/drops per channel and the
   self-overhead counters, so a scrape answers both "what did the
   guardrails do" and "what did watching them cost". *)

let om_sink_row buf ~metric ~channel ?node v =
  Buffer.add_string buf
    (Printf.sprintf "%s_total{channel=%S%s} %d\n" metric channel
       (match node with None -> "" | Some id -> Printf.sprintf ",node=\"%d\"" id)
       v)

let om_sink_family buf ~metric ~help ~value tracers =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" metric help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" metric);
  List.iter
    (fun tr ->
      let node = Tracer.node_id tr in
      om_sink_row buf ~metric ~channel:"events" ?node (value (Tracer.events tr));
      om_sink_row buf ~metric ~channel:"reports" ?node (value (Tracer.reports tr)))
    tracers

let openmetrics_of_tracers tracers =
  let buf = Buffer.create 8192 in
  Metrics.openmetrics_into buf (List.map Tracer.metrics tracers);
  om_sink_family buf ~metric:"guardrail_trace_emitted"
    ~help:"Events accepted by a trace channel." ~value:Sink.emitted tracers;
  om_sink_family buf ~metric:"guardrail_trace_dropped"
    ~help:"Events rejected or overwritten on channel overflow." ~value:Sink.dropped tracers;
  if Selfcost.enabled () then begin
    Buffer.add_string buf
      "# HELP guardrail_selfcost_ops Observability self-overhead: operations per subsystem.\n";
    Buffer.add_string buf "# TYPE guardrail_selfcost_ops counter\n";
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "guardrail_selfcost_ops_total{subsystem=%S} %d\n" (Selfcost.name s)
             (Selfcost.ops s)))
      Selfcost.all;
    Buffer.add_string buf
      "# HELP guardrail_selfcost_host_ns Observability self-overhead: real host nanoseconds per subsystem.\n";
    Buffer.add_string buf "# TYPE guardrail_selfcost_host_ns counter\n";
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "guardrail_selfcost_host_ns_total{subsystem=%S} %.0f\n"
             (Selfcost.name s) (Selfcost.host_ns s)))
      Selfcost.all
  end;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let openmetrics tracer = openmetrics_of_tracers [ tracer ]

let write_openmetrics ~path tracers =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (openmetrics_of_tracers tracers))
