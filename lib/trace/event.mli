(** Structured trace events.

    The schema mirrors the Chrome [trace_event] format so exports are
    a direct mapping: spans ([Begin]/[End] pairs or self-contained
    [Complete] slices with a duration), [Instant] markers and
    [Counter] samples, each carrying a category, a name and typed
    arguments. Timestamps are {e simulated} time ({!Gr_util.Time_ns}),
    which is what makes traces bit-for-bit reproducible under a fixed
    seed.

    [Complete] events carry [dur_ns], the span's duration. In this
    reproduction rule checks take zero simulated time — their cost is
    an estimate charged to an overhead account — so check spans use
    the {e estimated} cost as the duration, making per-monitor
    overhead visible on the timeline. *)

type phase =
  | Begin  (** span entry (Chrome ["B"]) *)
  | End  (** span exit (Chrome ["E"]) *)
  | Complete  (** self-contained span with [dur_ns] (Chrome ["X"]) *)
  | Instant  (** point event (Chrome ["i"]) *)
  | Counter  (** sampled series (Chrome ["C"]) *)

type arg = Float of float | Int of int | Str of string | Bool of bool

type t = {
  ts : Gr_util.Time_ns.t;  (** simulated timestamp *)
  dur_ns : float;  (** [Complete] duration; 0. for other phases *)
  cat : string;  (** category: ["sim"], ["hook"], ["check"], ["action"], ["store"], ["report"], ... *)
  name : string;
  ph : phase;
  args : (string * arg) list;
}

val make :
  ts:Gr_util.Time_ns.t ->
  ?dur_ns:float ->
  ?args:(string * arg) list ->
  cat:string ->
  ph:phase ->
  string ->
  t

val phase_to_string : phase -> string
(** The Chrome [ph] letter. *)

val phase_of_string : string -> phase option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** One-line human rendering, e.g. [[1.5s] check X linnos (dur 42ns) violated=true]. *)
