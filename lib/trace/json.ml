type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let buf_add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let buf_add_num buf x =
  if not (Float.is_finite x) then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec buf_add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> buf_add_num buf x
  | Str s -> buf_add_escaped buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        buf_add buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        buf_add_escaped buf k;
        Buffer.add_char buf ':';
        buf_add buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  buf_add buf j;
  Buffer.contents buf

let pp fmt j = Format.pp_print_string fmt (to_string j)

(* ---------- parsing ---------- *)

exception Parse_error of string

let parse_failf fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_failf "at %d: expected %C, got %C" c.pos ch x
  | None -> parse_failf "at %d: expected %C, got end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_failf "at %d: expected %s" c.pos word

(* Encode a Unicode scalar value as UTF-8 bytes. *)
let buf_add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 c =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek c with
    | Some ch when ch >= '0' && ch <= '9' -> v := (!v * 16) + (Char.code ch - Char.code '0')
    | Some ch when ch >= 'a' && ch <= 'f' ->
      v := (!v * 16) + (Char.code ch - Char.code 'a' + 10)
    | Some ch when ch >= 'A' && ch <= 'F' ->
      v := (!v * 16) + (Char.code ch - Char.code 'A' + 10)
    | _ -> parse_failf "at %d: bad \\u escape" c.pos);
    advance c
  done;
  !v

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_failf "at %d: unterminated string" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        let u = hex4 c in
        (* Surrogate pair: \uD8xx\uDCxx. *)
        if u >= 0xd800 && u <= 0xdbff then begin
          expect c '\\';
          expect c 'u';
          let lo = hex4 c in
          if lo < 0xdc00 || lo > 0xdfff then parse_failf "at %d: bad surrogate pair" c.pos;
          buf_add_utf8 buf (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
        end
        else buf_add_utf8 buf u
      | _ -> parse_failf "at %d: bad escape" c.pos);
      go ()
    | Some ch -> Buffer.add_char buf ch; advance c; go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  let continue = ref true in
  while !continue do
    match peek c with Some ch when numeric ch -> advance c | _ -> continue := false
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some x -> x
  | None -> parse_failf "at %d: bad number %S" start s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_failf "at %d: unexpected end of input" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; fields ((k, v) :: acc)
        | Some '}' -> advance c; List.rev ((k, v) :: acc)
        | _ -> parse_failf "at %d: expected ',' or '}'" c.pos
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; elems (v :: acc)
        | Some ']' -> advance c; List.rev (v :: acc)
        | _ -> parse_failf "at %d: expected ',' or ']'" c.pos
      in
      Arr (elems [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "at %d: trailing garbage" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> invalid_arg ("Json.parse: " ^ msg)

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_list = function Arr xs -> xs | _ -> []
let float_value = function Num x -> Some x | _ -> None

let int_value = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let string_value = function Str s -> Some s | _ -> None
let bool_value = function Bool b -> Some b | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | Arr xs, Arr ys -> List.equal equal xs ys
  | Obj xs, Obj ys ->
    List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | _ -> false
