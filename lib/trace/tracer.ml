(* Causal provenance context. Span ids are allocated in emission
   order, which the single sim clock makes deterministic: the same
   seed replays the same dispatch sequence, hence the same ids. The
   context is shared between every tracer riding the same sim engine
   (fleet control + nodes), so a cross-node effect parents to the
   dispatch that caused it no matter which tracer records it.

   In parallel fleet mode each domain instead owns a private context
   on a disjoint arithmetic channel: channel [c] of [stride] allocates
   ids [c, c + stride, c + 2*stride, ..] so merged traces carry
   globally unique, reproducible span ids (the id mod stride recovers
   the emitting channel) without any cross-domain coordination. *)
type span_ctx = { mutable next_span : int; stride : int; mutable current : int option }

let create_ctx ?(offset = 0) ?(stride = 1) () = { next_span = offset; stride; current = None }

type t = {
  clock : unit -> Gr_util.Time_ns.t;
  events : Sink.t;
  reports : Sink.t;
  metrics : Metrics.t;
  mutable enabled : bool;
  mutable node_id : int option;
  mutable ctx : span_ctx;
  (* Tail of the provenance args, [("parent", _); ("node", _)], cached
     per parent: args lists are immutable so every sibling event in a
     causal scope can share the same cells, and steady-state tagging
     allocates only the leading span cell. *)
  mutable node_tail : (string * Event.arg) list;
  mutable memo_parent : int;
  mutable memo_tail : (string * Event.arg) list;
}

let create ~clock ?(capacity = 65536) ?(report_capacity = 16384) ?overflow ?(enabled = false)
    ?node_id () =
  let metrics = Metrics.create () in
  Metrics.set_node_id metrics node_id;
  {
    clock;
    events = Sink.create ~capacity ?overflow ();
    reports = Sink.create ~capacity:report_capacity ?overflow ();
    metrics;
    enabled;
    node_id;
    ctx = create_ctx ();
    node_tail = (match node_id with None -> [] | Some id -> [ ("node", Event.Int id) ]);
    memo_parent = min_int;
    memo_tail = [];
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let clock t = t.clock
let events t = t.events
let reports t = t.reports
let metrics t = t.metrics
let node_id t = t.node_id

let set_node_id t id =
  t.node_id <- id;
  t.node_tail <- (match id with None -> [] | Some id -> [ ("node", Event.Int id) ]);
  t.memo_parent <- min_int;
  Metrics.set_node_id t.metrics id

let ctx t = t.ctx
let set_ctx t ctx = t.ctx <- ctx
let share_ctx ~src t = t.ctx <- src.ctx

let set_span_channel t ~offset ~stride =
  if offset < 0 || stride < 1 || offset >= stride then
    invalid_arg "Tracer.set_span_channel: need 0 <= offset < stride";
  t.ctx <- create_ctx ~offset ~stride ()

let fresh_span t =
  let id = t.ctx.next_span in
  t.ctx.next_span <- id + t.ctx.stride;
  id

let current_span t = t.ctx.current
let set_current t span = t.ctx.current <- span

(* Provenance + fleet tagging: each recorded event carries its own
   span id, the span id of the event that caused it (when inside a
   causal context), and — on fleet nodes — the node id, so merged
   traces stay both attributable and reconstructable as decision
   trees. Bookkeeping is only reachable when the tracer is enabled;
   disabled emission stays one branch. *)
let tag t ?span ?parent args =
  let selfcost = Selfcost.enabled () in
  let t0 = if selfcost then Selfcost.now_ns () else 0. in
  let span = match span with Some s -> s | None -> fresh_span t in
  let parent = match parent with Some _ as p -> p | None -> t.ctx.current in
  (* Built back to front so the trailing cells are shared, never
     copied: the parent/node tail is memoized per parent (siblings of
     one causal scope hit the cache), so steady-state tagging
     allocates the span cell plus the append of the caller's own
     args, typically 0-3 cells. *)
  let rest =
    match parent with
    | None -> t.node_tail
    | Some p ->
      if p = t.memo_parent then t.memo_tail
      else begin
        let tail = ("parent", Event.Int p) :: t.node_tail in
        t.memo_parent <- p;
        t.memo_tail <- tail;
        tail
      end
  in
  let prov = ("span", Event.Int span) :: rest in
  let tagged = match args with None -> prov | Some l -> l @ prov in
  if selfcost then
    Selfcost.add Selfcost.Provenance ~ops:1 ~host_ns:(Selfcost.now_ns () -. t0);
  Some tagged

let emit t ?dur_ns ?args ?span ?parent ~cat ~ph name =
  if t.enabled then begin
    let args = tag t ?span ?parent args in
    if Selfcost.enabled () then
      Selfcost.time Selfcost.Trace_emit (fun () ->
          Sink.emit t.events (Event.make ~ts:(t.clock ()) ?dur_ns ?args ~cat ~ph name))
    else Sink.emit t.events (Event.make ~ts:(t.clock ()) ?dur_ns ?args ~cat ~ph name)
  end

let instant t ~cat ?args ?span ?parent name = emit t ?args ?span ?parent ~cat ~ph:Event.Instant name

let counter t ~cat ?span name series =
  emit t
    ~args:(List.map (fun (k, v) -> (k, Event.Float v)) series)
    ?span ~cat ~ph:Event.Counter name

let complete t ~cat ~dur_ns ?args ?span ?parent name =
  emit t ~dur_ns ?args ?span ?parent ~cat ~ph:Event.Complete name

let span_begin t ~cat ?args ?span name = emit t ?args ?span ~cat ~ph:Event.Begin name
let span_end t ~cat name = emit t ~cat ~ph:Event.End name

let with_span t ~cat ?args name f =
  if not t.enabled then f ()
  else begin
    (* The span's own id becomes the causal parent of everything the
       body emits (listener checks, saves, nested hook fires); the
       End event is emitted inside the context so it ties into the
       same tree. *)
    let span = fresh_span t in
    span_begin t ~cat ?args ~span name;
    let prev = t.ctx.current in
    t.ctx.current <- Some span;
    Fun.protect
      ~finally:(fun () ->
        span_end t ~cat name;
        t.ctx.current <- prev)
      f
  end

let report t ?args name =
  (* Reports flow whether or not tracing is on; they only carry
     provenance args when it is, keeping untraced output byte-stable. *)
  let args =
    if t.enabled then tag t args
    else
      match t.node_id with
      | None -> args
      | Some id ->
        let nd = ("node", Event.Int id) in
        Some (match args with None -> [ nd ] | Some l -> l @ [ nd ])
  in
  Sink.emit t.reports (Event.make ~ts:(t.clock ()) ?args ~cat:"report" ~ph:Event.Instant name)
