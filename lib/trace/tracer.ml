type t = {
  clock : unit -> Gr_util.Time_ns.t;
  events : Sink.t;
  reports : Sink.t;
  metrics : Metrics.t;
  mutable enabled : bool;
  mutable node_id : int option;
}

let create ~clock ?(capacity = 65536) ?(report_capacity = 16384) ?overflow ?(enabled = false)
    ?node_id () =
  let metrics = Metrics.create () in
  Metrics.set_node_id metrics node_id;
  {
    clock;
    events = Sink.create ~capacity ?overflow ();
    reports = Sink.create ~capacity:report_capacity ?overflow ();
    metrics;
    enabled;
    node_id;
  }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let clock t = t.clock
let events t = t.events
let reports t = t.reports
let metrics t = t.metrics
let node_id t = t.node_id

let set_node_id t id =
  t.node_id <- id;
  Metrics.set_node_id t.metrics id

(* Fleet provenance: when the tracer belongs to a node, every event's
   args carry the node id, so merged fleet traces stay attributable.
   Standalone tracers (no node id) emit exactly what they always did. *)
let tag t args =
  match t.node_id with
  | None -> args
  | Some id -> (
    let nd = ("node", Event.Int id) in
    match args with None -> Some [ nd ] | Some l -> Some (l @ [ nd ]))

let emit t ?dur_ns ?args ~cat ~ph name =
  if t.enabled then
    Sink.emit t.events
      (Event.make ~ts:(t.clock ()) ?dur_ns ?args:(tag t args) ~cat ~ph name)

let instant t ~cat ?args name = emit t ?args ~cat ~ph:Event.Instant name

let counter t ~cat name series =
  emit t
    ~args:(List.map (fun (k, v) -> (k, Event.Float v)) series)
    ~cat ~ph:Event.Counter name

let complete t ~cat ~dur_ns ?args name = emit t ~dur_ns ?args ~cat ~ph:Event.Complete name
let span_begin t ~cat ?args name = emit t ?args ~cat ~ph:Event.Begin name
let span_end t ~cat name = emit t ~cat ~ph:Event.End name

let with_span t ~cat ?args name f =
  if not t.enabled then f ()
  else begin
    span_begin t ~cat ?args name;
    Fun.protect ~finally:(fun () -> span_end t ~cat name) f
  end

let report t ?args name =
  Sink.emit t.reports
    (Event.make ~ts:(t.clock ()) ?args:(tag t args) ~cat:"report" ~ph:Event.Instant name)
