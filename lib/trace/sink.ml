type overflow = Drop_newest | Overwrite_oldest

type t = {
  buf : Event.t option array;
  overflow : overflow;
  mutable head : int; (* index of oldest buffered event *)
  mutable len : int;
  mutable emitted : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) ?(overflow = Drop_newest) () =
  if capacity <= 0 then invalid_arg "Sink.create: capacity must be positive";
  { buf = Array.make capacity None; overflow; head = 0; len = 0; emitted = 0; dropped = 0 }

let capacity t = Array.length t.buf
let overflow t = t.overflow
let length t = t.len
let emitted t = t.emitted
let dropped t = t.dropped
let is_full t = t.len = capacity t

let emit t ev =
  t.emitted <- t.emitted + 1;
  let cap = capacity t in
  if t.len < cap then begin
    t.buf.((t.head + t.len) mod cap) <- Some ev;
    t.len <- t.len + 1
  end
  else begin
    match t.overflow with
    | Drop_newest -> t.dropped <- t.dropped + 1
    | Overwrite_oldest ->
      t.buf.(t.head) <- Some ev;
      t.head <- (t.head + 1) mod cap;
      t.dropped <- t.dropped + 1
  end

let iter f t =
  let cap = capacity t in
  for i = 0 to t.len - 1 do
    match t.buf.((t.head + i) mod cap) with Some ev -> f ev | None -> assert false
  done

let to_list t =
  let acc = ref [] in
  iter (fun ev -> acc := ev :: !acc) t;
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (capacity t) None;
  t.head <- 0;
  t.len <- 0
