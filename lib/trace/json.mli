(** Minimal dependency-free JSON.

    The trace exporters (Chrome [trace_event] files), the benchmark
    harness's [--json] output and the round-trip tests all need JSON;
    the container deliberately has no JSON package, so this module
    provides the small subset we use: a document tree, a compact
    deterministic printer, and a recursive-descent parser.

    Printing is deterministic — object fields keep their construction
    order and floats print as integers when exactly integral, else
    with ["%.17g"] (shortest round-trippable) — so two identical
    traces serialize to bit-identical strings. Non-finite numbers
    (nan/inf) are not representable in JSON and print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace) serialization. *)

val pp : Format.formatter -> t -> unit
(** Same bytes as {!to_string}. *)

val parse : string -> (t, string) result
(** Whole-string parse; trailing garbage is an error. Accepts the
    standard escapes including [\uXXXX] (decoded to UTF-8). *)

val parse_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

(* Accessors, all total. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_list : t -> t list
(** The elements of an [Arr]; [[]] on anything else. *)

val float_value : t -> float option
val int_value : t -> int option
val string_value : t -> string option
val bool_value : t -> bool option

val equal : t -> t -> bool
