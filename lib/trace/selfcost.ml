type subsystem = Trace_emit | Provenance | Metrics_record | Store_merge | Check

let all = [ Trace_emit; Provenance; Metrics_record; Store_merge; Check ]

let name = function
  | Trace_emit -> "trace_emit"
  | Provenance -> "provenance"
  | Metrics_record -> "metrics_record"
  | Store_merge -> "store_merge"
  | Check -> "check"

let index = function
  | Trace_emit -> 0
  | Provenance -> 1
  | Metrics_record -> 2
  | Store_merge -> 3
  | Check -> 4

let n = 5
let on = ref false
let op_counts = Array.make n 0
let ns_totals = Array.make n 0.

let enabled () = !on
let set_enabled b = on := b

let reset () =
  Array.fill op_counts 0 n 0;
  Array.fill ns_totals 0 n 0.

let ops s = op_counts.(index s)
let host_ns s = ns_totals.(index s)

let add s ~ops ~host_ns =
  if !on then begin
    let i = index s in
    op_counts.(i) <- op_counts.(i) + ops;
    ns_totals.(i) <- ns_totals.(i) +. host_ns
  end

let now_ns () = Unix.gettimeofday () *. 1e9

let time s f =
  if not !on then f ()
  else begin
    let t0 = now_ns () in
    let r = f () in
    let i = index s in
    op_counts.(i) <- op_counts.(i) + 1;
    ns_totals.(i) <- ns_totals.(i) +. (now_ns () -. t0);
    r
  end
