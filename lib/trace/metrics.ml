open Gr_util

type monitor = {
  name : string;
  mutable checks : int;
  mutable violations : int;
  mutable fires : int;
  mutable vm_cost_ns : float;
  mutable vm_insts : int;
  mutable samples_scanned : int;
  latency : Stats.Welford.t;
  latency_p50 : Stats.P2.t;
  latency_p90 : Stats.P2.t;
  latency_p99 : Stats.P2.t;
  latency_hist : Stats.Histogram.t;
}

type t = { table : (string, monitor) Hashtbl.t; mutable node_id : int option }

let create () = { table = Hashtbl.create 16; node_id = None }
let node_id t = t.node_id
let set_node_id t id = t.node_id <- id

(* Log-scale histogram over check costs: 0.1ns .. 10ms. *)
let hist_lo = -1.
let hist_hi = 7.
let hist_bins = 64

let monitor t name =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
    let m =
      {
        name;
        checks = 0;
        violations = 0;
        fires = 0;
        vm_cost_ns = 0.;
        vm_insts = 0;
        samples_scanned = 0;
        latency = Stats.Welford.create ();
        latency_p50 = Stats.P2.create ~q:0.5;
        latency_p90 = Stats.P2.create ~q:0.9;
        latency_p99 = Stats.P2.create ~q:0.99;
        latency_hist = Stats.Histogram.create ~lo:hist_lo ~hi:hist_hi ~bins:hist_bins;
      }
    in
    Hashtbl.add t.table name m;
    m

let find t name = Hashtbl.find_opt t.table name

let monitors t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.table []
  |> List.sort (fun a b -> String.compare a.name b.name)

let record_check m ~cost_ns ~insts ~samples ~violated =
  m.checks <- m.checks + 1;
  if violated then m.violations <- m.violations + 1;
  m.vm_cost_ns <- m.vm_cost_ns +. cost_ns;
  m.vm_insts <- m.vm_insts + insts;
  m.samples_scanned <- m.samples_scanned + samples;
  Stats.Welford.add m.latency cost_ns;
  Stats.P2.add m.latency_p50 cost_ns;
  Stats.P2.add m.latency_p90 cost_ns;
  Stats.P2.add m.latency_p99 cost_ns;
  (* Guard log10 against zero-cost checks (empty rules). *)
  Stats.Histogram.add m.latency_hist (Float.log10 (Float.max cost_ns 0.1))

let record_fire m = m.fires <- m.fires + 1
let record_action_cost m ~cost_ns = m.vm_cost_ns <- m.vm_cost_ns +. cost_ns

let latency_quantile m q =
  if m.checks = 0 then nan
  else if q = 0.5 then Stats.P2.quantile m.latency_p50
  else if q = 0.9 then Stats.P2.quantile m.latency_p90
  else if q = 0.99 then Stats.P2.quantile m.latency_p99
  else Float.pow 10. (Stats.Histogram.quantile m.latency_hist q)

let num x : Json.t = if Float.is_finite x then Num x else Null

let monitor_to_json m : Json.t =
  Json.Obj
    [
      ("name", Str m.name);
      ("checks", Num (float_of_int m.checks));
      ("violations", Num (float_of_int m.violations));
      ("fires", Num (float_of_int m.fires));
      ("vm_cost_ns", num m.vm_cost_ns);
      ("vm_insts", Num (float_of_int m.vm_insts));
      ("samples_scanned", Num (float_of_int m.samples_scanned));
      ( "latency_ns",
        Obj
          [
            ("mean", num (Stats.Welford.mean m.latency));
            ("min", if m.checks = 0 then Null else num (Stats.Welford.min m.latency));
            ("max", if m.checks = 0 then Null else num (Stats.Welford.max m.latency));
            ("p50", num (latency_quantile m 0.5));
            ("p90", num (latency_quantile m 0.9));
            ("p99", num (latency_quantile m 0.99));
          ] );
    ]

let to_json t : Json.t =
  let monitors_field = ("monitors", Json.Arr (List.map monitor_to_json (monitors t))) in
  match t.node_id with
  | None -> Obj [ monitors_field ]
  | Some id -> Obj [ ("node", Num (float_of_int id)); monitors_field ]

(* ---- OpenMetrics / Prometheus text rendering ---- *)

let om_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let om_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (om_escape v)) labels)
    ^ "}"

let om_num x =
  if Float.is_nan x then "NaN"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

(* Monitor-scoped label set: node label only on fleet registries, so
   single-node output has no spurious label dimension. *)
let mlabels t m =
  ("monitor", m.name)
  :: (match t.node_id with None -> [] | Some id -> [ ("node", string_of_int id) ])

let counter_families =
  [
    ("guardrail_checks", "Rule checks executed.", fun m -> float_of_int m.checks);
    ("guardrail_violations", "Checks whose rule evaluated unhealthy.", fun m -> float_of_int m.violations);
    ("guardrail_fires", "Action firings (cooldown-gated).", fun m -> float_of_int m.fires);
    ("guardrail_vm_cost_ns", "Estimated VM nanoseconds spent in rules and actions.", fun m -> m.vm_cost_ns);
    ("guardrail_vm_insts", "VM instructions executed.", fun m -> float_of_int m.vm_insts);
    ("guardrail_samples_scanned", "Store samples scanned by aggregates.", fun m -> float_of_int m.samples_scanned);
  ]

(* Families for a set of registries (one per deployment; a fleet
   passes control + every node). With more than one registry, each
   counter family also gets merged rollup rows — summed across nodes,
   no node label — so fleet dashboards can consume one series per
   monitor without PromQL re-aggregation. No trailing EOF: callers
   compose further families ({!Export}). *)
let openmetrics_into buf ts =
  let mons t = monitors t in
  let family (name, help, value) =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
    List.iter
      (fun t ->
        List.iter
          (fun m ->
            Buffer.add_string buf
              (Printf.sprintf "%s_total%s %s\n" name (om_labels (mlabels t m)) (om_num (value m))))
          (mons t))
      ts;
    if List.length ts > 1 then begin
      let merged = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun t ->
          List.iter
            (fun m ->
              (match Hashtbl.find_opt merged m.name with
              | None -> order := m.name :: !order
              | Some _ -> ());
              Hashtbl.replace merged m.name
                (value m +. Option.value ~default:0. (Hashtbl.find_opt merged m.name)))
            (mons t))
        ts;
      List.iter
        (fun name_ ->
          Buffer.add_string buf
            (Printf.sprintf "%s_total%s %s\n" name
               (om_labels [ ("monitor", name_); ("scope", "fleet") ])
               (om_num (Hashtbl.find merged name_))))
        (List.rev !order)
    end
  in
  List.iter family counter_families;
  (* Check latency as a summary: streaming quantiles plus count/sum. *)
  let name = "guardrail_check_latency_ns" in
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s Per-check VM cost distribution (estimated ns).\n" name);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" name);
  List.iter
    (fun t ->
      List.iter
        (fun m ->
          let base = mlabels t m in
          List.iter
            (fun q ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name
                   (om_labels (base @ [ ("quantile", q) ]))
                   (om_num (latency_quantile m (float_of_string q)))))
            [ "0.5"; "0.9"; "0.99" ];
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (om_labels base) m.checks);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (om_labels base) (om_num m.vm_cost_ns)))
        (mons t))
    ts

let to_openmetrics ts =
  let buf = Buffer.create 4096 in
  openmetrics_into buf ts;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let pp fmt t =
  Format.fprintf fmt "%-28s %8s %10s %7s %12s %10s %10s %10s@\n" "monitor" "checks"
    "violations" "fires" "vm cost" "p50" "p90" "p99";
  List.iter
    (fun m ->
      Format.fprintf fmt "%-28s %8d %10d %7d %10.0fns %8.1fns %8.1fns %8.1fns@\n" m.name
        m.checks m.violations m.fires m.vm_cost_ns (latency_quantile m 0.5)
        (latency_quantile m 0.9) (latency_quantile m 0.99))
    (monitors t)
