(** Decision provenance: reconstructing causal chains from traces.

    Every traced event carries a [span] id and, when something caused
    it, a [parent] span id ({!Tracer}). This module rebuilds the
    resulting forest — each sim dispatch roots a tree of hook
    firings, rule checks, actions, reports and store traffic — and
    answers the operator's question about any decision: {e who fired,
    triggered by what, reading which values, written by whom}.

    Works over live sink contents ({!of_events}) or a Chrome
    trace_event file written earlier ({!load}), which is what the
    [grc explain] subcommand drives. *)

type node = {
  event : Event.t;
  index : int;  (** position in the input stream (stable tiebreak) *)
  span : int option;
  parent : int option;
  mutable children : node list;  (** emission order *)
}

type t

val of_events : Event.t list -> t
val of_chrome_string : string -> (t, string) result
val load : string -> (t, string) result
(** Read and parse a Chrome trace_event file, or a JSONL audit log
    written by {!Audit_log} (one event object per line) — both carry
    the same (span, parent) provenance encoding. *)

val size : t -> int
val nodes : t -> node list
(** All nodes, input order. *)

val orphans : t -> node list
(** Nodes whose [parent] id resolves to no recorded span — events
    that fell out of the trace window or were emitted without
    provenance. An explainable trace has none. *)

val find_span : t -> int -> node option
val roots : t -> node list
(** Parentless nodes (sim dispatches, pre-run installs), input order. *)

val reports : t -> node list
(** REPORT events (category ["report"]), input order — index [N] is
    what [grc explain --report N] selects. *)

val actions : ?name:string -> t -> node list
(** Action instants (category ["action"]) and control-plane decisions
    (category ["audit"]: ["spec.push"], ["rollout.promote"], ...),
    optionally filtered by event name. *)

val monitor_decisions : t -> string -> node list
(** Reports and actions attributed to the named monitor. *)

val ancestors : t -> node -> node list
(** Causal chain above a node, root first, excluding the node. *)

(** One explained decision. [chain] is the ancestor path root-first
    ending at the target; [decision] is the rule check that fired it
    (when one did); [effects] are everything that decision caused
    (the target's siblings and their descendants); [inputs] trace
    each store key the rule read back through the save that produced
    its value — recursively, so a derived rate unwinds to the hook
    traffic that fed it. *)
type explanation = {
  target : node;
  chain : node list;
  decision : node option;
  rule : string option;  (** disassembly carried by the REPORT *)
  effects : node list;
  inputs : input list;
}

and input = {
  key : string;
  value : float option;  (** the value the check read (snapshot) *)
  writer : node option;  (** last save of the key before the decision *)
  via : explanation option;  (** how that write itself came to be *)
}

val explain : ?max_depth:int -> t -> node -> explanation
(** [max_depth] (default 4) bounds the recursive input unwind. *)

val pp_node : Format.formatter -> node -> unit
val pp_explanation : Format.formatter -> explanation -> unit
(** Human rendering: the chain, the decision's rule and effects, and
    the recursive input provenance, indented. *)

val explanation_to_json : explanation -> Json.t
