(** Exporters: Chrome [trace_event] JSON, human-readable dumps, and a
    metrics summary — plus the inverse mapping used by round-trip
    tests.

    The Chrome format is the JSON array flavour documented in the
    [trace_event] spec: [{"traceEvents": [...], "displayTimeUnit":
    "ns"}], one object per event with [ph] one of B/E/X/i/C,
    timestamps in microseconds. Open the file at [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}. *)

val chrome_of_events : Event.t list -> Json.t

val chrome : Tracer.t -> Json.t
(** Merges the tracer's event and report sinks, sorted by timestamp
    (stable: same-timestamp events keep event-sink-before-report
    order). *)

val chrome_string : Tracer.t -> string

val write_chrome : path:string -> Tracer.t -> unit
(** Writes {!chrome_string} plus a trailing newline. *)

val events_of_chrome : Json.t -> (Event.t list, string) result
(** Inverse of {!chrome_of_events}: recovers the event list from a
    Chrome trace document ([pid]/[tid] are ignored). *)

val events_of_chrome_string : string -> (Event.t list, string) result

val pp_events : Format.formatter -> Event.t list -> unit
(** Human-readable dump, one event per line. *)

val pp_summary : Format.formatter -> Tracer.t -> unit
(** Sink accounting (buffered/emitted/dropped for both channels)
    followed by the per-monitor metrics table. *)
