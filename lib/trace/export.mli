(** Exporters: Chrome [trace_event] JSON, human-readable dumps, and a
    metrics summary — plus the inverse mapping used by round-trip
    tests.

    The Chrome format is the JSON array flavour documented in the
    [trace_event] spec: [{"traceEvents": [...], "displayTimeUnit":
    "ns"}], one object per event with [ph] one of B/E/X/i/C,
    timestamps in microseconds. Open the file at [chrome://tracing]
    or {{:https://ui.perfetto.dev}Perfetto}. *)

val json_of_event : Event.t -> Json.t
(** One event as a Chrome trace object ([ts] in microseconds). *)

val chrome_of_events : Event.t list -> Json.t

val chrome : Tracer.t -> Json.t
(** Merges the tracer's event and report sinks, sorted by timestamp
    (stable: same-timestamp events keep event-sink-before-report
    order). *)

val chrome_string : Tracer.t -> string

val write_chrome : path:string -> Tracer.t -> unit
(** Writes {!chrome_string} plus a trailing newline. *)

val events_of_chrome : Json.t -> (Event.t list, string) result
(** Inverse of {!chrome_of_events}: recovers the event list from a
    Chrome trace document ([pid]/[tid] are ignored). *)

val events_of_chrome_string : string -> (Event.t list, string) result

val event_of_json : Json.t -> (Event.t, string) result
(** Inverse of {!json_of_event}, for one event object. *)

val events_of_jsonl_string : string -> (Event.t list, string) result
(** One Chrome trace object per line — the append-only audit log's
    wire format ({!Audit_log}). Blank lines are skipped; the error
    carries the offending 1-based line number. *)

val events_of_any_string : string -> (Event.t list, string) result
(** Accepts either a whole Chrome trace document or JSONL —
    [grc explain] loads both through this. *)

val pp_events : Format.formatter -> Event.t list -> unit
(** Human-readable dump, one event per line. *)

val pp_summary : Format.formatter -> Tracer.t -> unit
(** Sink accounting (buffered/emitted/dropped for both channels)
    followed by the per-monitor metrics table. *)

val openmetrics_of_tracers : Tracer.t list -> string
(** Complete OpenMetrics exposition for a set of tracers (a fleet
    passes control first, then each node): the per-monitor families
    ({!Metrics.openmetrics_into}, including fleet rollup rows when
    more than one tracer is given), sink throughput/drop counters per
    channel, and — when {!Selfcost.enabled} — the observability
    self-overhead counters. Terminated with [# EOF\n]. *)

val openmetrics : Tracer.t -> string
(** [openmetrics_of_tracers [t]]. *)

val write_openmetrics : path:string -> Tracer.t list -> unit
