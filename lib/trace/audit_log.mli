(** Append-only audit log: one Chrome trace-event object per line
    (JSONL).

    The control plane's decision record — spec pushes, admission
    verdicts, canary/promote/rollback transitions — needs durability
    a bounded ring sink can't give: it must survive the process,
    never wrap, and stay readable while the daemon is live. Each
    {!append} writes one {!Export.json_of_event} line and flushes, so
    the file is [tail -f]-able, byte-diffable against goldens, and
    loadable by [grc explain] ({!Export.events_of_any_string}).

    Events reuse {!Event.t} wholesale: timestamps are simulated time
    and [span]/[parent] args link the decision chain exactly like the
    live tracer's provenance edges, so {!Provenance} walks an audit
    log the same way it walks a trace. *)

type t

val create : path:string -> t
(** Opens (creating if needed) in append mode: an existing log is
    extended, never truncated — append-only is the format's
    contract, not just a habit. *)

val path : t -> string

val appended : t -> int
(** Events appended through this handle (not lines already in the
    file). *)

val append : t -> Event.t -> unit
(** One JSONL line, flushed before returning.
    @raise Invalid_argument after {!close}. *)

val close : t -> unit
(** Idempotent. *)

val read : string -> (Event.t list, string) result
(** Load a log back as events ({!Export.events_of_jsonl_string}). *)
