(* Rebuilding decision trees from flat traces.

   Tracing writes a forest encoded as (span, parent) args on every
   event; this module inverts that encoding. Nothing here touches the
   live tracer — it consumes event lists (from a sink or a parsed
   Chrome file), so it can run offline over traces written by another
   process, which is exactly what [grc explain] does. *)

type node = {
  event : Event.t;
  index : int;
  span : int option;
  parent : int option;
  mutable children : node list;
}

type t = {
  all : node array;
  by_span : (int, node) Hashtbl.t;
  orphaned : node list; (* parent id that resolves to no span; input order *)
}

let arg ev k = List.assoc_opt k ev.Event.args

let arg_int ev k =
  match arg ev k with
  | Some (Event.Int i) -> Some i
  | Some (Event.Float f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let arg_str ev k = match arg ev k with Some (Event.Str s) -> Some s | _ -> None
let arg_float ev k =
  match arg ev k with
  | Some (Event.Float f) -> Some f
  | Some (Event.Int i) -> Some (float_of_int i)
  | _ -> None

let of_events events =
  let all =
    Array.of_list
      (List.mapi
         (fun index event ->
           {
             event;
             index;
             span = arg_int event "span";
             parent = arg_int event "parent";
             children = [];
           })
         events)
  in
  let by_span = Hashtbl.create (Array.length all) in
  Array.iter
    (fun n -> match n.span with Some s -> Hashtbl.replace by_span s n | None -> ())
    all;
  let orphaned = ref [] in
  (* Build children lists in input (= emission) order. *)
  Array.iter
    (fun n ->
      match n.parent with
      | None -> ()
      | Some p -> (
        match Hashtbl.find_opt by_span p with
        | Some parent when parent != n -> parent.children <- n :: parent.children
        | Some _ -> ()
        | None -> orphaned := n :: !orphaned))
    all;
  Array.iter (fun n -> n.children <- List.rev n.children) all;
  { all; by_span; orphaned = List.rev !orphaned }

let of_chrome_string s =
  match Export.events_of_chrome_string s with
  | Ok evs -> Ok (of_events evs)
  | Error e -> Error e

let load path =
  (* Accept both a Chrome trace document (grc run --trace) and the
     serving daemon's JSONL audit log — grc explain walks either. *)
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Result.map of_events (Export.events_of_any_string s)
  | exception Sys_error e -> Error e

let size t = Array.length t.all
let nodes t = Array.to_list t.all
let orphans t = t.orphaned
let find_span t s = Hashtbl.find_opt t.by_span s

let roots t =
  Array.to_list t.all |> List.filter (fun n -> n.parent = None)

let reports t =
  Array.to_list t.all |> List.filter (fun n -> n.event.Event.cat = "report")

let actions ?name t =
  (* "audit" counts as an action category: control-plane decisions
     (spec.push, rollout.promote, ...) are explained with the same
     machinery as data-plane REPLACE/SAVE firings. *)
  Array.to_list t.all
  |> List.filter (fun n ->
         (n.event.Event.cat = "action" || n.event.Event.cat = "audit")
         && match name with None -> true | Some nm -> n.event.Event.name = nm)

let monitor_of n =
  match arg_str n.event "monitor" with
  | Some m -> Some m
  | None -> (
    (* Reports and checks are named after their monitor. *)
    match n.event.Event.cat with
    | "report" | "check" -> Some n.event.Event.name
    | _ -> None)

let monitor_decisions t name =
  Array.to_list t.all
  |> List.filter (fun n ->
         (match n.event.Event.cat with "report" | "action" -> true | _ -> false)
         && monitor_of n = Some name)

let ancestors t n =
  let rec up acc n =
    match n.parent with
    | None -> acc
    | Some p -> (
      match Hashtbl.find_opt t.by_span p with
      | None -> acc
      | Some parent -> up (parent :: acc) parent)
  in
  up [] n

type explanation = {
  target : node;
  chain : node list;
  decision : node option;
  rule : string option;
  effects : node list;
  inputs : input list;
}

and input = {
  key : string;
  value : float option;
  writer : node option;
  via : explanation option;
}

(* The store keys a decision read: REPORT events carry the rule's
   store snapshot as ("key:<k>", Float v) args. *)
let snapshot_keys n =
  List.filter_map
    (fun (k, v) ->
      if String.length k > 4 && String.sub k 0 4 = "key:" then
        let key = String.sub k 4 (String.length k - 4) in
        match v with Event.Float f -> Some (key, Some f) | Event.Int i -> Some (key, Some (float_of_int i)) | _ -> Some (key, None)
      else None)
    n.event.Event.args

(* Latest write of [key] the reader could have observed. [before] is
   a span id, not a file position: span ids are allocated in true
   emission order, whereas the merged Chrome file interleaves the
   report channel after the event channel at equal timestamps, so
   position would attribute a later same-timestamp write to an
   earlier read. *)
let last_write t ~key ~before =
  let name = "store:" ^ key in
  Array.fold_left
    (fun best n ->
      match n.span with
      | Some s
        when s < before && n.event.Event.name = name && n.event.Event.ph = Event.Counter -> (
        match best with
        | Some b when b.span >= Some s -> best
        | _ -> Some n)
      | _ -> best)
    None t.all

(* Aggregate reads that fed a derived write: when a deriver computes
   e.g. AVG(false_submit) and saves the result, the store emits an
   "agg:AVG" instant under the same causal parent just before the
   save counter. Those siblings are the data-flow edge from the
   derived key back to its source keys. *)
let agg_sources t write =
  match write.parent with
  | None -> []
  | Some p -> (
    match Hashtbl.find_opt t.by_span p with
    | None -> []
    | Some parent ->
      parent.children
      |> List.filter (fun c ->
             c.index < write.index
             && String.length c.event.Event.name > 4
             && String.sub c.event.Event.name 0 4 = "agg:")
      |> List.filter_map (fun c -> arg_str c.event "key"))

let rec explain_write t ~max_depth ~visited write =
  let chain = ancestors t write @ [ write ] in
  let keys = if max_depth <= 0 then [] else agg_sources t write in
  let inputs =
    List.filter_map
      (fun key ->
        if List.mem key visited then None
        else
          let writer =
            match write.span with
            | None -> None
            | Some before -> last_write t ~key ~before
          in
          let via =
            match writer with
            | Some w when max_depth > 1 ->
              Some (explain_write t ~max_depth:(max_depth - 1) ~visited:(key :: visited) w)
            | _ -> None
          in
          let value =
            match writer with Some w -> arg_float w.event "value" | None -> None
          in
          Some { key; value; writer; via })
      keys
  in
  (* A store write is not itself a rule decision: no rule/effects. *)
  { target = write; chain; decision = None; rule = None; effects = write.children; inputs }

let explain ?(max_depth = 4) t target =
  let chain = ancestors t target @ [ target ] in
  (* The decision is the nearest ancestor rule check (usually the
     direct parent); its children are the siblings the same decision
     fired — actions, the REPORT itself, cascaded store traffic. *)
  let decision =
    List.find_opt (fun n -> n.event.Event.cat = "check") (List.rev chain)
  in
  let rule =
    match arg_str target.event "rule" with
    | Some r -> Some r
    | None -> (
      match decision with
      | Some d ->
        d.children
        |> List.find_map (fun c -> arg_str c.event "rule")
      | None -> None)
  in
  let effects =
    match decision with
    | Some d -> List.filter (fun c -> c != target) d.children
    | None -> List.filter (fun c -> c != target) target.children
  in
  (* Inputs come from the REPORT snapshot when the target (or a
     sibling REPORT) carries one. *)
  let snapshot =
    match snapshot_keys target with
    | [] -> (
      match decision with
      | Some d -> (
        match List.find_opt (fun c -> c.event.Event.cat = "report") d.children with
        | Some r -> snapshot_keys r
        | None -> [])
      | None -> [])
    | s -> s
  in
  let inputs =
    List.map
      (fun (key, value) ->
        let writer =
          match target.span with
          | None -> None
          | Some before -> last_write t ~key ~before
        in
        let via =
          match writer with
          | Some w when max_depth > 0 ->
            Some (explain_write t ~max_depth ~visited:[ key ] w)
          | _ -> None
        in
        { key; value; writer; via })
      snapshot
  in
  { target; chain; decision; rule; effects; inputs }

(* Rendering *)

let pp_ts ppf ts = Format.fprintf ppf "%.6fs" (float_of_int ts /. 1e9)

let pp_node ppf n =
  let ev = n.event in
  Format.fprintf ppf "[%a] %s %s" pp_ts ev.Event.ts ev.Event.cat ev.Event.name;
  (match n.span with Some s -> Format.fprintf ppf " (span %d)" s | None -> ());
  (match arg_int ev "node" with
  | Some id -> Format.fprintf ppf " @@node%d" id
  | None -> ());
  let interesting =
    List.filter
      (fun (k, _) -> not (List.mem k [ "span"; "parent"; "node"; "rule" ]))
      ev.Event.args
  in
  match interesting with
  | [] -> ()
  | l ->
    Format.fprintf ppf " {%s}"
      (String.concat ", "
         (List.map
            (fun (k, v) ->
              Printf.sprintf "%s=%s" k
                (match v with
                | Event.Float f -> Printf.sprintf "%g" f
                | Event.Int i -> string_of_int i
                | Event.Str s -> s
                | Event.Bool b -> string_of_bool b))
            l))

let pp_chain ~indent ppf chain =
  List.iteri
    (fun i n ->
      Format.fprintf ppf "%s%s@[<h>%a@]@," indent
        (if i = 0 then "" else String.make ((i - 1) * 2) ' ' ^ "`- ")
        pp_node n)
    chain

let rec pp_inputs ~depth ppf inputs =
  let pad = String.make (depth * 4) ' ' in
  List.iter
    (fun { key; value; writer; via } ->
      Format.fprintf ppf "%s  %s%s@," pad key
        (match value with Some v -> Printf.sprintf " = %g" v | None -> "");
      (match writer with
      | None -> Format.fprintf ppf "%s    (no recorded write)@," pad
      | Some w -> Format.fprintf ppf "%s    written by @[<h>%a@]@," pad pp_node w);
      match via with
      | None -> ()
      | Some e ->
        (match e.chain with
        | [] | [ _ ] -> ()
        | chain ->
          Format.fprintf ppf "%s    caused by:@," pad;
          pp_chain ~indent:(pad ^ "      ") ppf (List.filteri (fun i _ -> i < List.length chain - 1) chain));
        if e.inputs <> [] then begin
          Format.fprintf ppf "%s    derived from:@," pad;
          pp_inputs ~depth:(depth + 1) ppf e.inputs
        end)
    inputs

let pp_explanation ppf e =
  Format.pp_open_vbox ppf 0;
  Format.fprintf ppf "target: @[<h>%a@]@," pp_node e.target;
  (match e.rule with Some r -> Format.fprintf ppf "rule: %s@," r | None -> ());
  Format.fprintf ppf "causal chain (root first):@,";
  pp_chain ~indent:"  " ppf e.chain;
  (match e.effects with
  | [] -> ()
  | effects ->
    Format.fprintf ppf "also caused by this decision:@,";
    List.iter (fun n -> Format.fprintf ppf "  @[<h>%a@]@," pp_node n) effects);
  (match e.inputs with
  | [] -> ()
  | inputs ->
    Format.fprintf ppf "inputs read:@,";
    pp_inputs ~depth:0 ppf inputs);
  Format.pp_close_box ppf ()

let node_to_json n = Export.json_of_event n.event

let rec explanation_to_json e =
  Json.Obj
    ([
       ("target", node_to_json e.target);
       ("chain", Json.Arr (List.map node_to_json e.chain));
     ]
    @ (match e.decision with Some d -> [ ("decision", node_to_json d) ] | None -> [])
    @ (match e.rule with Some r -> [ ("rule", Json.Str r) ] | None -> [])
    @ [
        ("effects", Json.Arr (List.map node_to_json e.effects));
        ("inputs", Json.Arr (List.map input_to_json e.inputs));
      ])

and input_to_json { key; value; writer; via } =
  Json.Obj
    ([ ("key", Json.Str key) ]
    @ (match value with Some v -> [ ("value", Json.Num v) ] | None -> [])
    @ (match writer with Some w -> [ ("writer", node_to_json w) ] | None -> [])
    @ match via with Some e -> [ ("via", explanation_to_json e) ] | None -> [])
