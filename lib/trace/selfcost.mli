(** Observability self-overhead accounting.

    The tracing plane claims to be cheap; this module is where that
    claim is measured rather than estimated. Each subsystem of the
    observability stack accumulates an operation count and {e real
    host time} (wall-clock nanoseconds, not the VM's estimated-ns
    currency) spent doing its own bookkeeping:

    - [Trace_emit] — constructing events and pushing them into sinks;
    - [Provenance] — span-id allocation and causal-context upkeep;
    - [Metrics_record] — the per-check metrics registry updates;
    - [Store_merge] — folding per-shard streaming aggregate state on
      fleet-tier reads;
    - [Check] — the VM run itself, the denominator the others are
      compared against.

    Accounting is process-global and {b off by default}: every
    instrumented site guards on {!enabled}, so an untraced,
    unmeasured run pays a single branch per site. The counters never
    feed back into traces or simulated time, so enabling them cannot
    perturb determinism — only the host-time numbers themselves are
    machine-dependent. [grc run --metrics] and [bench -- obs] switch
    them on and surface the totals as OpenMetrics families. *)

type subsystem = Trace_emit | Provenance | Metrics_record | Store_merge | Check

val all : subsystem list
val name : subsystem -> string
(** Stable lower-snake label used in metrics output. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every counter (accounting stays enabled/disabled as is). *)

val ops : subsystem -> int
val host_ns : subsystem -> float

val add : subsystem -> ops:int -> host_ns:float -> unit
(** Record a batch measured externally (the [bench -- obs]
    calibration loops use this). No-op when disabled. *)

val now_ns : unit -> float
(** Host wall clock in nanoseconds; monotonic enough for deltas. *)

val time : subsystem -> (unit -> 'a) -> 'a
(** Run the thunk, charging its wall-clock duration and one op to the
    subsystem; just the thunk when disabled. *)
