open Gr_util

type phase = Begin | End | Complete | Instant | Counter

type arg = Float of float | Int of int | Str of string | Bool of bool

type t = {
  ts : Time_ns.t;
  dur_ns : float;
  cat : string;
  name : string;
  ph : phase;
  args : (string * arg) list;
}

let make ~ts ?(dur_ns = 0.) ?(args = []) ~cat ~ph name =
  { ts; dur_ns; cat; name; ph; args }

let phase_to_string = function
  | Begin -> "B"
  | End -> "E"
  | Complete -> "X"
  | Instant -> "i"
  | Counter -> "C"

let phase_of_string = function
  | "B" -> Some Begin
  | "E" -> Some End
  | "X" -> Some Complete
  | "i" | "I" -> Some Instant
  | "C" -> Some Counter
  | _ -> None

(* Ints and floats both serialize as JSON numbers, so equality treats
   them as numerically equivalent — Float 2. round-trips as Int 2. *)
let arg_equal a b =
  match (a, b) with
  | (Float _ | Int _), (Float _ | Int _) ->
    let num = function Float x -> x | Int i -> float_of_int i | _ -> assert false in
    num a = num b
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | _ -> false

let equal a b =
  a.ts = b.ts && a.dur_ns = b.dur_ns && String.equal a.cat b.cat
  && String.equal a.name b.name && a.ph = b.ph
  && List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && arg_equal v1 v2) a.args b.args

let pp_arg fmt = function
  | Float x -> Format.fprintf fmt "%.6g" x
  | Int i -> Format.pp_print_int fmt i
  | Str s -> Format.pp_print_string fmt s
  | Bool b -> Format.pp_print_bool fmt b

let pp fmt t =
  Format.fprintf fmt "[%a] %-6s %s %s" Time_ns.pp t.ts t.cat (phase_to_string t.ph) t.name;
  if t.ph = Complete then Format.fprintf fmt " (dur %.0fns)" t.dur_ns;
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_arg v) t.args
