(* Append-only audit log: one Chrome trace-event object per line.

   The control plane's decision record (spec pushes, admission
   verdicts, canary/promote/rollback transitions) has different
   durability needs than the debug trace: it must survive the
   process, never wrap, and stay readable while the daemon is live.
   So instead of a bounded ring sink it is a flat JSONL file, opened
   in append mode and flushed after every event — `tail -f`-able,
   byte-diffable against goldens, and loadable by grc explain (the
   JSONL side of Export.events_of_any_string).

   Events reuse Event.t wholesale: timestamps are simulated time,
   span/parent args link the decision chain exactly like the live
   tracer's provenance edges, so Provenance walks an audit log the
   same way it walks a trace. *)

type t = { path : string; oc : out_channel; mutable appended : int; mutable closed : bool }

let create ~path =
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path in
  { path; oc; appended = 0; closed = false }

let path t = t.path
let appended t = t.appended

let append t event =
  if t.closed then invalid_arg "Audit_log.append: log is closed";
  output_string t.oc (Json.to_string (Export.json_of_event event));
  output_char t.oc '\n';
  flush t.oc;
  t.appended <- t.appended + 1

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.oc
  end

let read path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    Export.events_of_jsonl_string s
