(** The tracer: the single handle instrumented subsystems emit into.

    A tracer owns two sinks, a metrics registry and a causal span
    context:

    - [events] — the debug/profiling channel (sim dispatch, hook
      entry/exit, rule checks, store traffic). Emission is gated on
      {!enabled} and costs one branch when disabled, so always-on
      instrumentation sites are free in untraced runs.
    - [reports] — the data-plane channel carrying the REPORT action's
      structured violation events (the paper's eBPF-ringbuf stream to
      userspace). This channel is {e always} on: REPORTs are product
      behavior, not debugging, and the runtime's violation log is a
      view over it. It is still bounded with drop accounting.
    - [metrics] — the per-monitor registry ({!Metrics}), also always
      on (O(1) per check).
    - the span context — a monotonic span-id allocator plus the
      "current cause" register. When tracing is enabled every
      recorded event carries its own [span] id and, when emitted
      inside a causal context, the [parent] span id of the event
      that caused it, so a trace is a forest of decision trees that
      {!Provenance} can reconstruct. Ids are allocated in emission
      order on the sim clock, so they are deterministic under a
      fixed seed.

    Timestamps come from the [clock] the tracer was created with —
    in every deployment that is the simulated kernel clock, which is
    why traces are deterministic under a fixed seed. *)

type t

type span_ctx
(** The shared provenance state: a span-id allocator and the current
    causal parent. One per standalone deployment; shared across every
    tracer of a fleet (control + nodes) so causality crosses node
    boundaries. *)

val create :
  clock:(unit -> Gr_util.Time_ns.t) ->
  ?capacity:int ->
  ?report_capacity:int ->
  ?overflow:Sink.overflow ->
  ?enabled:bool ->
  ?node_id:int ->
  unit ->
  t
(** [capacity] (default 65536) sizes the event sink,
    [report_capacity] (default 16384) the report sink. [enabled]
    defaults to [false]: metrics and reports flow, trace events do
    not. [node_id], when given, tags every emitted event and report
    with a trailing [("node", Int id)] argument and stamps the
    metrics registry — fleet runs use it so merged traces stay
    attributable to the shard that produced them. Without it the
    output is byte-identical to what single-node deployments always
    emitted. A fresh tracer owns a fresh span context. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val clock : t -> unit -> Gr_util.Time_ns.t
val events : t -> Sink.t
val reports : t -> Sink.t
val metrics : t -> Metrics.t

val node_id : t -> int option
val set_node_id : t -> int option -> unit
(** Change the fleet provenance tag after creation (also restamps the
    metrics registry). Events already in the sinks are unaffected. *)

(* Causal span context. *)

val ctx : t -> span_ctx
val set_ctx : t -> span_ctx -> unit
val share_ctx : src:t -> t -> unit
(** [share_ctx ~src t] makes [t] allocate spans from [src]'s context;
    the fleet wires every node tracer to the control tracer's context
    at creation. *)

val set_span_channel : t -> offset:int -> stride:int -> unit
(** [set_span_channel t ~offset ~stride] replaces [t]'s context with a
    fresh one allocating ids [offset, offset + stride, ..]. Parallel
    fleets give each domain's tracer a disjoint channel (control is
    channel 0, node [i] channel [i+1], stride [nodes+1]) so merged
    traces carry globally unique span ids with no cross-domain
    coordination; [id mod stride] recovers the emitting channel.
    Requires [0 <= offset < stride].
    @raise Invalid_argument otherwise. *)

val fresh_span : t -> int
(** Allocate the next span id (monotonic within the context, advancing
    by the channel stride — 1 for sequential deployments). *)

val current_span : t -> int option
val set_current : t -> int option -> unit
(** Set/clear the causal parent subsequent emissions will carry.
    Sites that open a causal scope save the previous value and
    restore it when the scope closes. *)

(* Emitters; all no-ops when disabled except [report]. [?span] pins
   the event's own span id (callers that also set it as the current
   parent allocate it first with {!fresh_span}); [?parent] overrides
   the context's current parent — the cross-time edge used by e.g.
   a RETRAIN.run firing in a later dispatch than the RETRAIN.scheduled
   that caused it. *)

val instant :
  t -> cat:string -> ?args:(string * Event.arg) list -> ?span:int -> ?parent:int -> string -> unit

val counter : t -> cat:string -> ?span:int -> string -> (string * float) list -> unit

val complete :
  t ->
  cat:string ->
  dur_ns:float ->
  ?args:(string * Event.arg) list ->
  ?span:int ->
  ?parent:int ->
  string ->
  unit

val span_begin : t -> cat:string -> ?args:(string * Event.arg) list -> ?span:int -> string -> unit
val span_end : t -> cat:string -> string -> unit

val with_span : t -> cat:string -> ?args:(string * Event.arg) list -> string -> (unit -> 'a) -> 'a
(** Emits the [End] even if the body raises. The span's id is the
    causal parent of everything the body emits. *)

val report : t -> ?args:(string * Event.arg) list -> string -> unit
(** Emits an [Instant] of category ["report"] into the report sink,
    bypassing {!enabled}. Carries provenance args only when tracing
    is enabled, so untraced report streams keep their historical
    byte-exact shape. *)
