(** The tracer: the single handle instrumented subsystems emit into.

    A tracer owns two sinks and a metrics registry:

    - [events] — the debug/profiling channel (sim dispatch, hook
      entry/exit, rule checks, store traffic). Emission is gated on
      {!enabled} and costs one branch when disabled, so always-on
      instrumentation sites are free in untraced runs.
    - [reports] — the data-plane channel carrying the REPORT action's
      structured violation events (the paper's eBPF-ringbuf stream to
      userspace). This channel is {e always} on: REPORTs are product
      behavior, not debugging, and the runtime's violation log is a
      view over it. It is still bounded with drop accounting.
    - [metrics] — the per-monitor registry ({!Metrics}), also always
      on (O(1) per check).

    Timestamps come from the [clock] the tracer was created with —
    in every deployment that is the simulated kernel clock, which is
    why traces are deterministic under a fixed seed. *)

type t

val create :
  clock:(unit -> Gr_util.Time_ns.t) ->
  ?capacity:int ->
  ?report_capacity:int ->
  ?overflow:Sink.overflow ->
  ?enabled:bool ->
  ?node_id:int ->
  unit ->
  t
(** [capacity] (default 65536) sizes the event sink,
    [report_capacity] (default 16384) the report sink. [enabled]
    defaults to [false]: metrics and reports flow, trace events do
    not. [node_id], when given, tags every emitted event and report
    with a trailing [("node", Int id)] argument and stamps the
    metrics registry — fleet runs use it so merged traces stay
    attributable to the shard that produced them. Without it the
    output is byte-identical to what single-node deployments always
    emitted. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val clock : t -> unit -> Gr_util.Time_ns.t
val events : t -> Sink.t
val reports : t -> Sink.t
val metrics : t -> Metrics.t

val node_id : t -> int option
val set_node_id : t -> int option -> unit
(** Change the fleet provenance tag after creation (also restamps the
    metrics registry). Events already in the sinks are unaffected. *)

(* Emitters; all no-ops when disabled except [report]. *)

val instant : t -> cat:string -> ?args:(string * Event.arg) list -> string -> unit
val counter : t -> cat:string -> string -> (string * float) list -> unit
val complete :
  t -> cat:string -> dur_ns:float -> ?args:(string * Event.arg) list -> string -> unit

val span_begin : t -> cat:string -> ?args:(string * Event.arg) list -> string -> unit
val span_end : t -> cat:string -> string -> unit

val with_span : t -> cat:string -> ?args:(string * Event.arg) list -> string -> (unit -> 'a) -> 'a
(** Emits the [End] even if the body raises. *)

val report : t -> ?args:(string * Event.arg) list -> string -> unit
(** Emits an [Instant] of category ["report"] into the report sink,
    bypassing {!enabled}. *)
