(** Per-monitor telemetry registry.

    One record per installed monitor, updated on every rule check and
    action firing by the runtime engine: check/violation/firing
    counts, cumulative estimated VM cost, instruction and
    sample-scan totals, and a check-latency distribution tracked three
    ways on {!Gr_util.Stats} primitives — a Welford summary
    (mean/min/max), streaming P² estimators for p50/p90/p99, and a
    log-scale histogram for arbitrary quantiles. All state is O(1) per
    monitor, matching the in-kernel-budget constraint (§4.1): nothing
    here stores per-check samples.

    This registry is what replaces the engine's aggregate
    [overhead_ns] as the source for per-monitor overhead attribution
    in the benchmarks. *)

type monitor = {
  name : string;
  mutable checks : int;
  mutable violations : int;
  mutable fires : int;  (** action firings *)
  mutable vm_cost_ns : float;  (** cumulative estimated VM cost *)
  mutable vm_insts : int;
  mutable samples_scanned : int;
  latency : Gr_util.Stats.Welford.t;  (** per-check estimated cost (ns) *)
  latency_p50 : Gr_util.Stats.P2.t;
  latency_p90 : Gr_util.Stats.P2.t;
  latency_p99 : Gr_util.Stats.P2.t;
  latency_hist : Gr_util.Stats.Histogram.t;  (** over log10(cost ns) *)
}

type t

val create : unit -> t

val node_id : t -> int option
val set_node_id : t -> int option -> unit
(** Fleet provenance: which node this registry belongs to. [None]
    (the default, and the only value in single-node deployments)
    leaves {!to_json} output exactly as before. *)

val monitor : t -> string -> monitor
(** Find-or-create by monitor name. *)

val find : t -> string -> monitor option
val monitors : t -> monitor list
(** Sorted by name. *)

val record_check : monitor -> cost_ns:float -> insts:int -> samples:int -> violated:bool -> unit
val record_fire : monitor -> unit
val record_action_cost : monitor -> cost_ns:float -> unit
(** Extra VM cost outside the rule itself (SAVE value programs). *)

val latency_quantile : monitor -> float -> float
(** p50/p90/p99 come from the exact-ish P² estimators; other
    quantiles interpolate the log-scale histogram. [nan] before the
    first check. *)

val to_json : t -> Json.t
(** [{"monitors":[{name, checks, violations, fires, vm_cost_ns, ...,
    latency_ns:{mean,min,max,p50,p90,p99}}]}]. Field order is fixed,
    so the output is deterministic. When a node id is set, a leading
    ["node"] field identifies the shard. *)

val openmetrics_into : Buffer.t -> t list -> unit
(** Append the per-monitor OpenMetrics families (counters plus the
    check-latency summary) for the given registries — one registry
    per deployment; a fleet passes control plus every node. Each
    series carries a [monitor] label and, on node-tagged registries,
    a [node] label. With more than one registry, every counter family
    also emits merged rollup rows labelled [scope="fleet"] — summed
    across nodes — so fleet dashboards get one series per monitor
    without re-aggregation. No trailing [# EOF]: {!Export} composes
    further families on top. *)

val to_openmetrics : t list -> string
(** {!openmetrics_into} terminated with [# EOF\n] — a complete
    OpenMetrics text exposition. *)

val pp : Format.formatter -> t -> unit
(** Summary table, one row per monitor. *)
