(** Bounded ring-buffer event sink with explicit drop accounting.

    Models the eBPF ring buffer the paper's REPORT action streams
    over: a fixed-capacity buffer that {e never} blocks the producer
    and {e never} grows. When full, the default [Drop_newest] policy
    rejects the incoming event and counts it — exactly what
    [bpf_ringbuf_reserve] failing does — while [Overwrite_oldest]
    keeps the most recent window (an ftrace-style overwrite mode);
    overwritten events count as drops too. Either way memory stays
    bounded and every lost event is accounted for. *)

type overflow =
  | Drop_newest  (** reject incoming events when full (eBPF ringbuf) *)
  | Overwrite_oldest  (** evict the oldest event when full (ftrace overwrite) *)

type t

val create : ?capacity:int -> ?overflow:overflow -> unit -> t
(** [capacity] defaults to [65536] events, [overflow] to
    [Drop_newest]. Requires [capacity > 0]. *)

val emit : t -> Event.t -> unit
(** O(1), never blocks, never allocates beyond the event itself. *)

val capacity : t -> int
val overflow : t -> overflow

val length : t -> int
(** Events currently buffered. *)

val emitted : t -> int
(** Total {!emit} calls since creation (buffered + dropped). *)

val dropped : t -> int
(** Events lost to overflow (rejected or overwritten). *)

val is_full : t -> bool

val to_list : t -> Event.t list
(** Buffered events, oldest first. *)

val iter : (Event.t -> unit) -> t -> unit
(** Oldest first. *)

val clear : t -> unit
(** Empties the buffer; [emitted]/[dropped] accounting is preserved. *)
