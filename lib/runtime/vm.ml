module Ir = Gr_compiler.Ir

type result = {
  value : float;
  insts_executed : int;
  samples_scanned : int;
  est_cost_ns : float;
}

type tier = Tree | Reg | Jit

let tier_of_string = function
  | "tree" -> Some Tree
  | "reg" -> Some Reg
  | "jit" -> Some Jit
  | _ -> None

let tier_to_string = function Tree -> "tree" | Reg -> "reg" | Jit -> "jit"
let all_tiers = [ Tree; Reg; Jit ]
let truthy v = v <> 0.
let of_bool b = if b then 1. else 0.

let sample_scan_cost_ns = 0.5

let static_cost_ns = Ir.static_cost_ns

(* The single source of operator semantics for the register and JIT
   tiers; must stay in exact (bit-for-bit) agreement with the inline
   matches in [run] below — the cross-tier differential fuzzer in
   test/test_fuzz.ml pins that equivalence. *)
let apply_unop op v =
  match (op : Gr_dsl.Ast.unop) with
  | Neg -> -.v
  | Abs -> Float.abs v
  | Not -> of_bool (not (truthy v))

let apply_binop op a b =
  match (op : Gr_dsl.Ast.binop) with
  | Add -> a +. b
  | Sub -> a -. b
  | Mul -> a *. b
  | Div -> if b = 0. then 0. else a /. b
  | Lt -> of_bool (a < b)
  | Le -> of_bool (a <= b)
  | Gt -> of_bool (a > b)
  | Ge -> of_bool (a >= b)
  | Eq -> of_bool (a = b)
  | Ne -> of_bool (a <> b)
  | And -> of_bool (truthy a && truthy b)
  | Or -> of_bool (truthy a || truthy b)

let run ?static_cost_ns:precomputed ~store ~slots (p : Ir.program) =
  let regs = Array.make (max 1 p.n_regs) 0. in
  let samples = ref 0 in
  (* The per-instruction cost model is a pure function of the program;
     callers that run the same program repeatedly pass the sum
     computed once at install time instead of re-summing per check. *)
  let cost =
    ref (match precomputed with Some c -> c | None -> static_cost_ns p)
  in
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Const { dst; value } -> regs.(dst) <- value
      | Ir.Load { dst; slot } -> regs.(dst) <- Feature_store.load store slots.(slot)
      | Ir.Agg { dst; fn; slot; window_ns; param } ->
        let key = slots.(slot) in
        let r = Feature_store.aggregate_result store ~key ~fn ~window_ns ~param in
        (* Naive scans charge the whole window population; a
           registered-demand hit charges only the samples it expired
           now (plus QUANTILE's ranked suffix) — O(1) amortized. *)
        samples := !samples + r.scanned;
        cost := !cost +. (float_of_int r.scanned *. sample_scan_cost_ns);
        regs.(dst) <- r.value
      | Ir.Unop { dst; op; src } ->
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Neg -> -.regs.(src)
          | Gr_dsl.Ast.Abs -> Float.abs regs.(src)
          | Gr_dsl.Ast.Not -> of_bool (not (truthy regs.(src))))
      | Ir.Binop { dst; op; lhs; rhs } ->
        let a = regs.(lhs) and b = regs.(rhs) in
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Add -> a +. b
          | Gr_dsl.Ast.Sub -> a -. b
          | Gr_dsl.Ast.Mul -> a *. b
          | Gr_dsl.Ast.Div -> if b = 0. then 0. else a /. b
          | Gr_dsl.Ast.Lt -> of_bool (a < b)
          | Gr_dsl.Ast.Le -> of_bool (a <= b)
          | Gr_dsl.Ast.Gt -> of_bool (a > b)
          | Gr_dsl.Ast.Ge -> of_bool (a >= b)
          | Gr_dsl.Ast.Eq -> of_bool (a = b)
          | Gr_dsl.Ast.Ne -> of_bool (a <> b)
          | Gr_dsl.Ast.And -> of_bool (truthy a && truthy b)
          | Gr_dsl.Ast.Or -> of_bool (truthy a || truthy b)))
    p.insts;
  {
    value = regs.(p.result);
    insts_executed = Array.length p.insts;
    samples_scanned = !samples;
    est_cost_ns = !cost;
  }

(* ---------- register / superinstruction tier ----------

   [compile] rewrites a verified program into a flat op array over a
   persistent register frame:
   - Const instructions are executed once here — the frame keeps their
     values across checks (sound: IR is single-assignment and a run
     always completes before any action can re-enter the VM).
   - slot indices are resolved to key strings, skipping the per-check
     [slots.(slot)] indirection.
   - a Load/Agg immediately followed by a comparison against a
     constant fuses into one superinstruction when the intermediate
     register has no other reader — the dominant rule shape
     [AVG(k, w) <= c] becomes a single dispatch.

   Accounting stays tier-invariant: [insts_executed] reports the
   original instruction count, the static cost is the original
   program's, and aggregates are never reordered so per-instruction
   scanned-sample charges land in program order. *)

type rop =
  | Rload of { dst : int; key : string }
  | Ragg of { dst : int; fn : Gr_dsl.Ast.agg; key : string; window_ns : float; param : float }
  | Rload_cmp of { dst : int; key : string; op : Gr_dsl.Ast.binop; k : float; swap : bool }
  | Ragg_cmp of {
      dst : int;
      fn : Gr_dsl.Ast.agg;
      key : string;
      window_ns : float;
      param : float;
      op : Gr_dsl.Ast.binop;
      k : float;
      swap : bool;
    }
  | Runop of { dst : int; op : Gr_dsl.Ast.unop; src : int }
  | Rbinop of { dst : int; op : Gr_dsl.Ast.binop; lhs : int; rhs : int }

type compiled = {
  c_store : Feature_store.t;
  c_frame : float array;
  c_rops : rop array;
  c_result : int;
  c_n_insts : int;
  c_static_cost : float;
}

let is_cmp (op : Gr_dsl.Ast.binop) =
  match op with Lt | Le | Gt | Ge | Eq | Ne -> true | _ -> false

let compile ~store ~slots (p : Ir.program) =
  let n = max 1 p.n_regs in
  let frame = Array.make n 0. in
  let const = Array.make n None in
  let uses = Ir.use_counts p in
  let rops = ref [] in
  let emit r = rops := r :: !rops in
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Const { dst; value } ->
        frame.(dst) <- value;
        const.(dst) <- Some value
      | Ir.Load { dst; slot } -> emit (Rload { dst; key = slots.(slot) })
      | Ir.Agg { dst; fn; slot; window_ns; param } ->
        emit (Ragg { dst; fn; key = slots.(slot); window_ns; param })
      | Ir.Unop { dst; op; src } -> emit (Runop { dst; op; src })
      | Ir.Binop { dst; op; lhs; rhs } ->
        let fused =
          if not (is_cmp op) then None
          else
            (* only the immediately preceding op may fuse: anything
               farther back could have readers in between, and moving
               an Agg would shift its scanned-sample charge. *)
            match !rops with
            | Rload { dst = r; key } :: rest when r = lhs && const.(rhs) <> None && uses.(r) = 1
              ->
              Some (Rload_cmp { dst; key; op; k = Option.get const.(rhs); swap = false } :: rest)
            | Rload { dst = r; key } :: rest when r = rhs && const.(lhs) <> None && uses.(r) = 1
              ->
              Some (Rload_cmp { dst; key; op; k = Option.get const.(lhs); swap = true } :: rest)
            | Ragg { dst = r; fn; key; window_ns; param } :: rest
              when r = lhs && const.(rhs) <> None && uses.(r) = 1 ->
              Some
                (Ragg_cmp
                   { dst; fn; key; window_ns; param; op; k = Option.get const.(rhs); swap = false }
                :: rest)
            | Ragg { dst = r; fn; key; window_ns; param } :: rest
              when r = rhs && const.(lhs) <> None && uses.(r) = 1 ->
              Some
                (Ragg_cmp
                   { dst; fn; key; window_ns; param; op; k = Option.get const.(lhs); swap = true }
                :: rest)
            | _ -> None
        in
        (match fused with
        | Some rops' -> rops := rops'
        | None -> emit (Rbinop { dst; op; lhs; rhs })))
    p.insts;
  {
    c_store = store;
    c_frame = frame;
    c_rops = Array.of_list (List.rev !rops);
    c_result = p.result;
    c_n_insts = Array.length p.insts;
    c_static_cost = static_cost_ns p;
  }

let run_compiled c =
  let frame = c.c_frame and store = c.c_store in
  let samples = ref 0 in
  let cost = ref c.c_static_cost in
  let do_agg ~fn ~key ~window_ns ~param =
    let r = Feature_store.aggregate_result store ~key ~fn ~window_ns ~param in
    samples := !samples + r.Feature_store.scanned;
    cost := !cost +. (float_of_int r.Feature_store.scanned *. sample_scan_cost_ns);
    r.Feature_store.value
  in
  Array.iter
    (fun rop ->
      match rop with
      | Rload { dst; key } -> frame.(dst) <- Feature_store.load store key
      | Ragg { dst; fn; key; window_ns; param } -> frame.(dst) <- do_agg ~fn ~key ~window_ns ~param
      | Rload_cmp { dst; key; op; k; swap } ->
        let v = Feature_store.load store key in
        frame.(dst) <- (if swap then apply_binop op k v else apply_binop op v k)
      | Ragg_cmp { dst; fn; key; window_ns; param; op; k; swap } ->
        let v = do_agg ~fn ~key ~window_ns ~param in
        frame.(dst) <- (if swap then apply_binop op k v else apply_binop op v k)
      | Runop { dst; op; src } -> frame.(dst) <- apply_unop op frame.(src)
      | Rbinop { dst; op; lhs; rhs } -> frame.(dst) <- apply_binop op frame.(lhs) frame.(rhs))
    c.c_rops;
  {
    value = frame.(c.c_result);
    insts_executed = c.c_n_insts;
    samples_scanned = !samples;
    est_cost_ns = !cost;
  }
