module Ir = Gr_compiler.Ir

type result = {
  value : float;
  insts_executed : int;
  samples_scanned : int;
  est_cost_ns : float;
}

let truthy v = v <> 0.
let of_bool b = if b then 1. else 0.

let sample_scan_cost_ns = 0.5

let run ~store ~slots (p : Ir.program) =
  let regs = Array.make (max 1 p.n_regs) 0. in
  let samples = ref 0 in
  let cost = ref 0. in
  Array.iter
    (fun inst ->
      cost := !cost +. Gr_compiler.Verify.est_inst_cost_ns inst;
      match inst with
      | Ir.Const { dst; value } -> regs.(dst) <- value
      | Ir.Load { dst; slot } -> regs.(dst) <- Feature_store.load store slots.(slot)
      | Ir.Agg { dst; fn; slot; window_ns; param } ->
        let key = slots.(slot) in
        let scanned = Feature_store.samples_in_window store ~key ~window_ns in
        samples := !samples + scanned;
        cost := !cost +. (float_of_int scanned *. sample_scan_cost_ns);
        regs.(dst) <- Feature_store.aggregate store ~key ~fn ~window_ns ~param
      | Ir.Unop { dst; op; src } ->
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Neg -> -.regs.(src)
          | Gr_dsl.Ast.Abs -> Float.abs regs.(src)
          | Gr_dsl.Ast.Not -> of_bool (not (truthy regs.(src))))
      | Ir.Binop { dst; op; lhs; rhs } ->
        let a = regs.(lhs) and b = regs.(rhs) in
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Add -> a +. b
          | Gr_dsl.Ast.Sub -> a -. b
          | Gr_dsl.Ast.Mul -> a *. b
          | Gr_dsl.Ast.Div -> if b = 0. then 0. else a /. b
          | Gr_dsl.Ast.Lt -> of_bool (a < b)
          | Gr_dsl.Ast.Le -> of_bool (a <= b)
          | Gr_dsl.Ast.Gt -> of_bool (a > b)
          | Gr_dsl.Ast.Ge -> of_bool (a >= b)
          | Gr_dsl.Ast.Eq -> of_bool (a = b)
          | Gr_dsl.Ast.Ne -> of_bool (a <> b)
          | Gr_dsl.Ast.And -> of_bool (truthy a && truthy b)
          | Gr_dsl.Ast.Or -> of_bool (truthy a || truthy b)))
    p.insts;
  {
    value = regs.(p.result);
    insts_executed = Array.length p.insts;
    samples_scanned = !samples;
    est_cost_ns = !cost;
  }
