module Ir = Gr_compiler.Ir

type result = {
  value : float;
  insts_executed : int;
  samples_scanned : int;
  est_cost_ns : float;
}

let truthy v = v <> 0.
let of_bool b = if b then 1. else 0.

let sample_scan_cost_ns = 0.5

let static_cost_ns = Ir.static_cost_ns

let run ?static_cost_ns:precomputed ~store ~slots (p : Ir.program) =
  let regs = Array.make (max 1 p.n_regs) 0. in
  let samples = ref 0 in
  (* The per-instruction cost model is a pure function of the program;
     callers that run the same program repeatedly pass the sum
     computed once at install time instead of re-summing per check. *)
  let cost =
    ref (match precomputed with Some c -> c | None -> static_cost_ns p)
  in
  Array.iter
    (fun inst ->
      match inst with
      | Ir.Const { dst; value } -> regs.(dst) <- value
      | Ir.Load { dst; slot } -> regs.(dst) <- Feature_store.load store slots.(slot)
      | Ir.Agg { dst; fn; slot; window_ns; param } ->
        let key = slots.(slot) in
        let r = Feature_store.aggregate_result store ~key ~fn ~window_ns ~param in
        (* Naive scans charge the whole window population; a
           registered-demand hit charges only the samples it expired
           now (plus QUANTILE's ranked suffix) — O(1) amortized. *)
        samples := !samples + r.scanned;
        cost := !cost +. (float_of_int r.scanned *. sample_scan_cost_ns);
        regs.(dst) <- r.value
      | Ir.Unop { dst; op; src } ->
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Neg -> -.regs.(src)
          | Gr_dsl.Ast.Abs -> Float.abs regs.(src)
          | Gr_dsl.Ast.Not -> of_bool (not (truthy regs.(src))))
      | Ir.Binop { dst; op; lhs; rhs } ->
        let a = regs.(lhs) and b = regs.(rhs) in
        regs.(dst) <-
          (match op with
          | Gr_dsl.Ast.Add -> a +. b
          | Gr_dsl.Ast.Sub -> a -. b
          | Gr_dsl.Ast.Mul -> a *. b
          | Gr_dsl.Ast.Div -> if b = 0. then 0. else a /. b
          | Gr_dsl.Ast.Lt -> of_bool (a < b)
          | Gr_dsl.Ast.Le -> of_bool (a <= b)
          | Gr_dsl.Ast.Gt -> of_bool (a > b)
          | Gr_dsl.Ast.Ge -> of_bool (a >= b)
          | Gr_dsl.Ast.Eq -> of_bool (a = b)
          | Gr_dsl.Ast.Ne -> of_bool (a <> b)
          | Gr_dsl.Ast.And -> of_bool (truthy a && truthy b)
          | Gr_dsl.Ast.Or -> of_bool (truthy a || truthy b)))
    p.insts;
  {
    value = regs.(p.result);
    insts_executed = Array.length p.insts;
    samples_scanned = !samples;
    est_cost_ns = !cost;
  }
