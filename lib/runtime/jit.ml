module Ir = Gr_compiler.Ir

(* ---------- closure template JIT (tier 2) ----------

   [compile] specializes a verified program at install time into a
   flat array of effect closures: a check is one tight loop of
   indirect calls with no per-check dispatch, no operand decoding and
   no register-frame allocation.

   Specializations applied, in order:
   - constants are folded: a Const never executes at check time, and
     any Unop/Binop whose inputs are all known folds at compile time
     (via Vm.apply_unop/apply_binop, so folded arithmetic is
     bit-identical to the interpreted kind);
   - feature-store reads go through pre-resolved handles
     (Feature_store.load_handle / agg_handle): key hashing and demand
     list walks happen once here, not per check — the handles
     self-invalidate on store topology changes and degrade to the
     exact slow path;
   - each remaining instruction becomes a closure from a hand-written
     template library, operator and constant operands baked into the
     closure environment (36 binop shapes: op x {reg·reg, reg·const,
     const·reg});
   - superinstructions: a Load/Agg whose only reader is the next
     emitted step fuses into it. Any binop against a constant fuses
     with the pending load/agg (the register tier's load-cmp/agg-cmp,
     generalized to all twelve operators), a pending load·k product
     fuses into the Add/Sub that consumes it (multiply-accumulate —
     the inner-loop shape of a distilled linear-model guardrail, one
     closure per term instead of three), and two pending products
     fuse into their Add/Sub in one step. All arithmetic inside a
     fused body stays unboxed — OCaml only boxes floats that cross a
     closure boundary, which is exactly what fusion eliminates.

   Accounting stays tier-invariant: [insts_executed] reports the
   original instruction count, the static cost is the original
   program's, and aggregate steps charge scanned samples in program
   order, so results are bit-identical to Vm.run. Fusion claims only
   the most recently emitted step(s), and only when the fusing
   instruction is their sole reader — the same legality rule as the
   register tier: claiming farther back could reorder an aggregate's
   scanned-sample charge past another charging step. A fused load
   still executes exactly once, even where the operator's result is
   known (x/0, AND 0, OR 1): the store's load counter must advance
   exactly as the interpreters advance it.

   Frame accesses are unsafe_get/set: every register index was bounds-
   checked by Gr_compiler.Verify before install, the same trust
   boundary the interpreters rely on.

   [compile] returns [None] — and Engine falls back to the register
   tier — when any key resolves to a sharded (fleet cross-shard
   merged) read, which has no handle fast path. *)

type t = {
  j_frame : float array;
  j_steps : (unit -> unit) array;
  j_result : int;
  j_n_insts : int;
  j_static_cost : float;
  j_samples : int ref;
  j_cost : float ref;
}

let of_bool = Vm.of_bool

(* One template per binop shape. [cc] (const·const) never reaches the
   emitters — it folds. *)
let binop_rr frame op dst lhs rhs =
  let g = Array.unsafe_get frame and s = Array.unsafe_set frame in
  match (op : Gr_dsl.Ast.binop) with
  | Add -> fun () -> s dst (g lhs +. g rhs)
  | Sub -> fun () -> s dst (g lhs -. g rhs)
  | Mul -> fun () -> s dst (g lhs *. g rhs)
  | Div ->
    fun () ->
      let b = g rhs in
      s dst (if b = 0. then 0. else g lhs /. b)
  | Lt -> fun () -> s dst (of_bool (g lhs < g rhs))
  | Le -> fun () -> s dst (of_bool (g lhs <= g rhs))
  | Gt -> fun () -> s dst (of_bool (g lhs > g rhs))
  | Ge -> fun () -> s dst (of_bool (g lhs >= g rhs))
  | Eq -> fun () -> s dst (of_bool (g lhs = g rhs))
  | Ne -> fun () -> s dst (of_bool (g lhs <> g rhs))
  | And -> fun () -> s dst (of_bool (g lhs <> 0. && g rhs <> 0.))
  | Or -> fun () -> s dst (of_bool (g lhs <> 0. || g rhs <> 0.))

let binop_rc frame op dst lhs k =
  let g = Array.unsafe_get frame and s = Array.unsafe_set frame in
  match (op : Gr_dsl.Ast.binop) with
  | Add -> fun () -> s dst (g lhs +. k)
  | Sub -> fun () -> s dst (g lhs -. k)
  | Mul -> fun () -> s dst (g lhs *. k)
  | Div -> if k = 0. then fun () -> s dst 0. else fun () -> s dst (g lhs /. k)
  | Lt -> fun () -> s dst (of_bool (g lhs < k))
  | Le -> fun () -> s dst (of_bool (g lhs <= k))
  | Gt -> fun () -> s dst (of_bool (g lhs > k))
  | Ge -> fun () -> s dst (of_bool (g lhs >= k))
  | Eq -> fun () -> s dst (of_bool (g lhs = k))
  | Ne -> fun () -> s dst (of_bool (g lhs <> k))
  | And -> if k = 0. then fun () -> s dst 0. else fun () -> s dst (of_bool (g lhs <> 0.))
  | Or -> if k <> 0. then fun () -> s dst 1. else fun () -> s dst (of_bool (g lhs <> 0.))

let binop_cr frame op dst k rhs =
  let g = Array.unsafe_get frame and s = Array.unsafe_set frame in
  match (op : Gr_dsl.Ast.binop) with
  | Add -> fun () -> s dst (k +. g rhs)
  | Sub -> fun () -> s dst (k -. g rhs)
  | Mul -> fun () -> s dst (k *. g rhs)
  | Div ->
    fun () ->
      let b = g rhs in
      s dst (if b = 0. then 0. else k /. b)
  | Lt -> fun () -> s dst (of_bool (k < g rhs))
  | Le -> fun () -> s dst (of_bool (k <= g rhs))
  | Gt -> fun () -> s dst (of_bool (k > g rhs))
  | Ge -> fun () -> s dst (of_bool (k >= g rhs))
  | Eq -> fun () -> s dst (of_bool (k = g rhs))
  | Ne -> fun () -> s dst (of_bool (k <> g rhs))
  | And -> if k = 0. then fun () -> s dst 0. else fun () -> s dst (of_bool (g rhs <> 0.))
  | Or -> if k <> 0. then fun () -> s dst 1. else fun () -> s dst (of_bool (g rhs <> 0.))

(* Fused load⊙const, constant on the right: dst <- load(h) op k. *)
let load_vc frame h op dst k =
  let s = Array.unsafe_set frame in
  let ld = Feature_store.handle_load in
  match (op : Gr_dsl.Ast.binop) with
  | Add -> fun () -> s dst (ld h +. k)
  | Sub -> fun () -> s dst (ld h -. k)
  | Mul -> fun () -> s dst (ld h *. k)
  | Div ->
    if k = 0. then fun () ->
      ignore (ld h : float);
      s dst 0.
    else fun () -> s dst (ld h /. k)
  | Lt -> fun () -> s dst (of_bool (ld h < k))
  | Le -> fun () -> s dst (of_bool (ld h <= k))
  | Gt -> fun () -> s dst (of_bool (ld h > k))
  | Ge -> fun () -> s dst (of_bool (ld h >= k))
  | Eq -> fun () -> s dst (of_bool (ld h = k))
  | Ne -> fun () -> s dst (of_bool (ld h <> k))
  | And ->
    if k = 0. then fun () ->
      ignore (ld h : float);
      s dst 0.
    else fun () -> s dst (of_bool (ld h <> 0.))
  | Or ->
    if k <> 0. then fun () ->
      ignore (ld h : float);
      s dst 1.
    else fun () -> s dst (of_bool (ld h <> 0.))

(* Fused const⊙load, constant on the left: dst <- k op load(h). *)
let load_cv frame h op dst k =
  let s = Array.unsafe_set frame in
  let ld = Feature_store.handle_load in
  match (op : Gr_dsl.Ast.binop) with
  | Add -> fun () -> s dst (k +. ld h)
  | Sub -> fun () -> s dst (k -. ld h)
  | Mul -> fun () -> s dst (k *. ld h)
  | Div ->
    fun () ->
      let v = ld h in
      s dst (if v = 0. then 0. else k /. v)
  | Lt -> fun () -> s dst (of_bool (k < ld h))
  | Le -> fun () -> s dst (of_bool (k <= ld h))
  | Gt -> fun () -> s dst (of_bool (k > ld h))
  | Ge -> fun () -> s dst (of_bool (k >= ld h))
  | Eq -> fun () -> s dst (of_bool (k = ld h))
  | Ne -> fun () -> s dst (of_bool (k <> ld h))
  | And ->
    if k = 0. then fun () ->
      ignore (ld h : float);
      s dst 0.
    else fun () -> s dst (of_bool (ld h <> 0.))
  | Or ->
    if k <> 0. then fun () ->
      ignore (ld h : float);
      s dst 1.
    else fun () -> s dst (of_bool (ld h <> 0.))

(* A step under construction: its own effect plus which frame register
   it defines, so a following single-reader instruction can claim it.
   [Pmul] is a load·const product awaiting a multiply-accumulate
   consumer ([swap]: the constant was the left factor). *)
type pending =
  | Pload of { dst : int; h : Feature_store.load_handle }
  | Pagg of { dst : int; h : Feature_store.agg_handle }
  | Pmul of { dst : int; h : Feature_store.load_handle; k : float; swap : bool }
  | Pop of (unit -> unit)

exception Unsupported

let compile ~store ~slots (p : Ir.program) =
  let n = max 1 p.n_regs in
  let frame = Array.make n 0. in
  let const = Array.make n None in
  let uses = Ir.use_counts p in
  let samples = ref 0 in
  let cost = ref 0. in
  let charge scanned =
    samples := !samples + scanned;
    cost := !cost +. (float_of_int scanned *. Vm.sample_scan_cost_ns)
  in
  let load_handle key =
    match Feature_store.load_handle store key with Some h -> h | None -> raise Unsupported
  in
  let agg_handle ~key ~fn ~window_ns ~param =
    match Feature_store.agg_handle store ~key ~fn ~window_ns ~param with
    | Some h -> h
    | None -> raise Unsupported
  in
  (* the charged value of a pending aggregate — its own step and every
     fused form run exactly this *)
  let agg_value h () =
    let r = Feature_store.handle_aggregate h in
    charge r.Feature_store.scanned;
    r.Feature_store.value
  in
  let agg_vc h op dst k =
    let s = Array.unsafe_set frame in
    let va = agg_value h in
    match (op : Gr_dsl.Ast.binop) with
    | Add -> Pop (fun () -> s dst (va () +. k))
    | Sub -> Pop (fun () -> s dst (va () -. k))
    | Mul -> Pop (fun () -> s dst (va () *. k))
    | Div ->
      if k = 0. then
        Pop
          (fun () ->
            ignore (va () : float);
            s dst 0.)
      else Pop (fun () -> s dst (va () /. k))
    | Lt -> Pop (fun () -> s dst (of_bool (va () < k)))
    | Le -> Pop (fun () -> s dst (of_bool (va () <= k)))
    | Gt -> Pop (fun () -> s dst (of_bool (va () > k)))
    | Ge -> Pop (fun () -> s dst (of_bool (va () >= k)))
    | Eq -> Pop (fun () -> s dst (of_bool (va () = k)))
    | Ne -> Pop (fun () -> s dst (of_bool (va () <> k)))
    | And ->
      if k = 0. then
        Pop
          (fun () ->
            ignore (va () : float);
            s dst 0.)
      else Pop (fun () -> s dst (of_bool (va () <> 0.)))
    | Or ->
      if k <> 0. then
        Pop
          (fun () ->
            ignore (va () : float);
            s dst 1.)
      else Pop (fun () -> s dst (of_bool (va () <> 0.)))
  in
  let agg_cv h op dst k =
    let s = Array.unsafe_set frame in
    let va = agg_value h in
    match (op : Gr_dsl.Ast.binop) with
    | Add -> Pop (fun () -> s dst (k +. va ()))
    | Sub -> Pop (fun () -> s dst (k -. va ()))
    | Mul -> Pop (fun () -> s dst (k *. va ()))
    | Div ->
      Pop
        (fun () ->
          let v = va () in
          s dst (if v = 0. then 0. else k /. v))
    | Lt -> Pop (fun () -> s dst (of_bool (k < va ())))
    | Le -> Pop (fun () -> s dst (of_bool (k <= va ())))
    | Gt -> Pop (fun () -> s dst (of_bool (k > va ())))
    | Ge -> Pop (fun () -> s dst (of_bool (k >= va ())))
    | Eq -> Pop (fun () -> s dst (of_bool (k = va ())))
    | Ne -> Pop (fun () -> s dst (of_bool (k <> va ())))
    | And ->
      if k = 0. then
        Pop
          (fun () ->
            ignore (va () : float);
            s dst 0.)
      else Pop (fun () -> s dst (of_bool (va () <> 0.)))
    | Or ->
      if k <> 0. then
        Pop
          (fun () ->
            ignore (va () : float);
            s dst 1.)
      else Pop (fun () -> s dst (of_bool (va () <> 0.)))
  in
  let steps = ref [] in
  let emit s = steps := s :: !steps in
  let compile_inst inst =
    match inst with
    | Ir.Const { dst; value } ->
      frame.(dst) <- value;
      const.(dst) <- Some value
    | Ir.Load { dst; slot } -> emit (Pload { dst; h = load_handle slots.(slot) })
    | Ir.Agg { dst; fn; slot; window_ns; param } ->
      emit (Pagg { dst; h = agg_handle ~key:slots.(slot) ~fn ~window_ns ~param })
    | Ir.Unop { dst; op; src } -> (
      match const.(src) with
      | Some v ->
        frame.(dst) <- Vm.apply_unop op v;
        const.(dst) <- Some frame.(dst)
      | None ->
        let g = Array.unsafe_get frame and s = Array.unsafe_set frame in
        emit
          (Pop
             (match op with
             | Gr_dsl.Ast.Neg -> fun () -> s dst (-.g src)
             | Gr_dsl.Ast.Abs -> fun () -> s dst (Float.abs (g src))
             | Gr_dsl.Ast.Not -> fun () -> s dst (of_bool (g src = 0.)))))
    | Ir.Binop { dst; op; lhs; rhs } -> (
      match (const.(lhs), const.(rhs)) with
      | Some a, Some b ->
        frame.(dst) <- Vm.apply_binop op a b;
        const.(dst) <- Some frame.(dst)
      | None, Some k -> (
        match !steps with
        | Pload { dst = r; h } :: rest when r = lhs && uses.(r) = 1 ->
          if op = Gr_dsl.Ast.Mul then steps := Pmul { dst; h; k; swap = false } :: rest
          else steps := Pop (load_vc frame h op dst k) :: rest
        | Pagg { dst = r; h } :: rest when r = lhs && uses.(r) = 1 ->
          steps := agg_vc h op dst k :: rest
        | _ -> emit (Pop (binop_rc frame op dst lhs k)))
      | Some k, None -> (
        match !steps with
        | Pload { dst = r; h } :: rest when r = rhs && uses.(r) = 1 ->
          if op = Gr_dsl.Ast.Mul then steps := Pmul { dst; h; k; swap = true } :: rest
          else steps := Pop (load_cv frame h op dst k) :: rest
        | Pagg { dst = r; h } :: rest when r = rhs && uses.(r) = 1 ->
          steps := agg_cv h op dst k :: rest
        | _ -> emit (Pop (binop_cr frame op dst k rhs)))
      | None, None -> (
        let s = Array.unsafe_set frame and g = Array.unsafe_get frame in
        let ld = Feature_store.handle_load in
        match (op, !steps) with
        (* multiply-accumulate: both addends are pending products —
           one step computes term_i + term_{i+1} with two loads *)
        | ( (Gr_dsl.Ast.Add | Gr_dsl.Ast.Sub),
            Pmul { dst = r2; h = h2; k = k2; swap = s2 }
            :: Pmul { dst = r1; h = h1; k = k1; swap = s1 }
            :: rest )
          when r2 = rhs && r1 = lhs && uses.(r2) = 1 && uses.(r1) = 1 ->
          let sub = op = Gr_dsl.Ast.Sub in
          steps :=
            Pop
              (fun () ->
                let v1 = ld h1 in
                let v2 = ld h2 in
                let a = if s1 then k1 *. v1 else v1 *. k1 in
                let b = if s2 then k2 *. v2 else v2 *. k2 in
                s dst (if sub then a -. b else a +. b))
            :: rest
        (* multiply-accumulate: dst <- reg ± load·k — a linear-model
           term folds into its accumulation *)
        | (Gr_dsl.Ast.Add | Gr_dsl.Ast.Sub), Pmul { dst = r; h; k; swap } :: rest
          when r = rhs && uses.(r) = 1 ->
          let sub = op = Gr_dsl.Ast.Sub in
          steps :=
            Pop
              (fun () ->
                let v = ld h in
                let b = if swap then k *. v else v *. k in
                let a = g lhs in
                s dst (if sub then a -. b else a +. b))
            :: rest
        | (Gr_dsl.Ast.Add | Gr_dsl.Ast.Sub), Pmul { dst = r; h; k; swap } :: rest
          when r = lhs && uses.(r) = 1 ->
          let sub = op = Gr_dsl.Ast.Sub in
          steps :=
            Pop
              (fun () ->
                let v = ld h in
                let a = if swap then k *. v else v *. k in
                s dst (if sub then a -. g rhs else a +. g rhs))
            :: rest
        | _ -> emit (Pop (binop_rr frame op dst lhs rhs))))
  in
  let finish (pend : pending) : unit -> unit =
    match pend with
    | Pload { dst; h } ->
      let s = Array.unsafe_set frame in
      fun () -> s dst (Feature_store.handle_load h)
    | Pagg { dst; h } ->
      let s = Array.unsafe_set frame in
      let va = agg_value h in
      fun () -> s dst (va ())
    | Pmul { dst; h; k; swap } ->
      let s = Array.unsafe_set frame in
      if swap then fun () -> s dst (k *. Feature_store.handle_load h)
      else fun () -> s dst (Feature_store.handle_load h *. k)
    | Pop f -> f
  in
  match Array.iter compile_inst p.insts with
  | exception Unsupported -> None
  | () ->
    Some
      {
        j_frame = frame;
        j_steps = Array.of_list (List.rev_map finish !steps);
        j_result = p.result;
        j_n_insts = Array.length p.insts;
        j_static_cost = Ir.static_cost_ns p;
        j_samples = samples;
        j_cost = cost;
      }

let run j =
  j.j_samples := 0;
  j.j_cost := j.j_static_cost;
  let steps = j.j_steps in
  for i = 0 to Array.length steps - 1 do
    (Array.unsafe_get steps i) ()
  done;
  {
    Vm.value = j.j_frame.(j.j_result);
    insts_executed = j.j_n_insts;
    samples_scanned = !(j.j_samples);
    est_cost_ns = !(j.j_cost);
  }
