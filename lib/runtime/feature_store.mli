(** The global feature store (§4.3).

    Guardrails aggregate system-wide metrics "over time or across many
    function invocations" without ad-hoc kernel data structures; the
    store is the single state channel between kernel instrumentation,
    learned-policy bookkeeping and monitors.

    Each key holds its latest value plus a bounded ring of
    timestamped samples (bounded memory is non-negotiable in-kernel;
    the oldest samples are evicted first). Windowed aggregates are
    computed over the samples whose timestamp falls within
    [(now - window, now]].

    {b Incremental aggregation.} Monitors run at nanosecond budgets,
    so re-scanning a window on every check is not affordable. At
    install time the runtime registers each aggregate it will ask for
    as a {e demand} ({!register_demand}); the store then maintains
    streaming per-demand state — running count/sum/sum-of-squares for
    COUNT/SUM/RATE/AVG/STDDEV, a monotonic deque for MIN/MAX, window
    head/tail tracking for DELTA — updated O(1) amortized on every
    {!save} and expired lazily against the clock on read. QUANTILE
    has no exact O(1) summary and instead binary-searches the
    time-ordered ring for the window cutoff, ranking only the
    in-window suffix. Aggregates without a registered demand fall
    back to the naive full scan, which is also kept as the oracle
    path for equivalence testing ({!set_force_naive}). *)

type t

(** {1 Scoped keys}

    Keys are scoped. The flat string namespace every existing caller
    uses is {e node-local sugar}: a plain key names state in this
    store instance. A key carrying the canonical ["global::"] encoding
    (what the DSL's [GLOBAL(key)] qualifier lowers to, see
    {!Gr_dsl.Ast.global_key}) is routed to the fleet-wide tier set
    with {!set_global_tier}. A standalone store is its own global
    tier, so single-node behaviour is bit-for-bit unchanged. *)

module Key : sig
  type t = Node of int * string | Global of string

  val of_id : node_id:int -> string -> t
  (** Structured view of an encoded key, attributing plain keys to
      [node_id]. *)

  val id : t -> string
  (** The encoded string form the store's flat API takes. *)

  val node_id : t -> int option
  (** [None] for global keys. *)

  val to_string : t -> string
  (** Display form: [node3::key] or [GLOBAL(key)] — what lint
      diagnostics print when scoping matters. *)
end

val create : clock:(unit -> Gr_util.Time_ns.t) -> ?capacity_per_key:int -> unit -> t
(** [capacity_per_key] defaults to 4096 samples. *)

val node_id : t -> int
(** Which fleet node this store shard belongs to; 0 for a standalone
    store. *)

val set_node_id : t -> int -> unit

val set_global_tier : t -> t -> unit
(** Route ["global::"]-scoped keys to the given fleet-tier store.
    Saves, loads, demand registrations and aggregates on global keys
    all forward there, and its {!on_save} subscribers see the save —
    the cross-node signalling channel. Passing the store itself resets
    to standalone behaviour. *)

val global_tier : t -> t
(** The store global keys resolve to; the store itself when
    standalone. *)

val set_shards : t -> t array -> unit
(** Declare this store the fleet tier over the given node shards.
    Plain keys then read as the {e merged} view: loads answer the
    newest sample across all members, windowed aggregates fold every
    member's streaming state with {!Merge.union}, and
    {!window_samples} is the timestamp-sorted concatenation. The
    store's own table still participates (member 0), so fleet-level
    saves of plain keys stay visible. Register demands after the
    shards are set so the registration fans out. *)

val shards : t -> t array

val set_tracer : t -> Gr_trace.Tracer.t -> unit
(** Attach a tracer. When tracing is enabled, every SAVE emits a
    counter event (["store:<key>"], so Chrome plots each key as a
    time series) and every windowed aggregate an instant event
    carrying the scan size and whether the incremental path served
    it. Individual LOADs are counted ({!load_count}) but not traced
    per-call — they are the hottest operation in the system and
    per-load events would be all volume, no signal; the per-check
    trace events already carry the VM's dynamic cost. *)

val clear_tracer : t -> unit
(** Detach the tracer; subsequent store activity is untraced. *)

val save : t -> string -> float -> unit
(** Appends a timestamped sample, updates the latest value and every
    registered demand on the key. Notifies {!on_save} subscribers
    after the write. *)

val load : t -> string -> float
(** Latest value; 0. for a key never saved (LOAD's semantics). *)

val mem : t -> string -> bool
val keys : t -> string list

(** {1 Aggregate demands} *)

val register_demand :
  t -> key:string -> fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> unit
(** Declare that [aggregate] will be asked for this exact
    [(key, fn, window_ns, param)] shape, switching it to the
    streaming path. Demands are refcounted: registering the same
    shape twice (two monitors sharing a rule term) takes one slot,
    and the demand survives until released as many times. A demand
    registered mid-run replays the key's retained samples, so its
    first read already agrees with the scan. *)

val release_demand :
  t -> key:string -> fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> unit
(** Drops one reference; the streaming state is freed when the count
    reaches zero. Releasing an unregistered demand is a no-op. *)

val demand_count : t -> int
(** Distinct demands currently registered (not counting refs). *)

val demand_shapes : t -> (string * Gr_dsl.Ast.agg * float * float) list
(** Every registered [(key, fn, window_ns, param)] shape, in a
    deterministic (sorted) order — the enumeration a fault soak walks
    to cross-check the streaming path against the naive oracle. *)

val set_force_naive : t -> bool -> unit
(** When set, every aggregate takes the naive full-scan path even if
    a demand is registered — the oracle mode the equivalence property
    test runs both sides of. Default false. *)

(** {1 Windowed reads} *)

type agg_result = {
  value : float;
  scanned : int;
      (** samples touched by this call: the full window population on
          the naive path; on the incremental path only the samples
          expired now (amortized O(1)) plus, for QUANTILE, the
          in-window suffix it ranked *)
  incremental : bool;  (** whether a registered demand served it *)
}

val aggregate_result :
  t -> key:string -> fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> agg_result
(** Windowed aggregate with cost accounting — the VM's entry point.
    Empty windows yield 0 for every function, so rules are total.
    RATE is the sample {e sum} divided by the window in seconds —
    saving 0/1 event markers gives events per second. DELTA is the
    newest sample minus the oldest in the window (a trend signal). *)

val aggregate :
  t -> key:string -> fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> float
(** [aggregate t ~key ~fn ~window_ns ~param =
    (aggregate_result t ...).value]. *)

(** {1 Pre-resolved handles}

    The JIT tier resolves a read's store routing, entry, and streaming
    demand once at monitor install, reducing the per-check read to a
    few loads and generation compares. Handle reads are observationally
    identical to {!load}/{!aggregate_result}: same counters, same trace
    instants, same values. Handles self-invalidate — any later
    {!set_global_tier}/{!set_shards}, a [set_force_naive true], or a
    released demand degrades the read to the exact slow path rather
    than returning stale state. *)

type load_handle

val load_handle : t -> string -> load_handle option
(** [None] when the key currently reads as a cross-shard merge on the
    fleet tier (no single entry to pin); callers fall back to a tier
    that routes every read dynamically. *)

val handle_load : load_handle -> float
(** Same result and counter effects as [load] on the handle's store. *)

type agg_handle

val agg_handle :
  t -> key:string -> fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> agg_handle option
(** [None] under the same cross-shard condition as {!load_handle}. *)

val handle_aggregate : agg_handle -> agg_result
(** Same result, counter effects and trace instant as
    [aggregate_result] with the handle's shape. *)

val window_samples : t -> key:string -> window_ns:float -> float array
(** The raw samples inside the window, oldest first. For
    instrumentation that needs more than the built-in aggregates
    (e.g. a two-sample KS statistic against a training set). *)

val samples_in_window : t -> key:string -> window_ns:float -> int
(** How many samples a naive aggregate over this window would scan;
    O(log window) by binary search. *)

(** {1 Cross-shard merge}

    Fleet-wide aggregation composes per-shard streaming state instead
    of re-scanning every shard: each shard {e exports} a mergeable
    summary of one (key, fn, window, param) shape — the running
    count/sum/sum-of-squares, the front of the monotonic deque, the
    window head/tail, or the in-window value multiset for QUANTILE —
    and the fleet tier folds them with {!Merge.union}. The merged
    result is verified against the naive concat-and-scan oracle by the
    equivalence property tests and the fleet soak. *)

module Merge : sig
  type state = {
    count : int;
    sum : float;
    sumsq : float;
    nans : int;  (** NaN samples in window; MIN/MAX answer NaN while > 0 *)
    minv : float option;  (** min over non-NaN in-window samples *)
    maxv : float option;
    oldest : (Gr_util.Time_ns.t * float) option;
    newest : (Gr_util.Time_ns.t * float) option;
    samples : float array;  (** in-window values (QUANTILE exports only) *)
  }

  val empty : state
  (** Unit of {!union}: the state of an empty window. *)

  val union : state -> state -> state
  (** Associative merge; the left argument is the earlier shard
      position, which decides timestamp ties for DELTA's window
      head/tail exactly like the stable merged-window sort. *)

  val value : fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> state -> float
  (** The aggregate a merged state answers — same empty-window and NaN
      semantics as {!aggregate}. *)
end

val export_state :
  ?now:Gr_util.Time_ns.t ->
  t ->
  key:string ->
  fn:Gr_dsl.Ast.agg ->
  window_ns:float ->
  param:float ->
  Merge.state
(** One shard's mergeable summary for the shape, after lazy expiry —
    O(1) amortized when the shape has a registered demand (QUANTILE
    pays its in-window suffix), a window scan otherwise. On a
    fleet-tier store this already folds all members. [?now] overrides
    the window cutoff clock (default: the store's own) — parallel
    fleets pass the reading store's clock so shards whose clocks sit
    at the epoch boundary are cut consistently with the merged naive
    scan. *)

val set_global_publish : t -> (string -> float -> unit) option -> unit
(** Parallel-fleet interception hook (docs/PARALLEL.md): when set, a
    {!save} of a global-scoped key that would cross into a {e foreign}
    global tier calls the hook instead of writing the tier directly.
    Node stores in a parallel fleet use it to buffer cross-domain
    GLOBAL saves as intents replayed deterministically at the epoch
    barrier. Saves that resolve to the store itself are never
    intercepted; [None] (the default) restores direct writes. *)

val on_save : t -> (string -> float -> unit) -> unit
(** Global subscription used by the runtime's ON_CHANGE dispatch and
    by policies that watch control keys (e.g. [ml_enabled]).
    Registration is O(1); subscribers are notified in registration
    order. *)

val save_count : t -> int
(** Total saves since creation. *)

val load_count : t -> int
(** Total loads since creation. *)

val agg_hit_count : t -> int
(** Aggregate reads served by a registered demand. *)

val agg_miss_count : t -> int
(** Aggregate reads that fell back to the naive scan (no demand
    registered, or {!set_force_naive}). *)

val expired_count : t -> int
(** Samples retired from demand windows so far, by lazy expiry or
    capacity eviction — the amortized cost the streaming path pays
    instead of re-scanning. *)
