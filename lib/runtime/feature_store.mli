(** The global feature store (§4.3).

    Guardrails aggregate system-wide metrics "over time or across many
    function invocations" without ad-hoc kernel data structures; the
    store is the single state channel between kernel instrumentation,
    learned-policy bookkeeping and monitors.

    Each key holds its latest value plus a bounded ring of
    timestamped samples (bounded memory is non-negotiable in-kernel;
    the oldest samples are evicted first). Windowed aggregates are
    computed over the samples whose timestamp falls within
    [(now - window, now]]. *)

type t

val create : clock:(unit -> Gr_util.Time_ns.t) -> ?capacity_per_key:int -> unit -> t
(** [capacity_per_key] defaults to 4096 samples. *)

val set_tracer : t -> Gr_trace.Tracer.t -> unit
(** Attach a tracer. When tracing is enabled, every SAVE emits a
    counter event (["store:<key>"], so Chrome plots each key as a
    time series) and every windowed aggregate an instant event
    carrying the scan size. Individual LOADs are counted
    ({!load_count}) but not traced per-call — they are the hottest
    operation in the system and per-load events would be all volume,
    no signal; the per-check trace events already carry the VM's
    dynamic cost. *)

val save : t -> string -> float -> unit
(** Appends a timestamped sample and updates the latest value.
    Notifies {!on_save} subscribers after the write. *)

val load : t -> string -> float
(** Latest value; 0. for a key never saved (LOAD's semantics). *)

val mem : t -> string -> bool
val keys : t -> string list

val aggregate :
  t -> key:string -> fn:Gr_dsl.Ast.agg -> window_ns:float -> param:float -> float
(** Windowed aggregate. Empty windows yield 0 (for AVG, SUM, COUNT,
    RATE, MIN, MAX, STDDEV) and 0 for QUANTILE, so rules are total.
    RATE is the sample {e sum} divided by the window in seconds —
    saving 0/1 event markers gives events per second. DELTA is the
    newest sample minus the oldest in the window (a trend signal). *)

val window_samples : t -> key:string -> window_ns:float -> float array
(** The raw samples inside the window, oldest first. For
    instrumentation that needs more than the built-in aggregates
    (e.g. a two-sample KS statistic against a training set). *)

val samples_in_window : t -> key:string -> window_ns:float -> int
(** How many samples an aggregate over this window would scan; the
    VM's dynamic cost accounting uses this. *)

val on_save : t -> (string -> float -> unit) -> unit
(** Global subscription used by the runtime's ON_CHANGE dispatch and
    by policies that watch control keys (e.g. [ml_enabled]). *)

val save_count : t -> int
(** Total saves since creation. *)

val load_count : t -> int
(** Total loads since creation. *)
