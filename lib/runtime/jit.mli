(** Closure template JIT — execution tier 2.

    At install time, {!compile} specializes a verified program into a
    chain of closures threaded by tail calls: constants folded at
    compile time, feature-store reads pre-resolved to
    {!Feature_store.load_handle}/{!Feature_store.agg_handle},
    operators and constant operands baked into each closure's
    environment, and load/agg-vs-constant comparisons fused into
    single steps. A check is then a straight run of indirect jumps —
    no per-check dispatch, operand decoding or frame allocation.

    Results are bit-identical to {!Vm.run} on the same store state
    (same value, accounting, store counters and trace instants); the
    cross-tier differential rig in test/test_fuzz.ml pins this. *)

type t

val compile : store:Feature_store.t -> slots:string array -> Gr_compiler.Ir.program -> t option
(** [None] when the program reads a sharded (fleet cross-shard merged)
    key, which has no handle fast path — the engine then falls back to
    the register tier. Precondition: the program passed
    {!Gr_compiler.Verify.verify} against these slots. *)

val run : t -> Vm.result
(** Not reentrant: a compiled program owns its register frame. *)
