open Gr_util

type entry = {
  samples : (Time_ns.t * float) Ring.t;
  mutable latest : float;
}

type t = {
  clock : unit -> Time_ns.t;
  capacity_per_key : int;
  entries : (string, entry) Hashtbl.t;
  mutable subscribers : (string -> float -> unit) list;
  mutable saves : int;
  mutable loads : int;
  mutable tracer : Gr_trace.Tracer.t option;
}

let create ~clock ?(capacity_per_key = 4096) () =
  if capacity_per_key <= 0 then invalid_arg "Feature_store.create: capacity must be positive";
  {
    clock;
    capacity_per_key;
    entries = Hashtbl.create 64;
    subscribers = [];
    saves = 0;
    loads = 0;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- Some tracer

let tracing t = match t.tracer with Some tr -> Gr_trace.Tracer.enabled tr | None -> false

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let e = { samples = Ring.create ~capacity:t.capacity_per_key; latest = 0. } in
    Hashtbl.add t.entries key e;
    e

let save t key value =
  let e = entry t key in
  e.latest <- value;
  Ring.push e.samples (t.clock (), value);
  t.saves <- t.saves + 1;
  (* Counter events let Chrome/Perfetto plot each key as a time
     series; emitted before subscribers so the SAVE sample precedes
     any ON_CHANGE check it wakes. *)
  if tracing t then
    Gr_trace.Tracer.counter (Option.get t.tracer) ~cat:"store" ("store:" ^ key)
      [ ("value", value) ];
  List.iter (fun fn -> fn key value) t.subscribers

let load t key =
  t.loads <- t.loads + 1;
  match Hashtbl.find_opt t.entries key with Some e -> e.latest | None -> 0.
let mem t key = Hashtbl.mem t.entries key
let keys t = List.sort String.compare (List.of_seq (Hashtbl.to_seq_keys t.entries))

let window_values t ~key ~window_ns =
  match Hashtbl.find_opt t.entries key with
  | None -> []
  | Some e ->
    let now = t.clock () in
    let cutoff = now - int_of_float window_ns in
    Ring.fold
      (fun acc (at, v) -> if at > cutoff then v :: acc else acc)
      [] e.samples

let window_samples t ~key ~window_ns =
  (* window_values folds newest-first; reverse to oldest-first. *)
  Array.of_list (List.rev (window_values t ~key ~window_ns))

let samples_in_window t ~key ~window_ns = List.length (window_values t ~key ~window_ns)

let agg_name : Gr_dsl.Ast.agg -> string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Rate -> "RATE"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Stddev -> "STDDEV"
  | Quantile -> "QUANTILE"
  | Delta -> "DELTA"

let aggregate t ~key ~fn ~window_ns ~param =
  let values = window_values t ~key ~window_ns in
  if tracing t then
    Gr_trace.Tracer.instant (Option.get t.tracer) ~cat:"store"
      ~args:
        [
          ("key", Gr_trace.Event.Str key);
          ("window_ns", Gr_trace.Event.Float window_ns);
          ("samples", Gr_trace.Event.Int (List.length values));
        ]
      ("agg:" ^ agg_name fn);
  match (fn : Gr_dsl.Ast.agg) with
  | Count -> float_of_int (List.length values)
  | Sum -> List.fold_left ( +. ) 0. values
  | Rate ->
    let sum = List.fold_left ( +. ) 0. values in
    sum /. (window_ns /. 1e9)
  | Avg -> (
    match values with
    | [] -> 0.
    | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values))
  | Min -> ( match values with [] -> 0. | v :: rest -> List.fold_left Float.min v rest)
  | Max -> ( match values with [] -> 0. | v :: rest -> List.fold_left Float.max v rest)
  | Stddev -> Stats.stddev (Array.of_list values)
  | Quantile -> (
    match values with [] -> 0. | _ -> Stats.quantile (Array.of_list values) param)
  | Delta -> (
    (* window_values folds newest-first, so the head is the newest
       sample and the last element the oldest in the window. *)
    match values with
    | [] -> 0.
    | newest :: _ ->
      let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> newest in
      newest -. last values)

let on_save t fn = t.subscribers <- t.subscribers @ [ fn ]
let save_count t = t.saves
let load_count t = t.loads
