open Gr_util

(* Scoped keys. The flat string namespace every caller already uses is
   node-local sugar: a plain key lives in this store instance, while a
   key carrying the canonical "global::" encoding (what the DSL's
   GLOBAL(key) qualifier lowers to) is routed to the fleet-wide tier.
   A standalone store is its own global tier, so single-node behaviour
   is untouched — the scoped key simply lands in a distinct entry. *)
module Key = struct
  type t = Node of int * string | Global of string

  let of_id ~node_id id =
    if Gr_dsl.Ast.is_global_key id then Global (Gr_dsl.Ast.local_name id)
    else Node (node_id, id)

  let id = function
    | Global name -> Gr_dsl.Ast.global_key name
    | Node (_, name) -> name

  let node_id = function Global _ -> None | Node (i, _) -> Some i

  let to_string = function
    | Global name -> Printf.sprintf "GLOBAL(%s)" name
    | Node (i, name) -> Gr_dsl.Ast.node_key i name
end

(* A demand is one (fn, window, param) aggregate registered against a
   key, kept incrementally so checks don't re-scan the ring.

   Samples are numbered by [seq], the entry's total push count; the
   demand tracks [oldest_seq], the first sample still inside its
   window. Samples leave a demand exactly once, either

   - lazily against the clock on read ([expire]), walking the ring
     from [oldest_seq] while timestamps fall at or before the cutoff,
     or
   - eagerly on capacity eviction ([save]), when the ring is about to
     overwrite its oldest slot — the only moment the evicted value is
     still readable.

   Running count/sum/sum-of-squares serve COUNT/SUM/RATE/AVG/STDDEV;
   MIN/MAX keep a monotonic deque of (seq, value); DELTA reads the
   ring directly at [oldest_seq]; QUANTILE gathers the in-window
   suffix located by binary search and ranks it. *)
type demand = {
  fn : Gr_dsl.Ast.agg;
  window_ns : float;
  param : float;
  mutable refs : int;
  mutable oldest_seq : int;
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable nans : int; (* NaN samples currently in window *)
  mutable extremes : int; (* non-finite or huge samples in window *)
  mutable needs_rebuild : bool;
  extrema : (int * float) Deque.t option; (* Min/Max only *)
}

(* A sample this large poisons the running sums: once admitted, NaN and
   infinity never subtract back out, and a finite-but-huge value leaves
   catastrophic cancellation behind when it retires. Such samples are
   counted while in the window (results agree with the naive scan,
   which sees the same values), and the running state is rebuilt from
   the ring the moment the last one leaves. Legitimate signals stay
   orders of magnitude below the threshold, so rebuilds only happen
   when something (e.g. a fault injector) corrupts a key. *)
let is_extreme v = (not (Float.is_finite v)) || Float.abs v > 1e11

type entry = {
  samples : (Time_ns.t * float) Ring.t;
  mutable latest : float;
  mutable pushes : int; (* total saves ever; the next sample's seq *)
  mutable demands : demand list; (* few per key; linear lookup *)
}

type t = {
  clock : unit -> Time_ns.t;
  capacity_per_key : int;
  entries : (string, entry) Hashtbl.t;
  subscribers : (string -> float -> unit) Vec.t;
  mutable saves : int;
  mutable loads : int;
  mutable agg_hits : int;
  mutable agg_misses : int;
  mutable expired : int;
  mutable n_demands : int;
  mutable force_naive : bool;
  mutable tracer : Gr_trace.Tracer.t option;
  mutable node_id : int;
  mutable global_tier : t option; (* None: this store is its own tier *)
  mutable shards : t array; (* fleet tier: node stores merged under plain keys *)
  (* Parallel fleet interception: when set, saves that would cross
     into a foreign global tier are handed to this hook instead of
     mutating the tier directly (docs/PARALLEL.md). *)
  mutable global_publish : (string -> float -> unit) option;
  (* Bumped whenever key routing changes (global tier / shards), so
     pre-resolved handles can detect that their cached store is no
     longer the right one and fall back to the exact slow path. *)
  mutable topo_gen : int;
}

let create ~clock ?(capacity_per_key = 4096) () =
  if capacity_per_key <= 0 then invalid_arg "Feature_store.create: capacity must be positive";
  {
    clock;
    capacity_per_key;
    entries = Hashtbl.create 64;
    subscribers = Vec.create ();
    saves = 0;
    loads = 0;
    agg_hits = 0;
    agg_misses = 0;
    expired = 0;
    n_demands = 0;
    force_naive = false;
    tracer = None;
    node_id = 0;
    global_tier = None;
    shards = [||];
    global_publish = None;
    topo_gen = 0;
  }

let set_tracer t tracer = t.tracer <- Some tracer
let clear_tracer t = t.tracer <- None
let node_id t = t.node_id
let set_node_id t id = t.node_id <- id

let set_global_tier t g =
  (if g == t then t.global_tier <- None else t.global_tier <- Some g);
  t.topo_gen <- t.topo_gen + 1

let global_tier t = match t.global_tier with Some g -> g | None -> t

let set_shards t shards =
  t.shards <- Array.copy shards;
  t.topo_gen <- t.topo_gen + 1
let shards t = Array.copy t.shards

(* Where a key's entry lives: global-scoped keys go to the fleet tier
   (self when standalone), everything else stays here. *)
let resolve t key =
  if Gr_dsl.Ast.is_global_key key then global_tier t else t

(* A fleet-tier store answers plain keys as the merged view over its
   own entries plus every node shard; its own table is member 0 so
   fleet-level saves of plain keys stay visible. *)
let sharded t key = Array.length t.shards > 0 && not (Gr_dsl.Ast.is_global_key key)

let members t = t :: Array.to_list t.shards

let tracing t = match t.tracer with Some tr -> Gr_trace.Tracer.enabled tr | None -> false

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let e =
      { samples = Ring.create ~capacity:t.capacity_per_key; latest = 0.; pushes = 0; demands = [] }
    in
    Hashtbl.add t.entries key e;
    e

(* ---------- streaming demand maintenance ---------- *)

let retire t d v =
  d.count <- d.count - 1;
  if Float.is_nan v then d.nans <- d.nans - 1;
  if is_extreme v then begin
    d.extremes <- d.extremes - 1;
    if d.extremes = 0 then d.needs_rebuild <- true
  end;
  if d.count = 0 then begin
    (* Resetting on empty kills floating-point drift: each non-empty
       stretch of the window accumulates its own error, none carries
       over. *)
    d.sum <- 0.;
    d.sumsq <- 0.;
    d.needs_rebuild <- false
  end
  else begin
    d.sum <- d.sum -. v;
    d.sumsq <- d.sumsq -. (v *. v);
    (* Catastrophic cancellation: if the retired sample dominated the
       running sums, the subtraction left mostly the rounding error
       accumulated while it was in the window (an adversarial 1e9
       among 100-scale samples corrupts AVG/STDDEV long after it
       leaves). The ratio test is NaN-safe — comparisons are false
       when a NaN is still in the window, and the nans/extremes
       counters handle that case. *)
    if
      (not d.needs_rebuild)
      && (Float.abs v > Float.abs d.sum || v *. v > d.sumsq)
    then d.needs_rebuild <- true
  end;
  t.expired <- t.expired + 1

let admit d seq v =
  d.count <- d.count + 1;
  d.sum <- d.sum +. v;
  d.sumsq <- d.sumsq +. (v *. v);
  if Float.is_nan v then d.nans <- d.nans + 1;
  if is_extreme v then d.extremes <- d.extremes + 1;
  match d.extrema with
  | None -> ()
  | Some dq ->
    if not (Float.is_nan v) then begin
      (* NaN never enters the monotonic deque (it compares false with
         everything and would wedge there); MIN/MAX answer NaN from
         the [nans] counter while one is in the window instead. *)
      (match d.fn with
      | Min -> Deque.drop_back_while (fun (_, back) -> back >= v) dq
      | Max -> Deque.drop_back_while (fun (_, back) -> back <= v) dq
      | _ -> ());
      Deque.push_back dq (seq, v)
    end

(* Recompute the running state from the retained in-window samples —
   the recovery path after the last poisoning sample leaves the
   window. O(window), but only ever runs at that transition. *)
let rebuild e d =
  d.needs_rebuild <- false;
  d.count <- 0;
  d.sum <- 0.;
  d.sumsq <- 0.;
  d.nans <- 0;
  d.extremes <- 0;
  (match d.extrema with Some dq -> Deque.clear dq | None -> ());
  let base = e.pushes - Ring.length e.samples in
  for seq = d.oldest_seq to e.pushes - 1 do
    let _, v = Ring.get e.samples (seq - base) in
    admit d seq v
  done

let maybe_rebuild e d = if d.needs_rebuild then rebuild e d

(* Advance [oldest_seq] past samples whose timestamp left the window;
   returns how many were retired (the check's amortized scan cost). *)
let expire t e d ~now =
  let cutoff = now - int_of_float d.window_ns in
  let base = e.pushes - Ring.length e.samples in
  let expired = ref 0 in
  let continue = ref true in
  while !continue && d.oldest_seq < e.pushes do
    let at, v = Ring.get e.samples (d.oldest_seq - base) in
    if at <= cutoff then begin
      retire t d v;
      d.oldest_seq <- d.oldest_seq + 1;
      incr expired
    end
    else continue := false
  done;
  (match d.extrema with
  | Some dq -> Deque.drop_front_while (fun (seq, _) -> seq < d.oldest_seq) dq
  | None -> ());
  maybe_rebuild e d;
  !expired

(* The ring is about to overwrite its oldest slot: any demand still
   counting that sample must give it up now, while the value is
   readable. *)
let evict_oldest t e =
  match Ring.oldest e.samples with
  | None -> ()
  | Some (_, v) ->
    let evict_seq = e.pushes - Ring.length e.samples in
    List.iter
      (fun d ->
        if d.oldest_seq <= evict_seq then begin
          retire t d v;
          d.oldest_seq <- evict_seq + 1;
          (match d.extrema with
          | Some dq -> Deque.drop_front_while (fun (seq, _) -> seq <= evict_seq) dq
          | None -> ());
          maybe_rebuild e d
        end)
      e.demands

let save_here t key value =
  let e = entry t key in
  e.latest <- value;
  if Ring.length e.samples = Ring.capacity e.samples then evict_oldest t e;
  Ring.push e.samples (t.clock (), value);
  let seq = e.pushes in
  e.pushes <- e.pushes + 1;
  List.iter (fun d -> admit d seq value) e.demands;
  t.saves <- t.saves + 1;
  (* Counter events let Chrome/Perfetto plot each key as a time
     series; emitted before subscribers so the SAVE sample precedes
     any ON_CHANGE check it wakes. The counter's span is the causal
     parent of every subscriber it wakes, so ON_CHANGE cascades trace
     back to the write that triggered them. *)
  if tracing t then begin
    let tr = Option.get t.tracer in
    let span = Gr_trace.Tracer.fresh_span tr in
    Gr_trace.Tracer.counter tr ~cat:"store" ("store:" ^ key) ~span [ ("value", value) ];
    let prev = Gr_trace.Tracer.current_span tr in
    Gr_trace.Tracer.set_current tr (Some span);
    Fun.protect
      ~finally:(fun () -> Gr_trace.Tracer.set_current tr prev)
      (fun () -> Vec.iter (fun fn -> fn key value) t.subscribers)
  end
  else Vec.iter (fun fn -> fn key value) t.subscribers

let set_global_publish t fn = t.global_publish <- fn

let save t key value =
  (* A global-scoped save from a node normally writes straight into
     the fleet tier. In a parallel fleet that write would cross domain
     boundaries mid-epoch, so node stores install a [global_publish]
     hook that buffers the save as an intent; the control deployment
     replays it at the epoch barrier in deterministic order. Saves
     that stay local (including a fleet tier's own global saves, where
     [resolve] is the store itself) are never intercepted. *)
  match t.global_publish with
  | Some publish when not (resolve t key == t) -> publish key value
  | _ -> save_here (resolve t key) key value

(* Merged latest for plain keys on a fleet-tier store: the value of
   the newest sample across all members. Ties on the timestamp go to
   the later member, matching the merged window ordering (stable by
   member position). *)
let merged_load t key =
  let best = ref None in
  List.iter
    (fun m ->
      match Hashtbl.find_opt m.entries key with
      | None -> ()
      | Some e -> (
        match Ring.newest e.samples with
        | None -> ()
        | Some (at, v) -> (
          match !best with
          | Some (at', _) when at' > at -> ()
          | _ -> best := Some (at, v))))
    (members t);
  match !best with Some (_, v) -> v | None -> 0.

let load t key =
  let t = resolve t key in
  t.loads <- t.loads + 1;
  if sharded t key then merged_load t key
  else match Hashtbl.find_opt t.entries key with Some e -> e.latest | None -> 0.

let mem t key =
  let t = resolve t key in
  if sharded t key then List.exists (fun m -> Hashtbl.mem m.entries key) (members t)
  else Hashtbl.mem t.entries key

let keys t =
  if Array.length t.shards = 0 then
    List.sort String.compare (List.of_seq (Hashtbl.to_seq_keys t.entries))
  else
    List.sort_uniq String.compare
      (List.concat_map (fun m -> List.of_seq (Hashtbl.to_seq_keys m.entries)) (members t))

(* ---------- demand registration ---------- *)

let find_demand e ~fn ~window_ns ~param =
  List.find_opt
    (fun d -> d.fn = fn && d.window_ns = window_ns && d.param = param)
    e.demands

let rec register_demand t ~key ~fn ~window_ns ~param =
  let t = resolve t key in
  (* Fleet tier: the merged read is incremental only if every member
     keeps streaming state for the shape, so the registration fans out
     to each node shard (and is kept on the own table for
     bookkeeping/enumeration). *)
  if sharded t key then
    Array.iter (fun s -> register_demand s ~key ~fn ~window_ns ~param) t.shards;
  register_demand_here t ~key ~fn ~window_ns ~param

and register_demand_here t ~key ~fn ~window_ns ~param =
  let e = entry t key in
  match find_demand e ~fn ~window_ns ~param with
  | Some d -> d.refs <- d.refs + 1
  | None ->
    let d =
      {
        fn;
        window_ns;
        param;
        refs = 1;
        oldest_seq = e.pushes - Ring.length e.samples;
        count = 0;
        sum = 0.;
        sumsq = 0.;
        nans = 0;
        extremes = 0;
        needs_rebuild = false;
        extrema =
          (match fn with Min | Max -> Some (Deque.create ()) | _ -> None);
      }
    in
    (* Replay retained samples so a demand registered mid-run agrees
       with the scan from its first read; anything already outside the
       window is trimmed by the next expiry. *)
    let seq = ref d.oldest_seq in
    Ring.iter
      (fun (_, v) ->
        admit d !seq v;
        incr seq)
      e.samples;
    e.demands <- d :: e.demands;
    t.n_demands <- t.n_demands + 1

let rec release_demand t ~key ~fn ~window_ns ~param =
  let t = resolve t key in
  if sharded t key then
    Array.iter (fun s -> release_demand s ~key ~fn ~window_ns ~param) t.shards;
  release_demand_here t ~key ~fn ~window_ns ~param

and release_demand_here t ~key ~fn ~window_ns ~param =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e -> (
    match find_demand e ~fn ~window_ns ~param with
    | None -> ()
    | Some d ->
      d.refs <- d.refs - 1;
      if d.refs <= 0 then begin
        e.demands <- List.filter (fun d' -> d' != d) e.demands;
        t.n_demands <- t.n_demands - 1
      end)

let demand_count t = t.n_demands
let set_force_naive t flag = t.force_naive <- flag

let demand_shapes t =
  Hashtbl.fold
    (fun key e acc ->
      List.fold_left
        (fun acc d -> (key, d.fn, d.window_ns, d.param) :: acc)
        acc e.demands)
    t.entries []
  |> List.sort compare

(* ---------- windowed reads ---------- *)

(* First ring index inside the window, found by binary search over the
   time-ordered samples — O(log n) instead of a full fold. *)
let first_inside e ~now ~window_ns =
  let cutoff = now - int_of_float window_ns in
  Ring.bsearch_first (fun (at, _) -> at > cutoff) e.samples

(* In-window (timestamp, value) pairs for one member, oldest first. *)
let member_window e ~now ~window_ns =
  let i0 = first_inside e ~now ~window_ns in
  Array.init (Ring.length e.samples - i0) (fun i -> Ring.get e.samples (i0 + i))

(* The merged window of a fleet-tier plain key: every member's
   in-window samples, sorted by timestamp. Each member's slice is
   already time-ordered and the sort is stable, so equal timestamps
   keep member order (own table first, then shards in index order) —
   the tie-break DELTA's merged oldest/newest must agree with. The
   window cutoff uses the fleet store's clock for every member; in a
   fleet all stores share the sim clock anyway. *)
let merged_window t ~key ~window_ns =
  let now = t.clock () in
  let parts =
    List.filter_map
      (fun m ->
        match Hashtbl.find_opt m.entries key with
        | None -> None
        | Some e -> Some (member_window e ~now ~window_ns))
      (members t)
  in
  let all = Array.concat parts in
  Array.stable_sort (fun (a, _) (b, _) -> compare (a : Time_ns.t) b) all;
  all

(* Newest-first in-window values: the naive scan, kept verbatim as the
   oracle the incremental path is property-tested against. On a
   fleet-tier store this is the concat-and-scan over all shards. *)
let window_values t ~key ~window_ns =
  let t = resolve t key in
  if sharded t key then
    Array.fold_left (fun acc (_, v) -> v :: acc) [] (merged_window t ~key ~window_ns)
  else
    match Hashtbl.find_opt t.entries key with
    | None -> []
    | Some e ->
      let now = t.clock () in
      let cutoff = now - int_of_float window_ns in
      Ring.fold
        (fun acc (at, v) -> if at > cutoff then v :: acc else acc)
        [] e.samples

let window_samples t ~key ~window_ns =
  let t = resolve t key in
  if sharded t key then Array.map snd (merged_window t ~key ~window_ns)
  else
    match Hashtbl.find_opt t.entries key with
    | None -> [||]
    | Some e ->
      let i0 = first_inside e ~now:(t.clock ()) ~window_ns in
      Array.init (Ring.length e.samples - i0) (fun i -> snd (Ring.get e.samples (i0 + i)))

let samples_in_window t ~key ~window_ns =
  let t = resolve t key in
  if sharded t key then
    let now = t.clock () in
    List.fold_left
      (fun acc m ->
        match Hashtbl.find_opt m.entries key with
        | None -> acc
        | Some e -> acc + Ring.length e.samples - first_inside e ~now ~window_ns)
      0 (members t)
  else
    match Hashtbl.find_opt t.entries key with
    | None -> 0
    | Some e -> Ring.length e.samples - first_inside e ~now:(t.clock ()) ~window_ns

let agg_name : Gr_dsl.Ast.agg -> string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Rate -> "RATE"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Stddev -> "STDDEV"
  | Quantile -> "QUANTILE"
  | Delta -> "DELTA"

type agg_result = { value : float; scanned : int; incremental : bool }

let naive_aggregate t ~key ~fn ~window_ns ~param =
  let values = window_values t ~key ~window_ns in
  let value =
    match (fn : Gr_dsl.Ast.agg) with
    | Count -> float_of_int (List.length values)
    | Sum -> List.fold_left ( +. ) 0. values
    | Rate ->
      let sum = List.fold_left ( +. ) 0. values in
      sum /. (window_ns /. 1e9)
    | Avg -> (
      match values with
      | [] -> 0.
      | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values))
    | Min -> ( match values with [] -> 0. | v :: rest -> List.fold_left Float.min v rest)
    | Max -> ( match values with [] -> 0. | v :: rest -> List.fold_left Float.max v rest)
    | Stddev -> Stats.stddev (Array.of_list values)
    | Quantile -> (
      match values with [] -> 0. | _ -> Stats.quantile (Array.of_list values) param)
    | Delta -> (
      (* window_values folds newest-first, so the head is the newest
         sample and the last element the oldest in the window. *)
      match values with
      | [] -> 0.
      | newest :: _ ->
        let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> newest in
        newest -. last values)
  in
  { value; scanned = List.length values; incremental = false }

let demand_aggregate t e d ~window_ns ~param =
  let now = t.clock () in
  let expired = expire t e d ~now in
  let base = e.pushes - Ring.length e.samples in
  let value, extra_scan =
    match d.fn with
    | Count -> (float_of_int d.count, 0)
    | Sum -> (d.sum, 0)
    | Rate -> (d.sum /. (window_ns /. 1e9), 0)
    | Avg -> ((if d.count = 0 then 0. else d.sum /. float_of_int d.count), 0)
    | Min | Max -> (
      (* Float.min/Float.max propagate NaN, so the naive scan answers
         NaN whenever one is in the window; the deque (which NaN never
         enters) defers to the counter to agree. *)
      if d.nans > 0 then (Float.nan, 0)
      else
        match d.extrema with
        | Some dq -> (( match Deque.front dq with None -> 0. | Some (_, v) -> v), 0)
        | None -> (0., 0))
    | Stddev ->
      if d.count < 2 then (0., 0)
      else begin
        let n = float_of_int d.count in
        let mean = d.sum /. n in
        (sqrt (Float.max 0. ((d.sumsq /. n) -. (mean *. mean))), 0)
      end
    | Delta ->
      if d.oldest_seq >= e.pushes then (0., 0)
      else begin
        let _, oldest = Ring.get e.samples (d.oldest_seq - base) in
        let _, newest = Ring.get e.samples (Ring.length e.samples - 1) in
        (newest -. oldest, 0)
      end
    | Quantile ->
      (* No O(1) summary ranks arbitrary quantiles exactly; instead
         of folding the whole ring, binary-search the cutoff and rank
         only the in-window suffix. *)
      let i0 = first_inside e ~now ~window_ns:d.window_ns in
      let n = Ring.length e.samples - i0 in
      if n = 0 then (0., 0)
      else begin
        let xs = Array.init n (fun i -> snd (Ring.get e.samples (i0 + i))) in
        (Stats.quantile xs param, n)
      end
  in
  { value; scanned = expired + extra_scan; incremental = true }

(* ---------- cross-shard merge ---------- *)

(* Mergeable summary of one shard's streaming state for a single
   (key, fn, window, param) shape: the running count/sum/sumsq behind
   COUNT/SUM/RATE/AVG/STDDEV, the deque-of-extrema front behind
   MIN/MAX, the window head/tail behind DELTA and the in-window value
   multiset behind QUANTILE. [union] is associative with [empty] as
   unit, so a fleet-wide aggregate over N node shards folds N exports
   — each O(1) amortized on the streaming path — instead of
   re-scanning every shard's window. *)
module Merge = struct
  type state = {
    count : int;
    sum : float;
    sumsq : float;
    nans : int; (* NaN samples in the window; MIN/MAX answer NaN while > 0 *)
    minv : float option; (* min over non-NaN in-window samples *)
    maxv : float option;
    oldest : (Time_ns.t * float) option;
    newest : (Time_ns.t * float) option;
    samples : float array; (* in-window values (QUANTILE only) *)
  }

  let empty =
    {
      count = 0;
      sum = 0.;
      sumsq = 0.;
      nans = 0;
      minv = None;
      maxv = None;
      oldest = None;
      newest = None;
      samples = [||];
    }

  let opt2 f a b = match (a, b) with None, x | x, None -> x | Some x, Some y -> Some (f x y)

  (* [union a b] with [a] from the earlier shard position: timestamp
     ties on the window head go to [a], on the tail to [b] — the same
     tie-break as the stable merged-window sort the naive oracle
     scans. *)
  let union a b =
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      sumsq = a.sumsq +. b.sumsq;
      nans = a.nans + b.nans;
      minv = opt2 Float.min a.minv b.minv;
      maxv = opt2 Float.max a.maxv b.maxv;
      oldest =
        (match (a.oldest, b.oldest) with
        | None, x | x, None -> x
        | Some (ta, _), Some (tb, _) -> if tb < ta then b.oldest else a.oldest);
      newest =
        (match (a.newest, b.newest) with
        | None, x | x, None -> x
        | Some (ta, _), Some (tb, _) -> if tb >= ta then b.newest else a.newest);
      samples = Array.append a.samples b.samples;
    }

  let value ~fn ~window_ns ~param s =
    match (fn : Gr_dsl.Ast.agg) with
    | Count -> float_of_int s.count
    | Sum -> s.sum
    | Rate -> s.sum /. (window_ns /. 1e9)
    | Avg -> if s.count = 0 then 0. else s.sum /. float_of_int s.count
    | Min -> (
      if s.nans > 0 then Float.nan
      else match s.minv with Some v -> v | None -> 0.)
    | Max -> (
      if s.nans > 0 then Float.nan
      else match s.maxv with Some v -> v | None -> 0.)
    | Stddev ->
      if s.count < 2 then 0.
      else begin
        let n = float_of_int s.count in
        let mean = s.sum /. n in
        sqrt (Float.max 0. ((s.sumsq /. n) -. (mean *. mean)))
      end
    | Delta -> (
      match (s.newest, s.oldest) with
      | Some (_, nv), Some (_, ov) -> nv -. ov
      | _ -> 0.)
    | Quantile ->
      if Array.length s.samples = 0 then 0.
      else Stats.quantile (Array.copy s.samples) param
end

(* One member's export for a shape, plus read-cost accounting:
   (state, samples scanned, served incrementally). The streaming path
   exports the demand's running state after lazy expiry; without a
   demand (or under force_naive) the state is rebuilt by scanning the
   in-window suffix. *)
let export_here t ?now ~key ~fn ~window_ns ~param () =
  match Hashtbl.find_opt t.entries key with
  | None -> (Merge.empty, 0, true)
  | Some e -> (
    (* [?now] lets a merged read cut every member's window with the
       reader's clock. In a sequential fleet all stores share the sim
       clock so this changes nothing; in a parallel fleet the shards'
       clocks sit at the epoch boundary, ahead of the control plane
       mid-epoch, and using the shard's own clock here would expire
       samples the naive concat-and-scan oracle (which always cuts
       with the reading store's clock) still sees. *)
    let now = match now with Some n -> n | None -> t.clock () in
    let streaming =
      if t.force_naive then None else find_demand e ~fn ~window_ns ~param
    in
    match streaming with
    | Some d -> (
      let expired = expire t e d ~now in
      let base = e.pushes - Ring.length e.samples in
      match d.fn with
      | Count | Sum | Rate | Avg | Stddev ->
        ( { Merge.empty with count = d.count; sum = d.sum; sumsq = d.sumsq; nans = d.nans },
          expired,
          true )
      | Min | Max ->
        let front =
          match d.extrema with
          | Some dq -> Option.map snd (Deque.front dq)
          | None -> None
        in
        ( {
            Merge.empty with
            count = d.count;
            nans = d.nans;
            minv = (if d.fn = Min then front else None);
            maxv = (if d.fn = Max then front else None);
          },
          expired,
          true )
      | Delta ->
        if d.oldest_seq >= e.pushes then (Merge.empty, expired, true)
        else
          ( {
              Merge.empty with
              count = d.count;
              oldest = Some (Ring.get e.samples (d.oldest_seq - base));
              newest = Some (Ring.get e.samples (Ring.length e.samples - 1));
            },
            expired,
            true )
      | Quantile ->
        let i0 = first_inside e ~now ~window_ns in
        let n = Ring.length e.samples - i0 in
        ( {
            Merge.empty with
            count = n;
            samples = Array.init n (fun i -> snd (Ring.get e.samples (i0 + i)));
          },
          expired + n,
          true ))
    | None ->
      let win = member_window e ~now ~window_ns in
      let n = Array.length win in
      let st = ref Merge.empty in
      Array.iteri
        (fun i (at, v) ->
          let s = !st in
          st :=
            {
              Merge.count = s.count + 1;
              sum = s.sum +. v;
              sumsq = s.sumsq +. (v *. v);
              nans = (s.nans + if Float.is_nan v then 1 else 0);
              minv = (if Float.is_nan v then s.minv else Merge.opt2 Float.min s.minv (Some v));
              maxv = (if Float.is_nan v then s.maxv else Merge.opt2 Float.max s.maxv (Some v));
              oldest = (if i = 0 then Some (at, v) else s.oldest);
              newest = Some (at, v);
              samples = s.samples;
            })
        win;
      ({ !st with samples = Array.map snd win }, n, false))

let rec export_state ?now t ~key ~fn ~window_ns ~param =
  let t = resolve t key in
  let now = match now with Some n -> n | None -> t.clock () in
  if sharded t key then
    List.fold_left
      (fun acc m ->
        let s =
          if m == t then
            let s, _, _ = export_here m ~now ~key ~fn ~window_ns ~param () in
            s
          else export_state ~now m ~key ~fn ~window_ns ~param
        in
        Merge.union acc s)
      Merge.empty (members t)
  else
    let s, _, _ = export_here t ~now ~key ~fn ~window_ns ~param () in
    s

(* Fleet-tier aggregate over a plain key: fold every member's export
   into one merged state. Under force_naive the whole merged window is
   re-scanned instead — the concat-and-scan oracle the incremental
   merge is verified against. *)
let merged_aggregate t ~key ~fn ~window_ns ~param =
  if t.force_naive then naive_aggregate t ~key ~fn ~window_ns ~param
  else begin
    let now = t.clock () in
    let scanned = ref 0 in
    let incremental = ref true in
    let fold () =
      List.fold_left
        (fun acc m ->
          let s, n, inc = export_here m ~now ~key ~fn ~window_ns ~param () in
          scanned := !scanned + n;
          if not inc then incremental := false;
          Merge.union acc s)
        Merge.empty (members t)
    in
    let state =
      if Gr_trace.Selfcost.enabled () then
        Gr_trace.Selfcost.time Gr_trace.Selfcost.Store_merge fold
      else fold ()
    in
    {
      value = Merge.value ~fn ~window_ns ~param state;
      scanned = !scanned;
      incremental = !incremental;
    }
  end

(* [t] must already be the resolved store for [key]. *)
let emit_agg_trace t ~key ~fn ~window_ns (r : agg_result) =
  if tracing t then
    Gr_trace.Tracer.instant (Option.get t.tracer) ~cat:"store"
      ~args:
        [
          ("key", Gr_trace.Event.Str key);
          ("window_ns", Gr_trace.Event.Float window_ns);
          ("samples", Gr_trace.Event.Int r.scanned);
          ("incremental", Gr_trace.Event.Bool r.incremental);
        ]
      ("agg:" ^ agg_name fn)

let aggregate_result t ~key ~fn ~window_ns ~param =
  let t = resolve t key in
  let r =
    if sharded t key then begin
      let r = merged_aggregate t ~key ~fn ~window_ns ~param in
      if r.incremental then t.agg_hits <- t.agg_hits + 1
      else t.agg_misses <- t.agg_misses + 1;
      r
    end
    else
      match Hashtbl.find_opt t.entries key with
      | Some e when not t.force_naive -> (
        match find_demand e ~fn ~window_ns ~param with
        | Some d ->
          t.agg_hits <- t.agg_hits + 1;
          demand_aggregate t e d ~window_ns ~param
        | None ->
          t.agg_misses <- t.agg_misses + 1;
          naive_aggregate t ~key ~fn ~window_ns ~param)
      | _ ->
        t.agg_misses <- t.agg_misses + 1;
        naive_aggregate t ~key ~fn ~window_ns ~param
  in
  emit_agg_trace t ~key ~fn ~window_ns r;
  r

let aggregate t ~key ~fn ~window_ns ~param =
  (aggregate_result t ~key ~fn ~window_ns ~param).value

(* ---------- pre-resolved handles (JIT fast path) ----------

   A handle pins the resolve step and, lazily, the entry and streaming
   demand lookups, so the per-check read is a couple of loads and
   generation compares instead of hashing the key and walking the
   demand list. Handles never create entries (that would be observable
   through [mem]/[keys]); they cache an entry the first time it exists.
   Correctness guards, checked on every read:
   - [topo_gen] on both the handle's root store and its resolved store:
     any [set_global_tier]/[set_shards] after creation voids the
     cached routing and the read degrades to the exact slow path.
   - [force_naive] and a cached demand's [refs]: a released demand
     (refs = 0) is no longer maintained, so the handle re-finds or
     falls back. Demands are only removed when refs reaches 0, so an
     object with refs > 0 is guaranteed live. *)

type load_handle = {
  lh_root : t;
  lh_store : t; (* resolve lh_root lh_key, at creation *)
  lh_key : string;
  mutable lh_entry : entry option;
  lh_root_gen : int;
  lh_store_gen : int;
}

let load_handle t key =
  let s = resolve t key in
  if sharded s key then None
  else
    Some
      {
        lh_root = t;
        lh_store = s;
        lh_key = key;
        lh_entry = Hashtbl.find_opt s.entries key;
        lh_root_gen = t.topo_gen;
        lh_store_gen = s.topo_gen;
      }

let handle_load h =
  if h.lh_root.topo_gen <> h.lh_root_gen || h.lh_store.topo_gen <> h.lh_store_gen then
    load h.lh_root h.lh_key
  else begin
    let s = h.lh_store in
    s.loads <- s.loads + 1;
    match h.lh_entry with
    | Some e -> e.latest
    | None -> (
      match Hashtbl.find_opt s.entries h.lh_key with
      | Some e ->
        h.lh_entry <- Some e;
        e.latest
      | None -> 0.)
  end

type agg_handle = {
  ah_root : t;
  ah_store : t;
  ah_key : string;
  ah_fn : Gr_dsl.Ast.agg;
  ah_window_ns : float;
  ah_param : float;
  mutable ah_entry : entry option;
  mutable ah_demand : demand option;
  ah_root_gen : int;
  ah_store_gen : int;
}

let agg_handle t ~key ~fn ~window_ns ~param =
  let s = resolve t key in
  if sharded s key then None
  else begin
    let e = Hashtbl.find_opt s.entries key in
    let d =
      match e with Some e -> find_demand e ~fn ~window_ns ~param | None -> None
    in
    Some
      {
        ah_root = t;
        ah_store = s;
        ah_key = key;
        ah_fn = fn;
        ah_window_ns = window_ns;
        ah_param = param;
        ah_entry = e;
        ah_demand = d;
        ah_root_gen = t.topo_gen;
        ah_store_gen = s.topo_gen;
      }
  end

let handle_aggregate h =
  let s = h.ah_store in
  if h.ah_root.topo_gen <> h.ah_root_gen || s.topo_gen <> h.ah_store_gen || s.force_naive then
    aggregate_result h.ah_root ~key:h.ah_key ~fn:h.ah_fn ~window_ns:h.ah_window_ns
      ~param:h.ah_param
  else begin
    (match h.ah_demand with
    | Some d when d.refs > 0 -> ()
    | _ ->
      (match h.ah_entry with
      | None -> h.ah_entry <- Hashtbl.find_opt s.entries h.ah_key
      | Some _ -> ());
      h.ah_demand <-
        (match h.ah_entry with
        | Some e -> find_demand e ~fn:h.ah_fn ~window_ns:h.ah_window_ns ~param:h.ah_param
        | None -> None));
    match (h.ah_entry, h.ah_demand) with
    | Some e, Some d when d.refs > 0 ->
      s.agg_hits <- s.agg_hits + 1;
      let r = demand_aggregate s e d ~window_ns:h.ah_window_ns ~param:h.ah_param in
      emit_agg_trace s ~key:h.ah_key ~fn:h.ah_fn ~window_ns:h.ah_window_ns r;
      r
    | _ ->
      aggregate_result h.ah_root ~key:h.ah_key ~fn:h.ah_fn ~window_ns:h.ah_window_ns
        ~param:h.ah_param
  end

let on_save t fn = Vec.push t.subscribers fn
let save_count t = t.saves
let load_count t = t.loads
let agg_hit_count t = t.agg_hits
let agg_miss_count t = t.agg_misses
let expired_count t = t.expired
