open Gr_util

(* A demand is one (fn, window, param) aggregate registered against a
   key, kept incrementally so checks don't re-scan the ring.

   Samples are numbered by [seq], the entry's total push count; the
   demand tracks [oldest_seq], the first sample still inside its
   window. Samples leave a demand exactly once, either

   - lazily against the clock on read ([expire]), walking the ring
     from [oldest_seq] while timestamps fall at or before the cutoff,
     or
   - eagerly on capacity eviction ([save]), when the ring is about to
     overwrite its oldest slot — the only moment the evicted value is
     still readable.

   Running count/sum/sum-of-squares serve COUNT/SUM/RATE/AVG/STDDEV;
   MIN/MAX keep a monotonic deque of (seq, value); DELTA reads the
   ring directly at [oldest_seq]; QUANTILE gathers the in-window
   suffix located by binary search and ranks it. *)
type demand = {
  fn : Gr_dsl.Ast.agg;
  window_ns : float;
  param : float;
  mutable refs : int;
  mutable oldest_seq : int;
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable nans : int; (* NaN samples currently in window *)
  mutable extremes : int; (* non-finite or huge samples in window *)
  mutable needs_rebuild : bool;
  extrema : (int * float) Deque.t option; (* Min/Max only *)
}

(* A sample this large poisons the running sums: once admitted, NaN and
   infinity never subtract back out, and a finite-but-huge value leaves
   catastrophic cancellation behind when it retires. Such samples are
   counted while in the window (results agree with the naive scan,
   which sees the same values), and the running state is rebuilt from
   the ring the moment the last one leaves. Legitimate signals stay
   orders of magnitude below the threshold, so rebuilds only happen
   when something (e.g. a fault injector) corrupts a key. *)
let is_extreme v = (not (Float.is_finite v)) || Float.abs v > 1e11

type entry = {
  samples : (Time_ns.t * float) Ring.t;
  mutable latest : float;
  mutable pushes : int; (* total saves ever; the next sample's seq *)
  mutable demands : demand list; (* few per key; linear lookup *)
}

type t = {
  clock : unit -> Time_ns.t;
  capacity_per_key : int;
  entries : (string, entry) Hashtbl.t;
  subscribers : (string -> float -> unit) Vec.t;
  mutable saves : int;
  mutable loads : int;
  mutable agg_hits : int;
  mutable agg_misses : int;
  mutable expired : int;
  mutable n_demands : int;
  mutable force_naive : bool;
  mutable tracer : Gr_trace.Tracer.t option;
}

let create ~clock ?(capacity_per_key = 4096) () =
  if capacity_per_key <= 0 then invalid_arg "Feature_store.create: capacity must be positive";
  {
    clock;
    capacity_per_key;
    entries = Hashtbl.create 64;
    subscribers = Vec.create ();
    saves = 0;
    loads = 0;
    agg_hits = 0;
    agg_misses = 0;
    expired = 0;
    n_demands = 0;
    force_naive = false;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- Some tracer

let tracing t = match t.tracer with Some tr -> Gr_trace.Tracer.enabled tr | None -> false

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let e =
      { samples = Ring.create ~capacity:t.capacity_per_key; latest = 0.; pushes = 0; demands = [] }
    in
    Hashtbl.add t.entries key e;
    e

(* ---------- streaming demand maintenance ---------- *)

let retire t d v =
  d.count <- d.count - 1;
  if Float.is_nan v then d.nans <- d.nans - 1;
  if is_extreme v then begin
    d.extremes <- d.extremes - 1;
    if d.extremes = 0 then d.needs_rebuild <- true
  end;
  if d.count = 0 then begin
    (* Resetting on empty kills floating-point drift: each non-empty
       stretch of the window accumulates its own error, none carries
       over. *)
    d.sum <- 0.;
    d.sumsq <- 0.;
    d.needs_rebuild <- false
  end
  else begin
    d.sum <- d.sum -. v;
    d.sumsq <- d.sumsq -. (v *. v);
    (* Catastrophic cancellation: if the retired sample dominated the
       running sums, the subtraction left mostly the rounding error
       accumulated while it was in the window (an adversarial 1e9
       among 100-scale samples corrupts AVG/STDDEV long after it
       leaves). The ratio test is NaN-safe — comparisons are false
       when a NaN is still in the window, and the nans/extremes
       counters handle that case. *)
    if
      (not d.needs_rebuild)
      && (Float.abs v > Float.abs d.sum || v *. v > d.sumsq)
    then d.needs_rebuild <- true
  end;
  t.expired <- t.expired + 1

let admit d seq v =
  d.count <- d.count + 1;
  d.sum <- d.sum +. v;
  d.sumsq <- d.sumsq +. (v *. v);
  if Float.is_nan v then d.nans <- d.nans + 1;
  if is_extreme v then d.extremes <- d.extremes + 1;
  match d.extrema with
  | None -> ()
  | Some dq ->
    if not (Float.is_nan v) then begin
      (* NaN never enters the monotonic deque (it compares false with
         everything and would wedge there); MIN/MAX answer NaN from
         the [nans] counter while one is in the window instead. *)
      (match d.fn with
      | Min -> Deque.drop_back_while (fun (_, back) -> back >= v) dq
      | Max -> Deque.drop_back_while (fun (_, back) -> back <= v) dq
      | _ -> ());
      Deque.push_back dq (seq, v)
    end

(* Recompute the running state from the retained in-window samples —
   the recovery path after the last poisoning sample leaves the
   window. O(window), but only ever runs at that transition. *)
let rebuild e d =
  d.needs_rebuild <- false;
  d.count <- 0;
  d.sum <- 0.;
  d.sumsq <- 0.;
  d.nans <- 0;
  d.extremes <- 0;
  (match d.extrema with Some dq -> Deque.clear dq | None -> ());
  let base = e.pushes - Ring.length e.samples in
  for seq = d.oldest_seq to e.pushes - 1 do
    let _, v = Ring.get e.samples (seq - base) in
    admit d seq v
  done

let maybe_rebuild e d = if d.needs_rebuild then rebuild e d

(* Advance [oldest_seq] past samples whose timestamp left the window;
   returns how many were retired (the check's amortized scan cost). *)
let expire t e d ~now =
  let cutoff = now - int_of_float d.window_ns in
  let base = e.pushes - Ring.length e.samples in
  let expired = ref 0 in
  let continue = ref true in
  while !continue && d.oldest_seq < e.pushes do
    let at, v = Ring.get e.samples (d.oldest_seq - base) in
    if at <= cutoff then begin
      retire t d v;
      d.oldest_seq <- d.oldest_seq + 1;
      incr expired
    end
    else continue := false
  done;
  (match d.extrema with
  | Some dq -> Deque.drop_front_while (fun (seq, _) -> seq < d.oldest_seq) dq
  | None -> ());
  maybe_rebuild e d;
  !expired

(* The ring is about to overwrite its oldest slot: any demand still
   counting that sample must give it up now, while the value is
   readable. *)
let evict_oldest t e =
  match Ring.oldest e.samples with
  | None -> ()
  | Some (_, v) ->
    let evict_seq = e.pushes - Ring.length e.samples in
    List.iter
      (fun d ->
        if d.oldest_seq <= evict_seq then begin
          retire t d v;
          d.oldest_seq <- evict_seq + 1;
          (match d.extrema with
          | Some dq -> Deque.drop_front_while (fun (seq, _) -> seq <= evict_seq) dq
          | None -> ());
          maybe_rebuild e d
        end)
      e.demands

let save t key value =
  let e = entry t key in
  e.latest <- value;
  if Ring.length e.samples = Ring.capacity e.samples then evict_oldest t e;
  Ring.push e.samples (t.clock (), value);
  let seq = e.pushes in
  e.pushes <- e.pushes + 1;
  List.iter (fun d -> admit d seq value) e.demands;
  t.saves <- t.saves + 1;
  (* Counter events let Chrome/Perfetto plot each key as a time
     series; emitted before subscribers so the SAVE sample precedes
     any ON_CHANGE check it wakes. *)
  if tracing t then
    Gr_trace.Tracer.counter (Option.get t.tracer) ~cat:"store" ("store:" ^ key)
      [ ("value", value) ];
  Vec.iter (fun fn -> fn key value) t.subscribers

let load t key =
  t.loads <- t.loads + 1;
  match Hashtbl.find_opt t.entries key with Some e -> e.latest | None -> 0.
let mem t key = Hashtbl.mem t.entries key
let keys t = List.sort String.compare (List.of_seq (Hashtbl.to_seq_keys t.entries))

(* ---------- demand registration ---------- *)

let find_demand e ~fn ~window_ns ~param =
  List.find_opt
    (fun d -> d.fn = fn && d.window_ns = window_ns && d.param = param)
    e.demands

let register_demand t ~key ~fn ~window_ns ~param =
  let e = entry t key in
  match find_demand e ~fn ~window_ns ~param with
  | Some d -> d.refs <- d.refs + 1
  | None ->
    let d =
      {
        fn;
        window_ns;
        param;
        refs = 1;
        oldest_seq = e.pushes - Ring.length e.samples;
        count = 0;
        sum = 0.;
        sumsq = 0.;
        nans = 0;
        extremes = 0;
        needs_rebuild = false;
        extrema =
          (match fn with Min | Max -> Some (Deque.create ()) | _ -> None);
      }
    in
    (* Replay retained samples so a demand registered mid-run agrees
       with the scan from its first read; anything already outside the
       window is trimmed by the next expiry. *)
    let seq = ref d.oldest_seq in
    Ring.iter
      (fun (_, v) ->
        admit d !seq v;
        incr seq)
      e.samples;
    e.demands <- d :: e.demands;
    t.n_demands <- t.n_demands + 1

let release_demand t ~key ~fn ~window_ns ~param =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e -> (
    match find_demand e ~fn ~window_ns ~param with
    | None -> ()
    | Some d ->
      d.refs <- d.refs - 1;
      if d.refs <= 0 then begin
        e.demands <- List.filter (fun d' -> d' != d) e.demands;
        t.n_demands <- t.n_demands - 1
      end)

let demand_count t = t.n_demands
let set_force_naive t flag = t.force_naive <- flag

let demand_shapes t =
  Hashtbl.fold
    (fun key e acc ->
      List.fold_left
        (fun acc d -> (key, d.fn, d.window_ns, d.param) :: acc)
        acc e.demands)
    t.entries []
  |> List.sort compare

(* ---------- windowed reads ---------- *)

(* Newest-first in-window values: the naive scan, kept verbatim as the
   oracle the incremental path is property-tested against. *)
let window_values t ~key ~window_ns =
  match Hashtbl.find_opt t.entries key with
  | None -> []
  | Some e ->
    let now = t.clock () in
    let cutoff = now - int_of_float window_ns in
    Ring.fold
      (fun acc (at, v) -> if at > cutoff then v :: acc else acc)
      [] e.samples

(* First ring index inside the window, found by binary search over the
   time-ordered samples — O(log n) instead of a full fold. *)
let first_inside e ~now ~window_ns =
  let cutoff = now - int_of_float window_ns in
  Ring.bsearch_first (fun (at, _) -> at > cutoff) e.samples

let window_samples t ~key ~window_ns =
  match Hashtbl.find_opt t.entries key with
  | None -> [||]
  | Some e ->
    let i0 = first_inside e ~now:(t.clock ()) ~window_ns in
    Array.init (Ring.length e.samples - i0) (fun i -> snd (Ring.get e.samples (i0 + i)))

let samples_in_window t ~key ~window_ns =
  match Hashtbl.find_opt t.entries key with
  | None -> 0
  | Some e -> Ring.length e.samples - first_inside e ~now:(t.clock ()) ~window_ns

let agg_name : Gr_dsl.Ast.agg -> string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Rate -> "RATE"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Stddev -> "STDDEV"
  | Quantile -> "QUANTILE"
  | Delta -> "DELTA"

type agg_result = { value : float; scanned : int; incremental : bool }

let naive_aggregate t ~key ~fn ~window_ns ~param =
  let values = window_values t ~key ~window_ns in
  let value =
    match (fn : Gr_dsl.Ast.agg) with
    | Count -> float_of_int (List.length values)
    | Sum -> List.fold_left ( +. ) 0. values
    | Rate ->
      let sum = List.fold_left ( +. ) 0. values in
      sum /. (window_ns /. 1e9)
    | Avg -> (
      match values with
      | [] -> 0.
      | _ -> List.fold_left ( +. ) 0. values /. float_of_int (List.length values))
    | Min -> ( match values with [] -> 0. | v :: rest -> List.fold_left Float.min v rest)
    | Max -> ( match values with [] -> 0. | v :: rest -> List.fold_left Float.max v rest)
    | Stddev -> Stats.stddev (Array.of_list values)
    | Quantile -> (
      match values with [] -> 0. | _ -> Stats.quantile (Array.of_list values) param)
    | Delta -> (
      (* window_values folds newest-first, so the head is the newest
         sample and the last element the oldest in the window. *)
      match values with
      | [] -> 0.
      | newest :: _ ->
        let rec last = function [ x ] -> x | _ :: rest -> last rest | [] -> newest in
        newest -. last values)
  in
  { value; scanned = List.length values; incremental = false }

let demand_aggregate t e d ~window_ns ~param =
  let now = t.clock () in
  let expired = expire t e d ~now in
  let base = e.pushes - Ring.length e.samples in
  let value, extra_scan =
    match d.fn with
    | Count -> (float_of_int d.count, 0)
    | Sum -> (d.sum, 0)
    | Rate -> (d.sum /. (window_ns /. 1e9), 0)
    | Avg -> ((if d.count = 0 then 0. else d.sum /. float_of_int d.count), 0)
    | Min | Max -> (
      (* Float.min/Float.max propagate NaN, so the naive scan answers
         NaN whenever one is in the window; the deque (which NaN never
         enters) defers to the counter to agree. *)
      if d.nans > 0 then (Float.nan, 0)
      else
        match d.extrema with
        | Some dq -> (( match Deque.front dq with None -> 0. | Some (_, v) -> v), 0)
        | None -> (0., 0))
    | Stddev ->
      if d.count < 2 then (0., 0)
      else begin
        let n = float_of_int d.count in
        let mean = d.sum /. n in
        (sqrt (Float.max 0. ((d.sumsq /. n) -. (mean *. mean))), 0)
      end
    | Delta ->
      if d.oldest_seq >= e.pushes then (0., 0)
      else begin
        let _, oldest = Ring.get e.samples (d.oldest_seq - base) in
        let _, newest = Ring.get e.samples (Ring.length e.samples - 1) in
        (newest -. oldest, 0)
      end
    | Quantile ->
      (* No O(1) summary ranks arbitrary quantiles exactly; instead
         of folding the whole ring, binary-search the cutoff and rank
         only the in-window suffix. *)
      let i0 = first_inside e ~now ~window_ns:d.window_ns in
      let n = Ring.length e.samples - i0 in
      if n = 0 then (0., 0)
      else begin
        let xs = Array.init n (fun i -> snd (Ring.get e.samples (i0 + i))) in
        (Stats.quantile xs param, n)
      end
  in
  { value; scanned = expired + extra_scan; incremental = true }

let aggregate_result t ~key ~fn ~window_ns ~param =
  let r =
    match Hashtbl.find_opt t.entries key with
    | Some e when not t.force_naive -> (
      match find_demand e ~fn ~window_ns ~param with
      | Some d ->
        t.agg_hits <- t.agg_hits + 1;
        demand_aggregate t e d ~window_ns ~param
      | None ->
        t.agg_misses <- t.agg_misses + 1;
        naive_aggregate t ~key ~fn ~window_ns ~param)
    | _ ->
      t.agg_misses <- t.agg_misses + 1;
      naive_aggregate t ~key ~fn ~window_ns ~param
  in
  if tracing t then
    Gr_trace.Tracer.instant (Option.get t.tracer) ~cat:"store"
      ~args:
        [
          ("key", Gr_trace.Event.Str key);
          ("window_ns", Gr_trace.Event.Float window_ns);
          ("samples", Gr_trace.Event.Int r.scanned);
          ("incremental", Gr_trace.Event.Bool r.incremental);
        ]
      ("agg:" ^ agg_name fn);
  r

let aggregate t ~key ~fn ~window_ns ~param =
  (aggregate_result t ~key ~fn ~window_ns ~param).value

let on_save t fn = Vec.push t.subscribers fn
let save_count t = t.saves
let load_count t = t.loads
let agg_hit_count t = t.agg_hits
let agg_miss_count t = t.agg_misses
let expired_count t = t.expired
