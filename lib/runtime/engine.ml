open Gr_util
module Monitor = Gr_compiler.Monitor
module Tracer = Gr_trace.Tracer
module Event = Gr_trace.Event
module Metrics = Gr_trace.Metrics
module Selfcost = Gr_trace.Selfcost

(* Run [f] with [span] as the causal parent of everything it emits
   (saving/restoring the previous parent — actions can nest through
   store cascades). *)
let with_current tr span f =
  match span with
  | None -> f ()
  | Some _ ->
    let prev = Tracer.current_span tr in
    Tracer.set_current tr span;
    Fun.protect ~finally:(fun () -> Tracer.set_current tr prev) f

let src = Logs.Src.create "guardrails.engine" ~doc:"Guardrail runtime engine"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  cooldown : Time_ns.t;
  retrain_delay : Time_ns.t;
  retrain_min_interval : Time_ns.t;
  oscillation_window : Time_ns.t;
  oscillation_flips : int;
  max_cascade_depth : int;
  auto_damp : bool;
}

let default_config =
  {
    cooldown = Time_ns.zero;
    retrain_delay = Time_ns.ms 50;
    retrain_min_interval = Time_ns.sec 1;
    oscillation_window = Time_ns.sec 10;
    oscillation_flips = 6;
    max_cascade_depth = 8;
    auto_damp = false;
  }

type violation_record = {
  monitor : string;
  at : Time_ns.t;
  message : string;
  snapshot : (string * float) list;
}

type state = {
  monitor : Monitor.t;
  id : int;
  version : int option;
      (** the spec version this monitor came from, when the install
          went through the versioned lifecycle (grc serve) *)
  rule_cost_ns : float;  (** static VM cost of the rule, summed once *)
  tier : Vm.tier;
      (** the tier the rule actually executes on after any JIT→Reg
          fallback (not necessarily the tier requested at install) *)
  exec : unit -> Vm.result;
      (** the rule, specialized onto [tier] at install *)
  actions_costed : (Monitor.action * (unit -> Vm.result) option) list;
      (** each action paired with its SAVE value program's executor
          (specialized like the rule; [None] for non-SAVE actions),
          built at install *)
  demands : Gr_compiler.Deps.agg_demand list;
      (** aggregate demands registered with the store on install *)
  mutable installed : bool;
  mutable checks : int;
  mutable violations : int;
  mutable action_firings : int;
  mutable retrains_requested : int;
  mutable retrains_suppressed : int;
  mutable overhead_ns : float;
  mutable in_violation : bool;
  mutable last_firing : Time_ns.t option;
  flips : Time_ns.t Ring.t;
  mutable oscillation_alerts : int;
  mutable cascade_drops : int;
  mutable cooldown : Time_ns.t;
  mutable timer_handles : Gr_sim.Engine.handle list;
  mutable hook_subs : Gr_kernel.Hooks.subscription list;
}

type handle = state

type t = {
  kernel : Gr_kernel.Kernel.t;
  store : Feature_store.t;
  config : config;
  default_tier : Vm.tier;
  tracer : Tracer.t;
  monitors : state Vec.t;
  mutable next_id : int;
  on_change_index : (string, state list ref) Hashtbl.t;
  mutable deprioritize : (cls:string -> weight:int -> unit) option;
  mutable kill : (cls:string -> unit) option;
  mutable last_retrain : (string, Time_ns.t) Hashtbl.t;
  mutable cascade_depth : int;
}

let rec create ~kernel ~store ?(config = default_config) ?tracer ?(engine = Vm.Jit) () =
  let tracer =
    match tracer with
    | Some tr -> tr
    | None ->
      (* Private tracer: trace events stay off, but the metrics
         registry and the REPORT channel always run. *)
      Tracer.create ~clock:(fun () -> Gr_kernel.Kernel.now kernel) ()
  in
  let t =
    {
      kernel;
      store;
      config;
      default_tier = engine;
      tracer;
      monitors = Vec.create ();
      next_id = 0;
      on_change_index = Hashtbl.create 16;
      deprioritize = None;
      kill = None;
      last_retrain = Hashtbl.create 8;
      cascade_depth = 0;
    }
  in
  (* One store subscription dispatches all ON_CHANGE triggers. *)
  Feature_store.on_save store (fun key _value -> dispatch_on_change t key);
  t

(* Also the fleet's cross-store glue: saves landing in the global
   store tier are replayed into each node engine so ON_CHANGE(GLOBAL
   key) triggers fire on nodes too. *)
and dispatch_on_change t key =
  match Hashtbl.find_opt t.on_change_index key with
  | None -> ()
  | Some states ->
    List.iter (fun st -> on_change_check t ~via:("on_change:" ^ key) st) !states

and on_change_check t ~via st = check t ~via st

(* The REPORT action's structured event: the paper's eBPF-ringbuf
   stream to userspace. Always emitted (the violation log is a view
   over the report sink); carries the monitor id, the violated rule's
   disassembly, the message and the named store snapshot. *)
and report t st ~message ~snapshot =
  let rule_text =
    Format.asprintf "%a" (Gr_compiler.Ir.pp_program ~slots:st.monitor.Monitor.slots)
      st.monitor.Monitor.rule
  in
  Tracer.report t.tracer st.monitor.Monitor.name
    ~args:
      ([
         ("message", Event.Str message);
         ("monitor_id", Event.Int st.id);
         ("rule", Event.Str rule_text);
       ]
      @ List.map (fun (k, v) -> ("key:" ^ k, Event.Float v)) snapshot)

(* Emits the action's trace instant and returns its span id so the
   caller can parent the action's downstream effects (store saves,
   policy-slot flips, fleet proxies) to the action itself. [?parent]
   overrides the causal parent — the RETRAIN.run -> RETRAIN.scheduled
   cross-dispatch edge. *)
and action_instant ?parent t st name args =
  if Tracer.enabled t.tracer then begin
    let span = Tracer.fresh_span t.tracer in
    Tracer.instant t.tracer ~cat:"action"
      ~args:(("monitor", Event.Str st.monitor.Monitor.name) :: args)
      ~span ?parent name;
    Some span
  end
  else None

and run_actions t st =
  let now = Gr_kernel.Kernel.now t.kernel in
  st.action_firings <- st.action_firings + 1;
  st.last_firing <- Some now;
  Metrics.record_fire (Metrics.monitor (Tracer.metrics t.tracer) st.monitor.Monitor.name);
  let reported = ref false in
  List.iter
    (fun (action, save_exec) ->
      match (action : Monitor.action) with
      | Monitor.Report { message; keys } ->
        reported := true;
        let snapshot = List.map (fun k -> (k, Feature_store.load t.store k)) keys in
        report t st ~message ~snapshot;
        Log.info (fun m ->
            m "guardrail %s violated at %a: %s" st.monitor.Monitor.name Time_ns.pp now message)
      | Monitor.Replace policy -> (
        let aspan = action_instant t st "REPLACE" [ ("policy", Event.Str policy) ] in
        match Gr_kernel.Policy_slot.Registry.find t.kernel.registry policy with
        | Some controls -> with_current t.tracer aspan controls.replace
        | None ->
          Log.warn (fun m -> m "REPLACE: unknown policy %S (monitor %s)" policy st.monitor.name))
      | Monitor.Restore policy -> (
        let aspan = action_instant t st "RESTORE" [ ("policy", Event.Str policy) ] in
        match Gr_kernel.Policy_slot.Registry.find t.kernel.registry policy with
        | Some controls -> with_current t.tracer aspan controls.restore
        | None ->
          Log.warn (fun m -> m "RESTORE: unknown policy %S (monitor %s)" policy st.monitor.name))
      | Monitor.Retrain policy -> (
        match Gr_kernel.Policy_slot.Registry.find t.kernel.registry policy with
        | None ->
          Log.warn (fun m -> m "RETRAIN: unknown policy %S (monitor %s)" policy st.monitor.name)
        | Some controls ->
          let last = Hashtbl.find_opt t.last_retrain policy in
          let allowed =
            match last with
            | None -> true
            | Some at -> Time_ns.diff now at >= t.config.retrain_min_interval
          in
          if not allowed then begin
            st.retrains_suppressed <- st.retrains_suppressed + 1;
            ignore
              (action_instant t st "RETRAIN.suppressed" [ ("policy", Event.Str policy) ]
                : int option)
          end
          else begin
            Hashtbl.replace t.last_retrain policy now;
            st.retrains_requested <- st.retrains_requested + 1;
            let sched =
              action_instant t st "RETRAIN.scheduled" [ ("policy", Event.Str policy) ]
            in
            (* Asynchronous offline retraining (§3.2). The run fires
               in a later dispatch; its explicit [?parent] is the
               cross-time causal edge back to the scheduling. *)
            ignore
              (Gr_sim.Engine.schedule_after t.kernel.engine t.config.retrain_delay
                 (fun _ ->
                   let run_span =
                     action_instant ?parent:sched t st "RETRAIN.run"
                       [ ("policy", Event.Str policy) ]
                   in
                   with_current t.tracer run_span controls.retrain)
                : Gr_sim.Engine.handle)
          end)
      | Monitor.Deprioritize { cls; weight } -> (
        let aspan =
          action_instant t st "DEPRIORITIZE"
            [ ("cls", Event.Str cls); ("weight", Event.Int weight) ]
        in
        match t.deprioritize with
        | Some handler -> with_current t.tracer aspan (fun () -> handler ~cls ~weight)
        | None ->
          Log.warn (fun m -> m "DEPRIORITIZE(%s): no handler wired (monitor %s)" cls st.monitor.name))
      | Monitor.Kill cls -> (
        let aspan = action_instant t st "KILL" [ ("cls", Event.Str cls) ] in
        match t.kill with
        | Some handler -> with_current t.tracer aspan (fun () -> handler ~cls)
        | None -> Log.warn (fun m -> m "KILL(%s): no handler wired (monitor %s)" cls st.monitor.name))
      | Monitor.Save { key; value = _ } ->
        let result : Vm.result =
          match save_exec with Some run -> run () | None -> assert false
        in
        st.overhead_ns <- st.overhead_ns +. result.est_cost_ns;
        Metrics.record_action_cost
          (Metrics.monitor (Tracer.metrics t.tracer) st.monitor.Monitor.name)
          ~cost_ns:result.est_cost_ns;
        let aspan =
          action_instant t st "SAVE"
            [ ("key", Event.Str key); ("value", Event.Float result.value) ]
        in
        with_current t.tracer aspan (fun () ->
            Feature_store.save t.store key result.value))
    st.actions_costed;
  if not !reported then report t st ~message:"<violation>" ~snapshot:[]

and record_flip t st =
  let now = Gr_kernel.Kernel.now t.kernel in
  Ring.push st.flips now;
  let cutoff = Time_ns.diff now t.config.oscillation_window in
  Ring.drop_while_oldest (fun at -> Time_ns.compare at cutoff < 0) st.flips;
  if Ring.length st.flips >= t.config.oscillation_flips then begin
    st.oscillation_alerts <- st.oscillation_alerts + 1;
    Ring.clear st.flips;
    if t.config.auto_damp then
      st.cooldown <- Time_ns.max (Time_ns.ms 100) (2 * st.cooldown);
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~cat:"oscillation"
        ~args:
          [
            ("monitor", Event.Str st.monitor.Monitor.name);
            ("flips", Event.Int t.config.oscillation_flips);
            ("damped", Event.Bool t.config.auto_damp);
            ("cooldown_ns", Event.Int st.cooldown);
          ]
        "oscillation.alert";
    Log.warn (fun m ->
        m "guardrail %s is oscillating (%d state flips within %a)%s" st.monitor.Monitor.name
          t.config.oscillation_flips Time_ns.pp t.config.oscillation_window
          (if t.config.auto_damp then
             Format.asprintf "; action cooldown damped to %a" Time_ns.pp st.cooldown
           else ""))
  end

and check ?(via = "manual") t st =
  if st.installed then begin
    if t.cascade_depth >= t.config.max_cascade_depth then
      st.cascade_drops <- st.cascade_drops + 1
    else begin
      t.cascade_depth <- t.cascade_depth + 1;
      Fun.protect
        ~finally:(fun () -> t.cascade_depth <- t.cascade_depth - 1)
        (fun () ->
          st.checks <- st.checks + 1;
          let result =
            if Selfcost.enabled () then Selfcost.time Selfcost.Check st.exec else st.exec ()
          in
          st.overhead_ns <- st.overhead_ns +. result.est_cost_ns;
          let healthy = Vm.truthy result.value in
          let record () =
            Metrics.record_check
              (Metrics.monitor (Tracer.metrics t.tracer) st.monitor.Monitor.name)
              ~cost_ns:result.est_cost_ns ~insts:result.insts_executed
              ~samples:result.samples_scanned ~violated:(not healthy)
          in
          if Selfcost.enabled () then Selfcost.time Selfcost.Metrics_record record
          else record ();
          (* The check as a Complete span whose duration is the VM's
             dynamic cost estimate — per-monitor overhead on the
             timeline. Its span id is the causal parent of everything
             the decision does (flip alerts, actions, the REPORT). *)
          let check_span =
            if Tracer.enabled t.tracer then begin
              let span = Tracer.fresh_span t.tracer in
              Tracer.complete t.tracer ~cat:"check" ~dur_ns:result.est_cost_ns
                ~args:
                  [
                    ("monitor_id", Event.Int st.id);
                    ("trigger", Event.Str via);
                    ("insts", Event.Int result.insts_executed);
                    ("samples_scanned", Event.Int result.samples_scanned);
                    ("violated", Event.Bool (not healthy));
                  ]
                ~span st.monitor.Monitor.name;
              Some span
            end
            else None
          in
          with_current t.tracer check_span (fun () ->
              if healthy then begin
                if st.in_violation then begin
                  st.in_violation <- false;
                  record_flip t st
                end
              end
              else begin
                st.violations <- st.violations + 1;
                if not st.in_violation then begin
                  st.in_violation <- true;
                  record_flip t st
                end;
                let now = Gr_kernel.Kernel.now t.kernel in
                let cooled =
                  match st.last_firing with
                  | None -> true
                  | Some at -> Time_ns.diff now at >= st.cooldown
                in
                if cooled then run_actions t st
              end))
    end
  end

let arm_trigger t st (trigger : Monitor.trigger) =
  match trigger with
  | Monitor.Timer { start_ns; interval_ns; stop_ns } ->
    let handle =
      Gr_sim.Engine.every t.kernel.engine
        ~start:(Time_ns.max start_ns (Gr_kernel.Kernel.now t.kernel))
        ?stop:stop_ns ~interval:interval_ns
        (fun _ -> check ~via:"timer" t st)
    in
    st.timer_handles <- handle :: st.timer_handles
  | Monitor.Function hook ->
    let sub =
      Gr_kernel.Hooks.subscribe t.kernel.hooks hook (fun _args ->
          check ~via:("function:" ^ hook) t st)
    in
    st.hook_subs <- sub :: st.hook_subs
  | Monitor.On_change key ->
    let states =
      match Hashtbl.find_opt t.on_change_index key with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add t.on_change_index key r;
        r
    in
    states := st :: !states

(* Specialize one program onto the requested tier, returning the tier
   actually used: the JIT declines programs over cross-shard (fleet
   merged) keys and falls back to the register tier, which shares its
   operator semantics and superinstructions but reads the store
   through the generic path. *)
let build_exec t ~tier ~slots program =
  match (tier : Vm.tier) with
  | Vm.Tree ->
    let static_cost_ns = Vm.static_cost_ns program in
    (Vm.Tree, fun () -> Vm.run ~static_cost_ns ~store:t.store ~slots program)
  | Vm.Reg ->
    let c = Vm.compile ~store:t.store ~slots program in
    (Vm.Reg, fun () -> Vm.run_compiled c)
  | Vm.Jit -> (
    match Jit.compile ~store:t.store ~slots program with
    | Some j -> (Vm.Jit, fun () -> Jit.run j)
    | None ->
      let c = Vm.compile ~store:t.store ~slots program in
      (Vm.Reg, fun () -> Vm.run_compiled c))

let install ?engine ?version t monitor =
  match Gr_compiler.Verify.verify monitor with
  | Error errs -> Error errs
  | Ok _stats ->
    let demands = Gr_compiler.Deps.aggregates monitor in
    (* Register the monitor's aggregate shapes before specializing the
       executors: registration switches them to the store's streaming
       path, and the JIT's aggregate handles pin the streaming demand
       at compile time. Refcounting inside the store lets monitors
       share demands. *)
    List.iter
      (fun (d : Gr_compiler.Deps.agg_demand) ->
        Feature_store.register_demand t.store ~key:d.key ~fn:d.fn ~window_ns:d.window_ns
          ~param:d.param)
      demands;
    let requested = match engine with Some e -> e | None -> t.default_tier in
    let slots = monitor.Monitor.slots in
    let tier, exec = build_exec t ~tier:requested ~slots monitor.Monitor.rule in
    let st =
      {
        monitor;
        id = t.next_id;
        version;
        rule_cost_ns = Vm.static_cost_ns monitor.Monitor.rule;
        tier;
        exec;
        actions_costed =
          List.map
            (fun (action : Monitor.action) ->
              match action with
              | Monitor.Save { value; _ } ->
                let _, run = build_exec t ~tier:requested ~slots value in
                (action, Some run)
              | _ -> (action, None))
            monitor.Monitor.actions;
        demands;
        installed = true;
        checks = 0;
        violations = 0;
        action_firings = 0;
        retrains_requested = 0;
        retrains_suppressed = 0;
        overhead_ns = 0.;
        in_violation = false;
        last_firing = None;
        flips = Ring.create ~capacity:64;
        oscillation_alerts = 0;
        cascade_drops = 0;
        cooldown = t.config.cooldown;
        timer_handles = [];
        hook_subs = [];
      }
    in
    t.next_id <- t.next_id + 1;
    Vec.push t.monitors st;
    List.iter (arm_trigger t st) monitor.triggers;
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~cat:"runtime"
        ~args:
          [
            ("monitor", Event.Str monitor.Monitor.name);
            ("triggers", Event.Int (List.length monitor.triggers));
          ]
        "monitor.install";
    Ok st

let uninstall t st =
  (* The [installed] guard makes the whole teardown — and in
     particular the demand release below — exactly-once: a double
     uninstall (rollback paths can race operator commands) must not
     decrement a shared streaming aggregate's refcount twice and kill
     state a still-installed monitor depends on. *)
  if st.installed then begin
    st.installed <- false;
    List.iter Gr_sim.Engine.cancel st.timer_handles;
    List.iter (Gr_kernel.Hooks.unsubscribe t.kernel.hooks) st.hook_subs;
    (* Release this monitor's demand references; shapes shared with
       still-installed monitors keep streaming. *)
    List.iter
      (fun (d : Gr_compiler.Deps.agg_demand) ->
        Feature_store.release_demand t.store ~key:d.key ~fn:d.fn ~window_ns:d.window_ns
          ~param:d.param)
      st.demands;
    Hashtbl.iter
      (fun _ states -> states := List.filter (fun s -> s.id <> st.id) !states)
      t.on_change_index;
    (* Drop the state record from the monitor table. A load-once
       deployment never noticed the leak, but a serving engine
       install/uninstalls monitors on every push/rollback cycle and
       the dead records (with their flip rings) accumulated without
       bound — and kept padding pp_report/Stats forever. The handle
       itself stays valid for post-mortem [Stats.get]. *)
    Vec.filter_in_place (fun (s : state) -> s.id <> st.id) t.monitors;
    if Tracer.enabled t.tracer then
      Tracer.instant t.tracer ~cat:"runtime"
        ~args:[ ("monitor", Event.Str st.monitor.Monitor.name) ]
        "monitor.uninstall"
  end

let monitor_name st = st.monitor.Monitor.name
let version st = st.version
let installed st = st.installed
let installed_count t = Vec.length t.monitors
let tier st = st.tier
let default_tier t = t.default_tier
let set_deprioritize_handler t handler = t.deprioritize <- Some handler
let set_kill_handler t handler = t.kill <- Some handler
let tracer t = t.tracer
let metrics t = Tracer.metrics t.tracer

let check_now t st =
  let before = st.violations in
  check ~via:"manual" t st;
  st.violations = before

module Stats = struct
  type s = {
    checks : int;
    violations : int;
    action_firings : int;
    retrains_requested : int;
    retrains_suppressed : int;
    overhead_ns : float;
    oscillation_alerts : int;
    cascade_drops : int;
    effective_cooldown : Time_ns.t;
  }

  let get _t (st : state) =
    {
      checks = st.checks;
      violations = st.violations;
      action_firings = st.action_firings;
      retrains_requested = st.retrains_requested;
      retrains_suppressed = st.retrains_suppressed;
      overhead_ns = st.overhead_ns;
      oscillation_alerts = st.oscillation_alerts;
      cascade_drops = st.cascade_drops;
      effective_cooldown = st.cooldown;
    }

  let total_overhead_ns t =
    Vec.fold (fun acc (st : state) -> acc +. st.overhead_ns) 0. t.monitors

  let total_checks t = Vec.fold (fun acc (st : state) -> acc + st.checks) 0 t.monitors
end

(* The violation log is a view over the report sink: each REPORT trace
   event maps back to the record shape callers have always seen. *)
let violation_of_report (ev : Event.t) : violation_record =
  let message = ref "<violation>" in
  let snapshot = ref [] in
  List.iter
    (fun (k, (a : Event.arg)) ->
      match a with
      | Event.Str s when String.equal k "message" -> message := s
      | Event.Float v when String.length k > 4 && String.sub k 0 4 = "key:" ->
        snapshot := (String.sub k 4 (String.length k - 4), v) :: !snapshot
      | _ -> ())
    ev.args;
  { monitor = ev.name; at = ev.ts; message = !message; snapshot = List.rev !snapshot }

let violations t =
  List.map violation_of_report (Gr_trace.Sink.to_list (Tracer.reports t.tracer))

let oscillating_monitors t =
  Vec.fold
    (fun acc st -> if st.oscillation_alerts > 0 then st.monitor.Monitor.name :: acc else acc)
    [] t.monitors
  |> List.rev

let pp_report fmt t =
  Format.fprintf fmt "%-28s %8s %10s %8s %9s %12s %s@\n" "monitor" "checks" "violations"
    "firings" "retrains" "overhead" "state";
  Vec.iter
    (fun (st : state) ->
      Format.fprintf fmt "%-28s %8d %10d %8d %9d %10.0fns %s@\n" st.monitor.Monitor.name
        st.checks st.violations st.action_firings st.retrains_requested st.overhead_ns
        (String.concat "+"
           (List.filter
              (fun s -> s <> "")
              [
                (if not st.installed then "uninstalled" else "");
                (if st.in_violation then "VIOLATED" else "");
                (if st.oscillation_alerts > 0 then "oscillating" else "");
              ]
           |> function [] -> [ "ok" ] | l -> l)))
    t.monitors;
  let recent = ref 0 in
  List.iter
    (fun v ->
      if !recent < 5 then begin
        incr recent;
        Format.fprintf fmt "  %a %s: %s%s@\n" Time_ns.pp v.at v.monitor v.message
          (match v.snapshot with
          | [] -> ""
          | kvs ->
            " ["
            ^ String.concat "; " (List.map (fun (k, x) -> Printf.sprintf "%s=%.4g" k x) kvs)
            ^ "]")
      end)
    (List.rev (violations t));
  let reports = Tracer.reports t.tracer in
  if Gr_trace.Sink.dropped reports > 0 then
    Format.fprintf fmt "  (%d report(s) dropped by the bounded sink)@\n"
      (Gr_trace.Sink.dropped reports)
